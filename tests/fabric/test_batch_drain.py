"""Batch-drain dispatch mechanics under stub runners.

Covers the opportunistic coalescing path: same-shape queued tasks are
drained into one dispatch message (up to the fabric's ``batch`` width),
workers with a batched runner execute the whole group in one call, and
the per-slot occupancy accounting (``batches`` / ``batched_tasks`` /
``batch_occupancy``) lands in the report, the JSON schema and the
Prometheus rendering.  Real-modem bit-identity through the batched
runtime is covered by the differential suite and the batched smoke
benchmark.
"""

import json
import os
import time

import numpy as np

from repro.fabric import Fabric, FabricTaskError
from repro.obs.prom import lint_exposition
from repro.trace import schema_errors

_SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "fabric_report.schema.json"
)


class _LaneResult:
    """Duck-typed BatchPacketResult: exactly one of output/error set."""

    __slots__ = ("output", "error")

    def __init__(self, output=None, error=None):
        self.output = output
        self.error = error


class _BatchStub:
    """Batched stub runner: tags each result with its dispatch width so
    the parent-side test can prove coalescing happened in the child."""

    def __init__(self, delay_s=0.05):
        self.delay_s = delay_s

    def _one(self, rx, width):
        if float(rx[0, 0].real) == -1.0:
            raise ValueError("poison packet")
        return {"sum": float(np.sum(rx.real)), "width": width, "pid": os.getpid()}

    def run_packet(self, rx, n_symbols=2, detect_hint=None):
        time.sleep(self.delay_s)
        return self._one(rx, 1)

    def run_batch_results(self, rxs, n_symbols=2, detect_hint=None):
        time.sleep(self.delay_s)
        out = []
        for rx in rxs:
            try:
                out.append(_LaneResult(output=self._one(rx, len(rxs))))
            except Exception as exc:
                out.append(_LaneResult(error=exc))
        return out


class _PlainStub:
    """No run_batch_results: batched dispatches must still serve."""

    def run_packet(self, rx, n_symbols=2, detect_hint=None):
        time.sleep(0.05)
        return {"sum": float(np.sum(rx.real))}


def _batched_factory():
    return _BatchStub()


def _plain_factory():
    return _PlainStub()


def _packets(n, base_len=400):
    return [np.full((2, base_len), float(k + 1)) for k in range(n)]


def test_batch_drain_coalesces_and_reports_occupancy():
    fab = Fabric(
        workers=1, batch=4, queue_depth=16, runner_factory=_batched_factory
    )
    with fab:
        packets = _packets(9)
        ids = [fab.submit(rx) for rx in packets]
        results = fab.drain(timeout=30)
    assert sorted(results) == sorted(ids)
    widths = []
    for task_id, rx in zip(ids, packets):
        assert results[task_id]["sum"] == float(np.sum(rx.real))
        widths.append(results[task_id]["width"])
    # The first dispatch goes out alone, but once the worker is busy the
    # queue backs up and later dispatches must coalesce.
    assert max(widths) > 1, widths
    assert all(w <= 4 for w in widths), widths

    report = fab.report()
    assert report["batch"] == 4
    worker = report["per_worker"][0]
    assert worker["batched_tasks"] == 9
    # Each task reports its dispatch width, so the dispatch count is the
    # sum of 1/width over tasks — and must match the slot's accounting.
    assert worker["batches"] == round(sum(1.0 / w for w in widths))
    assert worker["batches"] < len(ids), "coalescing must cut dispatches"
    assert worker["batch_occupancy"] == round(9 / (worker["batches"] * 4), 4)
    assert worker["spinup_batched"] is True
    with open(_SCHEMA_PATH) as fh:
        schema = json.load(fh)
    assert schema_errors(report, schema) == []
    text = fab.metrics_text()
    assert lint_exposition(text) == []
    assert "repro_fabric_worker_batch_occupancy" in text
    assert "repro_fabric_batch 4" in text


def test_batched_dispatch_reports_per_task_errors():
    fab = Fabric(
        workers=1, batch=4, queue_depth=16, runner_factory=_batched_factory
    )
    with fab:
        packets = _packets(6)
        packets[3] = np.full((2, 400), -1.0)  # poison one mid-batch lane
        ids = [fab.submit(rx) for rx in packets]
        results = fab.drain(timeout=30)
    assert sorted(results) == sorted(ids)
    for k, task_id in enumerate(ids):
        if k == 3:
            assert isinstance(results[task_id], FabricTaskError)
            assert "poison packet" in str(results[task_id])
        else:
            assert results[task_id]["sum"] == float(np.sum(packets[k].real))
    report = fab.report()
    assert report["counters"]["task_errors"] == 1
    assert report["counters"]["completed"] == 6


def test_runner_without_batch_support_still_serves_batched_dispatches():
    fab = Fabric(workers=1, batch=4, queue_depth=16, runner_factory=_plain_factory)
    with fab:
        packets = _packets(8)
        ids = [fab.submit(rx) for rx in packets]
        results = fab.drain(timeout=30)
    assert sorted(results) == sorted(ids)
    for task_id, rx in zip(ids, packets):
        assert results[task_id]["sum"] == float(np.sum(rx.real))
    report = fab.report()
    assert report["per_worker"][0]["spinup_batched"] is False
    assert report["counters"]["completed"] == 8


def test_mixed_shapes_never_share_a_dispatch():
    fab = Fabric(
        workers=1, batch=4, queue_depth=16, runner_factory=_batched_factory
    )
    with fab:
        # Alternating shapes: coalescing must break at every boundary.
        packets = [
            np.full((2, 400 + 16 * (k % 2)), float(k + 1)) for k in range(8)
        ]
        ids = [fab.submit(rx) for rx in packets]
        results = fab.drain(timeout=30)
    for task_id, rx in zip(ids, packets):
        out = results[task_id]
        assert out["sum"] == float(np.sum(rx.real))
        assert out["width"] == 1, "different shapes must not coalesce"


def test_offer_many_accounting_matches_per_packet_semantics():
    fab = Fabric(
        workers=1,
        batch=2,
        queue_depth=2,
        backpressure="drop",
        runner_factory=_batched_factory,
    )
    with fab:
        outcomes = fab.offer_many(_packets(8))
        accepted = [o.task_id for o in outcomes if o.accepted]
        shed = [o for o in outcomes if not o.accepted]
        assert accepted and shed
        assert all(o.reason == "dropped" for o in shed)
        results = fab.drain(timeout=30)
    assert sorted(results) == sorted(accepted)
    report = fab.report()
    assert report["counters"]["submitted"] == len(accepted)
    assert report["counters"]["dropped"] == len(shed)
    assert report["counters"]["completed"] == len(accepted)
