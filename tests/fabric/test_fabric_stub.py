"""Fabric mechanics under a cheap stub runner: backpressure, crash
recovery, graceful shutdown.  The stub keeps these tests fast and
scheduling-free; the real-modem behaviour (bit-identity, warm forks) is
covered by ``test_fabric_modem.py``.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.fabric import (
    DeadlineExceeded,
    Fabric,
    FabricClosed,
    FabricTaskError,
    SubmitTimeout,
)


class _StubRunner:
    """Pretends to be a ModemRuntime: checksums instead of simulation."""

    def __init__(self, delay_s=0.0):
        self.delay_s = delay_s

    def run_packet(self, rx, n_symbols=2, detect_hint=None):
        if float(rx[0, 0].real) == -1.0:
            raise ValueError("poison packet")
        if self.delay_s:
            time.sleep(self.delay_s)
        return {"sum": float(np.sum(rx.real)), "n": int(rx.shape[1]), "pid": os.getpid()}


def _fast_factory():
    return _StubRunner(0.0)


def _slow_factory():
    return _StubRunner(0.25)


def _packets(n, base_len=400):
    return [np.full((2, base_len + 16 * (k % 2)), float(k + 1)) for k in range(n)]


def test_submit_drain_results_and_counters():
    fab = Fabric(workers=2, runner_factory=_fast_factory, queue_depth=4)
    with fab:
        packets = _packets(6)
        ids = [fab.submit(rx) for rx in packets]
        results = fab.drain(timeout=30)
    assert sorted(results) == sorted(ids)
    for task_id, rx in zip(ids, packets):
        assert results[task_id]["sum"] == float(np.sum(rx.real))
    report = fab.report()
    assert report["counters"]["submitted"] == 6
    assert report["counters"]["completed"] == 6
    assert report["counters"]["dropped"] == 0
    assert report["counters"]["duplicates"] == 0
    assert report["latency_s"]["count"] == 6
    assert sum(w["completed"] for w in report["per_worker"]) == 6


def test_both_workers_share_the_load():
    fab = Fabric(workers=2, runner_factory=_slow_factory, queue_depth=4)
    with fab:
        ids = [fab.submit(rx) for rx in _packets(4)]
        results = fab.drain(timeout=30)
    pids = {results[i]["pid"] for i in ids}
    assert len(pids) == 2, "round-robin should use both workers"


def test_drop_backpressure_sheds_with_accounting():
    fab = Fabric(
        workers=1, runner_factory=_slow_factory, queue_depth=1, backpressure="drop"
    )
    with fab:
        ids = [fab.submit(rx) for rx in _packets(5)]
        accepted = [i for i in ids if i is not None]
        dropped = ids.count(None)
        assert dropped >= 3, ids  # depth 1 + one in flight at most
        results = fab.drain(timeout=30)
    assert sorted(results) == sorted(accepted)
    report = fab.report()
    assert report["counters"]["dropped"] == dropped
    assert report["counters"]["submitted"] == len(accepted)
    assert report["counters"]["completed"] == len(accepted)


def test_deadline_backpressure_rejects_late_packets():
    fab = Fabric(
        workers=1,
        runner_factory=_slow_factory,
        queue_depth=1,
        backpressure="deadline",
        deadline_s=0.05,
    )
    with fab:
        ids = [fab.submit(rx) for rx in _packets(4)]
        accepted = [i for i in ids if i is not None]
        assert ids[0] is not None
        assert None in ids, "a 0.05s deadline cannot absorb 4 x 0.25s packets"
        results = fab.drain(timeout=30)
    report = fab.report()
    assert report["counters"]["rejected"] == ids.count(None)
    assert sorted(results) == sorted(accepted)


def test_deadline_expiry_in_queue_leaves_a_sentinel_result():
    """An *accepted* packet whose deadline lapses while queued must still
    resolve in results() — as a DeadlineExceeded sentinel — so a caller
    indexing the id submit() returned never KeyErrors."""
    fab = Fabric(
        workers=1,
        runner_factory=_slow_factory,
        queue_depth=2,
        backpressure="deadline",
        deadline_s=0.1,
    )
    with fab:
        first = fab.submit(np.ones((2, 400)))  # dispatched immediately
        # Accepted (queue has room) but stuck behind the 0.25s packet in
        # flight, so its 0.1s deadline expires before it can dispatch.
        second = fab.submit(np.ones((2, 400)))
        assert first is not None and second is not None
        results = fab.drain(timeout=30)
    assert results[first]["sum"] == float(np.sum(np.ones((2, 400))))
    assert isinstance(results[second], DeadlineExceeded)
    assert results[second].task_id == second
    report = fab.report()
    assert report["counters"]["rejected"] == 1
    assert report["counters"]["completed"] == 1


def test_block_backpressure_completes_everything():
    fab = Fabric(
        workers=2,
        runner_factory=_slow_factory,
        queue_depth=1,
        backpressure="block",
        submit_timeout_s=30.0,
    )
    with fab:
        packets = _packets(6)
        ids = [fab.submit(rx) for rx in packets]
        assert None not in ids
        results = fab.drain(timeout=30)
    assert len(results) == 6
    report = fab.report()
    assert report["counters"]["dropped"] == 0
    assert report["counters"]["rejected"] == 0


def test_block_backpressure_times_out():
    fab = Fabric(
        workers=1,
        runner_factory=_slow_factory,
        queue_depth=1,
        backpressure="block",
        submit_timeout_s=0.2,
    )
    with fab:
        fab.submit(np.ones((2, 400)))  # occupies the only queue slot
        # The worker needs 0.25s per packet but submission only waits
        # 0.2s, so the second offer must time out.
        with pytest.raises(SubmitTimeout, match="no queue space"):
            fab.submit(np.ones((2, 400)))
        fab.drain(timeout=30)


def test_worker_crash_requeues_respawns_and_loses_nothing():
    fab = Fabric(workers=2, runner_factory=_slow_factory, queue_depth=4)
    with fab:
        packets = _packets(6)
        ids = [fab.submit(rx) for rx in packets]
        time.sleep(0.3)  # let worker 0 get busy mid-stream
        victim = fab.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        results = fab.drain(timeout=30)
        report = fab.report()  # before shutdown marks every slot stopped
    assert sorted(results) == sorted(ids), "no packet lost"
    for task_id, rx in zip(ids, packets):
        assert results[task_id]["sum"] == float(np.sum(rx.real))
    assert report["counters"]["worker_crashes"] == 1
    assert report["counters"]["respawns"] == 1
    assert report["counters"]["requeued"] >= 1
    assert report["counters"]["duplicates"] == 0
    assert report["counters"]["completed"] == 6
    crashed = [w for w in report["per_worker"] if w["crashes"] == 1]
    assert len(crashed) == 1 and crashed[0]["alive"], "slot respawned"


def test_respawn_resets_shape_affinity_state():
    """A respawned worker forks the template (here: none), so the shapes
    its dead incarnation linked must not linger in the affinity state."""
    fab = Fabric(
        workers=2, runner_factory=_fast_factory, queue_depth=4, policy="shape_affinity"
    )
    with fab:
        fab.submit(np.ones((2, 400)))
        fab.drain(timeout=30)
        victim = next(w for w in fab._workers if w.state.shapes)
        os.kill(victim.proc.pid, signal.SIGKILL)
        deadline = time.time() + 10
        while fab._counters["respawns"] == 0 and time.time() < deadline:
            fab.poll(0.05)
        assert fab._counters["respawns"] == 1
        assert victim.state.shapes == set(), "stale shapes survive respawn"
        # The respawned slot still serves traffic.
        task_id = fab.submit(np.ones((2, 400)))
        results = fab.drain(timeout=30)
    assert results[task_id]["sum"] == float(np.sum(np.ones((2, 400))))


def test_task_error_is_recorded_and_worker_survives():
    fab = Fabric(workers=1, runner_factory=_fast_factory, queue_depth=4)
    with fab:
        poison = np.full((2, 400), -1.0)
        good = np.ones((2, 400))
        bad_id = fab.submit(poison)
        good_id = fab.submit(good)
        results = fab.drain(timeout=30)
    assert isinstance(results[bad_id], FabricTaskError)
    assert "poison packet" in str(results[bad_id])
    assert results[good_id]["sum"] == float(np.sum(good.real))
    report = fab.report()
    assert report["counters"]["task_errors"] == 1
    assert report["counters"]["worker_crashes"] == 0


def test_shape_affinity_routes_same_shape_to_same_worker():
    fab = Fabric(
        workers=2, runner_factory=_slow_factory, queue_depth=8, policy="shape_affinity"
    )
    with fab:
        shape_a = [np.full((2, 400), 1.0) for _ in range(3)]
        shape_b = [np.full((2, 464), 2.0) for _ in range(3)]
        ids_a = [fab.submit(rx) for rx in shape_a]
        ids_b = [fab.submit(rx) for rx in shape_b]
        results = fab.drain(timeout=30)
    pids_a = {results[i]["pid"] for i in ids_a}
    pids_b = {results[i]["pid"] for i in ids_b}
    assert len(pids_a) == 1, "every 400-sample packet on one worker"
    assert len(pids_b) == 1, "every 464-sample packet on one worker"
    assert pids_a != pids_b
    report = fab.report()
    assert [w["shapes"] for w in report["per_worker"]] == [1, 1]


def test_graceful_shutdown_drains_then_stops_workers():
    fab = Fabric(workers=2, runner_factory=_slow_factory, queue_depth=4)
    fab.start()
    ids = [fab.submit(rx) for rx in _packets(4)]
    fab.shutdown(drain=True, timeout=30)
    results = fab.results()
    assert sorted(results) == sorted(ids)
    assert all(not w.proc.is_alive() for w in fab._workers)
    with pytest.raises(FabricClosed):
        fab.submit(np.ones((2, 400)))


def test_lifecycle_and_config_validation():
    with pytest.raises(ValueError, match="at least one worker"):
        Fabric(workers=0)
    with pytest.raises(ValueError, match="backpressure"):
        Fabric(backpressure="shed")
    with pytest.raises(ValueError, match="queue_depth"):
        Fabric(queue_depth=0)
    with pytest.raises(ValueError, match="deadline"):
        Fabric(backpressure="deadline")
    fab = Fabric(workers=1, runner_factory=_fast_factory)
    with pytest.raises(FabricClosed, match="not started"):
        fab.submit(np.ones((2, 400)))
