"""Typed submission outcomes: shed reasons without string matching."""

import time

import numpy as np
import pytest

from repro.fabric import Fabric, SubmitOutcome, SubmitTimeout


class _SlowRunner:
    def run_packet(self, rx, n_symbols=2, detect_hint=None):
        time.sleep(0.25)
        return {"n": int(rx.shape[1])}


def _slow_factory():
    return _SlowRunner()


def test_offer_returns_accepted_outcome():
    fab = Fabric(workers=1, runner_factory=_slow_factory, queue_depth=4)
    with fab:
        outcome = fab.offer(np.ones((2, 400)))
        assert isinstance(outcome, SubmitOutcome)
        assert outcome.accepted
        assert outcome.reason is None
        results = fab.drain(timeout=30)
    assert outcome.task_id in results


def test_offer_names_the_drop_shed_path():
    fab = Fabric(
        workers=1, runner_factory=_slow_factory, queue_depth=1, backpressure="drop"
    )
    with fab:
        outcomes = [fab.offer(np.ones((2, 400))) for _ in range(5)]
        shed = [o for o in outcomes if not o.accepted]
        assert shed, "depth-1 drop fabric must shed some of 5 instant offers"
        assert all(o.reason == "dropped" for o in shed)
        assert all(o.task_id is None for o in shed)
        fab.drain(timeout=30)
    assert fab.report()["counters"]["dropped"] == len(shed)


def test_offer_names_the_deadline_shed_path():
    fab = Fabric(
        workers=1,
        runner_factory=_slow_factory,
        queue_depth=1,
        backpressure="deadline",
        deadline_s=0.05,
    )
    with fab:
        outcomes = [fab.offer(np.ones((2, 400))) for _ in range(4)]
        shed = [o for o in outcomes if not o.accepted]
        assert shed, "a 0.05s deadline cannot absorb 4 x 0.25s packets"
        assert all(o.reason == "rejected" for o in shed)
        fab.drain(timeout=30)
    assert fab.report()["counters"]["rejected"] >= len(shed)


def test_submit_timeout_carries_structured_fields():
    fab = Fabric(
        workers=1,
        runner_factory=_slow_factory,
        queue_depth=1,
        backpressure="block",
        submit_timeout_s=0.2,
    )
    with fab:
        fab.submit(np.ones((2, 400)))
        with pytest.raises(SubmitTimeout) as exc:
            fab.submit(np.ones((2, 400)))
        fab.drain(timeout=30)
    err = exc.value
    assert err.timeout_s == 0.2
    assert err.workers == 1
    assert err.outstanding >= 1
    # The human-readable message survives unchanged.
    assert "no queue space" in str(err)


def test_submit_still_returns_plain_task_ids():
    """Compat: submit() is offer().task_id — id or None, never an outcome."""
    fab = Fabric(
        workers=1, runner_factory=_slow_factory, queue_depth=1, backpressure="drop"
    )
    with fab:
        ids = [fab.submit(np.ones((2, 400))) for _ in range(4)]
        assert any(i is None for i in ids)
        assert all(i is None or isinstance(i, int) for i in ids)
        fab.drain(timeout=30)
