"""Poisson stream driver: reproducibility, bounds, traffic mixing."""

import numpy as np
import pytest

from repro.fabric import (
    DEFAULT_SCENARIO_MIX,
    mixed_scenario_stream,
    poisson_stream,
    scenario_accounting,
)
from repro.fabric.report import (
    fabric_prometheus_text,
    latency_percentiles,
    latency_summary,
    percentile,
)
from repro.phy.scenario import get_scenario
from repro.runtime.workload import PacketCase


def test_stream_is_reproducible():
    kwargs = dict(
        rate_hz=100.0,
        n_packets=6,
        base_seed=7,
        cfo_choices=(30e3, 50e3),
        snr_choices=(None, 25.0),
        pad_choices=(0, 64),
    )
    a = list(poisson_stream(**kwargs))
    b = list(poisson_stream(**kwargs))
    assert len(a) == len(b) == 6
    for ea, eb in zip(a, b):
        assert ea.time_s == eb.time_s
        assert ea.seq == eb.seq
        assert ea.case.cfo_hz == eb.case.cfo_hz
        assert ea.case.snr_db == eb.case.snr_db
        assert np.array_equal(ea.case.rx, eb.case.rx)
        assert np.array_equal(ea.case.bits, eb.case.bits)


def test_stream_arrival_times_increase_and_respect_duration():
    events = list(poisson_stream(rate_hz=50.0, duration_s=0.5, base_seed=3))
    assert events, "expected at least one arrival in 0.5s at 50 Hz"
    times = [e.time_s for e in events]
    assert times == sorted(times)
    assert all(0 < t < 0.5 for t in times)
    # Rough rate sanity for a fixed seed: 50 Hz over 0.5 s ~ 25 packets.
    assert 5 <= len(events) <= 60


def test_stream_n_packets_bound_and_distinct_payloads():
    events = list(poisson_stream(rate_hz=1000.0, n_packets=4, base_seed=0))
    assert [e.seq for e in events] == [0, 1, 2, 3]
    payloads = {tuple(e.case.bits) for e in events}
    assert len(payloads) == 4


def test_stream_mixes_declared_traffic_only():
    cfos = (30e3, 50e3)
    pads = (0, 64)
    events = list(
        poisson_stream(
            rate_hz=1000.0, n_packets=24, base_seed=11, cfo_choices=cfos, pad_choices=pads
        )
    )
    seen_cfo = {e.case.cfo_hz for e in events}
    seen_len = {e.case.rx.shape[1] for e in events}
    assert seen_cfo <= set(cfos)
    assert len(seen_cfo) == 2, "both CFO choices should appear in 24 draws"
    assert len(seen_len) == 2, "both shapes should appear in 24 draws"
    lens = sorted(seen_len)
    assert lens[1] - lens[0] == 64


def test_singleton_scenario_choice_keeps_classic_stream_identical():
    """Adding scenario_choices=(None,) must not consume extra RNG draws:
    existing callers replay byte-identical streams."""
    a = list(poisson_stream(rate_hz=500.0, n_packets=5, base_seed=19))
    b = list(
        poisson_stream(
            rate_hz=500.0, n_packets=5, base_seed=19, scenario_choices=(None,)
        )
    )
    for ea, eb in zip(a, b):
        assert ea.time_s == eb.time_s
        assert np.array_equal(ea.case.rx, eb.case.rx)
        assert ea.case.scenario is None


def test_mixed_scenario_stream_draws_declared_presets_reproducibly():
    a = list(mixed_scenario_stream(rate_hz=1000.0, n_packets=20, base_seed=9))
    b = list(mixed_scenario_stream(rate_hz=1000.0, n_packets=20, base_seed=9))
    for ea, eb in zip(a, b):
        assert ea.case.scenario == eb.case.scenario
        assert np.array_equal(ea.case.rx, eb.case.rx)
    names = {e.case.scenario for e in a}
    declared = {name for name in DEFAULT_SCENARIO_MIX}
    assert names <= declared
    assert len(names) >= 3, "20 draws should mix several presets"


def test_scenario_packets_record_preset_cfo_truth():
    events = list(
        mixed_scenario_stream(
            rate_hz=1000.0, n_packets=16, base_seed=5, scenarios=("cfo_stress",)
        )
    )
    preset = get_scenario("cfo_stress")
    for event in events:
        assert event.case.scenario == "cfo_stress"
        assert event.case.cfo_hz == preset.packet_cfo_hz(event.case.seed)


def test_scenario_accounting_buckets_and_ber():
    bits = np.array([0, 1, 1, 0], dtype=np.int64)

    class _Result:
        def __init__(self, decoded):
            self.bits = decoded

    def case(scenario):
        return PacketCase(
            seed=0, cfo_hz=0.0, snr_db=None, bits=bits,
            rx=np.zeros((2, 1)), scenario=scenario,
        )

    truth = {1: case("awgn"), 2: case("awgn"), 3: case(None), 4: case("cfo_stress")}
    results = {
        1: _Result(bits.copy()),                      # clean decode
        2: _Result(np.array([1, 1, 1, 0])),           # 1 bit error
        3: _Result(bits.copy()),
        # task 4 missing: crashed / never completed -> errors bucket
    }
    acct = scenario_accounting(results, truth)
    assert acct["awgn"] == {
        "packets": 2, "bits": 8, "bit_errors": 1, "ber": 0.125, "errors": 0,
    }
    assert acct["baseline"]["ber"] == 0.0
    assert acct["cfo_stress"]["errors"] == 1
    assert acct["cfo_stress"]["bits"] == 0


def test_prometheus_renders_scenario_families():
    report = {
        "counters": {"completed": 2},
        "scenarios": {
            "awgn": {"packets": 2, "bits": 8, "bit_errors": 1, "ber": 0.125, "errors": 0}
        },
    }
    text = fabric_prometheus_text(report)
    assert 'repro_fabric_scenario_packets{scenario="awgn"} 2' in text
    assert 'repro_fabric_scenario_ber{scenario="awgn"} 0.125' in text


def test_stream_argument_validation():
    with pytest.raises(ValueError, match="rate_hz"):
        list(poisson_stream(rate_hz=0.0, n_packets=1))
    with pytest.raises(ValueError, match="bound the stream"):
        list(poisson_stream(rate_hz=1.0))


# ----------------------------------------------------------------------
# Percentile helpers (the shared latency math).
# ----------------------------------------------------------------------


def test_percentile_nearest_rank():
    samples = [10.0, 20.0, 30.0, 40.0]
    assert percentile(samples, 50) == 20.0
    assert percentile(samples, 95) == 40.0
    assert percentile(samples, 0) == 10.0
    assert percentile(samples, 100) == 40.0
    assert percentile([5.0], 99) == 5.0


def test_percentile_validation():
    with pytest.raises(ValueError, match="empty"):
        percentile([], 50)
    with pytest.raises(ValueError, match="outside"):
        percentile([1.0], 101)


def test_latency_percentiles_and_summary():
    samples = list(range(1, 101))  # 1..100
    p = latency_percentiles(samples)
    assert p == {"p50": 50.0, "p95": 95.0, "p99": 99.0}
    s = latency_summary(samples)
    assert s["count"] == 100
    assert s["max"] == 100.0
    assert s["mean"] == pytest.approx(50.5)
    assert latency_summary([])["count"] == 0


def test_prometheus_quantile_labels_are_fractional():
    """Summary quantile labels follow the Prometheus convention
    (quantile="0.5"), not the p50/p95/p99 report keys."""
    report = {
        "counters": {"completed": 3},
        "workers": 1,
        "latency_s": {"count": 3, "p50": 0.1, "p95": 0.2, "p99": 0.3},
        "per_worker": [],
    }
    text = fabric_prometheus_text(report)
    assert 'repro_fabric_latency_seconds{quantile="0.5"} 0.1' in text
    assert 'repro_fabric_latency_seconds{quantile="0.95"} 0.2' in text
    assert 'repro_fabric_latency_seconds{quantile="0.99"} 0.3' in text
    assert 'quantile="50"' not in text
