"""Dispatcher policy unit tests: pure WorkerState bookkeeping, no processes."""

import pytest

from repro.fabric import Dispatcher, FabricTask, WorkerState


def _task(task_id, shape=(736, 2)):
    return FabricTask(task_id, None, 2, None, shape, submit_t=0.0)


def _workers(n, queue_depth=2):
    return [WorkerState(i, queue_depth) for i in range(n)]


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown dispatch policy"):
        Dispatcher("fastest_first")


def test_round_robin_cycles_all_slots():
    workers = _workers(3)
    d = Dispatcher("round_robin")
    picks = []
    for k in range(6):
        w = d.select(workers, shape=(736, 2))
        picks.append(w.index)
        w.assign(_task(k))
        w.pending.clear()  # keep capacity available
    assert picks == [0, 1, 2, 0, 1, 2]


def test_round_robin_skips_full_and_dead_slots():
    workers = _workers(3, queue_depth=1)
    workers[0].assign(_task(0))  # full
    workers[1].alive = False
    d = Dispatcher("round_robin")
    assert d.select(workers).index == 2
    workers[2].assign(_task(1))
    assert d.select(workers) is None  # everything full or dead


def test_least_loaded_picks_minimum_load_lowest_index():
    workers = _workers(3, queue_depth=4)
    workers[0].assign(_task(0))
    workers[0].assign(_task(1))
    workers[2].assign(_task(2))
    d = Dispatcher("least_loaded")
    assert d.select(workers).index == 1
    workers[1].assign(_task(3))
    # Tie between 1 and 2 at load 1: lowest index wins.
    assert d.select(workers).index == 1


def test_least_loaded_counts_inflight():
    workers = _workers(2, queue_depth=4)
    workers[0].inflight[7] = _task(7)
    d = Dispatcher("least_loaded")
    assert d.select(workers).index == 1


def test_shape_affinity_prefers_holder():
    workers = _workers(2, queue_depth=4)
    shape_a, shape_b = (736, 2), (800, 2)
    d = Dispatcher("shape_affinity")
    w = d.select(workers, shape_a)
    assert w.index == 0  # nobody holds it yet: least-loaded fallback
    w.assign(_task(0, shape_a))
    # Worker 0 now holds shape_a and is *more* loaded; affinity wins anyway.
    assert d.select(workers, shape_a).index == 0
    # A new shape goes to the idle worker.
    w2 = d.select(workers, shape_b)
    assert w2.index == 1
    w2.assign(_task(1, shape_b))
    assert d.select(workers, shape_b).index == 1


def test_shape_affinity_full_holder_falls_back():
    workers = _workers(2, queue_depth=1)
    shape_a = (736, 2)
    workers[0].assign(_task(0, shape_a))  # holder, but full
    d = Dispatcher("shape_affinity")
    assert d.select(workers, shape_a).index == 1


def test_select_none_when_all_full():
    workers = _workers(2, queue_depth=1)
    for k, w in enumerate(workers):
        w.assign(_task(k))
    for policy in ("round_robin", "least_loaded", "shape_affinity"):
        assert Dispatcher(policy).select(workers, (736, 2)) is None


def test_requeue_select_waives_capacity_and_skips_dead():
    workers = _workers(3, queue_depth=1)
    for k, w in enumerate(workers):
        w.assign(_task(k))  # all full: normal select refuses
    workers[0].alive = False
    workers[2].stopping = True
    target = Dispatcher.requeue_select(workers, (736, 2))
    assert target.index == 1  # only alive, non-stopping slot
    workers[1].alive = False
    assert Dispatcher.requeue_select(workers, (736, 2)) is None


def test_requeue_select_prefers_shape_holder():
    workers = _workers(3, queue_depth=1)
    shape_b = (800, 2)
    workers[2].assign(_task(0, shape_b))  # holder, more loaded than 1
    assert Dispatcher.requeue_select(workers, shape_b).index == 2
    assert Dispatcher.requeue_select(workers, (736, 2)).index == 0
