"""Fabric over the real simulated modem: the ISSUE acceptance criteria.

Workers fork a pre-warmed parent template runtime, so each spins up
with zero ``ModuloScheduler.schedule`` calls; a SIGKILLed worker's
packets are requeued and the whole stream stays bit-identical to a
serial :class:`SimReceiver` run.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.fabric import Fabric
from repro.runtime import ModemRuntime, generate_packets, make_packet


@pytest.fixture(scope="module")
def template():
    """One warm parent-side runtime shared by every fabric in the module."""
    cases = generate_packets(1, base_seed=42, cfo_hz=50e3)
    runtime = ModemRuntime()
    runtime.warm_up(cases[0].rx)
    return runtime


@pytest.fixture(scope="module")
def cases():
    return generate_packets(5, base_seed=42, cfo_hz=50e3)


@pytest.fixture(scope="module")
def serial_outputs(template, cases):
    return [template.run_packet(case.rx) for case in cases]


def _assert_identical(fabric_out, serial_out):
    assert list(fabric_out.bits) == list(serial_out.bits)
    assert fabric_out.detect_pos == serial_out.detect_pos
    assert fabric_out.ltf1_start == serial_out.ltf1_start
    assert fabric_out.coarse_cfo_hz == serial_out.coarse_cfo_hz
    assert fabric_out.fine_cfo_hz == serial_out.fine_cfo_hz
    assert fabric_out.stats == serial_out.stats
    assert fabric_out.image == serial_out.image


def test_fabric_results_bit_identical_to_serial(template, cases, serial_outputs):
    fab = Fabric(workers=2, template_runtime=template, queue_depth=4)
    with fab:
        ids = [fab.submit(case.rx) for case in cases]
        results = fab.drain(timeout=300)
    assert sorted(results) == sorted(ids)
    for task_id, serial_out in zip(ids, serial_outputs):
        _assert_identical(results[task_id], serial_out)
    report = fab.report()
    # Forked workers inherit the linked template: spin-up scheduled nothing.
    for worker in report["per_worker"]:
        assert worker["spinup_schedule_misses"] == 0
        assert worker["spinup_codegen_compilations"] == 0
    assert report["counters"]["completed"] == len(cases)
    assert report["counters"]["worker_crashes"] == 0


def test_sigkill_mid_stream_requeues_and_respawns(template, cases, serial_outputs):
    """ISSUE acceptance: SIGKILL one worker mid-stream -> its packets are
    requeued and completed, the respawn counter increments, and no packet
    is lost or duplicated."""
    fab = Fabric(workers=2, template_runtime=template, queue_depth=4)
    with fab:
        ids = [fab.submit(case.rx) for case in cases]
        time.sleep(0.5)  # let both workers get busy mid-stream
        os.kill(fab.worker_pids()[0], signal.SIGKILL)
        results = fab.drain(timeout=300)
        report = fab.report()  # before shutdown marks every slot stopped
    assert sorted(results) == sorted(ids), "no packet lost"
    for task_id, serial_out in zip(ids, serial_outputs):
        _assert_identical(results[task_id], serial_out)
    counters = report["counters"]
    assert counters["worker_crashes"] == 1
    assert counters["respawns"] == 1
    assert counters["requeued"] >= 1
    assert counters["duplicates"] == 0
    assert counters["completed"] == len(cases)
    crashed = [w for w in report["per_worker"] if w["crashes"] == 1]
    assert len(crashed) == 1 and crashed[0]["alive"], "slot was respawned"


def test_sigstop_watchdog_escalation_stays_bit_identical(
    template, cases, serial_outputs
):
    """A SIGSTOPped (stuck, not dead) worker goes heartbeat-silent, the
    watchdog SIGKILLs it, and the existing salvage/requeue/respawn path
    completes the stream bit-identical to serial — observability's
    escalation hook changes *when* recovery starts, never *what* the
    fabric computes."""
    fab = Fabric(
        workers=2,
        template_runtime=template,
        queue_depth=4,
        heartbeat_s=0.1,
        watchdog_intervals=3,
        watchdog_escalate=True,
    )
    with fab:
        ids = [fab.submit(case.rx) for case in cases]
        time.sleep(0.3)  # both workers busy mid-stream
        os.kill(fab.worker_pids()[0], signal.SIGSTOP)
        results = fab.drain(timeout=300)
        report = fab.report()  # before shutdown marks every slot stopped
    assert sorted(results) == sorted(ids), "no packet lost across escalation"
    for task_id, serial_out in zip(ids, serial_outputs):
        _assert_identical(results[task_id], serial_out)
    counters = report["counters"]
    assert counters["watchdog_flags"] >= 1
    assert counters["watchdog_kills"] >= 1
    assert counters["worker_crashes"] >= 1
    assert counters["respawns"] >= 1
    assert counters["duplicates"] == 0
    assert counters["completed"] == len(cases)
    assert report["watchdog"]["escalate"] is True


def test_mixed_shapes_with_affinity_decode_correctly(template):
    """Two frame lengths through shape_affinity: payloads decode clean and
    each shape settles on one worker (one extra link each, not two)."""
    mixed = [
        make_packet(60 + k, cfo_hz=50e3, extra_pad=(64 if k % 2 else 0))
        for k in range(4)
    ]
    fab = Fabric(
        workers=2, template_runtime=template, queue_depth=4, policy="shape_affinity"
    )
    with fab:
        ids = [fab.submit(case.rx) for case in mixed]
        results = fab.drain(timeout=300)
    for task_id, case in zip(ids, mixed):
        assert float(np.mean(results[task_id].bits != case.bits)) == 0.0
    report = fab.report()
    assert [w["shapes"] for w in report["per_worker"]] == [1, 1]
