"""Evaluation-harness unit tests (formatting and static reports).

The expensive modem-backed reports are exercised by the benchmark
harness and tests/modem; these tests cover the pieces that do not need
a packet simulation.
"""


from repro.eval import fig5_report, table1_text
from repro.modem.profile import PAPER_TABLE2, format_table2, table2_rows
from repro.modem.receiver import ReceiverOutput, RegionRun
from repro.sim.stats import ActivityStats, KernelProfile


def test_table1_contains_every_group():
    text = table1_text()
    for token in ["arith", "simd1", "simd2", "div", "ldmem", "branch"]:
        assert token in text
    # Table 1 anchors.
    assert "24" in text  # divider width
    assert "64" in text  # SIMD width


def test_paper_table2_totals_consistent():
    pre = [r for r in PAPER_TABLE2 if r[0] == "preamble" and r[1] != "total"]
    data = [r for r in PAPER_TABLE2 if r[0] == "data" and r[1] != "total"]
    assert sum(r[4] for r in pre) == 6105
    assert sum(r[4] for r in data) == 1531


def _fake_output():
    def region(name, cga_cycles, vliw_cycles, ops):
        stats = ActivityStats(cga_cycles=cga_cycles, vliw_cycles=vliw_cycles)
        stats.cga_ops = ops if cga_cycles else 0
        stats.vliw_ops = 0 if cga_cycles else ops
        return RegionRun(name, KernelProfile(name, stats))

    import numpy as np

    return ReceiverOutput(
        preamble_regions=[region("acorr", 90, 10, 400), region("fshift", 200, 4, 2400)],
        data_regions=[region("demod QAM64", 220, 4, 2500)],
        bits=np.zeros(4, dtype=np.int64),
        detect_pos=32,
        ltf1_start=224,
        coarse_cfo_hz=5e4,
        fine_cfo_hz=0.0,
        stats=ActivityStats(),
    )


def test_table2_rows_pair_with_paper():
    rows = table2_rows(_fake_output())
    acorr = next(r for r in rows if r.kernel == "acorr")
    assert acorr.paper_cycles == 122  # the first paper acorr row
    assert acorr.paper_mode == "mixed"
    demod = next(r for r in rows if r.kernel == "demod QAM64")
    assert demod.paper_cycles == 224
    totals = [r for r in rows if r.kernel == "total"]
    assert {t.paper_cycles for t in totals} == {6105, 1531}


def test_format_table2_renders():
    text = format_table2(table2_rows(_fake_output()))
    assert "acorr" in text and "paper" in text and "cycles" in text


def test_fig5_report_mentions_shares():
    text = fig5_report()
    assert "memories" in text and "5.79" in text
