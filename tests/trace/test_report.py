"""Run-report tests: build, schema-validate, roundtrip, CLI."""

import json
import os

import pytest

from repro.trace import (
    RUN_REPORT_SCHEMA,
    build_run_report,
    load_run_report,
    render_fu_heatmap,
    render_kernels,
    render_report,
    render_stalls,
    save_run_report,
    schema_errors,
)
from repro.trace import report as report_cli

SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "run_report.schema.json"
)


@pytest.fixture(scope="session")
def fir_report(fir_run):
    return build_run_report(
        "fir_test",
        [("smoke", p) for p in fir_run.profiles],
        fir_run.core.stats,
        tracer=fir_run.tracer,
        meta={"trip_count": 16},
        n_units=fir_run.arch.n_units,
    )


def test_report_validates_against_checked_in_schema(fir_report):
    with open(SCHEMA_PATH) as fh:
        schema = json.load(fh)
    assert schema_errors(fir_report, schema) == []


def test_schema_rejects_malformed_report(fir_report):
    with open(SCHEMA_PATH) as fh:
        schema = json.load(fh)
    broken = json.loads(json.dumps(fir_report))
    broken["totals"]["total_cycles"] = -1
    del broken["stall_breakdown"]["interlock"]
    broken["unexpected"] = True
    errors = schema_errors(broken, schema)
    assert any("below minimum" in e for e in errors)
    assert any("interlock" in e for e in errors)
    assert any("unexpected" in e for e in errors)


def test_stall_breakdown_sums_to_stall_cycles(fir_report):
    assert (
        sum(fir_report["stall_breakdown"].values())
        == fir_report["totals"]["stall_cycles"]
    )
    for row in fir_report["kernels"]:
        assert sum(row["stall_breakdown"].values()) == row["stall_cycles"]


def test_mode_timeline_and_fu_utilization(fir_report):
    modes = {t["mode"] for t in fir_report["mode_timeline"]}
    assert modes == {"CGA", "VLIW"}
    assert any(t["name"] == "cga:fir4" for t in fir_report["mode_timeline"])
    assert fir_report["fu_utilization"], "FIR run must exercise FUs"
    for row in fir_report["fu_utilization"]:
        assert 0 <= row["fu"] < fir_report["n_units"]
    assert fir_report["trace"]["events"] > 0


def test_save_load_roundtrip(tmp_path, fir_report):
    path = str(tmp_path / "report.json")
    save_run_report(fir_report, path)
    assert load_run_report(path) == json.loads(json.dumps(fir_report))


def test_load_rejects_foreign_documents(tmp_path):
    path = str(tmp_path / "other.json")
    with open(path, "w") as fh:
        json.dump({"schema": "something/else"}, fh)
    with pytest.raises(ValueError):
        load_run_report(path)


def test_renderers_cover_all_sections(fir_report):
    text = render_report(fir_report)
    assert "run report: fir_test" in text
    assert "stall attribution" in text
    assert "FU utilization" in text
    assert "fir4" in render_kernels(fir_report)
    assert "total" in render_stalls(fir_report)
    assert "fu0" in render_fu_heatmap(fir_report)


def test_cli_renders_saved_report(tmp_path, capsys, fir_report):
    path = str(tmp_path / "report.json")
    save_run_report(fir_report, path)
    assert report_cli.main([path]) == 0
    out = capsys.readouterr().out
    assert "run report: fir_test" in out
    assert "stall attribution" in out


def test_cli_fails_cleanly_on_missing_file(tmp_path, capsys):
    assert report_cli.main([str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_schema_identifier_is_stable(fir_report):
    assert fir_report["schema"] == RUN_REPORT_SCHEMA == "repro.run_report/v1"
