"""Exporter tests: Chrome trace mapping, golden FIR shape, Prometheus."""

import json
import os

from repro.trace import Tracer, chrome_trace, chrome_trace_events, prometheus_text

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "fir_trace_shape.json")


def _sample_tracer():
    tr = Tracer()
    tr.complete("cga:fir", 10, 40, cat="mode", args={"ii": 2})
    tr.instant("stall.icache_miss", 3, cat="stall", args={"pc": 0})
    tr.counter("occupancy", 12, {"fus": 9})
    return tr


def test_chrome_event_mapping():
    events = chrome_trace_events(_sample_tracer())
    meta = [e for e in events if e["ph"] == "M"]
    body = [e for e in events if e["ph"] != "M"]
    # Named tracks: one thread per seen category plus the process name.
    assert {m["args"]["name"] for m in meta} >= {"mode", "stall", "repro simulated core"}
    x, i, c = body
    assert x["ph"] == "X" and x["dur"] == 40 and x["args"] == {"ii": 2}
    assert i["ph"] == "i" and i["s"] == "t" and i["args"] == {"pc": 0}
    assert c["ph"] == "C" and c["args"] == {"fus": 9}
    # Distinct categories land on distinct threads of the one process.
    assert x["tid"] != i["tid"]
    assert all(e["pid"] == 1 for e in body)


def test_chrome_trace_document_shape():
    doc = chrome_trace(_sample_tracer(), meta={"seed": 7})
    # Loadable JSON with the keys the Chrome/Perfetto UIs expect.
    doc = json.loads(json.dumps(doc))
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["seed"] == 7
    assert doc["otherData"]["dropped_events"] == 0


def test_chrome_trace_golden_fir_shape(fir_run):
    """The traced FIR run emits a stable set of (phase, cat, name) shapes.

    Timings are free to move as the simulator evolves; the *kinds* of
    events a kernel run produces are the contract this golden file
    freezes.  Regenerate with tests/trace/regen_golden.py.
    """
    events = chrome_trace_events(fir_run.tracer)
    body = [e for e in events if e["ph"] != "M"]
    # Every event carries the Chrome-required keys and ts is in cycles.
    for event in body:
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
    shapes = sorted({(e["ph"], e["cat"], e["name"]) for e in body})
    with open(GOLDEN) as fh:
        golden = [tuple(entry) for entry in json.load(fh)]
    assert shapes == golden


def test_chrome_trace_covers_compiler_and_modes(fir_run):
    names = {e.name for e in fir_run.tracer.events}
    assert "modulo.search" in names  # II-search start
    assert "modulo.scheduled" in names  # placement success
    assert "cga:fir4" in names  # the kernel's mode span
    assert "vliw" in names  # surrounding glue code
    assert "dma.config_load" in names  # context preload on the bus


class _FakeStats:
    def as_dict(self):
        return {
            "counters": {"vliw_cycles": 10, "cga_cycles": 40},
            "fu_ops": {0: 7, 3: 9},
            "op_groups": {"simd1": 12},
            "stall_causes": {"bank_conflict": 4, "interlock": 0},
        }


def test_prometheus_text_format():
    text = prometheus_text(_FakeStats(), labels={"run": "t0"})
    lines = text.strip().splitlines()
    assert "# TYPE repro_sim_vliw_cycles counter" in lines
    assert 'repro_sim_vliw_cycles{run="t0"} 10' in lines
    assert 'repro_sim_fu_ops{fu="3",run="t0"} 9' in lines
    assert 'repro_sim_op_group_ops{group="simd1",run="t0"} 12' in lines
    assert 'repro_sim_stall_cycles_by_cause{cause="bank_conflict",run="t0"} 4' in lines
    assert text.endswith("\n")


def test_prometheus_text_without_labels():
    text = prometheus_text(_FakeStats())
    assert "repro_sim_cga_cycles 40" in text
