#!/usr/bin/env python
"""Regenerate golden/fir_trace_shape.json from the fixture workload.

Run after an intentional change to what the simulator/compiler emit:
    PYTHONPATH=src python tests/trace/regen_golden.py
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.trace import chrome_trace_events
from tests.trace.conftest import fir_run


def main():
    run = fir_run.__wrapped__()  # unwrap the pytest fixture
    events = chrome_trace_events(run.tracer)
    shapes = sorted({(e["ph"], e["cat"], e["name"]) for e in events if e["ph"] != "M"})
    path = os.path.join(os.path.dirname(__file__), "golden", "fir_trace_shape.json")
    with open(path, "w") as fh:
        json.dump([list(s) for s in shapes], fh, indent=1)
        fh.write("\n")
    print("wrote %s (%d shapes)" % (path, len(shapes)))


if __name__ == "__main__":
    main()
