"""Tracer semantics: spans, ring buffer, disabled path, clocks."""

import pytest

from repro.trace import NULL_TRACER, StallCause, TraceError, Tracer, get_tracer, set_tracer


def test_span_nesting_emits_balanced_begin_end():
    tr = Tracer()
    with tr.span("outer", 0):
        assert tr.depth == 1
        with tr.span("inner", 2, cat="mem"):
            assert tr.depth == 2
        tr.instant("mark", 5)
    assert tr.depth == 0
    kinds = [(e.kind, e.name) for e in tr.events]
    assert kinds == [
        ("B", "outer"),
        ("B", "inner"),
        ("E", "inner"),
        ("i", "mark"),
        ("E", "outer"),
    ]


def test_end_without_begin_raises():
    tr = Tracer()
    with pytest.raises(TraceError):
        tr.end(0)


def test_ring_buffer_overflow_keeps_newest_and_counts_drops():
    tr = Tracer(capacity=4)
    for i in range(7):
        tr.instant("e%d" % i, i)
    assert len(tr) == 4
    assert tr.dropped == 3
    assert [e.name for e in tr.events] == ["e3", "e4", "e5", "e6"]


def test_disabled_tracer_never_allocates():
    tr = Tracer(enabled=False)
    tr.instant("x", 0)
    tr.complete("y", 0, 5)
    tr.counter("z", 0, {"a": 1})
    tr.begin("b", 0)
    tr.end(0)  # no-op while disabled, no stack to pop
    assert tr._events is None
    assert len(tr) == 0
    assert tr.events == []
    assert NULL_TRACER._events is None


def test_base_offsets_timestamps():
    tr = Tracer()
    tr.set_base(100)
    tr.instant("a", 5)
    tr.advance_base(50)
    tr.complete("b", 5, 2)
    assert [e.ts for e in tr.events] == [105, 155]
    assert tr.base == 150


def test_tick_is_monotonic_and_clear_resets():
    tr = Tracer()
    assert [tr.tick(), tr.tick(), tr.tick()] == [1, 2, 3]
    tr.instant("x", 0)
    tr.clear()
    assert len(tr) == 0
    assert tr.dropped == 0
    assert tr.base == 0
    assert tr.tick() == 1


def test_global_tracer_install_and_restore():
    assert get_tracer() is NULL_TRACER
    mine = Tracer()
    previous = set_tracer(mine)
    try:
        assert previous is NULL_TRACER
        assert get_tracer() is mine
    finally:
        set_tracer(previous)
    assert get_tracer() is NULL_TRACER
    # None reinstalls the null tracer.
    set_tracer(mine)
    set_tracer(None)
    assert get_tracer() is NULL_TRACER


def test_stall_cause_values_are_stable():
    assert [c.value for c in StallCause] == [
        "bank_conflict",
        "icache_miss",
        "branch",
        "interlock",
        "dma_config",
    ]
