"""Shared workload for the trace tests: one traced FIR kernel run."""

from types import SimpleNamespace

import pytest

from repro.arch import paper_core
from repro.compiler import KernelBuilder
from repro.compiler.dfg import Const
from repro.compiler.linker import ProgramLinker
from repro.isa import Opcode
from repro.sim import Core
from repro.trace import Tracer, set_tracer


def build_fir_dfg(taps: int = 4):
    """A 4-tap streaming FIR over packed complex pairs."""
    kb = KernelBuilder("fir4")
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    i_src = kb.induction(0, 8)
    i_dst = kb.induction(0, 8)
    addr = kb.add(src, i_src)
    acc = None
    for k in range(taps):
        x = kb.load(Opcode.LD_Q, addr, offset=-k)
        term = kb.cmul(x, Const(0x4000_4000_4000_4000 >> k))
        acc = term if acc is None else kb.c4add(acc, term)
    kb.store(Opcode.ST_Q, kb.add(dst, i_dst), acc)
    return kb.finish()


@pytest.fixture(scope="session")
def fir_run():
    """Compile and simulate the FIR kernel with tracing on.

    The tracer is installed process-wide during compilation so the
    modulo scheduler's II-search events land in the same buffer the
    simulator fills.
    """
    arch = paper_core()
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        linker = ProgramLinker(arch, name="fir", seed=0)
        linker.call_kernel(
            build_fir_dfg(), live_ins={"src": 64, "dst": 2048}, trip_count=16
        )
        program = linker.link()
        core = Core(arch, program, tracer=tracer)
        core.load_configuration()
        profiles = []
        with core.region("fir4", profiles, ii=linker.kernel_results[0].ii):
            core.run()
    finally:
        set_tracer(previous)
    return SimpleNamespace(
        arch=arch,
        core=core,
        tracer=tracer,
        profiles=profiles,
        schedule=linker.kernel_results[0],
    )
