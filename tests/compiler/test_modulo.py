"""Modulo scheduler tests: legality, II quality, end-to-end execution."""

import pytest

from repro.arch import paper_core
from repro.arch.topology import mesh_topology
from repro.compiler import CompileError, KernelBuilder, ModuloScheduler
from repro.compiler.linker import ProgramLinker
from repro.isa import Opcode
from repro.isa.bits import pack_lanes, split_lanes
from repro.sim import Core


def compile_and_run(dfg, live_ins=None, trip=8, mem=(), arch=None):
    arch = arch or paper_core()
    linker = ProgramLinker(arch)
    outs = linker.call_kernel(dfg, live_ins=live_ins or {}, trip_count=trip)
    program = linker.link()
    core = Core(arch, program)
    for addr, value, size in mem:
        core.scratchpad.write_word(addr, value, size)
    core.run()
    return core, outs, linker.kernel_results[0]


def test_accumulator_end_to_end():
    kb = KernelBuilder("acc")
    kb.accumulate(Opcode.ADD, 5, init=0, live_out="sum")
    core, outs, result = compile_and_run(kb.finish(), trip=10)
    assert core.cdrf.peek(outs["sum"].index) == 50
    assert result.ii == 1


def test_vector_sum_end_to_end():
    n = 16
    kb = KernelBuilder("vsum")
    base = kb.live_in("base")
    i = kb.induction(0, 4)
    addr = kb.add(base, i)
    x = kb.load(Opcode.LD_I, addr)
    kb.accumulate(Opcode.ADD, x, init=0, live_out="sum")
    mem = [(256 + 4 * k, k + 1, 4) for k in range(n)]
    core, outs, result = compile_and_run(
        kb.finish(), live_ins={"base": 256}, trip=n, mem=mem
    )
    assert core.cdrf.peek(outs["sum"].index) == n * (n + 1) // 2


def test_vector_scale_store_end_to_end():
    """dst[i] = src[i] * 3 for 12 elements."""
    n = 12
    kb = KernelBuilder("scale")
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    i = kb.induction(0, 4)
    load_addr = kb.add(src, i)
    x = kb.load(Opcode.LD_I, load_addr)
    y = kb.mul(x, 3)
    store_addr = kb.add(dst, i)
    kb.store(Opcode.ST_I, store_addr, y)
    mem = [(4 * k, k + 1, 4) for k in range(n)]
    core, outs, result = compile_and_run(
        kb.finish(), live_ins={"src": 0, "dst": 512}, trip=n, mem=mem
    )
    for k in range(n):
        assert core.scratchpad.read_word(512 + 4 * k) == (k + 1) * 3


def test_simd_kernel_end_to_end():
    """64-bit SIMD load, lane-wise multiply, accumulate, one II per element."""
    n = 8
    kb = KernelBuilder("simdacc")
    base = kb.live_in("base")
    i = kb.induction(0, 8)
    addr = kb.add(base, i)
    x = kb.load(Opcode.LD_Q, addr)
    y = kb.d4prod(x, x)  # lane-wise squares (Q15)
    kb.accumulate(Opcode.C4ADD, y, init=0, live_out="acc")
    # Lanes hold Q15 value 0.25 -> square = 0.0625 (2048); the sum of 8
    # squares (16384) stays inside the 16-bit lane range.
    quarter = 1 << 13
    word = pack_lanes([quarter, quarter, quarter, quarter])
    mem = []
    for k in range(n):
        mem.append((8 * k, word & 0xFFFFFFFF, 4))
        mem.append((8 * k + 4, word >> 32, 4))
    core, outs, result = compile_and_run(
        kb.finish(), live_ins={"base": 0}, trip=n, mem=mem
    )
    acc = core.cdrf.peek(outs["acc"].index)
    lanes = split_lanes(acc)
    assert lanes == [n * 2048] * 4


def test_schedule_respects_ii_lower_bound():
    """20 independent adds cannot fit under II=2 on 16 units... MII=2."""
    kb = KernelBuilder("wide")
    for k in range(20):
        x = kb.add(k, k + 1)
        kb.store(Opcode.ST_I, 4 * k, x)
    dfg = kb.finish()
    sched = ModuloScheduler(dfg, paper_core())
    # 20 adds + 20 stores = 40 ops over 16 units -> ResMII >= 3;
    # 20 stores over 4 memory units -> ResMII >= 5.
    assert sched.min_ii() >= 5
    result = sched.schedule(trip_count=2)
    assert result.ii >= 5


def test_memory_pressure_bounds_ii():
    kb = KernelBuilder("mem")
    base = kb.live_in("base")
    i = kb.induction(0, 4)
    addr = kb.add(base, i)
    vals = [kb.load(Opcode.LD_I, addr, offset=4 * k) for k in range(8)]
    total = vals[0]
    for v in vals[1:]:
        total = kb.add(total, v)
    kb.accumulate(Opcode.ADD, total, init=0, live_out="sum")
    sched = ModuloScheduler(kb.finish(), paper_core())
    # 8 loads over 4 memory units -> MII >= 2.
    assert sched.min_ii() >= 2


def test_unschedulable_raises():
    kb = KernelBuilder("impossible")
    acc = kb.accumulate(Opcode.ADD, 1, init=0, live_out="x")
    sched = ModuloScheduler(kb.finish(), paper_core(), max_ii=0)
    with pytest.raises(CompileError):
        sched.schedule(live_out_regs={"x": 60}, trip_count=1)


def test_missing_live_in_register_raises():
    kb = KernelBuilder("k")
    base = kb.live_in("base")
    i = kb.induction(0, 4)
    a = kb.add(base, i)
    kb.store(Opcode.ST_I, a, 0)
    sched = ModuloScheduler(kb.finish(), paper_core())
    with pytest.raises(CompileError):
        sched.schedule(trip_count=1)  # no register for "base"


def test_sparser_interconnect_needs_same_or_higher_ii():
    """Ablation hook: plain mesh must never beat the dense interconnect."""
    def build():
        kb = KernelBuilder("chain")
        base = kb.live_in("base")
        i = kb.induction(0, 4)
        addr = kb.add(base, i)
        x = kb.load(Opcode.LD_I, addr)
        y = kb.mul(x, 3)
        z = kb.add(y, 7)
        w = kb.mul(z, z)
        kb.store(Opcode.ST_I, addr, w, offset=256)
        return kb.finish()

    dense = ModuloScheduler(build(), paper_core()).schedule(
        live_in_regs={"base": 60}, trip_count=4
    )
    sparse_arch = paper_core(interconnect=mesh_topology(4, 4))
    sparse = ModuloScheduler(build(), sparse_arch).schedule(
        live_in_regs={"base": 60}, trip_count=4
    )
    assert sparse.ii >= dense.ii
    assert sparse.n_moves >= dense.n_moves


def test_kernel_ipc_scales_with_parallelism():
    """A wide reduction tree should reach high IPC on the array."""
    kb = KernelBuilder("wideacc")
    # 8 independent leaf adds -> 4 -> 2 -> 1, then accumulate: 16 ops/iter.
    level = [kb.add(k + 1, k + 2) for k in range(8)]
    while len(level) > 1:
        level = [kb.add(level[i], level[i + 1]) for i in range(0, len(level), 2)]
    kb.accumulate(Opcode.ADD, level[0], init=0, live_out="sum")
    core, outs, result = compile_and_run(kb.finish(), trip=32)
    cga_ipc = core.stats.cga_ops / max(core.stats.cga_cycles, 1)
    assert result.ii <= 2
    assert cga_ipc > 6
    # Functional check: per-iteration sum of 1..9 pair tree.
    expected_per_iter = sum(k + 1 for k in range(8)) + sum(k + 2 for k in range(8))
    assert core.cdrf.peek(outs["sum"].index) == 32 * expected_per_iter
