"""VLIW list scheduler and linker tests."""

import pytest

from repro.arch import paper_core
from repro.compiler import CompileError, KernelBuilder
from repro.compiler.builder import PhysReg, VliwBuilder
from repro.compiler.linker import ProgramLinker
from repro.compiler.vliw_sched import RegisterMap, schedule_vliw
from repro.isa import Opcode
from repro.sim import Core


def run_section(build_fn, mem=()):
    arch = paper_core()
    linker = ProgramLinker(arch)
    build_fn(linker.vliw())
    program = linker.link()
    core = Core(arch, program)
    for addr, value, size in mem:
        core.scratchpad.write_word(addr, value, size)
    core.run()
    return core


def test_straight_line_section():
    result_reg = PhysReg(40)

    def build(vb):
        a = vb.mov_imm(6)
        b = vb.mov_imm(7)
        c = vb.op(Opcode.MUL, a, b)
        vb.op(Opcode.ADD, c, 0, dst=result_reg)

    core = run_section(build)
    assert core.cdrf.peek(40) == 42


def test_independent_ops_pack_into_one_bundle():
    arch = paper_core()
    vb = VliwBuilder("pack")
    vb.mov_imm(1)
    vb.mov_imm(2)
    vb.mov_imm(3)
    section = vb.finish()
    slot_groups = [fu.groups for fu in arch.vliw_fus]
    regs = RegisterMap(list(range(1, 32)), list(range(1, 60)))
    bundles = schedule_vliw(section, slot_groups, regs)
    assert len(bundles) == 1
    assert sum(1 for s in bundles[0].slots if s is not None) == 3


def test_dependent_ops_serialise():
    arch = paper_core()
    vb = VliwBuilder("chain")
    a = vb.mov_imm(1)
    b = vb.add(a, 1)
    c = vb.add(b, 1)
    section = vb.finish()
    slot_groups = [fu.groups for fu in arch.vliw_fus]
    regs = RegisterMap(list(range(1, 32)), list(range(1, 60)))
    bundles = schedule_vliw(section, slot_groups, regs)
    assert len(bundles) == 3


def test_counted_loop_executes_trip_times():
    acc = PhysReg(41)

    def build(vb):
        vb.op(Opcode.ADD, 0, 0, dst=acc)
        with vb.counted_loop(9):
            vb.op(Opcode.ADD, acc, 5, dst=acc)

    core = run_section(build)
    assert core.cdrf.peek(41) == 45


def test_loop_with_memory():
    out = PhysReg(42)

    def build(vb):
        base = vb.mov_imm(0)
        idx = vb.mov_imm(0)
        vb.op(Opcode.ADD, 0, 0, dst=out)
        with vb.counted_loop(6):
            x = vb.op(Opcode.LD_I, idx, 0)
            vb.op(Opcode.ADD, out, x, dst=out)
            vb.op(Opcode.ADD, idx, 4, dst=idx)

    mem = [(4 * k, 10 * (k + 1), 4) for k in range(6)]
    core = run_section(build, mem=mem)
    assert core.cdrf.peek(42) == 10 * 21


def test_store_in_loop():
    def build(vb):
        addr = vb.mov_imm(128)
        val = vb.mov_imm(1)
        with vb.counted_loop(4):
            vb.store(Opcode.ST_I, addr, 0, val)
            vb.op(Opcode.ADD, addr, 4, dst=addr)
            vb.op(Opcode.ADD, val, val, dst=val)

    core = run_section(build)
    assert [core.scratchpad.read_word(128 + 4 * k) for k in range(4)] == [1, 2, 4, 8]


def test_vliw_ipc_in_paper_range():
    """Rolled loops with dependences land in the paper's 1-2.7 VLIW IPC."""

    def build(vb):
        a = vb.mov_imm(0)
        b = vb.mov_imm(100)
        with vb.counted_loop(50):
            x = vb.add(a, 1)
            y = vb.add(b, 2)
            vb.add(x, y)

    core = run_section(build)
    ipc = core.stats.vliw_ops / core.stats.vliw_cycles
    assert 0.5 < ipc < 3.0


def test_nested_loops_rejected():
    vb = VliwBuilder("nested")
    with pytest.raises(CompileError):
        with vb.counted_loop(2):
            with vb.counted_loop(2):
                pass


def test_linker_kernel_then_vliw_consumes_liveout():
    kb = KernelBuilder("acc")
    kb.accumulate(Opcode.ADD, 3, init=0, live_out="sum")
    arch = paper_core()
    linker = ProgramLinker(arch)
    outs = linker.call_kernel(kb.finish(), trip_count=7)
    final = PhysReg(45)
    linker.vliw().op(Opcode.ADD, outs["sum"], 100, dst=final)
    program = linker.link()
    core = Core(arch, program)
    core.run()
    assert core.cdrf.peek(45) == 121


def test_linker_two_kernels_chained():
    """Kernel 2's trip count comes from kernel 1's live-out."""
    kb1 = KernelBuilder("k1")
    kb1.accumulate(Opcode.ADD, 1, init=0, live_out="n")
    kb2 = KernelBuilder("k2")
    kb2.accumulate(Opcode.ADD, 10, init=0, live_out="total")
    arch = paper_core()
    linker = ProgramLinker(arch)
    outs1 = linker.call_kernel(kb1.finish(), trip_count=5)  # n = 5
    outs2 = linker.call_kernel(kb2.finish(), trip_count=outs1["n"])
    program = linker.link()
    core = Core(arch, program)
    core.run()
    assert core.cdrf.peek(outs2["total"].index) == 50


def test_register_exhaustion_raises():
    vb_arch = paper_core()
    linker = ProgramLinker(vb_arch)
    vb = linker.vliw()
    with pytest.raises(CompileError):
        for _ in range(100):
            vb.mov_imm(1)
        linker.link()
