"""DFG construction and analysis tests."""

import pytest

from repro.compiler import CompileError, Const, Dfg, KernelBuilder, LiveIn, NodeRef
from repro.isa import Opcode


def test_add_node_and_refs():
    dfg = Dfg("t")
    a = dfg.add_node(Opcode.ADD, [Const(1), Const(2)])
    b = dfg.add_node(Opcode.SUB, [a, Const(1)], live_out="out")
    assert dfg.op_count() == 2
    assert dfg.live_outs == ["out"]
    assert [c.node_id for c, _ in dfg.consumers(a.node_id)] == [b.node_id]


def test_forward_distance0_reference_rejected():
    dfg = Dfg("t")
    with pytest.raises(CompileError):
        dfg.add_node(Opcode.ADD, [NodeRef(5), Const(0)])


def test_distance_rules():
    with pytest.raises(CompileError):
        NodeRef(0, distance=2, init=0)
    with pytest.raises(CompileError):
        NodeRef(0, distance=1)  # init required
    with pytest.raises(CompileError):
        NodeRef(0, distance=0, init=3)  # init meaningless


def test_undeclared_live_in_rejected():
    dfg = Dfg("t")
    with pytest.raises(CompileError):
        dfg.add_node(Opcode.ADD, [LiveIn("nope"), Const(0)])


def test_dead_code_detected():
    kb = KernelBuilder("dead")
    kb.add(1, 2)  # no side effect, no consumer
    with pytest.raises(CompileError):
        kb.finish()


def test_duplicate_live_out_rejected():
    dfg = Dfg("t")
    a = dfg.add_node(Opcode.ADD, [Const(1), Const(2)], live_out="x")
    with pytest.raises(CompileError):
        dfg.add_node(Opcode.ADD, [a, Const(0)], live_out="x")


def test_mem_op_count_and_critical_path():
    kb = KernelBuilder("cp")
    base = kb.live_in("base")
    i = kb.induction(0, 4)
    addr = kb.add(base, i)
    x = kb.load(Opcode.LD_I, addr)
    y = kb.mul(x, x)
    kb.store(Opcode.ST_I, addr, y, offset=64)
    dfg = kb.finish()
    assert dfg.mem_op_count() == 2
    # induction(1) -> addr(1) -> load(5) -> mul(2) -> store(1)
    assert dfg.critical_path() >= 10


def test_recurrence_mii_accumulator_is_1():
    kb = KernelBuilder("acc")
    acc = kb.accumulate(Opcode.ADD, 5, init=0, live_out="sum")
    dfg = kb.finish()
    assert dfg.recurrence_mii() == 1


def test_recurrence_mii_long_cycle():
    """A 2-node cycle with a 2-cycle mul forces II >= 3."""
    kb = KernelBuilder("rec")
    dfg = kb.dfg
    # a = mul(b_prev, c); b = add(a, 1): cycle latency = 2 + 1 = 3, distance 1.
    a = dfg.add_node(Opcode.MUL, [Const(0), Const(3)])
    b = dfg.add_node(Opcode.ADD, [a, Const(1)], live_out="out")
    dfg.nodes[a.node_id].srcs = (NodeRef(b.node_id, distance=1, init=1), Const(3))
    assert dfg.recurrence_mii() == 3


def test_induction_semminatics_init_offset():
    kb = KernelBuilder("ind")
    i = kb.induction(init=100, step=8)
    kb.store(Opcode.ST_I, i, 1)
    dfg = kb.finish()
    node = dfg.nodes[i.node_id]
    self_ref = node.srcs[0]
    assert isinstance(self_ref, NodeRef)
    assert self_ref.distance == 1
    # First iteration reads init - step so the body sees init + k*step.
    assert self_ref.init == (100 - 8)
