"""Differential property test: random DFGs, interpreter vs compiled array.

For randomly generated loop bodies, the value computed by a direct
Python interpretation of the DFG (using the shared ISA semantics) must
equal the value produced by modulo-scheduling the DFG onto the 4x4
array and executing it on the cycle-accurate simulator.  This covers the
scheduler's placement/routing legality, phi initialisation, stage
gating, latch lifetimes and move insertion in one property.
"""

from typing import Dict, List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import paper_core
from repro.compiler import KernelBuilder
from repro.compiler.dfg import Const, Dfg, NodeRef
from repro.compiler.linker import ProgramLinker
from repro.isa import Opcode
from repro.isa.bits import MASK64
from repro.isa.semantics import execute as exec_semantics
from repro.sim import Core

#: Dataflow opcodes the generator may pick (2-source, no memory).
OP_POOL = [
    Opcode.ADD,
    Opcode.SUB,
    Opcode.XOR,
    Opcode.AND,
    Opcode.OR,
    Opcode.MUL,
    Opcode.C4ADD,
    Opcode.C4SUB,
    Opcode.D4PROD,
    Opcode.C4PROD,
    Opcode.C4MAX,
    Opcode.C4MIN,
]


def interpret(dfg: Dfg, trip: int) -> int:
    """Reference interpreter: returns the final live-out value."""
    prev: Dict[int, int] = {}
    live_out_value = 0
    for _iteration in range(trip):
        current: Dict[int, int] = {}
        for nid in sorted(dfg.nodes):
            node = dfg.nodes[nid]
            srcs = []
            for ref in node.srcs:
                if isinstance(ref, Const):
                    srcs.append(ref.value & MASK64)
                elif isinstance(ref, NodeRef):
                    if ref.distance == 0:
                        srcs.append(current[ref.node_id])
                    else:
                        srcs.append(prev.get(ref.node_id, ref.init & MASK64)
                                    if ref.node_id in prev
                                    else ref.init & MASK64)
                else:  # pragma: no cover
                    raise AssertionError("unexpected operand")
            current[nid] = exec_semantics(node.opcode, srcs)
            if node.live_out is not None:
                live_out_value = current[nid]
        prev = current
    return live_out_value


@st.composite
def random_dfg(draw):
    """A random loop body: a DAG of arithmetic ops + one accumulator."""
    kb = KernelBuilder("prop")
    n_ops = draw(st.integers(min_value=1, max_value=8))
    refs: List = []
    for _ in range(n_ops):
        op = draw(st.sampled_from(OP_POOL))
        def operand():
            if refs and draw(st.booleans()):
                return draw(st.sampled_from(refs))
            return Const(draw(st.integers(min_value=0, max_value=MASK64)))
        refs.append(kb.op(op, operand(), operand()))
    acc_op = draw(st.sampled_from([Opcode.ADD, Opcode.XOR, Opcode.C4ADD]))
    init = draw(st.integers(min_value=0, max_value=MASK64))
    kb.accumulate(acc_op, refs[-1], init=init, live_out="out")
    # Mark any dangling roots as consumed via a cheap combine so the
    # DFG has no dead code.
    used = set()
    for node in kb.dfg.nodes.values():
        for ref in node.srcs:
            if isinstance(ref, NodeRef):
                used.add(ref.node_id)
    for ref in refs[:-1]:
        if ref.node_id not in used:
            kb.dfg.nodes[ref.node_id].live_out = None
            # fold into the accumulator chain through an xor with 0 use
            kb.accumulate(Opcode.XOR, ref, init=0, live_out=None)
    # accumulators without live-out would be dead; give them names.
    names = 0
    for node in kb.dfg.nodes.values():
        if not node.has_side_effect and not kb.dfg.consumers(node.node_id):
            node.live_out = "aux%d" % names
            kb.dfg.live_outs.append(node.live_out)
            names += 1
    trip = draw(st.integers(min_value=1, max_value=6))
    return kb.finish(), trip


@settings(max_examples=25, deadline=None)
@given(random_dfg())
def test_compiled_kernel_matches_interpreter(case):
    dfg, trip = case
    expected = interpret(dfg, trip)
    arch = paper_core()
    linker = ProgramLinker(arch, seed=1)
    outs = linker.call_kernel(dfg, live_ins={}, trip_count=trip)
    core = Core(arch, linker.link())
    core.run()
    got = core.cdrf.peek(outs["out"].index)
    assert got == expected
