"""MRRG resource-model unit tests."""

import pytest

from repro.arch import paper_core
from repro.compiler.dfg import CompileError
from repro.compiler.mrrg import Mrrg


@pytest.fixture
def mrrg():
    return Mrrg(paper_core(), ii=4)


class TestSlots:
    def test_claim_and_conflict(self, mrrg):
        assert mrrg.slot_free(3, 1)
        mrrg.claim_slot(3, 1, uid=7)
        assert not mrrg.slot_free(3, 1)
        assert not mrrg.slot_free(3, 5)  # 5 mod 4 == 1
        assert mrrg.slot_free(3, 2)
        with pytest.raises(CompileError):
            mrrg.claim_slot(3, 5, uid=8)

    def test_slots_per_unit_independent(self, mrrg):
        mrrg.claim_slot(0, 0, uid=1)
        assert mrrg.slot_free(1, 0)


class TestCommitsAndWindows:
    def test_commit_uniqueness(self, mrrg):
        mrrg.claim_commit(2, 1)
        assert not mrrg.commit_free(2, 5)  # same phase
        assert mrrg.commit_free(2, 2)

    def test_window_blocks_foreign_commits(self, mrrg):
        mrrg.claim_commit(2, 0)
        mrrg.extend_window(2, 0, 2)  # value live through phases 1, 2
        assert not mrrg.commit_free(2, 1)
        assert not mrrg.commit_free(2, 2)
        assert mrrg.commit_free(2, 3)

    def test_window_cannot_swallow_existing_commit(self, mrrg):
        mrrg.claim_commit(2, 0)
        mrrg.claim_commit(2, 2)
        assert mrrg.can_extend_window(2, 0, 1)
        assert not mrrg.can_extend_window(2, 0, 2)

    def test_window_bounded_by_ii(self, mrrg):
        mrrg.claim_commit(2, 0)
        assert not mrrg.can_extend_window(2, 0, 4)  # >= II
        assert mrrg.can_extend_window(2, 0, 3)

    def test_window_wraps_modulo_ii(self, mrrg):
        mrrg.claim_commit(2, 3)
        mrrg.extend_window(2, 3, 2)  # live through phases 0 and 1
        assert not mrrg.commit_free(2, 0)
        assert not mrrg.commit_free(2, 1)
        assert mrrg.commit_free(2, 2)


class TestPorts:
    def test_cdrf_read_budget(self, mrrg):
        for _ in range(6):
            mrrg.claim_cdrf_read(2)
        assert not mrrg.cdrf_read_free(2)
        assert mrrg.cdrf_read_free(3)
        with pytest.raises(CompileError):
            mrrg.claim_cdrf_read(6)  # phase 2 again

    def test_cdrf_write_budget(self, mrrg):
        for _ in range(3):
            mrrg.claim_cdrf_write(0)
        assert not mrrg.cdrf_write_free(4)
        with pytest.raises(CompileError):
            mrrg.claim_cdrf_write(0)


class TestLrf:
    def test_entries_allocate_and_reuse(self, mrrg):
        e1 = mrrg.claim_lrf(5, "base")
        e2 = mrrg.claim_lrf(5, "base")
        assert e1 == e2
        e3 = mrrg.claim_lrf(5, "coeff")
        assert e3 != e1

    def test_vliw_units_have_no_lrf(self, mrrg):
        assert not mrrg.lrf_alloc_free(0, "base")

    def test_exhaustion(self, mrrg):
        for k in range(8):
            mrrg.claim_lrf(5, "v%d" % k)
        assert not mrrg.lrf_alloc_free(5, "v8")
        with pytest.raises(CompileError):
            mrrg.claim_lrf(5, "v8")

    def test_preload_list(self, mrrg):
        mrrg.claim_lrf(5, "base")
        mrrg.claim_lrf(7, "coeff")
        assert mrrg.preload_list() == [(5, 0, "base"), (7, 0, "coeff")]


class TestCheckpoint:
    def test_restore_rolls_back(self, mrrg):
        snap = mrrg.checkpoint()
        mrrg.claim_slot(0, 0, uid=1)
        mrrg.claim_commit(0, 1)
        mrrg.claim_cdrf_read(0)
        mrrg.restore(snap)
        assert mrrg.slot_free(0, 0)
        assert mrrg.commit_free(0, 1)
        assert mrrg.cdrf_read_free(0, 6)

    def test_utilization(self, mrrg):
        assert mrrg.utilization() == 0.0
        mrrg.claim_slot(0, 0, uid=1)
        assert mrrg.utilization() == pytest.approx(1 / 64)
