"""Schedule-cache tests: structural keying, disk persistence, corruption."""

import dataclasses
import glob

import pytest

from repro.arch import small_test_core
from repro.arch.topology import mesh_topology
from repro.compiler import KernelBuilder
from repro.compiler.linker import (
    _SCHEDULE_CACHE,
    ProgramLinker,
    clear_schedule_cache,
    configure_schedule_cache,
    schedule_cache_stats,
)
from repro.compiler.modulo import ModuloScheduler
from repro.isa import Opcode


def _make_dfg(name="cache_probe"):
    kb = KernelBuilder(name)
    base = kb.live_in("base")
    i = kb.induction(0, 4)
    x = kb.load(Opcode.LD_I, kb.add(base, i))
    kb.accumulate(Opcode.ADD, x, init=0, live_out="sum")
    return kb.finish()


@pytest.fixture
def counted_schedule(monkeypatch):
    """Count ModuloScheduler.schedule invocations."""
    calls = []
    original = ModuloScheduler.schedule

    def wrapper(self, *args, **kwargs):
        calls.append(self.dfg.name)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(ModuloScheduler, "schedule", wrapper)
    return calls


@pytest.fixture(autouse=True)
def _isolated_cache():
    """Protect the process-wide cache from, and for, other tests."""
    saved = dict(_SCHEDULE_CACHE)
    clear_schedule_cache()
    configure_schedule_cache(None)
    try:
        yield
    finally:
        configure_schedule_cache(None)
        clear_schedule_cache()
        _SCHEDULE_CACHE.update(saved)


def test_fingerprint_stable_and_name_independent():
    arch = small_test_core()
    assert arch.fingerprint() == small_test_core().fingerprint()
    renamed = dataclasses.replace(arch, name="something-else")
    assert renamed.fingerprint() == arch.fingerprint()


def test_fingerprint_differs_for_structural_change():
    arch = small_test_core()
    variant = dataclasses.replace(
        arch, interconnect=mesh_topology(arch.rows, arch.cols)
    )
    assert variant.fingerprint() != arch.fingerprint()


def test_same_name_architectures_do_not_alias(counted_schedule):
    """Two same-name archs with different interconnects must each get
    their own schedule (the cache used to key on ``arch.name``)."""
    arch_full = small_test_core()  # full topology
    arch_mesh = dataclasses.replace(
        arch_full, interconnect=mesh_topology(arch_full.rows, arch_full.cols)
    )
    assert arch_full.name == arch_mesh.name
    for arch in (arch_full, arch_mesh):
        linker = ProgramLinker(arch)
        linker.call_kernel(_make_dfg(), live_ins={"base": 256}, trip_count=8)
        linker.link()
    assert len(counted_schedule) == 2


def test_identical_link_hits_memory_cache(counted_schedule):
    arch = small_test_core()
    for _ in range(2):
        linker = ProgramLinker(arch)
        linker.call_kernel(_make_dfg(), live_ins={"base": 256}, trip_count=8)
        linker.link()
    assert len(counted_schedule) == 1
    assert schedule_cache_stats()["memory_hits"] == 1


def _link_once(arch):
    linker = ProgramLinker(arch)
    outs = linker.call_kernel(_make_dfg(), live_ins={"base": 256}, trip_count=8)
    return linker.link(), outs


def test_disk_cache_eliminates_scheduling(tmp_path, counted_schedule):
    arch = small_test_core()
    configure_schedule_cache(str(tmp_path))
    program_a, _ = _link_once(arch)
    assert len(counted_schedule) == 1
    files = glob.glob(str(tmp_path / "*.sched.pkl"))
    assert len(files) == 1

    # A "fresh process": empty memory cache, warm directory.
    clear_schedule_cache()
    program_b, _ = _link_once(arch)
    assert len(counted_schedule) == 1  # no new compile
    assert schedule_cache_stats() == {"memory_hits": 0, "disk_hits": 1, "misses": 0}
    assert repr(program_b.kernels[0]) == repr(program_a.kernels[0])


def test_corrupt_cache_file_recompiles_and_heals(tmp_path, counted_schedule):
    arch = small_test_core()
    configure_schedule_cache(str(tmp_path))
    _link_once(arch)
    (path,) = glob.glob(str(tmp_path / "*.sched.pkl"))

    for garbage in (b"", b"\x80\x05garbage", b"not a pickle at all"):
        with open(path, "wb") as fh:
            fh.write(garbage)
        clear_schedule_cache()
        _link_once(arch)  # must fall back to a recompile, not crash
        assert schedule_cache_stats()["misses"] == 1
        # The recompile rewrote a valid file: a second fresh load hits disk.
        clear_schedule_cache()
        _link_once(arch)
        assert schedule_cache_stats()["disk_hits"] == 1


def test_stale_key_in_cache_file_is_a_miss(tmp_path, counted_schedule):
    """A digest collision / stale payload degrades to a recompile."""
    import pickle

    arch = small_test_core()
    configure_schedule_cache(str(tmp_path))
    _link_once(arch)
    (path,) = glob.glob(str(tmp_path / "*.sched.pkl"))
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    payload["key"] = ("wrong",)
    with open(path, "wb") as fh:
        pickle.dump(payload, fh)
    clear_schedule_cache()
    _link_once(arch)
    assert schedule_cache_stats()["misses"] == 1


def test_env_var_provides_default_cache_dir(tmp_path, monkeypatch, counted_schedule):
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE", str(tmp_path))
    _link_once(small_test_core())
    assert glob.glob(str(tmp_path / "*.sched.pkl"))
