"""FFT, MIMO (SDM/equaliser), CORDIC and VLIW kernel tests vs golden."""

import numpy as np
import pytest

from repro.arch import paper_core
from repro.compiler.builder import PhysReg
from repro.compiler.linker import ProgramLinker
from repro.kernels.common import (
    load_complex_array,
    pack_complex_word,
    store_complex_array,
)
from repro.kernels.fft import (
    all_stage_halves,
    build_reorder_dfg,
    build_stage1_dfg,
    build_stage_dfg,
    reorder_table_words,
    stage_params,
    stage_twiddle_words,
)
from repro.kernels.sdm import W_SHIFT, build_eqcoef_dfg, build_sdm_dfg
from repro.kernels.sync import (
    atan_table_q16,
    angle_q16_to_hz,
    build_cordic_dfg,
    cordic_atan2_q16,
)
from repro.kernels import vliw_kernels
from repro.isa.bits import to_signed
from repro.phy.fft import fft_fixed
from repro.phy.fixed import q15, quantize_complex
from repro.sim import Core


@pytest.fixture(scope="module")
def arch():
    return paper_core()


class TestFftKernels:
    """Full 64-point FFT: reorder + stage1 + 5 generic stages."""

    def _run_fft(self, arch, re, im):
        n = 64
        buf_in, buf, tab_addr, tw_addr = 0, 512, 4096, 5120
        linker = ProgramLinker(arch)
        reorder = build_reorder_dfg()
        linker.call_kernel(
            reorder, live_ins={"src": buf_in, "dst": buf, "tab": tab_addr}, trip_count=n
        )
        linker.call_kernel(build_stage1_dfg(), live_ins={"buf": buf}, trip_count=n // 2)
        stage_dfg = build_stage_dfg()
        tw_tables = {}
        offset = 0
        for half in all_stage_halves(n):
            params = stage_params(n, half)
            words = stage_twiddle_words(n, half)
            tw_tables[half] = (tw_addr + offset, words)
            linker.call_kernel(
                build_stage_dfg("fft_stage_h%d" % half),
                live_ins={
                    "buf": buf,
                    "tw": tw_addr + offset,
                    **params,
                },
                trip_count=n // 4,
            )
            offset += 8 * len(words)
        program = linker.link()
        core = Core(arch, program)
        store_complex_array(core.scratchpad, buf_in, re, im)
        for k, byte_off in enumerate(reorder_table_words(n)):
            core.scratchpad.write_word(tab_addr + 4 * k, byte_off, 4)
        for half, (addr, words) in tw_tables.items():
            for k, w in enumerate(words):
                core.scratchpad.write_word(addr + 8 * k, w, 8)
        core.run()
        return core, load_complex_array(core.scratchpad, buf, n)

    def test_fft64_matches_fixed_point_golden(self, arch):
        rng = np.random.default_rng(11)
        x = 0.25 * (rng.normal(size=64) + 1j * rng.normal(size=64))
        re, im = quantize_complex(x)
        core, (got_re, got_im) = self._run_fft(arch, re, im)
        exp_re, exp_im = fft_fixed(re, im)
        assert np.array_equal(got_re, exp_re)
        assert np.array_equal(got_im, exp_im)

    def test_fft64_single_tone(self, arch):
        n, k0 = 64, 3
        t = np.arange(n)
        x = 0.4 * np.exp(2j * np.pi * k0 * t / n)
        re, im = quantize_complex(x)
        core, (got_re, got_im) = self._run_fft(arch, re, im)
        mags = got_re.astype(np.int64) ** 2 + got_im.astype(np.int64) ** 2
        assert int(np.argmax(mags)) == k0
        # CGA-dominated region.
        assert core.stats.cga_fraction > 0.7


class TestMimoKernels:
    def _pack_matrix_rows(self, m, scale):
        """2x2 complex matrix -> two packed words (row-major)."""
        words = []
        for r in range(2):
            re0, im0 = int(q15(m[r, 0].real * scale)), int(q15(m[r, 0].imag * scale))
            re1, im1 = int(q15(m[r, 1].real * scale)), int(q15(m[r, 1].imag * scale))
            lo = pack_complex_word(re0, im0)
            hi = pack_complex_word(re1, im1)
            words.append(lo | (hi << 32))
        return words

    def test_eqcoef_then_sdm_recovers_streams(self, arch):
        """W = inv(H) computed on the array, then x_hat = W y."""
        rng = np.random.default_rng(12)
        n_carriers = 8
        hbase, wbase, ybase, xbase = 0, 512, 1024, 1536
        linker = ProgramLinker(arch)
        linker.call_kernel(
            build_eqcoef_dfg(),
            live_ins={"hbase": hbase, "wbase": wbase},
            trip_count=n_carriers,
        )
        linker.call_kernel(
            build_sdm_dfg(),
            live_ins={"ybase": ybase, "wbase": wbase, "xbase": xbase},
            trip_count=n_carriers,
        )
        program = linker.link()
        core = Core(arch, program)
        hs, xs, ys = [], [], []
        for c in range(n_carriers):
            # Well-conditioned random channel: the fixed-point W is Q8
            # and |det|^2 is Q15, so near-singular draws would amplify
            # quantisation beyond the check tolerance.
            while True:
                h = (rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))) * 0.25
                h += 0.4 * np.eye(2)
                if abs(np.linalg.det(h)) >= 0.15:
                    break
            x = (rng.normal(size=2) + 1j * rng.normal(size=2)) * 0.2
            y = h @ x
            hs.append(h)
            xs.append(x)
            ys.append(y)
            for i, w in enumerate(self._pack_matrix_rows(h, 1.0)):
                core.scratchpad.write_word(hbase + 16 * c + 8 * i, w, 8)
            re0, im0 = int(q15(y[0].real)), int(q15(y[0].imag))
            re1, im1 = int(q15(y[1].real)), int(q15(y[1].imag))
            yw = pack_complex_word(re0, im0) | (pack_complex_word(re1, im1) << 32)
            core.scratchpad.write_word(ybase + 8 * c, yw, 8)
        core.run()
        # x_hat comes back in Q(W_SHIFT).
        for c in range(n_carriers):
            word = core.scratchpad.read_word(xbase + 8 * c, 8)
            lanes = [to_signed(word >> (16 * l), 16) for l in range(4)]
            scale = 1 << W_SHIFT
            got = np.array(
                [lanes[0] + 1j * lanes[1], lanes[2] + 1j * lanes[3]]
            ) / scale
            assert np.max(np.abs(got - xs[c])) < 0.08

    def test_sdm_identity_equalizer(self, arch):
        """W = I passes y through (scaled by Q(W_SHIFT))."""
        n_carriers = 4
        wbase, ybase, xbase = 0, 256, 512
        linker = ProgramLinker(arch)
        linker.call_kernel(
            build_sdm_dfg(),
            live_ins={"ybase": ybase, "wbase": wbase, "xbase": xbase},
            trip_count=n_carriers,
        )
        core = Core(arch, linker.link())
        one = 1 << W_SHIFT
        for c in range(n_carriers):
            row0 = pack_complex_word(one, 0)  # w00 = 1, w01 = 0
            row1 = pack_complex_word(one, 0) << 32  # w10 = 0, w11 = 1
            core.scratchpad.write_word(wbase + 16 * c, row0, 8)
            core.scratchpad.write_word(wbase + 16 * c + 8, row1, 8)
            yw = pack_complex_word(1000 + c, -500) | (pack_complex_word(250, 125 + c) << 32)
            core.scratchpad.write_word(ybase + 8 * c, yw, 8)
        core.run()
        one_q8 = 1 << W_SHIFT
        for c in range(n_carriers):
            word = core.scratchpad.read_word(xbase + 8 * c, 8)
            lanes = [to_signed(word >> (16 * l), 16) for l in range(4)]
            # Output is Q8: x = (1.0 * y) requantised from Q15 to Q8.
            for lane, y_raw in zip(lanes, (1000 + c, -500, 250, 125 + c)):
                expected = (one_q8 * y_raw) >> 15  # floor, like d4prod
                assert abs(lane - expected) <= 1


class TestCordic:
    def test_golden_cordic_approximates_atan2(self):
        for angle in (-1.2, -0.4, 0.0, 0.3, 1.0):
            x = int(20000 * np.cos(angle))
            y = int(20000 * np.sin(angle))
            got = cordic_atan2_q16(y, x) / (1 << 16)
            assert got == pytest.approx(angle, abs=3e-3)

    def test_kernel_matches_golden(self, arch):
        iters = 14
        tab_addr = 0
        x0, y0 = 18000, -7000
        linker = ProgramLinker(arch)
        x_reg, y_reg = PhysReg(40), PhysReg(41)
        vb = linker.vliw()
        vb.op(vliw_kernels.Opcode.ADD, 0, x0, dst=x_reg)
        vb.op(vliw_kernels.Opcode.ADD, 0, y0, dst=y_reg)
        outs = linker.call_kernel(
            build_cordic_dfg(iterations=iters),
            live_ins={"tab": tab_addr, "x0": x_reg, "y0": y_reg},
            trip_count=iters,
        )
        core = Core(arch, linker.link())
        for k, v in enumerate(atan_table_q16(iters)):
            core.scratchpad.write_word(tab_addr + 4 * k, v, 4)
        core.run()
        got = to_signed(core.cdrf.peek(outs["angle"].index), 32)
        assert got == cordic_atan2_q16(y0, x0, iters)

    def test_angle_to_hz(self):
        angle = cordic_atan2_q16(0, 30000)  # zero angle
        assert angle_q16_to_hz(angle, 16, 20e6) == pytest.approx(0.0, abs=100.0)


class TestVliwKernels:
    def run_section(self, arch, build, mem=()):
        linker = ProgramLinker(arch)
        build(linker.vliw())
        core = Core(arch, linker.link())
        for addr, value, size in mem:
            core.scratchpad.write_word(addr, value, size)
        core.run()
        return core

    def test_remove_zero_carriers(self, arch):
        grid, out = 0, 512
        mem = [(grid + 4 * k, 1000 + k, 4) for k in range(64)]
        core = self.run_section(
            arch, lambda vb: vliw_kernels.emit_remove_zero_carriers(vb, grid, out), mem
        )
        got = [core.scratchpad.read_word(out + 4 * k) for k in range(56)]
        expected = [1000 + k for k in range(1, 29)] + [1000 + k for k in range(36, 64)]
        assert got == expected
        assert core.stats.cga_cycles == 0  # pure VLIW kernel

    def test_interleave_deinterleave_roundtrip(self, arch):
        a, b, merged, outa, outb = 0, 256, 512, 1024, 1280
        n = 16
        mem = [(a + 8 * k, (k << 32) | 1, 8) for k in range(n)] + [
            (b + 8 * k, (k << 32) | 2, 8) for k in range(n)
        ]

        def build(vb):
            vliw_kernels.emit_interleave(vb, a, b, merged, n)
            vliw_kernels.emit_deinterleave(vb, merged, outa, outb, n)

        core = self.run_section(arch, build, mem)
        for k in range(n):
            assert core.scratchpad.read_word(outa + 8 * k, 8) == ((k << 32) | 1)
            assert core.scratchpad.read_word(outb + 8 * k, 8) == ((k << 32) | 2)
        ipc = core.stats.vliw_ops / core.stats.vliw_cycles
        assert 0.5 < ipc < 3.0  # paper's VLIW-mode kernels: 1.1 - 2.7

    def test_gather_words(self, arch):
        table, src, dst = 0, 256, 512
        perm = [3, 0, 2, 1]
        mem = [(table + 4 * k, 4 * perm[k], 4) for k in range(4)] + [
            (src + 4 * k, 70 + k, 4) for k in range(4)
        ]
        core = self.run_section(
            arch, lambda vb: vliw_kernels.emit_gather_words(vb, table, src, dst, 4), mem
        )
        got = [core.scratchpad.read_word(dst + 4 * k) for k in range(4)]
        assert got == [70 + p for p in perm]

    def test_tracking_phasor(self, arch):
        grid = 0
        # Pilots at word offsets 3, 5 with signs +1, -1; rotated by 0.2
        # rad, at the detector's Q8 unit amplitude.
        phase = 0.2
        amp = 256
        p_plus = pack_complex_word(
            int(amp * np.cos(phase)), int(amp * np.sin(phase))
        )
        p_minus = pack_complex_word(
            int(-amp * np.cos(phase)), int(-amp * np.sin(phase))
        )
        mem = [(grid + 12, p_plus, 4), (grid + 20, p_minus, 4)]
        out_reg = PhysReg(45)

        def build(vb):
            vliw_kernels.emit_tracking(
                vb, grid, [12, 20], [1, -1], out_reg, scratch_addr=1000
            )

        core = self.run_section(arch, build, mem)
        word = core.cdrf.peek(45)
        re = to_signed(word & 0xFFFF, 16)
        im = to_signed((word >> 16) & 0xFFFF, 16)
        got_phase = np.arctan2(-im, re)  # stored conjugated
        assert got_phase == pytest.approx(phase, abs=0.01)
        # Both packed halves equal.
        assert (word >> 32) == (word & 0xFFFFFFFF)
