"""End-to-end kernel tests: compile, simulate, compare with PHY golden."""

import numpy as np

from repro.arch import paper_core
from repro.compiler.linker import ProgramLinker
from repro.kernels.acorr import build_acorr_dfg
from repro.kernels.common import load_complex_array, store_complex_array
from repro.kernels.demod import build_demod_dfg, labels_to_bits
from repro.kernels.fshift import build_fshift_dfg, build_cfo_rotate, phasor_table_words, rotate_constants
from repro.kernels.xcorr import build_xcorr_dfg
from repro.isa.bits import split_lanes
from repro.phy.fixed import quantize_complex
from repro.phy.freq import fshift
from repro.phy.qam import qam64_modulate
from repro.sim import Core


def run_one_kernel(dfg, live_ins, trip, setup_mem=None):
    arch = paper_core()
    linker = ProgramLinker(arch)
    outs = linker.call_kernel(dfg, live_ins=live_ins, trip_count=trip)
    program = linker.link()
    core = Core(arch, program)
    if setup_mem:
        setup_mem(core.scratchpad)
    core.run()
    return core, outs, linker.kernel_results[0]


def rng_signal(n, seed, scale=0.3):
    rng = np.random.default_rng(seed)
    x = scale * (rng.normal(size=n) + 1j * rng.normal(size=n))
    return x


class TestFshift:
    def test_matches_table_rotation_golden(self):
        n = 64
        x = rng_signal(n, 1)
        re, im = quantize_complex(x)
        freq, fs = 200e3, 20e6
        table = phasor_table_words(freq, fs, n)

        def setup(pad):
            store_complex_array(pad, 0, re, im)
            for k, w in enumerate(table):
                pad.write_word(1024 + 8 * k, w, 8)

        core, outs, result = run_one_kernel(
            build_fshift_dfg(),
            live_ins={"src": 0, "dst": 2048, "tab": 1024},
            trip=n // 2,
            setup_mem=setup,
        )
        got_re, got_im = load_complex_array(core.scratchpad, 2048, n)
        # Golden: exact Q15 complex multiply with the same table.
        from repro.phy.fixed import cmul_q15

        tab_re = np.zeros(n, dtype=np.int16)
        tab_im = np.zeros(n, dtype=np.int16)
        for k, w in enumerate(table):
            lanes = split_lanes(w)
            tab_re[2 * k], tab_im[2 * k] = lanes[0], lanes[1]
            tab_re[2 * k + 1], tab_im[2 * k + 1] = lanes[2], lanes[3]
        exp_re, exp_im = cmul_q15(re, im, tab_re, tab_im)
        assert np.array_equal(got_re, exp_re)
        assert np.array_equal(got_im, exp_im)
        # High IPC, pure CGA (paper: 12-13).
        cga_ipc = core.stats.cga_ops / core.stats.cga_cycles
        assert cga_ipc > 4

    def test_cfo_rotate_recursive_phasor(self):
        n = 64
        x = rng_signal(n, 2)
        re, im = quantize_complex(x)
        freq, fs = -120e3, 20e6
        step_word, ph0_word = rotate_constants(freq, fs)
        dfg = build_cfo_rotate("cfo_rotate", step_word, ph0_word)

        def setup(pad):
            store_complex_array(pad, 0, re, im)

        core, outs, result = run_one_kernel(
            dfg, live_ins={"src": 0, "dst": 2048}, trip=n // 2, setup_mem=setup
        )
        got_re, got_im = load_complex_array(core.scratchpad, 2048, n)
        got = got_re / 32768.0 + 1j * got_im / 32768.0
        ref = fshift(x, freq, fs)
        # Recursive Q15 phasor accumulates small magnitude/phase error.
        assert np.max(np.abs(got - ref)) < 0.05
        # The phasor recurrence bounds II: IPC visibly below plain fshift.
        assert result.ii >= 3


class TestAcorr:
    def test_correlation_and_energy_match_numpy(self):
        lag, window = 16, 32
        n = lag + window
        # Periodic signal -> strong lag correlation.
        base = rng_signal(lag, 3, scale=0.25)
        x = np.tile(base, n // lag + 1)[:n]
        re, im = quantize_complex(x)

        def setup(pad):
            store_complex_array(pad, 0, re, im)

        core, outs, result = run_one_kernel(
            build_acorr_dfg(lag_samples=lag, acc_shift=4),
            live_ins={"base": 0},
            trip=window // 2,
            setup_mem=setup,
        )
        corr_word = core.cdrf.peek(outs["corr"].index)
        lanes = split_lanes(corr_word)
        got_re = lanes[0] + lanes[2]
        got_im = lanes[1] + lanes[3]
        # Golden with identical fixed-point steps.
        from repro.phy.fixed import cmul_q15

        pr, pi = cmul_q15(re[lag : lag + window], im[lag : lag + window],
                          re[:window], -im[:window])
        exp_re = int(np.sum(pr.astype(np.int32) >> 4))
        exp_im = int(np.sum(pi.astype(np.int32) >> 4))
        assert abs(got_re - exp_re) <= window  # lane-order rounding only
        assert abs(got_im - exp_im) <= window
        # Positive real correlation for a periodic signal.
        assert got_re > 0
        energy = split_lanes(core.cdrf.peek(outs["energy"].index))
        assert sum(energy) > 0


class TestXcorr:
    def test_peak_at_alignment(self):
        ref_len = 32
        ref = rng_signal(ref_len, 4, scale=0.3)
        ref_re, ref_im = quantize_complex(ref)
        # Signal = zeros + ref at offset 8 samples.
        sig = np.concatenate([np.zeros(8), ref, np.zeros(8)])
        sig_re, sig_im = quantize_complex(sig)

        corr_mags = []
        for pos in range(0, 12, 2):  # candidate positions (even samples)
            def setup(pad, pos=pos):
                store_complex_array(pad, 0, sig_re, sig_im)
                store_complex_array(pad, 2048, ref_re, ref_im)

            core, outs, result = run_one_kernel(
                build_xcorr_dfg(),
                live_ins={"base": 4 * pos, "ref": 2048},
                trip=ref_len // 2,
                setup_mem=setup,
            )
            lanes = split_lanes(core.cdrf.peek(outs["corr"].index))
            c_re, c_im = lanes[0] + lanes[2], lanes[1] + lanes[3]
            corr_mags.append(c_re * c_re + c_im * c_im)
        assert int(np.argmax(corr_mags)) == 4  # position 8 samples


class TestDemod:
    def test_hard_decisions_match_golden(self):
        rng = np.random.default_rng(9)
        n_sym = 52
        bits = rng.integers(0, 2, size=n_sym * 6)
        symbols = qam64_modulate(bits)
        # Half-normalised Q15 input, as produced by comp.
        re, im = quantize_complex(symbols, scale=0.5)

        def setup(pad):
            store_complex_array(pad, 0, re, im)

        core, outs, result = run_one_kernel(
            build_demod_dfg(),
            live_ins={"src": 0, "dst": 2048},
            trip=n_sym // 2,
            setup_mem=setup,
        )
        words = [core.scratchpad.read_word(2048 + 8 * k, 8) for k in range(n_sym // 2)]
        got_bits = labels_to_bits(words, n_sym)
        assert np.array_equal(got_bits, bits)
        cga_ipc = core.stats.cga_ops / core.stats.cga_cycles
        assert cga_ipc > 4  # paper: 12.04
