"""Area and power model tests against the paper's published anchors."""

import pytest

from repro.arch import paper_core
from repro.power import (
    LEAKAGE_65C_W,
    LEAKAGE_TYPICAL_W,
    PAPER_AREA_MM2,
    estimate_area,
    default_model,
    calibrate_from_reference,
)
from repro.power.model import FIG6B_SHARES, PAPER_CGA_ACTIVE_W, PAPER_VLIW_ACTIVE_W
from repro.sim.stats import ActivityStats


class TestAreaModel:
    def test_paper_core_total_matches(self):
        report = estimate_area(paper_core())
        assert report.total_mm2 == pytest.approx(PAPER_AREA_MM2, rel=0.01)

    def test_fig5_breakdown_shares(self):
        report = estimate_area(paper_core())
        f = report.fractions
        assert f["memories"] == pytest.approx(0.50, abs=0.01)
        assert f["CGA FUs"] == pytest.approx(0.29, abs=0.01)
        assert f["VLIW FUs"] == pytest.approx(0.08, abs=0.01)
        assert f["global RF"] == pytest.approx(0.05, abs=0.01)
        assert f["distributed RF"] == pytest.approx(0.03, abs=0.01)

    def test_memories_dominate(self):
        report = estimate_area(paper_core())
        assert max(report.fractions, key=report.fractions.get) == "memories"

    def test_area_scales_with_array_size(self):
        import dataclasses

        core = paper_core()
        bigger_l1 = dataclasses.replace(
            core,
            l1=dataclasses.replace(core.l1, words=2 * core.l1.words),
        )
        assert estimate_area(bigger_l1).total_mm2 > estimate_area(core).total_mm2

    def test_summary_text(self):
        text = estimate_area(paper_core()).summary()
        assert "mm^2" in text and "memories" in text


def _reference_stats():
    vliw = ActivityStats(vliw_cycles=1000, vliw_ops=1900)
    vliw.cdrf_reads, vliw.cdrf_writes = 2500, 1200
    vliw.l1_reads, vliw.l1_writes = 300, 300
    vliw.icache_hits = 1000
    cga = ActivityStats(cga_cycles=1000, cga_ops=10300)
    cga.cdrf_reads, cga.cdrf_writes = 400, 150
    cga.lrf_reads, cga.lrf_writes = 300, 120
    cga.l1_reads, cga.l1_writes = 1200, 800
    cga.config_words = 17000
    cga.interconnect_transfers = 5000
    return vliw, cga


class TestPowerModel:
    def test_calibration_reproduces_vliw_power(self):
        vliw, cga = _reference_stats()
        model = calibrate_from_reference(vliw, cga)
        report = model.report(vliw)
        assert report.active_w == pytest.approx(PAPER_VLIW_ACTIVE_W, rel=0.10)

    def test_calibration_reproduces_cga_power(self):
        vliw, cga = _reference_stats()
        model = calibrate_from_reference(vliw, cga)
        report = model.report(cga)
        assert report.active_w == pytest.approx(PAPER_CGA_ACTIVE_W, rel=0.10)

    def test_cga_mode_burns_more_than_vliw(self):
        vliw, cga = _reference_stats()
        model = calibrate_from_reference(vliw, cga)
        assert model.report(cga).active_w > 2 * model.report(vliw).active_w

    def test_interconnect_dominates_cga_breakdown(self):
        vliw, cga = _reference_stats()
        model = calibrate_from_reference(vliw, cga)
        shares = model.report(cga).shares()
        assert max(shares, key=shares.get) == "interconnect"
        assert shares["interconnect"] == pytest.approx(
            FIG6B_SHARES["interconnect"], abs=0.06
        )

    def test_vliw_breakdown_shape(self):
        vliw, cga = _reference_stats()
        model = calibrate_from_reference(vliw, cga)
        shares = model.report(vliw).shares()
        # Fig 6a ordering: interconnect > VLIW FUs > global RF > L1 > I$.
        assert shares["interconnect"] > shares["VLIW FUs"] > 0
        assert shares["global RF"] > shares["L1"] > 0
        assert shares["I$"] > 0

    def test_leakage_corners(self):
        assert LEAKAGE_65C_W == pytest.approx(2 * LEAKAGE_TYPICAL_W)
        vliw, cga = _reference_stats()
        model = calibrate_from_reference(vliw, cga)
        report = model.report(vliw, leakage_w=LEAKAGE_65C_W)
        assert report.total_w == pytest.approx(report.active_w + 0.025)

    def test_mixed_workload_average_between_modes(self):
        """A 60/40 CGA/VLIW mix must land between the two mode powers."""
        vliw, cga = _reference_stats()
        model = calibrate_from_reference(vliw, cga)
        mixed = ActivityStats()
        mixed.merge(vliw)
        mixed.merge(cga)
        avg = model.report(mixed).active_w
        assert PAPER_VLIW_ACTIVE_W < avg < PAPER_CGA_ACTIVE_W

    def test_default_model_usable(self):
        model = default_model()
        vliw, _ = _reference_stats()
        assert model.report(vliw).active_w > 0

    def test_energy_scales_with_activity(self):
        vliw, cga = _reference_stats()
        model = calibrate_from_reference(vliw, cga)
        double = ActivityStats()
        double.merge(cga)
        double.merge(cga)
        assert sum(model.region_energy(double).values()) == pytest.approx(
            2 * sum(model.region_energy(cga).values())
        )

    def test_report_summary_text(self):
        vliw, cga = _reference_stats()
        model = calibrate_from_reference(vliw, cga)
        text = model.report(cga).summary()
        assert "mW" in text and "interconnect" in text
