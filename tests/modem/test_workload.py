"""`repro.runtime.workload` coverage: seed reproducibility and the
shape-invariance property the compile-once runtime keys on."""

import numpy as np
import pytest

from repro.runtime import generate_packets, make_packet


def test_same_seed_gives_identical_waveform_and_payload():
    a = make_packet(123, cfo_hz=50e3)
    b = make_packet(123, cfo_hz=50e3)
    assert np.array_equal(a.bits, b.bits)
    assert np.array_equal(a.rx, b.rx)
    assert a.rx.dtype == np.complex128


def test_different_seeds_change_payload_but_not_shape():
    packets = [make_packet(seed) for seed in range(6)]
    shapes = {p.rx.shape for p in packets}
    assert len(shapes) == 1, "shape must be seed-invariant (compile-once key)"
    payloads = {tuple(p.bits) for p in packets}
    assert len(payloads) == 6, "payloads must differ across seeds"


def test_channel_parameters_do_not_change_shape():
    base = make_packet(5, cfo_hz=50e3, snr_db=None)
    for cfo in (0.0, 30e3, 80e3):
        for snr in (None, 10.0, 30.0):
            assert make_packet(5, cfo_hz=cfo, snr_db=snr).rx.shape == base.rx.shape


def test_extra_pad_extends_shape_without_touching_payload():
    base = make_packet(7)
    padded = make_packet(7, extra_pad=64)
    assert padded.rx.shape[1] == base.rx.shape[1] + 64
    assert np.array_equal(padded.bits, base.bits)
    assert np.array_equal(padded.rx[:, : base.rx.shape[1]], base.rx)
    assert np.all(padded.rx[:, base.rx.shape[1]:] == 0)


def test_extra_pad_validation():
    with pytest.raises(ValueError, match="extra_pad"):
        make_packet(0, extra_pad=-1)


def test_scenario_packet_is_tagged_and_reproducible():
    from repro.phy.scenario import get_scenario

    a = make_packet(5, scenario="indoor_multipath")
    b = make_packet(5, scenario="indoor_multipath")
    assert a.scenario == "indoor_multipath"
    assert a.snr_db == get_scenario("indoor_multipath").snr_db_default
    assert np.array_equal(a.rx, b.rx)
    # Same payload bits as the classic packet (the seed owns the bits),
    # different waveform (the scenario owns the channel).
    base = make_packet(5)
    assert np.array_equal(a.bits, base.bits)
    assert not np.array_equal(a.rx, base.rx)
    assert a.rx.shape == base.rx.shape


def test_scenario_records_drawn_cfo_truth():
    from repro.phy.scenario import get_scenario

    preset = get_scenario("cfo_stress")
    case = make_packet(9, cfo_hz=50e3, scenario="cfo_stress")
    # The preset's seeded draw overrides the cfo_hz argument and is
    # recorded so downstream consumers see the actual channel truth.
    assert case.cfo_hz == preset.packet_cfo_hz(9)
    assert case.cfo_hz != 50e3


def test_scenario_timing_offset_changes_shape():
    from repro.phy.scenario import get_scenario

    base = make_packet(3)
    stressed = make_packet(3, scenario="timing_stress")
    offset = get_scenario("timing_stress").timing_offset
    assert stressed.rx.shape[1] == base.rx.shape[1] + offset


def test_unknown_scenario_name_raises():
    with pytest.raises(KeyError, match="unknown scenario"):
        make_packet(0, scenario="not_a_preset")


def test_generate_packets_seeds_are_consecutive_and_reproducible():
    batch = generate_packets(4, base_seed=10)
    assert [p.seed for p in batch] == [10, 11, 12, 13]
    again = generate_packets(4, base_seed=10)
    for a, b in zip(batch, again):
        assert np.array_equal(a.rx, b.rx)
        assert np.array_equal(a.bits, b.bits)
    assert len({p.rx.shape for p in batch}) == 1
