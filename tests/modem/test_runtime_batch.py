"""Batch runtime tests: bit-identity, throughput, pool and disk cache."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

import repro
from repro.compiler.linker import _SCHEDULE_CACHE, configure_schedule_cache
from repro.modem.receiver import SimReceiver
from repro.runtime import BatchReceiver, ModemRuntime, WorkerCrashError, generate_packets
from repro.runtime import batch as batch_module

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@pytest.fixture(scope="module")
def cases():
    return generate_packets(8, base_seed=42, cfo_hz=50e3)


def _assert_outputs_identical(a, b):
    """Full bit-identity: decoded payload, estimates, cycles, stats."""
    assert list(a.bits) == list(b.bits)
    assert a.detect_pos == b.detect_pos
    assert a.ltf1_start == b.ltf1_start
    assert a.coarse_cfo_hz == b.coarse_cfo_hz
    assert a.fine_cfo_hz == b.fine_cfo_hz
    regions_a = a.preamble_regions + a.data_regions
    regions_b = b.preamble_regions + b.data_regions
    assert [r.name for r in regions_a] == [r.name for r in regions_b]
    for ra, rb in zip(regions_a, regions_b):
        assert ra.profile.cycles == rb.profile.cycles, ra.name
        assert ra.outputs == rb.outputs, ra.name
    assert a.stats == b.stats
    assert a.image == b.image


def test_batch_bit_identical_to_per_packet_receivers(cases):
    subset = cases[:3]
    batch = BatchReceiver()
    batched = batch.run([case.rx for case in subset])
    assert len(batched) == len(subset)
    # The batch relinked nothing after the first packet: one program set.
    programs_after_first = batch.runtime.compiled_programs
    for out, case in zip(batched, subset):
        assert float(np.mean(out.bits != case.bits)) == 0.0
    assert batch.runtime.compiled_programs == programs_after_first
    for out, case in zip(batched, subset):
        solo = SimReceiver().run_packet(case.rx)
        _assert_outputs_identical(out, solo)


def test_fork_pool_matches_serial(cases):
    subset = [case.rx for case in cases[:2]]
    serial = BatchReceiver(workers=1).run(subset)
    pooled = BatchReceiver(workers=2).run(subset)
    assert len(pooled) == 2
    for a, b in zip(serial, pooled):
        _assert_outputs_identical(a, b)


def test_batch_8_packets_at_least_5x_faster_than_cold_runs(cases):
    """The headline acceptance: one warm batch beats 8 cold compiles."""
    saved = dict(_SCHEDULE_CACHE)
    _SCHEDULE_CACHE.clear()
    try:
        t0 = time.perf_counter()
        cold_out = SimReceiver().run_packet(cases[0].rx)
        t_cold = time.perf_counter() - t0
    finally:
        _SCHEDULE_CACHE.update(saved)
    assert float(np.mean(cold_out.bits != cases[0].bits)) == 0.0

    batch = BatchReceiver()
    t0 = time.perf_counter()
    outputs = batch.run([case.rx for case in cases])
    t_batch = time.perf_counter() - t0
    assert len(outputs) == len(cases)
    for out, case in zip(outputs, cases):
        assert float(np.mean(out.bits != case.bits)) == 0.0
    # 8 cold per-packet runs would cost ~8 * t_cold; the batch must be
    # at least 5x cheaper end-to-end (it is ~40x in practice).
    assert len(cases) * t_cold >= 5 * t_batch, (t_cold, t_batch)


def _noop_init(kwargs, cache_dir):
    """Pool initializer stub: skip runtime construction in the workers."""


def _suicide_run(task):
    """Pool task stub: packet 0's worker dies the way an OOM kill looks."""
    index, rx, n_symbols, detect_hint = task
    if index == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(0.05)
    return index, None, 0.0


def test_killed_pool_worker_raises_typed_crash_error(monkeypatch):
    """ISSUE satellite: a killed fork-pool worker used to hang the batch
    (or die opaquely); it must now raise WorkerCrashError naming the
    failed packet index."""
    monkeypatch.setattr(batch_module, "_worker_init", _noop_init)
    monkeypatch.setattr(batch_module, "_worker_run", _suicide_run)
    batch = BatchReceiver(workers=2)
    packets = [np.zeros((2, 400), dtype=np.complex128) for _ in range(3)]
    with pytest.raises(WorkerCrashError) as excinfo:
        batch.run(packets)
    err = excinfo.value
    assert err.packet_index == 0
    assert 0 in err.pending_indices
    assert "packet index 0" in str(err)


def test_batched_runtime_ragged_chunk_is_not_a_fallback(cases):
    """A trailing singleton chunk (N % B != 0) runs per-packet by
    design; it must stay bit-identical to the per-packet compiled tier
    and must NOT count toward the divergence ``fallbacks`` counter."""
    from repro.runtime import BatchedModemRuntime

    subset = [case.rx for case in cases[:3]]
    serial = ModemRuntime()
    expected = [serial.run_packet(rx) for rx in subset]
    batched = BatchedModemRuntime(batch=2)  # chunks of 2 + 1
    outputs = batched.run_batch(subset)
    for out, ref in zip(outputs, expected):
        _assert_outputs_identical(out, ref)
    assert batched.packets_run == 3
    assert batched.fallbacks == 0, "ragged singleton chunk is not a fallback"


def test_runtime_tracks_warmed_shapes(cases):
    """warmed_shapes mirrors the linked-program shapes; the fabric uses
    it to seed shape-affinity state for workers forked from a template."""
    runtime = ModemRuntime()
    assert runtime.warmed_shapes == set()
    runtime.warm_up(cases[0].rx)
    shape = (int(cases[0].rx.shape[1]), 2)
    assert runtime.warmed_shapes == {shape}
    runtime.run_packet(cases[1].rx)  # same shape: still one entry
    assert runtime.warmed_shapes == {shape}


def test_run_timed_reports_per_packet_wall(cases):
    batch = BatchReceiver()
    subset = [case.rx for case in cases[:2]]
    outputs, timings = batch.run_timed(subset)
    assert len(outputs) == len(timings) == 2
    assert all(dt > 0 for dt in timings)
    for out, case in zip(outputs, cases[:2]):
        assert float(np.mean(out.bits != case.bits)) == 0.0


def test_fresh_process_with_warm_disk_cache_never_schedules(tmp_path, cases):
    """ISSUE acceptance: a warm on-disk cache eliminates every
    ModuloScheduler.schedule call in a fresh process."""
    configure_schedule_cache(str(tmp_path))
    try:
        # The in-memory cache is warm from the earlier tests; running one
        # packet write-throughs every schedule into the directory.
        ModemRuntime().run_packet(cases[0].rx)
    finally:
        configure_schedule_cache(None)
    assert list(tmp_path.glob("*.sched.pkl"))

    script = textwrap.dedent(
        """
        import numpy as np
        from repro.compiler import modulo

        def _poisoned(self, *args, **kwargs):
            raise AssertionError("ModuloScheduler.schedule ran despite warm disk cache")

        modulo.ModuloScheduler.schedule = _poisoned

        from repro.runtime import ModemRuntime, make_packet

        case = make_packet(42, cfo_hz=50e3)
        out = ModemRuntime().run_packet(case.rx)
        assert float(np.mean(out.bits != case.bits)) == 0.0
        print("DISK_WARM_OK", out.ltf1_start)
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR
    env["REPRO_SCHEDULE_CACHE"] = str(tmp_path)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "DISK_WARM_OK" in proc.stdout
