"""Input validation and tracer-robustness tests for SimReceiver."""

import numpy as np
import pytest

from repro.modem.receiver import MIN_PACKET_SAMPLES, SimReceiver
from repro.sim import Core
from repro.trace.tracer import Tracer


@pytest.fixture(scope="module")
def receiver():
    return SimReceiver()


class TestPacketValidation:
    def test_short_packet_raises_with_minimum(self, receiver):
        rx = np.zeros((2, MIN_PACKET_SAMPLES - 1), dtype=np.complex128)
        with pytest.raises(ValueError, match=str(MIN_PACKET_SAMPLES)):
            receiver.run_packet(rx)

    def test_very_short_packet_raises_not_negative_loop(self, receiver):
        # Used to produce a negative tail pair count deep in the pipeline.
        rx = np.zeros((2, 64), dtype=np.complex128)
        with pytest.raises(ValueError, match="packet too short"):
            receiver.run_packet(rx)

    def test_oversized_packet_raises(self, receiver):
        rx = np.zeros((2, 1025), dtype=np.complex128)
        with pytest.raises(ValueError, match="packet too long"):
            receiver.run_packet(rx)

    def test_negative_hint_raises(self, receiver):
        rx = np.zeros((2, 400), dtype=np.complex128)
        with pytest.raises(ValueError, match="detect_hint"):
            receiver.run_packet(rx, detect_hint=-1)

    def test_large_hint_raises(self, receiver):
        # Hints past n_sync - 16 - 48 would index ANT0 beyond the
        # deinterleaved sync region.
        rx = np.zeros((2, 400), dtype=np.complex128)
        with pytest.raises(ValueError, match="out of range"):
            receiver.run_packet(rx, detect_hint=289)

    def test_boundary_hint_is_accepted_by_validation(self, receiver):
        # detect_hint == 288 passes validation (failure further down the
        # pipeline, if any, must not be a range error).
        rx = np.zeros((2, 400), dtype=np.complex128)
        try:
            receiver.run_packet(rx, detect_hint=288)
        except ValueError as err:  # pragma: no cover - defensive
            assert "detect_hint" not in str(err)


class TestTracerRobustness:
    def test_tracer_reenabled_after_setup_fault(self, monkeypatch):
        """A fault inside the traced-setup window (config load / I$
        warm-up) must not leave the caller's tracer disabled."""
        tracer = Tracer(capacity=1024, enabled=True)
        receiver = SimReceiver(tracer=tracer)

        def boom(self):
            raise RuntimeError("config DMA fault")

        monkeypatch.setattr(Core, "load_configuration", boom)
        rx = np.zeros((2, 400), dtype=np.complex128)
        with pytest.raises(RuntimeError, match="config DMA fault"):
            receiver.run_packet(rx)
        assert tracer.enabled is True
