"""End-to-end modem tests: the full pipeline on the simulated processor.

The reference packet run takes a couple of minutes of simulation, so it
is produced once per test session and shared.
"""

import pytest

from repro.eval import run_reference_modem
from repro.modem.analysis import realtime_analysis
from repro.modem.profile import format_table2, table2_rows


@pytest.fixture(scope="module")
def run():
    return run_reference_modem(seed=42, cfo_hz=50e3, snr_db=None)


class TestFunctional:
    def test_packet_decodes_error_free(self, run):
        assert run.ber == 0.0

    def test_timing_recovered(self, run):
        # Packet injected 32 samples in: LTF1 at 32 + 160 + 32 = 224.
        assert run.output.ltf1_start == 224

    def test_cfo_estimated(self, run):
        assert run.output.cfo_hz == pytest.approx(run.cfo_true_hz, rel=0.02)

    def test_detection_within_plateau(self, run):
        assert 16 <= run.output.detect_pos <= 48


class TestProfiles:
    def test_all_table2_rows_present(self, run):
        names_pre = [r.name for r in run.output.preamble_regions]
        for kernel in [
            "acorr",
            "fshift",
            "xcorr",
            "fft",
            "remove zero carriers",
            "freq offset estimation",
            "freq offset compensation",
            "sample ordering",
            "SDM processing",
            "sample reordering",
            "equalize coeff calc",
            "non-kernel code",
        ]:
            assert kernel in names_pre, kernel
        names_data = [r.name for r in run.output.data_regions]
        for kernel in [
            "fshift",
            "fft",
            "data shuffle",
            "tracking",
            "comp",
            "demod QAM64",
            "SDM processing",
        ]:
            assert kernel in names_data, kernel

    def test_mode_classification_matches_paper(self, run):
        by_name = {r.name: r for r in run.output.preamble_regions}
        assert by_name["remove zero carriers"].profile.mode == "VLIW"
        assert by_name["sample ordering"].profile.mode == "VLIW"
        assert by_name["equalize coeff calc"].profile.mode == "CGA"
        assert by_name["fft"].profile.mode == "CGA"
        data = {r.name: r for r in run.output.data_regions}
        assert data["tracking"].profile.mode == "VLIW"
        assert data["demod QAM64"].profile.mode == "CGA"

    def test_cga_ipc_far_exceeds_vliw_ipc(self, run):
        stats = run.output.stats
        cga_ipc = stats.cga_ops / stats.cga_cycles
        vliw_ipc = stats.vliw_ops / stats.vliw_cycles
        assert cga_ipc > 4.0  # paper: 10.31 average over CGA kernels
        assert vliw_ipc < 3.0  # paper: 1.94
        assert cga_ipc > 3 * vliw_ipc

    def test_cga_mode_dominates_runtime(self, run):
        # Paper: 72% of preamble / 60% of data time in CGA mode.
        assert run.output.stats.cga_fraction > 0.5

    def test_high_ipc_kernels(self, run):
        data = {r.name: r for r in run.output.data_regions}
        assert data["SDM processing"].profile.ipc > 6
        assert data["comp"].profile.ipc > 6

    def test_table2_render(self, run):
        text = format_table2(table2_rows(run.output))
        assert "equalize coeff calc" in text
        assert "paper" in text


class TestRealtime:
    def test_analysis_report(self, run):
        report = realtime_analysis(run.output)
        assert report.phy_rate_mbps == pytest.approx(156.0)
        assert report.meets_100mbps
        # Preamble processing exceeds the preamble airtime (pipeline
        # latency), as in the paper (15.3 us vs 8 us).
        assert report.preamble_us > report.preamble_elapsed_us
        text = report.summary()
        assert "100 Mbps+" in text or "Mbps" in text
