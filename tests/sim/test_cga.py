"""CGA-mode execution tests: contexts, pipelining, phis, routing, stalls."""

import pytest

from repro.arch import paper_core
from repro.arch.topology import mesh_topology
from repro.isa import Instruction, Opcode
from repro.sim import (
    CgaContext,
    CgaKernel,
    CgaOp,
    Core,
    DstSel,
    Program,
    SrcSel,
    VliwBundle,
)
from repro.sim.cga import CgaFault
from repro.sim.program import DstKind


def enter_and_halt():
    """VLIW wrapper: enter kernel 0, then halt."""
    from repro.isa import Imm

    return [
        VliwBundle((Instruction(Opcode.CGA, srcs=(Imm(0),)), None, None)),
        VliwBundle((Instruction(Opcode.HALT), None, None)),
    ]


def run_kernel(kernel, pokes=(), mem=()):
    core = Core(paper_core(), Program(bundles=enter_and_halt(), kernels={0: kernel}))
    for reg, value in pokes:
        core.cdrf.poke(reg, value)
    for addr, value, size in mem:
        core.scratchpad.write_word(addr, value, size)
    core.run()
    return core


def test_accumulator_kernel():
    """acc += 5, ten iterations, result written to r10 on the last one."""
    op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(5)),
        dsts=(DstSel(DstKind.CDRF, 10, last_iteration_only=True),),
        stage=0,
    )
    kernel = CgaKernel(
        name="acc",
        ii=1,
        stage_count=1,
        contexts=[CgaContext(ops={0: op})],
        trip_count=10,
    )
    core = run_kernel(kernel)
    assert core.cdrf.peek(10) == 50


def test_trip_count_from_register():
    op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(1)),
        dsts=(DstSel(DstKind.CDRF, 10, last_iteration_only=True),),
    )
    kernel = CgaKernel(
        name="count",
        ii=1,
        stage_count=1,
        contexts=[CgaContext(ops={0: op})],
        trip_count_reg=5,
    )
    core = run_kernel(kernel, pokes=[(5, 7)])
    assert core.cdrf.peek(10) == 7


def test_sum_array_with_pipelined_load():
    """sum(mem[0..N)) via induction FU0 -> load FU1 -> accumulate FU2."""
    n = 8
    addr_op = CgaOp(
        opcode=Opcode.ADD,
        # First iteration produces base address 0+0; afterwards self+4.
        srcs=(SrcSel.self_().with_init(-4 & 0xFFFFFFFF), SrcSel.imm(4)),
        stage=0,
    )
    load_op = CgaOp(
        opcode=Opcode.LD_I,
        srcs=(SrcSel.wire(0), SrcSel.imm(0)),
        stage=1,  # reads the address latched one cycle earlier
    )
    acc_op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.wire(1)),
        dsts=(DstSel(DstKind.CDRF, 20, last_iteration_only=True),),
        stage=6,  # load issued at stage 1 is visible 5 cycles later
    )
    kernel = CgaKernel(
        name="sum",
        ii=1,
        stage_count=7,
        contexts=[CgaContext(ops={0: addr_op, 1: load_op, 2: acc_op})],
        trip_count=n,
    )
    mem = [(4 * i, i + 1, 4) for i in range(n)]
    core = run_kernel(kernel, mem=mem)
    assert core.cdrf.peek(20) == sum(range(1, n + 1))


def test_cycle_count_formula():
    """Kernel cycles = (trip + stages - 1) * II (+ mode switches, drain)."""
    op = CgaOp(opcode=Opcode.ADD, srcs=(SrcSel.self_().with_init(0), SrcSel.imm(1)))
    kernel = CgaKernel(
        name="t", ii=2, stage_count=1,
        contexts=[CgaContext(ops={0: op}), CgaContext(ops={0: op})],
        trip_count=10,
    )
    core = run_kernel(kernel)
    # (10 + 0) * 2 = 20 logical cycles, +1 drain for the in-flight add,
    # +2 mode switches.
    assert core.stats.cga_cycles == 20 + 1 + 2


def test_stage_gating_prologue_epilogue():
    """A stage-1 op must execute exactly trip times despite the longer span."""
    counter = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(1)),
        stage=0,
    )
    shadow = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(1)),
        dsts=(DstSel(DstKind.CDRF, 11, last_iteration_only=True),),
        stage=1,
    )
    kernel = CgaKernel(
        name="gate",
        ii=1,
        stage_count=2,
        contexts=[CgaContext(ops={0: counter, 1: shadow})],
        trip_count=5,
    )
    core = run_kernel(kernel)
    assert core.cdrf.peek(11) == 5


def test_wire_routing_respects_interconnect():
    """Reading a wire with no physical connection is a hard fault."""
    # Plain 4x4 mesh: FU0 and FU6 are not connected.
    arch = paper_core(interconnect=mesh_topology(4, 4))
    bad = CgaOp(opcode=Opcode.ADD, srcs=(SrcSel.wire(6), SrcSel.imm(0)))
    kernel = CgaKernel(
        name="bad", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: bad})], trip_count=1,
    )
    core = Core(arch, Program(bundles=enter_and_halt(), kernels={0: kernel}))
    with pytest.raises(CgaFault):
        core.run()


def test_cdrf_access_requires_central_port():
    """FU15 has no CDRF port: reading r0 from it faults."""
    bad = CgaOp(opcode=Opcode.ADD, srcs=(SrcSel.cdrf(0), SrcSel.imm(0)))
    kernel = CgaKernel(
        name="bad", ii=1, stage_count=1,
        contexts=[CgaContext(ops={15: bad})], trip_count=1,
    )
    with pytest.raises(CgaFault):
        run_kernel(kernel)


def test_capability_checked():
    """FU5 cannot load (only FUs 0-3 have L1 ports)."""
    bad = CgaOp(opcode=Opcode.LD_I, srcs=(SrcSel.imm(0), SrcSel.imm(0)))
    kernel = CgaKernel(
        name="bad", ii=1, stage_count=1,
        contexts=[CgaContext(ops={5: bad})], trip_count=1,
    )
    with pytest.raises(CgaFault):
        run_kernel(kernel)


def test_local_rf_write_and_read():
    """Stage-0 writes a local register on FU5; stage-1 reads it back."""
    produce = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.imm(21), SrcSel.imm(21)),
        dsts=(DstSel(DstKind.LRF, 3),),
        stage=0,
    )
    consume = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.lrf(3), SrcSel.imm(0)),
        stage=1,
    )
    # Forward the value to the CDRF through FU1 (which has a port).
    collect = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.wire(5), SrcSel.imm(0)),
        dsts=(DstSel(DstKind.CDRF, 12, last_iteration_only=True),),
        stage=2,
    )
    kernel = CgaKernel(
        name="lrf", ii=1, stage_count=3,
        contexts=[CgaContext(ops={5: produce, 1: collect})],
        trip_count=1,
    )
    # Put consume on FU5 in a second context: II=2 variant instead.
    kernel = CgaKernel(
        name="lrf", ii=2, stage_count=2,
        contexts=[
            CgaContext(ops={5: produce}),
            CgaContext(ops={5: consume}),
        ],
        trip_count=1,
    )
    core = run_kernel(kernel)
    assert core.local_rfs[5].peek(3) == 42
    assert core.stats.lrf_writes == 1
    assert core.stats.lrf_reads == 1


def test_bank_conflict_stalls_array():
    """Two same-bank loads in one context cost a stall cycle."""
    ld_a = CgaOp(opcode=Opcode.LD_I, srcs=(SrcSel.imm(0), SrcSel.imm(0)), stage=0)
    ld_b = CgaOp(opcode=Opcode.LD_I, srcs=(SrcSel.imm(16), SrcSel.imm(0)), stage=0)
    conflict = CgaKernel(
        name="conflict", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: ld_a, 1: ld_b})], trip_count=4,
    )
    core_conflict = run_kernel(conflict)
    ld_c = CgaOp(opcode=Opcode.LD_I, srcs=(SrcSel.imm(4), SrcSel.imm(0)), stage=0)
    clean = CgaKernel(
        name="clean", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: ld_a, 1: ld_c})], trip_count=4,
    )
    core_clean = run_kernel(clean)
    assert core_conflict.stats.l1_bank_conflicts > 0
    assert core_clean.stats.l1_bank_conflicts == 0
    assert core_conflict.stats.cga_cycles > core_clean.stats.cga_cycles


def test_predicated_cga_op():
    """Guarded op only contributes when its predicate (from a wire) is 1."""
    # FU0 computes iteration parity-ish flag: alternating 0/1 via xor.
    flag = CgaOp(
        opcode=Opcode.XOR,
        srcs=(SrcSel.self_().with_init(1), SrcSel.imm(1)),
        stage=0,
    )
    guarded = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(1)),
        pred=SrcSel.wire(0),
        dsts=(DstSel(DstKind.CDRF, 13, last_iteration_only=True),),
        stage=1,
    )
    kernel = CgaKernel(
        name="guard", ii=1, stage_count=2,
        contexts=[CgaContext(ops={0: flag, 1: guarded})],
        trip_count=6,
    )
    core = run_kernel(kernel)
    # flag sequence (visible to stage-1): starts 0 (init 1 xor 1 = 0)...
    # The guarded op executed only on iterations where the wire was 1.
    assert core.stats.squashed_ops > 0
    assert 0 < core.cdrf.peek(13) < 6


def test_store_from_cga():
    op = CgaOp(
        opcode=Opcode.ST_I,
        srcs=(SrcSel.imm(32), SrcSel.imm(0), SrcSel.imm(77)),
        stage=0,
    )
    kernel = CgaKernel(
        name="st", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: op})], trip_count=1,
    )
    core = run_kernel(kernel)
    assert core.scratchpad.read_word(32) == 77


def test_zero_trip_count_runs_nothing():
    op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(1)),
        dsts=(DstSel(DstKind.CDRF, 10),),
    )
    kernel = CgaKernel(
        name="zero", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: op})], trip_count_reg=5,
    )
    core = run_kernel(kernel, pokes=[(5, 0)])
    assert core.cdrf.peek(10) == 0


def test_kernel_validation():
    op = CgaOp(opcode=Opcode.NOP)
    with pytest.raises(ValueError):
        CgaKernel(name="bad", ii=2, stage_count=1, contexts=[CgaContext()], trip_count=1)
    with pytest.raises(ValueError):
        CgaKernel(name="bad", ii=1, stage_count=1, contexts=[CgaContext()])


def test_config_words_counted():
    op = CgaOp(opcode=Opcode.ADD, srcs=(SrcSel.imm(1), SrcSel.imm(1)))
    kernel = CgaKernel(
        name="cfg", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: op})], trip_count=5,
    )
    core = run_kernel(kernel)
    assert core.stats.config_words >= 5


def test_ipc_accounting_in_cga():
    ops = {
        fu: CgaOp(opcode=Opcode.ADD, srcs=(SrcSel.self_().with_init(0), SrcSel.imm(1)))
        for fu in range(8)
    }
    kernel = CgaKernel(
        name="ipc", ii=1, stage_count=1,
        contexts=[CgaContext(ops=ops)], trip_count=20,
    )
    core = run_kernel(kernel)
    assert core.stats.cga_ops == 8 * 20
    # 8 ops per cycle across 20 cycles (+ switch/drain overhead).
    assert core.stats.cga_ops / core.stats.cga_cycles > 5
