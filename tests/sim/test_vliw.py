"""VLIW-mode execution tests: semantics, interlocks, branches, predication."""

import pytest

from repro.arch import paper_core
from repro.isa import Imm, Instruction, Opcode, Reg, assemble
from repro.sim import Core, Program, VliwBundle


def bundles_from_asm(source, width=3):
    """One instruction per bundle (slot 0), NOP elsewhere."""
    insts = assemble(source)
    return [
        VliwBundle(tuple([inst] + [None] * (width - 1))) for inst in insts
    ]


def run_program(source, pokes=(), mem=(), warm_icache=False, **kwargs):
    import dataclasses

    arch = paper_core()
    if warm_icache:
        arch = dataclasses.replace(arch, icache_miss_penalty=0)
    core = Core(arch, Program(bundles=bundles_from_asm(source)))
    for reg, value in pokes:
        core.cdrf.poke(reg, value)
    for addr, value, size in mem:
        core.scratchpad.write_word(addr, value, size)
    core.run(**kwargs)
    return core


def test_simple_arith_chain():
    core = run_program(
        """
        add r1, r0, #5
        add r2, r1, #7
        mul r3, r1, r2
        halt
        """
    )
    assert core.cdrf.peek(1) == 5
    assert core.cdrf.peek(2) == 12
    assert core.cdrf.peek(3) == 60


def test_wide_bundle_two_phase_read():
    """Slots in the same bundle read pre-bundle register values."""
    swap = VliwBundle(
        (
            Instruction(Opcode.ADD, dst=Reg(1), srcs=(Reg(2), Imm(0))),
            Instruction(Opcode.ADD, dst=Reg(2), srcs=(Reg(1), Imm(0))),
            None,
        )
    )
    halt = VliwBundle((Instruction(Opcode.HALT), None, None))
    core = Core(paper_core(), Program(bundles=[swap, halt]))
    core.cdrf.poke(1, 10)
    core.cdrf.poke(2, 20)
    core.run()
    assert core.cdrf.peek(1) == 20
    assert core.cdrf.peek(2) == 10


def test_raw_interlock_stalls_for_mul_latency():
    # mul has latency 2: the dependent add must wait one extra cycle.
    # (warm I$ so cold-miss stalls do not hide the interlock)
    dependent = run_program("mul r1, r0, r0\nadd r2, r1, #1\nhalt", warm_icache=True)
    independent = run_program("mul r1, r0, r0\nadd r2, r0, #1\nhalt", warm_icache=True)
    assert dependent.stats.stall_cycles == independent.stats.stall_cycles + 1


def test_load_latency_and_value():
    core = run_program(
        """
        add r1, r0, #64
        ld_i r2, r1, #1
        add r3, r2, #1
        halt
        """,
        mem=[(68, 1234, 4)],
    )
    assert core.cdrf.peek(2) == 1234
    assert core.cdrf.peek(3) == 1235
    # The dependent add waited for the 5-cycle load.
    assert core.stats.stall_cycles >= 4


def test_halfword_load_sign_extension():
    core = run_program(
        """
        ld_c2 r1, r0, #0
        ld_uc2 r2, r0, #0
        halt
        """,
        mem=[(0, 0x8000, 2)],
    )
    assert core.cdrf.peek(1) == 0xFFFF8000
    assert core.cdrf.peek(2) == 0x8000


def test_store_then_load():
    core = run_program(
        """
        add r1, r0, #99
        st_i r0, #3, r1
        ld_i r2, r0, #3
        halt
        """
    )
    assert core.scratchpad.read_word(12) == 99
    assert core.cdrf.peek(2) == 99


def test_store_byte_and_halfword():
    core = run_program(
        """
        add r1, r0, #0x1234
        st_c2 r0, #1, r1
        st_c r0, #7, r1
        halt
        """
    )
    assert core.scratchpad.read_word(2, 2) == 0x1234
    assert core.scratchpad.read_word(7, 1) == 0x34


def test_backward_branch_loop():
    # r1 counts 5 down to 0; r2 accumulates.
    core = run_program(
        """
        add r1, r0, #5
        add r2, r2, #10
        sub r1, r1, #1
        pred_gt p1, r1, r0
        (p1) br #-4
        halt
        """
    )
    assert core.cdrf.peek(2) == 50
    assert core.cdrf.peek(1) == 0


def test_branch_penalty_counted():
    taken = run_program("add r1, r0, #1\nbr #0\nhalt")
    not_taken = run_program("add r1, r0, #1\nadd r2, r0, #1\nhalt")
    # A taken br costs latency-1 = 2 dead cycles.
    assert taken.stats.stall_cycles >= not_taken.stats.stall_cycles + 2


def test_jmp_absolute():
    core = run_program(
        """
        jmp #3
        add r1, r0, #111
        halt
        add r2, r0, #222
        halt
        """
    )
    assert core.cdrf.peek(1) == 0
    assert core.cdrf.peek(2) == 222


def test_jmpl_writes_link_register():
    core = run_program(
        """
        jmpl r9, #2
        halt
        add r1, r9, #0
        halt
        """
    )
    # Link register holds the bundle after the jump (1).
    assert core.cdrf.peek(1) == 1


def test_predicated_squash_has_no_effect():
    core = run_program(
        """
        pred_clear p1
        (p1) add r1, r0, #5
        (!p1) add r2, r0, #7
        halt
        """
    )
    assert core.cdrf.peek(1) == 0
    assert core.cdrf.peek(2) == 7
    assert core.stats.squashed_ops == 1


def test_halt_stops_and_counts_ops():
    core = run_program("add r1, r0, #1\nhalt")
    assert core.halted
    assert core.stats.vliw_ops == 2  # add + halt
    assert core.stats.cga_cycles == 0


def test_icache_cold_misses_counted():
    core = run_program("add r1, r0, #1\nhalt")
    assert core.stats.icache_misses >= 1


def test_ipc_below_width():
    core = run_program("add r1, r0, #1\nadd r2, r1, #1\nhalt")
    assert 0 < core.stats.ipc <= 3


def test_runaway_protection():
    from repro.sim import SimulationError

    with pytest.raises(SimulationError):
        run_program("br #-1\nhalt", max_cycles=100)


def test_simd_in_vliw_slot():
    core = run_program("c4add r3, r1, r2\nhalt", pokes=[(1, 0x0001_0002_0003_0004), (2, 0x0001_0001_0001_0001)])
    assert core.cdrf.peek(3) == 0x0002_0003_0004_0005


def test_div_in_vliw():
    core = run_program("add r1, r0, #100\nadd r2, r0, #7\ndiv r3, r1, r2\nhalt")
    assert core.cdrf.peek(3) == 14
