"""Instruction cache and register file unit tests."""

import pytest

from repro.arch.resources import MemorySpec
from repro.sim.icache import InstructionCache
from repro.sim.regfile import (
    LocalRegisterFile,
    PredicateFile,
    PortOverflowError,
    RegisterFile,
)


def make_icache(lines=16, penalty=8):
    return InstructionCache(MemorySpec("icache", words=lines, width=128), penalty)


class TestInstructionCache:
    def test_cold_miss_then_hit(self):
        ic = make_icache()
        assert ic.fetch(0) == 8
        assert ic.fetch(0) == 0
        assert ic.stats.icache_misses == 1
        assert ic.stats.icache_hits == 1

    def test_distinct_lines_miss_independently(self):
        ic = make_icache()
        assert ic.fetch(0) == 8
        assert ic.fetch(1) == 8
        assert ic.fetch(0) == 0
        assert ic.fetch(1) == 0

    def test_direct_mapped_conflict_eviction(self):
        ic = make_icache(lines=16)
        ic.fetch(0)
        ic.fetch(16)  # same index, different tag -> evicts
        assert ic.fetch(0) == 8  # miss again

    def test_bundles_per_line_share_a_line(self):
        ic = InstructionCache(
            MemorySpec("icache", words=16, width=128), 8, bundles_per_line=4
        )
        assert ic.fetch(0) == 8
        assert ic.fetch(1) == 0
        assert ic.fetch(3) == 0
        assert ic.fetch(4) == 8

    def test_flush_invalidates(self):
        ic = make_icache()
        ic.fetch(5)
        ic.flush()
        assert ic.fetch(5) == 8

    def test_hit_rate(self):
        ic = make_icache()
        assert ic.hit_rate == 0.0
        ic.fetch(0)
        ic.fetch(0)
        ic.fetch(0)
        assert ic.hit_rate == pytest.approx(2 / 3)


class TestRegisterFile:
    def test_read_write_masking(self):
        rf = RegisterFile(entries=8, width=32, read_ports=2, write_ports=1)
        rf.begin_cycle()
        rf.write(3, 0x1_FFFF_FFFF)
        assert rf.peek(3) == 0xFFFF_FFFF

    def test_read_port_overflow(self):
        rf = RegisterFile(entries=8, width=64, read_ports=2, write_ports=1)
        rf.begin_cycle()
        rf.read(0)
        rf.read(1)
        with pytest.raises(PortOverflowError):
            rf.read(2)

    def test_write_port_overflow(self):
        rf = RegisterFile(entries=8, width=64, read_ports=6, write_ports=1)
        rf.begin_cycle()
        rf.write(0, 1)
        with pytest.raises(PortOverflowError):
            rf.write(1, 2)

    def test_begin_cycle_resets_ports(self):
        rf = RegisterFile(entries=8, width=64, read_ports=1, write_ports=1)
        for _ in range(5):
            rf.begin_cycle()
            rf.read(0)

    def test_access_counting(self):
        rf = RegisterFile(entries=8, width=64, read_ports=6, write_ports=3)
        rf.begin_cycle()
        rf.read(0)
        rf.read(1)
        rf.write(2, 5)
        assert rf.stats.cdrf_reads == 2
        assert rf.stats.cdrf_writes == 1

    def test_peek_poke_do_not_count(self):
        rf = RegisterFile(entries=8, width=64, read_ports=6, write_ports=3)
        rf.poke(0, 42)
        assert rf.peek(0) == 42
        assert rf.stats.cdrf_reads == 0
        assert rf.stats.cdrf_writes == 0


class TestPredicateFile:
    def test_one_bit_width(self):
        pf = PredicateFile()
        pf.begin_cycle()
        pf.write(0, 3)
        assert pf.peek(0) == 1

    def test_counts_as_cprf(self):
        pf = PredicateFile()
        pf.begin_cycle()
        pf.write(0, 1)
        pf.read(0)
        assert pf.stats.cprf_writes == 1
        assert pf.stats.cprf_reads == 1


class TestLocalRegisterFile:
    def test_roundtrip_and_counting(self):
        lrf = LocalRegisterFile(entries=8, width=64)
        lrf.write(2, 0x1234)
        assert lrf.read(2) == 0x1234
        assert lrf.stats.lrf_writes == 1
        assert lrf.stats.lrf_reads == 1

    def test_masking(self):
        lrf = LocalRegisterFile(entries=4, width=64)
        lrf.write(0, 1 << 65)
        assert lrf.peek(0) == 0
