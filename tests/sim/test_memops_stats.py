"""Shared memory-op semantics and activity-statistics tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import Opcode
from repro.sim import memops
from repro.sim.stats import ActivityStats, KernelProfile


class TestMemops:
    def test_effective_address_scaling(self):
        # Byte ops: unscaled; halfword: <<1; word and 64-bit: <<2.
        assert memops.effective_address(Opcode.LD_C, 100, 3, True) == 103
        assert memops.effective_address(Opcode.LD_C2, 100, 3, True) == 106
        assert memops.effective_address(Opcode.LD_I, 100, 3, True) == 112
        assert memops.effective_address(Opcode.LD_Q, 100, 3, True) == 112
        assert memops.effective_address(Opcode.ST_C2, 100, 3, True) == 106

    def test_register_offsets_unscaled(self):
        assert memops.effective_address(Opcode.LD_I, 100, 12, False) == 112

    def test_address_wraps_32bit(self):
        assert memops.effective_address(Opcode.LD_C, 0xFFFFFFFF, 2, True) == 1

    def test_load_result_sign_handling(self):
        assert memops.load_result(Opcode.LD_C, 0x80) == 0xFFFFFF80
        assert memops.load_result(Opcode.LD_UC, 0x80) == 0x80
        assert memops.load_result(Opcode.LD_C2, 0x8000) == 0xFFFF8000
        assert memops.load_result(Opcode.LD_UC2, 0x8000) == 0x8000
        assert memops.load_result(Opcode.LD_I, 0xDEADBEEF) == 0xDEADBEEF
        q = memops.load_result(Opcode.LD_Q, 0x1122334455667788)
        assert q == 0x1122334455667788

    def test_store_payload_truncates(self):
        assert memops.store_payload(Opcode.ST_C, 0x1FF) == (0xFF, 1)
        assert memops.store_payload(Opcode.ST_C2, 0x12345) == (0x2345, 2)
        assert memops.store_payload(Opcode.ST_I, -1) == (0xFFFFFFFF, 4)
        raw, size = memops.store_payload(Opcode.ST_Q, -1)
        assert raw == (1 << 64) - 1 and size == 8

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_halfword_roundtrip(self, v):
        raw, size = memops.store_payload(Opcode.ST_C2, v)
        assert size == 2
        assert memops.load_result(Opcode.LD_UC2, raw) == v


class TestStats:
    def test_merge_and_delta(self):
        a = ActivityStats(vliw_cycles=10, cga_cycles=20)
        a.l1_reads = 5
        b = ActivityStats(vliw_cycles=1, cga_cycles=2)
        b.l1_reads = 3
        a.merge(b)
        assert a.vliw_cycles == 11 and a.cga_cycles == 22 and a.l1_reads == 8
        snap = a.snapshot()
        a.l1_reads += 4
        delta = a.delta_since(snap)
        assert delta.l1_reads == 4
        assert delta.vliw_cycles == 0

    def test_ipc_and_fraction(self):
        s = ActivityStats(vliw_cycles=50, cga_cycles=50)
        s.vliw_ops, s.cga_ops = 100, 500
        assert s.ipc == pytest.approx(6.0)
        assert s.cga_fraction == pytest.approx(0.5)

    def test_count_op_weighting(self):
        s = ActivityStats()
        s.count_op(0, Opcode.LD_Q, in_cga=True)
        s.count_op(1, Opcode.ADD, in_cga=False)
        assert s.cga_ops == 2  # 64-bit load counts as two instructions
        assert s.vliw_ops == 1
        assert s.fu_ops[0] == 2

    def test_kernel_profile_mode_classification(self):
        cga = ActivityStats(cga_cycles=90, vliw_cycles=10)
        assert KernelProfile("k", cga).mode == "CGA"
        vliw = ActivityStats(cga_cycles=0, vliw_cycles=100)
        assert KernelProfile("k", vliw).mode == "VLIW"
        mixed = ActivityStats(cga_cycles=50, vliw_cycles=50)
        assert KernelProfile("k", mixed).mode == "mixed"

    def test_profile_row(self):
        s = ActivityStats(cga_cycles=100)
        s.cga_ops = 950
        row = KernelProfile("fshift", s).row()
        assert row == {"kernel": "fshift", "mode": "CGA", "IPC": 9.5, "cycles": 100}
