"""Tracing must stay zero-cost on the decoded fast path.

When no tracer is attached (``NULL_TRACER``), the decoded engines may
consult the tracer only O(1) times per mode switch / kernel entry —
never once per simulated cycle or per op.  The proof: run the same
kernel at two trip counts an order of magnitude apart and require the
*identical* number of tracer attribute lookups.
"""

from repro.arch import paper_core
from repro.isa import Imm, Instruction, Opcode, Reg
from repro.sim import CgaContext, CgaKernel, CgaOp, Core, DstSel, Program, SrcSel, VliwBundle
from repro.sim.program import DstKind


class CountingNullTracer:
    """Disabled tracer that tallies every attribute lookup by name."""

    def __init__(self):
        object.__setattr__(self, "lookups", {})

    def __getattribute__(self, name):
        if name == "lookups":
            return object.__getattribute__(self, "lookups")
        lookups = object.__getattribute__(self, "lookups")
        lookups[name] = lookups.get(name, 0) + 1
        if name == "enabled":
            return False
        return lambda *args, **kwargs: None


def _run_cga_trip(trip):
    op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(5)),
        dsts=(DstSel(DstKind.CDRF, 10, last_iteration_only=True),),
    )
    kernel = CgaKernel(
        name="acc", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: op})], trip_count=trip,
    )
    bundles = [
        VliwBundle((Instruction(Opcode.CGA, srcs=(Imm(0),)), None, None)),
        VliwBundle((Instruction(Opcode.HALT), None, None)),
    ]
    tracer = CountingNullTracer()
    core = Core(paper_core(), Program(bundles=bundles, kernels={0: kernel}), tracer=tracer)
    core.run()
    assert core.cdrf.peek(10) == 5 * trip
    return dict(tracer.lookups)


def test_cga_tracer_lookups_independent_of_trip_count():
    """Steady-state CGA cycles make zero tracer lookups."""
    small = _run_cga_trip(8)
    large = _run_cga_trip(512)
    assert small == large, (
        "tracer lookups scale with trip count: %r vs %r" % (small, large)
    )


def test_vliw_straightline_tracer_lookups_independent_of_length():
    """Issuing more stall-free VLIW bundles adds no tracer lookups.

    The I$ is warmed first (the receiver's steady-state setup) and only
    lookups made during :meth:`Core.run` are compared, so the per-miss
    fill-path lookups don't obscure the issue loop's count.
    """

    def run(n_adds):
        bundles = [
            VliwBundle((
                Instruction(Opcode.ADD, srcs=(Imm(0), Imm(k)), dst=Reg(1)),
                None,
                None,
            ))
            for k in range(n_adds)
        ]
        bundles.append(VliwBundle((Instruction(Opcode.HALT), None, None)))
        tracer = CountingNullTracer()
        core = Core(paper_core(), Program(bundles=bundles), tracer=tracer)
        for pc in range(len(bundles)):
            core.icache.fetch(pc)
        before = dict(tracer.lookups)
        core.run()
        return {
            name: count - before.get(name, 0)
            for name, count in tracer.lookups.items()
            if count - before.get(name, 0)
        }

    assert run(4) == run(64)
