"""Tests of the debug listings (program/kernel renderers)."""

from repro.arch import paper_core
from repro.compiler import KernelBuilder
from repro.compiler.linker import ProgramLinker
from repro.isa import Opcode
from repro.sim.debug import format_kernel, format_program, schedule_occupancy


def compiled_program():
    kb = KernelBuilder("acc")
    base = kb.live_in("base")
    i = kb.induction(0, 4)
    x = kb.load(Opcode.LD_I, kb.add(base, i))
    kb.accumulate(Opcode.ADD, x, init=0, live_out="sum")
    linker = ProgramLinker(paper_core())
    linker.call_kernel(kb.finish(), live_ins={"base": 0}, trip_count=4)
    return linker.link()


def test_format_kernel_lists_contexts():
    program = compiled_program()
    text = format_kernel(program.kernels[0])
    assert "II=" in text
    assert "cycle 0:" in text
    assert "ld_i" in text
    assert "phi(" in text  # the induction/accumulator recurrences
    assert "->r" in text  # the live-out central write


def test_format_program_lists_bundles_and_kernels():
    program = compiled_program()
    text = format_program(program)
    assert "cga" in text
    assert "halt" in text
    assert "[kernel 0]" in text


def test_occupancy_grid_shape():
    program = compiled_program()
    kernel = program.kernels[0]
    grid = schedule_occupancy(kernel)
    assert len(grid) == kernel.ii
    assert all(len(row) == 16 for row in grid)
    used = sum(1 for row in grid for cell in row if cell)
    assert used == kernel.ops_per_iteration


def test_sel_text_renders_large_immediates_as_hex():
    from repro.sim.debug import _sel_text
    from repro.sim.program import SrcKind, SrcSel

    assert _sel_text(SrcSel(SrcKind.IMM, 42)) == "#42"
    # 64-bit packed-lane constants are unreadable in decimal.
    packed = 0x4000_4000_4000_4000
    assert _sel_text(SrcSel(SrcKind.IMM, packed)) == "#0x4000400040004000"
    assert _sel_text(SrcSel(SrcKind.IMM, (1 << 32) - 1)) == "#%d" % ((1 << 32) - 1)
