"""Stall-cause attribution: every stalled cycle carries exactly one cause."""

import pytest

from repro.arch import paper_core
from repro.compiler import KernelBuilder
from repro.compiler.linker import ProgramLinker
from repro.isa import Opcode, assemble
from repro.sim import Core, Program, VliwBundle
from repro.sim.stats import ActivityStats, StatsError
from repro.trace import StallCause


def _bundles(source, width=3):
    return [
        VliwBundle(tuple([inst] + [None] * (width - 1))) for inst in assemble(source)
    ]


def _run(source, warm_icache=False):
    import dataclasses

    arch = paper_core()
    if warm_icache:
        arch = dataclasses.replace(arch, icache_miss_penalty=0)
    core = Core(arch, Program(bundles=_bundles(source)))
    core.run()
    return core


def test_cold_icache_stalls_are_attributed():
    core = _run("add r1, r0, #1\nadd r2, r0, #2\nhalt")
    stats = core.stats
    assert stats.icache_misses > 0
    assert stats.stall_causes[StallCause.ICACHE_MISS] == (
        stats.icache_misses * core.icache.miss_penalty
    )


def test_interlock_stall_attributed():
    # mul latency 2: the dependent add waits one cycle (warm I$ isolates it).
    dep = _run("mul r1, r0, r0\nadd r2, r1, #1\nhalt", warm_icache=True)
    indep = _run("mul r1, r0, r0\nadd r2, r0, #1\nhalt", warm_icache=True)
    delta = (
        dep.stats.stall_causes[StallCause.INTERLOCK]
        - indep.stats.stall_causes[StallCause.INTERLOCK]
    )
    assert delta == 1
    # With a warm I$ the only stalls in play are interlocks.
    assert set(dep.stats.stall_causes) <= {StallCause.INTERLOCK}


def test_branch_penalty_attributed():
    taken = _run("add r1, r0, #1\nbr #0\nhalt", warm_icache=True)
    assert taken.stats.stall_causes[StallCause.BRANCH] == 2  # latency-1 dead cycles


def test_cga_kernel_stalls_are_bank_conflicts():
    kb = KernelBuilder("acc")
    base = kb.live_in("base")
    i = kb.induction(0, 4)
    x = kb.load(Opcode.LD_I, kb.add(base, i))
    kb.accumulate(Opcode.ADD, x, init=0, live_out="sum")
    linker = ProgramLinker(paper_core())
    linker.call_kernel(kb.finish(), live_ins={"base": 0}, trip_count=64)
    core = Core(paper_core(), linker.link())
    core.run()
    causes = {c for c, n in core.stats.stall_causes.items() if n}
    # The array only ever freezes on L1 contention; the surrounding
    # glue may add I$ misses, interlocks and branch penalties.
    assert causes <= {
        StallCause.BANK_CONFLICT,
        StallCause.ICACHE_MISS,
        StallCause.INTERLOCK,
        StallCause.BRANCH,
    }
    assert sum(core.stats.stall_causes.values()) == core.stats.stall_cycles


def test_dma_config_stall_is_opt_in():
    kb = KernelBuilder("acc2")
    base = kb.live_in("base")
    i = kb.induction(0, 4)
    x = kb.load(Opcode.LD_I, kb.add(base, i))
    kb.accumulate(Opcode.ADD, x, init=0, live_out="sum")
    linker = ProgramLinker(paper_core())
    linker.call_kernel(kb.finish(), live_ins={"base": 0}, trip_count=4)
    program = linker.link()

    steady = Core(paper_core(), program)
    bus_cycles = steady.load_configuration()
    assert bus_cycles > 0
    assert steady.stats.stall_cycles == 0
    assert steady.cycle == 0

    cold = Core(paper_core(), program)
    assert cold.load_configuration(stall_core=True) == bus_cycles
    assert cold.stats.stall_causes[StallCause.DMA_CONFIG] == bus_cycles
    assert cold.stats.vliw_cycles == bus_cycles
    assert cold.cycle == bus_cycles
    cold.run()
    cold.stats.validate()


def test_validate_catches_unattributed_stalls():
    stats = ActivityStats()
    stats.vliw_cycles = 10
    stats.stall_cycles = 5  # bypassing add_stall loses the cause
    with pytest.raises(StatsError):
        stats.validate()
    stats.stall_causes[StallCause.BRANCH] = 5
    assert stats.validate() is stats


def test_validate_catches_stalls_exceeding_active_time():
    stats = ActivityStats()
    stats.vliw_cycles = 2
    stats.add_stall(StallCause.INTERLOCK, 3)
    with pytest.raises(StatsError):
        stats.validate()


def test_add_stall_ignores_nonpositive():
    stats = ActivityStats()
    stats.add_stall(StallCause.BRANCH, 0)
    stats.add_stall(StallCause.BRANCH, -4)
    assert stats.stall_cycles == 0
    assert not stats.stall_causes
