"""Codegen-cache tests: LRU bounds, disk persistence, corruption healing.

Mirrors ``tests/compiler/test_schedule_cache.py`` for the tier-3 source
cache (`src/repro/sim/codegen.py`), plus the regression test for the
``CgaEngine`` kernel-pinning leak the LRU bound fixes.
"""

import glob
import os
import pickle
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.arch import paper_core, small_test_core
from repro.compiler import KernelBuilder
from repro.compiler.linker import ProgramLinker, configure_schedule_cache
from repro.isa import Imm, Instruction, Opcode
from repro.sim import CgaContext, CgaKernel, CgaOp, Core, DstSel, Program, SrcSel, VliwBundle
from repro.sim import codegen
from repro.sim.cga import KERNEL_CACHE_BOUND
from repro.sim.program import DstKind, patch_constants

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

_SENTINEL = 0xBEEF01


@pytest.fixture(autouse=True)
def _isolated_caches():
    """Protect the process-wide codegen/schedule caches across tests."""
    saved_src = dict(codegen._SOURCE_CACHE)
    saved_fn = dict(codegen._FN_CACHE)
    saved_stats = dict(codegen._STATS)
    codegen.clear_codegen_cache()
    configure_schedule_cache(None)
    try:
        yield
    finally:
        configure_schedule_cache(None)
        codegen.clear_codegen_cache()
        codegen._SOURCE_CACHE.update(saved_src)
        codegen._FN_CACHE.update(saved_fn)
        codegen._STATS.update(saved_stats)


def _template_program():
    op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(_SENTINEL)),
        dsts=(DstSel(DstKind.CDRF, 10, last_iteration_only=True),),
    )
    kernel = CgaKernel(
        name="lru_probe", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: op})], trip_count=4,
    )
    bundles = [
        VliwBundle((Instruction(Opcode.CGA, srcs=(Imm(0),)), None, None)),
        VliwBundle((Instruction(Opcode.HALT), None, None)),
    ]
    return Program(bundles=bundles, kernels={0: kernel})


# ----------------------------------------------------------------------
# Satellite: the kernel-pinning leak is bounded by an LRU now.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("interpreter", ["decoded", "compiled"])
def test_engine_kernel_caches_are_bounded(interpreter):
    """A long-lived engine fed many ``patch_constants`` variants (the
    fabric-worker pattern) must not pin every kernel it ever ran."""
    template = _template_program()
    core = Core(paper_core(), template, interpreter=interpreter)
    n = KERNEL_CACHE_BOUND * 2 + 8
    for value in range(1, n + 1):
        variant = patch_constants(template, {_SENTINEL: value})
        end = core.cga.run(variant.kernels[0], core.cycle)
        assert end > core.cycle
        assert core.cdrf.peek(10) == 4 * value
        core.cdrf.poke(10, 0)
    assert len(core.cga._decoded) <= KERNEL_CACHE_BOUND
    assert len(core.cga._compiled) <= KERNEL_CACHE_BOUND
    # Structural sharing still holds: N variants, at most one compile.
    if interpreter == "compiled":
        assert codegen.codegen_stats()["compilations"] <= 1


def test_recycled_kernel_id_is_not_a_stale_hit():
    """`id()` reuse after garbage collection must miss, not alias."""
    template = _template_program()
    core = Core(paper_core(), template, interpreter="decoded")
    seen = []
    for value in (5, 9):
        variant = patch_constants(template, {_SENTINEL: value})
        core.cga.run(variant.kernels[0], core.cycle)
        seen.append(core.cdrf.peek(10))
        del variant  # allow id() reuse for the next variant
    assert seen == [20, 36]


# ----------------------------------------------------------------------
# Tentpole: two-level source cache (memory + shared disk directory)
# ----------------------------------------------------------------------


def _run_compiled(program, arch=None):
    core = Core(arch or paper_core(), program, interpreter="compiled")
    core.run()
    return core


def test_memory_cache_compiles_once():
    program = _template_program()
    _run_compiled(program)
    first = codegen.codegen_stats()
    assert first["compilations"] >= 1
    _run_compiled(program)
    after = codegen.codegen_stats()
    assert after["compilations"] == first["compilations"]
    assert after["memory_hits"] > first["memory_hits"]


def test_disk_cache_round_trip(tmp_path):
    configure_schedule_cache(str(tmp_path))
    _run_compiled(_template_program())
    compiled = codegen.codegen_stats()["compilations"]
    assert compiled >= 1
    files = glob.glob(str(tmp_path / "*.codegen.pkl"))
    assert len(files) == compiled  # every generation was persisted

    # A "fresh process": empty memory cache, warm directory.
    codegen.clear_codegen_cache()
    _run_compiled(_template_program())
    stats = codegen.codegen_stats()
    assert stats["compilations"] == 0
    assert stats["disk_hits"] == compiled


def test_corrupt_artifact_regenerates_and_heals(tmp_path):
    configure_schedule_cache(str(tmp_path))
    core_a = _run_compiled(_template_program())
    paths = glob.glob(str(tmp_path / "*.codegen.pkl"))
    assert paths

    for garbage in (b"", b"\x80\x05garbage", b"not a pickle at all"):
        for path in paths:
            with open(path, "wb") as fh:
                fh.write(garbage)
        codegen.clear_codegen_cache()
        core_b = _run_compiled(_template_program())  # regenerate, not crash
        assert codegen.codegen_stats()["compilations"] == len(paths)
        assert core_b.cycle == core_a.cycle
        assert core_b.cdrf.peek(10) == core_a.cdrf.peek(10)
        # The regeneration healed the files: a fresh load hits disk.
        codegen.clear_codegen_cache()
        _run_compiled(_template_program())
        assert codegen.codegen_stats()["compilations"] == 0
        assert codegen.codegen_stats()["disk_hits"] == len(paths)


def test_stale_key_in_artifact_is_a_miss(tmp_path):
    """A digest collision / stale payload degrades to a regeneration."""
    configure_schedule_cache(str(tmp_path))
    _run_compiled(_template_program())
    (path, *_) = glob.glob(str(tmp_path / "*.codegen.pkl"))
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    payload["key"] = ("wrong",)
    with open(path, "wb") as fh:
        pickle.dump(payload, fh)
    codegen.clear_codegen_cache()
    _run_compiled(_template_program())
    assert codegen.codegen_stats()["compilations"] >= 1


# ----------------------------------------------------------------------
# ISSUE acceptance: warm dir -> zero scheduling AND zero codegen in a
# fresh process (subprocess-asserted, like the PR 3 disk-warm test).
# ----------------------------------------------------------------------


def _make_dfg(name="codegen_probe"):
    kb = KernelBuilder(name)
    base = kb.live_in("base")
    i = kb.induction(0, 4)
    x = kb.load(Opcode.LD_I, kb.add(base, i))
    kb.accumulate(Opcode.ADD, x, init=0, live_out="sum")
    return kb.finish()


def _link_and_run(arch):
    linker = ProgramLinker(arch)
    outs = linker.call_kernel(_make_dfg(), live_ins={"base": 256}, trip_count=8)
    core = Core(arch, linker.link(), interpreter="compiled")
    core.run()
    return core.cdrf.peek(outs["sum"].index)


def test_fresh_process_with_warm_cache_never_schedules_or_compiles(tmp_path):
    configure_schedule_cache(str(tmp_path))
    expected = _link_and_run(small_test_core())
    assert glob.glob(str(tmp_path / "*.sched.pkl"))
    assert glob.glob(str(tmp_path / "*.codegen.pkl"))

    script = textwrap.dedent(
        """
        from repro.compiler import modulo
        from repro.sim import codegen

        def _no_schedule(self, *args, **kwargs):
            raise AssertionError("ModuloScheduler.schedule ran despite warm disk cache")

        def _no_codegen(self, *args, **kwargs):
            raise AssertionError("codegen generated source despite warm disk cache")

        modulo.ModuloScheduler.schedule = _no_schedule
        codegen._CgaGen.generate = _no_codegen
        codegen._VliwGen.generate = _no_codegen

        import test_codegen_cache as t
        from repro.arch import small_test_core

        value = t._link_and_run(small_test_core())
        assert codegen.codegen_stats()["compilations"] == 0
        print("CODEGEN_WARM_OK", value)
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + os.path.dirname(os.path.abspath(__file__))
    env["REPRO_SCHEDULE_CACHE"] = str(tmp_path)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "CODEGEN_WARM_OK %d" % expected in proc.stdout
