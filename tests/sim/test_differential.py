"""Differential harness: all four interpreter tiers against each other.

Every program here runs under ``Core(interpreter="decoded")``,
``Core(interpreter="reference")`` and ``Core(interpreter="compiled")``,
plus the lane-batched tier (:mod:`repro.sim.batch` driving the SoA
functions from ``cga_batch_runner`` / ``vliw_batch_runner``), and the
final machine state must be **bit-identical**: cycle counts, every
register file, scratchpad memory, and the full
:class:`~repro.sim.stats.ActivityStats` including per-cause stall
counters.  This is the correctness contract of the pre-decode layer
(`src/repro/sim/decode.py`) and of the tier-3 code generator
(`src/repro/sim/codegen.py`): lowering is an optimisation, never a
semantic change.  The batched tier additionally proves its divergence
story here: ragged widths, per-lane immediate pools, and mid-batch
faults that fall back to per-packet execution bit-identically.
"""

import pytest

from repro.arch import paper_core
from repro.compiler.linker import ProgramLinker
from repro.isa import Imm, Instruction, Opcode, PredReg, Reg
from repro.kernels.fshift import build_fshift_dfg, phasor_table_words
from repro.kernels.xcorr import build_xcorr_dfg
from repro.phy.fixed import quantize_complex
from repro.sim import (
    CgaContext,
    CgaKernel,
    CgaOp,
    Core,
    DstSel,
    Program,
    SrcSel,
    VliwBundle,
)
from repro.sim.batch import BatchProgramRunner
from repro.sim.cga import CgaFault
from repro.sim.memory import MemoryError_
from repro.sim.program import DstKind, Preload
from repro.sim.stats import _COUNTER_FIELDS, _SCALAR_FIELDS


def enter_and_halt(kernel_id=0):
    return [
        VliwBundle((Instruction(Opcode.CGA, srcs=(Imm(kernel_id),)), None, None)),
        VliwBundle((Instruction(Opcode.HALT), None, None)),
    ]


def assert_identical(decoded: Core, reference: Core) -> None:
    """Assert bit-identical architectural state and statistics."""
    assert decoded.cycle == reference.cycle, "cycle counts differ"
    assert decoded.pc == reference.pc
    assert decoded.halted == reference.halted
    assert decoded.kernel_log == reference.kernel_log
    n = decoded.cdrf.entries
    assert [decoded.cdrf.peek(i) for i in range(n)] == [
        reference.cdrf.peek(i) for i in range(n)
    ], "CDRF contents differ"
    n = decoded.cprf.entries
    assert [decoded.cprf.peek(i) for i in range(n)] == [
        reference.cprf.peek(i) for i in range(n)
    ], "CPRF contents differ"
    assert set(decoded.local_rfs) == set(reference.local_rfs)
    for fu, lrf in decoded.local_rfs.items():
        ref = reference.local_rfs[fu]
        assert [lrf.peek(i) for i in range(lrf.entries)] == [
            ref.peek(i) for i in range(ref.entries)
        ], "local RF %d contents differ" % fu
    assert bytes(decoded.scratchpad._mem) == bytes(
        reference.scratchpad._mem
    ), "scratchpad contents differ"
    for name in _SCALAR_FIELDS:
        assert getattr(decoded.stats, name) == getattr(reference.stats, name), (
            "stats.%s differs: decoded=%r reference=%r"
            % (name, getattr(decoded.stats, name), getattr(reference.stats, name))
        )
    for name in _COUNTER_FIELDS:
        dec = {k: v for k, v in getattr(decoded.stats, name).items() if v}
        ref = {k: v for k, v in getattr(reference.stats, name).items() if v}
        assert dec == ref, "stats.%s differs" % name


INTERPRETERS = ("decoded", "reference", "compiled")

#: Lanes driven through the batched tier by :func:`run_both`; a small
#: odd width so the batch fns differ from any pre-seeded cache entries.
BATCH_LANES = 3


def assert_batched_identical(make_core, reference, n_lanes=BATCH_LANES,
                             runner=None):
    """Drive *n_lanes* fresh compiled cores through the batched tier and
    assert each lane lands bit-identical to *reference* without needing
    the per-packet fallback.  Returns the lane results."""
    lanes = [make_core() for _ in range(n_lanes)]
    if runner is None:
        runner = BatchProgramRunner()
    results = runner.run(lanes, fresh=lambda i: make_core())
    for lane in results:
        assert lane.error is None, "batched lane errored: %r" % (lane.error,)
        assert not lane.fell_back, "batched lane unexpectedly fell back"
        assert_identical(reference, lane.core)
    return results


def run_both(program, pokes=(), mem=(), arch=None):
    """Run *program* under all interpreter tiers — including the batched
    tier — and diff the final state."""

    def make_core(interpreter="compiled"):
        core = Core(arch or paper_core(), program, interpreter=interpreter)
        for reg, value in pokes:
            core.cdrf.poke(reg, value)
        for addr, value, size in mem:
            core.scratchpad.write_word(addr, value, size)
        return core

    cores = []
    for interpreter in INTERPRETERS:
        core = make_core(interpreter)
        core.run()
        cores.append(core)
    for other in cores[1:]:
        assert_identical(cores[0], other)
    assert_batched_identical(make_core, cores[0])
    return cores[0]


# ----------------------------------------------------------------------
# Hand-built CGA kernels covering every structural feature
# ----------------------------------------------------------------------


def k_accumulator():
    op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(5)),
        dsts=(DstSel(DstKind.CDRF, 10, last_iteration_only=True),),
    )
    return CgaKernel(
        name="acc", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: op})], trip_count=10,
    ), (), ()


def k_trip_from_register():
    op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(1)),
        dsts=(DstSel(DstKind.CDRF, 10, last_iteration_only=True),),
    )
    return CgaKernel(
        name="count", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: op})], trip_count_reg=5,
    ), [(5, 7)], ()


def k_pipelined_load():
    n = 8
    addr_op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(-4 & 0xFFFFFFFF), SrcSel.imm(4)),
        stage=0,
    )
    load_op = CgaOp(
        opcode=Opcode.LD_I, srcs=(SrcSel.wire(0), SrcSel.imm(0)), stage=1,
    )
    acc_op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.wire(1)),
        dsts=(DstSel(DstKind.CDRF, 20, last_iteration_only=True),),
        stage=6,
    )
    kernel = CgaKernel(
        name="sum", ii=1, stage_count=7,
        contexts=[CgaContext(ops={0: addr_op, 1: load_op, 2: acc_op})],
        trip_count=n,
    )
    return kernel, (), [(4 * i, i + 1, 4) for i in range(n)]


def k_store_stream():
    """Induction variable stored through FU0 -> store on FU1 (bank traffic)."""
    idx_op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(-1 & 0xFFFFFFFF), SrcSel.imm(1)),
        stage=0,
    )
    addr_op = CgaOp(
        opcode=Opcode.LSL, srcs=(SrcSel.wire(0), SrcSel.imm(2)), stage=1,
    )
    store_op = CgaOp(
        opcode=Opcode.ST_I,
        srcs=(SrcSel.wire(2), SrcSel.imm(0), SrcSel.wire(0)),
        stage=2,
    )
    kernel = CgaKernel(
        name="fill", ii=1, stage_count=3,
        contexts=[
            CgaContext(ops={0: idx_op, 2: addr_op, 1: store_op}),
        ],
        trip_count=6,
    )
    return kernel, (), ()


def k_predicated():
    """Guarded accumulate: every other iteration squashed via CPRF toggle."""
    toggle = CgaOp(
        opcode=Opcode.XOR,
        srcs=(SrcSel.self_().with_init(1), SrcSel.imm(1)),
        dsts=(DstSel(DstKind.CPRF, 3),),
        stage=0,
    )
    acc = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(1)),
        dsts=(DstSel(DstKind.CDRF, 11, last_iteration_only=True),),
        pred=SrcSel.cprf(3),
        stage=1,
    )
    neg = CgaOp(
        opcode=Opcode.SUB,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(1)),
        dsts=(DstSel(DstKind.CDRF, 12, last_iteration_only=True),),
        pred=SrcSel.cprf(3),
        pred_negate=True,
        stage=1,
    )
    kernel = CgaKernel(
        name="pred", ii=1, stage_count=2,
        contexts=[CgaContext(ops={0: toggle, 1: acc, 2: neg})],
        trip_count=9,
    )
    return kernel, (), ()


def k_ii2_multi_context():
    """II=2 with different ops per context and an LRF-held live-in.

    The multiply sits on FU4 (has a local RF, no central port); the
    result crosses a mesh wire to FU0, which owns a central RF port.
    """
    mul = CgaOp(
        opcode=Opcode.MUL,
        srcs=(SrcSel.self_().with_init(1), SrcSel.lrf(0)),
        stage=0,
    )
    add = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.wire(4), SrcSel.imm(3)),
        dsts=(DstSel(DstKind.CDRF, 13, last_iteration_only=True),),
        stage=0,
    )
    kernel = CgaKernel(
        name="ii2", ii=2, stage_count=1,
        contexts=[CgaContext(ops={4: mul}), CgaContext(ops={0: add})],
        trip_count=5,
        preloads=[Preload(fu=4, lrf_index=0, cdrf_reg=6)],
    )
    return kernel, [(6, 3)], ()


def k_simd_div():
    """SIMD lane math + the 24-bit divider (longest latency, drain test)."""
    lanes = CgaOp(
        opcode=Opcode.C4ADD,
        srcs=(SrcSel.self_().with_init(0x0001_0002_0003_0004), SrcSel.imm(0x0001_0001_0001_0001)),
        dsts=(DstSel(DstKind.CDRF, 14, last_iteration_only=True),),
        stage=0,
    )
    div = CgaOp(
        opcode=Opcode.DIV,
        srcs=(SrcSel.self_().with_init(1000), SrcSel.imm(3)),
        dsts=(DstSel(DstKind.CDRF, 15, last_iteration_only=True),),
        stage=0,
    )
    kernel = CgaKernel(
        name="simd_div", ii=1, stage_count=1,
        contexts=[CgaContext(ops={2: lanes, 0: div})],
        trip_count=4,
    )
    return kernel, (), ()


def k_bank_conflict():
    """Two same-cycle loads to the same L1 bank: stall-cause parity."""
    load_a = CgaOp(opcode=Opcode.LD_I, srcs=(SrcSel.imm(0), SrcSel.imm(0)), stage=0)
    load_b = CgaOp(opcode=Opcode.LD_I, srcs=(SrcSel.imm(64), SrcSel.imm(0)), stage=0)
    kernel = CgaKernel(
        name="conflict", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: load_a, 1: load_b})],
        trip_count=5,
    )
    return kernel, (), [(0, 7, 4), (64, 9, 4)]


CGA_KERNELS = [
    k_accumulator,
    k_trip_from_register,
    k_pipelined_load,
    k_store_stream,
    k_predicated,
    k_ii2_multi_context,
    k_simd_div,
    k_bank_conflict,
]


@pytest.mark.parametrize("build", CGA_KERNELS, ids=lambda b: b.__name__)
def test_cga_kernel_differential(build):
    kernel, pokes, mem = build()
    program = Program(bundles=enter_and_halt(), kernels={0: kernel})
    run_both(program, pokes=pokes, mem=mem)


def test_zero_trip_differential():
    kernel, _, _ = k_accumulator()
    kernel = CgaKernel(
        name="zero", ii=kernel.ii, stage_count=kernel.stage_count,
        contexts=kernel.contexts, trip_count_reg=5,
    )
    program = Program(bundles=enter_and_halt(), kernels={0: kernel})
    run_both(program, pokes=[(5, 0)])


def test_repeated_kernel_entry_uses_cache():
    """Entering the same kernel twice exercises the decode cache."""
    kernel, _, _ = k_accumulator()
    bundles = [
        VliwBundle((Instruction(Opcode.CGA, srcs=(Imm(0),)), None, None)),
        VliwBundle((Instruction(Opcode.CGA, srcs=(Imm(0),)), None, None)),
        VliwBundle((Instruction(Opcode.HALT), None, None)),
    ]
    program = Program(bundles=bundles, kernels={0: kernel})
    core = run_both(program)
    assert len(core.kernel_log) == 2


def test_patched_constants_differential():
    """``patch_constants`` variants stay bit-identical across tiers and
    share one compiled artifact (signatures exclude immediate values)."""
    from repro.sim import codegen
    from repro.sim.program import patch_constants

    sentinel = 0xDEAD01
    op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(sentinel)),
        dsts=(DstSel(DstKind.CDRF, 10, last_iteration_only=True),),
    )
    kernel = CgaKernel(
        name="patched", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: op})], trip_count=6,
    )
    template = Program(bundles=enter_and_halt(), kernels={0: kernel})
    before = codegen.codegen_stats()["compilations"]
    results = []
    for value in (3, 11, -5):
        core = run_both(patch_constants(template, {sentinel: value}))
        results.append(core.cdrf.peek(10))
        assert core.cdrf.peek(10) == (6 * value) & 0xFFFFFFFF  # ADD wraps at 32b
    assert len(set(results)) == 3
    # One compile covers all variants: only the immediate pool differs.
    assert codegen.codegen_stats()["compilations"] - before <= 1


# ----------------------------------------------------------------------
# VLIW control flow, scoreboard, memory
# ----------------------------------------------------------------------


def test_vliw_loop_differential():
    """Counted loop: interlocks, taken/not-taken branches, loads, stores."""
    bundles = [
        # r1 = 5 (counter), r2 = 0 (sum)
        VliwBundle((
            Instruction(Opcode.ADD, srcs=(Imm(0), Imm(5)), dst=Reg(1)),
            Instruction(Opcode.ADD, srcs=(Imm(0), Imm(0)), dst=Reg(2)),
            None,
        )),
        # loop: r2 += r1; p1 = (r1 > 1); r1 -= 1
        VliwBundle((
            Instruction(Opcode.ADD, srcs=(Reg(2), Reg(1)), dst=Reg(2)),
            Instruction(Opcode.PRED_GT, srcs=(Reg(1), Imm(1)), dst=PredReg(1)),
            Instruction(Opcode.SUB, srcs=(Reg(1), Imm(1)), dst=Reg(1)),
        )),
        # if p1: br loop (-2)
        VliwBundle((
            Instruction(Opcode.BR, srcs=(Imm(-2),), pred=PredReg(1)),
            None,
            None,
        )),
        # store r2 to mem[16]; load it back into r3
        VliwBundle((
            Instruction(Opcode.ST_I, srcs=(Reg(2), Imm(4), Reg(2))),
            None,
            None,
        )),
        VliwBundle((
            Instruction(Opcode.LD_I, srcs=(Imm(15), Imm(1)), dst=Reg(3)),
            None,
            None,
        )),
        VliwBundle((Instruction(Opcode.HALT), None, None)),
    ]
    core = run_both(Program(bundles=bundles))
    assert core.cdrf.peek(2) == 15  # 5+4+3+2+1
    assert core.stats.stall_causes  # interlock/branch stalls happened


def test_vliw_jmpl_link_differential():
    """jmpl writes the link register and jumps; jmp via register returns."""
    bundles = [
        VliwBundle((
            Instruction(Opcode.JMPL, srcs=(Imm(3),), dst=Reg(9)),
            None,
            None,
        )),
        # Fallthrough target after return: r4 = 42; halt.
        VliwBundle((
            Instruction(Opcode.ADD, srcs=(Imm(0), Imm(42)), dst=Reg(4)),
            None,
            None,
        )),
        VliwBundle((Instruction(Opcode.HALT), None, None)),
        # Subroutine: jmp back through the link register.
        VliwBundle((
            Instruction(Opcode.JMP, srcs=(Reg(9),)),
            None,
            None,
        )),
    ]
    core = run_both(Program(bundles=bundles))
    assert core.cdrf.peek(4) == 42
    assert core.cdrf.peek(9) == 1


def test_vliw_predicated_slots_differential():
    """Predicated slots squash without architectural effect."""
    bundles = [
        VliwBundle((
            Instruction(Opcode.PRED_SET, dst=PredReg(2)),
            Instruction(Opcode.ADD, srcs=(Imm(0), Imm(1)), dst=Reg(5)),
            None,
        )),
        VliwBundle((
            Instruction(Opcode.ADD, srcs=(Imm(0), Imm(7)), dst=Reg(6), pred=PredReg(2)),
            Instruction(
                Opcode.ADD, srcs=(Imm(0), Imm(9)), dst=Reg(7),
                pred=PredReg(2), pred_negate=True,
            ),
            None,
        )),
        VliwBundle((Instruction(Opcode.HALT), None, None)),
    ]
    core = run_both(Program(bundles=bundles))
    assert core.cdrf.peek(6) == 7
    assert core.cdrf.peek(7) == 0
    assert core.stats.squashed_ops == 1  # only the negated slot squashes


# ----------------------------------------------------------------------
# Real compiled kernels (modulo scheduler output)
# ----------------------------------------------------------------------


def _compiled_program(build_dfg, live_ins, trip):
    arch = paper_core()
    linker = ProgramLinker(arch)
    linker.call_kernel(build_dfg, live_ins=live_ins, trip_count=trip)
    return arch, linker.link()


def test_compiled_fshift_differential():
    """The CFO-rotation kernel as produced by the modulo scheduler."""
    import numpy as np

    from repro.kernels.common import store_complex_array

    n = 32
    rng = np.random.default_rng(7)
    x = 0.3 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
    re, im = quantize_complex(x)
    table = phasor_table_words(50e3, 20e6, n)
    arch, program = _compiled_program(
        build_fshift_dfg(),
        live_ins={"src": 0, "dst": 2048, "tab": 1024},
        trip=n // 2,
    )
    def make_core(interpreter="compiled"):
        core = Core(arch, program, interpreter=interpreter)
        store_complex_array(core.scratchpad, 0, re, im)
        for k, w in enumerate(table):
            core.scratchpad.write_word(1024 + 8 * k, w, 8)
        return core

    cores = []
    for interpreter in INTERPRETERS:
        core = make_core(interpreter)
        core.run()
        cores.append(core)
    for other in cores[1:]:
        assert_identical(cores[0], other)
    assert_batched_identical(make_core, cores[0])


def test_compiled_xcorr_differential():
    """The cross-correlation kernel (SIMD reduction + live-out latching)."""
    import numpy as np

    from repro.kernels.common import store_complex_array

    n = 16
    rng = np.random.default_rng(11)
    sig = 0.25 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
    ref = 0.25 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
    sig_re, sig_im = quantize_complex(sig)
    ref_re, ref_im = quantize_complex(ref)
    arch, program = _compiled_program(
        build_xcorr_dfg(),
        live_ins={"base": 0, "ref": 2048},
        trip=n // 2,
    )
    def make_core(interpreter="compiled"):
        core = Core(arch, program, interpreter=interpreter)
        store_complex_array(core.scratchpad, 0, sig_re, sig_im)
        store_complex_array(core.scratchpad, 2048, ref_re, ref_im)
        return core

    cores = []
    for interpreter in INTERPRETERS:
        core = make_core(interpreter)
        core.run()
        cores.append(core)
    for other in cores[1:]:
        assert_identical(cores[0], other)
    assert_batched_identical(make_core, cores[0])


# ----------------------------------------------------------------------
# Batched tier: ragged widths, per-lane pools, divergence fallback
# ----------------------------------------------------------------------


def _maker(program, pokes=(), mem=()):
    def make_core():
        core = Core(paper_core(), program, interpreter="compiled")
        for reg, value in pokes:
            core.cdrf.poke(reg, value)
        for addr, value, size in mem:
            core.scratchpad.write_word(addr, value, size)
        return core

    return make_core


def test_batched_ragged_final_batch():
    """N % B != 0: one resident runner serves a full batch then the
    ragged remainder, each width bit-identical to per-packet."""
    kernel, pokes, mem = k_pipelined_load()
    program = Program(bundles=enter_and_halt(), kernels={0: kernel})
    make_core = _maker(program, pokes, mem)
    reference = make_core()
    reference.run()
    runner = BatchProgramRunner()
    for width in (4, 3):  # 7 packets at B=4 -> batches of 4 and 3
        assert_batched_identical(make_core, reference, n_lanes=width,
                                 runner=runner)
    # Both widths compiled to (and served by) distinct batch functions.
    widths = {key[-1] for key in runner._cga_fns}
    assert widths == {4, 3}
    assert all(fn is not None for fn in runner._cga_fns.values())


def test_batched_patched_constants_per_lane_pools():
    """Lanes carrying different ``patch_constants`` variants batch
    together: one compiled artifact, per-lane immediate pools."""
    from repro.sim import codegen
    from repro.sim.program import patch_constants

    sentinel = 0xDEAD02
    op = CgaOp(
        opcode=Opcode.ADD,
        srcs=(SrcSel.self_().with_init(0), SrcSel.imm(sentinel)),
        dsts=(DstSel(DstKind.CDRF, 10, last_iteration_only=True),),
    )
    kernel = CgaKernel(
        name="pools", ii=1, stage_count=1,
        contexts=[CgaContext(ops={0: op})], trip_count=6,
    )
    template = Program(bundles=enter_and_halt(), kernels={0: kernel})
    values = (3, 11, -5)
    variants = [patch_constants(template, {sentinel: v}) for v in values]
    per_packet = []
    for variant in variants:
        core = _maker(variant)()
        core.run()
        per_packet.append(core)
    lanes = [_maker(variant)() for variant in variants]
    runner = BatchProgramRunner()
    before = codegen.codegen_stats()["compilations"]
    results = runner.run(lanes)
    for lane, ref, value in zip(results, per_packet, values):
        assert lane.error is None and not lane.fell_back
        assert_identical(ref, lane.core)
        assert lane.core.cdrf.peek(10) == (6 * value) & 0xFFFFFFFF
    # All three variants shared the batch compiles (one VLIW segment fn
    # at most, one kernel fn at most — pools carry the differing imms).
    assert codegen.codegen_stats()["compilations"] - before <= 2
    assert all(fn is not None for fn in runner._cga_fns.values())


def test_batched_divergent_trip_counts_fall_back_per_packet():
    """Differing register trip counts split the batch; every lane still
    lands bit-identical to its own per-packet run."""
    kernel, _, _ = k_trip_from_register()
    program = Program(bundles=enter_and_halt(), kernels={0: kernel})
    trips = (7, 3, 7, 0)
    per_packet = []
    for trip in trips:
        core = _maker(program, pokes=[(5, trip)])()
        core.run()
        per_packet.append(core)
    lanes = [_maker(program, pokes=[(5, trip)])() for trip in trips]
    results = BatchProgramRunner().run(lanes)
    for lane, ref in zip(results, per_packet):
        assert lane.error is None and not lane.fell_back
        assert_identical(ref, lane.core)


def test_batched_mid_batch_cga_fault_falls_back():
    """A lane whose kernel faults (preload into a missing local RF — a
    structural property the signature excludes, so the lane still lands
    in the batch group) is replayed per-packet with the canonical
    ``CgaFault``; the surviving lanes stay bit-identical."""
    kernel, pokes, mem = k_pipelined_load()
    bad_kernel = CgaKernel(
        name=kernel.name, ii=kernel.ii, stage_count=kernel.stage_count,
        contexts=kernel.contexts, trip_count=kernel.trip_count,
        preloads=[Preload(fu=99, lrf_index=0, cdrf_reg=0)],
    )
    program = Program(bundles=enter_and_halt(), kernels={0: kernel})
    bad_program = Program(bundles=enter_and_halt(), kernels={0: bad_kernel})
    reference = _maker(program, pokes, mem)()
    reference.run()
    with pytest.raises(CgaFault) as per_packet_exc:
        _maker(bad_program, pokes, mem)().run()

    def fresh(lane):
        return _maker(bad_program if lane == 1 else program, pokes, mem)()

    lanes = [fresh(i) for i in range(3)]
    results = BatchProgramRunner().run(lanes, fresh=fresh)
    assert results[1].fell_back
    assert isinstance(results[1].error, CgaFault)
    assert str(results[1].error) == str(per_packet_exc.value)
    for i in (0, 2):
        assert results[i].error is None and not results[i].fell_back
        assert_identical(reference, results[i].core)


def test_batched_mid_segment_memory_fault_falls_back():
    """A data-dependent scratchpad overrun in one lane faults inside the
    batched VLIW function; the fallback reproduces the per-packet
    ``MemoryError_`` while sibling lanes complete batched."""
    bundles = [
        VliwBundle((
            Instruction(Opcode.LD_I, srcs=(Reg(1), Imm(0)), dst=Reg(2)),
            None,
            None,
        )),
        VliwBundle((Instruction(Opcode.HALT), None, None)),
    ]
    program = Program(bundles=bundles)
    good = [(1, 16)]
    bad = [(1, 1 << 20)]  # far outside the scratchpad
    reference = _maker(program, pokes=good, mem=[(64, 5, 4)])()
    reference.run()
    with pytest.raises(MemoryError_) as per_packet_exc:
        _maker(program, pokes=bad)().run()

    def fresh(lane):
        pokes = bad if lane == 2 else good
        mem = () if lane == 2 else [(64, 5, 4)]
        return _maker(program, pokes=pokes, mem=mem)()

    lanes = [fresh(i) for i in range(4)]
    results = BatchProgramRunner().run(lanes, fresh=fresh)
    assert results[2].fell_back
    assert isinstance(results[2].error, MemoryError_)
    assert str(results[2].error) == str(per_packet_exc.value)
    for i in (0, 1, 3):
        assert results[i].error is None and not results[i].fell_back
        assert_identical(reference, results[i].core)


def test_batched_fault_without_fresh_records_error():
    """Without a ``fresh`` factory the batched-path exception is kept,
    mapped exactly as ``Core.run`` maps it."""
    kernel, pokes, mem = k_pipelined_load()
    bad_kernel = CgaKernel(
        name=kernel.name, ii=kernel.ii, stage_count=kernel.stage_count,
        contexts=kernel.contexts, trip_count=kernel.trip_count,
        preloads=[Preload(fu=99, lrf_index=0, cdrf_reg=0)],
    )
    program = Program(bundles=enter_and_halt(), kernels={0: kernel})
    bad_program = Program(bundles=enter_and_halt(), kernels={0: bad_kernel})
    lanes = [_maker(bad_program if i == 0 else program, pokes, mem)()
             for i in range(3)]
    results = BatchProgramRunner().run(lanes)
    assert isinstance(results[0].error, CgaFault)
    assert not results[0].fell_back
    assert results[1].error is None and results[2].error is None
