"""AMBA bus and DMA model tests."""

from repro.arch.resources import MemorySpec
from repro.sim.bus import AmbaBus, DmaEngine
from repro.sim.memory import Scratchpad


def make_bus():
    pad = Scratchpad(MemorySpec("l1", words=1024, width=32, banks=4))
    return AmbaBus(pad), pad


def test_host_write_then_read():
    bus, pad = make_bus()
    bus.write_word(0x40, 0xCAFEBABE)
    assert pad.read_word(0x40) == 0xCAFEBABE
    assert bus.read_word(0x40) == 0xCAFEBABE
    assert bus.stats.bus_writes == 1
    assert bus.stats.bus_reads == 1


def test_bus_beats_cost_two_core_cycles():
    bus, _ = make_bus()
    start = bus._cycle
    bus.write_word(0, 1)
    bus.write_word(4, 2)
    assert bus._cycle == start + 2 * AmbaBus.beat_cycles


def test_bus_traffic_contends_with_core():
    """Host beats go through the same bank arbiter as core accesses."""
    bus, pad = make_bus()
    bus.write_word(0, 1)  # bank 0 at bus cycle 0
    _, delay = pad.timed_read(0, 16, 4)  # core hits bank 0 at cycle 0
    assert delay == 1


def test_dma_block_write():
    bus, pad = make_bus()
    dma = DmaEngine(bus)
    cycles = dma.write_block(0x100, [10, 20, 30])
    assert cycles == 3 * AmbaBus.beat_cycles
    assert [pad.read_word(0x100 + 4 * i) for i in range(3)] == [10, 20, 30]
    assert bus.stats.dma_words == 3


def test_dma_configuration_accounting():
    bus, _ = make_bus()
    dma = DmaEngine(bus)
    cycles = dma.load_configuration(n_contexts=4, words_per_context=17)
    assert cycles == 4 * 17 * AmbaBus.beat_cycles
    assert bus.stats.dma_words == 68


def test_control_interface_flags():
    bus, _ = make_bus()
    assert not bus.special.stalled
    bus.assert_stall()
    assert bus.special.stalled
    bus.deassert_stall()
    assert not bus.special.stalled
    bus.assert_resume()
    assert bus.special.resume_pending


def test_core_resume_after_halt():
    from repro.arch import paper_core
    from repro.isa import assemble
    from repro.sim import Core, Program, VliwBundle

    insts = assemble("add r1, r0, #1\nhalt\nadd r2, r0, #2\nhalt")
    bundles = [VliwBundle((i, None, None)) for i in insts]
    core = Core(paper_core(), Program(bundles=bundles))
    core.run()
    assert core.halted
    assert core.cdrf.peek(1) == 1
    assert core.cdrf.peek(2) == 0
    core.resume()
    assert not core.halted
    core.run()
    assert core.cdrf.peek(2) == 2
