"""Scratchpad tests: functional storage, interleaving, contention timing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.resources import MemorySpec
from repro.sim.memory import MemoryError_, Scratchpad


def make_pad(words=1024, banks=4):
    return Scratchpad(MemorySpec("l1", words=words, width=32, banks=banks))


def test_functional_word_roundtrip():
    pad = make_pad()
    pad.write_word(0x40, 0xDEADBEEF, 4)
    assert pad.read_word(0x40, 4) == 0xDEADBEEF


def test_little_endian_layout():
    pad = make_pad()
    pad.write_word(0, 0x11223344, 4)
    assert pad.load_bytes(0, 4) == bytes([0x44, 0x33, 0x22, 0x11])


def test_signed_read():
    pad = make_pad()
    pad.write_word(8, 0xFFFF, 2)
    assert pad.read_word(8, 2, signed=True) == -1
    assert pad.read_word(8, 2, signed=False) == 0xFFFF


def test_word_interleaved_banking():
    pad = make_pad(banks=4)
    assert [pad.bank_of(4 * i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    # Bytes within a word map to the same bank.
    assert pad.bank_of(5) == pad.bank_of(4)


def test_out_of_range_rejected():
    pad = make_pad(words=16, banks=1)  # 64 bytes
    with pytest.raises(MemoryError_):
        pad.read_word(64, 4)
    with pytest.raises(MemoryError_):
        pad.timed_read(0, 62, 4)


def test_no_conflict_different_banks_same_cycle():
    pad = make_pad()
    _, d0 = pad.timed_read(0, 0, 4)
    _, d1 = pad.timed_read(0, 4, 4)
    assert d0 == 0 and d1 == 0
    assert pad.stats.l1_bank_conflicts == 0


def test_same_bank_same_cycle_queues():
    pad = make_pad()
    _, d0 = pad.timed_read(0, 0, 4)
    _, d1 = pad.timed_read(0, 16, 4)  # 16 bytes = 4 words -> same bank 0
    assert d0 == 0
    assert d1 == 1
    assert pad.stats.l1_bank_conflicts == 1
    assert pad.stats.l1_conflict_stall_cycles == 1


def test_three_way_conflict_queues_progressively():
    pad = make_pad()
    delays = [pad.timed_read(0, 16 * i, 4)[1] for i in range(3)]
    assert delays == [0, 1, 2]


def test_bank_frees_up_next_cycle():
    pad = make_pad()
    pad.timed_read(0, 0, 4)
    _, d = pad.timed_read(1, 16, 4)
    assert d == 0


def test_64bit_access_claims_two_adjacent_banks():
    pad = make_pad()
    _, d = pad.timed_read(0, 0, 8)
    assert d == 0
    # Bank 0 and bank 1 are now busy at cycle 0.
    _, d0 = pad.timed_read(0, 16, 4)  # bank 0 again
    assert d0 == 1
    assert pad.stats.l1_reads == 3  # 2 for the 64-bit + 1


def test_timed_write_then_read_value():
    pad = make_pad()
    pad.timed_write(0, 100, 0x1234, 4)
    value, _ = pad.timed_read(1, 100, 4)
    assert value == 0x1234


def test_reset_timing_keeps_contents():
    pad = make_pad()
    pad.timed_write(0, 0, 7, 4)
    pad.reset_timing()
    assert pad.read_word(0) == 7
    _, d = pad.timed_read(0, 16, 4)
    assert d == 0


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255),  # word index
            st.integers(min_value=0, max_value=0xFFFFFFFF),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_read_after_write_property(writes):
    """The last write to each word wins, regardless of interleaving."""
    pad = make_pad()
    expected = {}
    for i, (word, value) in enumerate(writes):
        pad.timed_write(i, word * 4, value, 4)
        expected[word] = value
    for word, value in expected.items():
        assert pad.read_word(word * 4) == value


@given(st.integers(min_value=0, max_value=1020))
def test_bank_of_is_word_interleaved(addr):
    pad = make_pad()
    assert pad.bank_of(addr) == (addr // 4) % 4
