"""Wire-format unit tests: header round trips, codecs, typed rejection."""

import struct

import numpy as np
import pytest

from repro.ingest import (
    DTYPES,
    HEADER_SIZE,
    MAGIC,
    MAX_PACKET_NBYTES,
    BadMagic,
    CorruptHeader,
    TruncatedDatagram,
    VersionMismatch,
    decode_payload,
    encode_packet,
    encode_payload,
    end_marker,
    iq_roundtrip,
    parse_datagram,
    payload_nbytes,
)


def _rx(n_ant=2, n=300, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n_ant, n)) + 1j * rng.standard_normal((n_ant, n))) / 4


def test_header_fields_round_trip():
    frames = encode_packet(9, 3, _rx(), n_symbols=4, dtype="q15", session=77)
    header, payload = parse_datagram(frames[0])
    assert header.stream_id == 9
    assert header.session == 77
    assert header.seq == 3
    assert header.n_symbols == 4
    assert header.n_ant == 2
    assert header.n_samples == 300
    assert header.dtype == DTYPES["q15"]
    assert header.dtype_name == "q15"
    assert header.frag_index == 0
    assert header.frag_count == len(frames)
    assert not header.is_end
    assert header.payload_len == len(payload)


@pytest.mark.parametrize("dtype", ["q15", "c64", "c128"])
def test_codec_round_trip_is_idempotent(dtype):
    rx = _rx()
    once = iq_roundtrip(rx, dtype)
    twice = iq_roundtrip(once, dtype)
    np.testing.assert_array_equal(once, twice)
    blob = encode_payload(rx, dtype)
    assert len(blob) == payload_nbytes(dtype, 2, 300)
    np.testing.assert_array_equal(decode_payload(blob, dtype, 2, 300), once)


def test_c128_round_trip_is_exact():
    rx = _rx()
    np.testing.assert_array_equal(iq_roundtrip(rx, "c128"), rx)


def test_fragmentation_covers_payload_uniformly():
    rx = _rx(n=701)  # c64: 2*701*8 = 11216 bytes
    frames = encode_packet(1, 0, rx, dtype="c64", max_payload=1408)
    assert len(frames) == -(-11216 // 1408)
    payloads = [parse_datagram(f)[1] for f in frames]
    assert all(len(p) == 1408 for p in payloads[:-1])
    assert b"".join(payloads) == encode_payload(rx, "c64")


def test_reassembled_fragments_decode_exactly():
    rx = _rx(n=701)
    frames = encode_packet(1, 0, rx, dtype="c64", max_payload=333)
    blob = b"".join(parse_datagram(f)[1] for f in frames)
    np.testing.assert_array_equal(
        decode_payload(blob, "c64", 2, 701), iq_roundtrip(rx, "c64")
    )


def test_end_marker_parses_as_control():
    header, payload = parse_datagram(end_marker(5, 42, session=3))
    assert header.is_end
    assert header.stream_id == 5
    assert header.seq == 42  # carries the packet count
    assert header.session == 3
    assert payload == b""


def test_truncated_and_garbage_datagrams_raise_typed():
    frame = encode_packet(1, 0, _rx())[0]
    with pytest.raises(TruncatedDatagram):
        parse_datagram(frame[: HEADER_SIZE - 1])  # short header, good magic
    with pytest.raises(TruncatedDatagram):
        parse_datagram(frame[:-1])  # payload shorter than declared
    with pytest.raises(BadMagic):
        parse_datagram(b"not the protocol at all")
    with pytest.raises(BadMagic):
        parse_datagram(b"\x00" * HEADER_SIZE)
    with pytest.raises(TruncatedDatagram):
        parse_datagram(b"")


def test_version_mismatch_is_typed_with_fields():
    frame = bytearray(encode_packet(1, 0, _rx())[0])
    struct.pack_into("<H", frame, 4, 9)  # version field
    with pytest.raises(VersionMismatch) as exc:
        parse_datagram(bytes(frame))
    assert exc.value.got == 9
    assert exc.value.want == 1


def test_corrupt_header_fields_raise_typed():
    good = encode_packet(1, 0, _rx())[0]
    # Unknown dtype code.
    frame = bytearray(good)
    struct.pack_into("<B", frame, 6, 250)
    with pytest.raises(CorruptHeader):
        parse_datagram(bytes(frame))
    # frag_index >= frag_count.
    frame = bytearray(good)
    struct.pack_into("<H", frame, 26, 99)
    with pytest.raises(CorruptHeader):
        parse_datagram(bytes(frame))
    # Trailing junk beyond the declared payload.
    with pytest.raises(CorruptHeader):
        parse_datagram(good + b"junk")
    # End marker carrying a payload.
    frame = bytearray(good)
    struct.pack_into("<H", frame, 30, 1)  # flags |= FLAG_END
    with pytest.raises(CorruptHeader):
        parse_datagram(bytes(frame))


def test_packet_size_cap_is_enforced_at_parse_time():
    """``n_samples`` is a u32: a forged header must not be able to
    promise a multi-GiB packet the receiver would buffer toward."""
    frame = bytearray(encode_packet(1, 0, _rx())[0])
    struct.pack_into("<I", frame, 20, 2**28)  # n_samples: claims ~4 GiB
    with pytest.raises(CorruptHeader, match="cap"):
        parse_datagram(bytes(frame))


def test_frag_count_exceeding_payload_bytes_is_corrupt():
    frame = bytearray(encode_packet(1, 0, _rx(n_ant=1, n=8))[0])  # 64-byte packet
    struct.pack_into("<H", frame, 28, 65535)  # frag_count
    with pytest.raises(CorruptHeader, match="frag_count"):
        parse_datagram(bytes(frame))


def test_encoder_refuses_packets_over_the_cap():
    rx = np.zeros((1, MAX_PACKET_NBYTES // 8 + 1), dtype=np.complex64)
    with pytest.raises(ValueError, match="cap"):
        encode_packet(1, 0, rx, dtype="c64")


def test_encode_packet_validates_inputs():
    with pytest.raises(ValueError, match="n_ant"):
        encode_packet(1, 0, _rx(n_ant=9, n=8))
    with pytest.raises(ValueError, match="dtype"):
        encode_packet(1, 0, _rx(), dtype="f32")
    with pytest.raises(ValueError, match="max_payload"):
        encode_packet(1, 0, _rx(), max_payload=0)


def test_magic_is_the_documented_constant():
    assert MAGIC == 0x51493135
    assert encode_packet(1, 0, _rx())[0][:4] == struct.pack("<I", MAGIC)
