"""Reassembler edge cases: reordering, loss, duplication, epoch resets.

Every test also checks the accounting taxonomy — the exactly-once
invariant lives or dies on these counters.
"""

import struct

import numpy as np

from repro.ingest import Reassembler, encode_packet, end_marker, iq_roundtrip


def _rx(seed, n=80):  # 2x80 c64 = 1280 B: single-fragment by default
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((2, n)) + 1j * rng.standard_normal((2, n))) / 4


def _frames(seq, seed=None, session=0, max_payload=1408, stream_id=1, dtype="c64"):
    return encode_packet(
        stream_id, seq, _rx(seed if seed is not None else seq),
        dtype=dtype, session=session, max_payload=max_payload,
    )


def _counters(r, stream_id=1):
    return r.stats()["streams"][str(stream_id)]


def test_in_order_stream_releases_immediately():
    r = Reassembler(window=4)
    out = []
    for seq in range(5):
        out.extend(r.offer(_frames(seq)[0]))
    assert [p.seq for p in out] == [0, 1, 2, 3, 4]
    c = _counters(r)
    assert c["released"] == 5 and c["gaps"] == 0 and c["out_of_order"] == 0
    np.testing.assert_array_equal(out[0].rx, iq_roundtrip(_rx(0), "c64"))


def test_out_of_order_within_window_is_reordered():
    r = Reassembler(window=8)
    order = [2, 0, 1, 4, 3]
    out = []
    for seq in order:
        out.extend(r.offer(_frames(seq)[0]))
    assert [p.seq for p in out] == [0, 1, 2, 3, 4], "released in sequence order"
    c = _counters(r)
    assert c["released"] == 5
    assert c["gaps"] == 0
    assert c["out_of_order"] >= 2  # 0 after 2, 3 after 4


def test_reorder_beyond_window_declares_the_hole_lost():
    r = Reassembler(window=2)
    out = []
    for seq in [1, 2, 3]:  # seq 0 never arrives
        out.extend(r.offer(_frames(seq)[0]))
    # window=2: once seq 2 is seen, the line cannot wait for 0 anymore.
    assert [p.seq for p in out] == [1, 2, 3]
    c = _counters(r)
    assert c["gaps"] == 1 and c["released"] == 3
    # The hole's datagram arriving *after* the write-off is stale, and
    # never resurrects the sequence.
    assert r.offer(_frames(0)[0]) == []
    assert _counters(r)["stale"] == 1
    assert _counters(r)["released"] == 3


def test_duplicate_datagrams_are_dropped_and_counted():
    r = Reassembler(window=4)
    frames = _frames(0, max_payload=200)  # multi-fragment
    assert len(frames) > 2
    out = list(r.offer(frames[0]))
    out.extend(r.offer(frames[0]))  # duplicate fragment, packet pending
    for f in frames[1:]:
        out.extend(r.offer(f))
    assert [p.seq for p in out] == [0]
    c = _counters(r)
    assert c["duplicates"] == 1 and c["reassembled"] == 1 and c["released"] == 1


def test_fragment_loss_mid_packet_counts_incomplete():
    r = Reassembler(window=1)
    frames = _frames(0, max_payload=200)
    for f in frames[:-1]:  # lose the last fragment of seq 0
        r.offer(f)
    out = []
    for f in _frames(1, max_payload=200):  # seq 1 arrives whole
        out.extend(r.offer(f))
    c = _counters(r)
    assert c["incomplete"] == 1, c
    assert [p.seq for p in out] == [1]
    assert c["gaps"] == 0


def test_malformed_traffic_lands_in_listener_counters():
    r = Reassembler()
    good = _frames(0)[0]
    assert r.offer(b"garbage traffic") == []
    assert r.offer(good[:20]) == []
    bad_version = bytearray(good)
    struct.pack_into("<H", bad_version, 4, 7)
    assert r.offer(bytes(bad_version)) == []
    bad_dtype = bytearray(good)
    struct.pack_into("<B", bad_dtype, 6, 200)
    assert r.offer(bytes(bad_dtype)) == []
    listener = r.stats()["listener"]
    assert listener == {
        "bad_magic": 1, "truncated": 1, "version_mismatch": 1, "corrupt_header": 1,
    }
    assert r.stats()["streams"] == {}, "malformed traffic creates no stream"


def test_session_change_resets_the_stream_epoch():
    """A restarted sender reuses stream id 1 with a fresh session nonce:
    its seq numbering restarts cleanly instead of drowning as stale."""
    r = Reassembler(window=4)
    out = []
    for seq in range(3):
        out.extend(r.offer(_frames(seq, session=100)[0]))
    # Restart: same stream id, new session, seq starts over at 0.
    for seq in range(2):
        out.extend(r.offer(_frames(seq, seed=50 + seq, session=200)[0]))
    assert [p.seq for p in out] == [0, 1, 2, 0, 1]
    assert [p.session for p in out] == [100, 100, 100, 200, 200]
    c = _counters(r)
    assert c["resets"] == 1
    assert c["released"] == 5, "lifetime counters survive the reset"
    assert c["stale"] == 0, "the new epoch is not mistaken for old traffic"


def test_geometry_lie_on_one_seq_counts_corrupt():
    r = Reassembler(window=4)
    frames = _frames(0, max_payload=200)
    r.offer(frames[0])
    # Same (stream, session, seq) but different claimed sample count.
    liar = encode_packet(1, 0, _rx(0, n=64), dtype="c64", max_payload=200)[0]
    assert r.offer(liar) == []
    c = _counters(r)
    assert c["corrupt"] == 1
    assert c["pending"] == 0, "the poisoned packet was discarded whole"


def test_flush_uses_end_marker_to_account_trailing_gaps():
    r = Reassembler(window=16)
    released = []
    for seq in [0, 1, 3]:  # 2 lost mid-stream, 4 lost at the tail
        released.extend(r.offer(_frames(seq)[0]))
    released.extend(r.offer(end_marker(1, 5)))
    assert [p.seq for p in released] == [0, 1]
    flushed = r.flush()
    assert [p.seq for p in flushed] == [3]
    c = _counters(r)
    assert c["gaps"] == 2, "both the mid-stream and the trailing loss"
    assert c["released"] == 3
    # Exactly-once ledger: released + gaps == sender's packet count.
    assert c["released"] + c["gaps"] == 5


def test_duplicate_end_markers_are_idempotent():
    r = Reassembler()
    r.offer(_frames(0)[0])
    for _ in range(3):
        r.offer(end_marker(1, 1))
    assert r.flush() == []
    c = _counters(r)
    assert c["released"] == 1 and c["gaps"] == 0


def test_max_streams_evicts_least_outstanding():
    r = Reassembler(max_streams=2)
    r.offer(_frames(0, stream_id=10)[0])
    r.offer(_frames(0, stream_id=11, max_payload=200)[0])  # pending fragments
    r.offer(_frames(0, stream_id=12)[0])  # forces an eviction
    ids = r.stream_ids()
    assert len(ids) == 2 and 12 in ids
    assert 11 in ids, "the stream holding fragments was kept"


def test_eviction_folds_counters_into_aggregate_bucket():
    r = Reassembler(max_streams=2)
    r.offer(_frames(0, stream_id=10)[0])  # clean: 1 released
    r.offer(_frames(0, stream_id=11, max_payload=200)[0])  # outstanding state
    r.offer(_frames(0, stream_id=12)[0])  # evicts the clean stream 10
    assert r.stream_ids() == [11, 12]
    ev = r.stats()["evicted"]
    assert ev["streams"] == 1
    assert ev["released"] == 1, "the evicted stream's history survives"
    assert ev["gaps"] == 0 and ev["incomplete"] == 0


def test_eviction_settles_outstanding_state():
    r = Reassembler(window=64, max_streams=1)
    r.offer(_frames(1, stream_id=10)[0])  # held: seq 0 still missing
    r.offer(_frames(0, stream_id=11)[0])  # evicts stream 10
    ev = r.stats()["evicted"]
    assert ev["streams"] == 1 and ev["received"] == 1
    assert ev["incomplete"] == 1, "the held packet was written off"
    assert ev["gaps"] == 1, "the never-seen seq 0"
    assert ev["released"] == 0


def test_session_reset_settles_the_old_epoch():
    r = Reassembler(window=64)
    r.offer(_frames(0, session=1)[0])
    r.offer(_frames(2, session=1)[0])  # held: seq 1 still missing
    out = r.offer(_frames(0, seed=9, session=2)[0])
    assert [p.seq for p in out] == [0], "the new epoch releases cleanly"
    c = _counters(r)
    assert c["resets"] == 1
    assert c["incomplete"] == 1, "the old epoch's held seq 2"
    assert c["gaps"] == 1, "the old epoch's never-seen seq 1"
    # Ledger: 3 packets of the old epoch + 1 of the new, each once.
    assert c["released"] + c["gaps"] + c["incomplete"] == 4


def test_forged_far_future_seq_advances_arithmetically():
    """One datagram with seq near 2^32 (an unvalidated u32 off the wire)
    must jump the window in O(window), not spin per sequence — and the
    exactly-once ledger must still balance over the whole jump."""
    r = Reassembler(window=4)
    r.offer(_frames(0)[0])
    far = 2**32 - 1
    assert r.offer(_frames(far, seed=1)[0]) == []  # held behind the jumped floor
    flushed = r.flush()
    assert [p.seq for p in flushed] == [far]
    c = _counters(r)
    assert c["released"] == 2
    assert c["released"] + c["gaps"] == 2**32
    # Everything the jump wrote off is stale now, never resurrected.
    assert r.offer(_frames(1)[0]) == []
    assert _counters(r)["stale"] == 1


def test_forged_end_marker_flushes_arithmetically():
    r = Reassembler(window=4)
    r.offer(_frames(0)[0])
    r.offer(end_marker(1, 2**32 - 1))  # forged count near u32 max
    assert r.flush() == []
    c = _counters(r)
    assert c["released"] == 1
    assert c["released"] + c["gaps"] == 2**32 - 1


def test_corrupt_seq_lands_in_exactly_one_counter():
    """A poisoned seq is tombstoned: the window advance never recounts
    it as a gap, late fragments cannot resurrect it, and it never
    blocks the release line."""
    r = Reassembler(window=2)
    frames = _frames(0, max_payload=200)
    r.offer(frames[0])
    liar = encode_packet(1, 0, _rx(0, n=64), dtype="c64", max_payload=200)[0]
    r.offer(liar)  # poisons seq 0 at the head of the line
    assert r.offer(frames[1]) == [], "a late fragment cannot resurrect it"
    out = []
    for seq in [1, 2, 3]:
        out.extend(r.offer(_frames(seq)[0]))
    assert [p.seq for p in out] == [1, 2, 3], "the poison never blocked the line"
    r.offer(end_marker(1, 4))
    assert r.flush() == []
    c = _counters(r)
    assert c["corrupt"] == 1
    assert c["gaps"] == 0 and c["incomplete"] == 0
    assert c["stale"] == 1
    assert c["released"] + c["gaps"] + c["incomplete"] + c["corrupt"] == 4


def test_corrupt_mid_window_not_double_counted_on_advance():
    r = Reassembler(window=2)
    r.offer(_frames(1, max_payload=200)[0])
    liar = encode_packet(1, 1, _rx(5, n=64), dtype="c64", max_payload=200)[0]
    r.offer(liar)  # seq 1 poisoned while seq 0 is still awaited
    out = []
    for seq in [2, 3]:
        out.extend(r.offer(_frames(seq)[0]))
    assert [p.seq for p in out] == [2, 3]
    c = _counters(r)
    assert c["corrupt"] == 1
    assert c["gaps"] == 1, "only seq 0, never seq 1 again"
    assert c["released"] + c["gaps"] + c["corrupt"] == 4


def test_frag_count_lie_is_poisoned_before_buffering():
    """A header claiming absurdly many fragments for its payload size is
    rejected on the *first* fragment — the receiver never hoards bytes
    toward a total the packet's claimed shape cannot tile."""
    r = Reassembler(window=4)
    frame = bytearray(_frames(0, max_payload=200)[0])
    struct.pack_into("<H", frame, 28, 1000)  # frag_count: 7 -> 1000
    assert r.offer(bytes(frame)) == []
    c = _counters(r)
    assert c["corrupt"] == 1
    assert c["pending"] == 0, "the lying packet buffered nothing"
