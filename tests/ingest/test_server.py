"""IngestServer over loopback sockets: transport, chaos, accounting.

A cheap checksum stub runner keeps the transport tests fast (transport
bit-identity is about the *bytes*, not the modem); one end-to-end test
runs real waveforms through real forked modem workers and pins the
decode bit-identical to a serial run.
"""

import json
import os
import socket
import time

import numpy as np
import pytest

from repro.fabric import FABRIC_REPORT_SCHEMA, Fabric
from repro.ingest import IngestServer, iq_roundtrip, send_stream
from repro.obs.prom import lint_exposition
from repro.trace import schema_errors

_SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "fabric_report.schema.json"
)


class _ChecksumRunner:
    """Stands in for a ModemRuntime: deterministic digest of the rx bytes."""

    def run_packet(self, rx, n_symbols=2, detect_hint=None):
        return {
            "digest": rx.tobytes(),
            "n": int(rx.shape[1]),
            "n_symbols": int(n_symbols),
        }


def _checksum_factory():
    return _ChecksumRunner()


class _SlowRunner:
    def run_packet(self, rx, n_symbols=2, detect_hint=None):
        time.sleep(0.2)
        return {"n": int(rx.shape[1])}


def _slow_factory():
    return _SlowRunner()


class _SlowBatchRunner(_SlowRunner):
    """Batched flavour: one slow call serves a whole dispatch group."""

    def run_batch_results(self, rxs, n_symbols=2, detect_hint=None):
        time.sleep(0.2)

        class _R:
            def __init__(self, rx):
                self.output = {"n": int(rx.shape[1])}
                self.error = None

        return [_R(rx) for rx in rxs]


def _slow_batch_factory():
    return _SlowBatchRunner()


def _waveforms(n, seed=0, n_samples=600):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal((2, n_samples)) + 1j * rng.standard_normal((2, n_samples)))
        / 4
        for _ in range(n)
    ]


def _delivered_digests(server, results):
    """(stream_id, seq) -> worker digest for every delivered packet."""
    out = {}
    for (stream_id, seq), task_id in server.submissions().items():
        out[(stream_id, seq)] = results[task_id]["digest"]
    return out


def test_udp_chaos_stream_is_bit_identical_and_fully_accounted():
    """The acceptance-criteria shape in miniature: reordering + drops +
    duplication over loopback UDP, every delivered packet bit-identical
    to the local encode/decode round trip, every packet accounted."""
    waves = _waveforms(60, seed=3)
    fab = Fabric(workers=2, runner_factory=_checksum_factory, queue_depth=8)
    with fab:
        with IngestServer(fab, udp_port=0, window=32) as server:
            report = send_stream(
                waves,
                udp=server.udp_address,
                stream_id=1,
                dtype="c64",
                reorder=0.3,
                drop=0.05,
                duplicate=0.05,
                seed=7,
            )
            results = server.drain(timeout=60)
        assert report.reordered > 0 and report.dropped > 0
        delivered = _delivered_digests(server, results)
        # Chaos only drops datagrams the sender *knows about*: loopback
        # UDP with a 4MB receive buffer loses nothing else, so intact
        # packets must all arrive and broken ones must not.
        intact = set(report.intact_seqs)
        assert {seq for _, seq in delivered} == intact
        for seq in intact:
            expected = iq_roundtrip(waves[seq], "c64").tobytes()
            assert delivered[(1, seq)] == expected, "seq %d not bit-identical" % seq
        problems = server.accounting_problems({1: report.n_packets})
        assert problems == [], problems


def test_tcp_stream_delivers_everything_in_order():
    waves = _waveforms(20, seed=5, n_samples=300)
    fab = Fabric(workers=2, runner_factory=_checksum_factory, queue_depth=8)
    with fab:
        server = IngestServer(fab, udp_port=None, tcp_port=0).start()
        try:
            report = send_stream(
                waves, tcp=server.tcp_address, stream_id=4, dtype="c128"
            )
            results = server.drain(timeout=60)
        finally:
            server.stop()
        delivered = _delivered_digests(server, results)
        assert len(delivered) == 20
        for seq, rx in enumerate(waves):
            assert delivered[(4, seq)] == rx.astype(np.complex128).tobytes()
        assert server.accounting_problems({4: report.n_packets}) == []
        ingest = fab.report()["ingest"]
        assert ingest["tcp_connections"] == 1
        view = ingest["streams"]["4"]
        assert view["released"] == 20 and view["submitted"] == 20


def test_fabric_backpressure_shed_is_accounted_per_stream():
    """drop-mode fabric with one slow worker: ingest keeps up, the
    fabric sheds — every shed packet lands in shed_dropped, and the
    exactly-once ledger still balances."""
    waves = _waveforms(12, seed=11, n_samples=200)
    fab = Fabric(
        workers=1, runner_factory=_slow_factory, queue_depth=1, backpressure="drop"
    )
    with fab:
        with IngestServer(fab, udp_port=0) as server:
            report = send_stream(waves, udp=server.udp_address, stream_id=2)
            server.drain(timeout=60)
        view = fab.report()["ingest"]["streams"]["2"]
        assert view["released"] == 12
        assert view["shed_dropped"] > 0
        assert view["submitted"] + view["shed_dropped"] == 12
        assert server.accounting_problems({2: report.n_packets}) == []


def test_batched_submission_shed_keeps_ledger_exactly_once():
    """Regression for the batch-aware submission path: a burst pushed
    through one ``offer_many`` call against a shedding batch-drain
    fabric must account every packet exactly once — no packet may be
    both submitted and shed, none may vanish — and the shed total must
    land in the rolling window under ``ingest_shed``."""
    waves = _waveforms(24, seed=13, n_samples=200)
    fab = Fabric(
        workers=1,
        runner_factory=_slow_batch_factory,
        queue_depth=2,
        batch=4,
        backpressure="drop",
    )
    with fab:
        with IngestServer(fab, udp_port=0, window=64) as server:
            report = send_stream(waves, udp=server.udp_address, stream_id=6)
            server.drain(timeout=60)
        fabric_report = fab.report()
        view = fabric_report["ingest"]["streams"]["6"]
        assert view["released"] == 24
        assert view["shed_dropped"] > 0
        assert view["submitted"] + view["shed_dropped"] == 24
        assert server.accounting_problems({6: report.n_packets}) == []
        assert (
            fabric_report["window"]["counts"].get("ingest_shed", 0)
            == view["shed_dropped"]
        )
        # Every accepted packet really completed through the batched
        # dispatch path.
        assert fabric_report["counters"]["completed"] == view["submitted"]


def test_report_schema_metrics_lint_and_health():
    waves = _waveforms(8, seed=2, n_samples=200)
    fab = Fabric(workers=1, runner_factory=_checksum_factory, queue_depth=8)
    with fab:
        server = IngestServer(fab, udp_port=0, tcp_port=0).start()
        # Malformed traffic must surface in the counters, not kill the
        # listener.
        junk = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        junk.sendto(b"definitely not the protocol", server.udp_address)
        junk.close()
        send_stream(waves, udp=server.udp_address, stream_id=9)
        server.drain(timeout=60)

        report = fab.report()
        assert report["schema"] == FABRIC_REPORT_SCHEMA == "repro.fabric_report/v3"
        with open(_SCHEMA_PATH) as fh:
            schema = json.load(fh)
        errors = schema_errors(report, schema)
        assert errors == [], errors
        assert report["ingest"]["malformed"]["bad_magic"] == 1
        assert report["window"]["counts"]["ingest_datagrams"] > 0
        assert report["window"]["counts"]["ingest_packets"] == 8

        text = fab.metrics_text()
        problems = lint_exposition(text)
        assert problems == [], problems
        assert 'repro_ingest_received{stream="9"}' in text
        assert 'repro_ingest_malformed{kind="bad_magic"} 1' in text
        assert "repro_ingest_listener_alive 1" in text

        health = fab.health()
        assert health["checks"]["ingest:listener"][0]["status"] == "pass"
        assert health["status"] == "pass"
        server.stop()
        health = fab.health()
        assert health["checks"]["ingest:listener"][0]["status"] == "warn"
        assert "repro_ingest_listener_alive 0" in fab.metrics_text()


def test_overflow_sheds_newest_with_accounting():
    """With no poll() running and a tiny staging buffer, the listener
    must shed the overflow — never block the socket thread or grow
    without bound."""
    waves = _waveforms(10, seed=4, n_samples=200)
    fab = Fabric(workers=1, runner_factory=_checksum_factory, queue_depth=8)
    with fab:
        with IngestServer(fab, udp_port=0, stream_buffer=4) as server:
            send_stream(waves, udp=server.udp_address, stream_id=3)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                view = fab.report()["ingest"]["streams"].get("3")
                if view and view["released"] == 10:
                    break
                time.sleep(0.05)
            server.drain(timeout=60)
        view = fab.report()["ingest"]["streams"]["3"]
        assert view["shed_overflow"] == 6, view
        assert view["submitted"] == 4
        assert server.accounting_problems({3: 10}) == []


def test_submissions_retention_is_bounded():
    """A long-running server must not leak one task-id mapping per
    packet ever served: only the newest track_submissions survive."""
    waves = _waveforms(10, seed=6, n_samples=200)
    fab = Fabric(workers=1, runner_factory=_checksum_factory, queue_depth=8)
    with fab:
        with IngestServer(fab, udp_port=0, track_submissions=4) as server:
            send_stream(waves, udp=server.udp_address, stream_id=7)
            server.drain(timeout=60)
        tasks = server.submissions()
        assert set(tasks) == {(7, seq) for seq in range(6, 10)}, tasks
        view = fab.report()["ingest"]["streams"]["7"]
        assert view["submitted"] == 10, "accounting is unaffected by the bound"
        assert server.accounting_problems({7: 10}) == []


def test_lifecycle_validation():
    fab = Fabric(workers=1, runner_factory=_checksum_factory)
    with pytest.raises(ValueError, match="transport"):
        IngestServer(fab, udp_port=None, tcp_port=None)
    with pytest.raises(ValueError, match="stream_buffer"):
        IngestServer(fab, stream_buffer=0)
    with pytest.raises(ValueError, match="track_submissions"):
        IngestServer(fab, track_submissions=0)


# ----------------------------------------------------------------------
# Real modem end-to-end (one warm template, a few packets).
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def template():
    from repro.runtime import ModemRuntime, generate_packets

    cases = generate_packets(1, base_seed=42, cfo_hz=50e3)
    runtime = ModemRuntime()
    runtime.warm_up(cases[0].rx)
    return runtime


def test_real_modem_over_udp_matches_serial(template):
    from repro.runtime import generate_packets

    cases = generate_packets(3, base_seed=42, cfo_hz=50e3)
    serial = [template.run_packet(case.rx) for case in cases]
    fab = Fabric(workers=2, template_runtime=template, queue_depth=4)
    with fab:
        with IngestServer(fab, udp_port=0) as server:
            # c128 transport: the delivered waveform is bit-exact, so
            # the decode must match the serial run exactly.
            send_stream(
                [case.rx for case in cases],
                udp=server.udp_address,
                stream_id=1,
                dtype="c128",
                reorder=0.3,
                seed=1,
            )
            results = server.drain(timeout=300)
        tasks = server.submissions()
        assert len(tasks) == 3
        for seq, serial_out in enumerate(serial):
            out = results[tasks[(1, seq)]]
            assert list(out.bits) == list(serial_out.bits)
            assert out.detect_pos == serial_out.detect_pos
            assert out.coarse_cfo_hz == serial_out.coarse_cfo_hz
            assert out.fine_cfo_hz == serial_out.fine_cfo_hz
            assert out.stats == serial_out.stats
        assert server.accounting_problems({1: 3}) == []
