"""Tests for the Table 1 opcode/group metadata."""

import pytest

from repro.isa import GROUP_INFO, Opcode, OpGroup, group_of, latency_of, ops_in_group
from repro.isa.opcodes import (
    is_branch,
    is_commutative,
    is_load,
    is_memory,
    is_store,
    writes_predicate,
)


def test_every_opcode_has_a_group():
    for op in Opcode:
        assert isinstance(group_of(op), OpGroup)


def test_group_partition_is_exact():
    seen = set()
    for group in OpGroup:
        for op in ops_in_group(group):
            assert op not in seen
            seen.add(op)
    assert seen == set(Opcode)


@pytest.mark.parametrize(
    "group,latency",
    [
        (OpGroup.ARITH, 1),
        (OpGroup.LOGIC, 1),
        (OpGroup.SHIFT, 1),
        (OpGroup.COMP, 1),
        (OpGroup.MUL, 2),
        (OpGroup.LDMEM, 5),
        (OpGroup.STMEM, 1),
        (OpGroup.SIMD1, 1),
        (OpGroup.SIMD2, 3),
        (OpGroup.DIV, 8),
    ],
)
def test_table1_latencies(group, latency):
    assert GROUP_INFO[group].latency == latency


def test_branch_latencies_table1():
    # Absolute branches take 2 cycles, PC-relative take 3.
    assert latency_of(Opcode.JMP) == 2
    assert latency_of(Opcode.JMPL) == 2
    assert latency_of(Opcode.BR) == 3
    assert latency_of(Opcode.BRL) == 3


@pytest.mark.parametrize(
    "group,fu_range",
    [
        (OpGroup.ARITH, (0, 15)),
        (OpGroup.SIMD1, (0, 15)),
        (OpGroup.SIMD2, (0, 15)),
        (OpGroup.BRANCH, (0, 0)),
        (OpGroup.LDMEM, (0, 3)),
        (OpGroup.STMEM, (0, 3)),
        (OpGroup.DIV, (0, 1)),
    ],
)
def test_table1_fu_ranges(group, fu_range):
    assert GROUP_INFO[group].fu_range == fu_range


@pytest.mark.parametrize(
    "group,width",
    [
        (OpGroup.ARITH, 32),
        (OpGroup.PRED, 32),
        (OpGroup.SIMD1, 64),
        (OpGroup.SIMD2, 64),
        (OpGroup.DIV, 24),
    ],
)
def test_table1_widths(group, width):
    assert GROUP_INFO[group].width == width


def test_predicates_write_predicate_file():
    assert writes_predicate(Opcode.PRED_EQ)
    assert writes_predicate(Opcode.PRED_CLEAR)
    assert not writes_predicate(Opcode.EQ)


def test_memory_classification():
    assert is_memory(Opcode.LD_I) and is_load(Opcode.LD_I)
    assert is_memory(Opcode.ST_C2) and is_store(Opcode.ST_C2)
    assert not is_memory(Opcode.ADD)
    assert is_branch(Opcode.BR)
    assert not is_branch(Opcode.CGA)


def test_commutativity_flags():
    assert is_commutative(Opcode.ADD)
    assert is_commutative(Opcode.XOR)
    assert not is_commutative(Opcode.SUB)
    assert not is_commutative(Opcode.LSL)
    # The cross product pairs lanes asymmetrically.
    assert not is_commutative(Opcode.C4PROD)
    assert is_commutative(Opcode.D4PROD)
