"""Tests for the documented extension opcodes (Table 1 is explicitly partial)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import Opcode, execute
from repro.isa.bits import MASK64, sat16, split_lanes
from repro.isa.opcodes import DUAL_ISSUE_OPS, OpGroup, group_of, op_weight

u64 = st.integers(min_value=0, max_value=MASK64)


@given(u64)
def test_c4swap32_swaps_halves(a):
    la = split_lanes(a)
    out = split_lanes(execute(Opcode.C4SWAP32, [a]))
    assert out == [la[2], la[3], la[0], la[1]]


@given(u64)
def test_c4swap16_swaps_pairs(a):
    la = split_lanes(a)
    out = split_lanes(execute(Opcode.C4SWAP16, [a]))
    assert out == [la[1], la[0], la[3], la[2]]


@given(u64)
def test_swap_involutions(a):
    assert execute(Opcode.C4SWAP32, [execute(Opcode.C4SWAP32, [a])]) == a
    assert execute(Opcode.C4SWAP16, [execute(Opcode.C4SWAP16, [a])]) == a


@given(u64, u64)
def test_c4max_c4min_lanewise(a, b):
    la, lb = split_lanes(a), split_lanes(b)
    assert split_lanes(execute(Opcode.C4MAX, [a, b])) == [
        max(la[i], lb[i]) for i in range(4)
    ]
    assert split_lanes(execute(Opcode.C4MIN, [a, b])) == [
        min(la[i], lb[i]) for i in range(4)
    ]


@given(u64, u64)
def test_max_min_sum_identity(a, b):
    """max(a,b) + min(a,b) == a + b lane-wise (no saturation in this identity)."""
    la, lb = split_lanes(a), split_lanes(b)
    mx = split_lanes(execute(Opcode.C4MAX, [a, b]))
    mn = split_lanes(execute(Opcode.C4MIN, [a, b]))
    assert [mx[i] + mn[i] for i in range(4)] == [la[i] + lb[i] for i in range(4)]


@given(u64)
def test_c4negb_conjugates_pairs(a):
    la = split_lanes(a)
    out = split_lanes(execute(Opcode.C4NEGB, [a]))
    assert out == [la[0], sat16(-la[1]), la[2], sat16(-la[3])]


def test_ld_q_st_q_grouping_and_weight():
    assert group_of(Opcode.LD_Q) is OpGroup.LDMEM
    assert group_of(Opcode.ST_Q) is OpGroup.STMEM
    assert DUAL_ISSUE_OPS == {Opcode.LD_Q, Opcode.ST_Q}
    assert op_weight(Opcode.LD_Q) == 2
    assert op_weight(Opcode.ST_Q) == 2
    assert op_weight(Opcode.ADD) == 1
