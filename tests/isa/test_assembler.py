"""Assembler / disassembler round-trip and error-handling tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import Imm, Instruction, Opcode, PredReg, Reg, assemble, disassemble
from repro.isa.assembler import AssemblyError, assemble_line
from repro.isa.opcodes import OpGroup, group_of


def test_assemble_basic_add():
    (inst,) = assemble("add r3, r1, r2")
    assert inst == Instruction(Opcode.ADD, dst=Reg(3), srcs=(Reg(1), Reg(2)))


def test_assemble_immediate_forms():
    (inst,) = assemble("lsl r1, r2, #4")
    assert inst.srcs == (Reg(2), Imm(4))
    (inst,) = assemble("add r1, r2, #0x10")
    assert inst.srcs == (Reg(2), Imm(16))
    (inst,) = assemble("add r1, r2, #-5")
    assert inst.srcs == (Reg(2), Imm(-5))


def test_assemble_predicated():
    (inst,) = assemble("(p3) add r1, r1, r2")
    assert inst.pred == PredReg(3)
    assert not inst.pred_negate
    (inst,) = assemble("(!p3) br #-8")
    assert inst.pred == PredReg(3)
    assert inst.pred_negate


def test_assemble_store_has_no_dst():
    (inst,) = assemble("st_i r10, #4, r5")
    assert inst.dst is None
    assert inst.srcs == (Reg(10), Imm(4), Reg(5))


def test_assemble_pred_setters():
    (inst,) = assemble("pred_eq p1, r2, r3")
    assert inst.dst == PredReg(1)
    (inst,) = assemble("pred_set p0")
    assert inst.dst == PredReg(0)
    assert inst.srcs == ()


def test_assemble_control():
    insts = assemble("cga #2\nhalt\nnop")
    assert [i.opcode for i in insts] == [Opcode.CGA, Opcode.HALT, Opcode.NOP]
    assert insts[0].srcs == (Imm(2),)


def test_comments_and_blank_lines_skipped():
    program = """
    ; full-line comment
    add r1, r0, r0   ; trailing comment
    # another comment style

    sub r2, r1, r0
    """
    insts = assemble(program)
    assert [i.opcode for i in insts] == [Opcode.ADD, Opcode.SUB]


@pytest.mark.parametrize(
    "bad",
    [
        "frobnicate r1, r2, r3",
        "add r1, r2",  # missing operand
        "add r1, r2, r3, r4",  # too many
        "add r99, r1, r2",  # register out of range
        "add r1, r2, 5",  # immediate without '#'
    ],
)
def test_assembly_errors(bad):
    with pytest.raises((AssemblyError, ValueError)):
        assemble(bad)


def test_error_reports_line_number():
    with pytest.raises(AssemblyError, match="line 2"):
        assemble("add r1, r0, r0\nbogus r1")


def _roundtrippable_ops():
    skip_groups = set()
    return [op for op in Opcode if group_of(op) not in skip_groups]


@pytest.mark.parametrize("op", _roundtrippable_ops())
def test_roundtrip_every_opcode(op):
    """disassemble → assemble is the identity for every opcode."""
    group = group_of(op)
    if op is Opcode.NOP or op is Opcode.HALT:
        inst = Instruction(op)
    elif op is Opcode.CGA:
        inst = Instruction(op, srcs=(Imm(1),))
    elif op in (Opcode.PRED_CLEAR, Opcode.PRED_SET):
        inst = Instruction(op, dst=PredReg(2))
    elif group is OpGroup.PRED:
        inst = Instruction(op, dst=PredReg(2), srcs=(Reg(1), Reg(2)))
    elif group is OpGroup.STMEM:
        inst = Instruction(op, srcs=(Reg(1), Imm(4), Reg(2)))
    elif op in (Opcode.JMP, Opcode.BR):
        inst = Instruction(op, srcs=(Imm(-4),))
    elif op in (Opcode.JMPL, Opcode.BRL):
        inst = Instruction(op, dst=Reg(9), srcs=(Imm(16),))
    elif op in (Opcode.C4SWAP32, Opcode.C4SWAP16, Opcode.C4NEGB):
        inst = Instruction(op, dst=Reg(3), srcs=(Reg(1),))
    else:
        inst = Instruction(op, dst=Reg(3), srcs=(Reg(1), Reg(2)))
    text = disassemble(inst)
    assert assemble_line(text) == inst


@given(
    st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.C4ADD, Opcode.D4PROD]),
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
    st.booleans(),
)
def test_roundtrip_property(op, d, s1, imm, use_imm):
    src2 = Imm(imm) if use_imm else Reg(s1)
    inst = Instruction(op, dst=Reg(d), srcs=(Reg(s1), src2))
    assert assemble_line(disassemble(inst)) == inst
