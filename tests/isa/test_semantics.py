"""Bit-accuracy tests of the ISA execution semantics against NumPy golden."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import Opcode, execute
from repro.isa.bits import (
    MASK24,
    MASK32,
    MASK64,
    pack_lanes,
    split_lanes,
    to_signed,
    to_unsigned,
)
from repro.isa.semantics import ExecutionError, q15_mul

u32 = st.integers(min_value=0, max_value=MASK32)
u64 = st.integers(min_value=0, max_value=MASK64)
i16 = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)


@given(u32, u32)
def test_add_matches_numpy_wraparound(a, b):
    with np.errstate(over="ignore"):
        expected = int(np.uint32(a) + np.uint32(b))
    assert execute(Opcode.ADD, [a, b]) == expected
    assert execute(Opcode.ADD_U, [a, b]) == expected


@given(u32, u32)
def test_sub_matches_numpy_wraparound(a, b):
    with np.errstate(over="ignore"):
        expected = int(np.uint32(a) - np.uint32(b))
    assert execute(Opcode.SUB, [a, b]) == expected


@given(u32, u32)
def test_logic_ops(a, b):
    assert execute(Opcode.AND, [a, b]) == (a & b)
    assert execute(Opcode.OR, [a, b]) == (a | b)
    assert execute(Opcode.XOR, [a, b]) == (a ^ b)
    assert execute(Opcode.NAND, [a, b]) == (~(a & b)) & MASK32
    assert execute(Opcode.NOR, [a, b]) == (~(a | b)) & MASK32
    assert execute(Opcode.XNOR, [a, b]) == (~(a ^ b)) & MASK32


@given(u32, st.integers(min_value=0, max_value=31))
def test_shifts(a, n):
    assert execute(Opcode.LSL, [a, n]) == (a << n) & MASK32
    assert execute(Opcode.LSR, [a, n]) == a >> n
    assert execute(Opcode.ASR, [a, n]) == to_unsigned(to_signed(a, 32) >> n, 32)


def test_shift_amount_uses_low_5_bits():
    assert execute(Opcode.LSL, [1, 33]) == execute(Opcode.LSL, [1, 1])


@given(u32, u32)
def test_mul_signed_truncates_to_32(a, b):
    sa, sb = to_signed(a, 32), to_signed(b, 32)
    assert execute(Opcode.MUL, [a, b]) == to_unsigned(sa * sb, 32)
    assert execute(Opcode.MUL_U, [a, b]) == (a * b) & MASK32


@given(u32, u32)
def test_signed_compares(a, b):
    sa, sb = to_signed(a, 32), to_signed(b, 32)
    assert execute(Opcode.GT, [a, b]) == int(sa > sb)
    assert execute(Opcode.LT, [a, b]) == int(sa < sb)
    assert execute(Opcode.GE, [a, b]) == int(sa >= sb)
    assert execute(Opcode.LE, [a, b]) == int(sa <= sb)
    assert execute(Opcode.EQ, [a, b]) == int(a == b)
    assert execute(Opcode.NE, [a, b]) == int(a != b)


@given(u32, u32)
def test_unsigned_compares(a, b):
    assert execute(Opcode.GT_U, [a, b]) == int(a > b)
    assert execute(Opcode.LT_U, [a, b]) == int(a < b)
    assert execute(Opcode.GE_U, [a, b]) == int(a >= b)
    assert execute(Opcode.LE_U, [a, b]) == int(a <= b)


@given(u32, u32)
def test_pred_ops_mirror_compares(a, b):
    assert execute(Opcode.PRED_EQ, [a, b]) == execute(Opcode.EQ, [a, b])
    assert execute(Opcode.PRED_LT, [a, b]) == execute(Opcode.LT, [a, b])
    assert execute(Opcode.PRED_GE_U, [a, b]) == execute(Opcode.GE_U, [a, b])


def test_pred_constants():
    assert execute(Opcode.PRED_CLEAR, []) == 0
    assert execute(Opcode.PRED_SET, []) == 1


@given(u64, u64)
def test_c4add_saturating_lanes(a, b):
    la = np.array(split_lanes(a), dtype=np.int32)
    lb = np.array(split_lanes(b), dtype=np.int32)
    expected = pack_lanes([int(x) for x in np.clip(la + lb, -(1 << 15), (1 << 15) - 1)])
    assert execute(Opcode.C4ADD, [a, b]) == expected


@given(u64, u64)
def test_c4sub_saturating_lanes(a, b):
    la = np.array(split_lanes(a), dtype=np.int32)
    lb = np.array(split_lanes(b), dtype=np.int32)
    expected = pack_lanes([int(x) for x in np.clip(la - lb, -(1 << 15), (1 << 15) - 1)])
    assert execute(Opcode.C4SUB, [a, b]) == expected


@given(u64, u64)
def test_c4and_lanewise(a, b):
    assert execute(Opcode.C4AND, [a, b]) == (a & b)


@given(u64, st.integers(min_value=0, max_value=15))
def test_c4shiftl_lanes_do_not_leak(a, n):
    out = execute(Opcode.C4SHIFTL, [a, n])
    la = np.array(split_lanes(a), dtype=np.int16)
    expected = pack_lanes([int(x) for x in (la << n).astype(np.int16)])
    assert out == expected


@given(i16, i16)
def test_q15_mul_reference(x, y):
    ref = (x * y) >> 15
    ref = max(-(1 << 15), min((1 << 15) - 1, ref))
    assert q15_mul(x, y) == ref


def test_q15_mul_saturates_only_at_minus_one_squared():
    assert q15_mul(-(1 << 15), -(1 << 15)) == (1 << 15) - 1


@given(u64, u64)
def test_d4prod_straight_lane_pairing(a, b):
    la, lb = split_lanes(a), split_lanes(b)
    out = split_lanes(execute(Opcode.D4PROD, [a, b]))
    assert out == [q15_mul(la[i], lb[i]) for i in range(4)]


@given(u64, u64)
def test_c4prod_cross_lane_pairing(a, b):
    la, lb = split_lanes(a), split_lanes(b)
    out = split_lanes(execute(Opcode.C4PROD, [a, b]))
    assert out == [
        q15_mul(la[0], lb[1]),
        q15_mul(la[1], lb[0]),
        q15_mul(la[2], lb[3]),
        q15_mul(la[3], lb[2]),
    ]


def test_complex_multiply_from_simd_pair():
    """(3+4j)*(2-1j) = 10+5j realised with d4prod/c4prod/c4sub/c4add in Q15."""

    def q(x):
        return int(round(x * (1 << 12)))  # Q3.12 to stay in range

    a = pack_lanes([q(3), q(4), 0, 0])  # re, im in lanes 0,1
    b = pack_lanes([q(2), q(-1), 0, 0])
    direct = split_lanes(execute(Opcode.D4PROD, [a, b]))  # re*re, im*im
    cross = split_lanes(execute(Opcode.C4PROD, [a, b]))  # re*im2, im*re2
    re = direct[0] - direct[1]
    im = cross[0] + cross[1]
    # Q3.12 * Q3.12 >> 15 = Q6.9; 10 -> 10*2^9, 5 -> 5*2^9 (within rounding).
    assert abs(re - 10 * (1 << 9)) <= 2
    assert abs(im - 5 * (1 << 9)) <= 2


@given(
    st.integers(min_value=-(1 << 23), max_value=(1 << 23) - 1),
    st.integers(min_value=-(1 << 23), max_value=(1 << 23) - 1),
)
def test_div_truncates_toward_zero_like_c(a, b):
    raw_a, raw_b = to_unsigned(a, 24), to_unsigned(b, 24)
    out = execute(Opcode.DIV, [raw_a, raw_b])
    if b == 0:
        assert out == MASK24
    else:
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert to_signed(out, 24) == expected


@given(
    st.integers(min_value=0, max_value=MASK24),
    st.integers(min_value=0, max_value=MASK24),
)
def test_div_u(a, b):
    out = execute(Opcode.DIV_U, [a, b])
    assert out == (MASK24 if b == 0 else a // b)


def test_div_ignores_upper_bits():
    # Operands are truncated to 24 bits before dividing.
    assert execute(Opcode.DIV_U, [(1 << 25) | 100, 10]) == 10


@pytest.mark.parametrize("op", [Opcode.LD_I, Opcode.ST_I, Opcode.BR, Opcode.CGA])
def test_machine_state_ops_rejected(op):
    with pytest.raises(ExecutionError):
        execute(op, [0, 0])


@given(u64)
def test_basic_ops_clear_upper_32_bits(a):
    out = execute(Opcode.ADD, [a, 1])
    assert out <= MASK32


@given(st.lists(i16, min_size=4, max_size=4))
def test_lane_pack_unpack_roundtrip(lanes):
    assert split_lanes(pack_lanes(lanes)) == lanes
