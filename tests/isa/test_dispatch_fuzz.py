"""Fuzz the dispatch-table handlers against the if-chain reference.

The decoded execution engines bind one handler per opcode via
:func:`repro.isa.semantics.handler_for` (O(1) dict dispatch).  The
original :func:`repro.isa.semantics.execute` if-chain is kept as the
reference semantics.  This module hammers every dataflow opcode with
seeded randomized 64-bit operand patterns plus the classic boundary
patterns and requires bit-identical results from both paths.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import Opcode, execute
from repro.isa.bits import MASK24, MASK32, MASK64
from repro.isa.opcodes import OpGroup, group_of
from repro.isa.semantics import (
    DATAFLOW_GROUPS,
    ExecutionError,
    handler_for,
    operand_count,
)

DATAFLOW_OPCODES = sorted(
    (op for op in Opcode if group_of(op) in DATAFLOW_GROUPS),
    key=lambda op: op.value,
)

MACHINE_STATE_OPCODES = sorted(
    (op for op in Opcode if group_of(op) not in DATAFLOW_GROUPS),
    key=lambda op: op.value,
)

#: Boundary patterns every opcode must agree on (sign bits, lane edges,
#: shift-amount wrap, divide-by-zero, saturation extremes).
EDGE_PATTERNS = [
    0,
    1,
    2,
    31,
    32,
    33,
    0x7FFF,
    0x8000,
    0xFFFF,
    0x7FFF_FFFF,
    0x8000_0000,
    MASK24,
    MASK32,
    0x8000_8000_8000_8000,
    0x7FFF_7FFF_7FFF_7FFF,
    0x0001_0002_0003_0004,
    MASK64,
]

RANDOM_DRAWS_PER_OPCODE = 200


def _operands(op, a, b):
    return (a, b)[: operand_count(op)]


@pytest.mark.parametrize("op", DATAFLOW_OPCODES, ids=lambda op: op.value)
def test_handler_matches_reference_fuzzed(op):
    """Seeded 64-bit fuzz: handler_for(op)(*srcs) == execute(op, srcs)."""
    handler = handler_for(op)
    rng = random.Random("dispatch-fuzz:%s" % op.value)
    pairs = [(a, b) for a in EDGE_PATTERNS for b in EDGE_PATTERNS[:8]]
    pairs += [
        (rng.getrandbits(64), rng.getrandbits(64))
        for _ in range(RANDOM_DRAWS_PER_OPCODE)
    ]
    for a, b in pairs:
        srcs = _operands(op, a, b)
        assert handler(*srcs) == execute(op, list(srcs)), (
            "%s diverges on a=%#x b=%#x" % (op.value, a, b)
        )


@given(
    op=st.sampled_from(DATAFLOW_OPCODES),
    a=st.integers(min_value=0, max_value=MASK64),
    b=st.integers(min_value=0, max_value=MASK64),
)
def test_handler_matches_reference_hypothesis(op, a, b):
    srcs = _operands(op, a, b)
    assert handler_for(op)(*srcs) == execute(op, list(srcs))


@pytest.mark.parametrize("op", MACHINE_STATE_OPCODES, ids=lambda op: op.value)
def test_machine_state_opcodes_have_no_handler(op):
    """Memory/branch/control semantics stay in the simulator engines."""
    with pytest.raises(ExecutionError):
        handler_for(op)
    with pytest.raises(ExecutionError):
        execute(op, [0, 0])


def test_every_dataflow_opcode_is_dispatchable():
    """The dispatch tables cover the full dataflow ISA, no gaps."""
    for op in DATAFLOW_OPCODES:
        handler = handler_for(op)
        n = operand_count(op)
        assert callable(handler)
        assert handler(*([1] * n)) == execute(op, [1] * max(n, 1) if n else [])


def test_operand_count_matches_reference_arity():
    for op in DATAFLOW_OPCODES:
        n = operand_count(op)
        if n == 0:
            assert op in (Opcode.PRED_CLEAR, Opcode.PRED_SET)
        elif n == 1:
            assert group_of(op) in (OpGroup.SIMD1, OpGroup.SIMD2)
        else:
            assert n == 2
