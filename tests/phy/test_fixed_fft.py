"""Fixed-point helpers and FFT tests against NumPy golden."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.semantics import q15_mul
from repro.phy.fixed import (
    cmul_q15,
    complex_from_q15,
    from_q15,
    pack_complex_array,
    pack_complex_pair,
    q15,
    q15_mul_array,
    quantize_complex,
    unpack_complex_array,
    unpack_complex_pair,
)
from repro.phy.fft import bit_reverse_indices, fft_fixed, fft_float, ifft_fixed

i16 = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)


def test_q15_roundtrip():
    values = np.array([0.0, 0.5, -0.5, 0.999, -1.0])
    assert np.allclose(from_q15(q15(values)), values, atol=1 / (1 << 15))


def test_q15_saturates():
    assert q15(2.0) == (1 << 15) - 1
    assert q15(-2.0) == -(1 << 15)


@given(i16, i16)
def test_q15_mul_array_matches_isa(a, b):
    arr = q15_mul_array(np.array([a], dtype=np.int16), np.array([b], dtype=np.int16))
    assert int(arr[0]) == q15_mul(a, b)


@given(i16, i16, i16, i16)
def test_cmul_q15_matches_complex_product(ar, ai, br, bi):
    re, im = cmul_q15(
        np.int16(ar), np.int16(ai), np.int16(br), np.int16(bi)
    )
    def sat16(v):
        return max(-(1 << 15), min((1 << 15) - 1, v))

    ref_re = sat16(q15_mul(ar, br) - q15_mul(ai, bi))
    ref_im = sat16(q15_mul(ar, bi) + q15_mul(ai, br))
    assert int(re) == ref_re
    assert int(im) == ref_im


@given(st.lists(st.tuples(i16, i16), min_size=2, max_size=16).filter(lambda l: len(l) % 2 == 0))
def test_pack_unpack_complex_array_roundtrip(samples):
    re = [s[0] for s in samples]
    im = [s[1] for s in samples]
    words = pack_complex_array(re, im)
    re2, im2 = unpack_complex_array(words)
    assert list(re2) == re and list(im2) == im


def test_pack_complex_pair_layout():
    word = pack_complex_pair(1, 2, 3, 4)
    assert unpack_complex_pair(word) == (1, 2, 3, 4)
    assert word & 0xFFFF == 1  # re0 in the least-significant lane


def test_odd_length_pack_rejected():
    with pytest.raises(ValueError):
        pack_complex_array([1], [2])


def test_bit_reverse_indices_8():
    assert list(bit_reverse_indices(8)) == [0, 4, 2, 6, 1, 5, 3, 7]


@pytest.mark.parametrize("n", [8, 16, 64])
def test_fft_fixed_matches_float_reference(n):
    rng = np.random.default_rng(42)
    x = (rng.normal(size=n) + 1j * rng.normal(size=n)) * 0.2
    re, im = quantize_complex(x)
    out_re, out_im = fft_fixed(re, im)
    ref = fft_float(x)
    got = complex_from_q15(out_re, out_im)
    # Block scaling costs ~log2(n)/2 bits; tolerance reflects that.
    assert np.max(np.abs(got - ref)) < 0.01


def test_fft_fixed_impulse():
    n = 64
    re = np.zeros(n, dtype=np.int16)
    im = np.zeros(n, dtype=np.int16)
    re[0] = q15(0.9)
    out_re, out_im = fft_fixed(re, im)
    # DFT of impulse is flat: 0.9/64 per bin.
    expected = 0.9 / 64
    assert np.allclose(from_q15(out_re), expected, atol=2e-3)
    assert np.allclose(from_q15(out_im), 0, atol=2e-3)


def test_fft_fixed_single_tone():
    n = 64
    k0 = 5
    t = np.arange(n)
    x = 0.5 * np.exp(2j * np.pi * k0 * t / n)
    re, im = quantize_complex(x)
    out_re, out_im = fft_fixed(re, im)
    got = complex_from_q15(out_re, out_im)
    assert abs(got[k0] - 0.5) < 0.01
    others = np.delete(np.abs(got), k0)
    assert np.max(others) < 0.01


def test_ifft_then_fft_recovers_scaled_input():
    n = 64
    rng = np.random.default_rng(3)
    x = (rng.normal(size=n) + 1j * rng.normal(size=n)) * 0.3
    ref = fft_float(fft_float(x, inverse=True))
    got_re, got_im = fft_fixed(*ifft_fixed(*quantize_complex(x)))
    got = complex_from_q15(got_re, got_im)
    # Both scale by 1/N twice: x / N^2 ... compare against float chain.
    assert np.max(np.abs(got - ref)) < 2e-3


def test_fft_rejects_bad_lengths():
    with pytest.raises(ValueError):
        fft_fixed(np.zeros(12, dtype=np.int16), np.zeros(12, dtype=np.int16))
    with pytest.raises(ValueError):
        fft_fixed(np.zeros(8, dtype=np.int16), np.zeros(4, dtype=np.int16))


@settings(max_examples=20)
@given(st.integers(min_value=0, max_value=63))
def test_fft_linearity_on_basis(k):
    """FFT of e_k impulse = k-th DFT column / N (within quantisation)."""
    n = 64
    re = np.zeros(n, dtype=np.int16)
    im = np.zeros(n, dtype=np.int16)
    re[k] = q15(0.5)
    out_re, out_im = fft_fixed(re, im)
    got = complex_from_q15(out_re, out_im)
    ref = 0.5 * np.exp(-2j * np.pi * k * np.arange(n) / n) / n
    assert np.max(np.abs(got - ref)) < 5e-3
