"""Synchronisation, channel estimation, detection and end-to-end link tests."""

import numpy as np
import pytest

from repro.phy import mimo, preamble
from repro.phy.channel import MimoChannel, awgn
from repro.phy.freq import cfo_compensate, fshift, fshift_q15
from repro.phy.fixed import complex_from_q15, quantize_complex
from repro.phy.modem_ref import run_link, transmit
from repro.phy.params import PARAMS_20MHZ_2X2


class TestPreambleSync:
    fs = 20e6

    def test_stf_has_16_sample_periodicity(self):
        stf = preamble.short_training_field()
        assert len(stf) == 160
        assert np.allclose(stf[:144], stf[16:])

    def test_ltf_structure(self):
        ltf = preamble.long_training_field()
        assert len(ltf) == 160
        assert np.allclose(ltf[32:96], ltf[96:])

    def test_autocorrelation_peaks_on_stf(self):
        stf = preamble.short_training_field()
        sig = np.concatenate([np.zeros(50), stf])
        corr = preamble.autocorrelate(sig, lag=16, window=32)
        peak = np.argmax(np.abs(corr))
        # Plateau begins once the window is inside the STF.
        assert 45 <= peak <= 200

    def test_detect_packet_finds_onset(self):
        rng = np.random.default_rng(2)
        stf = preamble.short_training_field()
        noise = 0.01 * (rng.normal(size=100) + 1j * rng.normal(size=100))
        sig = np.concatenate([noise, stf, np.zeros(50)])
        idx = preamble.detect_packet(sig)
        assert 70 <= idx <= 120

    def test_detect_packet_rejects_noise(self):
        rng = np.random.default_rng(3)
        noise = 0.1 * (rng.normal(size=400) + 1j * rng.normal(size=400))
        assert preamble.detect_packet(noise) == -1

    def test_cfo_estimation_accuracy(self):
        stf = preamble.short_training_field()
        for cfo in (-100e3, 40e3, 200e3):
            shifted = fshift(stf, cfo, self.fs)
            est = preamble.estimate_cfo(shifted, lag=16, window=96, sample_rate_hz=self.fs)
            assert est == pytest.approx(cfo, rel=0.02)

    def test_cfo_lag16_range_limit(self):
        """Lag-16 autocorrelation is unambiguous up to fs/(2*16) = 625 kHz."""
        stf = preamble.short_training_field()
        shifted = fshift(stf, 600e3, self.fs)
        est = preamble.estimate_cfo(shifted, lag=16, window=96, sample_rate_hz=self.fs)
        assert est == pytest.approx(600e3, rel=0.05)

    def test_timing_from_xcorr(self):
        sym = preamble.ltf_symbol()
        sig = np.concatenate([np.zeros(37), sym, sym])
        t = preamble.timing_from_xcorr(sig, sym)
        assert t == 37


class TestSyncDefectRegressions:
    """Pinned regressions for the defects behind the old 7% BER floor."""

    fs = 20e6

    def test_stream1_legacy_ltf_keeps_lag64_periodicity(self):
        """The CSD on stream 1 must be a per-symbol circular shift.  The
        old whole-field np.roll wrapped STF samples into the LTF tail,
        breaking the lag-64 repetition the fine CFO estimator relies on."""
        pre = preamble.mimo_preamble(64, 2)
        # Legacy LTF region: 32-sample CP at 160, long symbols at 192/256.
        sym1 = pre[1, 192:256]
        sym2 = pre[1, 256:320]
        assert np.allclose(sym1, sym2)
        assert np.allclose(pre[1, 160:192], sym1[-32:])
        # And it is genuinely the CSD-shifted symbol, not stream 0's.
        assert np.allclose(sym1, np.roll(pre[0, 192:256], -8))

    def test_fine_cfo_unbiased_at_zero_offset(self):
        """Both streams arriving at a 2-antenna receiver over an identity
        channel: the lag-64 estimate over the legacy LTF must be ~0 Hz
        (the wrapped-STF defect biased it by a couple of kHz)."""
        pre = preamble.mimo_preamble(64, 2)
        est = preamble.estimate_cfo_multi(
            pre[:, 189:317], lag=64, window=64, sample_rate_hz=self.fs
        )
        assert abs(est) < 100.0

    def test_estimate_cfo_multi_combines_antennas(self):
        from repro.phy.freq import fshift
        stf = preamble.short_training_field()
        rng = np.random.default_rng(17)
        rows = []
        for gain in (1.0, 0.3):
            row = gain * fshift(stf, 120e3, self.fs)
            row = row + 0.01 * (
                rng.normal(size=row.shape) + 1j * rng.normal(size=row.shape)
            )
            rows.append(row)
        est = preamble.estimate_cfo_multi(
            np.vstack(rows), lag=16, window=32, sample_rate_hz=self.fs
        )
        assert est == pytest.approx(120e3, rel=0.02)

    def test_timing_multi_picks_leading_edge_over_strongest_peak(self):
        """A first arrival at 30% of the peak power within the search
        span must win over the (later) strongest multipath tap."""
        sym = preamble.ltf_symbol()
        ref = np.concatenate([sym, sym])
        first = np.concatenate([np.zeros(40), ref, np.zeros(32)])
        strongest = 1.4 * np.concatenate([np.zeros(45), ref, np.zeros(27)])
        rows = np.vstack([first + strongest, first + strongest])
        t = preamble.timing_from_xcorr_multi(rows, ref)
        assert t == 40

    def test_timing_multi_ignores_subthreshold_precursor(self):
        sym = preamble.ltf_symbol()
        ref = np.concatenate([sym, sym])
        ghost = 0.2 * np.concatenate([np.zeros(40), ref, np.zeros(32)])
        main = np.concatenate([np.zeros(46), ref, np.zeros(26)])
        rows = np.vstack([ghost + main, ghost + main])
        # 0.2 amplitude -> 4% correlation power, below the 30% edge
        # fraction: the estimator must stay on the main arrival.
        assert preamble.timing_from_xcorr_multi(rows, ref) == 46

    def test_noise_variance_estimate_tracks_injected_noise(self):
        rng = np.random.default_rng(23)
        lt = preamble.long_training_field()
        sigma = 0.05
        rows = np.vstack([lt, lt]) + sigma * (
            rng.normal(size=(2, 160)) + 1j * rng.normal(size=(2, 160))
        )
        est = preamble.estimate_noise_variance(rows, ltf1_start=32)
        true_var = 2 * sigma**2
        assert est == pytest.approx(true_var, rel=0.35)

    def test_noise_variance_zero_without_noise(self):
        lt = preamble.long_training_field()
        rows = np.vstack([lt, lt])
        assert preamble.estimate_noise_variance(rows, ltf1_start=32) < 1e-20


class TestConditionGuard:
    params = PARAMS_20MHZ_2X2

    def _channel_with_singular_carrier(self, k_bad):
        chan = MimoChannel(seed=30)
        h = chan.frequency_response(64)
        h[k_bad] = np.array([[1.0, 1.0], [1.0, 1.0]])  # rank deficient
        return h

    def test_ill_conditioned_carrier_is_flagged_not_inverted(self):
        k_bad = 7
        h = self._channel_with_singular_carrier(k_bad)
        w, info = mimo.equalizer_coefficients(
            h, self.params.used_carriers, return_info=True
        )
        assert k_bad in info["ill_conditioned"]
        assert np.all(w[k_bad] == 0)
        assert np.isinf(info["condition"][k_bad])
        # Every other carrier still inverts cleanly.
        for k in self.params.used_carriers:
            if k == k_bad:
                continue
            assert np.allclose(w[k] @ h[k], np.eye(2), atol=1e-9)

    def test_strict_mode_raises_with_carrier_list(self):
        k_bad = 7
        h = self._channel_with_singular_carrier(k_bad)
        with pytest.raises(mimo.IllConditionedChannelError) as exc:
            mimo.equalizer_coefficients(
                h, self.params.used_carriers, strict=True
            )
        assert k_bad in exc.value.carriers

    def test_condition_threshold_flags_near_singular(self):
        h = self._channel_with_singular_carrier(7)
        h[9] = np.array([[1.0, 1.0], [1.0, 1.0 + 1e-6]])  # cond ~ 4e6
        _w, info = mimo.equalizer_coefficients(
            h, self.params.used_carriers, max_condition=1e5, return_info=True
        )
        assert {7, 9} <= set(info["ill_conditioned"])

    def test_sdm_detect_rejects_bad_shapes_and_nonfinite(self):
        h = MimoChannel(seed=31).frequency_response(64)
        w = mimo.equalizer_coefficients(h, self.params.used_carriers)
        y = np.zeros((2, 64), dtype=np.complex128)
        with pytest.raises(ValueError):
            mimo.sdm_detect(y[0], w, self.params.used_carriers)
        with pytest.raises(ValueError):
            mimo.sdm_detect(y, w[:32], self.params.used_carriers)
        with pytest.raises(ValueError):
            mimo.sdm_detect(y, w, (63, 64))
        w_bad = w.copy()
        w_bad[10, 0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            mimo.sdm_detect(y, w_bad, self.params.used_carriers)


class TestFrequencyShift:
    fs = 20e6

    def test_fshift_then_inverse_is_identity(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=256) + 1j * rng.normal(size=256)
        y = cfo_compensate(fshift(x, 123e3, self.fs), 123e3, self.fs)
        assert np.allclose(y, x)

    def test_fshift_q15_tracks_float_model(self):
        rng = np.random.default_rng(5)
        x = 0.3 * (rng.normal(size=128) + 1j * rng.normal(size=128))
        re, im = quantize_complex(x)
        out_re, out_im = fshift_q15(re, im, 150e3, self.fs)
        ref = fshift(x, 150e3, self.fs)
        got = complex_from_q15(out_re, out_im)
        assert np.max(np.abs(got - ref)) < 0.02


class TestChannelAndMimo:
    params = PARAMS_20MHZ_2X2

    def test_awgn_snr(self):
        rng = np.random.default_rng(6)
        x = np.exp(1j * rng.normal(size=100000))
        y = awgn(x, 20.0, rng)
        noise = y - x
        measured = 10 * np.log10(np.mean(np.abs(x) ** 2) / np.mean(np.abs(noise) ** 2))
        assert measured == pytest.approx(20.0, abs=0.3)

    def test_identity_channel_passthrough(self):
        chan = MimoChannel.identity(2)
        tx = np.vstack([np.arange(10), np.arange(10) * 1j])
        rx = chan.apply(tx, snr_db=None)
        assert np.allclose(rx, tx)

    def test_multipath_channel_frequency_response(self):
        chan = MimoChannel(seed=11)
        h = chan.frequency_response(64)
        assert h.shape == (64, 2, 2)
        # Flat-average power roughly normalised by the PDP.
        assert 0.05 < np.mean(np.abs(h) ** 2) < 20

    def test_channel_estimation_exact_without_noise(self):
        chan = MimoChannel(seed=8)
        h_true = chan.frequency_response(64)
        ltf_ref = np.zeros(64, dtype=np.complex128)
        rng = np.random.default_rng(9)
        ltf_ref[list(self.params.used_carriers)] = rng.choice([-1.0, 1.0], size=56)
        # Build the two orthogonal training symbols in frequency domain.
        ltf_rx = np.zeros((2, 2, 64), dtype=np.complex128)
        for k in self.params.used_carriers:
            hk = h_true[k]
            x1 = np.array([ltf_ref[k], ltf_ref[k]])  # symbol 1: +L, +L
            x2 = np.array([ltf_ref[k], -ltf_ref[k]])  # symbol 2: +L, -L
            ltf_rx[0, :, k] = hk @ x1
            ltf_rx[1, :, k] = hk @ x2
        h_est = mimo.estimate_channel(ltf_rx, ltf_ref, self.params.used_carriers)
        for k in self.params.used_carriers:
            assert np.allclose(h_est[k], h_true[k], atol=1e-12)

    def test_zf_equalizer_inverts_channel(self):
        chan = MimoChannel(seed=10)
        h = chan.frequency_response(64)
        w = mimo.equalizer_coefficients(h, self.params.used_carriers)
        for k in self.params.used_carriers:
            prod = w[k] @ h[k]
            assert np.allclose(prod, np.eye(2), atol=1e-9)

    def test_sdm_detect_recovers_streams(self):
        chan = MimoChannel(seed=12)
        h = chan.frequency_response(64)
        w = mimo.equalizer_coefficients(h, self.params.used_carriers)
        rng = np.random.default_rng(13)
        x = np.zeros((2, 64), dtype=np.complex128)
        x[:, list(self.params.used_carriers)] = rng.normal(
            size=(2, 56)
        ) + 1j * rng.normal(size=(2, 56))
        y = np.zeros((2, 64), dtype=np.complex128)
        for k in self.params.used_carriers:
            y[:, k] = h[k] @ x[:, k]
        x_hat = mimo.sdm_detect(y, w, self.params.used_carriers)
        assert np.allclose(
            x_hat[:, list(self.params.used_carriers)],
            x[:, list(self.params.used_carriers)],
            atol=1e-9,
        )


class TestEndToEndLink:
    def test_ideal_channel_zero_ber(self):
        tx, result, ber = run_link(n_symbols=2, snr_db=None, cfo_hz=0.0)
        assert ber == 0.0
        assert result.evm < 0.05

    def test_high_snr_multipath_zero_ber(self):
        chan = MimoChannel(seed=21)
        tx, result, ber = run_link(n_symbols=3, snr_db=45.0, channel=chan)
        assert ber == 0.0

    def test_cfo_corrected_link(self):
        chan = MimoChannel.identity(2)
        tx, result, ber = run_link(n_symbols=2, snr_db=45.0, cfo_hz=80e3, channel=chan)
        assert result.cfo_hz == pytest.approx(80e3, rel=0.05)
        assert ber == 0.0

    def test_low_snr_causes_errors(self):
        chan = MimoChannel(seed=22)
        _, _, ber_low = run_link(n_symbols=2, snr_db=5.0, channel=chan)
        _, _, ber_high = run_link(n_symbols=2, snr_db=45.0, channel=chan)
        assert ber_low > ber_high

    def test_transmit_shapes(self):
        params = PARAMS_20MHZ_2X2
        bits = np.zeros(params.bits_per_symbol * 2, dtype=np.int64)
        pkt = transmit(bits, params)
        assert pkt.waveform.shape[0] == 2
        # preamble (STF 160 + LTF 160 + 2 HT-LTF 160) + 2 symbols x 80.
        assert pkt.waveform.shape[1] == 480 + 160
        assert pkt.n_symbols == 2
