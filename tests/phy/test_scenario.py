"""Scenario layer: presets, impairment models, estimator error bounds.

Everything here runs with fixed seeds — the scenario layer is fully
deterministic in (scenario, snr_db, seed), which is what lets the
BER-vs-SNR reference curves in ``benchmarks/`` act as regression gates.
"""

import numpy as np
import pytest

from repro.phy.scenario import (
    SCENARIOS,
    Scenario,
    apply_iq_imbalance,
    apply_scenario,
    get_scenario,
    list_scenarios,
    quantize_frontend,
    scenario_link,
)
from repro.phy.modem_ref import transmit
from repro.phy.params import PARAMS_20MHZ_2X2


class TestPresets:
    def test_registry_names_match(self):
        assert set(list_scenarios()) == set(SCENARIOS)
        for name, preset in SCENARIOS.items():
            assert preset.name == name
            assert preset.description

    def test_get_scenario_resolves_and_passes_through(self):
        preset = get_scenario("awgn")
        assert preset is SCENARIOS["awgn"]
        assert get_scenario(preset) is preset

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does_not_exist")

    def test_with_overrides_returns_new_frozen_copy(self):
        base = get_scenario("indoor_multipath")
        hot = base.with_overrides(cfo_hz=123e3)
        assert hot.cfo_hz == 123e3
        assert base.cfo_hz == 0.0
        assert hot.n_taps == base.n_taps
        with pytest.raises(Exception):
            hot.cfo_hz = 0.0  # frozen dataclass

    def test_packet_cfo_jitter_is_seeded_and_bounded(self):
        preset = get_scenario("cfo_stress")
        draws = [preset.packet_cfo_hz(seed) for seed in range(32)]
        assert draws == [preset.packet_cfo_hz(seed) for seed in range(32)]
        assert all(abs(d - preset.cfo_hz) <= preset.cfo_jitter_hz for d in draws)
        assert len(set(draws)) > 16, "jitter draws should differ across seeds"
        # No jitter -> the fixed offset, no RNG involved.
        assert get_scenario("awgn").packet_cfo_hz(5) == 0.0

    def test_indoor_multipath_matches_historical_channel(self):
        """The preset must reproduce MimoChannel's default profile so the
        tightened waterfall gates stay comparable with the old bench."""
        from repro.phy.channel import MimoChannel
        preset = get_scenario("indoor_multipath")
        a = preset.channel(n_streams=2, seed=11).frequency_response(64)
        b = MimoChannel(seed=11).frequency_response(64)
        assert np.allclose(a, b)


class TestImpairmentModels:
    def test_iq_imbalance_zero_is_identity(self):
        x = np.exp(1j * np.linspace(0, 6, 64))
        assert np.array_equal(apply_iq_imbalance(x, 0.0, 0.0), x)

    def test_iq_imbalance_image_rejection_matches_theory(self):
        """A tone at +f gains an image at -f with power |beta/alpha|^2."""
        amp_db, phase_deg = 0.5, 3.0
        n = np.arange(4096)
        k = 410
        x = np.exp(2j * np.pi * k / 4096 * n)
        spec = np.fft.fft(apply_iq_imbalance(x, amp_db, phase_deg))
        measured_db = 20 * np.log10(np.abs(spec[-k]) / np.abs(spec[k]))
        rot = 10 ** (amp_db / 20.0) * np.exp(1j * np.deg2rad(phase_deg))
        theory_db = 20 * np.log10(abs((1 - rot) / (1 + rot)))
        assert measured_db == pytest.approx(theory_db, abs=0.5)

    def test_quantize_frontend_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 256)) + 1j * rng.normal(size=(2, 256))
        y = quantize_frontend(x)
        peak = np.max(np.abs(np.concatenate([x.real.ravel(), x.imag.ravel()])))
        lsb = peak / 0.9 / 32768.0
        assert np.max(np.abs(y.real - x.real)) <= lsb
        assert np.max(np.abs(y.imag - x.imag)) <= lsb
        assert not np.array_equal(y, x), "Q15 round trip must actually quantise"

    def test_apply_scenario_is_deterministic(self):
        tx = transmit(np.zeros(PARAMS_20MHZ_2X2.bits_per_symbol * 2, dtype=np.int64))
        a = apply_scenario(tx.waveform, "worst_case", snr_db=30.0, seed=9)
        b = apply_scenario(tx.waveform, "worst_case", snr_db=30.0, seed=9)
        c = apply_scenario(tx.waveform, "worst_case", snr_db=30.0, seed=10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_timing_offset_prepends_leading_samples(self):
        tx = transmit(np.zeros(PARAMS_20MHZ_2X2.bits_per_symbol * 2, dtype=np.int64))
        plain = apply_scenario(tx.waveform, "indoor_multipath", snr_db=45.0, seed=1)
        preset = get_scenario("timing_stress")
        stressed = apply_scenario(tx.waveform, preset, snr_db=45.0, seed=1)
        assert stressed.shape[1] == plain.shape[1] + preset.timing_offset
        lead = stressed[:, : preset.timing_offset]
        body_power = float(np.mean(np.abs(stressed) ** 2))
        assert float(np.mean(np.abs(lead) ** 2)) < 0.01 * body_power


class TestEstimatorErrorBounds:
    """The sync estimators under swept impairments, with hard bounds."""

    def test_cfo_sweep_estimate_within_500hz(self):
        base = get_scenario("awgn")
        for cfo in (-300e3, -100e3, 0.0, 100e3, 300e3):
            sc = base.with_overrides(name="cfo_sweep", cfo_hz=cfo)
            _tx, result, ber = scenario_link(sc, snr_db=45.0, seed=3)
            assert abs(result.cfo_hz - cfo) < 500.0, (
                "CFO %.0f Hz estimated as %.1f Hz" % (cfo, result.cfo_hz)
            )
            assert ber == 0.0

    def test_timing_offset_sweep_zero_ber(self):
        base = get_scenario("indoor_multipath")
        prev_ltf1 = None
        for offset in (0, 16, 48, 100):
            sc = base.with_overrides(name="t_sweep", timing_offset=offset)
            _tx, result, ber = scenario_link(sc, snr_db=45.0, seed=0)
            assert ber == 0.0, "timing offset %d broke the link" % offset
            # The whole sync chain must shift with the injected offset.
            if prev_ltf1 is not None:
                assert result.ltf1_start > prev_ltf1
            prev_ltf1 = result.ltf1_start

    def test_iq_imbalance_ber_within_gate(self):
        _tx, result, ber = scenario_link("iq_imbalance", snr_db=45.0, seed=0)
        # The -28 dB image floors the EVM; uncoded BER stays bounded and
        # well inside the rate-5/6 outer code's correctable range.
        assert ber <= 0.05
        assert result.evm < 0.12


#: Seed-averaged uncoded-BER gates at 45 dB (seeds 0, 1).  The clean and
#: multipath presets must decode error-free after the sync fixes; the
#: IQ-imbalance presets keep an honest residual from the uncorrected
#: image (the golden modem has no IQ compensation stage).
PRESET_GATES_45DB = {
    "awgn": 0.0,
    "flat_fading": 0.0,
    "indoor_multipath": 0.0,
    "dense_multipath": 0.0,
    "cfo_stress": 0.0,
    "quantized_frontend": 0.0,
    "timing_stress": 0.0,
    "iq_imbalance": 0.05,
    "worst_case": 0.08,
}


class TestPresetLinkQuality:
    def test_gate_table_covers_every_preset(self):
        assert set(PRESET_GATES_45DB) == set(SCENARIOS)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_preset_ber_at_45db(self, name):
        bers = [scenario_link(name, snr_db=45.0, seed=s)[2] for s in (0, 1)]
        assert float(np.mean(bers)) <= PRESET_GATES_45DB[name]


class TestScenarioLinkPlumbing:
    def test_custom_scenario_object_accepted(self):
        sc = Scenario(name="custom", description="ad hoc", identity=True)
        _tx, result, ber = scenario_link(sc, snr_db=None, seed=2)
        assert ber == 0.0
        assert result.noise_var > 0.0, "MMSE noise calibration should engage"

    def test_snr_none_uses_preset_default(self):
        sc = get_scenario("awgn").with_overrides(snr_db_default=10.0)
        _tx, _result, ber_default = scenario_link(sc, snr_db=None, seed=4)
        _tx, _result, ber_clean = scenario_link(sc, snr_db=45.0, seed=4)
        assert ber_default > ber_clean
