"""QAM-64 and OFDM framing tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.ofdm import (
    add_cp,
    apply_tracking,
    deinterleave_streams,
    demap_carriers,
    interleave_streams,
    map_carriers,
    remove_cp,
    track_pilots,
)
from repro.phy.params import PARAMS_20MHZ_2X2
from repro.phy.qam import qam64_constellation, qam64_demodulate, qam64_modulate


class TestQam64:
    def test_constellation_size_and_energy(self):
        points = qam64_constellation()
        assert len(set(np.round(points, 9))) == 64
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0, rel=1e-9)

    @given(st.lists(st.integers(0, 1), min_size=6, max_size=120).filter(lambda b: len(b) % 6 == 0))
    def test_mod_demod_roundtrip(self, bits):
        bits = np.array(bits)
        symbols = qam64_modulate(bits)
        assert np.array_equal(qam64_demodulate(symbols), bits)

    def test_gray_mapping_single_bit_neighbours(self):
        """Adjacent I levels differ in exactly one bit (Gray property)."""
        points = qam64_constellation()
        # group labels by Q bits, sort by I amplitude
        for q in range(8):
            labels = [l for l in range(64) if (l & 7) == q]
            labels.sort(key=lambda l: points[l].real)
            for a, b in zip(labels, labels[1:]):
                diff = (a >> 3) ^ (b >> 3)
                assert bin(diff).count("1") == 1

    def test_demod_robust_to_small_noise(self):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=600)
        symbols = qam64_modulate(bits)
        noisy = symbols + 0.02 * (rng.normal(size=len(symbols)) + 1j * rng.normal(size=len(symbols)))
        assert np.array_equal(qam64_demodulate(noisy), bits)


class TestOfdmFraming:
    params = PARAMS_20MHZ_2X2

    def test_carrier_counts(self):
        assert len(self.params.used_carriers) == 56
        assert self.params.n_data_carriers == 52
        assert len(self.params.pilot_carriers) == 4

    def test_rates_match_paper_claim(self):
        # 52 carriers x 6 bits x 2 streams / 4 us = 156 Mbps raw.
        assert self.params.phy_rate_bps == pytest.approx(156e6)
        # Rate 5/6 -> 130 Mbps: the "100 Mbps+" of the title.
        assert self.params.coded_rate_bps > 100e6
        assert self.params.symbol_duration_s == pytest.approx(4e-6)

    def test_map_demap_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=52) + 1j * rng.normal(size=52)
        grid = map_carriers(data, self.params)
        assert np.allclose(demap_carriers(grid, self.params), data)

    def test_map_rejects_wrong_count(self):
        with pytest.raises(ValueError):
            map_carriers(np.zeros(51), self.params)

    def test_dc_and_guard_are_zero(self):
        grid = map_carriers(np.ones(52), self.params)
        assert grid[0] == 0
        for k in range(29, 36):
            assert grid[k] == 0

    def test_cp_roundtrip(self):
        sym = np.arange(64, dtype=np.complex128)
        with_cp = add_cp(sym, 16)
        assert len(with_cp) == 80
        assert np.allclose(with_cp[:16], sym[-16:])
        assert np.allclose(remove_cp(with_cp, self.params), sym)

    def test_remove_cp_needs_full_symbol(self):
        with pytest.raises(ValueError):
            remove_cp(np.zeros(40), self.params)

    def test_pilot_tracking_recovers_phase(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=52) + 1j * rng.normal(size=52)
        grid = map_carriers(data, self.params, symbol_index=3)
        rotated = grid * np.exp(1j * 0.3)
        phasor = track_pilots(rotated, self.params, symbol_index=3)
        assert np.angle(phasor) == pytest.approx(0.3, abs=1e-9)
        fixed = apply_tracking(rotated, phasor)
        assert np.allclose(demap_carriers(fixed, self.params), data)

    def test_interleave_roundtrip(self):
        streams = np.arange(12).reshape(2, 6)
        flat = interleave_streams(streams)
        assert np.array_equal(deinterleave_streams(flat, 2), streams)
        # Interleaved layout alternates streams.
        assert list(flat[:4]) == [0, 6, 1, 7]
