"""Watchdog policy under injected clocks and kills: silence detection,
verdict thresholds, escalation, once-per-incident flagging."""

import signal
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.obs import Watchdog, heartbeat_payload, rss_bytes


@dataclass
class _Slot:
    index: int
    alive: bool = True
    stopping: bool = False
    pid: Optional[int] = 4242


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _watchdog(clock, **kwargs):
    kwargs.setdefault("interval_s", 1.0)
    kwargs.setdefault("miss_intervals", 5)
    kwargs.setdefault("unhealthy_intervals", 2)
    return Watchdog(clock=clock, kill=kwargs.pop("kill", lambda pid, sig: None), **kwargs)


class TestVerdict:
    def test_never_armed_slot_is_warn(self):
        dog = _watchdog(FakeClock())
        assert dog.verdict(0) == "warn"

    def test_fail_at_exactly_two_silent_intervals(self):
        clock = FakeClock()
        dog = _watchdog(clock)
        dog.reset(0)
        clock.advance(1.9)
        assert dog.verdict(0) == "pass"
        clock.advance(0.1)  # 2.0s = unhealthy_intervals * interval_s
        assert dog.verdict(0) == "fail"

    def test_beat_rearms_the_verdict(self):
        clock = FakeClock()
        dog = _watchdog(clock)
        dog.reset(0)
        clock.advance(5.0)
        assert dog.verdict(0) == "fail"
        dog.beat(0)
        assert dog.verdict(0) == "pass"


class TestEscalation:
    def test_silent_slot_is_flagged_after_miss_intervals(self):
        clock = FakeClock()
        dog = _watchdog(clock)
        dog.reset(0)
        clock.advance(4.9)
        assert dog.check([_Slot(0)]) == []
        clock.advance(0.2)
        events = dog.check([_Slot(0)])
        assert len(events) == 1
        assert events[0].slot == 0
        assert events[0].age_s == pytest.approx(5.1)
        assert not events[0].killed, "escalate=False must never kill"
        assert dog.is_flagged(0)
        assert dog.flags == 1

    def test_flagging_is_once_per_incident(self):
        clock = FakeClock()
        dog = _watchdog(clock)
        dog.reset(0)
        clock.advance(6.0)
        assert len(dog.check([_Slot(0)])) == 1
        clock.advance(1.0)
        assert dog.check([_Slot(0)]) == [], "still the same incident"
        assert dog.flags == 1

    def test_beat_recovers_a_flagged_slot(self):
        clock = FakeClock()
        dog = _watchdog(clock)
        dog.reset(0)
        clock.advance(6.0)
        dog.check([_Slot(0)])
        assert dog.beat(0) is True
        assert not dog.is_flagged(0)
        assert dog.recoveries == 1
        clock.advance(6.0)
        assert len(dog.check([_Slot(0)])) == 1, "a new incident flags again"

    def test_escalate_kills_with_sigkill(self):
        clock = FakeClock()
        kills = []
        dog = _watchdog(
            clock, escalate=True, kill=lambda pid, sig: kills.append((pid, sig))
        )
        dog.reset(3)
        clock.advance(5.5)
        events = dog.check([_Slot(3, pid=777)])
        assert events[0].killed
        assert kills == [(777, signal.SIGKILL)]
        assert dog.kills == 1

    def test_kill_failure_is_swallowed(self):
        clock = FakeClock()

        def kill(pid, sig):
            raise ProcessLookupError(pid)

        dog = _watchdog(clock, escalate=True, kill=kill)
        dog.reset(0)
        clock.advance(5.5)
        events = dog.check([_Slot(0)])
        assert len(events) == 1 and not events[0].killed
        assert dog.kills == 0

    def test_dead_and_stopping_slots_are_skipped(self):
        clock = FakeClock()
        dog = _watchdog(clock)
        for slot in (0, 1):
            dog.reset(slot)
        clock.advance(10.0)
        events = dog.check([_Slot(0, alive=False), _Slot(1, stopping=True)])
        assert events == [], "the sentinel/shutdown paths own those slots"

    def test_respawn_reset_forgives_the_dead_incarnation(self):
        clock = FakeClock()
        dog = _watchdog(clock)
        dog.reset(0)
        clock.advance(10.0)
        dog.check([_Slot(0)])
        dog.reset(0)  # the fabric respawned the slot
        assert not dog.is_flagged(0)
        assert dog.verdict(0) == "pass"


class TestValidation:
    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ValueError, match="miss_intervals"):
            Watchdog(miss_intervals=1, unhealthy_intervals=3)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval_s"):
            Watchdog(interval_s=0)

    def test_thresholds_must_be_at_least_one(self):
        with pytest.raises(ValueError, match=">= 1"):
            Watchdog(miss_intervals=0, unhealthy_intervals=0)


class TestHeartbeatPayload:
    def test_payload_shape(self):
        payload = heartbeat_payload(
            task_seq=7, host_cycles=1234, stall_causes={"bank_conflict": 9}
        )
        assert payload["task_seq"] == 7
        assert payload["host_cycles"] == 1234
        assert payload["stall_causes"] == {"bank_conflict": 9}
        assert payload["rss_bytes"] >= 0
        assert payload["monotonic_ts"] > 0

    def test_rss_bytes_is_plausible(self):
        # A live CPython process occupies at least a few MB.
        assert rss_bytes() > 1 << 20
