"""The live telemetry plane over a real (stub-runner) fabric: heartbeats
arriving through the result-pipe multiplexing, /healthz verdicts over
HTTP, SIGSTOP detection, watchdog escalation into crash recovery."""

import json
import os
import signal
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.fabric import Fabric


class _StubRunner:
    def run_packet(self, rx, n_symbols=2, detect_hint=None):
        return {"sum": float(np.sum(rx.real)), "pid": os.getpid()}


def _factory():
    return _StubRunner()


def _packets(n):
    return [np.full((2, 400), float(k + 1)) for k in range(n)]


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


def _pump_until(fab, predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        fab.poll(0.05)
        if predicate():
            return True
    return False


def test_heartbeats_flow_and_report_carries_them():
    fab = Fabric(workers=2, runner_factory=_factory, heartbeat_s=0.1)
    with fab:
        ids = [fab.submit(rx) for rx in _packets(4)]
        fab.drain(timeout=30)
        assert _pump_until(
            fab,
            lambda: all(w["heartbeats"] >= 2 for w in fab.report()["per_worker"]),
        ), "every worker should beat repeatedly at 0.1s intervals"
        report = fab.report()
        assert report["counters"]["heartbeats"] >= 4
        assert report["heartbeat_s"] == 0.1
        for worker in report["per_worker"]:
            assert worker["last_heartbeat_age_s"] is not None
            assert worker["task_seq"] is not None
            assert worker["rss_bytes"] > 0
            assert worker["health"] == "pass"
        assert len(ids) == 4


def test_window_snapshot_tracks_recent_completions():
    fab = Fabric(workers=1, runner_factory=_factory, heartbeat_s=0.0, window_s=30.0)
    with fab:
        for rx in _packets(5):
            fab.submit(rx)
        fab.drain(timeout=30)
        window = fab.report()["window"]
    assert window["window_s"] == 30.0
    assert window["counts"]["submitted"] == 5
    assert window["counts"]["completed"] == 5
    assert window["latency_s"]["count"] == 5
    assert window["throughput_pps"] > 0


def test_healthz_over_http_reports_sigstopped_worker_within_two_intervals():
    """The ISSUE acceptance bar: a SIGSTOPped worker turns /healthz red
    within two heartbeat intervals."""
    interval = 0.2
    fab = Fabric(
        workers=2,
        runner_factory=_factory,
        heartbeat_s=interval,
        watchdog_intervals=1000,  # detection only: no escalation today
        obs_port=0,
    )
    with fab:
        fab.submit(np.ones((2, 400)))
        fab.drain(timeout=30)
        assert _pump_until(
            fab, lambda: all(w["heartbeats"] > 0 for w in fab.report()["per_worker"])
        )
        status, body = _get(fab.obs_url + "/healthz")
        assert status == 200 and json.loads(body)["status"] == "pass"

        victim = fab.worker_pids()[0]
        os.kill(victim, signal.SIGSTOP)
        try:
            t0 = time.monotonic()
            assert _pump_until(
                fab,
                lambda: json.loads(_get(fab.obs_url + "/healthz")[1])["status"] == "fail",
                timeout_s=10 * interval,
            ), "a stopped worker must fail /healthz"
            elapsed = time.monotonic() - t0
            # Silence is detected at 2 intervals; allow pump/scrape slack.
            assert elapsed < 6 * interval
            status, body = _get(fab.obs_url + "/healthz")
            assert status == 503
            health = json.loads(body)
            failed = [
                k for k, (c,) in health["checks"].items()
                if k.startswith("worker:") and c["status"] == "fail"
            ]
            assert len(failed) == 1
            (check,) = health["checks"][failed[0]]
            assert check["observedValue"] >= 2 * interval
        finally:
            os.kill(victim, signal.SIGCONT)
        assert _pump_until(
            fab,
            lambda: json.loads(_get(fab.obs_url + "/healthz")[1])["status"] == "pass",
        ), "a resumed worker must recover"


def test_watchdog_escalation_converts_stuck_into_crash_recovery():
    """escalate=True: the watchdog SIGKILLs a silent worker, and the
    existing salvage/requeue/respawn path finishes the work."""
    class _Slow(_StubRunner):
        def run_packet(self, rx, n_symbols=2, detect_hint=None):
            time.sleep(0.15)
            return super().run_packet(rx, n_symbols, detect_hint)

    interval = 0.1
    fab = Fabric(
        workers=2,
        runner_factory=_Slow,
        heartbeat_s=interval,
        watchdog_intervals=3,
        watchdog_escalate=True,
        queue_depth=8,
    )
    with fab:
        ids = [fab.submit(rx) for rx in _packets(6)]
        # SIGSTOP a busy worker: tasks are in flight, only the beat stops.
        victim = fab.worker_pids()[0]
        os.kill(victim, signal.SIGSTOP)
        assert _pump_until(
            fab, lambda: fab.report()["counters"]["watchdog_kills"] >= 1
        ), "the watchdog should escalate a silent worker to SIGKILL"
        assert _pump_until(
            fab, lambda: fab.report()["counters"]["respawns"] >= 1
        ), "the SIGKILL must land in the crash-recovery path"
        results = fab.drain(timeout=30)
        report = fab.report()
    assert sorted(results) == sorted(ids), "no packet lost across escalation"
    assert report["counters"]["watchdog_flags"] >= 1
    assert report["counters"]["worker_crashes"] >= 1
    assert report["counters"]["respawns"] >= 1
    events = [e["event"] for e in fab.events()]
    assert "watchdog_flag" in events
    assert "worker_crash" in events
    assert "worker_respawn" in events


def test_health_degrades_to_warn_when_nobody_pumps():
    """Heartbeats ride the pump; a stale pump makes worker silence
    unattributable, so verdicts cap at warn with a fabric:pump check."""
    interval = 0.1
    fab = Fabric(workers=1, runner_factory=_factory, heartbeat_s=interval)
    with fab:
        fab.submit(np.ones((2, 400)))
        fab.drain(timeout=30)
        fab.poll(0.05)  # a fresh pump timestamp
        time.sleep(6 * interval)  # nobody pumps: beats pile up unread
        health = fab.health()
        assert health["status"] == "warn", health
        assert health["checks"]["fabric:pump"][0]["status"] == "warn"
        worker_statuses = [
            c["status"] for k, (c,) in health["checks"].items()
            if k.startswith("worker:")
        ]
        assert "fail" not in worker_statuses


def test_events_endpoint_and_shed_accounting():
    class _Slow(_StubRunner):
        def run_packet(self, rx, n_symbols=2, detect_hint=None):
            time.sleep(0.2)
            return super().run_packet(rx, n_symbols, detect_hint)

    fab = Fabric(
        workers=1,
        runner_factory=_Slow,
        queue_depth=1,
        backpressure="drop",
        heartbeat_s=0.0,
        obs_port=0,
    )
    with fab:
        ids = [fab.submit(rx) for rx in _packets(5)]
        dropped = ids.count(None)
        assert dropped >= 3
        fab.drain(timeout=30)
        status, body = _get(fab.obs_url + "/events.json")
        events = json.loads(body)
        window = fab.report()["window"]
    assert status == 200
    assert sum(1 for e in events if e["event"] == "packet_dropped") == dropped
    assert window["counts"]["dropped"] == dropped
    assert window["shed"] == dropped


def test_obs_server_lifecycle_follows_the_fabric():
    fab = Fabric(workers=1, runner_factory=_factory, heartbeat_s=0.0, obs_port=0)
    with fab:
        url = fab.obs_url
        assert url is not None
        assert _get(url + "/metrics")[0] == 200
    assert fab.obs_url is None, "shutdown must stop the server"
    with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
        urllib.request.urlopen(url + "/metrics", timeout=2)


def test_heartbeats_disabled_leaves_plain_liveness():
    fab = Fabric(workers=1, runner_factory=_factory, heartbeat_s=0.0)
    with fab:
        fab.submit(np.ones((2, 400)))
        fab.drain(timeout=30)
        report = fab.report()
        health = fab.health()
    assert report["counters"]["heartbeats"] == 0
    assert report["watchdog"] is None
    assert health["status"] == "pass", "alive workers pass without beats"


def test_metrics_text_lints_clean_with_live_data():
    from repro.obs import lint_exposition

    fab = Fabric(workers=2, runner_factory=_factory, heartbeat_s=0.1)
    with fab:
        for rx in _packets(4):
            fab.submit(rx)
        fab.drain(timeout=30)
        _pump_until(
            fab, lambda: all(w["heartbeats"] > 0 for w in fab.report()["per_worker"])
        )
        page = fab.metrics_text()
    assert lint_exposition(page) == []
    assert "repro_fabric_worker_heartbeat_age_seconds" in page
    assert 'repro_fabric_worker_healthy{' in page
    assert 'repro_fabric_cache_events{cache="schedule",event="misses"}' in page
