"""ObsServer over real HTTP: routing, status codes, content types,
provider fault isolation."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import ObsServer, lint_exposition
from repro.obs.server import HEALTH_CONTENT_TYPE, METRICS_CONTENT_TYPE


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type"), err.read().decode()


@pytest.fixture()
def server():
    state = {"health": {"status": "pass", "checks": {}}}
    srv = ObsServer(
        metrics=lambda: "# HELP x X.\n# TYPE x gauge\nx 1\n",
        health=lambda: state["health"],
        report=lambda: {"schema": "test/v1", "n": 3},
        events=lambda: [{"seq": 1, "event": "boot", "args": {}}],
    )
    srv.start()
    srv._test_state = state
    yield srv
    srv.stop()


def test_metrics_endpoint_serves_exposition(server):
    status, ctype, body = _get(server.url + "/metrics")
    assert status == 200
    assert ctype == METRICS_CONTENT_TYPE
    assert lint_exposition(body) == []


def test_healthz_pass_is_200(server):
    status, ctype, body = _get(server.url + "/healthz")
    assert status == 200
    assert ctype == HEALTH_CONTENT_TYPE
    assert json.loads(body)["status"] == "pass"


def test_healthz_warn_is_still_200(server):
    server._test_state["health"] = {"status": "warn", "checks": {}}
    status, _, body = _get(server.url + "/healthz")
    assert status == 200
    assert json.loads(body)["status"] == "warn"


def test_healthz_fail_is_503(server):
    server._test_state["health"] = {"status": "fail", "checks": {}}
    status, _, body = _get(server.url + "/healthz")
    assert status == 503
    assert json.loads(body)["status"] == "fail"


def test_report_and_events_round_trip_as_json(server):
    status, ctype, body = _get(server.url + "/report.json")
    assert (status, ctype) == (200, "application/json")
    assert json.loads(body) == {"schema": "test/v1", "n": 3}
    status, _, body = _get(server.url + "/events.json")
    assert status == 200
    assert json.loads(body)[0]["event"] == "boot"


def test_index_lists_endpoints(server):
    status, _, body = _get(server.url + "/")
    assert status == 200
    for path in ("/metrics", "/healthz", "/report.json", "/events.json"):
        assert path in body


def test_unknown_path_is_404(server):
    assert _get(server.url + "/nope")[0] == 404


def test_scrape_counters_increment(server):
    before = server.scrapes["/metrics"]
    _get(server.url + "/metrics")
    _get(server.url + "/metrics")
    assert server.scrapes["/metrics"] == before + 2


def test_broken_provider_is_500_and_server_survives():
    calls = {"n": 0}

    def bad_metrics():
        calls["n"] += 1
        raise KeyError("telemetry exploded")

    with ObsServer(metrics=bad_metrics, health=lambda: {"status": "pass"}) as srv:
        status, _, body = _get(srv.url + "/metrics")
        assert status == 500
        assert "KeyError" in body
        # The server is still up and other endpoints still answer.
        assert _get(srv.url + "/healthz")[0] == 200


def test_transient_runtime_errors_are_retried():
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise RuntimeError("dictionary changed size during iteration")
        return "# HELP x X.\n# TYPE x gauge\nx 1\n"

    with ObsServer(metrics=flaky) as srv:
        status, _, _ = _get(srv.url + "/metrics")
    assert status == 200
    assert attempts["n"] == 3


def test_unwired_endpoint_is_404():
    with ObsServer(metrics=lambda: "x 1\n") as srv:
        assert _get(srv.url + "/healthz")[0] == 404


def test_start_twice_raises():
    srv = ObsServer(metrics=lambda: "")
    srv.start()
    try:
        with pytest.raises(RuntimeError, match="already started"):
            srv.start()
    finally:
        srv.stop()


def test_stop_is_idempotent():
    srv = ObsServer(metrics=lambda: "")
    srv.start()
    srv.stop()
    srv.stop()  # must not raise
    with pytest.raises(RuntimeError, match="not started"):
        srv.port
