"""Rolling-window aggregation under a fake clock: eviction, rates,
empty-window percentile shapes, the event ring."""

import pytest

from repro.obs import (
    EventLog,
    MetricsWindow,
    WindowedCounter,
    WindowedSeries,
    percentile,
    window_summary,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestPercentile:
    def test_nearest_rank_returns_observed_samples(self):
        samples = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert percentile(samples, 50) == 0.3
        assert percentile(samples, 95) == 0.5
        assert percentile(samples, 0) == 0.1
        assert percentile(samples, 100) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError, match="outside"):
            percentile([1.0], 101)

    def test_summary_of_empty_window_is_zero_filled(self):
        # The scrape contract: an idle fabric still renders numbers.
        assert window_summary([]) == {
            "count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0,
        }


class TestWindowedCounter:
    def test_old_entries_evict_at_the_horizon(self):
        clock = FakeClock()
        counter = WindowedCounter(horizon_s=60.0, clock=clock)
        counter.add(5)
        clock.advance(59.0)
        counter.add(1)
        assert counter.total() == 6.0
        clock.advance(2.0)  # first entry is now 61s old
        assert counter.total() == 1.0
        clock.advance(60.0)
        assert counter.total() == 0.0

    def test_rate_divides_by_age_before_a_full_horizon(self):
        clock = FakeClock()
        counter = WindowedCounter(horizon_s=60.0, clock=clock)
        clock.advance(10.0)
        counter.add(20)
        assert counter.rate() == pytest.approx(2.0)  # 20 events / 10s alive

    def test_rate_divides_by_horizon_after_it(self):
        clock = FakeClock()
        counter = WindowedCounter(horizon_s=60.0, clock=clock)
        clock.advance(120.0)
        counter.add(30)
        assert counter.rate() == pytest.approx(0.5)  # 30 / 60s window

    def test_max_entries_bounds_memory(self):
        clock = FakeClock()
        counter = WindowedCounter(horizon_s=60.0, clock=clock, max_entries=8)
        for _ in range(100):
            counter.add(1)
        assert counter.total() == 8.0

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            WindowedCounter(horizon_s=0.0)


class TestWindowedSeries:
    def test_summary_follows_eviction(self):
        clock = FakeClock()
        series = WindowedSeries(horizon_s=10.0, clock=clock)
        series.observe(1.0)
        clock.advance(5.0)
        series.observe(3.0)
        assert series.summary()["max"] == 3.0
        assert series.summary()["count"] == 2
        clock.advance(6.0)  # the 1.0 sample ages out
        summary = series.summary()
        assert summary["count"] == 1
        assert summary["p50"] == 3.0
        clock.advance(20.0)
        assert series.summary()["count"] == 0

    def test_values_in_order(self):
        clock = FakeClock()
        series = WindowedSeries(horizon_s=10.0, clock=clock)
        for v in (3.0, 1.0, 2.0):
            series.observe(v)
        assert series.values() == [3.0, 1.0, 2.0]


class TestMetricsWindow:
    def test_snapshot_shape_when_empty(self):
        window = MetricsWindow(horizon_s=60.0, clock=FakeClock())
        snap = window.snapshot()
        assert snap["window_s"] == 60.0
        assert snap["counts"]["completed"] == 0
        assert snap["throughput_pps"] == 0.0
        assert snap["shed"] == 0
        assert snap["latency_s"]["count"] == 0
        assert snap["queue_depth"] == {"mean": 0.0, "max": 0.0, "samples": 0}

    def test_counts_and_rates_evict(self):
        clock = FakeClock()
        window = MetricsWindow(horizon_s=60.0, clock=clock)
        clock.advance(30.0)
        for _ in range(6):
            window.count("completed")
        window.count("dropped", 2)
        window.count("rejected")
        snap = window.snapshot()
        assert snap["counts"]["completed"] == 6
        assert snap["shed"] == 3
        assert snap["throughput_pps"] == pytest.approx(6 / 30.0)
        clock.advance(61.0)
        snap = window.snapshot()
        assert snap["counts"]["completed"] == 0
        assert snap["shed"] == 0

    def test_unknown_count_names_are_ignored(self):
        window = MetricsWindow(horizon_s=60.0, clock=FakeClock())
        window.count("not_a_real_counter")  # must not raise or appear
        assert "not_a_real_counter" not in window.snapshot()["counts"]

    def test_latency_percentiles_are_windowed(self):
        clock = FakeClock()
        window = MetricsWindow(horizon_s=10.0, clock=clock)
        window.observe_latency(9.0)  # an ancient outlier
        clock.advance(11.0)
        for v in (0.1, 0.2, 0.3):
            window.observe_latency(v)
        latency = window.snapshot()["latency_s"]
        assert latency["count"] == 3
        assert latency["max"] == 0.3, "the 9s outlier must have aged out"
        assert latency["p50"] == 0.2


class TestEventLog:
    def test_ring_keeps_the_newest(self):
        log = EventLog(capacity=3, clock=FakeClock(100.0))
        for i in range(5):
            log.append("event_%d" % i, {"i": i})
        events = log.snapshot()
        assert [e["event"] for e in events] == ["event_2", "event_3", "event_4"]
        assert [e["seq"] for e in events] == [3, 4, 5]
        assert log.total == 5

    def test_entries_carry_ts_and_args(self):
        log = EventLog(capacity=4, clock=FakeClock(7.5))
        log.append("worker_crash", {"slot": 1})
        (event,) = log.snapshot()
        assert event["ts"] == 7.5
        assert event["args"] == {"slot": 1}

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            EventLog(capacity=0)
