"""Shared Prometheus exposition builders: escaping, headers, the linter."""

import pytest

from repro.obs import (
    escape_help_text,
    escape_label_value,
    lint_exposition,
    prom_header,
    prom_sample,
)


class TestEscaping:
    def test_quote_is_escaped(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'

    def test_backslash_is_escaped_first(self):
        # A raw backslash must not merge with the quote escape.
        assert escape_label_value('C:\\path"x') == 'C:\\\\path\\"x'

    def test_newline_is_escaped(self):
        assert escape_label_value("a\nb") == "a\\nb"

    def test_plain_values_pass_through(self):
        assert escape_label_value("bank_conflict") == "bank_conflict"
        assert escape_label_value(42) == "42"

    def test_help_text_escapes_backslash_and_newline(self):
        assert escape_help_text("a\\b\nc") == "a\\\\b\\nc"


class TestBuilders:
    def test_sample_without_labels(self):
        assert prom_sample("x_total", 3) == "x_total 3"

    def test_sample_labels_sorted_and_escaped(self):
        line = prom_sample("x", 1.5, {"b": 'v"1', "a": "v2"})
        assert line == 'x{a="v2",b="v\\"1"} 1.5'

    def test_header_is_help_then_type(self):
        lines = prom_header("x_total", "counter", "Things counted.")
        assert lines == [
            "# HELP x_total Things counted.",
            "# TYPE x_total counter",
        ]


class TestLinter:
    def _page(self, *lines):
        return "\n".join(lines) + "\n"

    def test_clean_page_has_no_problems(self):
        page = self._page(
            "# HELP x_total Things.",
            "# TYPE x_total counter",
            'x_total{cause="a b"} 3',
            "# HELP lat_s Latency.",
            "# TYPE lat_s summary",
            'lat_s{quantile="0.95"} 0.25',
            "lat_s_count 4",
            "lat_s_sum 0.9",
        )
        assert lint_exposition(page) == []

    def test_escaped_quote_in_label_parses(self):
        page = self._page(
            "# HELP x X.",
            "# TYPE x gauge",
            'x{name="say \\"hi\\""} 1',
        )
        assert lint_exposition(page) == []

    def test_unescaped_quote_is_flagged(self):
        page = self._page(
            "# HELP x X.",
            "# TYPE x gauge",
            'x{name="say "hi""} 1',
        )
        assert any("label block" in p for p in lint_exposition(page))

    def test_sample_without_type_is_flagged(self):
        assert any(
            "no # TYPE" in p for p in lint_exposition(self._page("orphan 1"))
        )

    def test_sample_without_help_is_flagged(self):
        page = self._page("# TYPE x gauge", "x 1")
        assert any("no # HELP" in p for p in lint_exposition(page))

    def test_integer_quantile_is_flagged(self):
        page = self._page(
            "# HELP lat_s L.",
            "# TYPE lat_s summary",
            'lat_s{quantile="95"} 0.25',
        )
        assert any("not fractional" in p for p in lint_exposition(page))

    def test_non_numeric_value_is_flagged(self):
        page = self._page("# HELP x X.", "# TYPE x gauge", "x oops")
        assert any("non-numeric" in p for p in lint_exposition(page))

    def test_missing_trailing_newline_is_flagged(self):
        assert any(
            "newline" in p
            for p in lint_exposition("# HELP x X.\n# TYPE x gauge\nx 1")
        )

    def test_bad_type_keyword_is_flagged(self):
        assert any(
            "malformed TYPE" in p
            for p in lint_exposition(self._page("# TYPE x countr", "x 1"))
        )


@pytest.mark.parametrize(
    "renderer",
    ["fabric", "sim"],
    ids=["fabric_report", "trace_export"],
)
def test_repo_renderers_survive_hostile_label_values(renderer):
    """Both real renderers must emit lintable pages for hostile labels."""
    hostile = 'cfo="50e3" \\ units'
    if renderer == "sim":
        from repro.trace.export import prometheus_text

        class _Stats:
            def as_dict(self):
                return {
                    "counters": {"cycles": 10},
                    "fu_ops": {},
                    "op_groups": {},
                    "stall_causes": {"bank_conflict": 3},
                }

        page = prometheus_text(_Stats(), labels={"run": hostile})
    else:
        from repro.obs.prom import prom_header, prom_sample

        lines = prom_header("repro_fabric_x", "gauge", "X.")
        lines.append(prom_sample("repro_fabric_x", 1, {"run": hostile}))
        page = "\n".join(lines) + "\n"
    assert lint_exposition(page) == []
    assert '\\"' in page
