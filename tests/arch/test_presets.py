"""Tests that the paper core preset matches the paper's specification."""

import pytest

from repro.arch import CgaArchitecture, paper_core, small_test_core
from repro.arch.resources import FunctionalUnit, RegisterFileSpec
from repro.arch.topology import full_topology
from repro.isa import Opcode


@pytest.fixture(scope="module")
def core():
    return paper_core()


def test_sixteen_units_4x4(core):
    assert core.rows == core.cols == 4
    assert core.n_units == 16


def test_three_vliw_slots_with_cdrf_ports(core):
    assert core.vliw_width == 3
    for fu in core.vliw_fus:
        assert fu.has_cdrf_port
        assert fu.local_rf is None


def test_thirteen_local_register_files(core):
    cga_only = core.cga_only_fus
    assert len(cga_only) == 13
    for fu in cga_only:
        assert fu.local_rf is not None
        assert fu.local_rf.read_ports == 2
        assert fu.local_rf.write_ports == 1


def test_central_register_files(core):
    assert core.cdrf.entries == 64 and core.cdrf.width == 64
    assert core.cdrf.read_ports == 6 and core.cdrf.write_ports == 3
    assert core.cprf.entries == 64 and core.cprf.width == 1


def test_table1_fu_assignment(core):
    assert core.fus_supporting(Opcode.BR) == [0]
    assert core.fus_supporting(Opcode.LD_I) == [0, 1, 2, 3]
    assert core.fus_supporting(Opcode.ST_I) == [0, 1, 2, 3]
    assert core.fus_supporting(Opcode.DIV) == [0, 1]
    assert core.fus_supporting(Opcode.ADD) == list(range(16))
    assert core.fus_supporting(Opcode.C4PROD) == list(range(16))


def test_l1_scratchpad_geometry(core):
    # 16K x 32-bit total across 4 single-ported banks = 64 KB.
    assert core.l1.banks == 4
    assert core.l1.words * core.l1.banks == 16 * 1024
    assert core.l1.width == 32
    assert core.l1.bytes == 64 * 1024


def test_icache_geometry(core):
    # 32 KB, 128-bit wide lines.
    assert core.icache.bytes == 32 * 1024
    assert core.icache.width == 128


def test_peak_gops_matches_paper(core):
    assert core.peak_gops_16bit == pytest.approx(25.6)
    assert core.clock_hz == 400_000_000


def test_summary_mentions_key_numbers(core):
    text = core.summary()
    assert "4x4" in text
    assert "25.6" in text
    assert "64 KB" in text


def test_fu_count_validation():
    core = paper_core()
    with pytest.raises(ValueError):
        CgaArchitecture(
            name="bad",
            rows=4,
            cols=4,
            fus=core.fus[:15],
            interconnect=core.interconnect,
            cdrf=core.cdrf,
            cprf=core.cprf,
            local_rf_entries=8,
            l1=core.l1,
            icache=core.icache,
            config_memory_contexts=128,
        )


def test_interconnect_size_validation():
    core = paper_core()
    with pytest.raises(ValueError):
        CgaArchitecture(
            name="bad",
            rows=4,
            cols=4,
            fus=core.fus,
            interconnect=full_topology(8),
            cdrf=core.cdrf,
            cprf=core.cprf,
            local_rf_entries=8,
            l1=core.l1,
            icache=core.icache,
            config_memory_contexts=128,
        )


def test_vliw_slot_numbering_validation():
    core = paper_core()
    fus = list(core.fus)
    # Duplicate slot 0 on unit 1.
    bad = FunctionalUnit(
        index=1,
        groups=fus[1].groups,
        vliw_slot=0,
        has_cdrf_port=True,
    )
    fus[1] = bad
    with pytest.raises(ValueError):
        CgaArchitecture(
            name="bad",
            rows=4,
            cols=4,
            fus=tuple(fus),
            interconnect=core.interconnect,
            cdrf=core.cdrf,
            cprf=core.cprf,
            local_rf_entries=8,
            l1=core.l1,
            icache=core.icache,
            config_memory_contexts=128,
        )


def test_small_test_core_is_consistent():
    core = small_test_core()
    assert core.n_units == 4
    assert core.vliw_width == 1
    assert core.fus_supporting(Opcode.BR) == [0]
    assert len(core.fus_supporting(Opcode.LD_I)) == 2


def test_fu_supports_and_groups():
    core = paper_core()
    fu0 = core.fus[0]
    assert fu0.supports(Opcode.JMP)
    assert fu0.can_load_store
    fu15 = core.fus[15]
    assert not fu15.supports(Opcode.JMP)
    assert not fu15.can_load_store
    assert fu15.supports(Opcode.D4PROD)


def test_register_file_bits():
    rf = RegisterFileSpec("x", 64, 64, 6, 3)
    assert rf.bits == 4096
