"""Interconnect topology tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.topology import (
    Interconnect,
    full_topology,
    mesh_plus_topology,
    mesh_topology,
)


def test_mesh_4x4_neighbour_edges():
    ic = mesh_topology(4, 4)
    # Unit 5 (row 1, col 1) has 4 neighbours + itself.
    assert ic.predecessors(5) == [1, 4, 5, 6, 9]
    # Corner unit 0 has 2 neighbours + itself.
    assert ic.predecessors(0) == [0, 1, 4]


def test_mesh_is_symmetric():
    ic = mesh_topology(3, 5)
    for src, dst in ic.edges:
        assert ic.connected(dst, src)


def test_self_loop_implicit():
    ic = mesh_topology(2, 2)
    for u in range(4):
        assert ic.connected(u, u)
        assert u in ic.predecessors(u)


def test_mesh_plus_includes_row_column_buses_and_diagonals():
    ic = mesh_plus_topology(4, 4)
    # Same row, non-adjacent.
    assert ic.connected(0, 3)
    # Same column, non-adjacent.
    assert ic.connected(0, 12)
    # Diagonal.
    assert ic.connected(0, 5)
    # Not connected: different row, column, and not diagonal neighbours.
    assert not ic.connected(0, 6)


def test_mesh_plus_is_denser_than_mesh():
    assert mesh_plus_topology(4, 4).wire_count > mesh_topology(4, 4).wire_count


def test_full_topology_connects_everything():
    ic = full_topology(16)
    for u in range(16):
        for v in range(16):
            assert ic.connected(u, v)
    assert ic.wire_count == 16 * 15


def test_edge_out_of_range_rejected():
    with pytest.raises(ValueError):
        Interconnect(4, frozenset({(0, 7)}))


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
def test_successor_predecessor_duality(rows, cols):
    ic = mesh_plus_topology(rows, cols)
    for u in range(ic.n_units):
        for v in ic.successors(u):
            assert u in ic.predecessors(v)


def test_degree_histogram_counts_all_units():
    ic = mesh_plus_topology(4, 4)
    hist = ic.degree_histogram()
    assert sum(hist.values()) == 16
    # Dense interconnect: every unit sees at least 9 inputs (8-neighbourhood
    # can overlap with buses; all units see >= 9 due to row+col buses + self).
    assert min(hist) >= 7
