#!/usr/bin/env python
"""Modem batch throughput: packets per second through the runtime layer.

Measures the compile-once / run-many split of ``repro.runtime``:

* a warm-up packet links every region program (and, with ``--cache``,
  populates or consumes the persistent schedule cache);
* a timed batch of same-shape packets then runs on the resident
  programs, and ``packets_per_sec`` is the throughput trajectory metric.

Every packet's decoded bits are checked against the transmitted
payload, so the bench doubles as an end-to-end smoke test.  Writes
``BENCH_modem_throughput.json`` through ``reporting.write_bench_report``
and validates it against ``bench_report.schema.json``; exit status 0 on
success.

Run:  PYTHONPATH=src python benchmarks/bench_modem_throughput.py \\
          [--packets N] [--workers N] [--cache DIR] [--out DIR]
"""

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

import numpy as np

import reporting
from repro.compiler.linker import schedule_cache_stats
from repro.runtime import BatchReceiver, ModemRuntime, generate_packets
from repro.sim.stats import ActivityStats
from repro.trace import schema_errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--packets", type=int, default=8, metavar="N", help="batch size (default 8)"
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N", help="pool size (default 1: serial)"
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="persistent schedule-cache directory (default $REPRO_SCHEDULE_CACHE)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="report directory (default benchmarks/out)"
    )
    parser.add_argument("--cfo", type=float, default=50e3, help="carrier offset in Hz")
    parser.add_argument("--seed", type=int, default=42, help="base packet seed")
    args = parser.parse_args(argv)
    if args.packets < 1:
        parser.error("--packets must be >= 1")

    cases = generate_packets(args.packets, base_seed=args.seed, cfo_hz=args.cfo)
    runtime = ModemRuntime(cache_dir=args.cache)
    batch = BatchReceiver(runtime=runtime, workers=args.workers)

    t0 = time.perf_counter()
    runtime.warm_up(cases[0].rx)
    warmup_wall = time.perf_counter() - t0
    print(
        "warm-up: linked %d region programs in %.2fs (schedule cache: %s)"
        % (runtime.compiled_programs, warmup_wall, schedule_cache_stats())
    )

    t0 = time.perf_counter()
    outputs, timings = batch.run_timed([case.rx for case in cases])
    wall = time.perf_counter() - t0

    bers = [
        float(np.mean(out.bits != case.bits)) for out, case in zip(outputs, cases)
    ]
    merged = ActivityStats()
    for out in outputs:
        merged.merge(out.stats)
    pps = len(outputs) / wall
    latency = reporting.latency_percentiles(timings)
    print(
        "%d packets x %d workers: %.2fs -> %.2f packets/s (mean ber %g)"
        % (len(outputs), args.workers, wall, pps, float(np.mean(bers)))
    )
    print(
        "per-packet latency: p50 %.3fs  p95 %.3fs  p99 %.3fs"
        % (latency["p50"], latency["p95"], latency["p99"])
    )
    if len(outputs) != len(cases):
        print("FAIL: %d/%d packets returned" % (len(outputs), len(cases)), file=sys.stderr)
        return 1
    if any(ber != 0.0 for ber in bers):
        print("FAIL: nonzero BER on clean channel: %r" % bers, file=sys.stderr)
        return 1

    extra = {
        "packets": len(outputs),
        "workers": args.workers,
        "packets_per_sec": round(pps, 3),
        "latency_s": {k: round(v, 6) for k, v in latency.items()},
        "warmup_wall_s": round(warmup_wall, 6),
        "mean_ber": float(np.mean(bers)),
        "compiled_programs": runtime.compiled_programs,
        "cache_dir": args.cache,
        "schedule_cache": schedule_cache_stats(),
    }
    path = reporting.write_bench_report(
        "modem_throughput", out_dir=args.out, wall_s=wall, stats=merged, extra=extra
    )
    with open(path) as fh:
        report = json.load(fh)
    with open(os.path.join(_HERE, "bench_report.schema.json")) as fh:
        schema = json.load(fh)
    errors = schema_errors(report, schema)
    if errors:
        print("FAIL: %s violates bench_report.schema.json:" % path, file=sys.stderr)
        for err in errors:
            print("  " + err, file=sys.stderr)
        return 1
    print("wrote %s (schema ok)" % path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
