"""Link-quality sweep — the workload the paper's introduction motivates.

Runs the golden (bit-accurate fixed-point + float) modem across an SNR
sweep over the multipath channel and prints the BER waterfall for the
64-QAM 2x2 configuration — the operating regime in which the processor
must deliver its 100 Mbps+.  (Golden models only: the full simulated
receiver covers one operating point in bench_table2; sweeping it is
minutes per point.)

Every operating point is gated against the checked-in reference curves
in ``link_quality_reference.json`` (schema ``repro.link_quality/v1``):
a regression in sync, channel estimation or equalisation shows up as a
per-SNR gate failure, not just a vibe shift in the printed table.  The
scenario matrix sweeps the named impairment presets of
:mod:`repro.phy.scenario` over the same grid.
"""

import json
import os

import numpy as np

from repro.phy.channel import MimoChannel
from repro.phy.modem_ref import run_link
from repro.phy.params import PARAMS_20MHZ_2X2
from repro.phy.scenario import get_scenario, scenario_link
from repro.trace import validate_json

_HERE = os.path.dirname(os.path.abspath(__file__))


def load_reference():
    """The schema-validated link-quality reference gates."""
    with open(os.path.join(_HERE, "link_quality_reference.json")) as fh:
        reference = json.load(fh)
    with open(os.path.join(_HERE, "link_quality.schema.json")) as fh:
        validate_json(reference, json.load(fh))
    return reference


def waterfall_point(snr_db, seeds, n_symbols=2):
    """Seed-averaged BER over the historical multipath channel draw."""
    bers = []
    for seed in seeds:
        chan = MimoChannel(seed=100 + seed)
        _tx, _res, ber = run_link(
            n_symbols=n_symbols, snr_db=snr_db, channel=chan, seed=seed
        )
        bers.append(ber)
    return float(np.mean(bers))


def scenario_point(name, snr_db, seeds, n_symbols=2):
    """Seed-averaged BER for one preset at one SNR."""
    preset = get_scenario(name)
    bers = [
        scenario_link(preset, snr_db=snr_db, seed=seed, n_symbols=n_symbols)[2]
        for seed in seeds
    ]
    return float(np.mean(bers))


def test_ber_waterfall(benchmark, capsys, bench_report):
    reference = load_reference()
    gate = reference["waterfall"]
    seeds = reference["meta"]["seeds"]
    snrs = gate["snr_db"]

    def sweep():
        return [(snr, waterfall_point(snr, seeds)) for snr in snrs]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Link quality: 64-QAM 2x2 over multipath (golden modem) ===")
        print("%8s %10s %10s" % ("SNR dB", "BER", "gate"))
        for (snr, ber), max_ber in zip(rows, gate["max_ber"]):
            print("%8.1f %10.4f %10.4f" % (snr, ber, max_ber))

    bers = [ber for _snr, ber in rows]
    # Per-SNR regression gates from the checked-in reference curve.  The
    # high-SNR point doubles as the sync/equalisation acceptance bar:
    # after the timing/CSD/CFO fixes the uncoded 64-QAM BER at 45 dB is
    # 0.0 over these channel draws (the old defects floored it near 7%).
    for (snr, ber), max_ber in zip(rows, gate["max_ber"]):
        assert ber <= max_ber, "BER %.4f at %.1f dB exceeds gate %.4f" % (
            ber, snr, max_ber,
        )
    assert bers[-1] <= 0.005
    assert bers[0] > gate["min_ber_low_snr"]
    # Monotone waterfall.
    assert all(b1 >= b2 - 1e-9 for b1, b2 in zip(bers, bers[1:]))
    # The rate math behind the 100 Mbps+ title.
    assert PARAMS_20MHZ_2X2.coded_rate_bps > 100e6
    bench_report(
        "link_quality",
        extra={"ber_by_snr_db": {"%.1f" % snr: ber for snr, ber in rows}},
    )


def test_scenario_matrix(benchmark, capsys, bench_report):
    reference = load_reference()
    seeds = reference["meta"]["seeds"]
    scenarios = reference["scenarios"]

    def sweep():
        matrix = {}
        for name in sorted(scenarios):
            snrs = scenarios[name]["snr_db"]
            matrix[name] = [(snr, scenario_point(name, snr, seeds)) for snr in snrs]
        return matrix

    matrix = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Scenario matrix: BER vs SNR per impairment preset ===")
        for name, rows in sorted(matrix.items()):
            print(
                "%-20s %s"
                % (name, "  ".join("%4.1fdB:%.4f" % (snr, ber) for snr, ber in rows))
            )

    failures = []
    for name, rows in matrix.items():
        for (snr, ber), max_ber in zip(rows, scenarios[name]["max_ber"]):
            if ber > max_ber:
                failures.append(
                    "%s at %.1f dB: BER %.4f > gate %.4f" % (name, snr, ber, max_ber)
                )
        bers = [ber for _snr, ber in rows]
        assert all(
            b1 >= b2 - 1e-9 for b1, b2 in zip(bers, bers[1:])
        ), "%s waterfall not monotone: %r" % (name, bers)
    assert not failures, "; ".join(failures)
    bench_report(
        "link_quality_scenarios",
        extra={
            "scenarios": {
                name: {"%.1f" % snr: ber for snr, ber in rows}
                for name, rows in matrix.items()
            }
        },
    )
