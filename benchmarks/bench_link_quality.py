"""Link-quality sweep — the workload the paper's introduction motivates.

Runs the golden (bit-accurate fixed-point + float) modem across an SNR
sweep over the multipath channel and prints the BER waterfall for the
64-QAM 2x2 configuration — the operating regime in which the processor
must deliver its 100 Mbps+.  (Golden models only: the full simulated
receiver covers one operating point in bench_table2; sweeping it is
minutes per point.)
"""

import numpy as np

from repro.phy.channel import MimoChannel
from repro.phy.modem_ref import run_link
from repro.phy.params import PARAMS_20MHZ_2X2


def test_ber_waterfall(benchmark, capsys, bench_report):
    snrs = [10.0, 18.0, 26.0, 34.0, 45.0]

    def sweep():
        rows = []
        for snr in snrs:
            bers = []
            for seed in range(3):
                chan = MimoChannel(seed=100 + seed)
                _tx, _res, ber = run_link(
                    n_symbols=2, snr_db=snr, channel=chan, seed=seed
                )
                bers.append(ber)
            rows.append((snr, float(np.mean(bers))))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Link quality: 64-QAM 2x2 over multipath (golden modem) ===")
        print("%8s %10s" % ("SNR dB", "BER"))
        for snr, ber in rows:
            print("%8.1f %10.4f" % (snr, ber))

    bers = [ber for _snr, ber in rows]
    # Monotone waterfall.  Uncoded 64-QAM over Rayleigh multipath keeps
    # a small error floor on deeply faded carriers even at high SNR —
    # which is exactly why the system carries the rate-5/6 outer code;
    # the pre-FEC BER just has to fall into the code's correctable range.
    assert bers[-1] < 0.08
    assert bers[0] > 0.05
    assert all(b1 >= b2 - 1e-9 for b1, b2 in zip(bers, bers[1:]))
    # The rate math behind the 100 Mbps+ title.
    assert PARAMS_20MHZ_2X2.coded_rate_bps > 100e6
    bench_report(
        "link_quality",
        extra={"ber_by_snr_db": {"%.1f" % snr: ber for snr, ber in rows}},
    )
