"""Headline claims — 25.6 GOPS, 100 Mbps+ throughput, real-time margin.

Regenerates the paper's Section 4 arithmetic from the measured run:
peak GOPS from the architecture, the PHY/coded rate from the numerology
(the title's "100 Mbps+"), preamble latency and the per-symbol-pair
processing-time-vs-airtime comparison.
"""

import pytest

from repro.arch import paper_core
from repro.eval import headline_report
from repro.modem.analysis import realtime_analysis
from repro.phy.params import PARAMS_20MHZ_2X2


def test_headline_claims(benchmark, reference_run, reference_wall_s, capsys, bench_report):
    report = benchmark(realtime_analysis, reference_run.output)
    with capsys.disabled():
        print("\n=== Headline: throughput / real-time (measured vs paper) ===")
        print(headline_report(reference_run))

    arch = paper_core()
    # 16 FUs x 4 lanes x 400 MHz = 25.6 GOPS.
    assert arch.peak_gops_16bit == pytest.approx(25.6)
    # 52 carriers x 6 b x 2 streams / 4 us = 156 Mbps; > 100 Mbps coded.
    assert PARAMS_20MHZ_2X2.phy_rate_bps == pytest.approx(156e6)
    assert report.meets_100mbps
    # The decoded packet is error-free.
    assert reference_run.ber == 0.0
    # Processing shape: the preamble takes longer than its airtime
    # (pipeline latency, like the paper's 15.3 us vs 8 us) while the
    # steady-state data pipeline stays within the same order as the
    # paper's 3.8 us per merged symbol pair.
    assert report.preamble_us > report.preamble_elapsed_us
    assert report.data_pair_us < 4 * report.symbol_pair_elapsed_us
    bench_report(
        "headline_throughput",
        stats=reference_run.output.stats,
        wall_s=reference_wall_s,
        extra={
            "peak_gops_16bit": arch.peak_gops_16bit,
            "preamble_us": report.preamble_us,
            "data_pair_us": report.data_pair_us,
            "meets_100mbps": report.meets_100mbps,
        },
    )
