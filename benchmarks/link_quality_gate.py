#!/usr/bin/env python
"""CI gate: scenario-matrix BER regression check + fabric scenario smoke.

The pytest bench (``bench_link_quality.py``) sweeps the full grid; this
standalone script is the fast CI teeth.  It validates the checked-in
reference curves against ``link_quality.schema.json``, re-measures the
golden modem on the gated operating points (``--quick`` keeps only the
two highest SNRs per scenario) and fails loudly on any BER above its
gate.  Results land in ``BENCH_link_quality.json`` through
``reporting.write_bench_report`` with per-scenario BER extras.

``--fabric-smoke`` additionally serves a seeded mixed-scenario Poisson
stream (``repro.fabric.mixed_scenario_stream``) through a 2-worker
:class:`~repro.fabric.Fabric` and checks the per-scenario accounting
(``repro.fabric.scenario_accounting``): every accepted packet must
complete, the clean baseline packets must decode error-free, and each
impaired scenario must stay under a sanity BER cap for the simulated
tier (whose simpler fixed-point sync is honestly worse than the golden
modem under large CFO — the caps encode that, they do not hide it).

``--measure`` prints the measured matrix as JSON (gates = measured plus
margin are then hand-rounded into ``link_quality_reference.json``).

Run:  PYTHONPATH=src python benchmarks/link_quality_gate.py \\
          [--quick] [--scenarios a,b] [--fabric-smoke] [--packets N] \\
          [--cache DIR] [--out DIR] [--measure]
"""

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

import numpy as np

import reporting
from repro.phy.scenario import get_scenario, scenario_link
from repro.trace import schema_errors

#: Sanity BER caps for the fabric smoke at 45 dB SNR, per scenario.  The
#: fabric workers run the *simulated* fixed-point receiver, not the
#: golden modem; its simpler sync degrades hard on deep fades and large
#: CFO (the golden modem's fixed estimators are not back-ported to the
#: Q15 kernel tiers — their cross-tier bit-identity is pinned by the
#: differential suite).  These are smoke caps — "the serving path
#: decodes and accounts sanely" — not link-quality gates; the real
#: gates run on the golden modem above.
FABRIC_SMOKE_DEFAULT_CAP = 0.45
FABRIC_SMOKE_MAX_BER = {
    "baseline": 0.01,
    "awgn": 0.02,
}


def load_reference():
    with open(os.path.join(_HERE, "link_quality_reference.json")) as fh:
        reference = json.load(fh)
    with open(os.path.join(_HERE, "link_quality.schema.json")) as fh:
        schema = json.load(fh)
    errors = schema_errors(reference, schema)
    if errors:
        raise SystemExit("link_quality_reference.json invalid: " + "; ".join(errors))
    return reference


def measure_matrix(reference, names, quick=False):
    """Seed-averaged golden-modem BER for every gated operating point."""
    seeds = reference["meta"]["seeds"]
    n_symbols = reference["meta"]["n_symbols"]
    matrix = {}
    for name in names:
        entry = reference["scenarios"][name]
        points = list(zip(entry["snr_db"], entry["max_ber"]))
        if quick:
            points = points[-2:]
        preset = get_scenario(name)
        rows = []
        for snr, max_ber in points:
            bers = [
                scenario_link(preset, snr_db=snr, seed=s, n_symbols=n_symbols)[2]
                for s in seeds
            ]
            rows.append((snr, float(np.mean(bers)), max_ber))
        matrix[name] = rows
    return matrix


def check_matrix(matrix):
    failures = []
    for name, rows in sorted(matrix.items()):
        for snr, ber, max_ber in rows:
            status = "ok" if ber <= max_ber else "FAIL"
            print(
                "%-20s %5.1f dB  ber %.4f  gate %.4f  %s"
                % (name, snr, ber, max_ber, status)
            )
            if ber > max_ber:
                failures.append(
                    "%s at %.1f dB: BER %.4f > gate %.4f" % (name, snr, ber, max_ber)
                )
    return failures


def fabric_smoke(args):
    """Mixed-scenario stream through a 2-worker fabric, accounting checked."""
    from repro.fabric import (
        DEFAULT_SCENARIO_MIX,
        Fabric,
        mixed_scenario_stream,
        run_stream,
        scenario_accounting,
        stream_truth,
    )
    from repro.runtime import ModemRuntime

    template = ModemRuntime(cache_dir=args.cache)
    events = list(
        mixed_scenario_stream(
            rate_hz=1e4,
            n_packets=args.packets,
            base_seed=7,
            scenarios=DEFAULT_SCENARIO_MIX,
            snr_choices=(45.0,),
        )
    )
    template.warm_up(events[0].case.rx)
    fab = Fabric(
        workers=2,
        template_runtime=template,
        cache_dir=args.cache,
        queue_depth=max(4, args.packets),
        name="link-quality-smoke",
    )
    with fab:
        offered = run_stream(fab, events)
        results = fab.drain(timeout=600)
    truth = stream_truth(offered)
    accounting = scenario_accounting(results, truth)

    failures = []
    if len(results) != len(truth):
        failures.append(
            "completed %d of %d accepted packets" % (len(results), len(truth))
        )
    for name, bucket in sorted(accounting.items()):
        cap = FABRIC_SMOKE_MAX_BER.get(name, FABRIC_SMOKE_DEFAULT_CAP)
        status = "ok" if bucket["ber"] <= cap and not bucket["errors"] else "FAIL"
        print(
            "fabric %-18s packets %2d  ber %.4f  cap %.2f  errors %d  %s"
            % (name, bucket["packets"], bucket["ber"], cap, bucket["errors"], status)
        )
        if bucket["errors"]:
            failures.append("%s: %d packets errored" % (name, bucket["errors"]))
        if bucket["ber"] > cap:
            failures.append(
                "%s: fabric BER %.4f > smoke cap %.2f" % (name, bucket["ber"], cap)
            )
    return accounting, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="gate only the two highest SNRs per scenario")
    parser.add_argument("--scenarios", default=None, metavar="a,b",
                        help="comma-separated subset (default: all in reference)")
    parser.add_argument("--fabric-smoke", action="store_true",
                        help="also run the mixed-scenario fabric smoke")
    parser.add_argument("--packets", type=int, default=10,
                        help="packets for the fabric smoke (default 10)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="schedule-cache directory for the fabric smoke")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="report directory (default benchmarks/out/)")
    parser.add_argument("--measure", action="store_true",
                        help="print the measured matrix JSON and exit 0")
    args = parser.parse_args(argv)

    clock = reporting.BenchClock()
    reference = load_reference()
    names = sorted(reference["scenarios"])
    if args.scenarios:
        names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
        unknown = [n for n in names if n not in reference["scenarios"]]
        if unknown:
            raise SystemExit("unknown scenarios: %s" % ", ".join(unknown))

    matrix = measure_matrix(reference, names, quick=args.quick and not args.measure)
    if args.measure:
        print(json.dumps(
            {name: {"snr_db": [s for s, _b, _g in rows],
                    "ber": [b for _s, b, _g in rows]}
             for name, rows in matrix.items()},
            indent=1, sort_keys=True,
        ))
        return 0

    failures = check_matrix(matrix)
    extra = {
        "reference_schema": reference["schema"],
        "quick": bool(args.quick),
        "scenarios": {
            name: {"%.1f" % snr: ber for snr, ber, _gate in rows}
            for name, rows in matrix.items()
        },
    }
    if args.fabric_smoke:
        accounting, smoke_failures = fabric_smoke(args)
        failures.extend(smoke_failures)
        extra["fabric"] = accounting

    path = reporting.write_bench_report(
        "link_quality_gate", out_dir=args.out, wall_s=clock.elapsed(), extra=extra
    )
    print("wrote %s" % path)
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures))
        return 1
    print("link-quality gates passed (%d scenarios%s)" % (
        len(names), " + fabric smoke" if args.fabric_smoke else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
