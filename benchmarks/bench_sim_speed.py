#!/usr/bin/env python
"""Simulator speed: host-side simulated cycles per second, per tier.

Times the full reference-modem packet (the paper's profiled MIMO-OFDM
workload) under the interpreter tiers and reports
``host_cycles_per_sec`` — total simulated cycles divided by host wall
seconds.  This is the per-PR trajectory metric of the simulator itself,
separate from the modelled processor's numbers.

The sweep structure:

* the **cold** run (the primary ``wall_s``/``host_cycles_per_sec``)
  uses the decoded tier and includes the modulo-scheduler compile of
  every kernel, exactly what a fresh benchmark session pays;
* a **warm** run per tier (``decoded`` and ``compiled`` always,
  ``reference`` with ``--reference``) repeats the packet with the
  process-wide schedule and codegen caches populated, isolating pure
  simulation speed; per-tier numbers land in ``extra.tiers`` and the
  pairwise ratios in ``extra.speedups``.

Every warm run's cycle count and decoded bits are checked for equality
against the cold run (the bit-exact contract; the exhaustive diff lives
in ``tests/sim/test_differential.py``).

Writes ``BENCH_sim_speed.json`` through ``reporting.write_bench_report``
and validates it against ``bench_report.schema.json``; exit status 0 on
success.

Run:  PYTHONPATH=src python benchmarks/bench_sim_speed.py [--reference]
"""

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

import reporting
from repro.eval import run_reference_modem
from repro.trace import schema_errors


def timed_run(interpreter):
    t0 = time.perf_counter()
    run = run_reference_modem(seed=42, cfo_hz=50e3, snr_db=None, interpreter=interpreter)
    wall = time.perf_counter() - t0
    return run, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reference",
        action="store_true",
        help="include the (slow) reference interpreter in the warm sweep",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="report directory (default benchmarks/out)"
    )
    args = parser.parse_args(argv)

    run, wall = timed_run("decoded")
    stats = run.output.stats
    cps = stats.total_cycles / wall
    print(
        "decoded (cold, incl. compile): %d cycles in %.2fs -> %.0f cycles/s (ber=%g)"
        % (stats.total_cycles, wall, cps, run.ber)
    )

    tier_names = ["decoded", "compiled"]
    if args.reference:
        tier_names.append("reference")
    tiers = {}
    for tier in tier_names:
        # Prime the tier's process-wide caches (codegen for "compiled";
        # decoded/schedule already warm from the cold run) so the timed
        # run measures steady-state simulation only.
        timed_run(tier)
        warm, warm_wall = timed_run(tier)
        warm_cps = warm.output.stats.total_cycles / warm_wall
        print("%s (warm): %.3fs -> %.0f cycles/s" % (tier, warm_wall, warm_cps))
        if warm.output.stats.total_cycles != stats.total_cycles:
            print(
                "FAIL: cycle counts differ (%s tier vs cold decoded)" % tier,
                file=sys.stderr,
            )
            return 1
        if list(warm.output.bits) != list(run.output.bits):
            print(
                "FAIL: decoded bits differ (%s tier vs cold decoded)" % tier,
                file=sys.stderr,
            )
            return 1
        tiers[tier] = {
            "warm_wall_s": round(warm_wall, 6),
            "warm_host_cycles_per_sec": round(warm_cps, 3),
        }

    speedups = {}
    for num, den in (
        ("compiled", "decoded"),
        ("decoded", "reference"),
        ("compiled", "reference"),
    ):
        if num in tiers and den in tiers:
            ratio = (
                tiers[num]["warm_host_cycles_per_sec"]
                / tiers[den]["warm_host_cycles_per_sec"]
            )
            speedups["%s_vs_%s" % (num, den)] = round(ratio, 3)
            print("warm %s/%s speedup: %.2fx" % (num, den, ratio))

    extra = {
        "interpreter": "decoded",
        "ber": run.ber,
        # Back-compat fields: the decoded tier's warm numbers.
        "warm_wall_s": tiers["decoded"]["warm_wall_s"],
        "warm_host_cycles_per_sec": tiers["decoded"]["warm_host_cycles_per_sec"],
        "tiers": tiers,
        "speedups": speedups,
    }

    path = reporting.write_bench_report(
        "sim_speed", out_dir=args.out, wall_s=wall, stats=stats, extra=extra
    )
    with open(path) as fh:
        report = json.load(fh)
    with open(os.path.join(_HERE, "bench_report.schema.json")) as fh:
        schema = json.load(fh)
    errors = schema_errors(report, schema)
    if errors:
        print("FAIL: %s violates bench_report.schema.json:" % path, file=sys.stderr)
        for err in errors:
            print("  " + err, file=sys.stderr)
        return 1
    if report["host_cycles_per_sec"] is None or report["host_cycles_per_sec"] <= 0:
        print("FAIL: missing host_cycles_per_sec", file=sys.stderr)
        return 1
    print("wrote %s (schema ok)" % path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
