#!/usr/bin/env python
"""Simulator speed: host-side simulated cycles per second, per tier.

Times the full reference-modem packet (the paper's profiled MIMO-OFDM
workload) under the interpreter tiers and reports
``host_cycles_per_sec`` — total simulated cycles divided by host wall
seconds.  This is the per-PR trajectory metric of the simulator itself,
separate from the modelled processor's numbers.

The sweep structure:

* the **cold** run (the primary ``wall_s``/``host_cycles_per_sec``)
  uses the decoded tier and includes the modulo-scheduler compile of
  every kernel, exactly what a fresh benchmark session pays;
* a **warm** run per tier (``decoded`` and ``compiled`` always,
  ``reference`` with ``--reference``) repeats the packet with the
  process-wide schedule and codegen caches populated, isolating pure
  simulation speed (best wall of three timed repetitions); per-tier
  numbers land in ``extra.tiers`` and the pairwise ratios in
  ``extra.speedups``;
* a **batched** run per width B in {1, 4, 16}: a resident
  :class:`~repro.runtime.BatchedModemRuntime` processes B copies of the
  packet per ``run_batch`` call (tier keys ``batched_b<B>``, throughput
  normalised per packet).  ``--min-batched-speedup`` gates the best
  batched tier against the per-packet compiled tier — the CI regression
  gate for the cross-packet batching work.

Every warm run's cycle count and decoded bits are checked for equality
against the cold run (the bit-exact contract; the exhaustive diff lives
in ``tests/sim/test_differential.py``).

Writes ``BENCH_sim_speed.json`` through ``reporting.write_bench_report``
and validates it against ``bench_report.schema.json``; exit status 0 on
success.

Run:  PYTHONPATH=src python benchmarks/bench_sim_speed.py [--reference]
"""

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

import reporting
from repro.eval import run_reference_modem
from repro.runtime import BatchedModemRuntime, make_packet
from repro.trace import schema_errors

#: Batch widths swept by the batched compiled tier.
BATCH_WIDTHS = (1, 4, 16)


def timed_run(interpreter):
    t0 = time.perf_counter()
    run = run_reference_modem(seed=42, cfo_hz=50e3, snr_db=None, interpreter=interpreter)
    wall = time.perf_counter() - t0
    return run, wall


def timed_batched_run(batch):
    """Warm, resident batched run: B copies of the packet per call.

    The first ``run_batch`` primes the resident structures (lane cores,
    batch functions, linked programs); the timed calls measure the
    steady serving state the fabric's batch-drain mode reaches (best of
    three repetitions, like the per-packet tiers, to ride out scheduler
    noise on shared runners).
    """
    case = make_packet(42, cfo_hz=50e3)
    runtime = BatchedModemRuntime(batch=batch)
    packets = [case.rx] * batch
    runtime.run_batch(packets)
    wall = None
    for _ in range(3):
        t0 = time.perf_counter()
        outputs = runtime.run_batch(packets)
        rep = time.perf_counter() - t0
        wall = rep if wall is None else min(wall, rep)
    return runtime, outputs, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reference",
        action="store_true",
        help="include the (slow) reference interpreter in the warm sweep",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="report directory (default benchmarks/out)"
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=0.0,
        metavar="X",
        help="fail unless the best batched tier is at least X times the "
        "warm per-packet compiled tier (0 disables the gate)",
    )
    args = parser.parse_args(argv)

    run, wall = timed_run("decoded")
    stats = run.output.stats
    cps = stats.total_cycles / wall
    print(
        "decoded (cold, incl. compile): %d cycles in %.2fs -> %.0f cycles/s (ber=%g)"
        % (stats.total_cycles, wall, cps, run.ber)
    )

    tier_names = ["decoded", "compiled"]
    if args.reference:
        tier_names.append("reference")
    tiers = {}
    for tier in tier_names:
        # Prime the tier's process-wide caches (codegen for "compiled";
        # decoded/schedule already warm from the cold run) so the timed
        # runs measure steady-state simulation only; best of three
        # repetitions rides out scheduler noise on shared runners.
        timed_run(tier)
        warm, warm_wall = timed_run(tier)
        for _ in range(2):
            warm2, wall2 = timed_run(tier)
            if wall2 < warm_wall:
                warm, warm_wall = warm2, wall2
        warm_cps = warm.output.stats.total_cycles / warm_wall
        print("%s (warm): %.3fs -> %.0f cycles/s" % (tier, warm_wall, warm_cps))
        if warm.output.stats.total_cycles != stats.total_cycles:
            print(
                "FAIL: cycle counts differ (%s tier vs cold decoded)" % tier,
                file=sys.stderr,
            )
            return 1
        if list(warm.output.bits) != list(run.output.bits):
            print(
                "FAIL: decoded bits differ (%s tier vs cold decoded)" % tier,
                file=sys.stderr,
            )
            return 1
        tiers[tier] = {
            "warm_wall_s": round(warm_wall, 6),
            "warm_host_cycles_per_sec": round(warm_cps, 3),
        }

    # Batched compiled tier: one resident runtime per width, the same
    # bit-exact contract as the per-packet tiers for every lane.
    for b in BATCH_WIDTHS:
        runtime, outputs, wall_b = timed_batched_run(b)
        cycles_b = sum(out.stats.total_cycles for out in outputs)
        cps_b = cycles_b / wall_b
        print(
            "batched B=%d (warm): %.3fs (%.3fs/pkt) -> %.0f cycles/s"
            % (b, wall_b, wall_b / b, cps_b)
        )
        for out in outputs:
            if out.stats.total_cycles != stats.total_cycles:
                print(
                    "FAIL: cycle counts differ (batched B=%d vs cold decoded)" % b,
                    file=sys.stderr,
                )
                return 1
            if list(out.bits) != list(run.output.bits):
                print(
                    "FAIL: decoded bits differ (batched B=%d vs cold decoded)" % b,
                    file=sys.stderr,
                )
                return 1
        if runtime.fallbacks:
            print(
                "FAIL: batched B=%d needed %d per-packet fallbacks on a "
                "uniform batch" % (b, runtime.fallbacks),
                file=sys.stderr,
            )
            return 1
        tiers["batched_b%d" % b] = {
            "warm_wall_s": round(wall_b, 6),
            "warm_wall_s_per_packet": round(wall_b / b, 6),
            "warm_host_cycles_per_sec": round(cps_b, 3),
            "batch": b,
        }

    speedups = {}
    for num, den in [
        ("compiled", "decoded"),
        ("decoded", "reference"),
        ("compiled", "reference"),
    ] + [("batched_b%d" % b, "compiled") for b in BATCH_WIDTHS]:
        if num in tiers and den in tiers:
            ratio = (
                tiers[num]["warm_host_cycles_per_sec"]
                / tiers[den]["warm_host_cycles_per_sec"]
            )
            speedups["%s_vs_%s" % (num, den)] = round(ratio, 3)
            print("warm %s/%s speedup: %.2fx" % (num, den, ratio))

    if args.min_batched_speedup > 0:
        best = max(
            speedups["batched_b%d_vs_compiled" % b] for b in BATCH_WIDTHS
        )
        if best < args.min_batched_speedup:
            print(
                "FAIL: best batched/compiled speedup %.2fx < required %.2fx"
                % (best, args.min_batched_speedup),
                file=sys.stderr,
            )
            return 1
        print(
            "batched gate ok: best batched/compiled speedup %.2fx >= %.2fx"
            % (best, args.min_batched_speedup)
        )

    extra = {
        "interpreter": "decoded",
        "ber": run.ber,
        # Back-compat fields: the decoded tier's warm numbers.
        "warm_wall_s": tiers["decoded"]["warm_wall_s"],
        "warm_host_cycles_per_sec": tiers["decoded"]["warm_host_cycles_per_sec"],
        "tiers": tiers,
        "speedups": speedups,
    }

    path = reporting.write_bench_report(
        "sim_speed", out_dir=args.out, wall_s=wall, stats=stats, extra=extra
    )
    with open(path) as fh:
        report = json.load(fh)
    with open(os.path.join(_HERE, "bench_report.schema.json")) as fh:
        schema = json.load(fh)
    errors = schema_errors(report, schema)
    if errors:
        print("FAIL: %s violates bench_report.schema.json:" % path, file=sys.stderr)
        for err in errors:
            print("  " + err, file=sys.stderr)
        return 1
    if report["host_cycles_per_sec"] is None or report["host_cycles_per_sec"] <= 0:
        print("FAIL: missing host_cycles_per_sec", file=sys.stderr)
        return 1
    print("wrote %s (schema ok)" % path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
