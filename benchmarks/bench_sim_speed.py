#!/usr/bin/env python
"""Simulator speed: host-side simulated cycles per second.

Times the full reference-modem packet (the paper's profiled MIMO-OFDM
workload) under the decoded fast-path interpreter and reports
``host_cycles_per_sec`` — total simulated cycles divided by host wall
seconds.  This is the per-PR trajectory metric of the simulator itself,
separate from the modelled processor's numbers.

Two numbers are measured, because the workload has two cost centres:

* the **cold** run (the primary ``wall_s``/``host_cycles_per_sec``)
  includes the modulo-scheduler compile of every kernel, exactly what a
  fresh benchmark session pays;
* the **warm** run repeats the packet with the process-wide schedule
  cache populated, isolating pure simulation speed
  (``extra.warm_host_cycles_per_sec``).

With ``--reference`` the same warm packet also runs under the reference
interpreter, the warm decoded/reference speedup lands in ``extra`` and
the two runs' cycle counts and decoded bits are checked for equality
(the bit-exact contract; the exhaustive diff lives in
``tests/sim/test_differential.py``).

Writes ``BENCH_sim_speed.json`` through ``reporting.write_bench_report``
and validates it against ``bench_report.schema.json``; exit status 0 on
success.

Run:  PYTHONPATH=src python benchmarks/bench_sim_speed.py [--reference]
"""

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

import reporting
from repro.eval import run_reference_modem
from repro.trace import schema_errors


def timed_run(interpreter):
    t0 = time.perf_counter()
    run = run_reference_modem(seed=42, cfo_hz=50e3, snr_db=None, interpreter=interpreter)
    wall = time.perf_counter() - t0
    return run, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reference",
        action="store_true",
        help="also time the reference interpreter and report the speedup",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="report directory (default benchmarks/out)"
    )
    args = parser.parse_args(argv)

    run, wall = timed_run("decoded")
    stats = run.output.stats
    cps = stats.total_cycles / wall
    print(
        "decoded (cold, incl. compile): %d cycles in %.2fs -> %.0f cycles/s (ber=%g)"
        % (stats.total_cycles, wall, cps, run.ber)
    )
    warm, warm_wall = timed_run("decoded")
    warm_cps = warm.output.stats.total_cycles / warm_wall
    print(
        "decoded (warm schedule cache): %.3fs -> %.0f cycles/s" % (warm_wall, warm_cps)
    )
    extra = {
        "interpreter": "decoded",
        "ber": run.ber,
        "warm_wall_s": round(warm_wall, 6),
        "warm_host_cycles_per_sec": round(warm_cps, 3),
    }

    if args.reference:
        ref, ref_wall = timed_run("reference")
        ref_cps = ref.output.stats.total_cycles / ref_wall
        print(
            "reference (warm): %d cycles in %.3fs -> %.0f cycles/s"
            % (ref.output.stats.total_cycles, ref_wall, ref_cps)
        )
        if ref.output.stats.total_cycles != stats.total_cycles:
            print("FAIL: cycle counts differ between interpreters", file=sys.stderr)
            return 1
        if list(ref.output.bits) != list(run.output.bits):
            print("FAIL: decoded bits differ between interpreters", file=sys.stderr)
            return 1
        extra["reference_wall_s"] = round(ref_wall, 6)
        extra["reference_host_cycles_per_sec"] = round(ref_cps, 3)
        extra["speedup_vs_reference"] = round(warm_cps / ref_cps, 3)
        print("warm decoded/reference speedup: %.2fx" % (warm_cps / ref_cps))

    path = reporting.write_bench_report(
        "sim_speed", out_dir=args.out, wall_s=wall, stats=stats, extra=extra
    )
    with open(path) as fh:
        report = json.load(fh)
    with open(os.path.join(_HERE, "bench_report.schema.json")) as fh:
        schema = json.load(fh)
    errors = schema_errors(report, schema)
    if errors:
        print("FAIL: %s violates bench_report.schema.json:" % path, file=sys.stderr)
        for err in errors:
            print("  " + err, file=sys.stderr)
        return 1
    if report["host_cycles_per_sec"] is None or report["host_cycles_per_sec"] <= 0:
        print("FAIL: missing host_cycles_per_sec", file=sys.stderr)
        return 1
    print("wrote %s (schema ok)" % path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
