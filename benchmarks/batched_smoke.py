#!/usr/bin/env python
"""Batch-drain serving smoke: a batched fabric on the shared cache dir.

Serves one same-shape packet burst through a 2-worker
:class:`~repro.fabric.Fabric` in batch-drain mode (``batch`` > 1), with
every worker forked from a warm :class:`~repro.runtime.BatchedModemRuntime`
template on the shared schedule/codegen cache directory, and asserts:

* **zero compiles at worker spin-up** — ``spinup_schedule_misses`` and
  ``spinup_codegen_compilations`` are 0 for every worker (the parent
  template paid them once; the fork plus disk cache covers the rest);
* **coalescing actually happened** — at least one worker served more
  batched tasks than dispatches, and the per-worker occupancy gauge is
  present in ``/metrics``-style exposition (``repro_fabric_worker_batch_occupancy``);
* **bit-identity vs serial** — every fabric result (bits, detect
  position, stats, memory image) equals the same packet run through a
  warm per-packet compiled :class:`~repro.runtime.ModemRuntime`.

Run it twice against the same ``--cache`` directory (as CI does) and the
second run also proves the disk-warm start: the parent template links
every region from disk without scheduling or re-emitting code.

Writes ``BENCH_batched_smoke.json`` through ``reporting.write_bench_report``
and validates it against ``bench_report.schema.json``; exit status 0 on
success.

Run:  PYTHONPATH=src python benchmarks/batched_smoke.py \\
          [--packets N] [--batch B] [--cache DIR] [--out DIR]
"""

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

import numpy as np

import reporting
from repro.compiler.linker import schedule_cache_stats
from repro.fabric import Fabric
from repro.obs.prom import lint_exposition
from repro.runtime import BatchedModemRuntime, ModemRuntime, generate_packets
from repro.sim import codegen
from repro.sim.stats import ActivityStats
from repro.trace import schema_errors


def _identical(fabric_out, serial_out) -> bool:
    return (
        list(fabric_out.bits) == list(serial_out.bits)
        and fabric_out.detect_pos == serial_out.detect_pos
        and fabric_out.stats == serial_out.stats
        and fabric_out.image == serial_out.image
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--packets", type=int, default=8, metavar="N", help="burst size (default 8)"
    )
    parser.add_argument(
        "--batch", type=int, default=4, metavar="B",
        help="batch-drain width (default 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="fabric worker count (default 2)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="shared schedule/codegen cache directory "
        "(default $REPRO_SCHEDULE_CACHE)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="report directory (default benchmarks/out)",
    )
    parser.add_argument("--seed", type=int, default=42, help="base packet seed")
    args = parser.parse_args(argv)
    if args.packets < 1:
        parser.error("--packets must be >= 1")
    if args.batch < 2:
        parser.error("--batch must be >= 2 (batch-drain mode)")

    cases = generate_packets(args.packets, base_seed=args.seed, cfo_hz=50e3)

    # Serial reference: the warm per-packet compiled tier.
    serial = ModemRuntime(cache_dir=args.cache, interpreter="compiled")
    serial.warm_up(cases[0].rx)
    serial_outputs = [serial.run_packet(case.rx) for case in cases]
    bers = [
        float(np.mean(out.bits != case.bits))
        for out, case in zip(serial_outputs, cases)
    ]
    if any(ber != 0.0 for ber in bers):
        print("FAIL: nonzero serial BER on clean channel: %r" % bers, file=sys.stderr)
        return 1

    # Warm batched template: pays (or loads from disk) every schedule
    # and codegen compile before any worker forks.
    compiles_before = codegen.codegen_stats()["compilations"]
    template = BatchedModemRuntime(batch=args.batch, cache_dir=args.cache)
    t0 = time.perf_counter()
    template.run_batch([case.rx for case in cases[: args.batch]])
    warmup_wall = time.perf_counter() - t0
    warmup_compiles = codegen.codegen_stats()["compilations"] - compiles_before
    print(
        "template warm-up: %.2fs, %d codegen compilations this process "
        "(schedule cache: %s)"
        % (warmup_wall, warmup_compiles, schedule_cache_stats())
    )

    fab = Fabric(
        workers=args.workers,
        batch=args.batch,
        template_runtime=template,
        cache_dir=args.cache,
        queue_depth=max(4, args.packets),
        name="batched-smoke",
    )
    with fab:
        t0 = time.perf_counter()
        outcomes = fab.offer_many([case.rx for case in cases])
        ids = [outcome.task_id for outcome in outcomes]
        if any(task_id is None for task_id in ids):
            print("FAIL: burst was shed under block backpressure", file=sys.stderr)
            return 1
        results = fab.drain(timeout=600)
        wall = time.perf_counter() - t0
        report = fab.report()
        metrics = fab.metrics_text()

    bit_identical = True
    for task_id, serial_out in zip(ids, serial_outputs):
        if not _identical(results[task_id], serial_out):
            bit_identical = False
            print(
                "FAIL: task %d differs from the serial compiled run" % task_id,
                file=sys.stderr,
            )
    if not bit_identical:
        return 1

    misses = sum(w["spinup_schedule_misses"] or 0 for w in report["per_worker"])
    compiles = sum(
        w["spinup_codegen_compilations"] or 0 for w in report["per_worker"]
    )
    if misses or compiles:
        print(
            "FAIL: warm-start workers compiled (schedule misses %d, codegen "
            "compilations %d)" % (misses, compiles),
            file=sys.stderr,
        )
        return 1
    if not all(w["spinup_batched"] for w in report["per_worker"]):
        print("FAIL: a worker spun up without batch support", file=sys.stderr)
        return 1

    batches = sum(w["batches"] or 0 for w in report["per_worker"])
    batched_tasks = sum(w["batched_tasks"] or 0 for w in report["per_worker"])
    if batched_tasks != len(cases):
        print(
            "FAIL: dispatched %d tasks through batch-drain, expected %d"
            % (batched_tasks, len(cases)),
            file=sys.stderr,
        )
        return 1
    if not any(
        (w["batched_tasks"] or 0) > (w["batches"] or 0)
        for w in report["per_worker"]
    ):
        print(
            "FAIL: no worker ever coalesced a dispatch (batches == tasks)",
            file=sys.stderr,
        )
        return 1
    problems = lint_exposition(metrics)
    if problems:
        print("FAIL: /metrics lint: %r" % problems, file=sys.stderr)
        return 1
    if "repro_fabric_worker_batch_occupancy" not in metrics:
        print("FAIL: batch occupancy gauge missing from /metrics", file=sys.stderr)
        return 1

    occupancy = batched_tasks / (batches * args.batch) if batches else 0.0
    pps = len(cases) / wall
    print(
        "batch-drain fabric: %d packets in %.2fs -> %.2f packets/s "
        "(%d dispatches, occupancy %.2f, zero warm-start compiles)"
        % (len(cases), wall, pps, batches, occupancy)
    )

    merged = ActivityStats()
    for out in serial_outputs:
        merged.merge(out.stats)
    extra = {
        "packets": len(cases),
        "batch": args.batch,
        "workers": args.workers,
        "cache_dir": args.cache,
        "bit_identical": bit_identical,
        "packets_per_sec": round(pps, 3),
        "dispatches": batches,
        "batch_occupancy": round(occupancy, 4),
        "spinup_schedule_misses": misses,
        "spinup_codegen_compilations": compiles,
        "template_warmup_s": round(warmup_wall, 6),
        "template_codegen_compilations": warmup_compiles,
    }
    path = reporting.write_bench_report(
        "batched_smoke", out_dir=args.out, wall_s=wall, stats=merged, extra=extra
    )
    with open(path) as fh:
        written = json.load(fh)
    with open(os.path.join(_HERE, "bench_report.schema.json")) as fh:
        schema = json.load(fh)
    errors = schema_errors(written, schema)
    if errors:
        print("FAIL: %s violates bench_report.schema.json:" % path, file=sys.stderr)
        for err in errors:
            print("  " + err, file=sys.stderr)
        return 1
    print("wrote %s (schema ok)" % path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
