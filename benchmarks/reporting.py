"""Uniform benchmark result files: one JSON per bench, one format.

Every ``bench_*.py`` writes its result through :func:`write_bench_report`
so per-PR trajectories stay machine-comparable: the commit that produced
the number, the wall time, the simulated cycle counts and the per-cause
stall breakdown all land in ``BENCH_<name>.json`` under the output
directory (``--trace-out`` when given, else ``$REPRO_BENCH_OUT``, else
``benchmarks/out/``).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from datetime import datetime, timezone
from typing import Optional

# Shared latency math (nearest-rank percentiles) lives with the fabric
# report code; every bench runs with src/ on the path, so re-exporting it
# here keeps one implementation for benches and the serving layer alike.
from repro.fabric.report import latency_percentiles, latency_summary, percentile

__all__ = [
    "BENCH_REPORT_SCHEMA",
    "BenchClock",
    "build_bench_report",
    "default_out_dir",
    "git_commit",
    "latency_percentiles",
    "latency_summary",
    "percentile",
    "write_bench_report",
]

#: Format identifier embedded in every benchmark report.  v2 added the
#: batched compiled tier to ``extra.tiers`` (``batch`` width and
#: ``warm_wall_s_per_packet`` per batched entry in ``bench_sim_speed``).
BENCH_REPORT_SCHEMA = "repro.bench_report/v2"

_HERE = os.path.dirname(os.path.abspath(__file__))


def default_out_dir() -> str:
    """Where reports land when no ``--trace-out`` was given."""
    return os.environ.get("REPRO_BENCH_OUT") or os.path.join(_HERE, "out")


def git_commit() -> Optional[str]:
    """The current commit hash, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_HERE,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def build_bench_report(
    name: str,
    wall_s: Optional[float] = None,
    stats=None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble the uniform benchmark-report dict.

    *stats* is duck-typed (``total_cycles``, ``stall_cycles``,
    ``stall_breakdown()`` — an :class:`~repro.sim.stats.ActivityStats`);
    benches without a simulated run leave it ``None``.

    ``host_cycles_per_sec`` — simulated cycles retired per host-side
    wall second — is derived whenever both a wall time and a cycle count
    are known; it is the simulator-speed trajectory tracked across PRs
    (see ``bench_sim_speed.py``).
    """
    report = {
        "schema": BENCH_REPORT_SCHEMA,
        "name": name,
        "commit": git_commit(),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "wall_s": round(wall_s, 6) if wall_s is not None else None,
        "cycles": None,
        "stall_cycles": None,
        "stall_breakdown": {},
        "host_cycles_per_sec": None,
    }
    if stats is not None:
        report["cycles"] = int(stats.total_cycles)
        report["stall_cycles"] = int(stats.stall_cycles)
        report["stall_breakdown"] = {
            cause: int(cycles) for cause, cycles in stats.stall_breakdown().items()
        }
        if wall_s:
            report["host_cycles_per_sec"] = round(int(stats.total_cycles) / wall_s, 3)
    if extra:
        report["extra"] = dict(extra)
    return report


def write_bench_report(
    name: str,
    out_dir: Optional[str] = None,
    wall_s: Optional[float] = None,
    stats=None,
    extra: Optional[dict] = None,
) -> str:
    """Write ``BENCH_<name>.json`` into *out_dir*; returns the path."""
    out_dir = out_dir or default_out_dir()
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_%s.json" % name)
    with open(path, "w") as fh:
        json.dump(build_bench_report(name, wall_s, stats, extra), fh, indent=1)
        fh.write("\n")
    return path


class BenchClock:
    """Wall-clock for one bench: started at fixture setup."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0
