"""Ablation — interconnect density vs schedule quality (DESIGN.md hook).

Not a paper table; this regenerates the design-space evidence behind the
paper's "densely interconnected" choice: on a plain nearest-neighbour
mesh the modulo scheduler needs more routing moves and settles at higher
initiation intervals, while an all-to-all fabric buys little over the
paper's mesh-plus at measurable area cost.
"""


from repro.arch import paper_core
from repro.arch.topology import full_topology, mesh_topology
from repro.compiler import ModuloScheduler
from repro.kernels.fshift import build_fshift_dfg
from repro.kernels.sdm import build_sdm_dfg
from repro.power import estimate_area


def _schedule(arch, build, live_ins):
    return ModuloScheduler(build(), arch).schedule(
        live_in_regs=live_ins, trip_count=8
    )


def test_interconnect_ablation(benchmark, capsys, bench_report):
    variants = {
        "mesh": paper_core(name="abl-mesh", interconnect=mesh_topology(4, 4)),
        "mesh+ (paper)": paper_core(name="abl-mesh+"),
        "all-to-all": paper_core(
            name="abl-full", interconnect=full_topology(16)
        ),
    }
    kernels = [
        ("fshift", build_fshift_dfg, {"src": 60, "dst": 61, "tab": 62}),
        ("sdm", build_sdm_dfg, {"ybase": 60, "wbase": 61, "xbase": 62}),
    ]
    results = {}
    for vname, arch in variants.items():
        for kname, build, live_ins in kernels:
            results[(vname, kname)] = _schedule(arch, build, live_ins)
    benchmark(lambda: _schedule(variants["mesh+ (paper)"], *kernels[0][1:]))

    with capsys.disabled():
        print("\n=== Ablation: interconnect density vs schedule quality ===")
        print("%-15s %-8s %4s %4s %6s %10s" % ("fabric", "kernel", "MII", "II", "moves", "area mm^2"))
        for vname, arch in variants.items():
            area = estimate_area(arch).total_mm2
            for kname, _b, _l in kernels:
                r = results[(vname, kname)]
                print(
                    "%-15s %-8s %4d %4d %6d %10.2f"
                    % (vname, kname, r.mii, r.ii, r.n_moves, area)
                )

    # The paper's fabric must never lose to the sparse mesh, and the
    # all-to-all fabric must never beat it by much while costing area.
    for kname, _b, _l in kernels:
        mesh = results[("mesh", kname)]
        dense = results[("mesh+ (paper)", kname)]
        full = results[("all-to-all", kname)]
        assert dense.ii <= mesh.ii
        assert dense.n_moves <= mesh.n_moves
        assert full.ii <= dense.ii
    assert (
        estimate_area(variants["all-to-all"]).total_mm2
        > estimate_area(variants["mesh+ (paper)"]).total_mm2
    )
    bench_report(
        "ablation_interconnect",
        extra={
            "%s/%s" % (vname, kname): {"mii": r.mii, "ii": r.ii, "moves": r.n_moves}
            for (vname, kname), r in results.items()
        },
    )
