#!/usr/bin/env python
"""Networked-ingest smoke: chaos UDP stream, bit-identity, accounting.

Generates a mixed-scenario stream of real waveforms, sends it over
loopback UDP with injected datagram reordering and drops, reassembles it
through an :class:`~repro.ingest.IngestServer` into a 2-worker fabric,
and checks:

* every packet the sender delivered intact comes out **bit-identical**
  to an in-process :func:`~repro.fabric.run_stream` baseline over the
  same (codec-roundtripped) waveforms;
* exactly-once accounting balances — every sent packet lands in exactly
  one of released / gaps / incomplete / corrupt, every released packet
  in submitted or shed, nothing left buffered;
* the live ``/metrics`` scrape passes
  :func:`~repro.obs.lint_exposition` and carries the ``repro_ingest_*``
  families.

A cheap digest runner stands in for the modem (transport bit-identity
is about the bytes, not the decode — ``tests/ingest`` pins the real
modem path).  Exit status 0 on success — this is the CI
``ingest-smoke`` gate.

Run:  PYTHONPATH=src python benchmarks/ingest_smoke.py [--packets 200]
"""

import argparse
import os
import sys
import urllib.request
from dataclasses import replace

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))

from repro.fabric import Fabric, mixed_scenario_stream, run_stream
from repro.ingest import IngestServer, iq_roundtrip, send_stream
from repro.obs import lint_exposition

#: Metric families the scrape must carry (prefixed repro_ingest_).
_REQUIRED_FAMILIES = (
    "repro_ingest_listener_alive",
    "repro_ingest_datagrams",
    "repro_ingest_received",
    "repro_ingest_reassembled",
    "repro_ingest_released",
    "repro_ingest_submitted",
)

_STREAM_ID = 7


class _DigestRunner:
    """Deterministic digest of the delivered rx bytes (picklable)."""

    def run_packet(self, rx, n_symbols=2, detect_hint=None):
        return {"digest": rx.tobytes(), "n": int(rx.shape[1])}


def _digest_factory():
    return _DigestRunner()


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=200, help="stream length")
    parser.add_argument(
        "--reorder", type=float, default=0.05, help="datagram reorder probability"
    )
    parser.add_argument(
        "--drop", type=float, default=0.02, help="datagram drop probability"
    )
    parser.add_argument("--seed", type=int, default=13, help="chaos seed")
    args = parser.parse_args(argv)

    events = list(
        mixed_scenario_stream(rate_hz=1e6, n_packets=args.packets, base_seed=21)
    )
    waves = [ev.case.rx for ev in events]
    print("generated %d mixed-scenario packets" % len(waves))

    # In-process baseline: the same stream, codec-roundtripped exactly as
    # the wire delivers it, through run_stream into an identical fabric.
    roundtripped = [
        replace(ev.case, rx=iq_roundtrip(ev.case.rx, "c64")) for ev in events
    ]
    baseline_events = [
        replace(ev, case=case) for ev, case in zip(events, roundtripped)
    ]
    baseline_fab = Fabric(workers=2, runner_factory=_digest_factory, queue_depth=16)
    with baseline_fab:
        offered = run_stream(baseline_fab, baseline_events)
        baseline_results = baseline_fab.drain(timeout=600)
    baseline_digest = {
        ev.seq: baseline_results[task_id]["digest"] for task_id, ev in offered
    }

    failures = []
    fab = Fabric(
        workers=2,
        runner_factory=_digest_factory,
        queue_depth=16,
        name="ingest-smoke",
        obs_port=0,
    )
    with fab:
        with IngestServer(fab, udp_port=0, window=64) as server:
            report = send_stream(
                waves,
                udp=server.udp_address,
                stream_id=_STREAM_ID,
                dtype="c64",
                reorder=args.reorder,
                drop=args.drop,
                seed=args.seed,
            )
            results = server.drain(timeout=600)

            url = fab.obs_url
            print("telemetry at %s" % url)
            status, page = _get(url + "/metrics")
            if status != 200:
                failures.append("/metrics returned HTTP %d" % status)
            problems = lint_exposition(page)
            if problems:
                failures.append("exposition lint: %s" % problems)
            for family in _REQUIRED_FAMILIES:
                if family not in page:
                    failures.append("/metrics missing family %s" % family)
            sample = 'repro_ingest_released{stream="%d"}' % _STREAM_ID
            if sample not in page:
                failures.append("/metrics missing per-stream sample %s" % sample)

        # Bit-identity: exactly the intact packets arrive, and each one
        # matches the in-process baseline digest byte for byte.
        delivered = {
            seq: results[task_id]["digest"]
            for (_, seq), task_id in server.submissions().items()
        }
        intact = set(report.intact_seqs)
        if set(delivered) != intact:
            failures.append(
                "delivered %d packets, sender delivered %d intact (missing %r, extra %r)"
                % (
                    len(delivered),
                    len(intact),
                    sorted(intact - set(delivered))[:5],
                    sorted(set(delivered) - intact)[:5],
                )
            )
        mismatched = [
            seq for seq in sorted(set(delivered) & intact)
            if delivered[seq] != baseline_digest[seq]
        ]
        if mismatched:
            failures.append(
                "%d packets differ from the run_stream baseline (first: %r)"
                % (len(mismatched), mismatched[:5])
            )

        problems = server.accounting_problems({_STREAM_ID: report.n_packets})
        if problems:
            failures.append("accounting: %s" % problems)
        view = fab.report()["ingest"]["streams"][str(_STREAM_ID)]

    if failures:
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        return 1
    print(
        "ingest smoke ok: %d/%d packets delivered bit-identical "
        "(%d datagrams dropped, %d reordered; gaps=%d incomplete=%d), "
        "scrape clean"
        % (
            len(delivered),
            report.n_packets,
            report.dropped,
            report.reordered,
            view["gaps"],
            view["incomplete"],
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
