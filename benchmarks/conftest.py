"""Shared fixtures for the benchmark harness.

The reference modem run (the paper's profiled MIMO-OFDM execution) takes
a couple of minutes of simulation; it is produced once per session and
shared by every table/figure bench.

``--trace-out DIR`` traces that run: DIR receives the Chrome/Perfetto
``trace.json``, the schema-validated ``run_report.json`` and every
bench's ``BENCH_<name>.json`` (which otherwise land in
``benchmarks/out/``).
"""

import json
import os

import pytest

import reporting
from repro.eval import run_reference_modem
from repro.trace import (
    Tracer,
    build_receiver_report,
    save_run_report,
    validate_json,
    write_chrome_trace,
)

_HERE = os.path.dirname(os.path.abspath(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out",
        action="store",
        default=None,
        metavar="DIR",
        help="trace the reference modem run and write trace.json, "
        "run_report.json and BENCH_*.json files into DIR",
    )


@pytest.fixture(scope="session")
def trace_out(request):
    """The ``--trace-out`` directory, or ``None`` when not tracing."""
    return request.config.getoption("--trace-out")


#: Wall seconds the shared reference-modem simulation took, measured at
#: fixture setup so benches reporting its stats derive an honest
#: ``host_cycles_per_sec``.
_REFERENCE_WALL = {}


@pytest.fixture(scope="session")
def reference_run(trace_out):
    """One profiled packet through the full simulated receiver.

    With ``--trace-out`` the run is traced and leaves ``trace.json`` +
    ``run_report.json`` (validated against ``run_report.schema.json``)
    in that directory at session teardown.
    """
    tracer = Tracer() if trace_out else None
    clock = reporting.BenchClock()
    run = run_reference_modem(seed=42, cfo_hz=50e3, snr_db=None, tracer=tracer)
    _REFERENCE_WALL["s"] = clock.elapsed()
    yield run
    if tracer is None:
        return
    os.makedirs(trace_out, exist_ok=True)
    write_chrome_trace(os.path.join(trace_out, "trace.json"), tracer)
    report = build_receiver_report(run.output, tracer, meta={"seed": 42})
    with open(os.path.join(_HERE, "run_report.schema.json")) as fh:
        validate_json(report, json.load(fh))
    save_run_report(report, os.path.join(trace_out, "run_report.json"))


@pytest.fixture(scope="session")
def reference_wall_s(reference_run):
    """Wall seconds of the shared reference-modem simulation."""
    return _REFERENCE_WALL["s"]


@pytest.fixture
def bench_report(request, trace_out):
    """Write this bench's uniform result JSON; call with (name, stats, extra).

    Wall time is measured from fixture setup (i.e. the whole test body);
    benches whose *stats* come from the shared ``reference_run`` should
    pass ``wall_s=reference_wall_s`` instead so the derived
    ``host_cycles_per_sec`` describes the simulation, not the analysis.
    Reports go to ``--trace-out`` when given, else ``benchmarks/out/``.
    """
    clock = reporting.BenchClock()

    def write(name, stats=None, extra=None, wall_s=None):
        return reporting.write_bench_report(
            name,
            out_dir=trace_out,
            wall_s=clock.elapsed() if wall_s is None else wall_s,
            stats=stats,
            extra=extra,
        )

    return write
