"""Shared fixtures for the benchmark harness.

The reference modem run (the paper's profiled MIMO-OFDM execution) takes
a couple of minutes of simulation; it is produced once per session and
shared by every table/figure bench.
"""

import pytest

from repro.eval import run_reference_modem


@pytest.fixture(scope="session")
def reference_run():
    """One profiled packet through the full simulated receiver."""
    return run_reference_modem(seed=42, cfo_hz=50e3, snr_db=None)
