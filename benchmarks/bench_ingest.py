#!/usr/bin/env python
"""Ingest throughput: packets/s and shed rate vs offered load.

Streams a batch of synthetic waveforms over loopback UDP through an
:class:`~repro.ingest.IngestServer` three ways:

* **paced** — sender throttled well below line rate: the baseline
  everything should keep up with;
* **line_rate** — the sender blasts as fast as ``sendto`` allows: the
  loopback ingest ceiling (packets/s through parse + reassemble +
  submit + digest);
* **overload** — slow workers behind a depth-2 ``drop``-mode fabric:
  the fabric sheds, and the bench records the shed fraction — the
  drop-rate-vs-offered-load data point.

Every leg must balance the exactly-once ledger (released + lost ==
sent, submitted + shed == released, nothing buffered).  A digest stub
stands in for the modem: this bench measures the transport, not the
decode (``bench_fabric_scaling.py`` owns that trajectory).

Writes ``BENCH_ingest.json`` through ``reporting.write_bench_report``
and validates it against ``ingest.schema.json``; exit status 0 on
success.

Run:  PYTHONPATH=src python benchmarks/bench_ingest.py \\
          [--packets N] [--n-samples N] [--out DIR]
"""

import argparse
import json
import os
import sys
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))

import reporting
from repro.fabric import Fabric
from repro.ingest import IngestServer, send_stream
from repro.trace import schema_errors


class _DigestRunner:
    def run_packet(self, rx, n_symbols=2, detect_hint=None):
        return {"digest": rx.tobytes(), "n": int(rx.shape[1])}


def _digest_factory():
    return _DigestRunner()


class _SlowRunner:
    def run_packet(self, rx, n_symbols=2, detect_hint=None):
        time.sleep(0.02)
        return {"n": int(rx.shape[1])}


def _slow_factory():
    return _SlowRunner()


def _waveforms(n, n_samples, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal((2, n_samples)) + 1j * rng.standard_normal((2, n_samples)))
        / 4
        for _ in range(n)
    ]


def _run_leg(name, waves, runner_factory, pace_s, queue_depth=16,
             backpressure="block"):
    """One offered-load point: send, drain, read the ledger."""
    fab = Fabric(
        workers=2,
        runner_factory=runner_factory,
        queue_depth=queue_depth,
        backpressure=backpressure,
    )
    with fab:
        with IngestServer(
            fab, udp_port=0, window=64, stream_buffer=len(waves)
        ) as server:
            t0 = time.perf_counter()
            report = send_stream(
                waves,
                udp=server.udp_address,
                stream_id=1,
                dtype="c64",
                pace_s=pace_s,
            )
            server.drain(idle_s=0.05, timeout=600)
            wall = time.perf_counter() - t0
        view = fab.report()["ingest"]["streams"]["1"]
        problems = server.accounting_problems({1: report.n_packets})
    shed = view["shed_overflow"] + view["shed_dropped"] + view["shed_rejected"]
    leg = {
        "name": name,
        "wall_s": round(wall, 6),
        "datagrams": report.datagrams,
        "released": view["released"],
        "submitted": view["submitted"],
        "shed": shed,
        "packets_per_sec": round(view["released"] / wall, 3),
        "shed_fraction": round(shed / max(1, view["released"]), 6),
        "accounting_ok": problems == [],
    }
    print(
        "%-10s %7.1f pkt/s  released=%d shed=%d wall=%.3fs ledger=%s"
        % (name, leg["packets_per_sec"], leg["released"], shed, wall,
           "ok" if leg["accounting_ok"] else problems)
    )
    return leg


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=300, help="stream length")
    parser.add_argument(
        "--n-samples", type=int, default=600, help="samples per waveform"
    )
    parser.add_argument("--out", default=None, help="report directory")
    args = parser.parse_args(argv)

    waves = _waveforms(args.packets, args.n_samples)
    clock = reporting.BenchClock()
    legs = [
        _run_leg("paced", waves, _digest_factory, pace_s=0.002),
        _run_leg("line_rate", waves, _digest_factory, pace_s=0.0),
        _run_leg(
            "overload",
            waves,
            _slow_factory,
            pace_s=0.0,
            queue_depth=2,
            backpressure="drop",
        ),
    ]

    failures = []
    for leg in legs:
        if not leg["accounting_ok"]:
            failures.append("leg %s does not balance the ledger" % leg["name"])
    for leg in legs[:2]:
        if leg["released"] != args.packets:
            failures.append(
                "leg %s lost packets on loopback: released %d of %d"
                % (leg["name"], leg["released"], args.packets)
            )
    overload = legs[2]
    if overload["shed"] == 0:
        failures.append("overload leg shed nothing — not actually overloaded")

    extra = {
        "packets": args.packets,
        "n_samples": args.n_samples,
        "legs": legs,
        "line_rate_packets_per_sec": legs[1]["packets_per_sec"],
        "overload_shed_fraction": overload["shed_fraction"],
    }
    path = reporting.write_bench_report(
        "ingest", out_dir=args.out, wall_s=clock.elapsed(), extra=extra
    )
    with open(path) as fh:
        written = json.load(fh)
    with open(os.path.join(_HERE, "ingest.schema.json")) as fh:
        schema = json.load(fh)
    errors = schema_errors(written, schema)
    if errors:
        failures.append("%s violates ingest.schema.json: %s" % (path, errors))

    if failures:
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        return 1
    print(
        "ingest bench ok: line rate %.0f pkt/s, overload shed %.1f%% -> %s"
        % (
            legs[1]["packets_per_sec"],
            100 * overload["shed_fraction"],
            path,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
