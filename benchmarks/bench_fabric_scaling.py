#!/usr/bin/env python
"""Fabric scale-out: packets/s and latency vs worker count.

Runs the same packet batch three ways:

* a **serial baseline** on one warm :class:`~repro.runtime.ModemRuntime`
  (per-packet wall times feed the latency percentiles);
* a :class:`~repro.fabric.Fabric` at each ``--workers-list`` count, every
  worker forked from the same warm parent template (so spin-up performs
  zero ``ModuloScheduler.schedule`` calls — asserted from the report).

Every fabric output is checked bit-identical against the serial run.
The ``--min-speedup`` floor (default 3.0, the ISSUE acceptance bar for
4 workers) is enforced only when the host actually has at least as many
CPU cores as the largest worker count; on smaller hosts the bench
records the measured speedup and prints a SKIP note instead, since
forked workers time-slicing one core cannot scale.

With ``--obs-check`` the largest fabric size runs twice more,
back-to-back: a control run, then a run with the live telemetry server
up and a greedy scraper thread hammering ``/metrics`` + ``/healthz``
for the whole batch.  The scraped run must stay bit-identical to the
serial baseline and within ``--obs-max-slowdown`` (default 2%) of the
control throughput — proving observation does not perturb the
observed.  Each mode takes its best of two attempts so one scheduler
hiccup cannot fail the gate.

Writes ``BENCH_fabric_scaling.json`` through
``reporting.write_bench_report`` and validates it against
``fabric_scaling.schema.json``; exit status 0 on success.

Run:  PYTHONPATH=src python benchmarks/bench_fabric_scaling.py \\
          [--packets N] [--workers-list 1,2,4] [--cache DIR] [--out DIR] \\
          [--obs-check]
"""

import argparse
import json
import os
import sys
import threading
import time
import urllib.request

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

import numpy as np

import reporting
from repro.compiler.linker import schedule_cache_stats
from repro.fabric import Fabric
from repro.runtime import ModemRuntime, generate_packets
from repro.sim.stats import ActivityStats
from repro.trace import schema_errors


def _identical(fabric_out, serial_out) -> bool:
    return (
        list(fabric_out.bits) == list(serial_out.bits)
        and fabric_out.detect_pos == serial_out.detect_pos
        and fabric_out.stats == serial_out.stats
        and fabric_out.image == serial_out.image
    )


def _scrape_loop(url: str, stop: threading.Event, counts: dict) -> None:
    """Hammer the telemetry endpoints until stopped (the obs-check load)."""
    while not stop.is_set():
        for path in ("/metrics", "/healthz"):
            try:
                with urllib.request.urlopen(url + path, timeout=5) as resp:
                    resp.read()
                counts["scrapes"] += 1
            except OSError:
                counts["errors"] += 1
        stop.wait(0.01)


def _timed_run(fab, cases, serial_outputs) -> "tuple":
    """One fabric batch: (wall_s, all-results-bit-identical)."""
    t0 = time.perf_counter()
    ids = [fab.submit(case.rx) for case in cases]
    results = fab.drain(timeout=600)
    wall = time.perf_counter() - t0
    ok = all(
        _identical(results[task_id], serial_out)
        for task_id, serial_out in zip(ids, serial_outputs)
    )
    return wall, ok


def _obs_check(args, template, cases, serial_outputs, n_workers) -> dict:
    """Control vs scraped-fabric throughput on *n_workers* workers.

    Best of two attempts per mode: a single scheduler hiccup on a busy
    host must not be able to fail the perturbation gate.
    """
    walls = {"control": [], "observed": []}
    identical = True
    scrapes = {"scrapes": 0, "errors": 0}
    for attempt in range(2):
        for mode in ("control", "observed"):
            fab = Fabric(
                workers=n_workers,
                template_runtime=template,
                cache_dir=args.cache,
                queue_depth=max(4, args.packets),
                name="obs-check-%s" % mode,
                obs_port=0 if mode == "observed" else None,
            )
            with fab:
                stop = threading.Event()
                scraper = None
                if mode == "observed":
                    scraper = threading.Thread(
                        target=_scrape_loop,
                        args=(fab.obs_url, stop, scrapes),
                        daemon=True,
                    )
                    scraper.start()
                wall, ok = _timed_run(fab, cases, serial_outputs)
                stop.set()
                if scraper is not None:
                    scraper.join(timeout=5)
            walls[mode].append(wall)
            identical = identical and ok
    pps_control = len(cases) / min(walls["control"])
    pps_observed = len(cases) / min(walls["observed"])
    slowdown = max(0.0, 1.0 - pps_observed / pps_control)
    return {
        "workers": n_workers,
        "control_packets_per_sec": round(pps_control, 3),
        "observed_packets_per_sec": round(pps_observed, 3),
        "slowdown": round(slowdown, 4),
        "max_slowdown": args.obs_max_slowdown,
        "scrapes": scrapes["scrapes"],
        "scrape_errors": scrapes["errors"],
        "bit_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--packets", type=int, default=8, metavar="N", help="batch size (default 8)"
    )
    parser.add_argument(
        "--workers-list",
        default="1,2,4",
        metavar="N,N,...",
        help="fabric sizes to sweep (default 1,2,4)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="persistent schedule-cache directory (default $REPRO_SCHEDULE_CACHE)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="report directory (default benchmarks/out)"
    )
    parser.add_argument(
        "--interpreter",
        default="decoded",
        choices=("decoded", "compiled", "reference"),
        help="interpreter tier for the template runtime (default decoded); "
        "'compiled' also exercises the shared on-disk codegen cache",
    )
    parser.add_argument("--cfo", type=float, default=50e3, help="carrier offset in Hz")
    parser.add_argument("--seed", type=int, default=42, help="base packet seed")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required best-fabric speedup over serial when the host has "
        "enough cores (default 3.0)",
    )
    parser.add_argument(
        "--obs-check",
        action="store_true",
        help="re-run the largest fabric with the telemetry server up and a "
        "scraper thread hammering it; fail if scraping perturbs results "
        "or costs more than --obs-max-slowdown throughput",
    )
    parser.add_argument(
        "--obs-max-slowdown",
        type=float,
        default=0.02,
        help="max fractional throughput loss tolerated under scraping "
        "(default 0.02 = 2%%)",
    )
    args = parser.parse_args(argv)
    if args.packets < 1:
        parser.error("--packets must be >= 1")
    try:
        worker_counts = sorted({int(n) for n in args.workers_list.split(",")})
    except ValueError:
        parser.error("--workers-list must be comma-separated integers")
    if not worker_counts or min(worker_counts) < 1:
        parser.error("--workers-list entries must be >= 1")

    cases = generate_packets(args.packets, base_seed=args.seed, cfo_hz=args.cfo)

    template = ModemRuntime(cache_dir=args.cache, interpreter=args.interpreter)
    t0 = time.perf_counter()
    template.warm_up(cases[0].rx)
    warmup_wall = time.perf_counter() - t0
    print(
        "warm-up: linked %d region programs in %.2fs (schedule cache: %s)"
        % (template.compiled_programs, warmup_wall, schedule_cache_stats())
    )

    # Serial baseline on the warm template: the reference outputs and the
    # denominator of every speedup below.
    serial_outputs = []
    serial_timings = []
    t0 = time.perf_counter()
    for case in cases:
        t_pkt = time.perf_counter()
        serial_outputs.append(template.run_packet(case.rx))
        serial_timings.append(time.perf_counter() - t_pkt)
    serial_wall = time.perf_counter() - t0
    serial_pps = len(cases) / serial_wall
    merged = ActivityStats()
    for out in serial_outputs:
        merged.merge(out.stats)
    bers = [
        float(np.mean(out.bits != case.bits))
        for out, case in zip(serial_outputs, cases)
    ]
    if any(ber != 0.0 for ber in bers):
        print("FAIL: nonzero serial BER on clean channel: %r" % bers, file=sys.stderr)
        return 1
    print(
        "serial baseline: %d packets in %.2fs -> %.2f packets/s"
        % (len(cases), serial_wall, serial_pps)
    )

    bit_identical = True
    scaling = []
    sweep_t0 = time.perf_counter()
    for n_workers in worker_counts:
        fab = Fabric(
            workers=n_workers,
            template_runtime=template,
            cache_dir=args.cache,
            queue_depth=max(4, args.packets),
            name="bench-%dw" % n_workers,
        )
        with fab:
            t0 = time.perf_counter()
            ids = [fab.submit(case.rx) for case in cases]
            results = fab.drain(timeout=600)
            wall = time.perf_counter() - t0
            report = fab.report()
        for task_id, serial_out in zip(ids, serial_outputs):
            if not _identical(results[task_id], serial_out):
                bit_identical = False
                print(
                    "FAIL: task %d differs from serial output (workers=%d)"
                    % (task_id, n_workers),
                    file=sys.stderr,
                )
        misses = sum(
            w["spinup_schedule_misses"] or 0 for w in report["per_worker"]
        )
        codegen = sum(
            w["spinup_codegen_compilations"] or 0 for w in report["per_worker"]
        )
        pps = len(cases) / wall
        entry = {
            "workers": n_workers,
            "packets_per_sec": round(pps, 3),
            "wall_s": round(wall, 6),
            "speedup": round(pps / serial_pps, 3),
            "latency_s": {
                k: round(v, 6)
                for k, v in report["latency_s"].items()
                if k in ("p50", "p95", "p99")
            },
            "worker_crashes": report["counters"]["worker_crashes"],
            "spinup_schedule_misses": misses,
            "spinup_codegen_compilations": codegen,
        }
        scaling.append(entry)
        print(
            "%d worker(s): %.2fs -> %.2f packets/s (speedup %.2fx, "
            "p95 latency %.3fs, spin-up schedule misses %d)"
            % (
                n_workers,
                wall,
                pps,
                entry["speedup"],
                entry["latency_s"]["p95"],
                misses,
            )
        )
        if misses:
            print(
                "FAIL: forked workers scheduled %d regions at spin-up" % misses,
                file=sys.stderr,
            )
            return 1
    sweep_wall = time.perf_counter() - sweep_t0

    if not bit_identical:
        return 1

    cpu_count = os.cpu_count() or 1
    best_speedup = max(entry["speedup"] for entry in scaling)
    enforce = cpu_count >= max(worker_counts)
    if enforce:
        if best_speedup < args.min_speedup:
            print(
                "FAIL: best speedup %.2fx < required %.2fx on a %d-core host"
                % (best_speedup, args.min_speedup, cpu_count),
                file=sys.stderr,
            )
            return 1
    else:
        print(
            "SKIP speedup floor: host has %d core(s) < %d workers; forked "
            "workers time-slice one core (best measured %.2fx)"
            % (cpu_count, max(worker_counts), best_speedup)
        )

    obs_check = None
    if args.obs_check:
        obs_check = _obs_check(
            args, template, cases, serial_outputs, max(worker_counts)
        )
        print(
            "obs-check (%d workers): control %.2f pps vs observed %.2f pps "
            "under %d scrapes -> %.1f%% slowdown (limit %.1f%%)"
            % (
                obs_check["workers"],
                obs_check["control_packets_per_sec"],
                obs_check["observed_packets_per_sec"],
                obs_check["scrapes"],
                100 * obs_check["slowdown"],
                100 * args.obs_max_slowdown,
            )
        )
        if not obs_check["bit_identical"]:
            print("FAIL: results under scraping differ from serial", file=sys.stderr)
            return 1
        if obs_check["scrape_errors"]:
            print(
                "FAIL: %d scrape(s) errored mid-run" % obs_check["scrape_errors"],
                file=sys.stderr,
            )
            return 1
        if obs_check["slowdown"] > args.obs_max_slowdown:
            print(
                "FAIL: scraping cost %.1f%% throughput (> %.1f%% allowed)"
                % (100 * obs_check["slowdown"], 100 * args.obs_max_slowdown),
                file=sys.stderr,
            )
            return 1

    extra = {
        "packets": len(cases),
        "cpu_count": cpu_count,
        "bit_identical": bit_identical,
        "cache_dir": args.cache,
        "min_speedup": args.min_speedup,
        "best_speedup": best_speedup,
        "speedup_enforced": enforce,
        "serial": {
            "packets_per_sec": round(serial_pps, 3),
            "wall_s": round(serial_wall, 6),
            "latency_s": {
                k: round(v, 6)
                for k, v in reporting.latency_percentiles(serial_timings).items()
            },
        },
        "scaling": scaling,
        "obs_check": obs_check,
    }
    path = reporting.write_bench_report(
        "fabric_scaling",
        out_dir=args.out,
        wall_s=serial_wall + sweep_wall,
        stats=merged,
        extra=extra,
    )
    with open(path) as fh:
        report = json.load(fh)
    with open(os.path.join(_HERE, "fabric_scaling.schema.json")) as fh:
        schema = json.load(fh)
    errors = schema_errors(report, schema)
    if errors:
        print("FAIL: %s violates fabric_scaling.schema.json:" % path, file=sys.stderr)
        for err in errors:
            print("  " + err, file=sys.stderr)
        return 1
    print("wrote %s (schema ok)" % path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
