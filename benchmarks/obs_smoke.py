#!/usr/bin/env python
"""Live-telemetry smoke: serve a small fabric, scrape it, lint the page.

Brings up a 2-worker :class:`~repro.fabric.Fabric` with fast heartbeats
and the telemetry server on an ephemeral port, decodes a few packets
while scraping every endpoint over real HTTP, then checks:

* ``/metrics`` parses under :func:`repro.obs.lint_exposition` (TYPE and
  HELP on every family, escaped labels, numeric samples) and carries the
  fabric, window, per-worker and cache families;
* ``/healthz`` returns HTTP 200 with overall status ``pass`` and one
  check per worker, every worker having beaten at least once;
* ``/report.json`` round-trips as JSON with the fabric report schema;
* ``/events.json`` holds the lifecycle ring (server start at minimum);
* decoded bits still match the serial baseline (scraping is read-only).

Exit status 0 on success — this is the CI ``obs-smoke`` gate.

Run:  PYTHONPATH=src python benchmarks/obs_smoke.py [--packets 3]
"""

import argparse
import json
import os
import sys
import time
import urllib.request

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))

from repro.fabric import FABRIC_REPORT_SCHEMA, Fabric
from repro.obs import lint_exposition
from repro.runtime import ModemRuntime, generate_packets

#: Metric families the scrape must carry (prefixed repro_fabric_).
_REQUIRED_FAMILIES = (
    "repro_fabric_submitted",
    "repro_fabric_completed",
    "repro_fabric_heartbeats",
    "repro_fabric_latency_seconds",
    "repro_fabric_window_packets_per_sec",
    "repro_fabric_worker_heartbeat_age_seconds",
    "repro_fabric_worker_healthy",
    "repro_fabric_cache_events",
)


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=3, help="batch size")
    parser.add_argument("--cache", default=None, help="schedule-cache dir")
    parser.add_argument(
        "--heartbeat", type=float, default=0.2, help="worker heartbeat seconds"
    )
    args = parser.parse_args(argv)

    cases = generate_packets(args.packets, base_seed=11, cfo_hz=50e3)
    template = ModemRuntime(cache_dir=args.cache)
    template.warm_up(cases[0].rx)
    serial = [template.run_packet(case.rx) for case in cases]

    fab = Fabric(
        workers=2,
        template_runtime=template,
        cache_dir=args.cache,
        heartbeat_s=args.heartbeat,
        name="obs-smoke",
        obs_port=0,
    )
    failures = []
    with fab:
        url = fab.obs_url
        print("telemetry at %s" % url)
        ids = [fab.submit(case.rx) for case in cases]
        results = fab.drain(timeout=600)

        # Give every worker at least two heartbeat periods, pumping so the
        # parent actually reads the beats off the result pipes.
        deadline = time.monotonic() + max(2.0, 6 * args.heartbeat)
        while time.monotonic() < deadline:
            fab.poll(0.05)
            if all(w["heartbeats"] > 0 for w in fab.report()["per_worker"]):
                break

        status, page = _get(url + "/metrics")
        if status != 200:
            failures.append("/metrics returned HTTP %d" % status)
        problems = lint_exposition(page)
        if problems:
            failures.append("exposition lint: %s" % problems)
        for family in _REQUIRED_FAMILIES:
            if family not in page:
                failures.append("/metrics missing family %s" % family)

        status, body = _get(url + "/healthz")
        health = json.loads(body)
        if status != 200 or health["status"] != "pass":
            failures.append(
                "/healthz HTTP %d status %r (want 200/pass)" % (status, health["status"])
            )
        worker_checks = [k for k in health["checks"] if k.startswith("worker:")]
        if len(worker_checks) != 2:
            failures.append("expected 2 worker checks, got %r" % worker_checks)

        status, body = _get(url + "/report.json")
        report = json.loads(body)
        if report.get("schema") != FABRIC_REPORT_SCHEMA:
            failures.append("/report.json schema %r" % report.get("schema"))
        beats = [w["heartbeats"] for w in report["per_worker"]]
        if not all(b > 0 for b in beats):
            failures.append("worker(s) never beat: heartbeats %r" % beats)

        status, body = _get(url + "/events.json")
        events = json.loads(body)
        if not any(e["event"] == "obs_server_started" for e in events):
            failures.append("/events.json missing obs_server_started")

    for task_id, out in zip(ids, serial):
        if list(results[task_id].bits) != list(out.bits):
            failures.append("task %d bits differ from serial" % task_id)

    if failures:
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        return 1
    print(
        "obs smoke ok: %d packets decoded, %d scrapes clean, heartbeats %r"
        % (len(cases), 4, beats)
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
