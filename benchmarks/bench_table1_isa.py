"""Table 1 — the instruction set, regenerated from the live definition.

Prints the group/width/latency table and benchmarks the functional
execution rate of the ISA model (the simulator's inner loop).
"""

import random

from repro.eval import table1_text
from repro.isa import Opcode, execute
from repro.isa.opcodes import GROUP_INFO, OpGroup


def test_table1_print_and_check(benchmark, capsys, bench_report):
    text = table1_text()
    with capsys.disabled():
        print("\n=== Table 1: instruction set (from the live ISA) ===")
        print(text)
    # Table 1 anchor rows.
    assert GROUP_INFO[OpGroup.SIMD1].width == 64
    assert GROUP_INFO[OpGroup.SIMD2].latency == 3
    assert GROUP_INFO[OpGroup.DIV].width == 24
    assert GROUP_INFO[OpGroup.LDMEM].latency == 5

    rng = random.Random(0)
    ops = [Opcode.ADD, Opcode.MUL, Opcode.C4ADD, Opcode.D4PROD, Opcode.C4PROD]
    operands = [
        (rng.randrange(1 << 64), rng.randrange(1 << 64)) for _ in range(256)
    ]

    def run():
        acc = 0
        for op in ops:
            for a, b in operands:
                acc ^= execute(op, (a, b))
        return acc

    benchmark(run)
    bench_report(
        "table1_isa",
        extra={"n_groups": len(list(OpGroup)), "n_sampled_ops": len(ops)},
    )
