"""Table 2 — kernel-by-kernel profiling of the MIMO-OFDM program.

Regenerates the measured mode/IPC/cycles rows next to the paper's and
checks the qualitative shape: CGA kernels reach high IPC, VLIW
data-movement kernels sit near IPC 1-3, the program is CGA-dominated,
and the packet decodes.
"""


from repro.eval import table2_report
from repro.modem.profile import table2_rows


def test_table2_profile(benchmark, reference_run, reference_wall_s, capsys, bench_report):
    rows = benchmark.pedantic(
        table2_rows, args=(reference_run.output,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n=== Table 2: MIMO-OFDM kernel profiling (measured vs paper) ===")
        print(table2_report(reference_run))

    by_name = {}
    for row in rows:
        by_name.setdefault((row.phase, row.kernel), row)

    # Shape checks -- who is fast, who is slow.
    stats = reference_run.output.stats
    cga_ipc = stats.cga_ops / stats.cga_cycles
    vliw_ipc = stats.vliw_ops / stats.vliw_cycles
    assert cga_ipc > 3 * vliw_ipc  # the paper's 10.31 vs 1.94
    assert stats.cga_fraction > 0.5  # CGA-mode dominated, like 60-72%

    # High-IPC CGA kernels.
    for key in [("data", "SDM processing"), ("data", "comp")]:
        assert by_name[key].ipc > 5, key
    # VLIW data movement kernels have low IPC.
    for key in [("preamble", "sample ordering"), ("preamble", "remove zero carriers")]:
        assert by_name[key].ipc < 3, key
    # The decoded packet is error-free at the evaluated operating point.
    assert reference_run.ber == 0.0
    bench_report(
        "table2_profiling",
        stats=stats,
        wall_s=reference_wall_s,
        extra={
            "cga_ipc": round(cga_ipc, 3),
            "vliw_ipc": round(vliw_ipc, 3),
            "cga_fraction": round(stats.cga_fraction, 3),
            "ber": reference_run.ber,
        },
    )
