"""Fig 5 — processor area breakdown.

Regenerates the area breakdown from the structural model and checks the
published shares (memories ~50%, CGA FUs 29%, VLIW FUs 8%, global RF 5%,
distributed RF 3%) and the 5.79 mm^2 total.
"""

import pytest

from repro.arch import paper_core
from repro.eval import fig5_report
from repro.power import PAPER_AREA_MM2, estimate_area


def test_fig5_area_breakdown(benchmark, capsys, bench_report):
    report = benchmark(estimate_area, paper_core())
    with capsys.disabled():
        print("\n=== Fig 5: processor area breakdown ===")
        print(fig5_report())
    assert report.total_mm2 == pytest.approx(PAPER_AREA_MM2, rel=0.01)
    f = report.fractions
    assert f["memories"] == pytest.approx(0.50, abs=0.01)
    assert f["CGA FUs"] == pytest.approx(0.29, abs=0.01)
    assert f["VLIW FUs"] == pytest.approx(0.08, abs=0.01)
    assert f["global RF"] == pytest.approx(0.05, abs=0.01)
    assert f["distributed RF"] == pytest.approx(0.03, abs=0.01)
    bench_report(
        "fig5_area",
        extra={"total_mm2": round(report.total_mm2, 3), "fractions": f},
    )


def test_fig5_ablation_array_size(benchmark, capsys):
    """Design-space hook: the same coefficients extrapolate a 3x3 core."""
    from repro.arch.presets import _paper_fu
    import dataclasses

    core = paper_core()
    small = estimate_area(core)

    def bigger_memory():
        return estimate_area(
            dataclasses.replace(
                core, l1=dataclasses.replace(core.l1, words=2 * core.l1.words)
            )
        )

    big = benchmark(bigger_memory)
    with capsys.disabled():
        print("\n--- ablation: doubling L1 capacity ---")
        print("baseline %.2f mm^2 -> doubled-L1 %.2f mm^2" % (small.total_mm2, big.total_mm2))
    assert big.total_mm2 > small.total_mm2
    assert big.fractions["memories"] > small.fractions["memories"]
