#!/usr/bin/env python
"""CI smoke check: trace a small kernel run and validate its run report.

Compiles and simulates a short FIR kernel (seconds, not the minutes the
full modem takes), with tracing on, builds the JSON run report, and
validates it against ``benchmarks/run_report.schema.json`` plus the
cross-cutting invariant the report must keep: the per-cause stall
counts sum exactly to the aggregate ``stall_cycles``.

Exit status 0 on success; writes ``trace.json`` / ``run_report.json``
into ``--out DIR`` (default ``benchmarks/out/smoke``).

Run:  PYTHONPATH=src python benchmarks/smoke_run_report.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))

from repro.arch import paper_core
from repro.compiler import KernelBuilder
from repro.compiler.dfg import Const
from repro.compiler.linker import ProgramLinker
from repro.isa import Opcode
from repro.sim import Core
from repro.trace import (
    Tracer,
    build_run_report,
    render_report,
    save_run_report,
    schema_errors,
    set_tracer,
    write_chrome_trace,
)


def build_fir_dfg(taps: int = 4):
    """A small streaming FIR: the smoke workload."""
    kb = KernelBuilder("fir_smoke")
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    i_src = kb.induction(0, 8)
    i_dst = kb.induction(0, 8)
    addr = kb.add(src, i_src)
    acc = None
    for k in range(taps):
        x = kb.load(Opcode.LD_Q, addr, offset=-k)
        term = kb.cmul(x, Const(0x4000_4000_4000_4000 >> (k % 3)))
        acc = term if acc is None else kb.c4add(acc, term)
    kb.store(Opcode.ST_Q, kb.add(dst, i_dst), acc)
    return kb.finish()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--out", default=os.path.join(_HERE, "out", "smoke"), metavar="DIR"
    )
    args = parser.parse_args(argv)

    arch = paper_core()
    tracer = Tracer()
    previous = set_tracer(tracer)  # capture the compiler's II search too
    try:
        linker = ProgramLinker(arch, name="smoke")
        linker.call_kernel(
            build_fir_dfg(), live_ins={"src": 64, "dst": 2048}, trip_count=16
        )
        program = linker.link()
        core = Core(arch, program, tracer=tracer)
        core.load_configuration()
        profiles = []
        with core.region("fir_smoke", profiles, ii=linker.kernel_results[0].ii):
            core.run()
    finally:
        set_tracer(previous)

    report = build_run_report(
        "smoke_fir",
        [("smoke", p) for p in profiles],
        core.stats,
        tracer=tracer,
        meta={"workload": "fir_smoke", "trip_count": 16},
        n_units=arch.n_units,
    )

    schema_path = os.path.join(_HERE, "run_report.schema.json")
    with open(schema_path) as fh:
        schema = json.load(fh)
    errors = schema_errors(report, schema)
    if errors:
        print("run report violates %s:" % schema_path, file=sys.stderr)
        for err in errors:
            print("  " + err, file=sys.stderr)
        return 1

    if sum(report["stall_breakdown"].values()) != report["totals"]["stall_cycles"]:
        print("stall breakdown does not sum to stall_cycles", file=sys.stderr)
        return 1
    if not any(e["name"].startswith("cga:") for e in report["mode_timeline"]):
        print("mode timeline has no CGA span for the kernel", file=sys.stderr)
        return 1

    os.makedirs(args.out, exist_ok=True)
    report_path = os.path.join(args.out, "run_report.json")
    save_run_report(report, report_path)
    write_chrome_trace(os.path.join(args.out, "trace.json"), tracer)
    print(render_report(report))
    print()
    print("ok: %s validates against %s" % (report_path, schema_path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
