"""Table 3 — processor power consumption.

Calibrates the activity-based power model once against the published
mode anchors (75 mW VLIW / 310 mW CGA) using the reference run's
pure-mode regions, then reports the application average the model
predicts from the measured mode residency — the paper's 220 mW claim.
"""

import pytest

from repro.eval import table3_report
from repro.eval.tables import _mode_reference_stats, calibrated_power_model
from repro.power import LEAKAGE_65C_W, LEAKAGE_TYPICAL_W
from repro.power.model import PAPER_AVERAGE_W, PAPER_CGA_ACTIVE_W, PAPER_VLIW_ACTIVE_W
from repro.sim.stats import ActivityStats


def test_table3_power(benchmark, reference_run, reference_wall_s, capsys, bench_report):
    model = calibrated_power_model(reference_run)
    vliw, cga = _mode_reference_stats(reference_run)

    def run():
        return model.report(vliw).active_w, model.report(cga).active_w

    vliw_w, cga_w = benchmark(run)
    with capsys.disabled():
        print("\n=== Table 3: processor power consumption (measured vs paper) ===")
        print(table3_report(reference_run))

    # Mode anchors reproduce by calibration; check the fit is tight.
    assert vliw_w == pytest.approx(PAPER_VLIW_ACTIVE_W, rel=0.05)
    assert cga_w == pytest.approx(PAPER_CGA_ACTIVE_W, rel=0.05)
    # The application average is a *prediction* from the measured mode
    # residency and kernel intensity.  Our program is more CGA-dominated
    # than the paper's (65% vs ~60%) and the densest kernels exceed the
    # calibration's average CGA intensity, so the prediction lands above
    # the paper's 220 mW but must stay in the CGA-mode neighbourhood,
    # far above the VLIW floor.
    total = ActivityStats()
    for region in (
        reference_run.output.preamble_regions + reference_run.output.data_regions
    ):
        total.merge(region.profile.stats)
    avg_w = model.report(total).active_w
    assert 2 * PAPER_VLIW_ACTIVE_W < avg_w < 1.25 * PAPER_CGA_ACTIVE_W
    assert avg_w == pytest.approx(PAPER_AVERAGE_W, rel=0.6)
    # Leakage corners are the paper's constants.
    assert LEAKAGE_TYPICAL_W == 0.0125
    assert LEAKAGE_65C_W == 0.025
    bench_report(
        "table3_power",
        stats=total,
        wall_s=reference_wall_s,
        extra={
            "vliw_active_w": round(vliw_w, 4),
            "cga_active_w": round(cga_w, 4),
            "avg_active_w": round(avg_w, 4),
        },
    )
