"""Fig 6a/6b — active power breakdown per execution mode.

Applies the calibrated power model to the reference run's pure VLIW and
pure CGA regions and checks the published component ordering: the
inter-unit interconnect dominates both modes (28% VLIW / 38% CGA),
followed by the functional units; configuration memories matter only in
CGA mode, the I$ only in VLIW mode.
"""

import pytest

from repro.eval import fig6_report
from repro.eval.tables import _mode_reference_stats, calibrated_power_model
from repro.power.model import FIG6A_SHARES, FIG6B_SHARES


def test_fig6_power_breakdowns(benchmark, reference_run, reference_wall_s, capsys, bench_report):
    model = calibrated_power_model(reference_run)
    vliw, cga = _mode_reference_stats(reference_run)
    reports = benchmark(lambda: (model.report(vliw), model.report(cga)))
    vliw_report, cga_report = reports
    with capsys.disabled():
        print("\n=== Fig 6: power breakdown by mode (measured model) ===")
        print(fig6_report(reference_run))

    a = vliw_report.shares()
    b = cga_report.shares()
    # Fig 6a shape: interconnect ~28%, VLIW FUs ~22%, global RF ~21%...
    assert a["interconnect"] == pytest.approx(FIG6A_SHARES["interconnect"], abs=0.05)
    assert a["VLIW FUs"] == pytest.approx(FIG6A_SHARES["VLIW FUs"], abs=0.05)
    assert a["global RF"] == pytest.approx(FIG6A_SHARES["global RF"], abs=0.05)
    assert a["I$"] > 0 and a["config memory"] == 0.0
    # Fig 6b shape: interconnect ~38% dominates, CGA FUs ~25%, config 13%.
    assert max(b, key=b.get) == "interconnect"
    assert b["interconnect"] == pytest.approx(FIG6B_SHARES["interconnect"], abs=0.06)
    assert b["CGA FUs"] == pytest.approx(FIG6B_SHARES["CGA FUs"], abs=0.06)
    assert b["config memory"] == pytest.approx(
        FIG6B_SHARES["config memory"], abs=0.06
    )
    # Only a trace of I$ activity in CGA-dominated regions (kernel-entry
    # glue bundles), vs the real 10% share in VLIW mode.
    assert b["I$"] < 0.02 < a["I$"]
    bench_report(
        "fig6_power_breakdown",
        stats=reference_run.output.stats,
        wall_s=reference_wall_s,
        extra={
            "vliw_shares": {k: round(v, 4) for k, v in a.items()},
            "cga_shares": {k: round(v, 4) for k, v in b.items()},
        },
    )
