"""The kernel DSL: how baseband kernels are authored ("C with intrinsics").

:class:`KernelBuilder` builds loop-body DFGs the way the paper's C code
uses SIMD intrinsics: scalar expressions map to basic 32-bit ops,
``c4``/``d4`` calls map to the SIMD instruction groups, inductions and
accumulators become distance-1 recurrences.

:class:`VliwBuilder` builds non-kernel code (the paper's VLIW-mode
kernels and glue): straight-line operations over virtual registers plus
counted loops, later list-scheduled into 3-issue bundles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.compiler.dfg import CompileError, Const, Dfg, LiveIn, NodeRef, Operand
from repro.isa.opcodes import Opcode


def _as_operand(value: Union[Operand, int]) -> Operand:
    if isinstance(value, int):
        return Const(value)
    return value


class KernelBuilder:
    """Fluent construction of loop-body DFGs.

    Example — a fixed-point scale-and-accumulate loop::

        kb = KernelBuilder("scale_acc")
        base = kb.live_in("src")
        i = kb.induction(init=0, step=8)          # byte offset, 64-bit data
        addr = kb.add(base, i)
        x = kb.load(Opcode.LD_Q, addr)
        y = kb.op(Opcode.D4PROD, x, kb.live_in("coeff"))
        acc = kb.accumulate(Opcode.C4ADD, y, init=0, live_out="sum")
        dfg = kb.finish()
    """

    def __init__(self, name: str) -> None:
        self.dfg = Dfg(name)

    # -- operands ------------------------------------------------------

    def live_in(self, name: str) -> LiveIn:
        """A loop-invariant input provided by the surrounding VLIW code."""
        return self.dfg.declare_live_in(name)

    def const(self, value: int) -> Const:
        """A compile-time constant."""
        return Const(value)

    # -- generic operations --------------------------------------------

    def op(
        self,
        opcode: Opcode,
        *srcs: Union[Operand, int],
        live_out: Optional[str] = None,
        pred: Optional[Operand] = None,
        pred_negate: bool = False,
    ) -> NodeRef:
        """Append an arbitrary dataflow operation."""
        return self.dfg.add_node(
            opcode,
            [_as_operand(s) for s in srcs],
            live_out=live_out,
            pred=pred,
            pred_negate=pred_negate,
        )

    # -- common scalar shorthands ----------------------------------------

    def add(self, a, b, **kw) -> NodeRef:
        """32-bit add."""
        return self.op(Opcode.ADD, a, b, **kw)

    def sub(self, a, b, **kw) -> NodeRef:
        """32-bit subtract."""
        return self.op(Opcode.SUB, a, b, **kw)

    def mul(self, a, b, **kw) -> NodeRef:
        """32-bit multiply (2-cycle)."""
        return self.op(Opcode.MUL, a, b, **kw)

    def shr(self, a, n, **kw) -> NodeRef:
        """Arithmetic shift right."""
        return self.op(Opcode.ASR, a, n, **kw)

    def shl(self, a, n, **kw) -> NodeRef:
        """Logical shift left."""
        return self.op(Opcode.LSL, a, n, **kw)

    # -- SIMD intrinsics (the paper's C intrinsic functions) -------------

    def c4add(self, a, b, **kw) -> NodeRef:
        """4x16 lane-wise add."""
        return self.op(Opcode.C4ADD, a, b, **kw)

    def c4sub(self, a, b, **kw) -> NodeRef:
        """4x16 lane-wise subtract."""
        return self.op(Opcode.C4SUB, a, b, **kw)

    def d4prod(self, a, b, **kw) -> NodeRef:
        """4x16 lane-wise fractional product (straight pairing)."""
        return self.op(Opcode.D4PROD, a, b, **kw)

    def c4prod(self, a, b, **kw) -> NodeRef:
        """4x16 lane-wise fractional product (cross pairing)."""
        return self.op(Opcode.C4PROD, a, b, **kw)

    def c4shiftr(self, a, n, **kw) -> NodeRef:
        """4x16 lane-wise arithmetic shift right."""
        return self.op(Opcode.C4SHIFTR, a, n, **kw)

    def c4swap16(self, a, **kw) -> NodeRef:
        """Swap 16-bit lanes within each 32-bit pair."""
        return self.op(Opcode.C4SWAP16, a, **kw)

    def c4swap32(self, a, **kw) -> NodeRef:
        """Swap the 32-bit halves."""
        return self.op(Opcode.C4SWAP32, a, **kw)

    def c4negb(self, a, **kw) -> NodeRef:
        """Negate odd lanes (conjugate packed complex pairs)."""
        return self.op(Opcode.C4NEGB, a, **kw)

    def cmul(self, a, b) -> NodeRef:
        """Packed complex multiply: two 16-bit complex pairs per operand.

        Expands to the paper's d4prod/c4prod/c4sub/c4add idiom:
        ``re = re_a*re_b - im_a*im_b`` in even lanes,
        ``im = re_a*im_b + im_a*re_b`` in odd lanes.
        """
        direct = self.d4prod(a, b)  # |ra*rb|ia*ib|...|
        cross = self.c4prod(a, b)  # |ra*ib|ia*rb|...|
        re = self.c4sub(direct, self.c4swap16(direct))  # even lanes: ra*rb-ia*ib
        im = self.c4add(cross, self.c4swap16(cross))  # odd lanes: ra*ib+ia*rb
        # Merge: keep even lanes of re, odd lanes of im.
        re_even = self.op(Opcode.C4AND, re, Const(0x0000_FFFF_0000_FFFF))
        im_odd = self.op(Opcode.C4AND, im, Const(0xFFFF_0000_FFFF_0000))
        return self.c4add(re_even, im_odd)

    # -- recurrences -----------------------------------------------------

    def induction(self, init: int, step: int, opcode: Opcode = Opcode.ADD) -> NodeRef:
        """A loop induction: ``i_{k} = i_{k-1} + step`` with ``i_0 = init``.

        Implemented as a self-recurrent add whose first iteration reads
        ``init - step`` so the loop body always observes ``init + k*step``.
        """
        node = self.dfg.add_node(opcode, [Const(0), Const(step)])
        # Patch the self-reference: src0 reads this node's own previous
        # value, with a first-iteration init of init - step.
        self_ref = NodeRef(node.node_id, distance=1, init=(init - step) & 0xFFFFFFFFFFFFFFFF)
        self.dfg.nodes[node.node_id].srcs = (self_ref, Const(step))
        return node

    def accumulate(
        self,
        opcode: Opcode,
        value: Union[Operand, int],
        init: int = 0,
        live_out: Optional[str] = None,
        pred: Optional[Operand] = None,
    ) -> NodeRef:
        """An accumulator: ``acc = opcode(acc_prev, value)``; optional live-out."""
        node = self.dfg.add_node(
            opcode, [Const(0), _as_operand(value)], live_out=live_out, pred=pred
        )
        self_ref = NodeRef(node.node_id, distance=1, init=init)
        self.dfg.nodes[node.node_id].srcs = (self_ref, _as_operand(value))
        return node

    def recurrence(self, ref: NodeRef, init: int) -> NodeRef:
        """Reference *ref*'s value from the previous iteration."""
        return NodeRef(ref.node_id, distance=1, init=init)

    # -- memory ----------------------------------------------------------

    def load(self, opcode: Opcode, addr: Union[Operand, int], offset: int = 0) -> NodeRef:
        """Load through a computed address (offset folded as an immediate)."""
        return self.op(opcode, addr, Const(offset))

    def store(
        self,
        opcode: Opcode,
        addr: Union[Operand, int],
        value: Union[Operand, int],
        offset: int = 0,
        pred: Optional[Operand] = None,
    ) -> NodeRef:
        """Store *value* at a computed address."""
        return self.op(opcode, addr, Const(offset), value, pred=pred)

    # ---------------------------------------------------------------------

    def finish(self) -> Dfg:
        """Validate and return the DFG."""
        self.dfg.validate()
        return self.dfg


# =======================================================================


@dataclass(frozen=True)
class VirtualReg:
    """A virtual register of the VLIW section builder."""

    index: int

    def __str__(self) -> str:
        return "v%d" % self.index


@dataclass(frozen=True)
class PhysReg:
    """A pre-assigned central register (the linker's calling convention)."""

    index: int

    def __str__(self) -> str:
        return "R%d" % self.index


@dataclass
class VliwOp:
    """One operation over virtual registers (pre-scheduling)."""

    opcode: Opcode
    dst: Optional[VirtualReg]
    srcs: Tuple[object, ...]  # VirtualReg | int immediates
    pred: Optional[VirtualReg] = None
    pred_negate: bool = False
    #: Marks loop-control ops emitted by counted_loop (branch machinery).
    is_loop_ctrl: bool = False


@dataclass
class VliwSection:
    """A structured VLIW region: straight-line ops and counted loops."""

    name: str
    items: List[object] = field(default_factory=list)  # VliwOp | VliwLoop


@dataclass
class VliwLoop:
    """A counted loop of VLIW code (rolled; branch overhead is real).

    ``trip_count`` is either a compile-time int or a register (virtual
    or physical) holding the count at run time — the runtime's way of
    keeping data-dependent loop bounds out of the linked program.  The
    loop is a do-while (the body always runs once), so register counts
    must be positive.
    """

    trip_count: Union["VirtualReg", "PhysReg", int]
    body: List[VliwOp]


class VliwBuilder:
    """Builds VLIW sections over virtual registers.

    Virtual registers map 1:1 onto central registers at link time
    (the sections in this reproduction are small enough to never exceed
    the 64-entry file; the linker raises otherwise).
    """

    def __init__(self, name: str) -> None:
        self.section = VliwSection(name)
        self._n_virtual = 0
        self._loop_body: Optional[List[VliwOp]] = None

    def reg(self) -> VirtualReg:
        """Allocate a fresh virtual register."""
        reg = VirtualReg(self._n_virtual)
        self._n_virtual += 1
        return reg

    def shared_reg(self, key: str) -> VirtualReg:
        """A virtual register reused across sequential code by name.

        Safe because the list scheduler's hazard analysis serialises
        conflicting uses; sharing keeps long sections (many copy loops)
        within the physical register budget, just like a compiler's
        register allocator would.
        """
        if not hasattr(self, "_shared"):
            self._shared = {}
        if key not in self._shared:
            self._shared[key] = self.reg()
        return self._shared[key]

    def _emit(self, op: VliwOp) -> None:
        if self._loop_body is not None:
            self._loop_body.append(op)
        else:
            self.section.items.append(op)

    def op(
        self,
        opcode: Opcode,
        *srcs,
        dst: Optional[VirtualReg] = None,
        pred: Optional[VirtualReg] = None,
        pred_negate: bool = False,
    ) -> Optional[VirtualReg]:
        """Emit one operation; allocates a destination when one is needed."""
        from repro.isa.opcodes import OpGroup, group_of

        needs_dst = dst is None and group_of(opcode) not in (
            OpGroup.STMEM,
            OpGroup.BRANCH,
            OpGroup.CONTROL,
        )
        if needs_dst:
            dst = self.reg()
        self._emit(VliwOp(opcode, dst, tuple(srcs), pred, pred_negate))
        return dst

    def mov_imm(self, value: int) -> VirtualReg:
        """Materialise an immediate into a register (add v, 0, imm)."""
        return self.op(Opcode.ADD, 0, value)

    def add(self, a, b) -> VirtualReg:
        return self.op(Opcode.ADD, a, b)

    def sub(self, a, b) -> VirtualReg:
        return self.op(Opcode.SUB, a, b)

    def load(self, opcode: Opcode, base, offset) -> VirtualReg:
        return self.op(opcode, base, offset)

    def store(self, opcode: Opcode, base, offset: int, value) -> None:
        self.op(opcode, base, offset, value)

    def counted_loop(
        self, trip_count: Union["VirtualReg", "PhysReg", int]
    ) -> "_LoopContext":
        """Open a counted loop: ``with vb.counted_loop(n): ...``.

        *trip_count* may be a register holding the (positive) count at
        run time; the loop body always executes at least once.
        """
        return _LoopContext(self, trip_count)

    def finish(self) -> VliwSection:
        """Return the section for scheduling."""
        if self._loop_body is not None:
            raise CompileError("unclosed loop in section %s" % self.section.name)
        return self.section


class _LoopContext:
    def __init__(
        self, builder: VliwBuilder, trip_count: Union[VirtualReg, PhysReg, int]
    ) -> None:
        self.builder = builder
        self.trip_count = trip_count

    def __enter__(self) -> None:
        if self.builder._loop_body is not None:
            raise CompileError("nested VLIW loops are not supported")
        self.builder._loop_body = []
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        body = self.builder._loop_body
        self.builder._loop_body = None
        if exc_type is None:
            self.builder.section.items.append(VliwLoop(self.trip_count, body))
