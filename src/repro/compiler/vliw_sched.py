"""List scheduling of VLIW sections into 3-issue bundles.

Non-kernel code (the paper's VLIW-mode kernels and glue) is scheduled
with a classic dependence-aware list scheduler:

* hazards (RAW/WAW/WAR on registers, loads vs stores, store order) are
  edges of a block-local dependence graph;
* each cycle packs up to ``vliw_width`` ready operations into slots
  whose functional units support them (branches only on slot 0, memory
  on the load/store units, division on units 0-1);
* producer latency is respected by the ready function so the schedule
  minimises the interlock stalls the core would otherwise insert;
* counted loops are emitted rolled, with real decrement / compare /
  branch overhead (which is what keeps VLIW-mode IPC at the paper's
  ~1-2.7).

Bundles are emitted compactly: cycles that would contain only NOPs are
elided, because the core's scoreboard recreates the identical stall
timing without wasting instruction-cache space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compiler.builder import (
    PhysReg,
    VirtualReg,
    VliwLoop,
    VliwOp,
    VliwSection,
)
from repro.compiler.dfg import CompileError
from repro.isa.instruction import Imm, Instruction, PredReg, Reg
from repro.isa.opcodes import Opcode, OpGroup, group_of, latency_of
from repro.sim.program import VliwBundle


@dataclass
class _SchedOp:
    """A lowered instruction plus its dependence bookkeeping."""

    index: int
    inst: Instruction
    deps: Set[int]
    is_branch: bool = False


class RegisterMap:
    """Maps virtual registers to physical CDRF/CPRF registers."""

    def __init__(self, data_pool: Sequence[int], pred_pool: Sequence[int]) -> None:
        self._data_pool = list(data_pool)
        self._pred_pool = list(pred_pool)
        self._data: Dict[int, int] = {}
        self._pred: Dict[int, int] = {}

    def data_reg(self, virtual: VirtualReg) -> int:
        if virtual.index not in self._data:
            if not self._data_pool:
                raise CompileError("out of central data registers")
            self._data[virtual.index] = self._data_pool.pop(0)
        return self._data[virtual.index]

    def pred_reg(self, virtual: VirtualReg) -> int:
        if virtual.index not in self._pred:
            if not self._pred_pool:
                raise CompileError("out of predicate registers")
            self._pred[virtual.index] = self._pred_pool.pop(0)
        return self._pred[virtual.index]

    def fresh_data(self) -> int:
        """Claim a physical data register not bound to any virtual."""
        if not self._data_pool:
            raise CompileError("out of central data registers")
        return self._data_pool.pop(0)

    def fresh_pred(self) -> int:
        """Claim a physical predicate register."""
        if not self._pred_pool:
            raise CompileError("out of predicate registers")
        return self._pred_pool.pop(0)


def _lower(op: VliwOp, regs: RegisterMap, pred_virtuals: Set[int]) -> Instruction:
    """Convert a virtual-register op into a physical Instruction."""
    group = group_of(op.opcode)

    def operand(src):
        if isinstance(src, VirtualReg):
            if src.index in pred_virtuals:
                return PredReg(regs.pred_reg(src))
            return Reg(regs.data_reg(src))
        if isinstance(src, PhysReg):
            return Reg(src.index)
        if isinstance(src, int):
            return Imm(src)
        raise CompileError("bad VLIW operand %r" % (src,))

    dst = None
    if op.dst is not None:
        if isinstance(op.dst, PhysReg):
            dst = Reg(op.dst.index)
        elif group is OpGroup.PRED:
            pred_virtuals.add(op.dst.index)
            dst = PredReg(regs.pred_reg(op.dst))
        else:
            dst = Reg(regs.data_reg(op.dst))
    pred = None
    if op.pred is not None:
        pred = PredReg(regs.pred_reg(op.pred))
    return Instruction(
        op.opcode,
        dst=dst,
        srcs=tuple(operand(s) for s in op.srcs),
        pred=pred,
        pred_negate=op.pred_negate,
    )


def _build_deps(insts: List[Instruction]) -> List[_SchedOp]:
    """Block-local dependence graph over lowered instructions."""
    sched: List[_SchedOp] = []
    last_writer: Dict[Tuple[str, int], int] = {}
    readers: Dict[Tuple[str, int], List[int]] = {}
    last_store: Optional[int] = None
    mem_ops_since_store: List[int] = []

    def reg_key(operand) -> Optional[Tuple[str, int]]:
        if isinstance(operand, Reg):
            return ("r", operand.index)
        if isinstance(operand, PredReg):
            return ("p", operand.index)
        return None

    for i, inst in enumerate(insts):
        deps: Set[int] = set()
        group = group_of(inst.opcode)
        reads = [s for s in inst.srcs]
        if inst.pred is not None:
            reads.append(inst.pred)
        for operand in reads:
            key = reg_key(operand)
            if key is not None and key in last_writer:
                deps.add(last_writer[key])
        if inst.dst is not None:
            key = reg_key(inst.dst)
            if key is not None:
                if key in last_writer:
                    deps.add(last_writer[key])  # WAW
                for r in readers.get(key, ()):  # WAR
                    deps.add(r)
        # Memory ordering: stores are barriers for all memory ops.
        if group in (OpGroup.LDMEM, OpGroup.STMEM):
            if last_store is not None:
                deps.add(last_store)
            if group is OpGroup.STMEM:
                deps.update(mem_ops_since_store)
        is_branch = group is OpGroup.BRANCH
        if is_branch:
            deps.update(range(i))  # branches issue last
        sched.append(_SchedOp(i, inst, deps, is_branch))
        # Update tables.
        for operand in reads:
            key = reg_key(operand)
            if key is not None:
                readers.setdefault(key, []).append(i)
        if inst.dst is not None:
            key = reg_key(inst.dst)
            if key is not None:
                last_writer[key] = i
                readers[key] = []
        if group is OpGroup.STMEM:
            last_store = i
            mem_ops_since_store = []
        elif group is OpGroup.LDMEM:
            mem_ops_since_store.append(i)
    return sched


def _slot_can_run(slot_groups: Sequence[frozenset], slot: int, op: Opcode) -> bool:
    return group_of(op) in slot_groups[slot]


def schedule_block(
    insts: List[Instruction], slot_groups: Sequence[frozenset]
) -> List[VliwBundle]:
    """List-schedule one basic block into compact bundles."""
    if not insts:
        return []
    width = len(slot_groups)
    ops = _build_deps(insts)
    finish: Dict[int, int] = {}
    scheduled: Set[int] = set()
    bundles: List[VliwBundle] = []
    cycle = 0
    guard = 0
    while len(scheduled) < len(ops):
        guard += 1
        if guard > 10 * len(ops) + 100:  # pragma: no cover - defensive
            raise CompileError("list scheduler did not converge")
        ready = [
            op
            for op in ops
            if op.index not in scheduled
            and all(d in scheduled and finish[d] <= cycle for d in op.deps)
        ]
        # Highest-latency first packs long chains earlier.
        ready.sort(key=lambda op: (-latency_of(op.inst.opcode), op.index))
        slots: List[Optional[Instruction]] = [None] * width
        used: Set[int] = set()
        for op in ready:
            placed = False
            for slot in range(width):
                if slot in used:
                    continue
                if not _slot_can_run(slot_groups, slot, op.inst.opcode):
                    continue
                if op.is_branch and slot != 0:
                    continue
                slots[slot] = op.inst
                used.add(slot)
                scheduled.add(op.index)
                finish[op.index] = cycle + latency_of(op.inst.opcode)
                placed = True
                break
            if placed and op.is_branch:
                break  # nothing may issue after a branch in this block
        if used:
            bundles.append(VliwBundle(tuple(slots)))
        cycle += 1
    return bundles


def schedule_vliw(
    section: VliwSection,
    slot_groups: Sequence[frozenset],
    regs: RegisterMap,
) -> List[VliwBundle]:
    """Schedule a whole section (straight-line code and counted loops)."""
    pred_virtuals: Set[int] = set()
    # Pre-scan: mark virtuals written by PRED-group ops so reads lower
    # to predicate registers.
    def scan(ops: List[VliwOp]) -> None:
        for op in ops:
            if op.dst is not None and isinstance(op.dst, VirtualReg):
                if group_of(op.opcode) is OpGroup.PRED:
                    pred_virtuals.add(op.dst.index)

    for item in section.items:
        if isinstance(item, VliwLoop):
            scan(item.body)
        else:
            scan([item])

    bundles: List[VliwBundle] = []
    pending: List[Instruction] = []
    # One counter/predicate pair serves every (sequential) loop.
    loop_regs: List[Optional[int]] = [None, None]

    def flush() -> None:
        bundles.extend(schedule_block(pending, slot_groups))
        pending.clear()

    for item in section.items:
        if isinstance(item, VliwOp):
            pending.append(_lower(item, regs, pred_virtuals))
            continue
        # Counted loop: counter init joins the preceding block; the body
        # (with decrement / compare / branch appended) forms its own block.
        if loop_regs[0] is None:
            loop_regs[0] = regs.fresh_data()
            loop_regs[1] = regs.fresh_pred()
        counter, pred = loop_regs
        trip = item.trip_count
        if isinstance(trip, VirtualReg):
            trip_src = Reg(regs.data_reg(trip))
        elif isinstance(trip, PhysReg):
            trip_src = Reg(trip.index)
        else:
            trip_src = Imm(int(trip))
        pending.append(
            Instruction(Opcode.ADD, dst=Reg(counter), srcs=(Imm(0), trip_src))
        )
        flush()
        body = [_lower(op, regs, pred_virtuals) for op in item.body]
        body.append(
            Instruction(Opcode.SUB, dst=Reg(counter), srcs=(Reg(counter), Imm(1)))
        )
        body.append(
            Instruction(
                Opcode.PRED_GT, dst=PredReg(pred), srcs=(Reg(counter), Imm(0))
            )
        )
        body.append(
            Instruction(Opcode.BR, srcs=(Imm(0),), pred=PredReg(pred))
        )
        body_bundles = schedule_block(body, slot_groups)
        # Patch the branch offset: jump back to the first body bundle.
        start = len(bundles)
        for idx, bundle in enumerate(body_bundles):
            slots = list(bundle.slots)
            for s, inst in enumerate(slots):
                if inst is not None and inst.opcode is Opcode.BR:
                    abs_idx = start + idx
                    offset = start - (abs_idx + 1)
                    slots[s] = Instruction(
                        Opcode.BR,
                        srcs=(Imm(offset),),
                        pred=inst.pred,
                        pred_negate=inst.pred_negate,
                    )
            body_bundles[idx] = VliwBundle(tuple(slots))
        bundles.extend(body_bundles)
    flush()
    return bundles
