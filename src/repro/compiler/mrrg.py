"""The modulo routing resource graph (MRRG).

For a candidate initiation interval II, the MRRG tracks every resource a
modulo schedule can exhaust, all folded modulo II:

* **issue slots** — one operation per functional unit per context phase;
* **write-back slots** — each value-producing operation commits to its
  unit's output latch at phase ``(t + latency) mod II``; commits on one
  unit must be unique per phase;
* **latch live windows** — a latched value stays readable from its
  commit until the next commit on the same unit; a consumer reading
  ``slack`` cycles after the commit extends the value's live window,
  during which no other commit may land (and ``slack <= II - 1``,
  because the producing operation itself re-commits every II cycles);
* **central RF ports** — 6 reads / 3 writes per phase, usable only from
  units with central ports;
* **local RF entries** — loop-invariant live-ins preloaded into the
  consuming unit's local file occupy an entry for the whole kernel.

The object is copy-on-checkpoint so the scheduler can roll back a failed
placement attempt cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.config import CgaArchitecture
from repro.compiler.dfg import CompileError


@dataclass
class _FuState:
    """Per-unit modulo resources."""

    slots: Dict[int, int] = field(default_factory=dict)  # phase -> op uid
    commits: Dict[int, int] = field(default_factory=dict)  # phase -> window len
    lrf_alloc: Dict[str, int] = field(default_factory=dict)  # live-in -> entry


class _MrrgSnapshot:
    """Rollback state for :meth:`Mrrg.checkpoint`.

    Holds fresh copies of the three mutable scheduling structures and
    nothing else — in particular not the (immutable, shared)
    architecture, which a ``copy.deepcopy`` of the whole ``Mrrg`` would
    clone on every backtracking attempt.  All dict keys and values are
    ints or strings, so one level of ``dict()`` copying is a full
    snapshot.
    """

    __slots__ = ("fus", "cdrf_reads", "cdrf_writes")

    def __init__(
        self,
        fus: List[_FuState],
        cdrf_reads: Dict[int, int],
        cdrf_writes: Dict[int, int],
    ) -> None:
        self.fus = fus
        self.cdrf_reads = cdrf_reads
        self.cdrf_writes = cdrf_writes


class Mrrg:
    """Resource bookkeeping for one scheduling attempt at a fixed II."""

    def __init__(self, arch: CgaArchitecture, ii: int) -> None:
        if ii < 1:
            raise CompileError("II must be >= 1")
        self.arch = arch
        self.ii = ii
        self.fus: List[_FuState] = [_FuState() for _ in range(arch.n_units)]
        self.cdrf_reads: Dict[int, int] = {}
        self.cdrf_writes: Dict[int, int] = {}

    # -- checkpointing ---------------------------------------------------

    def checkpoint(self) -> "_MrrgSnapshot":
        """Deep snapshot for backtracking."""
        return _MrrgSnapshot(
            [
                _FuState(dict(s.slots), dict(s.commits), dict(s.lrf_alloc))
                for s in self.fus
            ],
            dict(self.cdrf_reads),
            dict(self.cdrf_writes),
        )

    def restore(self, snap: "_MrrgSnapshot") -> None:
        """Roll back to a snapshot taken with :meth:`checkpoint`."""
        self.fus = snap.fus
        self.cdrf_reads = snap.cdrf_reads
        self.cdrf_writes = snap.cdrf_writes

    # -- helpers -----------------------------------------------------------

    def _phases_in_window(self, commit_phase: int, length: int):
        """Phases strictly after *commit_phase* through +length, mod II."""
        for d in range(1, length + 1):
            yield (commit_phase + d) % self.ii

    def _window_contains(self, commit_phase: int, length: int, phase: int) -> bool:
        if length <= 0:
            return False
        delta = (phase - commit_phase) % self.ii
        return 1 <= delta <= length

    # -- issue slots ---------------------------------------------------------

    def slot_free(self, fu: int, time: int) -> bool:
        """True when unit *fu* has no operation at ``time mod II``."""
        return (time % self.ii) not in self.fus[fu].slots

    def claim_slot(self, fu: int, time: int, uid: int) -> None:
        phase = time % self.ii
        if phase in self.fus[fu].slots:
            raise CompileError("slot FU%d@%d already taken" % (fu, phase))
        self.fus[fu].slots[phase] = uid

    # -- write-back / latch windows ----------------------------------------

    def commit_free(self, fu: int, commit_time: int) -> bool:
        """True when the latch of *fu* can accept a commit at this phase.

        The phase must be unused and must not fall inside any existing
        value's live window.
        """
        phase = commit_time % self.ii
        state = self.fus[fu]
        if phase in state.commits:
            return False
        for c0, length in state.commits.items():
            if self._window_contains(c0, length, phase):
                return False
        return True

    def claim_commit(self, fu: int, commit_time: int) -> None:
        if not self.commit_free(fu, commit_time):
            raise CompileError("commit conflict on FU%d" % fu)
        self.fus[fu].commits[commit_time % self.ii] = 0

    def can_extend_window(self, fu: int, commit_time: int, slack: int) -> bool:
        """Can the value committed at *commit_time* stay live *slack* cycles?"""
        if slack < 0 or slack > self.ii - 1:
            return False
        phase = commit_time % self.ii
        state = self.fus[fu]
        current = state.commits.get(phase)
        if current is None:
            # The producer is not committed yet (placement in progress);
            # only window-vs-other-commits feasibility can be checked.
            pass
        length = max(current or 0, slack)
        for p in self._phases_in_window(phase, length):
            if p in state.commits and p != phase:
                return False
        return True

    def extend_window(self, fu: int, commit_time: int, slack: int) -> None:
        if not self.can_extend_window(fu, commit_time, slack):
            raise CompileError("cannot extend latch window on FU%d" % fu)
        phase = commit_time % self.ii
        state = self.fus[fu]
        state.commits[phase] = max(state.commits.get(phase, 0), slack)

    # -- central RF ports -----------------------------------------------------

    def cdrf_read_free(self, time: int, count: int = 1) -> bool:
        phase = time % self.ii
        return self.cdrf_reads.get(phase, 0) + count <= self.arch.cdrf.read_ports

    def claim_cdrf_read(self, time: int, count: int = 1) -> None:
        phase = time % self.ii
        if not self.cdrf_read_free(time, count):
            raise CompileError("CDRF read ports exhausted at phase %d" % phase)
        self.cdrf_reads[phase] = self.cdrf_reads.get(phase, 0) + count

    def cdrf_write_free(self, time: int) -> bool:
        phase = time % self.ii
        return self.cdrf_writes.get(phase, 0) + 1 <= self.arch.cdrf.write_ports

    def claim_cdrf_write(self, time: int) -> None:
        phase = time % self.ii
        if not self.cdrf_write_free(time):
            raise CompileError("CDRF write ports exhausted at phase %d" % phase)
        self.cdrf_writes[phase] = self.cdrf_writes.get(phase, 0) + 1

    # -- local RF entries -------------------------------------------------------

    def lrf_entry_for(self, fu: int, live_in: str) -> Optional[int]:
        """Entry already holding *live_in* on *fu*, if any."""
        return self.fus[fu].lrf_alloc.get(live_in)

    def lrf_alloc_free(self, fu: int, live_in: str) -> bool:
        state = self.fus[fu]
        if live_in in state.lrf_alloc:
            return True
        spec = self.arch.fus[fu].local_rf
        if spec is None:
            return False
        return len(state.lrf_alloc) < spec.entries

    def claim_lrf(self, fu: int, live_in: str) -> int:
        state = self.fus[fu]
        if live_in in state.lrf_alloc:
            return state.lrf_alloc[live_in]
        if not self.lrf_alloc_free(fu, live_in):
            raise CompileError("local RF of FU%d exhausted" % fu)
        entry = len(state.lrf_alloc)
        state.lrf_alloc[live_in] = entry
        return entry

    # -- reporting ----------------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of issue slots used across all units and phases."""
        used = sum(len(state.slots) for state in self.fus)
        return used / (self.arch.n_units * self.ii)

    def preload_list(self) -> List[Tuple[int, int, str]]:
        """All (fu, entry, live_in) local-RF allocations."""
        out = []
        for fu, state in enumerate(self.fus):
            for name, entry in state.lrf_alloc.items():
                out.append((fu, entry, name))
        return sorted(out)
