"""Linking kernels and VLIW sections into a runnable Program.

The :class:`ProgramLinker` owns the calling convention between the two
modes (the shared central register file):

* every kernel live-in, live-out and run-time trip count is assigned a
  central register;
* VLIW glue code is emitted to materialise live-in values before each
  ``cga`` instruction (the paper: "This VLIW code takes care of ...
  setting up the data for the CGA loop");
* kernels are modulo-scheduled, VLIW sections are list-scheduled, and
  everything is concatenated into one instruction stream ending in
  ``halt``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.arch.config import CgaArchitecture
from repro.compiler.builder import PhysReg, VirtualReg, VliwBuilder, VliwSection
from repro.compiler.dfg import CompileError, Dfg
from repro.compiler.modulo import ModuloScheduler, ScheduleResult
from repro.compiler.vliw_sched import RegisterMap, schedule_vliw
from repro.isa.instruction import Imm, Instruction
from repro.isa.opcodes import Opcode
from repro.sim.program import CgaKernel, Program, VliwBundle

ValueSource = Union[int, PhysReg, VirtualReg]

#: Modulo-scheduling results memoised across programs.  Kernels are
#: structurally identified by their op stream plus the register calling
#: convention and the architecture's structural fingerprint (NOT its
#: name — same-name ablation variants must not alias); re-linking the
#: same kernel (every packet, every region) then reuses the schedule,
#: exactly as a real toolflow caches object code.
_SCHEDULE_CACHE: Dict[tuple, "ScheduleResult"] = {}

#: Optional persistent second level of the schedule cache (a directory
#: of pickled :class:`ScheduleResult` files), configured by
#: :func:`configure_schedule_cache` or the ``REPRO_SCHEDULE_CACHE``
#: environment variable.  A warm directory lets a fresh process link
#: every modem program without a single :meth:`ModuloScheduler.schedule`
#: call.
_DISK_CACHE_DIR: Optional[str] = None

#: On-disk payload format version; bump when ScheduleResult changes shape.
_DISK_FORMAT = 1

_CACHE_STATS = {"memory_hits": 0, "disk_hits": 0, "misses": 0}


def configure_schedule_cache(directory: Optional[str]) -> Optional[str]:
    """Set (or with ``None`` unset) the persistent schedule-cache directory."""
    global _DISK_CACHE_DIR
    _DISK_CACHE_DIR = os.fspath(directory) if directory is not None else None
    return _DISK_CACHE_DIR


def schedule_cache_dir() -> Optional[str]:
    """The active persistent cache directory, if any.

    The explicit :func:`configure_schedule_cache` setting wins; the
    ``REPRO_SCHEDULE_CACHE`` environment variable provides the default
    so worker processes and benchmark subprocesses inherit the cache.
    """
    return _DISK_CACHE_DIR or os.environ.get("REPRO_SCHEDULE_CACHE") or None


def clear_schedule_cache() -> None:
    """Drop the in-memory schedule cache (the disk cache is untouched)."""
    _SCHEDULE_CACHE.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


def schedule_cache_stats() -> Dict[str, int]:
    """Hit/miss counters since the last :func:`clear_schedule_cache`."""
    return dict(_CACHE_STATS)


def _dfg_signature(dfg: Dfg) -> tuple:
    sig = [dfg.name]
    for nid in sorted(dfg.nodes):
        node = dfg.nodes[nid]
        sig.append((nid, node.opcode.value, tuple(map(repr, node.srcs)),
                    node.live_out, repr(node.pred), node.pred_negate))
    return tuple(sig)


def _disk_cache_path(directory: str, key: tuple) -> str:
    """Content-addressed file name: SHA-256 of the key's canonical repr."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return os.path.join(directory, digest + ".sched.pkl")


def _load_disk_schedule(path: str, key: tuple) -> Optional[ScheduleResult]:
    """Read one cache file; any corruption reads as a miss, never a crash."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, MemoryError, ValueError, TypeError):
        return None
    if not isinstance(payload, dict) or payload.get("format") != _DISK_FORMAT:
        return None
    # The full key is stored and compared, so a (vanishingly unlikely)
    # digest collision or a stale file degrades to a recompile.
    if payload.get("key") != key:
        return None
    result = payload.get("result")
    return result if isinstance(result, ScheduleResult) else None


def _store_disk_schedule(path: str, key: tuple, result: ScheduleResult) -> None:
    """Atomic write (tmp + rename) so readers never see a torn file."""
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as fh:
            pickle.dump({"format": _DISK_FORMAT, "key": key, "result": result}, fh)
        os.replace(tmp, path)
    except OSError:
        pass  # a read-only or full disk must never fail compilation


def _schedule_cached(
    dfg: Dfg,
    arch: CgaArchitecture,
    max_ii: int,
    seed: int,
    live_in_regs: Dict[str, int],
    live_out_regs: Dict[str, int],
    static_trip: Optional[int],
    trip_reg: Optional[int],
) -> ScheduleResult:
    key = (
        arch.fingerprint(),
        _dfg_signature(dfg),
        tuple(sorted(live_in_regs.items())),
        tuple(sorted(live_out_regs.items())),
        static_trip,
        trip_reg,
        max_ii,
        seed,
    )
    directory = schedule_cache_dir()
    result = _SCHEDULE_CACHE.get(key)
    if result is not None:
        _CACHE_STATS["memory_hits"] += 1
        # Write-through for caches enabled after the schedule was
        # computed, so a warm process can still populate the directory.
        if directory is not None:
            path = _disk_cache_path(directory, key)
            if not os.path.exists(path):
                _store_disk_schedule(path, key, result)
        return result
    if directory is not None:
        path = _disk_cache_path(directory, key)
        result = _load_disk_schedule(path, key)
        if result is not None:
            _CACHE_STATS["disk_hits"] += 1
            _SCHEDULE_CACHE[key] = result
            return result
    _CACHE_STATS["misses"] += 1
    scheduler = ModuloScheduler(dfg, arch, max_ii=max_ii, seed=seed)
    result = scheduler.schedule(
        live_in_regs=live_in_regs,
        live_out_regs=live_out_regs,
        trip_count=static_trip,
        trip_count_reg=trip_reg,
    )
    _SCHEDULE_CACHE[key] = result
    if directory is not None:
        _store_disk_schedule(_disk_cache_path(directory, key), key, result)
    return result


@dataclass
class KernelCall:
    """One compiled kernel plus its register conventions."""

    kernel_id: int
    result: ScheduleResult
    live_in_regs: Dict[str, int]
    live_out_regs: Dict[str, int]
    trip_count_reg: Optional[int]


class ProgramLinker:
    """Builds a complete program out of kernels and VLIW sections."""

    def __init__(self, arch: CgaArchitecture, name: str = "program", seed: int = 0) -> None:
        self.arch = arch
        self.name = name
        self.seed = seed
        #: Register partitioning: r1-r39 for VLIW virtuals, r40-r47
        #: reserved for host-visible fixed registers (status, reduction
        #: results, tracking phasors), r48-r63 for the kernel calling
        #: convention (live-ins/outs/trip counts, recycled across calls).
        self._convention_pool = list(range(63, 47, -1))
        self._virtual_pool = list(range(1, 40))
        self._pred_pool = list(range(1, 60))
        self._items: List[object] = []  # VliwSection | KernelCall placeholders
        self._builder: Optional[VliwBuilder] = None
        self._kernels: List[KernelCall] = []
        self._section_counter = 0

    # ------------------------------------------------------------------

    def _alloc_convention_reg(self) -> int:
        if not self._convention_pool:
            raise CompileError("out of convention registers")
        return self._convention_pool.pop(0)

    def _current_builder(self) -> VliwBuilder:
        if self._builder is None:
            self._section_counter += 1
            self._builder = VliwBuilder("glue%d" % self._section_counter)
        return self._builder

    def _flush_section(self) -> None:
        if self._builder is not None:
            self._items.append(self._builder.finish())
            self._builder = None

    # ------------------------------------------------------------------

    def vliw(self) -> VliwBuilder:
        """The builder for glue / VLIW-mode code at the current position."""
        return self._current_builder()

    def call_kernel(
        self,
        dfg: Dfg,
        live_ins: Optional[Dict[str, ValueSource]] = None,
        trip_count: Union[int, PhysReg, VirtualReg, None] = None,
        max_ii: int = 32,
    ) -> Dict[str, PhysReg]:
        """Compile *dfg*, emit setup glue and the ``cga`` call.

        *live_ins* maps each DFG live-in name to an immediate, an
        already-populated physical register, or a virtual register of
        the *current* glue section (e.g. a parameter word loaded from
        the scratchpad — the runtime's host-written live-ins).
        *trip_count* is an int (compile-time trip) or a physical/virtual
        register holding the count.  Returns the physical registers that
        will hold each live-out.
        """
        live_ins = dict(live_ins or {})
        missing = [n for n in dfg.live_ins if n not in live_ins]
        if missing:
            raise CompileError("kernel %s: live-ins %r not supplied" % (dfg.name, missing))

        builder = self._current_builder()
        live_in_regs: Dict[str, int] = {}
        for name in dfg.live_ins:
            reg = self._alloc_convention_reg()
            live_in_regs[name] = reg
            value = live_ins[name]
            if isinstance(value, (PhysReg, VirtualReg)):
                # Register-to-register copies must preserve all 64 bits
                # (live-ins can be packed SIMD values); the lane add with
                # zero is the full-width move.
                builder.op(Opcode.C4ADD, value, 0, dst=PhysReg(reg))
            else:
                builder.op(Opcode.ADD, 0, int(value), dst=PhysReg(reg))
        live_out_regs = {name: self._alloc_convention_reg() for name in dfg.live_outs}

        trip_reg: Optional[int] = None
        static_trip: Optional[int] = None
        if isinstance(trip_count, (PhysReg, VirtualReg)):
            trip_reg = self._alloc_convention_reg()
            builder.op(Opcode.ADD, trip_count, 0, dst=PhysReg(trip_reg))
        elif trip_count is not None:
            static_trip = int(trip_count)
        else:
            raise CompileError("kernel %s: no trip count" % dfg.name)

        result = _schedule_cached(
            dfg, self.arch, max_ii, self.seed,
            live_in_regs, live_out_regs, static_trip, trip_reg,
        )
        kernel_id = len(self._kernels)
        call = KernelCall(kernel_id, result, live_in_regs, live_out_regs, trip_reg)
        self._kernels.append(call)
        self._flush_section()
        self._items.append(call)
        # Live-ins and the trip count die at kernel return; recycle their
        # registers for later calls (live-outs stay allocated).
        for reg in live_in_regs.values():
            self._convention_pool.append(reg)
        if trip_reg is not None:
            self._convention_pool.append(trip_reg)
        return {name: PhysReg(reg) for name, reg in live_out_regs.items()}

    def release(self, regs: Dict[str, PhysReg]) -> None:
        """Return no-longer-needed live-out registers to the pool."""
        for reg in regs.values():
            self._convention_pool.append(reg.index)

    # ------------------------------------------------------------------

    def link(self) -> Program:
        """Schedule everything and produce the executable program."""
        self._flush_section()
        slot_groups = [fu.groups for fu in self.arch.vliw_fus]
        regs = RegisterMap(self._virtual_pool, self._pred_pool)
        bundles: List[VliwBundle] = []
        kernels: Dict[int, CgaKernel] = {}
        width = self.arch.vliw_width
        for item in self._items:
            if isinstance(item, VliwSection):
                bundles.extend(schedule_vliw(item, slot_groups, regs))
            elif isinstance(item, KernelCall):
                kernels[item.kernel_id] = item.result.kernel
                slots = [None] * width
                slots[0] = Instruction(Opcode.CGA, srcs=(Imm(item.kernel_id),))
                bundles.append(VliwBundle(tuple(slots)))
            else:  # pragma: no cover - defensive
                raise CompileError("unknown link item %r" % (item,))
        slots = [None] * width
        slots[0] = Instruction(Opcode.HALT)
        bundles.append(VliwBundle(tuple(slots)))
        return Program(bundles=bundles, kernels=kernels, name=self.name)

    @property
    def kernel_results(self) -> List[ScheduleResult]:
        """Scheduling metadata of all compiled kernels, in call order."""
        return [call.result for call in self._kernels]
