"""Modulo scheduling of loop DFGs onto the CGA (the DRESC core idea).

The scheduler implements iterative modulo scheduling with explicit
placement and routing, in the spirit of Mei et al. (the paper's ref [6]):

1. compute the minimum initiation interval
   ``MII = max(ResMII, RecMII)`` from resource pressure (16 units, 4
   memory ports, 2 dividers) and recurrence cycles;
2. for ``II = MII, MII+1, ...``: place operations one by one, highest
   criticality first, onto ``(unit, cycle)`` slots of the modulo routing
   resource graph; every data edge is *routed*: either the consumer
   reads the producer's output latch directly over the interconnect
   (possible while the value's latch live window can be extended), or
   pass-through move operations (64-bit ``c4add x, 0``) are inserted to
   re-latch the value closer in space or time;
3. a few randomised restarts are attempted per II before giving up and
   growing II.

The result is a :class:`~repro.sim.program.CgaKernel` directly
executable by the simulator, plus scheduling metadata (II, stages,
inserted moves, utilization).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.config import CgaArchitecture
from repro.compiler.dfg import CompileError, Const, Dfg, LiveIn, Node, NodeRef
from repro.compiler.mrrg import Mrrg
from repro.isa.bits import MASK64
from repro.isa.opcodes import Opcode, OpGroup, latency_of
from repro.sim.program import (
    CgaContext,
    CgaKernel,
    CgaOp,
    DstKind,
    DstSel,
    Preload,
    SrcSel,
)
from repro.trace.tracer import get_tracer

#: Pass-through move: 64-bit lane add with zero (single cycle, any unit).
MOVE_OPCODE = Opcode.C4ADD
MOVE_LATENCY = 1


@dataclass
class _Placed:
    uid: int
    fu: int
    time: int
    opcode: Opcode

    @property
    def avail(self) -> int:
        """Absolute cycle at which the result appears in the output latch."""
        return self.time + latency_of(self.opcode)


@dataclass
class _Move:
    uid: int
    fu: int
    time: int
    read_fu: int  # latch this move reads (wire or self)
    stage_key: int  # uid of the value's producing node (for diagnostics)


@dataclass
class _Resolution:
    """How one consumer operand is fetched at run time."""

    kind: str  # "imm" | "cdrf" | "lrf" | "latch"
    value: int = 0  # immediate value / register index / entry
    read_fu: int = -1  # latch source for "latch"
    init: Optional[int] = None  # recurrence first-iteration value


@dataclass
class ScheduleResult:
    """A successfully scheduled kernel plus metadata."""

    kernel: CgaKernel
    ii: int
    stage_count: int
    n_ops: int
    n_moves: int
    utilization: float
    mii: int


class _RouteFail(Exception):
    pass


class ModuloScheduler:
    """Schedules one loop DFG onto one architecture."""

    def __init__(
        self,
        dfg: Dfg,
        arch: CgaArchitecture,
        max_ii: int = 32,
        restarts: int = 6,
        seed: int = 0,
    ) -> None:
        self.dfg = dfg
        self.arch = arch
        self.max_ii = max_ii
        self.restarts = restarts
        self.seed = seed

    # ------------------------------------------------------------------

    def min_ii(self) -> int:
        """MII = max(ResMII, RecMII)."""
        n_units = self.arch.n_units
        n_mem_units = len(self.arch.fus_with_group(OpGroup.LDMEM))
        n_div_units = len(self.arch.fus_with_group(OpGroup.DIV))
        n_ops = self.dfg.op_count()
        n_mem = self.dfg.mem_op_count()
        n_div = sum(
            1 for n in self.dfg.nodes.values() if n.group is OpGroup.DIV
        )
        # L1 bank pressure: 64-bit accesses claim two (adjacent) banks.
        word_accesses = 0
        for node in self.dfg.nodes.values():
            if node.is_load or node.is_store:
                word_accesses += 2 if node.opcode in (Opcode.LD_Q, Opcode.ST_Q) else 1
        n_banks = self.arch.l1.banks
        res_mii = max(
            -(-n_ops // n_units),
            -(-n_mem // max(n_mem_units, 1)) if n_mem else 1,
            -(-n_div // max(n_div_units, 1)) if n_div else 1,
            -(-word_accesses // n_banks) if word_accesses else 1,
        )
        return max(res_mii, self.dfg.recurrence_mii(), 1)

    def schedule(
        self,
        live_in_regs: Optional[Dict[str, int]] = None,
        live_out_regs: Optional[Dict[str, int]] = None,
        trip_count: Optional[int] = None,
        trip_count_reg: Optional[int] = None,
    ) -> ScheduleResult:
        """Schedule the DFG; returns the kernel and metadata.

        *live_in_regs* / *live_out_regs* assign central registers to the
        DFG's named live values (the linker's calling convention).
        """
        live_in_regs = dict(live_in_regs or {})
        live_out_regs = dict(live_out_regs or {})
        missing = [n for n in self.dfg.live_ins if n not in live_in_regs]
        if missing:
            raise CompileError("no central register for live-ins %r" % missing)
        missing = [n for n in self.dfg.live_outs if n not in live_out_regs]
        if missing:
            raise CompileError("no central register for live-outs %r" % missing)

        tracer = get_tracer()
        mii = self.min_ii()
        if tracer.enabled:
            tracer.instant(
                "modulo.search",
                tracer.tick(),
                cat="compiler",
                args={"kernel": self.dfg.name, "mii": mii, "max_ii": self.max_ii},
            )
        last_error: Optional[Exception] = None
        # Large DFGs take noticeably longer per attempt; fewer restarts
        # per II keeps compile times reasonable at a minor II cost.
        restarts = self.restarts if self.dfg.op_count() <= 60 else 2
        for ii in range(mii, self.max_ii + 1):
            for restart in range(restarts):
                rng = random.Random(self.seed * 7919 + ii * 131 + restart)
                try:
                    result = self._attempt(
                        ii, mii, rng, live_in_regs, live_out_regs,
                        trip_count, trip_count_reg,
                    )
                except CompileError as exc:
                    last_error = exc
                    if tracer.enabled:
                        tracer.instant(
                            "modulo.attempt_failed",
                            tracer.tick(),
                            cat="compiler",
                            args={
                                "kernel": self.dfg.name,
                                "ii": ii,
                                "restart": restart,
                                "error": str(exc),
                            },
                        )
                    continue
                if tracer.enabled:
                    tracer.instant(
                        "modulo.scheduled",
                        tracer.tick(),
                        cat="compiler",
                        args={
                            "kernel": self.dfg.name,
                            "ii": result.ii,
                            "mii": result.mii,
                            "stages": result.stage_count,
                            "moves": result.n_moves,
                            "utilization": result.utilization,
                        },
                    )
                return result
        if tracer.enabled:
            tracer.instant(
                "modulo.unschedulable",
                tracer.tick(),
                cat="compiler",
                args={
                    "kernel": self.dfg.name,
                    "max_ii": self.max_ii,
                    "error": str(last_error),
                },
            )
        raise CompileError(
            "kernel %s unschedulable up to II=%d: %s"
            % (self.dfg.name, self.max_ii, last_error)
        )

    # ------------------------------------------------------------------

    def _priority_order(self, rng: random.Random) -> List[Node]:
        """Topological order by descending height with seeded jitter."""
        heights: Dict[int, int] = {}

        def height(nid: int) -> int:
            if nid in heights:
                return heights[nid]
            node = self.dfg.nodes[nid]
            best = node.latency
            for consumer, ref in self.dfg.consumers(nid):
                if ref.distance == 0:
                    best = max(best, node.latency + height(consumer.node_id))
            heights[nid] = best
            return best

        for nid in self.dfg.nodes:
            height(nid)
        # Topological over distance-0 edges: node ids are already in
        # creation order, and distance-0 refs always point backwards, so
        # id order is a valid topological order.  Sort stably by height
        # descending within windows of the topological order: schedule
        # in id order but, among ready nodes, pick the tallest.
        remaining = set(self.dfg.nodes)
        placed: set = set()
        order: List[Node] = []
        while remaining:
            ready = [
                nid
                for nid in remaining
                if all(
                    (not isinstance(s, NodeRef)) or s.distance == 1
                    or s.node_id in placed
                    for s in list(self.dfg.nodes[nid].srcs)
                    + ([self.dfg.nodes[nid].pred] if self.dfg.nodes[nid].pred else [])
                )
            ]
            if not ready:  # pragma: no cover - guarded by Dfg validation
                raise CompileError("cyclic distance-0 dependences")
            ready.sort(key=lambda nid: (-heights[nid], rng.random()))
            pick = ready[0]
            order.append(self.dfg.nodes[pick])
            remaining.remove(pick)
            placed.add(pick)
        return order

    def _candidate_fus(self, node: Node, rng: random.Random) -> List[int]:
        fus = self.arch.fus_supporting(node.opcode)
        mem_capable = set(self.arch.fus_with_group(OpGroup.LDMEM))
        vliw = {fu.index for fu in self.arch.vliw_fus}

        def klass(fu: int) -> int:
            # Prefer plain units, keep memory units for memory ops and
            # ported units for ops that need the central RF.
            score = 0
            if node.group not in (OpGroup.LDMEM, OpGroup.STMEM) and fu in mem_capable:
                score += 2
            needs_cdrf = node.live_out is not None or any(
                isinstance(s, LiveIn) for s in node.srcs
            )
            if needs_cdrf and fu in vliw:
                score -= 1  # being on a ported unit avoids extra moves
            elif fu in vliw:
                score += 1
            return score

        ordered = sorted(fus, key=lambda fu: (klass(fu), rng.random()))
        return ordered

    # ------------------------------------------------------------------

    def _attempt(
        self,
        ii: int,
        mii: int,
        rng: random.Random,
        live_in_regs: Dict[str, int],
        live_out_regs: Dict[str, int],
        trip_count: Optional[int],
        trip_count_reg: Optional[int],
    ) -> ScheduleResult:
        mrrg = Mrrg(self.arch, ii)
        placements: Dict[int, _Placed] = {}
        moves: List[_Move] = []
        resolutions: Dict[Tuple[int, object], _Resolution] = {}
        liveout_moves: Dict[int, _Move] = {}  # node id -> final move with CDRF write
        move_uid = [10_000]

        order = self._priority_order(rng)
        window = 2 * ii + 8
        _asap, alap = self.dfg.asap_alap()
        for node in order:
            self._place_one(
                node, ii, mrrg, placements, moves, resolutions, liveout_moves,
                move_uid, window, rng, alap,
            )
        return self._emit(
            ii, mii, mrrg, placements, moves, resolutions, liveout_moves,
            live_in_regs, live_out_regs, trip_count, trip_count_reg,
        )

    def _operands(self, node: Node) -> List[Tuple[object, object]]:
        """(key, operand) pairs including the guard predicate."""
        out: List[Tuple[object, object]] = [
            (i, src) for i, src in enumerate(node.srcs)
        ]
        if node.pred is not None:
            out.append(("pred", node.pred))
        return out

    def _place_one(
        self,
        node: Node,
        ii: int,
        mrrg: Mrrg,
        placements: Dict[int, _Placed],
        moves: List[_Move],
        resolutions: Dict[Tuple[int, object], _Resolution],
        liveout_moves: Dict[int, _Move],
        move_uid: List[int],
        window: int,
        rng: random.Random,
        alap: Optional[Dict[int, int]] = None,
    ) -> None:
        lat = node.latency
        earliest = 0
        for _key, ref in self._operands(node):
            if isinstance(ref, NodeRef) and ref.node_id in placements:
                p = placements[ref.node_id]
                earliest = max(earliest, p.avail - ref.distance * ii)
        deadline = earliest + window
        for consumer, ref in self.dfg.consumers(node.node_id):
            if consumer.node_id in placements and consumer.node_id != node.node_id:
                c = placements[consumer.node_id]
                deadline = min(deadline, c.time + ref.distance * ii - lat)
        if deadline < earliest:
            raise CompileError(
                "node %d (%s): empty scheduling window"
                % (node.node_id, node.opcode.value)
            )

        # Prefer times near the node's static ALAP so short side chains
        # (address generation) land next to their consumers instead of
        # at the top of the schedule, which would make their values
        # unroutably stale by the time the consumer reads them.
        target = max(earliest, alap.get(node.node_id, earliest) if alap else earliest)
        target = min(target, deadline)
        times = sorted(range(earliest, deadline + 1), key=lambda t: (abs(t - target), t))

        produces = not node.is_store
        fus = self._candidate_fus(node, rng)
        for t in times:
            for fu in fus:
                if not mrrg.slot_free(fu, t):
                    continue
                if produces and not mrrg.commit_free(fu, t + lat):
                    continue
                snap = mrrg.checkpoint()
                moves_snap = len(moves)
                res_snap = dict(resolutions)
                lo_snap = dict(liveout_moves)
                try:
                    self._commit_placement(
                        node, fu, t, ii, mrrg, placements, moves,
                        resolutions, liveout_moves, move_uid,
                    )
                    return
                except (_RouteFail, CompileError):
                    mrrg.restore(snap)
                    placements.pop(node.node_id, None)
                    del moves[moves_snap:]
                    resolutions.clear()
                    resolutions.update(res_snap)
                    liveout_moves.clear()
                    liveout_moves.update(lo_snap)
        raise CompileError(
            "node %d (%s): no feasible placement at II=%d"
            % (node.node_id, node.opcode.value, ii)
        )

    def _commit_placement(
        self,
        node: Node,
        fu: int,
        t: int,
        ii: int,
        mrrg: Mrrg,
        placements: Dict[int, _Placed],
        moves: List[_Move],
        resolutions: Dict[Tuple[int, object], _Resolution],
        liveout_moves: Dict[int, _Move],
        move_uid: List[int],
    ) -> None:
        lat = node.latency
        mrrg.claim_slot(fu, t, node.node_id)
        produces = not node.is_store
        if produces:
            mrrg.claim_commit(fu, t + lat)
        placed = _Placed(node.node_id, fu, t, node.opcode)

        # Resolve this node's operands.
        for key, ref in self._operands(node):
            if isinstance(ref, Const):
                resolutions[(node.node_id, key)] = _Resolution(
                    "imm", ref.value & MASK64
                )
            elif isinstance(ref, LiveIn):
                if self.arch.fus[fu].has_cdrf_port:
                    if not mrrg.cdrf_read_free(t):
                        raise _RouteFail()
                    mrrg.claim_cdrf_read(t)
                    resolutions[(node.node_id, key)] = _Resolution(
                        "cdrf:%s" % ref.name, 0, fu
                    )
                else:
                    if not mrrg.lrf_alloc_free(fu, ref.name):
                        raise _RouteFail()
                    entry = mrrg.claim_lrf(fu, ref.name)
                    resolutions[(node.node_id, key)] = _Resolution(
                        "lrf:%s" % ref.name, entry, fu
                    )
            elif isinstance(ref, NodeRef):
                if ref.node_id == node.node_id:
                    producer: _Placed = placed
                elif ref.node_id in placements:
                    producer = placements[ref.node_id]
                else:
                    # Back edge whose producer is not placed yet; the
                    # producer resolves it when it is placed.
                    continue
                read_time = t + ref.distance * ii
                read_fu = self._route(
                    producer, fu, read_time, ii, mrrg, moves, move_uid,
                    value_uid=producer.uid,
                )
                resolutions[(node.node_id, key)] = _Resolution(
                    "latch", 0, read_fu, init=ref.init
                )

        placements[node.node_id] = placed

        # Resolve back edges into already-placed consumers.
        for consumer, ref in self.dfg.consumers(node.node_id):
            if consumer.node_id == node.node_id:
                continue
            if consumer.node_id not in placements:
                continue
            c = placements[consumer.node_id]
            # Identify the operand keys of this edge.
            for key, operand in self._operands(consumer):
                if (
                    isinstance(operand, NodeRef)
                    and operand.node_id == node.node_id
                    and (consumer.node_id, key) not in resolutions
                ):
                    read_time = c.time + operand.distance * ii
                    read_fu = self._route(
                        placed, c.fu, read_time, ii, mrrg, moves, move_uid,
                        value_uid=node.node_id,
                    )
                    resolutions[(consumer.node_id, key)] = _Resolution(
                        "latch", 0, read_fu, init=operand.init
                    )

        # Live-out write-back.
        if node.live_out is not None:
            if self.arch.fus[fu].has_cdrf_port:
                mrrg.claim_cdrf_write(t + lat)
            else:
                self._place_liveout_move(
                    node, placed, ii, mrrg, moves, liveout_moves, move_uid
                )

    # ------------------------------------------------------------------

    def _route(
        self,
        producer: _Placed,
        dst_fu: int,
        read_time: int,
        ii: int,
        mrrg: Mrrg,
        moves: List[_Move],
        move_uid: List[int],
        value_uid: int,
    ) -> int:
        """Route *producer*'s value so *dst_fu* can read it at *read_time*.

        Returns the FU whose latch the consumer reads.  Claims all
        resources (window extensions, move slots/commits).  Raises
        :class:`_RouteFail` when no route exists.
        """
        ic = self.arch.interconnect
        avail = producer.avail
        if read_time < avail:
            raise _RouteFail()

        def reaches(src_fu: int) -> bool:
            return src_fu == dst_fu or ic.connected(src_fu, dst_fu)

        # Direct read from the producer's latch.
        slack = read_time - avail
        if reaches(producer.fu) and slack <= ii - 1:
            if mrrg.can_extend_window(producer.fu, avail, slack):
                mrrg.extend_window(producer.fu, avail, slack)
                return producer.fu

        # Breadth-first search over re-latching moves (bounded depth).
        # State: (n_moves, fu, avail); explore a few re-latch times per hop.
        best: Optional[List[Tuple[int, int, int]]] = None  # [(fu, t_m, from_fu)]
        frontier: List[Tuple[int, int, int, List[Tuple[int, int, int]]]] = [
            (0, producer.fu, avail, [])
        ]
        visited = {(producer.fu, avail)}
        while frontier:
            n_moves, cur_fu, cur_avail, path = frontier.pop(0)
            if n_moves >= 3:
                continue
            for nxt_fu in sorted(ic.successors(cur_fu)):
                # Candidate re-latch times: as early as possible first.
                t_lo = cur_avail
                t_hi = min(cur_avail + ii - 1, read_time - MOVE_LATENCY)
                found_t = None
                for t_m in range(t_lo, t_hi + 1):
                    if not mrrg.slot_free(nxt_fu, t_m):
                        continue
                    if not mrrg.commit_free(nxt_fu, t_m + MOVE_LATENCY):
                        continue
                    if not mrrg.can_extend_window(cur_fu, cur_avail, t_m - cur_avail):
                        continue
                    found_t = t_m
                    break
                if found_t is None:
                    continue
                new_avail = found_t + MOVE_LATENCY
                state = (nxt_fu, new_avail)
                if state in visited:
                    continue
                visited.add(state)
                new_path = path + [(nxt_fu, found_t, cur_fu)]
                final_slack = read_time - new_avail
                if reaches(nxt_fu) and 0 <= final_slack <= ii - 1:
                    if mrrg.can_extend_window(nxt_fu, new_avail, final_slack):
                        best = new_path
                        break
                frontier.append((n_moves + 1, nxt_fu, new_avail, new_path))
            if best is not None:
                break
        if best is None:
            raise _RouteFail()
        # Claim the route.
        prev_fu, prev_avail = producer.fu, avail
        for hop_fu, t_m, from_fu in best:
            mrrg.extend_window(prev_fu, prev_avail, t_m - prev_avail)
            mrrg.claim_slot(hop_fu, t_m, move_uid[0])
            mrrg.claim_commit(hop_fu, t_m + MOVE_LATENCY)
            moves.append(_Move(move_uid[0], hop_fu, t_m, prev_fu, value_uid))
            move_uid[0] += 1
            prev_fu, prev_avail = hop_fu, t_m + MOVE_LATENCY
        final_slack = read_time - prev_avail
        mrrg.extend_window(prev_fu, prev_avail, final_slack)
        return prev_fu

    def _place_liveout_move(
        self,
        node: Node,
        placed: _Placed,
        ii: int,
        mrrg: Mrrg,
        moves: List[_Move],
        liveout_moves: Dict[int, _Move],
        move_uid: List[int],
    ) -> None:
        """Route a live-out value to a CDRF-ported unit and write it there."""
        ic = self.arch.interconnect
        avail = placed.avail
        for vliw_fu in [fu.index for fu in self.arch.vliw_fus]:
            if not (vliw_fu == placed.fu or ic.connected(placed.fu, vliw_fu)):
                continue
            for t_m in range(avail, avail + ii):
                if not mrrg.slot_free(vliw_fu, t_m):
                    continue
                if not mrrg.commit_free(vliw_fu, t_m + MOVE_LATENCY):
                    continue
                if not mrrg.cdrf_write_free(t_m + MOVE_LATENCY):
                    continue
                if not mrrg.can_extend_window(placed.fu, avail, t_m - avail):
                    continue
                mrrg.extend_window(placed.fu, avail, t_m - avail)
                mrrg.claim_slot(vliw_fu, t_m, move_uid[0])
                mrrg.claim_commit(vliw_fu, t_m + MOVE_LATENCY)
                mrrg.claim_cdrf_write(t_m + MOVE_LATENCY)
                move = _Move(move_uid[0], vliw_fu, t_m, placed.fu, node.node_id)
                moves.append(move)
                liveout_moves[node.node_id] = move
                move_uid[0] += 1
                return
        raise _RouteFail()

    # ------------------------------------------------------------------

    def _emit(
        self,
        ii: int,
        mii: int,
        mrrg: Mrrg,
        placements: Dict[int, _Placed],
        moves: List[_Move],
        resolutions: Dict[Tuple[int, object], _Resolution],
        liveout_moves: Dict[int, _Move],
        live_in_regs: Dict[str, int],
        live_out_regs: Dict[str, int],
        trip_count: Optional[int],
        trip_count_reg: Optional[int],
    ) -> ScheduleResult:
        max_time = 0
        for p in placements.values():
            max_time = max(max_time, p.time)
        for m in moves:
            max_time = max(max_time, m.time)
        stage_count = max_time // ii + 1

        contexts = [CgaContext() for _ in range(ii)]

        def src_sel(res: _Resolution, self_fu: int) -> SrcSel:
            if res.kind == "imm":
                return SrcSel.imm(res.value)
            if res.kind.startswith("cdrf:"):
                name = res.kind.split(":", 1)[1]
                return SrcSel.cdrf(live_in_regs[name])
            if res.kind.startswith("lrf:"):
                return SrcSel.lrf(res.value)
            if res.kind == "latch":
                base = (
                    SrcSel.self_() if res.read_fu == self_fu else SrcSel.wire(res.read_fu)
                )
                if res.init is not None:
                    base = base.with_init(res.init)
                return base
            raise CompileError("unresolved operand (%s)" % res.kind)

        for node in self.dfg.nodes.values():
            p = placements[node.node_id]
            phase, stage = p.time % ii, p.time // ii
            srcs = []
            for i in range(len(node.srcs)):
                res = resolutions.get((node.node_id, i))
                if res is None:
                    raise CompileError(
                        "operand %d of node %d unresolved" % (i, node.node_id)
                    )
                srcs.append(src_sel(res, p.fu))
            pred_sel = None
            if node.pred is not None:
                res = resolutions.get((node.node_id, "pred"))
                if res is None:
                    raise CompileError("guard of node %d unresolved" % node.node_id)
                pred_sel = src_sel(res, p.fu)
            dsts: List[DstSel] = []
            if node.live_out is not None and node.node_id not in liveout_moves:
                dsts.append(
                    DstSel(
                        DstKind.CDRF,
                        live_out_regs[node.live_out],
                        last_iteration_only=True,
                    )
                )
            contexts[phase].ops[p.fu] = CgaOp(
                opcode=node.opcode,
                srcs=tuple(srcs),
                dsts=tuple(dsts),
                stage=stage,
                pred=pred_sel,
                pred_negate=node.pred_negate,
            )

        for m in moves:
            phase, stage = m.time % ii, m.time // ii
            src = SrcSel.self_() if m.read_fu == m.fu else SrcSel.wire(m.read_fu)
            dsts = []
            for nid, lom in liveout_moves.items():
                if lom.uid == m.uid:
                    name = self.dfg.nodes[nid].live_out
                    dsts.append(
                        DstSel(
                            DstKind.CDRF,
                            live_out_regs[name],
                            last_iteration_only=True,
                        )
                    )
            contexts[phase].ops[m.fu] = CgaOp(
                opcode=MOVE_OPCODE,
                srcs=(src, SrcSel.imm(0)),
                dsts=tuple(dsts),
                stage=stage,
            )

        preloads = [
            Preload(fu, entry, live_in_regs[name.split(":", 1)[-1] if ":" in name else name])
            for fu, entry, name in mrrg.preload_list()
        ]

        kernel = CgaKernel(
            name=self.dfg.name,
            ii=ii,
            stage_count=stage_count,
            contexts=contexts,
            trip_count=trip_count,
            trip_count_reg=trip_count_reg,
            preloads=preloads,
        )
        return ScheduleResult(
            kernel=kernel,
            ii=ii,
            stage_count=stage_count,
            n_ops=len(placements),
            n_moves=len(moves),
            utilization=mrrg.utilization(),
            mii=mii,
        )
