"""Loop-body data-flow graphs: the compiler's kernel IR.

A :class:`Dfg` describes one loop iteration as a graph of
:class:`Node` operations.  Edges are value references:

* :class:`NodeRef` — the value of another node, ``distance`` iterations
  ago (``distance=0`` for ordinary data flow, ``distance=1`` for
  loop-carried recurrences such as accumulators and inductions, with an
  ``init`` value consumed on the first iteration);
* :class:`Const` — a compile-time constant, materialised as a
  configuration immediate;
* :class:`LiveIn` — a named loop-invariant value supplied by the VLIW
  code around the loop (a base address, a scale factor).  The scheduler
  reads it from the central register file on a ported unit or preloads
  it into the executing unit's local register file.

Nodes may be marked live-out (their final-iteration value is written to
a named central register) and may carry a guard predicate reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.isa.opcodes import Opcode, OpGroup, group_of, latency_of


class CompileError(Exception):
    """Raised for malformed kernels and unschedulable graphs."""


@dataclass(frozen=True)
class Const:
    """A compile-time constant operand."""

    value: int


@dataclass(frozen=True)
class LiveIn:
    """A named loop-invariant operand set up by the surrounding VLIW code."""

    name: str


@dataclass(frozen=True)
class NodeRef:
    """A reference to another node's value.

    ``distance`` is the dependence distance in iterations; ``init`` must
    be given when ``distance == 1`` and supplies the value read on the
    consumer's first iteration (only distance-1 recurrences are
    supported, which covers inductions and accumulators).
    """

    node_id: int
    distance: int = 0
    init: Optional[int] = None

    def __post_init__(self) -> None:
        if self.distance not in (0, 1):
            raise CompileError("only dependence distances 0 and 1 are supported")
        if self.distance == 1 and self.init is None:
            raise CompileError("distance-1 references need an init value")
        if self.distance == 0 and self.init is not None:
            raise CompileError("init is only meaningful on recurrence edges")


Operand = Union[NodeRef, Const, LiveIn]


@dataclass
class Node:
    """One operation of the loop body."""

    node_id: int
    opcode: Opcode
    srcs: Tuple[Operand, ...]
    live_out: Optional[str] = None  # name of the live-out value
    pred: Optional[Operand] = None
    pred_negate: bool = False

    @property
    def latency(self) -> int:
        return latency_of(self.opcode)

    @property
    def group(self) -> OpGroup:
        return group_of(self.opcode)

    @property
    def is_store(self) -> bool:
        return self.group is OpGroup.STMEM

    @property
    def is_load(self) -> bool:
        return self.group is OpGroup.LDMEM

    @property
    def has_side_effect(self) -> bool:
        return self.is_store or self.live_out is not None


class Dfg:
    """A loop-body data-flow graph with recurrence edges."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: Dict[int, Node] = {}
        self.live_ins: List[str] = []
        self.live_outs: List[str] = []
        self._next_id = 0

    # ------------------------------------------------------------------

    def add_node(
        self,
        opcode: Opcode,
        srcs: Sequence[Operand],
        live_out: Optional[str] = None,
        pred: Optional[Operand] = None,
        pred_negate: bool = False,
    ) -> NodeRef:
        """Append an operation; returns a distance-0 reference to it."""
        node = Node(self._next_id, opcode, tuple(srcs), live_out, pred, pred_negate)
        for src in node.srcs:
            self._check_operand(src)
        if pred is not None:
            self._check_operand(pred)
        self.nodes[node.node_id] = node
        self._next_id += 1
        if live_out is not None:
            if live_out in self.live_outs:
                raise CompileError("duplicate live-out %r" % live_out)
            self.live_outs.append(live_out)
        return NodeRef(node.node_id)

    def declare_live_in(self, name: str) -> LiveIn:
        """Register a named loop-invariant input."""
        if name not in self.live_ins:
            self.live_ins.append(name)
        return LiveIn(name)

    def _check_operand(self, operand: Operand) -> None:
        if isinstance(operand, NodeRef):
            if operand.node_id >= self._next_id and operand.distance == 0:
                raise CompileError(
                    "forward distance-0 reference to node %d" % operand.node_id
                )
        elif isinstance(operand, LiveIn):
            if operand.name not in self.live_ins:
                raise CompileError("undeclared live-in %r" % operand.name)
        elif not isinstance(operand, Const):
            raise CompileError("bad operand %r" % (operand,))

    # ------------------------------------------------------------------

    def consumers(self, node_id: int) -> List[Tuple[Node, NodeRef]]:
        """All (consumer node, reference) pairs reading *node_id*."""
        out = []
        for node in self.nodes.values():
            refs = list(node.srcs)
            if node.pred is not None:
                refs.append(node.pred)
            for ref in refs:
                if isinstance(ref, NodeRef) and ref.node_id == node_id:
                    out.append((node, ref))
        return out

    def validate(self) -> None:
        """Check structural invariants; raises :class:`CompileError`."""
        for node in self.nodes.values():
            useful = node.has_side_effect or self.consumers(node.node_id)
            if not useful:
                raise CompileError(
                    "%s: node %d (%s) is dead code"
                    % (self.name, node.node_id, node.opcode.value)
                )
        # Forward-reference cycles without a recurrence edge are
        # impossible by construction (distance-0 refs must point
        # backwards), so reaching here means the graph is well-formed.

    # ------------------------------------------------------------------

    def op_count(self) -> int:
        """Number of operations per iteration."""
        return len(self.nodes)

    def mem_op_count(self) -> int:
        """Loads + stores per iteration."""
        return sum(1 for n in self.nodes.values() if n.is_load or n.is_store)

    def critical_path(self) -> int:
        """Longest latency chain through distance-0 edges."""
        memo: Dict[int, int] = {}

        def height(nid: int) -> int:
            if nid in memo:
                return memo[nid]
            node = self.nodes[nid]
            best = node.latency
            for consumer, ref in self.consumers(nid):
                if ref.distance == 0:
                    best = max(best, node.latency + height(consumer.node_id))
            memo[nid] = best
            return best

        if not self.nodes:
            return 0
        return max(height(nid) for nid in self.nodes)

    def asap_alap(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Static ASAP/ALAP times over distance-0 edges.

        ALAP anchors short side chains (address generation) near their
        consumers, which is how the scheduler knows to place them late.
        """
        asap: Dict[int, int] = {}

        def compute_asap(nid: int) -> int:
            if nid in asap:
                return asap[nid]
            node = self.nodes[nid]
            start = 0
            for ref in list(node.srcs) + ([node.pred] if node.pred else []):
                if isinstance(ref, NodeRef) and ref.distance == 0:
                    producer = self.nodes[ref.node_id]
                    start = max(start, compute_asap(ref.node_id) + producer.latency)
            asap[nid] = start
            return start

        for nid in self.nodes:
            compute_asap(nid)
        length = max(
            (asap[nid] + self.nodes[nid].latency for nid in self.nodes), default=0
        )
        alap: Dict[int, int] = {}

        def compute_alap(nid: int) -> int:
            if nid in alap:
                return alap[nid]
            node = self.nodes[nid]
            finish = length
            for consumer, ref in self.consumers(nid):
                if ref.distance == 0:
                    finish = min(finish, compute_alap(consumer.node_id))
            alap[nid] = finish - node.latency
            return alap[nid]

        for nid in self.nodes:
            compute_alap(nid)
        return asap, alap

    def recurrence_mii(self) -> int:
        """Minimum II from recurrence cycles (distance-1 self/loop chains).

        For every cycle C in the dependence graph, II >= ceil(sum of
        latencies / sum of distances).  With distances restricted to
        {0, 1}, cycles are found by DFS over the graph including back
        edges.
        """
        best = 1
        # Build adjacency: producer -> (consumer, latency, distance).
        adj: Dict[int, List[Tuple[int, int, int]]] = {nid: [] for nid in self.nodes}
        for node in self.nodes.values():
            refs = list(node.srcs) + ([node.pred] if node.pred is not None else [])
            for ref in refs:
                if isinstance(ref, NodeRef):
                    producer = self.nodes[ref.node_id]
                    adj[producer.node_id].append(
                        (node.node_id, producer.latency, ref.distance)
                    )
        # Simple cycle detection over small graphs: bounded DFS from each
        # node following edges, tracking (latency, distance) sums.
        n = len(self.nodes)

        def dfs(start: int, current: int, lat_sum: int, dist_sum: int, depth: int):
            nonlocal best
            if depth > n:
                return
            for nxt, lat, dist in adj[current]:
                nl, nd = lat_sum + lat, dist_sum + dist
                if nxt == start:
                    if nd > 0:
                        best = max(best, -(-nl // nd))
                elif nd <= 1:  # cycles need at least one back edge; prune
                    dfs(start, nxt, nl, nd, depth + 1)

        for nid in self.nodes:
            dfs(nid, nid, 0, 0, 0)
        return best
