"""DRESC-like compiler for the hybrid CGA/VLIW processor.

The paper compiles a single ANSI-C source (with SIMD intrinsics) to both
machines with the DRESC framework [Mei et al., ref 6]: inner loops are
modulo-scheduled onto the coarse-grained array, the remaining code is
compiled to the 3-issue VLIW.  This package reproduces that flow with a
Python-embedded kernel DSL standing in for the C frontend:

* :mod:`repro.compiler.dfg` — loop-body data-flow graphs with
  loop-carried (recurrence) edges, live-ins and live-outs;
* :mod:`repro.compiler.builder` — the "C with intrinsics" DSL used to
  author kernels (:class:`KernelBuilder`) and VLIW sections
  (:class:`VliwBuilder`);
* :mod:`repro.compiler.mrrg` — the modulo routing resource graph: issue
  slots, latch lifetimes, write-back ports, central-RF ports and local
  register files, all modulo the initiation interval;
* :mod:`repro.compiler.modulo` — the modulo scheduler: places each
  operation on a (unit, cycle) slot and routes operand flows over the
  interconnect, inserting pass-through moves where the direct reach of
  an output latch is insufficient;
* :mod:`repro.compiler.vliw_sched` — list scheduler producing 3-issue
  bundles for non-kernel code;
* :mod:`repro.compiler.linker` — assembles kernels and VLIW sections
  into a runnable :class:`~repro.sim.program.Program`.
"""

from repro.compiler.dfg import Dfg, Node, NodeRef, Const, LiveIn, CompileError
from repro.compiler.builder import KernelBuilder, VliwBuilder
from repro.compiler.modulo import ModuloScheduler, ScheduleResult
from repro.compiler.vliw_sched import schedule_vliw
from repro.compiler.linker import ProgramLinker

__all__ = [
    "Dfg",
    "Node",
    "NodeRef",
    "Const",
    "LiveIn",
    "CompileError",
    "KernelBuilder",
    "VliwBuilder",
    "ModuloScheduler",
    "ScheduleResult",
    "schedule_vliw",
    "ProgramLinker",
]
