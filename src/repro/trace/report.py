"""Run reports: a JSON artifact summarising one profiled execution.

A *run report* is the machine-readable record a simulation leaves
behind: per-kernel spans (the Table-2 rows), the stall-cause breakdown,
per-FU utilization heatmap data, the CGA/VLIW mode timeline and the
full activity counters.  Benchmarks write one per run so per-PR
trajectories stay comparable; ``benchmarks/run_report.schema.json``
freezes the format.

Build one with :func:`build_run_report` (generic) or
:func:`build_receiver_report` (from a
:class:`~repro.modem.receiver.ReceiverOutput`); render it with
:func:`render_report` or from the command line::

    python -m repro.trace.report runs/report.json

which prints the human-readable summary: top stall causes, FU
occupancy and a Table-2-style kernel table.

Inputs are duck-typed (profiles need ``name``/``stats``/``mode``/
``ipc``/``cycles``; stats need ``as_dict()``) so this module does not
import the simulator.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple, Union

from repro.trace.events import ALL_STALL_CAUSES
from repro.trace.tracer import Tracer

#: Format identifier embedded in (and checked against) every report.
RUN_REPORT_SCHEMA = "repro.run_report/v1"


def _stall_breakdown(stats) -> dict:
    data = stats.as_dict()
    causes = data.get("stall_causes", {})
    return {cause.value: int(causes.get(cause.value, 0)) for cause in ALL_STALL_CAUSES}


def _kernel_row(phase: str, profile) -> dict:
    stats = profile.stats
    return {
        "phase": phase,
        "kernel": profile.name,
        "mode": profile.mode,
        "ipc": round(profile.ipc, 3),
        "cycles": int(profile.cycles),
        "ii": profile.ii,
        "stall_cycles": int(stats.stall_cycles),
        "stall_breakdown": _stall_breakdown(stats),
    }


def build_run_report(
    name: str,
    profiles: Sequence[Union[Tuple[str, object], object]],
    stats,
    tracer: Optional[Tracer] = None,
    meta: Optional[dict] = None,
    n_units: int = 16,
) -> dict:
    """Assemble the run-report dict for one profiled execution.

    *profiles* entries are either ``(phase, profile)`` pairs or bare
    profile objects (phase defaults to ``""``); *stats* is the
    aggregate over all of them.
    """
    data = stats.as_dict()
    counters = data["counters"]
    kernels = []
    for entry in profiles:
        phase, profile = entry if isinstance(entry, tuple) else ("", entry)
        kernels.append(_kernel_row(phase, profile))

    total_cycles = int(stats.total_cycles)
    fu_rows = [
        {
            "fu": fu,
            "ops": int(ops),
            "ops_per_cycle": round(ops / total_cycles, 4) if total_cycles else 0.0,
        }
        for fu, ops in sorted(data.get("fu_ops", {}).items())
    ]
    timeline = []
    trace_info = {"events": 0, "dropped": 0}
    if tracer is not None:
        for event in tracer.events:
            if event.cat == "mode" and event.kind == "X":
                timeline.append(
                    {
                        "name": event.name,
                        "mode": "CGA" if event.name.startswith("cga") else "VLIW",
                        "t0": event.ts,
                        "dur": event.dur,
                    }
                )
        trace_info = {"events": len(tracer), "dropped": tracer.dropped}

    return {
        "schema": RUN_REPORT_SCHEMA,
        "name": name,
        "meta": dict(meta or {}),
        "totals": {
            "total_cycles": total_cycles,
            "vliw_cycles": int(stats.vliw_cycles),
            "cga_cycles": int(stats.cga_cycles),
            "sleep_cycles": int(stats.sleep_cycles),
            "stall_cycles": int(stats.stall_cycles),
            "total_ops": int(stats.total_ops),
            "ipc": round(stats.ipc, 4),
            "cga_fraction": round(stats.cga_fraction, 4),
        },
        "stall_breakdown": _stall_breakdown(stats),
        "counters": {k: int(v) for k, v in sorted(counters.items())},
        "kernels": kernels,
        "fu_utilization": fu_rows,
        "n_units": n_units,
        "mode_timeline": timeline,
        "trace": trace_info,
    }


def build_receiver_report(
    output,
    tracer: Optional[Tracer] = None,
    name: str = "mimo_ofdm_rx",
    meta: Optional[dict] = None,
    n_units: int = 16,
) -> dict:
    """Run report for a :class:`~repro.modem.receiver.ReceiverOutput`."""
    profiles = [("preamble", r.profile) for r in output.preamble_regions]
    profiles += [("data", r.profile) for r in output.data_regions]
    return build_run_report(
        name, profiles, output.stats, tracer=tracer, meta=meta, n_units=n_units
    )


def save_run_report(report: dict, path: str) -> None:
    """Write *report* as indented JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=False)


def load_run_report(path: str) -> dict:
    """Load a report, checking the format identifier."""
    with open(path) as fh:
        report = json.load(fh)
    if report.get("schema") != RUN_REPORT_SCHEMA:
        raise ValueError(
            "%s: not a %s document (schema=%r)"
            % (path, RUN_REPORT_SCHEMA, report.get("schema"))
        )
    return report


# ----------------------------------------------------------------------
# Human-readable rendering (the CLI).
# ----------------------------------------------------------------------


def _bar(fraction: float, width: int = 30) -> str:
    filled = int(round(min(max(fraction, 0.0), 1.0) * width))
    return "#" * filled + "." * (width - filled)


def render_stalls(report: dict, top: int = 10) -> str:
    """Top stall causes as a ranked table."""
    totals = report["totals"]
    stall_total = max(totals["stall_cycles"], 1)
    cycle_total = max(totals["total_cycles"], 1)
    rows = sorted(report["stall_breakdown"].items(), key=lambda kv: -kv[1])[:top]
    lines = ["%-16s %10s %9s %9s" % ("stall cause", "cycles", "% stalls", "% cycles")]
    lines.append("-" * 48)
    for cause, cycles in rows:
        lines.append(
            "%-16s %10d %8.1f%% %8.1f%%"
            % (cause, cycles, 100.0 * cycles / stall_total, 100.0 * cycles / cycle_total)
        )
    lines.append(
        "%-16s %10d %8s %8.1f%%"
        % ("total", totals["stall_cycles"], "", 100.0 * totals["stall_cycles"] / cycle_total)
    )
    return "\n".join(lines)


def render_fu_heatmap(report: dict) -> str:
    """Per-FU occupancy as text bars (the utilization heatmap)."""
    rows = report.get("fu_utilization", [])
    lines = ["%-5s %10s %8s  %s" % ("FU", "ops", "ops/cyc", "occupancy")]
    lines.append("-" * 60)
    peak = max((r["ops_per_cycle"] for r in rows), default=0.0) or 1.0
    for row in rows:
        lines.append(
            "fu%-3d %10d %8.3f  %s"
            % (row["fu"], row["ops"], row["ops_per_cycle"], _bar(row["ops_per_cycle"] / peak))
        )
    return "\n".join(lines)


def render_kernels(report: dict) -> str:
    """Table-2-style kernel table with stall columns."""
    lines = [
        "%-9s %-26s %-6s %6s %8s %8s %-16s"
        % ("phase", "kernel", "mode", "IPC", "cycles", "stalls", "top cause")
    ]
    lines.append("-" * 86)
    for row in report["kernels"]:
        breakdown = row.get("stall_breakdown", {})
        top_cause = max(breakdown, key=breakdown.get) if any(breakdown.values()) else ""
        lines.append(
            "%-9s %-26s %-6s %6.2f %8d %8d %-16s"
            % (
                row["phase"],
                row["kernel"],
                row["mode"],
                row["ipc"],
                row["cycles"],
                row["stall_cycles"],
                top_cause,
            )
        )
    return "\n".join(lines)


def render_report(report: dict, top: int = 10) -> str:
    """The full human-readable summary of a run report."""
    totals = report["totals"]
    head = [
        "run report: %s" % report.get("name", "?"),
    ]
    for key, value in sorted(report.get("meta", {}).items()):
        head.append("  %s: %s" % (key, value))
    head.append(
        "  cycles %d (VLIW %d / CGA %d / sleep %d), ops %d, IPC %.2f, CGA share %.0f%%"
        % (
            totals["total_cycles"],
            totals["vliw_cycles"],
            totals["cga_cycles"],
            totals["sleep_cycles"],
            totals["total_ops"],
            totals["ipc"],
            100.0 * totals["cga_fraction"],
        )
    )
    trace = report.get("trace", {})
    if trace.get("events"):
        head.append(
            "  trace: %d events (%d dropped)" % (trace["events"], trace.get("dropped", 0))
        )
    sections = [
        "\n".join(head),
        "-- stall attribution --\n%s" % render_stalls(report, top=top),
        "-- FU utilization --\n%s" % render_fu_heatmap(report),
    ]
    if report.get("kernels"):
        sections.append("-- kernels --\n%s" % render_kernels(report))
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.report",
        description="Render a saved run report as a human-readable summary.",
    )
    parser.add_argument("report", help="path to a run-report JSON file")
    parser.add_argument(
        "--top", type=int, default=10, help="stall causes to list (default 10)"
    )
    args = parser.parse_args(argv)
    try:
        report = load_run_report(args.report)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(render_report(report, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
