"""Event vocabulary of the trace subsystem.

Two small, dependency-free definitions shared by the tracer, the
simulator and the exporters:

* :class:`TraceEvent` — one structured event in the ring buffer.  The
  ``kind`` field follows the Chrome ``trace_event`` phase letters so
  the export is a direct mapping: ``"X"`` complete (span with known
  duration), ``"B"``/``"E"`` nested span begin/end, ``"i"`` instant,
  ``"C"`` counter sample.
* :class:`StallCause` — the stall taxonomy.  Every cycle the simulator
  books into ``ActivityStats.stall_cycles`` is attributed to exactly
  one cause, so per-cause counters always sum to the lump total (the
  invariant :meth:`ActivityStats.validate` enforces).

This module must stay a leaf: ``repro.sim`` imports the taxonomy from
here, so importing anything from ``repro.sim`` (or ``repro.trace``
siblings that do) would create an import cycle.
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple, Optional


class StallCause(str, Enum):
    """Why the core lost a cycle (the paper's stall sources)."""

    #: L1 bank contention froze the array / lengthened a load beyond
    #: its architectural latency (the transparent contention queue).
    BANK_CONFLICT = "bank_conflict"
    #: Instruction-cache miss refill in VLIW mode.
    ICACHE_MISS = "icache_miss"
    #: Dead cycles after a taken branch (Table 1's 2/3-cycle latency).
    BRANCH = "branch"
    #: Scoreboard interlock: a bundle waited for operands in flight
    #: (includes load-use delay lengthened by bank contention, which in
    #: VLIW mode surfaces through the scoreboard rather than a freeze).
    INTERLOCK = "interlock"
    #: The core waited for CGA configuration contexts over DMA.
    DMA_CONFIG = "dma_config"


#: Order used by reports when listing all causes.
ALL_STALL_CAUSES = tuple(StallCause)


class TraceEvent(NamedTuple):
    """One ring-buffered event.

    ``ts`` and ``dur`` are in core clock cycles for simulator events;
    compiler events use the tracer's tick clock (monotonic sequence
    numbers) since no simulated time exists at compile time.
    """

    kind: str  # "X" | "B" | "E" | "i" | "C"
    name: str
    cat: str
    ts: int
    dur: int = 0
    args: Optional[dict] = None
