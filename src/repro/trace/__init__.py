"""Observability subsystem: structured tracing, stall attribution, reports.

The simulator, the compiler and the modem pipeline emit structured
events (spans, instants, counters) into a :class:`Tracer` — a bounded
ring buffer that costs one attribute test when disabled.  Exporters
turn a captured trace and the activity statistics into:

* Chrome/Perfetto ``trace_event`` JSON (:func:`chrome_trace`,
  :func:`write_chrome_trace`) — open at https://ui.perfetto.dev;
* Prometheus exposition text (:func:`prometheus_text`);
* a JSON *run report* (:func:`build_run_report`,
  :func:`build_receiver_report`) with per-kernel spans, the stall-cause
  breakdown, FU utilization heatmap data and the mode timeline —
  rendered by ``python -m repro.trace.report``.

The stall taxonomy (:class:`StallCause`) is defined here and consumed
by :class:`repro.sim.stats.ActivityStats`, whose per-cause counters
must sum exactly to ``stall_cycles`` (``ActivityStats.validate``).
"""

from repro.trace.events import ALL_STALL_CAUSES, StallCause, TraceEvent
from repro.trace.export import (
    chrome_trace,
    chrome_trace_events,
    prometheus_text,
    write_chrome_trace,
)
from repro.trace.schema import SchemaError, schema_errors, validate_json

# repro.trace.report is re-exported lazily (PEP 562): importing it here
# would pre-load it into sys.modules and make ``python -m
# repro.trace.report`` print a runpy double-import RuntimeWarning.
_REPORT_EXPORTS = (
    "RUN_REPORT_SCHEMA",
    "build_receiver_report",
    "build_run_report",
    "load_run_report",
    "render_fu_heatmap",
    "render_kernels",
    "render_report",
    "render_stalls",
    "save_run_report",
)


def __getattr__(name):
    if name in _REPORT_EXPORTS:
        from repro.trace import report

        return getattr(report, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
from repro.trace.tracer import NULL_TRACER, TraceError, Tracer, get_tracer, set_tracer

__all__ = [
    "ALL_STALL_CAUSES",
    "StallCause",
    "TraceEvent",
    "Tracer",
    "TraceError",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "prometheus_text",
    "RUN_REPORT_SCHEMA",
    "build_run_report",
    "build_receiver_report",
    "save_run_report",
    "load_run_report",
    "render_report",
    "render_stalls",
    "render_fu_heatmap",
    "render_kernels",
    "SchemaError",
    "schema_errors",
    "validate_json",
]
