"""Exporters: Chrome/Perfetto ``trace_event`` JSON and Prometheus text.

Both exporters are read-only views over a :class:`~repro.trace.tracer.Tracer`
or an activity-statistics object; neither imports the simulator (the
statistics argument is duck-typed through ``as_dict()``), keeping
``repro.trace`` a leaf package.

Chrome trace
------------
:func:`chrome_trace` returns the ``{"traceEvents": [...]}`` object the
Chrome tracing UI and https://ui.perfetto.dev load directly.  Event
categories map to named threads of one process, so the mode timeline
(``mode``), the Table-2 regions (``region``), stall instants (``stall``)
and compiler events (``compiler``) appear as parallel tracks.
Timestamps are emitted cycle-for-microsecond: one simulated cycle
renders as 1 us, which keeps Perfetto's zoom ergonomic for kernel-scale
traces.

Prometheus text
---------------
:func:`prometheus_text` renders counters in the Prometheus exposition
format (``# TYPE`` headers plus ``name{label="..."} value`` samples) so
a run's statistics can be diffed or scraped with standard tooling.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.trace.tracer import Tracer

#: Stable thread ids per category; unknown categories get ids above these.
_CATEGORY_TIDS = {"region": 1, "mode": 2, "stall": 3, "mem": 4, "bus": 5, "compiler": 6}

PID = 1


def _tid_of(cat: str, extra: Dict[str, int]) -> int:
    if cat in _CATEGORY_TIDS:
        return _CATEGORY_TIDS[cat]
    if cat not in extra:
        extra[cat] = max(_CATEGORY_TIDS.values()) + 1 + len(extra)
    return extra[cat]


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """Map buffered events to Chrome ``trace_event`` dicts."""
    extra: Dict[str, int] = {}
    out: List[dict] = []
    seen_tids: Dict[int, str] = {}
    for event in tracer.events:
        tid = _tid_of(event.cat, extra)
        seen_tids.setdefault(tid, event.cat)
        entry = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.kind,
            "ts": event.ts,
            "pid": PID,
            "tid": tid,
        }
        if event.kind == "X":
            entry["dur"] = event.dur
        if event.kind == "i":
            entry["s"] = "t"  # thread-scoped instant
        if event.args:
            entry["args"] = event.args
        out.append(entry)
    # Thread-name metadata so Perfetto labels the tracks.
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": PID,
            "tid": tid,
            "args": {"name": cat},
        }
        for tid, cat in sorted(seen_tids.items())
    ]
    meta.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "args": {"name": "repro simulated core"},
        }
    )
    return meta + out


def chrome_trace(tracer: Tracer, meta: Optional[dict] = None) -> dict:
    """The complete Chrome-trace JSON object for *tracer*."""
    other = {"clock": "core cycles (rendered as us)", "dropped_events": tracer.dropped}
    if meta:
        other.update(meta)
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path: str, tracer: Tracer, meta: Optional[dict] = None) -> None:
    """Serialise :func:`chrome_trace` to *path*."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, meta), fh, indent=1)


# ----------------------------------------------------------------------
# Prometheus exposition format.
# ----------------------------------------------------------------------

_PREFIX = "repro_sim_"

#: Help text for the keyed families; scalar counters get a generic line.
_KEYED_HELP = {
    "fu_ops": "Executed operations per functional unit.",
    "op_group_ops": "Executed operations per ISA operation group.",
    "stall_cycles_by_cause": "Stalled cycles attributed per cause "
    "(causes sum exactly to stall_cycles).",
}


def prometheus_text(stats, labels: Optional[Dict[str, object]] = None) -> str:
    """Render *stats* (anything with ``as_dict()``) as Prometheus text.

    Scalar counters become ``repro_sim_<name>``; keyed counters become
    labelled series (``repro_sim_fu_ops{fu="3"}``,
    ``repro_sim_stall_cycles_by_cause{cause="bank_conflict"}``, ...).
    Label values are escaped and every family carries ``# HELP`` and
    ``# TYPE`` lines via the shared :mod:`repro.obs.prom` builders, so
    the page survives ``promtool check metrics``.
    """
    # Stdlib-only leaf module (like this one); no cycle, see repro.obs.
    from repro.obs.prom import prom_header, prom_sample

    data = stats.as_dict()
    lines: List[str] = []
    for name, value in sorted(data.get("counters", {}).items()):
        full = _PREFIX + name
        lines.extend(
            prom_header(full, "counter", "Simulator activity counter %s." % name)
        )
        lines.append(prom_sample(full, value, labels))
    keyed = [
        ("fu_ops", "fu", data.get("fu_ops", {})),
        ("op_group_ops", "group", data.get("op_groups", {})),
        ("stall_cycles_by_cause", "cause", data.get("stall_causes", {})),
    ]
    for name, label, mapping in keyed:
        if not mapping:
            continue
        full = _PREFIX + name
        lines.extend(prom_header(full, "counter", _KEYED_HELP[name]))
        for key, value in sorted(mapping.items(), key=lambda kv: str(kv[0])):
            merged = dict(labels or {})
            merged[label] = key
            lines.append(prom_sample(full, value, merged))
    return "\n".join(lines) + "\n"
