"""A minimal JSON-schema checker (no third-party dependency).

The CI smoke check validates emitted run reports against
``benchmarks/run_report.schema.json``.  Rather than depending on the
``jsonschema`` package (not guaranteed in every environment this repo
targets), this implements the small subset of JSON Schema the report
schema actually uses: ``type``, ``properties``, ``required``,
``items``, ``enum``, ``minimum``, ``additionalProperties`` (as a
schema) and ``patternProperties`` value schemas.

:func:`schema_errors` returns a list of human-readable problems (empty
when valid); :func:`validate_json` raises on the first report instead.
"""

from __future__ import annotations

import re
from typing import Any, List

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


class SchemaError(Exception):
    """Raised by :func:`validate_json` on an invalid document."""


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[expected])


def schema_errors(value: Any, schema: dict, path: str = "$") -> List[str]:
    """All violations of *schema* in *value* (depth-first)."""
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(value, t) for t in allowed):
            errors.append(
                "%s: expected %s, got %s" % (path, "/".join(allowed), type(value).__name__)
            )
            return errors
    if "enum" in schema and value not in schema["enum"]:
        errors.append("%s: %r not in enum %r" % (path, value, schema["enum"]))
    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append("%s: %r below minimum %r" % (path, value, schema["minimum"]))
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append("%s: missing required property %r" % (path, key))
        props = schema.get("properties", {})
        patterns = schema.get("patternProperties", {})
        additional = schema.get("additionalProperties")
        for key, sub in value.items():
            sub_path = "%s.%s" % (path, key)
            if key in props:
                errors.extend(schema_errors(sub, props[key], sub_path))
                continue
            matched = False
            for pattern, pschema in patterns.items():
                if re.search(pattern, str(key)):
                    errors.extend(schema_errors(sub, pschema, sub_path))
                    matched = True
                    break
            if matched:
                continue
            if isinstance(additional, dict):
                errors.extend(schema_errors(sub, additional, sub_path))
            elif additional is False:
                errors.append("%s: unexpected property %r" % (path, key))
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(schema_errors(item, schema["items"], "%s[%d]" % (path, i)))
    return errors


def validate_json(value: Any, schema: dict) -> None:
    """Raise :class:`SchemaError` listing every violation, if any."""
    errors = schema_errors(value, schema)
    if errors:
        raise SchemaError("; ".join(errors))
