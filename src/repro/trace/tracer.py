"""The structured event tracer: ring-buffered, zero-cost when disabled.

Design constraints (this sits on the simulator's innermost loops):

* **disabled is free** — every emit method returns after a single
  attribute test, and a disabled tracer never allocates its buffer, so
  instrumented code can call unconditionally.  Hot loops that build an
  ``args`` dict should still guard with ``if tracer.enabled:`` so the
  dict itself is never constructed;
* **bounded memory** — events land in a ring buffer of fixed capacity;
  overflow drops the *oldest* events and counts them in
  :attr:`Tracer.dropped` (a trace is a window, never an OOM);
* **rebasable clock** — the simulator restarts its cycle counter per
  region/core; :meth:`set_base` shifts subsequently emitted timestamps
  so a multi-region run forms one coherent timeline.

A process-wide default tracer (:func:`get_tracer` / :func:`set_tracer`)
serves components with no natural injection point — the compiler emits
its II-search progress there.  It defaults to :data:`NULL_TRACER`,
which is permanently disabled.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.trace.events import TraceEvent


class TraceError(Exception):
    """Raised on misuse of the span stack (end without begin)."""


class Tracer:
    """Collects :class:`TraceEvent` objects into a bounded ring buffer."""

    __slots__ = ("enabled", "capacity", "dropped", "_events", "_base", "_stack", "_tick")

    def __init__(self, capacity: int = 1_000_000, enabled: bool = True) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.dropped = 0
        #: Created lazily on the first enabled emit; a tracer that is
        #: never enabled never allocates storage.
        self._events: Optional[deque] = None
        self._base = 0
        self._stack: List[TraceEvent] = []
        self._tick = 0

    # -- clock ----------------------------------------------------------

    @property
    def base(self) -> int:
        """Offset added to every emitted timestamp."""
        return self._base

    def set_base(self, base: int) -> None:
        """Rebase the clock: subsequent events get ``ts + base``."""
        self._base = base

    def advance_base(self, cycles: int) -> None:
        """Shift the clock forward (after a region's core restarts at 0)."""
        self._base += cycles

    def tick(self) -> int:
        """A monotonic sequence clock for events with no simulated time."""
        self._tick += 1
        return self._tick

    # -- emission -------------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        buf = self._events
        if buf is None:
            buf = self._events = deque(maxlen=self.capacity)
        if len(buf) == self.capacity:
            self.dropped += 1
        buf.append(event)

    def instant(self, name: str, ts: int, cat: str = "sim", args: Optional[dict] = None) -> None:
        """A point event (Chrome phase ``i``)."""
        if not self.enabled:
            return
        self._emit(TraceEvent("i", name, cat, ts + self._base, 0, args))

    def complete(
        self, name: str, ts: int, dur: int, cat: str = "sim", args: Optional[dict] = None
    ) -> None:
        """A span with known start and duration (Chrome phase ``X``)."""
        if not self.enabled:
            return
        self._emit(TraceEvent("X", name, cat, ts + self._base, dur, args))

    def counter(self, name: str, ts: int, values: dict, cat: str = "sim") -> None:
        """A counter sample (Chrome phase ``C``); *values* is series->number."""
        if not self.enabled:
            return
        self._emit(TraceEvent("C", name, cat, ts + self._base, 0, dict(values)))

    def begin(self, name: str, ts: int, cat: str = "sim", args: Optional[dict] = None) -> None:
        """Open a nested span (Chrome phase ``B``); close with :meth:`end`."""
        if not self.enabled:
            return
        event = TraceEvent("B", name, cat, ts + self._base, 0, args)
        self._stack.append(event)
        self._emit(event)

    def end(self, ts: int, args: Optional[dict] = None) -> None:
        """Close the innermost open span (Chrome phase ``E``)."""
        if not self.enabled:
            return
        if not self._stack:
            raise TraceError("end() without a matching begin()")
        opener = self._stack.pop()
        self._emit(TraceEvent("E", opener.name, opener.cat, ts + self._base, 0, args))

    @contextmanager
    def span(self, name: str, ts: int, cat: str = "sim", args: Optional[dict] = None) -> Iterator[None]:
        """Context manager over :meth:`begin`/:meth:`end` (same clock)."""
        self.begin(name, ts, cat, args)
        try:
            yield
        finally:
            self.end(ts)

    # -- inspection -----------------------------------------------------

    @property
    def depth(self) -> int:
        """Current nesting depth of open spans."""
        return len(self._stack)

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of the buffered events, oldest first."""
        return list(self._events) if self._events is not None else []

    def __len__(self) -> int:
        return len(self._events) if self._events is not None else 0

    def clear(self) -> None:
        """Drop all buffered events and reset the clocks."""
        self._events = None
        self.dropped = 0
        self._base = 0
        self._stack.clear()
        self._tick = 0


#: Shared permanently-disabled tracer: components default to it so that
#: instrumentation costs one attribute test when tracing is off.
NULL_TRACER = Tracer(capacity=0, enabled=False)

_global_tracer: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled unless installed)."""
    return _global_tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install *tracer* as the process-wide default; ``None`` disables.

    Returns the previous tracer so callers can restore it.
    """
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer if tracer is not None else NULL_TRACER
    return previous
