"""Complete machine configuration: array + register files + memories + clock."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.arch.resources import FunctionalUnit, MemorySpec, RegisterFileSpec
from repro.arch.topology import Interconnect
from repro.isa.opcodes import Opcode, OpGroup


@dataclass(frozen=True)
class CgaArchitecture:
    """A fully specified hybrid CGA/VLIW machine.

    Instances are immutable; the simulator, compiler, area model and
    power model all consume the same object, so an experiment that
    changes the architecture (ablations) constructs a new instance.

    Attributes
    ----------
    name:
        Human-readable identifier.
    rows, cols:
        Array geometry (paper: 4x4).
    fus:
        The functional units, indexed row-major; ``fus[i].index == i``.
    interconnect:
        CGA inter-unit connectivity.
    cdrf / cprf:
        Central data (64x64-bit, 6R/3W) and predicate (64x1-bit)
        register files, shared by VLIW and CGA modes in mutual
        exclusion.
    local_rf_entries:
        Entries in each CGA-only unit's local 2R/1W file.
    l1:
        Data scratchpad: 4 banks, 1 port per bank, 16K x 32-bit total.
    icache:
        Direct-mapped instruction cache (32 KB, 128-bit lines).
    config_memory_contexts:
        Depth of the ultra-wide configuration memory in contexts (one
        context is fetched per CGA cycle).
    clock_hz:
        Operating frequency (paper: 400 MHz worst case).
    icache_miss_penalty:
        Cycles to refill one 128-bit line from the external instruction
        memory interface.
    """

    name: str
    rows: int
    cols: int
    fus: Tuple[FunctionalUnit, ...]
    interconnect: Interconnect
    cdrf: RegisterFileSpec
    cprf: RegisterFileSpec
    local_rf_entries: int
    l1: MemorySpec
    icache: MemorySpec
    config_memory_contexts: int
    clock_hz: int = 400_000_000
    icache_miss_penalty: int = 8

    def __post_init__(self) -> None:
        if len(self.fus) != self.rows * self.cols:
            raise ValueError(
                "expected %d FUs, got %d" % (self.rows * self.cols, len(self.fus))
            )
        for i, fu in enumerate(self.fus):
            if fu.index != i:
                raise ValueError("FU at position %d has index %d" % (i, fu.index))
        if self.interconnect.n_units != len(self.fus):
            raise ValueError("interconnect size does not match FU count")
        slots = sorted(fu.vliw_slot for fu in self.fus if fu.is_vliw)
        if slots != list(range(len(slots))):
            raise ValueError("VLIW slots must be 0..n-1, got %r" % slots)

    @property
    def n_units(self) -> int:
        """Number of CGA functional units."""
        return len(self.fus)

    @property
    def vliw_width(self) -> int:
        """Number of VLIW issue slots."""
        return sum(1 for fu in self.fus if fu.is_vliw)

    @property
    def vliw_fus(self) -> List[FunctionalUnit]:
        """The VLIW-capable units, ordered by issue slot."""
        return sorted((fu for fu in self.fus if fu.is_vliw), key=lambda f: f.vliw_slot)

    @property
    def cga_only_fus(self) -> List[FunctionalUnit]:
        """Units that participate only in CGA mode."""
        return [fu for fu in self.fus if not fu.is_vliw]

    def fus_supporting(self, op: Opcode) -> List[int]:
        """Indices of the units able to execute *op*."""
        return [fu.index for fu in self.fus if fu.supports(op)]

    def fus_with_group(self, group: OpGroup) -> List[int]:
        """Indices of the units implementing operation group *group*."""
        return [fu.index for fu in self.fus if group in fu.groups]

    def structural_key(self) -> tuple:
        """Canonical tuple of everything that shapes compilation/execution.

        Deliberately excludes :attr:`name`: two instances with the same
        structural key schedule and execute identically, whatever they
        are called, and two same-named ablation variants do not.
        """

        def rf_key(rf: RegisterFileSpec) -> tuple:
            return (rf.entries, rf.width, rf.read_ports, rf.write_ports)

        def mem_key(mem: MemorySpec) -> tuple:
            return (mem.words, mem.width, mem.banks)

        fus = tuple(
            (
                fu.index,
                tuple(sorted(g.value for g in fu.groups)),
                fu.vliw_slot,
                fu.has_cdrf_port,
                rf_key(fu.local_rf) if fu.local_rf is not None else None,
            )
            for fu in self.fus
        )
        return (
            self.rows,
            self.cols,
            fus,
            (self.interconnect.n_units, tuple(sorted(self.interconnect.edges))),
            rf_key(self.cdrf),
            rf_key(self.cprf),
            self.local_rf_entries,
            mem_key(self.l1),
            mem_key(self.icache),
            self.config_memory_contexts,
            self.clock_hz,
            self.icache_miss_penalty,
        )

    def fingerprint(self) -> str:
        """Stable structural digest (hex), independent of :attr:`name`.

        This is the architecture component of schedule-cache keys (in
        memory and on disk): it is derived from :meth:`structural_key`
        via SHA-256 of its canonical ``repr``, so it is reproducible
        across processes and hash seeds.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            digest = hashlib.sha256(repr(self.structural_key()).encode("utf-8"))
            cached = digest.hexdigest()[:16]
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    @property
    def peak_gops_16bit(self) -> float:
        """Peak 16-bit GOPS: units x SIMD lanes x clock."""
        return self.n_units * 4 * self.clock_hz / 1e9

    def summary(self) -> str:
        """One-paragraph description used by the benchmark harness."""
        return (
            "%s: %dx%d CGA (%d units, %d VLIW slots), CDRF %dx%d-bit %dR/%dW, "
            "L1 %d KB / %d banks, I$ %d KB, %d config contexts, %.0f MHz, "
            "peak %.1f GOPS (16-bit)"
            % (
                self.name,
                self.rows,
                self.cols,
                self.n_units,
                self.vliw_width,
                self.cdrf.entries,
                self.cdrf.width,
                self.cdrf.read_ports,
                self.cdrf.write_ports,
                self.l1.bytes // 1024,
                self.l1.banks,
                self.icache.bytes // 1024,
                self.config_memory_contexts,
                self.clock_hz / 1e6,
                self.peak_gops_16bit,
            )
        )
