"""Datapath resource descriptions: functional units, register files, memories."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.isa.opcodes import Opcode, OpGroup, group_of


@dataclass(frozen=True)
class RegisterFileSpec:
    """A register file macro.

    Attributes
    ----------
    name:
        Identifier used in statistics and the area/power models.
    entries:
        Number of registers.
    width:
        Bits per register.
    read_ports / write_ports:
        Port counts; the paper's central data register file is 6R/3W,
        the predicate file mirrors it at 1-bit width, and the CGA local
        files are 2R/1W.
    """

    name: str
    entries: int
    width: int
    read_ports: int
    write_ports: int

    @property
    def bits(self) -> int:
        """Total storage bits."""
        return self.entries * self.width


@dataclass(frozen=True)
class MemorySpec:
    """An SRAM macro (scratchpad bank, I$ array, configuration memory)."""

    name: str
    words: int
    width: int
    banks: int = 1

    @property
    def bits(self) -> int:
        """Total storage bits over all banks."""
        return self.words * self.width * self.banks

    @property
    def bytes(self) -> int:
        """Total storage bytes over all banks."""
        return self.bits // 8


@dataclass(frozen=True)
class FunctionalUnit:
    """One 64-bit 4-way SIMD functional unit of the array.

    Attributes
    ----------
    index:
        Position in the array, row-major (0..15 for the paper core).
    groups:
        Operation groups this unit implements (Table 1 column "# FUs").
    vliw_slot:
        Issue-slot number when the unit participates in VLIW mode
        (``None`` for CGA-only units).  VLIW units read and write the
        central register files directly.
    has_cdrf_port:
        True when the unit has a 2-read/1-write port pair into the
        central data/predicate register files while in CGA mode.  In the
        paper these are the same three units that form the VLIW.
    local_rf:
        The unit's private register file (``None`` for units that use
        the central file instead).
    """

    index: int
    groups: FrozenSet[OpGroup]
    vliw_slot: Optional[int] = None
    has_cdrf_port: bool = False
    local_rf: Optional[RegisterFileSpec] = None

    def supports(self, op: Opcode) -> bool:
        """True when this unit can execute *op*."""
        return group_of(op) in self.groups

    @property
    def is_vliw(self) -> bool:
        """True when the unit doubles as a VLIW issue slot."""
        return self.vliw_slot is not None

    @property
    def can_load_store(self) -> bool:
        """True when the unit has an L1 port (load/store capable)."""
        return OpGroup.LDMEM in self.groups or OpGroup.STMEM in self.groups
