"""CGA interconnect topologies (Fig 3).

The interconnect is a directed graph over FU indices: an edge ``u -> v``
means the (pipelined) output latch of unit *u* can be selected by an
input multiplexer of unit *v* in the next cycle.  Every unit always sees
its own output (accumulation feedback), so ``u -> u`` edges are implied
and not stored.

The paper describes the 16 units as "densely interconnected"; the ADRES
instances of that generation used a nearest-neighbour mesh augmented
with row/column buses and diagonals.  :func:`mesh_plus_topology` builds
that family and is the default for the paper core;
:func:`full_topology` (all-to-all) is available for experiments that
factor out routability, and :func:`mesh_topology` is the sparsest
variant used in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple


@dataclass(frozen=True)
class Interconnect:
    """Directed connectivity between CGA functional units.

    ``edges`` holds pairs ``(src_fu, dst_fu)``; self-edges are implicit.
    """

    n_units: int
    edges: FrozenSet[Tuple[int, int]]

    def __post_init__(self) -> None:
        for src, dst in self.edges:
            if not (0 <= src < self.n_units and 0 <= dst < self.n_units):
                raise ValueError("edge (%d, %d) out of range" % (src, dst))

    def predecessors(self, fu: int) -> List[int]:
        """Units whose outputs unit *fu* can read (including itself)."""
        preds = {src for src, dst in self.edges if dst == fu}
        preds.add(fu)
        return sorted(preds)

    def successors(self, fu: int) -> List[int]:
        """Units that can read unit *fu*'s output (including itself)."""
        succs = {dst for src, dst in self.edges if src == fu}
        succs.add(fu)
        return sorted(succs)

    def connected(self, src: int, dst: int) -> bool:
        """True when *dst* can read *src*'s output directly."""
        return src == dst or (src, dst) in self.edges

    @property
    def wire_count(self) -> int:
        """Number of physical point-to-point wires (excludes self loops)."""
        return len(self.edges)

    def degree_histogram(self) -> Dict[int, int]:
        """Histogram of input-mux fan-in over units (self edge included)."""
        hist: Dict[int, int] = {}
        for fu in range(self.n_units):
            deg = len(self.predecessors(fu))
            hist[deg] = hist.get(deg, 0) + 1
        return hist


def _rc(index: int, cols: int) -> Tuple[int, int]:
    return divmod(index, cols)


def _idx(row: int, col: int, cols: int) -> int:
    return row * cols + col


def mesh_topology(rows: int, cols: int) -> Interconnect:
    """Plain nearest-neighbour mesh (bidirectional, non-torus)."""
    edges: Set[Tuple[int, int]] = set()
    for r in range(rows):
        for c in range(cols):
            u = _idx(r, c, cols)
            for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    edges.add((u, _idx(rr, cc, cols)))
    return Interconnect(rows * cols, frozenset(edges))


def mesh_plus_topology(rows: int, cols: int) -> Interconnect:
    """Mesh + diagonals + full row/column buses ("densely interconnected").

    Every unit reaches: its 4-neighbourhood, its 4 diagonal neighbours,
    and every other unit in the same row and in the same column.  For a
    4x4 array this gives a fan-in of 9-10 per unit, matching the dense
    interconnect (and its dominant power share) described in the paper.
    """
    edges: Set[Tuple[int, int]] = set()
    for r in range(rows):
        for c in range(cols):
            u = _idx(r, c, cols)
            # 8-neighbourhood.
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    if dr == 0 and dc == 0:
                        continue
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < rows and 0 <= cc < cols:
                        edges.add((u, _idx(rr, cc, cols)))
            # Row and column buses.
            for cc in range(cols):
                if cc != c:
                    edges.add((u, _idx(r, cc, cols)))
            for rr in range(rows):
                if rr != r:
                    edges.add((u, _idx(rr, c, cols)))
    return Interconnect(rows * cols, frozenset(edges))


def full_topology(n_units: int) -> Interconnect:
    """All-to-all interconnect (routing never fails; ablation baseline)."""
    edges = {(u, v) for u in range(n_units) for v in range(n_units) if u != v}
    return Interconnect(n_units, frozenset(edges))
