"""Architecture template of the hybrid CGA/VLIW processor (Figs 1-3).

The template is declarative: :class:`~repro.arch.resources.FunctionalUnit`
and :class:`~repro.arch.resources.RegisterFileSpec` describe datapath
resources, :mod:`repro.arch.topology` describes the CGA interconnect and
:class:`~repro.arch.config.CgaArchitecture` bundles a complete machine
(array geometry, register files, memories, clock).

:func:`repro.arch.presets.paper_core` instantiates the exact machine of
the paper: a 4x4 array of 64-bit 4-way-SIMD functional units, three of
which double as the 3-issue VLIW with access to the shared 64x64-bit
central register file, the remaining thirteen carrying local 2R/1W
register files.
"""

from repro.arch.resources import FunctionalUnit, RegisterFileSpec, MemorySpec
from repro.arch.topology import Interconnect, mesh_plus_topology, full_topology
from repro.arch.config import CgaArchitecture
from repro.arch.presets import paper_core, small_test_core

__all__ = [
    "FunctionalUnit",
    "RegisterFileSpec",
    "MemorySpec",
    "Interconnect",
    "mesh_plus_topology",
    "full_topology",
    "CgaArchitecture",
    "paper_core",
    "small_test_core",
]
