"""Concrete machine instances, including the exact configuration of the paper."""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.arch.config import CgaArchitecture
from repro.arch.resources import FunctionalUnit, MemorySpec, RegisterFileSpec
from repro.arch.topology import Interconnect, full_topology, mesh_plus_topology
from repro.isa.opcodes import OpGroup

#: Groups implemented by every unit of the array (Table 1, "0-15").
_COMMON_GROUPS: FrozenSet[OpGroup] = frozenset(
    {
        OpGroup.ARITH,
        OpGroup.LOGIC,
        OpGroup.SHIFT,
        OpGroup.COMP,
        OpGroup.PRED,
        OpGroup.MUL,
        OpGroup.SIMD1,
        OpGroup.SIMD2,
    }
)


def _paper_fu(index: int, local_rf_entries: int) -> FunctionalUnit:
    """Build one FU of the paper core according to Table 1's FU ranges."""
    groups = set(_COMMON_GROUPS)
    if index == 0:
        groups.add(OpGroup.BRANCH)
        groups.add(OpGroup.CONTROL)
    if index <= 3:
        groups.add(OpGroup.LDMEM)
        groups.add(OpGroup.STMEM)
    if index <= 1:
        groups.add(OpGroup.DIV)
    is_vliw = index < 3
    local_rf = None
    if not is_vliw:
        local_rf = RegisterFileSpec(
            name="lrf%d" % index,
            entries=local_rf_entries,
            width=64,
            read_ports=2,
            write_ports=1,
        )
    return FunctionalUnit(
        index=index,
        groups=frozenset(groups),
        vliw_slot=index if is_vliw else None,
        has_cdrf_port=is_vliw,
        local_rf=local_rf,
    )


def paper_core(
    name: str = "adres-sdr-4x4",
    interconnect: Optional[Interconnect] = None,
    local_rf_entries: int = 8,
    config_memory_contexts: int = 128,
) -> CgaArchitecture:
    """The processor of the paper.

    * 4x4 array of 64-bit 4-way-SIMD units;
    * units 0-2 double as the 3-issue VLIW and hold 2R/1W ports into the
      shared register files; the 13 others carry local 2R/1W files;
    * unit 0 executes branches, units 0-3 load/store (one L1 port each),
      units 0-1 embed the two hardwired 24-bit dividers;
    * 64x64-bit 6R/3W central data RF + 64x1-bit predicate RF;
    * 16K x 32-bit (64 KB) L1 scratchpad in 4 single-ported banks;
    * 32 KB direct-mapped I$ with 128-bit lines;
    * ultra-wide configuration memory, one context per CGA cycle;
    * 400 MHz worst-case clock (25.6 GOPS peak at 16-bit).
    """
    rows = cols = 4
    fus = tuple(_paper_fu(i, local_rf_entries) for i in range(rows * cols))
    return CgaArchitecture(
        name=name,
        rows=rows,
        cols=cols,
        fus=fus,
        interconnect=interconnect or mesh_plus_topology(rows, cols),
        cdrf=RegisterFileSpec("cdrf", entries=64, width=64, read_ports=6, write_ports=3),
        cprf=RegisterFileSpec("cprf", entries=64, width=1, read_ports=6, write_ports=3),
        local_rf_entries=local_rf_entries,
        l1=MemorySpec("l1", words=4096, width=32, banks=4),
        icache=MemorySpec("icache", words=2048, width=128),
        config_memory_contexts=config_memory_contexts,
        clock_hz=400_000_000,
    )


def small_test_core(name: str = "test-2x2") -> CgaArchitecture:
    """A small 2x2 instance for fast unit tests.

    One VLIW slot (unit 0, which also branches, loads/stores and
    divides); all-to-all interconnect so routing never limits the tests
    that target other subsystems.
    """
    rows = cols = 2

    def build(index: int) -> FunctionalUnit:
        groups = set(_COMMON_GROUPS)
        if index == 0:
            groups |= {OpGroup.BRANCH, OpGroup.CONTROL, OpGroup.DIV}
        if index <= 1:
            groups |= {OpGroup.LDMEM, OpGroup.STMEM}
        is_vliw = index == 0
        local_rf = None
        if not is_vliw:
            local_rf = RegisterFileSpec("lrf%d" % index, 8, 64, 2, 1)
        return FunctionalUnit(
            index=index,
            groups=frozenset(groups),
            vliw_slot=0 if is_vliw else None,
            has_cdrf_port=is_vliw,
            local_rf=local_rf,
        )

    fus = tuple(build(i) for i in range(rows * cols))
    return CgaArchitecture(
        name=name,
        rows=rows,
        cols=cols,
        fus=fus,
        interconnect=full_topology(rows * cols),
        cdrf=RegisterFileSpec("cdrf", 64, 64, 6, 3),
        cprf=RegisterFileSpec("cprf", 64, 1, 6, 3),
        local_rf_entries=8,
        l1=MemorySpec("l1", words=1024, width=32, banks=4),
        icache=MemorySpec("icache", words=256, width=128),
        config_memory_contexts=64,
        clock_hz=400_000_000,
    )
