"""repro — reproduction of the IMEC ADRES hybrid CGA-SIMD SDR baseband processor.

This package reimplements, in pure Python, the system described in

    B. Bougard et al., "A Coarse-Grained Array based Baseband Processor
    for 100Mbps+ Software Defined Radio", DATE 2008.

Subpackages
-----------
``repro.isa``
    The Table 1 instruction set: opcodes, bit-accurate semantics,
    assembler and disassembler.
``repro.arch``
    The architecture template (functional units, register files,
    interconnect) and the paper's 4x4 hybrid CGA/VLIW instance.
``repro.sim``
    Cycle-accurate simulator: VLIW and CGA execution modes, 4-bank L1
    scratchpad with crossbar contention, instruction cache, AMBA-style
    bus and DMA, activity statistics.
``repro.compiler``
    DRESC-like compiler: kernel DSL ("C with intrinsics"), VLIW list
    scheduler, modulo scheduler with place-and-route on the modulo
    routing resource graph, code generation.
``repro.phy``
    Fixed-point 20 MHz 2x2 MIMO-OFDM baseband reference (FFT, QAM64,
    preamble synchronisation, CFO, SDM detection, channel models).
``repro.kernels``
    The Table 2 kernel suite expressed in the compiler DSL.
``repro.modem``
    The full inner-modem pipelines (preamble / data processing),
    profiling and real-time analysis.
``repro.power``
    Activity-based power model and structural area model (Table 3,
    Figs 5 and 6).
``repro.eval``
    Harness that regenerates every table and figure of the paper.
"""

__version__ = "1.0.0"

CLOCK_HZ = 400_000_000
"""Worst-case clock frequency of the paper's implementation (400 MHz)."""

PEAK_GOPS_16BIT = 25.6
"""Peak 16-bit GOPS: 16 FUs x 4 SIMD lanes x 400 MHz."""
