"""The VLIW-mode kernels of Table 2: data movement and pilot tracking.

``remove zero carriers``, ``sample ordering``, ``sample reordering`` and
``data shuffle`` are layout transformations executed as rolled VLIW
copy loops (their IPC of ~1.1-2.7 in the paper comes from load-use
latencies and loop-control overhead on a 3-issue machine, which the
list-scheduled loops here reproduce).  ``tracking`` computes the
common-phase-error phasor from the four pilots with scalar arithmetic.
"""

from __future__ import annotations

from typing import Sequence

from repro.compiler.builder import PhysReg, VliwBuilder
from repro.isa.opcodes import Opcode


def emit_copy_loop(
    vb: VliwBuilder,
    src_addr: int,
    dst_addr: int,
    n_words64: int,
    unroll: int = 2,
    src_stride: int = 8,
    dst_stride: int = 8,
) -> None:
    """Copy *n_words64* 64-bit words with configurable strides.

    With unit strides this is ``remove zero carriers`` run copying and
    plain buffer moves; with non-unit strides it realises the
    ``sample ordering`` / ``data shuffle`` interleaving patterns.
    """
    if n_words64 % unroll:
        raise ValueError("unroll must divide the word count")
    sp = vb.shared_reg("copy_sp")
    dp = vb.shared_reg("copy_dp")
    vb.op(Opcode.ADD, 0, src_addr, dst=sp)
    vb.op(Opcode.ADD, 0, dst_addr, dst=dp)
    with vb.counted_loop(n_words64 // unroll):
        for u in range(unroll):
            # Immediate offsets are in 32-bit words (scaled <<2).
            x = vb.load(Opcode.LD_Q, sp, u * src_stride // 4)
            vb.store(Opcode.ST_Q, dp, u * dst_stride // 4, x)
        vb.op(Opcode.ADD, sp, unroll * src_stride, dst=_same(sp))
        vb.op(Opcode.ADD, dp, unroll * dst_stride, dst=_same(dp))


def _same(reg):
    """Reuse a virtual register as its own destination (loop pointer)."""
    return reg


def emit_remove_zero_carriers(
    vb: VliwBuilder, grid_addr: int, out_addr: int
) -> None:
    """Compact the 64-bin FFT grid to the 56 used bins.

    The used spectrum is two contiguous runs — bins 1..28 and bins
    36..63 — so the kernel is two 64-bit copy loops (bin k sits at byte
    ``4k``; a 64-bit load at byte ``4`` pairs bins 1 and 2).
    """
    emit_copy_loop(vb, grid_addr + 4, out_addr, 14, unroll=2)
    emit_copy_loop(vb, grid_addr + 36 * 4, out_addr + 28 * 4, 14, unroll=2)


def emit_interleave(
    vb: VliwBuilder,
    src0_addr: int,
    src1_addr: int,
    dst_addr: int,
    n_words64: int,
) -> None:
    """``sample ordering``: merge two antenna buffers word-by-word.

    Produces dst = [a0, b0, a1, b1, ...] at 64-bit granularity — the
    carrier-major layout the MIMO kernels consume.
    """
    p0 = vb.mov_imm(src0_addr)
    p1 = vb.mov_imm(src1_addr)
    dp = vb.mov_imm(dst_addr)
    with vb.counted_loop(n_words64):
        a = vb.load(Opcode.LD_Q, p0, 0)
        b = vb.load(Opcode.LD_Q, p1, 0)
        vb.store(Opcode.ST_Q, dp, 0, a)
        vb.store(Opcode.ST_Q, dp, 2, b)
        vb.op(Opcode.ADD, p0, 8, dst=_same(p0))
        vb.op(Opcode.ADD, p1, 8, dst=_same(p1))
        vb.op(Opcode.ADD, dp, 16, dst=_same(dp))


def emit_deinterleave(
    vb: VliwBuilder,
    src_addr: int,
    dst0_addr: int,
    dst1_addr: int,
    n_words64: int,
) -> None:
    """``sample reordering``: split a carrier-major buffer per stream."""
    sp = vb.mov_imm(src_addr)
    p0 = vb.mov_imm(dst0_addr)
    p1 = vb.mov_imm(dst1_addr)
    with vb.counted_loop(n_words64):
        a = vb.load(Opcode.LD_Q, sp, 0)
        b = vb.load(Opcode.LD_Q, sp, 2)
        vb.store(Opcode.ST_Q, p0, 0, a)
        vb.store(Opcode.ST_Q, p1, 0, b)
        vb.op(Opcode.ADD, sp, 16, dst=_same(sp))
        vb.op(Opcode.ADD, p0, 8, dst=_same(p0))
        vb.op(Opcode.ADD, p1, 8, dst=_same(p1))


def emit_gather_words(
    vb: VliwBuilder, table_addr: int, src_addr: int, dst_addr: int, count: int
) -> None:
    """``data shuffle``: gather 32-bit samples through an offset table."""
    tp = vb.mov_imm(table_addr)
    base = vb.mov_imm(src_addr)
    dp = vb.mov_imm(dst_addr)
    with vb.counted_loop(count):
        off = vb.load(Opcode.LD_I, tp, 0)
        addr = vb.add(base, off)
        x = vb.load(Opcode.LD_I, addr, 0)
        vb.store(Opcode.ST_I, dp, 0, x)
        vb.op(Opcode.ADD, tp, 4, dst=_same(tp))
        vb.op(Opcode.ADD, dp, 4, dst=_same(dp))


def emit_deinterleave_adc(
    vb: VliwBuilder,
    rx_addr: int,
    ant0_addr: int,
    ant1_addr: int,
    n_pairs,
    unroll: int = 2,
) -> None:
    """``sample ordering``: split the ADC-interleaved stream per antenna.

    The front end delivers samples interleaved as (a0[k], a1[k]) pairs;
    one 64-bit load fetches a pair, the low half goes to the antenna-0
    buffer and the swapped high half to antenna 1.

    *n_pairs* is a compile-time int, or a register (virtual/physical)
    holding a positive pair count at run time — the runtime keeps the
    packet-dependent tail length out of the linked program this way.
    Register counts require a power-of-two *unroll* (the trip count is
    derived by shift) and are rounded down to a multiple of *unroll*.
    """
    if isinstance(n_pairs, int):
        if n_pairs % unroll:
            raise ValueError("unroll must divide the pair count")
        trips = n_pairs // unroll
    else:
        shift = unroll.bit_length() - 1
        if unroll != 1 << shift:
            raise ValueError("register pair counts require a power-of-two unroll")
        trips = vb.op(Opcode.ASR, n_pairs, shift)
    sp = vb.shared_reg("adc_sp")
    p0 = vb.shared_reg("adc_p0")
    p1 = vb.shared_reg("adc_p1")
    vb.op(Opcode.ADD, 0, rx_addr, dst=sp)
    vb.op(Opcode.ADD, 0, ant0_addr, dst=p0)
    vb.op(Opcode.ADD, 0, ant1_addr, dst=p1)
    with vb.counted_loop(trips):
        for u in range(unroll):
            x = vb.load(Opcode.LD_Q, sp, 2 * u)
            hi = vb.op(Opcode.C4SWAP32, x)
            vb.store(Opcode.ST_I, p0, u, x)
            vb.store(Opcode.ST_I, p1, u, hi)
        vb.op(Opcode.ADD, sp, 8 * unroll, dst=_same(sp))
        vb.op(Opcode.ADD, p0, 4 * unroll, dst=_same(p0))
        vb.op(Opcode.ADD, p1, 4 * unroll, dst=_same(p1))


def emit_lane_reduce_mag(
    vb: VliwBuilder, src_reg, out_re: PhysReg, out_im: PhysReg, out_mag: PhysReg
) -> None:
    """Reduce a packed lane accumulator to (re, im, |.|^2) scalars.

    Used as the VLIW half of the "mixed" acorr/xcorr kernels: the CGA
    loop leaves |re0|im0|re1|im1| lane sums; this folds the two sample
    lanes and squares the magnitude for threshold/peak decisions.
    Results go straight into the host-visible fixed registers.
    """
    folded = vb.op(Opcode.C4ADD, src_reg, vb.op(Opcode.C4SWAP32, src_reg))
    vb.op(Opcode.ASR, vb.op(Opcode.LSL, folded, 16), 16, dst=out_re)
    vb.op(Opcode.ASR, folded, 16, dst=out_im)
    re2 = vb.op(Opcode.MUL, out_re, out_re)
    im2 = vb.op(Opcode.MUL, out_im, out_im)
    vb.op(Opcode.ADD, re2, im2, dst=out_mag)


def emit_tracking(
    vb: VliwBuilder,
    grid_addr: int,
    pilot_offsets: Sequence[int],
    pilot_signs: Sequence[int],
    out_reg: PhysReg,
    scratch_addr: int,
) -> None:
    """``tracking``: common-phase-error phasor from the pilots.

    Loads the four pilot carriers (32-bit complex each), accumulates
    ``sum sign_k * p_k`` (the expected pilots are +-1, so conjugated
    multiplication degenerates to signed addition), divides by 4 and
    conjugates — leaving the packed correction phasor pair in *out_reg*
    (both halves equal) via the store/store/load-64 idiom.
    """
    if len(pilot_offsets) != len(pilot_signs):
        raise ValueError("offsets/signs length mismatch")
    # Shared temporaries: tracking is short sequential code, so register
    # reuse (serialised by the hazard analysis) is the natural choice.
    base = vb.shared_reg("trk_base")
    acc_re = vb.shared_reg("trk_are")
    acc_im = vb.shared_reg("trk_aim")
    vb.op(Opcode.ADD, 0, grid_addr, dst=base)
    vb.op(Opcode.ADD, 0, 0, dst=acc_re)
    vb.op(Opcode.ADD, 0, 0, dst=acc_im)
    p = vb.shared_reg("trk_p")
    t = vb.shared_reg("trk_t")
    re = vb.shared_reg("trk_re")
    im = vb.shared_reg("trk_im")
    for off, sign in zip(pilot_offsets, pilot_signs):
        vb.op(Opcode.LD_I, base, off // 4, dst=p)
        vb.op(Opcode.LSL, p, 16, dst=t)
        vb.op(Opcode.ASR, t, 16, dst=re)
        vb.op(Opcode.ASR, p, 16, dst=im)
        op = Opcode.ADD if sign > 0 else Opcode.SUB
        vb.op(op, acc_re, re, dst=acc_re)
        vb.op(op, acc_im, im, dst=acc_im)
    # Normalise to a Q15 unit phasor.  Equalised pilots sit at +-1 in
    # the detector's Q(W_SHIFT) format, so the 4-pilot sum is about
    # 4 << W_SHIFT; multiplying by 32640/2^10 maps that onto ~0.996 Q15
    # (staying just inside the int16 range so the pack cannot wrap).
    vb.op(Opcode.MUL, acc_re, 32640, dst=t)
    vb.op(Opcode.ASR, t, 10, dst=re)  # avg_re
    vb.op(Opcode.MUL, acc_im, 32640, dst=t)
    vb.op(Opcode.ASR, t, 10, dst=im)  # avg_im
    # Conjugate for the correction rotation, then pack (re, -im).
    vb.op(Opcode.SUB, 0, im, dst=im)
    vb.op(Opcode.AND, re, 0xFFFF, dst=re)
    vb.op(Opcode.LSL, im, 16, dst=im)
    vb.op(Opcode.OR, re, im, dst=p)
    # Duplicate into both 32-bit halves through the scratch slot.
    vb.op(Opcode.ADD, 0, scratch_addr, dst=base)
    vb.store(Opcode.ST_I, base, 0, p)
    vb.store(Opcode.ST_I, base, 1, p)
    vb.op(Opcode.LD_Q, base, 0, dst=out_reg)
