"""The MIMO kernels: ``equalize coeff calc`` and ``SDM processing``.

Data layout: per carrier, the 2x2 channel estimate H and the equaliser W
each occupy two consecutive 64-bit words (row-major, each row a packed
complex pair): ``word0 = (h00, h01)``, ``word1 = (h10, h11)``.  Received
carrier vectors are one word each: ``(y0, y1)``.

``equalize coeff calc`` computes the per-carrier zero-forcing inverse

    W = adj(H) * conj(det H) / |det H|^2

with packed SIMD for the complex algebra and the two hardwired 24-bit
dividers for the eight real divisions per carrier (the divider pressure
and the deep dependence chain give this kernel its mid-range IPC, like
the paper's 8.38).  W components are produced in Q(15 - wshift... i.e.
``w = num << wshift / |det|^2`` with both in Q15, giving Q(wshift).

``SDM processing`` applies W: ``x_hat[k] = W[k] @ y[k]``, one carrier
per iteration, all complex multiplies packed (the paper's 9.90 IPC).
"""

from __future__ import annotations

from repro.compiler.builder import KernelBuilder
from repro.compiler.dfg import Const, Dfg
from repro.isa.opcodes import Opcode
from repro.kernels.common import MASK_PAIR0, MASK_PAIR1

#: Left-shift applied to W numerators before division: W lands in Q8
#: (numerators stay inside the dividers' 24-bit range).
W_SHIFT = 8


def _extract_lane16(kb: KernelBuilder, word, lane: int):
    """Sign-extended 16-bit lane -> 32-bit scalar (lanes 0..3)."""
    v = word if lane < 2 else kb.c4swap32(word)
    if lane % 2 == 0:
        return kb.shr(kb.shl(v, 16), 16)
    return kb.shr(v, 16)


def _pack_pair(kb: KernelBuilder, re, im):
    """(re, im) scalars -> packed complex in the low 32 bits."""
    lo = kb.op(Opcode.AND, re, Const(0xFFFF))
    hi = kb.shl(im, 16)
    return kb.op(Opcode.OR, lo, hi)


def build_eqcoef_dfg(name: str = "eq_coeff", wshift: int = W_SHIFT) -> Dfg:
    """Per-carrier 2x2 ZF equaliser coefficients.

    Live-ins: ``hbase`` (H buffer), ``wbase`` (W output buffer).
    One carrier per iteration (two H words in, two W words out).
    """
    kb = KernelBuilder(name)
    hbase = kb.live_in("hbase")
    wbase = kb.live_in("wbase")
    i = kb.induction(0, 16)  # 2 words = 16 bytes per carrier
    i_adj = kb.induction(0, 16)  # rematerialised loads for the adjugate
    i_out = kb.induction(0, 16)  # output address chain
    haddr = kb.add(hbase, i)
    row0 = kb.load(Opcode.LD_Q, haddr)  # (h00, h01)
    row1 = kb.load(Opcode.LD_Q, haddr, offset=2)  # (h10, h11)
    # The adjugate assembly consumes the rows much later than the
    # determinant does; re-loading them (cheap, bank-friendly) beats
    # holding the values across many cycles.
    haddr2 = kb.add(hbase, i_adj)
    row0b = kb.load(Opcode.LD_Q, haddr2)
    row1b = kb.load(Opcode.LD_Q, haddr2, offset=2)

    # det = h00*h11 - h01*h10 (pair0 of pr - its swap).
    r1s = kb.c4swap32(row1)  # (h11, h10)
    pr = kb.cmul(row0, r1s)  # (h00*h11, h01*h10)
    det = kb.c4sub(pr, kb.c4swap32(pr))  # pair0 = det, pair1 = -det
    det_p0 = kb.op(Opcode.C4AND, det, Const(MASK_PAIR0))
    det_dup = kb.op(Opcode.C4OR, det_p0, kb.c4swap32(det_p0))  # (det, det)
    cdet = kb.c4negb(det_dup)  # conj(det) in both pairs

    # |det|^2 as a positive Q15 scalar.
    dd = kb.d4prod(det_dup, det_dup)
    mag_lanes = kb.c4add(dd, kb.c4swap16(dd))  # lane0 = re^2+im^2
    mag = _extract_lane16(kb, mag_lanes, 0)

    # Adjugate rows: (h11, -h01) and (-h10, h00), from the re-loaded rows.
    neg_r0 = kb.c4sub(Const(0), row0b)
    neg_r1 = kb.c4sub(Const(0), row1b)
    adj0 = kb.op(
        Opcode.C4OR,
        kb.op(Opcode.C4AND, kb.c4swap32(row1b), Const(MASK_PAIR0)),
        kb.op(Opcode.C4AND, neg_r0, Const(MASK_PAIR1)),
    )
    adj1 = kb.op(
        Opcode.C4OR,
        kb.op(Opcode.C4AND, neg_r1, Const(MASK_PAIR0)),
        kb.op(Opcode.C4AND, kb.c4swap32(row0b), Const(MASK_PAIR1)),
    )

    waddr = kb.add(wbase, i_out)
    for row_idx, adj in enumerate((adj0, adj1)):
        num = kb.cmul(adj, cdet)  # Q15 numerators, 4 lanes
        packed_pairs = []
        for pair in range(2):
            re = _extract_lane16(kb, num, 2 * pair)
            im = _extract_lane16(kb, num, 2 * pair + 1)
            qre = kb.op(Opcode.DIV, kb.shl(re, wshift), mag)
            qim = kb.op(Opcode.DIV, kb.shl(im, wshift), mag)
            packed_pairs.append(_pack_pair(kb, qre, qim))
        hi = kb.c4swap32(packed_pairs[1])  # move to the upper pair
        w_word = kb.op(Opcode.C4OR, packed_pairs[0], hi)
        kb.store(Opcode.ST_Q, waddr, w_word, offset=2 * row_idx)
    return kb.finish()


def build_chanest_dfg(name: str = "chanest") -> Dfg:
    """P-matrix channel combining for one receive antenna (row of H).

    From the two HT-LTF spectra of antenna r (compacted to the 56 used
    carriers) this computes, per carrier k,

        h_{r,0}[k] = (Y1[k] + Y2[k]) * Lsgn[k] * ltf_gain
        h_{r,1}[k] = (Y1[k] - Y2[k]) * Lsgn[k] * ltf_gain

    where ``Lsgn`` is the +-1 training sequence (as +-Q15 one in a sign
    table) — the divide by the training symbol and the factor 1/2 of the
    P-matrix inverse are folded into the sign/gain table.  Outputs land
    in the row-major H buffer (stride 16 bytes per carrier, row offset
    8*r), ready for ``equalize coeff calc``.

    Live-ins: ``y1``, ``y2`` (compact spectra), ``sgn`` (sign table),
    ``hout`` (H buffer base + 8*r).  Two carriers per iteration.
    """
    kb = KernelBuilder(name)
    y1b = kb.live_in("y1")
    y2b = kb.live_in("y2")
    sgnb = kb.live_in("sgn")
    hout = kb.live_in("hout")
    i = kb.induction(0, 8)  # one word = 2 carriers of Y
    i_sgn = kb.induction(0, 8)
    i_out = kb.induction(0, 32)  # 2 carriers x 16 bytes of H
    y1 = kb.load(Opcode.LD_Q, kb.add(y1b, i))
    y2 = kb.load(Opcode.LD_Q, kb.add(y2b, i))
    sgn = kb.load(Opcode.LD_Q, kb.add(sgnb, i_sgn))
    gain_shift = 4  # rescales the 1/64 FFT block scaling into Q15 range
    s = kb.op(Opcode.C4SHIFTL, kb.d4prod(kb.c4add(y1, y2), sgn), gain_shift)
    d = kb.op(Opcode.C4SHIFTL, kb.d4prod(kb.c4sub(y1, y2), sgn), gain_shift)
    # Demux: carrier c0 H-row word = (s_c0, d_c0); c1 = (s_c1, d_c1).
    out0 = kb.op(
        Opcode.C4OR,
        kb.op(Opcode.C4AND, s, Const(MASK_PAIR0)),
        kb.c4swap32(kb.op(Opcode.C4AND, d, Const(MASK_PAIR0))),
    )
    out1 = kb.op(
        Opcode.C4OR,
        kb.op(Opcode.C4AND, kb.c4swap32(s), Const(MASK_PAIR0)),
        kb.op(Opcode.C4AND, d, Const(MASK_PAIR1)),
    )
    oaddr = kb.add(hout, i_out)
    kb.store(Opcode.ST_Q, oaddr, out0)
    kb.store(Opcode.ST_Q, oaddr, out1, offset=4)  # next carrier, same row
    return kb.finish()


def build_shuffle_dfg(name: str = "data_shuffle") -> Dfg:
    """Build per-carrier Y words from the two antenna spectra.

    One iteration gathers one used carrier: its byte offset comes from a
    table, the two antennas' 32-bit carrier values are fetched and
    merged into the (y0, y1) word layout SDM processing consumes.

    Live-ins: ``g0``, ``g1`` (the two FFT output grids), ``tab``
    (used-carrier byte offsets), ``ybase`` (output).
    """
    kb = KernelBuilder(name)
    g0 = kb.live_in("g0")
    g1 = kb.live_in("g1")
    tab = kb.live_in("tab")
    ybase = kb.live_in("ybase")
    i_tab = kb.induction(0, 4)
    i_out = kb.induction(0, 8)
    off = kb.load(Opcode.LD_I, kb.add(tab, i_tab))
    y0 = kb.load(Opcode.LD_I, kb.add(g0, off))
    y1 = kb.load(Opcode.LD_I, kb.add(g1, off))
    word = kb.op(Opcode.C4OR, y0, kb.c4swap32(y1))
    kb.store(Opcode.ST_Q, kb.add(ybase, i_out), word)
    return kb.finish()


def build_sdm_dfg(name: str = "sdm", yshift: int = 0) -> Dfg:
    """Apply the equaliser: one carrier (2x2 complex mat-vec) per iteration.

    Live-ins: ``ybase`` (received carrier vectors, one word each),
    ``wbase`` (W buffer, two words per carrier), ``xbase`` (detected
    output, one word per carrier).  W is Q(W_SHIFT); y is Q15, pre-shifted
    left by *yshift* to recover the FFT block scaling; the output is
    Q(W_SHIFT), rescaled downstream by the ``comp`` kernel.
    """
    kb = KernelBuilder(name)
    ybase = kb.live_in("ybase")
    wbase = kb.live_in("wbase")
    xbase = kb.live_in("xbase")
    i = kb.induction(0, 8)  # one y word per carrier
    iw = kb.induction(0, 16)  # two W words per carrier
    ix = kb.induction(0, 8)  # output address chain
    y = kb.load(Opcode.LD_Q, kb.add(ybase, i))
    if yshift:
        y = kb.op(Opcode.C4SHIFTL, y, yshift)
    waddr = kb.add(wbase, iw)
    w0 = kb.load(Opcode.LD_Q, waddr)  # (w00, w01)
    w1 = kb.load(Opcode.LD_Q, waddr, offset=2)  # (w10, w11)
    # Row products: (w00*y0, w01*y1) -> complex-sum the two pairs.
    p0 = kb.cmul(w0, y)
    p1 = kb.cmul(w1, y)
    s0 = kb.c4add(p0, kb.c4swap32(p0))  # pair0 = x0
    s1 = kb.c4add(p1, kb.c4swap32(p1))  # pair0 = x1
    out = kb.op(
        Opcode.C4OR,
        kb.op(Opcode.C4AND, s0, Const(MASK_PAIR0)),
        kb.c4swap32(kb.op(Opcode.C4AND, s1, Const(MASK_PAIR0))),
    )
    kb.store(Opcode.ST_Q, kb.add(xbase, ix), out)
    return kb.finish()
