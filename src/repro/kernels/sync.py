"""The ``freq offset estimation`` kernel: LTF correlation + CORDIC angle.

The estimation runs in two CGA loops, profiled as one region:

1. the lag-64 autocorrelation over the repeated long training symbol
   (:func:`repro.kernels.acorr.build_acorr_dfg` with ``lag=64``);
2. a CORDIC *vectoring* loop (:func:`build_cordic_dfg`) that rotates the
   correlation vector onto the real axis, accumulating the rotation
   angle — the fixed-point ``atan2`` of the correlation phase.

The angle comes out in Q16 radians; the surrounding code converts it to
Hz (``cfo = angle / (2*pi*lag) * fs``) and derives the compensation
phasor constants.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.compiler.builder import KernelBuilder
from repro.compiler.dfg import Const, Dfg
from repro.isa.opcodes import Opcode

#: Q16 radians per unit.
ANGLE_SCALE = 1 << 16


def atan_table_q16(iterations: int) -> List[int]:
    """CORDIC arctangent table: atan(2^-i) in Q16 radians."""
    return [int(round(np.arctan(2.0 ** -i) * ANGLE_SCALE)) for i in range(iterations)]


def build_cordic_dfg(name: str = "cordic", iterations: int = 14) -> Dfg:
    """Vectoring-mode CORDIC: angle of (x, y), rotated onto the real axis.

    Live-ins: ``x0``, ``y0`` (the correlation components, 32-bit
    scalars) and ``tab`` (atan table base).  Live-out: ``angle``
    (Q16 radians).  Requires ``x0 > 0`` (true for correlations of a
    repeated training field with |CFO| below the lag ambiguity).

    Per iteration: ``m = sign(y)``; ``x' = x + m*(y>>i)``;
    ``y' = y - m*(x>>i)``; ``angle' = angle + m*atan[i]``.  The x/y
    cross-recurrences (compare -> select -> multiply -> update) bound
    the initiation interval, which is what keeps this kernel's IPC in
    the mid single digits like the paper's 6.32.

    Register live-ins cannot appear in configuration-immediate phi
    inits, so the initial vector enters arithmetically: a one-shot
    all-ones mask (a recurrence that collapses to zero after the first
    iteration) gates ``x0``/``y0`` into the state update on iteration 0.
    """
    kb = KernelBuilder(name)
    tab = kb.live_in("tab")
    x0 = kb.live_in("x0")
    y0 = kb.live_in("y0")
    i = kb.induction(0, 1)
    atan_i = kb.load(Opcode.LD_I, kb.add(tab, kb.shl(i, 2)))

    # One-shot mask: reads all-ones on iteration 0, zero afterwards.
    mask_node = kb.op(Opcode.AND, Const(0), Const(0))
    kb.dfg.nodes[mask_node.node_id].srcs = (
        kb.recurrence(mask_node, init=0xFFFFFFFF),
        Const(0),
    )
    mask = kb.recurrence(mask_node, init=0xFFFFFFFF)
    x0m = kb.op(Opcode.AND, x0, mask)
    y0m = kb.op(Opcode.AND, y0, mask)

    # State: x_cur = x_next(prev iteration) + gated initial value.
    x_cur = kb.add(Const(0), x0m)  # src0 patched to the recurrence below
    y_cur = kb.add(Const(0), y0m)
    tx = kb.shr(x_cur, i)
    ty = kb.shr(y_cur, i)
    ge = kb.op(Opcode.GE, y_cur, Const(0))
    m = kb.sub(kb.shl(ge, 1), Const(1))  # +1 / -1
    x_next = kb.add(x_cur, kb.mul(m, ty))
    y_next = kb.sub(y_cur, kb.mul(m, tx))
    kb.dfg.nodes[x_cur.node_id].srcs = (kb.recurrence(x_next, init=0), x0m)
    kb.dfg.nodes[y_cur.node_id].srcs = (kb.recurrence(y_next, init=0), y0m)
    z_step = kb.mul(m, atan_i)
    kb.accumulate(Opcode.ADD, z_step, init=0, live_out="angle")
    return kb.finish()


def cordic_atan2_q16(y: int, x: int, iterations: int = 14) -> int:
    """Golden model of the CORDIC kernel (bit-exact, Q16 radians)."""
    table = atan_table_q16(iterations)
    angle = 0
    for i in range(iterations):
        m = 1 if y >= 0 else -1
        x, y = x + m * (y >> i), y - m * (x >> i)
        angle += m * table[i]
    return angle


def angle_q16_to_hz(angle_q16: int, lag_samples: int, sample_rate_hz: float) -> float:
    """Convert a Q16-radian correlation angle to a CFO in Hz."""
    return angle_q16 / ANGLE_SCALE / (2 * np.pi * lag_samples) * sample_rate_hz
