"""The ``xcorr`` kernel: cross-correlation against a known reference.

One CGA invocation accumulates ``sum x[n] * conj(ref[n])`` over the
reference length at one candidate timing position (two samples per
iteration).  The timing search evaluates a handful of candidate
positions around the coarse detection point, one invocation each, and
the VLIW code picks the magnitude peak.
"""

from __future__ import annotations

from repro.compiler.builder import KernelBuilder
from repro.compiler.dfg import Dfg
from repro.isa.opcodes import Opcode


def build_xcorr_dfg(name: str = "xcorr", acc_shift: int = 2) -> Dfg:
    """Correlation at one position.

    Live-ins: ``base`` (x window start), ``ref`` (reference table).
    Live-out: ``corr`` (packed lane accumulator; true correlation is
    lane0+lane2 / lane1+lane3).
    """
    kb = KernelBuilder(name)
    base = kb.live_in("base")
    ref = kb.live_in("ref")
    i = kb.induction(0, 8)
    x = kb.load(Opcode.LD_Q, kb.add(base, i))
    r = kb.load(Opcode.LD_Q, kb.add(ref, i))
    prod = kb.c4shiftr(kb.cmul(x, kb.c4negb(r)), acc_shift)
    kb.accumulate(Opcode.C4ADD, prod, init=0, live_out="corr")
    return kb.finish()
