"""The Table 2 kernel suite, authored in the compiler DSL.

Every kernel of the paper's MIMO-OFDM profiling table is implemented as
a compilable DFG (CGA-mode kernels) or a VLIW section builder (VLIW-mode
kernels), matching the modes reported in Table 2:

================================  =======  =============================
Kernel                            Mode     Module
================================  =======  =============================
acorr                             mixed    :mod:`repro.kernels.acorr`
fshift                            CGA      :mod:`repro.kernels.fshift`
xcorr                             CGA      :mod:`repro.kernels.xcorr`
fft (reorder + stages)            CGA      :mod:`repro.kernels.fft`
remove zero carriers              VLIW     :mod:`repro.kernels.vliw_kernels`
freq offset estimation            CGA      :mod:`repro.kernels.sync`
freq offset compensation          mixed    :mod:`repro.kernels.fshift`
sample ordering / reordering      VLIW     :mod:`repro.kernels.vliw_kernels`
SDM processing                    CGA      :mod:`repro.kernels.sdm`
equalize coeff calc               CGA      :mod:`repro.kernels.sdm`
data shuffle                      VLIW     :mod:`repro.kernels.vliw_kernels`
tracking                          VLIW     :mod:`repro.kernels.vliw_kernels`
comp                              CGA      :mod:`repro.kernels.comp`
demod QAM64                       CGA      :mod:`repro.kernels.demod`
================================  =======  =============================

Data buffers use the packed complex layout of :mod:`repro.phy.fixed`:
one 32-bit word per complex sample (re in the low 16 bits), so 64-bit
SIMD loads fetch two consecutive samples.
"""

from repro.kernels.common import (
    cmul_packed,
    cmul_conj_packed,
    store_complex_array,
    load_complex_array,
    materialize_pair64,
)

__all__ = [
    "cmul_packed",
    "cmul_conj_packed",
    "store_complex_array",
    "load_complex_array",
    "materialize_pair64",
]
