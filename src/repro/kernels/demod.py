"""The ``demod QAM64`` kernel: hard-decision Gray demapping on the array.

Each lane of a packed word is one PAM-8 axis (I0, Q0, I1, Q1), so one
iteration demaps two complex symbols entirely with lane arithmetic:

    level = clamp(round((x * sqrt(42) + 7) / 2), 0, 7)
    gray  = level ^ (level >> 1)

using the identity that the 802.11 Gray code of level *i* is
``i ^ (i >> 1)``.  The output word carries the four 3-bit Gray labels in
its four lanes; the surrounding code (or host) packs label lanes into
the bit stream.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.builder import KernelBuilder
from repro.compiler.dfg import Const, Dfg
from repro.isa.opcodes import Opcode

#: 2*sqrt(42) in Q10.  Symbols arrive *half-normalised* (the unit-energy
#: constellation divided by 2, so the +-7/sqrt(42) = +-1.08 corners fit
#: inside Q15 with headroom); this converts them to Q10 PAM levels.
QAM64_SCALE_Q10 = int(round(2.0 * np.sqrt(42.0) * (1 << 10)))
#: +7 offset in Q10 plus the half-step that turns the final floor-shift
#: into round-half-up.
_OFFSET = 7 * (1 << 10) + (1 << 9)


def build_demod_dfg(name: str = "demod_qam64") -> Dfg:
    """Demap two QAM-64 symbols per iteration.

    Live-ins: ``src`` (equalised Q15 carriers), ``dst`` (label words:
    lanes |gi0|gq0|gi1|gq1|, 3 bits each).
    """
    kb = KernelBuilder(name)
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    i_src = kb.induction(0, 8)
    i_dst = kb.induction(0, 8)
    x = kb.load(Opcode.LD_Q, kb.add(src, i_src))
    scale = QAM64_SCALE_Q10
    scale_word = scale | (scale << 16) | (scale << 32) | (scale << 48)
    off_word = _OFFSET | (_OFFSET << 16) | (_OFFSET << 32) | (_OFFSET << 48)
    seven = 7 | (7 << 16) | (7 << 32) | (7 << 48)
    scaled = kb.d4prod(x, Const(scale_word))  # Q10 PAM amplitudes
    shifted = kb.c4add(scaled, Const(off_word))
    level = kb.c4shiftr(shifted, 11)  # (a + 7)/2 rounded
    level = kb.op(Opcode.C4MAX, level, Const(0))
    level = kb.op(Opcode.C4MIN, level, Const(seven))
    gray = kb.op(Opcode.C4XOR, level, kb.c4shiftr(level, 1))
    kb.store(Opcode.ST_Q, kb.add(dst, i_dst), gray)
    return kb.finish()


def labels_to_bits(label_words, n_symbols: int) -> np.ndarray:
    """Golden unpacking: label words -> the modulator's bit order.

    Lane layout per word: |gi0|gq0|gi1|gq1|.  The modulator's bit order
    per symbol is (i2 i1 i0 q2 q1 q0) MSB-first.
    """
    from repro.isa.bits import split_lanes

    bits = []
    count = 0
    for word in label_words:
        lanes = split_lanes(word)
        for s in range(2):
            if count >= n_symbols:
                break
            gi, gq = lanes[2 * s], lanes[2 * s + 1]
            for shift in (2, 1, 0):
                bits.append((gi >> shift) & 1)
            for shift in (2, 1, 0):
                bits.append((gq >> shift) & 1)
            count += 1
    return np.array(bits, dtype=np.int64)
