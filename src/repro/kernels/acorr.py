"""The ``acorr`` kernel: lagged autocorrelation + energy over a window.

The CGA loop accumulates, over one window position,

* ``corr += x[n + lag] * conj(x[n])`` (packed, two samples/iteration)
* ``energy += |x[n]|^2``

Both lane accumulators leave the loop as live-outs; the surrounding
VLIW code reduces the sample lanes, compares magnitude against the
scaled energy and decides detection — which is what makes the paper's
``acorr`` row a *mixed* kernel.

The same DFG with ``lag = 64`` is the correlation half of the
``freq offset estimation`` kernel (fine CFO from the long training
field repetition).
"""

from __future__ import annotations

from repro.compiler.builder import KernelBuilder
from repro.compiler.dfg import Dfg
from repro.isa.opcodes import Opcode


def build_acorr_dfg(
    lag_samples: int = 16, name: str = "acorr", acc_shift: int = 4
) -> Dfg:
    """Window accumulation at one position.

    Live-ins: ``base`` (byte address of x[n] at the window start).
    Live-outs: ``corr`` (packed lane accumulator |re0|im0|re1|im1| —
    the true correlation is lane0+lane2, lane1+lane3), ``energy``
    (packed |e0|e0'|e1|e1'| lane accumulator).

    Per-term values are pre-shifted right by *acc_shift* so the 16-bit
    saturating lane accumulators cannot clip over the window (the same
    shift applies to correlation and energy, so the detection ratio and
    the correlation angle are unaffected).
    """
    kb = KernelBuilder(name)
    base = kb.live_in("base")
    i = kb.induction(0, 8)
    i_e = kb.induction(0, 8)  # separate chain for the energy path
    addr0 = kb.add(base, i)
    x0 = kb.load(Opcode.LD_Q, addr0)
    x1 = kb.load(Opcode.LD_Q, addr0, offset=lag_samples)  # 1 sample = 1 word
    # x1 * conj(x0), packed, pre-scaled for accumulation headroom.
    prod = kb.c4shiftr(kb.cmul(x1, kb.c4negb(x0)), acc_shift)
    kb.accumulate(Opcode.C4ADD, prod, init=0, live_out="corr")
    # Energy of the base window: per-lane squares, accumulated (own
    # load so the x0 value need not be held across the long cmul chain).
    x0e = kb.load(Opcode.LD_Q, kb.add(base, i_e))
    e = kb.c4shiftr(kb.d4prod(x0e, x0e), acc_shift)
    kb.accumulate(Opcode.C4ADD, e, init=0, live_out="energy")
    return kb.finish()
