"""The ``comp`` kernel: tracking/scaling compensation of data carriers.

Multiplies each detected carrier by the conjugated common-phase-error
phasor from the ``tracking`` kernel and rescales from the detection
fixed-point format (Q(W_SHIFT) out of SDM) back to the Q15 constellation
normalisation the demapper expects: ``out = (x * conj(cpe)) << shift``.
"""

from __future__ import annotations

from repro.compiler.builder import KernelBuilder
from repro.compiler.dfg import Dfg
from repro.isa.opcodes import Opcode


def build_comp_dfg(name: str = "comp", shift: int = 0) -> Dfg:
    """Apply a constant packed phasor and a power-of-two gain.

    Live-ins: ``src``, ``dst``, ``phasor`` (packed pair, already
    conjugated and normalised by the VLIW tracking code).  Processes two
    carriers per iteration.
    """
    kb = KernelBuilder(name)
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    phasor = kb.live_in("phasor")
    i_src = kb.induction(0, 8)
    i_dst = kb.induction(0, 8)
    x = kb.load(Opcode.LD_Q, kb.add(src, i_src))
    y = kb.cmul(x, phasor)
    if shift:
        y = kb.op(Opcode.C4SHIFTL, y, shift)
    kb.store(Opcode.ST_Q, kb.add(dst, i_dst), y)
    return kb.finish()
