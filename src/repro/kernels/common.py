"""Shared kernel-authoring helpers: packed complex math, buffer I/O.

Buffer convention
-----------------
A complex sample is one 32-bit little-endian word: ``re`` in bits 0-15,
``im`` in bits 16-31 — so a 64-bit SIMD load (``ld_q``) fetches two
consecutive samples as the ``|re0|im0|re1|im1|`` lane layout the Table 1
SIMD multiplies expect.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.compiler.builder import KernelBuilder, VliwBuilder
from repro.compiler.dfg import NodeRef
from repro.isa.opcodes import Opcode
from repro.sim.memory import Scratchpad

#: Lane masks for packed complex math.
MASK_EVEN = 0x0000_FFFF_0000_FFFF  # keeps re lanes
MASK_ODD = 0xFFFF_0000_FFFF_0000  # keeps im lanes
MASK_PAIR0 = 0x0000_0000_FFFF_FFFF  # keeps the first complex sample
MASK_PAIR1 = 0xFFFF_FFFF_0000_0000  # keeps the second complex sample


def cmul_packed(kb: KernelBuilder, a, b) -> NodeRef:
    """Packed complex multiply (two samples at once); see builder.cmul."""
    return kb.cmul(a, b)


def cmul_conj_packed(kb: KernelBuilder, a, b) -> NodeRef:
    """Packed complex multiply ``a * conj(b)``."""
    return kb.cmul(a, kb.c4negb(b))


# ----------------------------------------------------------------------
# Host-side buffer helpers (test setup and golden extraction).
# ----------------------------------------------------------------------


def store_complex_array(
    pad: Scratchpad, addr: int, re: Sequence[int], im: Sequence[int]
) -> int:
    """Write int16 (re, im) arrays as packed complex words; returns bytes used."""
    re = np.asarray(re, dtype=np.int16)
    im = np.asarray(im, dtype=np.int16)
    if len(re) != len(im):
        raise ValueError("re/im length mismatch")
    for k in range(len(re)):
        word = (int(np.uint16(re[k]))) | (int(np.uint16(im[k])) << 16)
        pad.write_word(addr + 4 * k, word, 4)
    return 4 * len(re)


def load_complex_array(
    pad: Scratchpad, addr: int, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Read *count* packed complex samples back as int16 arrays."""
    from repro.isa.bits import to_signed

    re = np.zeros(count, dtype=np.int16)
    im = np.zeros(count, dtype=np.int16)
    for k in range(count):
        word = pad.read_word(addr + 4 * k, 4)
        re[k] = to_signed(word & 0xFFFF, 16)
        im[k] = to_signed((word >> 16) & 0xFFFF, 16)
    return re, im


def pack_complex_word(re: int, im: int) -> int:
    """One packed complex sample as a 32-bit word."""
    return (int(np.uint16(np.int16(re)))) | (int(np.uint16(np.int16(im))) << 16)


def pack_complex_words(re, im) -> np.ndarray:
    """Vectorised :func:`pack_complex_word`: int16 arrays -> uint32 words."""
    r = np.asarray(re).astype(np.int16).view(np.uint16).astype(np.uint32)
    i = np.asarray(im).astype(np.int16).view(np.uint16).astype(np.uint32)
    return r | (i << np.uint32(16))


def materialize_pair64(
    vb: VliwBuilder, value_reg, scratch_addr: int, duplicate_reg=None
) -> "object":
    """Build a 64-bit packed value in a register via the stack trick.

    VLIW stores are 32-bit, so a 64-bit SIMD constant or a computed
    32-bit pattern is replicated into both halves by storing it twice to
    a scratch slot and loading it back with ``ld_q`` — exactly how the
    paper's C code gets scalars into SIMD registers.

    *value_reg* is stored to both words; pass *duplicate_reg* to place a
    different value in the upper half.  Returns the virtual register
    holding the 64-bit pattern.
    """
    base = vb.mov_imm(scratch_addr)
    vb.store(Opcode.ST_I, base, 0, value_reg)
    vb.store(Opcode.ST_I, base, 1, duplicate_reg if duplicate_reg is not None else value_reg)
    return vb.load(Opcode.LD_Q, base, 0)
