"""The ``fft`` kernel family: fixed-point radix-2 64-point FFT on the CGA.

The transform is decomposed exactly as the hardware mapping would be:

1. :func:`build_reorder_dfg` — bit-reversal gather through a
   precomputed byte-offset table (data-dependent addressing: the loaded
   offset feeds the sample load);
2. :func:`build_stage1_dfg` — the half-distance-1 stage, whose
   butterflies pair the two samples *inside* each packed word
   (twiddle = 1);
3. :func:`build_stage_dfg` — the generic stage for half >= 2: each
   iteration processes one packed pair of butterflies, with group/slot
   index arithmetic done on the array (shifts and masks from live-in
   stage parameters, so one compiled kernel serves all five stages);

Every butterfly applies the ``>> 1`` per-stage block scaling of the
golden model (:mod:`repro.phy.fft`), so results match it bit for bit.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.compiler.builder import KernelBuilder
from repro.compiler.dfg import Const, Dfg
from repro.isa.opcodes import Opcode
from repro.kernels.common import MASK_PAIR0, pack_complex_word, pack_complex_words
from repro.phy.fft import bit_reverse_indices, twiddles_q15


def build_reorder_dfg(name: str = "fft_reorder") -> Dfg:
    """Gather ``out[n] = in[table[n]]`` one complex sample per iteration.

    Live-ins: ``src``, ``dst``, ``tab`` (table of byte offsets).
    """
    kb = KernelBuilder(name)
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    tab = kb.live_in("tab")
    i_tab = kb.induction(0, 4)
    i_dst = kb.induction(0, 4)
    off = kb.load(Opcode.LD_I, kb.add(tab, i_tab))
    x = kb.load(Opcode.LD_I, kb.add(src, off))
    kb.store(Opcode.ST_I, kb.add(dst, i_dst), x)
    return kb.finish()


def build_stage1_dfg(name: str = "fft_stage1") -> Dfg:
    """Stage with half = 1: butterfly between the two samples of a word.

    ``out = ((x0 + W0*x1) >> 1, (x0 - W0*x1) >> 1)`` — the W^0 twiddle
    multiply (by Q15 0.99997) goes through the same datapath as every
    other stage so results match the golden model bit for bit.
    Live-ins: ``buf`` (in-place).
    """
    kb = KernelBuilder(name)
    buf = kb.live_in("buf")
    w0 = pack_complex_word(32767, 0)
    w0_pair = w0 | (w0 << 32)
    i_ld = kb.induction(0, 8)
    i_st = kb.induction(0, 8)
    x = kb.load(Opcode.LD_Q, kb.add(buf, i_ld))
    t = kb.cmul(x, Const(w0_pair))  # (W0*x0, W0*x1)
    sw_t = kb.c4swap32(t)  # (W0*x1, W0*x0)
    s = kb.c4shiftr(kb.c4add(x, sw_t), 1)  # pair0 = x0 + W0*x1
    d = kb.c4shiftr(kb.c4sub(x, sw_t), 1)  # pair0 = x0 - W0*x1
    lo = kb.op(Opcode.C4AND, s, Const(MASK_PAIR0))
    hi = kb.c4swap32(kb.op(Opcode.C4AND, d, Const(MASK_PAIR0)))
    out = kb.op(Opcode.C4OR, lo, hi)
    kb.store(Opcode.ST_Q, kb.add(buf, i_st), out)
    return kb.finish()


def build_stage_dfg(name: str = "fft_stage") -> Dfg:
    """Generic stage (half >= 2): one packed butterfly pair per iteration.

    For pair index p with half h (samples):
    ``g = p >> log2(h/2)``, ``j = p & (h/2 - 1)``,
    ``addrA = buf + g*(2h*4) + j*8``, ``addrB = addrA + h*4``,
    ``W = twiddle_table[p]`` (two twiddles packed),
    ``t = B * W``; ``A' = (A + t) >> 1``; ``B' = (A - t) >> 1``.

    Live-ins: ``buf``, ``tw`` (per-stage twiddle table, packed pairs),
    ``gshift`` (log2(h/2)), ``jmask`` (h/2 - 1), ``gscale``
    (log2(2h*4)), ``hbytes`` (h*4).
    """
    kb = KernelBuilder(name)
    buf = kb.live_in("buf")
    tw = kb.live_in("tw")
    gshift = kb.live_in("gshift")
    jmask = kb.live_in("jmask")
    gscale = kb.live_in("gscale")
    hbytes = kb.live_in("hbytes")

    def addr_pair(p):
        """Butterfly addresses (A, B) from a pair-index induction."""
        g = kb.op(Opcode.LSR, p, gshift)
        j = kb.op(Opcode.AND, p, jmask)
        group_base = kb.op(Opcode.LSL, g, gscale)
        addr_a = kb.add(kb.add(buf, group_base), kb.shl(j, 3))
        addr_b = kb.add(addr_a, hbytes)
        return addr_a, addr_b

    # Separate index/address chains for the load side and the store
    # side: their consumers are half a pipeline apart, and independent
    # chains let the scheduler anchor each where it is used.
    p_ld = kb.induction(0, 1)
    p_st = kb.induction(0, 1)
    p_tw = kb.induction(0, 1)
    la, lb = addr_pair(p_ld)
    sa, sb = addr_pair(p_st)
    a = kb.load(Opcode.LD_Q, la)
    b = kb.load(Opcode.LD_Q, lb)
    w = kb.load(Opcode.LD_Q, kb.add(tw, kb.shl(p_tw, 3)))
    t = kb.cmul(b, w)
    a_out = kb.c4shiftr(kb.c4add(a, t), 1)
    b_out = kb.c4shiftr(kb.c4sub(a, t), 1)
    kb.store(Opcode.ST_Q, sa, a_out)
    kb.store(Opcode.ST_Q, sb, b_out)
    return kb.finish()


# ----------------------------------------------------------------------
# Loop-merged pair variants: the paper processes "two symbols in
# parallel" by merging the per-symbol loops; these kernels transform two
# equal-length buffers separated by a constant byte offset (``delta``)
# in one invocation, halving the software-pipeline fill overhead.
# ----------------------------------------------------------------------


def build_reorder_pair_dfg(
    name: str = "fft_reorder2", delta_src: int = 256, delta_dst: int = 256
) -> Dfg:
    """Bit-reversal gather of two buffers at once.

    The source buffers sit *delta_src* bytes apart (e.g. two antenna
    sample buffers), the destination FFT buffers *delta_dst* apart.
    """
    kb = KernelBuilder(name)
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    tab = kb.live_in("tab")
    i_tab = kb.induction(0, 4)
    i_dst = kb.induction(0, 4)
    off = kb.load(Opcode.LD_I, kb.add(tab, i_tab))
    src_addr = kb.add(src, off)
    x0 = kb.load(Opcode.LD_I, src_addr)
    x1 = kb.load(Opcode.LD_I, kb.add(src_addr, Const(delta_src)))
    dst_addr = kb.add(dst, i_dst)
    kb.store(Opcode.ST_I, dst_addr, x0)
    kb.store(Opcode.ST_I, kb.add(dst_addr, Const(delta_dst)), x1)
    return kb.finish()


def build_stage1_pair_dfg(name: str = "fft_stage1x2", delta: int = 256) -> Dfg:
    """Half-distance-1 stage of two buffers at once."""
    kb = KernelBuilder(name)
    buf = kb.live_in("buf")
    w0 = pack_complex_word(32767, 0)
    w0_pair = w0 | (w0 << 32)

    def butterfly(addr):
        x = kb.load(Opcode.LD_Q, addr)
        t = kb.cmul(x, Const(w0_pair))
        sw_t = kb.c4swap32(t)
        s = kb.c4shiftr(kb.c4add(x, sw_t), 1)
        d = kb.c4shiftr(kb.c4sub(x, sw_t), 1)
        lo = kb.op(Opcode.C4AND, s, Const(MASK_PAIR0))
        hi = kb.c4swap32(kb.op(Opcode.C4AND, d, Const(MASK_PAIR0)))
        return kb.op(Opcode.C4OR, lo, hi)

    i_ld = kb.induction(0, 8)
    i_st = kb.induction(0, 8)
    la = kb.add(buf, i_ld)
    out0 = butterfly(la)
    out1 = butterfly(kb.add(la, Const(delta)))
    sa = kb.add(buf, i_st)
    kb.store(Opcode.ST_Q, sa, out0)
    kb.store(Opcode.ST_Q, kb.add(sa, Const(delta)), out1)
    return kb.finish()


def build_stage_pair_dfg(name: str = "fft_stagex2", delta: int = 256) -> Dfg:
    """Generic stage (half >= 2) of two buffers at once."""
    kb = KernelBuilder(name)
    buf = kb.live_in("buf")
    tw = kb.live_in("tw")
    gshift = kb.live_in("gshift")
    jmask = kb.live_in("jmask")
    gscale = kb.live_in("gscale")
    hbytes = kb.live_in("hbytes")

    def addr_pair(p):
        g = kb.op(Opcode.LSR, p, gshift)
        j = kb.op(Opcode.AND, p, jmask)
        group_base = kb.op(Opcode.LSL, g, gscale)
        addr_a = kb.add(kb.add(buf, group_base), kb.shl(j, 3))
        addr_b = kb.add(addr_a, hbytes)
        return addr_a, addr_b

    def butterfly(a, b, w):
        t = kb.cmul(b, w)
        a_out = kb.c4shiftr(kb.c4add(a, t), 1)
        b_out = kb.c4shiftr(kb.c4sub(a, t), 1)
        return a_out, b_out

    p_ld = kb.induction(0, 1)
    p_st = kb.induction(0, 1)
    p_tw = kb.induction(0, 1)
    la, lb = addr_pair(p_ld)
    sa, sb = addr_pair(p_st)
    w = kb.load(Opcode.LD_Q, kb.add(tw, kb.shl(p_tw, 3)))
    a0 = kb.load(Opcode.LD_Q, la)
    b0 = kb.load(Opcode.LD_Q, lb)
    a1 = kb.load(Opcode.LD_Q, kb.add(la, Const(delta)))
    b1 = kb.load(Opcode.LD_Q, kb.add(lb, Const(delta)))
    a0_out, b0_out = butterfly(a0, b0, w)
    a1_out, b1_out = butterfly(a1, b1, w)
    kb.store(Opcode.ST_Q, sa, a0_out)
    kb.store(Opcode.ST_Q, sb, b0_out)
    kb.store(Opcode.ST_Q, kb.add(sa, Const(delta)), a1_out)
    kb.store(Opcode.ST_Q, kb.add(sb, Const(delta)), b1_out)
    return kb.finish()


# ----------------------------------------------------------------------
# Host-side tables and stage parameters.
# ----------------------------------------------------------------------


def reorder_table_words(n: int = 64) -> List[int]:
    """Byte offsets of the bit-reversal gather."""
    return [int(k) * 4 for k in bit_reverse_indices(n)]


def stage_params(n: int, half: int) -> dict:
    """Live-in values of the generic stage kernel for one stage."""
    if half < 2 or half & (half - 1):
        raise ValueError("half must be a power of two >= 2")
    pairs_per_group = half // 2
    return {
        "gshift": int(np.log2(pairs_per_group)),
        "jmask": pairs_per_group - 1,
        "gscale": int(np.log2(2 * half * 4)),
        "hbytes": half * 4,
    }


def stage_twiddle_words(n: int, half: int, inverse: bool = False) -> List[int]:
    """Packed per-pair twiddle table for one stage.

    Pair p covers butterflies (2j, 2j+1) of its group, using twiddles
    ``W^(2j*step)`` and ``W^((2j+1)*step)`` with ``step = n / (2*half)``.
    """
    tw_re, tw_im = twiddles_q15(n, inverse)
    step = n // (2 * half)
    pairs = n // 4  # butterfly pairs per stage
    j = (np.arange(pairs) % (half // 2)) * 2
    w0 = pack_complex_words(tw_re[j * step], tw_im[j * step]).astype(np.uint64)
    w1 = pack_complex_words(tw_re[(j + 1) * step], tw_im[(j + 1) * step]).astype(
        np.uint64
    )
    return (w0 | (w1 << np.uint64(32))).tolist()


def all_stage_halves(n: int = 64) -> List[int]:
    """Halves of the generic stages: 2, 4, ..., n/2."""
    out = []
    half = 2
    while half <= n // 2:
        out.append(half)
        half *= 2
    return out
