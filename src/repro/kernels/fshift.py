"""The ``fshift`` kernels: frequency translation of the sample stream.

Two variants, matching the two Table 2 rows that use them:

* :func:`build_fshift_dfg` — table-based rotation (the plain ``fshift``
  rows, pure CGA, high IPC): each iteration loads two samples and two
  phasor-table entries, complex-multiplies and stores.  The phasor table
  is precomputed (by the host or earlier VLIW code).
* :func:`build_cfo_rotate_dfg` — recursive-phasor rotation used by
  ``freq offset compensation`` (the "mixed" row): the per-sample phasor
  is advanced on the array by a loop-carried complex multiply, whose
  recurrence limits the achievable II — which is why the paper reports
  a visibly lower IPC (4.48) for this kernel.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.compiler.builder import KernelBuilder
from repro.compiler.dfg import Const, Dfg
from repro.isa.opcodes import Opcode
from repro.kernels.common import (
    MASK_EVEN,
    MASK_ODD,
    pack_complex_word,
    pack_complex_words,
)
from repro.phy.fixed import q15


def build_fshift_dfg(name: str = "fshift") -> Dfg:
    """out[n] = x[n] * table[n] over packed pairs (two samples/iteration).

    Live-ins: ``src``, ``dst``, ``tab`` (byte base addresses).
    """
    kb = KernelBuilder(name)
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    tab = kb.live_in("tab")
    # One address induction per memory port: their values are consumed
    # at different schedule times, and independent inductions let the
    # scheduler anchor each next to its consumer (hand-written DSP
    # kernels use separate address registers for the same reason).
    i_src = kb.induction(0, 8)
    i_tab = kb.induction(0, 8)
    i_dst = kb.induction(0, 8)
    x = kb.load(Opcode.LD_Q, kb.add(src, i_src))
    ph = kb.load(Opcode.LD_Q, kb.add(tab, i_tab))
    y = kb.cmul(x, ph)
    kb.store(Opcode.ST_Q, kb.add(dst, i_dst), y)
    return kb.finish()


#: Distinctive placeholder constants for the template compile of the
#: recursive-phasor kernel.  They are packed-64-bit values that can
#: never arise as legitimate immediates of this kernel (phasor words are
#: Q15 complex pairs; induction inits are small negatives mod 2^64), so
#: :func:`repro.sim.program.patch_constants` can substitute the real
#: per-packet step/initial phasor into the configuration words — the
#: paper's "patch the configuration immediates" flow.
CFO_STEP_SENTINEL = 0xC0F0_57E9_0C0F_57E9
CFO_PH0_SENTINEL = 0xC0F0_9A11_0C0F_9A12


def cfo_rotate_patch(step_word: int, ph0_word: int) -> dict:
    """Immediate-patch mapping for a sentinel-compiled cfo_rotate kernel."""
    return {CFO_STEP_SENTINEL: step_word, CFO_PH0_SENTINEL: ph0_word}


def build_cfo_rotate(
    name: str, step_word: int = CFO_STEP_SENTINEL, ph0_word: int = CFO_PH0_SENTINEL
) -> Dfg:
    """Recursive-phasor rotation kernel.

    *step_word* and *ph0_word* are packed 64-bit phasor constants
    (compile-time, like DRESC constant-folding the CFO estimate would
    when specialising).  Left at their sentinel defaults, the kernel is
    a reusable template: the modulo schedule never depends on immediate
    values, so the runtime links it once and stamps each packet's
    constants into the configuration words with
    :func:`repro.sim.program.patch_constants` /
    :func:`cfo_rotate_patch` — exactly the paper's configuration
    patching, and bit-identical to a value-specialised compile.
    """
    kb = KernelBuilder(name)
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    i_src = kb.induction(0, 8)
    i_dst = kb.induction(0, 8)
    x = kb.load(Opcode.LD_Q, kb.add(src, i_src))
    step = Const(step_word)
    direct = kb.d4prod(Const(0), step)
    cross = kb.c4prod(Const(0), step)
    re = kb.c4sub(direct, kb.c4swap16(direct))
    im = kb.c4add(cross, kb.c4swap16(cross))
    re_even = kb.op(Opcode.C4AND, re, Const(MASK_EVEN))
    im_odd = kb.op(Opcode.C4AND, im, Const(MASK_ODD))
    ph = kb.c4add(re_even, im_odd)
    # Wire the recurrence: the two products read ph (distance 1).
    ph_rec = kb.recurrence(ph, init=ph0_word)
    kb.dfg.nodes[direct.node_id].srcs = (ph_rec, step)
    kb.dfg.nodes[cross.node_id].srcs = (ph_rec, step)
    # The data multiply uses the *previous* phasor (the one that applies
    # to this iteration's samples); the freshly advanced one applies to
    # the next pair.
    y = kb.cmul(x, ph_rec)
    kb.store(Opcode.ST_Q, kb.add(dst, i_dst), y)
    return kb.finish()


def build_gather_rotate_dfg(
    name: str = "gather_rotate", delta_src: int = 640, delta_dst: int = 256
) -> Dfg:
    """Fused CP-strip / bit-reversal gather + phasor rotation (two buffers).

    The data-phase ``fshift`` row: each iteration reads one sample
    offset from a table (which encodes cyclic-prefix stripping and the
    FFT's bit-reversal in one permutation), loads that sample from both
    antenna buffers, rotates both by the same table phasor and stores
    them into the FFT working buffers — so the FFT proper starts at its
    first butterfly stage.

    Live-ins: ``src`` (antenna-0 samples; antenna 1 at +delta_src),
    ``dst`` (FFT buffer 0; buffer 1 at +delta_dst), ``tab`` (byte-offset
    permutation), ``ph`` (32-bit phasor table, same permutation order).
    """
    kb = KernelBuilder(name)
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    tab = kb.live_in("tab")
    phb = kb.live_in("ph")
    i_tab = kb.induction(0, 4)
    i_ph = kb.induction(0, 4)
    i_dst = kb.induction(0, 4)
    off = kb.load(Opcode.LD_I, kb.add(tab, i_tab))
    ph = kb.load(Opcode.LD_I, kb.add(phb, i_ph))
    src_addr = kb.add(src, off)
    x0 = kb.load(Opcode.LD_I, src_addr)
    x1 = kb.load(Opcode.LD_I, kb.add(src_addr, Const(delta_src)))
    y0 = kb.cmul(x0, ph)
    y1 = kb.cmul(x1, ph)
    dst_addr = kb.add(dst, i_dst)
    kb.store(Opcode.ST_I, dst_addr, y0)
    kb.store(Opcode.ST_I, kb.add(dst_addr, Const(delta_dst)), y1)
    return kb.finish()


# ----------------------------------------------------------------------
# Host-side parameter builders.
# ----------------------------------------------------------------------


def phasor_table_words(
    freq_hz: float, sample_rate_hz: float, n_samples: int, start_sample: int = 0
) -> List[int]:
    """Packed phasor table for the table-based fshift (two samples/word)."""
    n = np.arange(start_sample, start_sample + n_samples)
    ph = np.exp(2j * np.pi * freq_hz * n / sample_rate_hz)
    packed = pack_complex_words(q15(ph.real), q15(ph.imag)).astype(np.uint64)
    return (packed[0::2] | (packed[1::2] << np.uint64(32))).tolist()


def phasor_table_words32(
    freq_hz: float, sample_rate_hz: float, sample_indices
) -> List[int]:
    """32-bit phasor table (one sample per word) for ``gather_rotate``.

    *sample_indices* gives the absolute sample index of each table
    entry (the gather permutation order), so the rotation phase stays
    continuous across reordered accesses.
    """
    idx = np.asarray(list(sample_indices), dtype=np.float64)
    ph = np.exp(2j * np.pi * freq_hz * idx / sample_rate_hz)
    return pack_complex_words(q15(ph.real), q15(ph.imag)).tolist()


def rotate_constants(
    freq_hz: float, sample_rate_hz: float, start_sample: int = 0
) -> Tuple[int, int]:
    """(step_word, ph0_word) for the recursive-phasor kernel."""
    theta = 2 * np.pi * freq_hz / sample_rate_hz
    step = np.exp(2j * theta)  # advances a pair by two samples
    ph0 = np.exp(1j * theta * start_sample)
    ph1 = np.exp(1j * theta * (start_sample + 1))
    step_lo = pack_complex_word(int(q15(step.real)), int(q15(step.imag)))
    step_word = step_lo | (step_lo << 32)
    ph0_word = pack_complex_word(int(q15(ph0.real)), int(q15(ph0.imag))) | (
        pack_complex_word(int(q15(ph1.real)), int(q15(ph1.imag))) << 32
    )
    return step_word, ph0_word
