"""Activity-based power model reproducing Table 3 and Fig 6.

Energy accounting
-----------------
Total energy over a simulated region is

    E = sum_i  events_i * e_i  +  cycles_mode * e_clk_mode  +  P_leak * T

where ``events_i`` are the simulator's activity counters, ``e_i`` are
per-event energy coefficients, and each execution mode carries a
per-cycle clock/idle overhead (the clock tree plus the idle half of the
machine: the idle CGA units in VLIW mode, the idle VLIW decode and I$ in
CGA mode).

Calibration
-----------
The coefficients are fitted once, from one reference run of the Table 2
program, so that the model reproduces the paper's published anchors:

* 75 mW active in VLIW mode and its Fig 6a breakdown,
* 310 mW active in CGA mode and its Fig 6b breakdown,

at the typical corner (1 V, 25 C, 400 MHz).  Component shares are taken
from the paper's Section 4 text.  After the fit the coefficients are
*frozen*: the 220 mW application average, per-kernel energies and every
ablation number are predictions of the model on new activity traces.

Leakage is a corner constant: 12.5 mW typical (25 C) and 25 mW at 65 C
(the paper's extrapolation; a factor 2 per 40 C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.stats import ActivityStats

#: Published leakage corners.
LEAKAGE_TYPICAL_W = 0.0125
LEAKAGE_65C_W = 0.025

#: Published active mode powers (typical corner, W).
PAPER_VLIW_ACTIVE_W = 0.075
PAPER_CGA_ACTIVE_W = 0.310
PAPER_AVERAGE_W = 0.220

#: Fig 6a: VLIW-mode active power shares (normalised).
FIG6A_SHARES = {
    "interconnect": 0.28,
    "VLIW FUs": 0.22,
    "global RF": 0.21,
    "L1": 0.13,
    "I$": 0.10,
    "idle CGA": 0.02,
    "clock/other": 0.04,
}

#: Fig 6b: CGA-mode active power shares (normalised to 1.0).
FIG6B_SHARES = {
    "interconnect": 0.38,
    "CGA FUs": 0.25,
    "config memory": 0.13,
    "L1": 0.10,
    "global RF": 0.08,
    "distributed RF": 0.02,
    "idle VLIW+I$": 0.04,
}


def _rates(stats: ActivityStats) -> Dict[str, float]:
    """Per-cycle event rates of a region."""
    cycles = max(stats.total_cycles, 1)
    return {
        "fu_op": stats.total_ops / cycles,
        "cdrf": (stats.cdrf_reads + stats.cdrf_writes) / cycles,
        "cprf": (stats.cprf_reads + stats.cprf_writes) / cycles,
        "lrf": (stats.lrf_reads + stats.lrf_writes) / cycles,
        "l1": (stats.l1_reads + stats.l1_writes) / cycles,
        "icache": (stats.icache_hits + stats.icache_misses) / cycles,
        "config": stats.config_words / cycles,
        "interconnect": stats.interconnect_transfers / cycles,
    }


@dataclass
class PowerModel:
    """Frozen per-event energies (joules) and per-cycle mode overheads."""

    energy: Dict[str, float]
    vliw_cycle_overhead_j: float
    cga_cycle_overhead_j: float
    clock_hz: float = 400e6

    # ------------------------------------------------------------------

    def region_energy(self, stats: ActivityStats) -> Dict[str, float]:
        """Energy (J) by component for one region's activity.

        The shared storage structures (global RF, L1) carry
        mode-dependent per-access energies — in VLIW mode accesses stay
        local to the three issue slots, in CGA mode they drive the
        array-wide distribution wires — weighted by the region's mode
        residency (exact for pure-mode regions).
        """
        cycles = max(stats.total_cycles, 1)
        f_cga = stats.cga_cycles / cycles
        f_vliw = 1.0 - f_cga
        e_cdrf = f_vliw * self.energy["cdrf_vliw"] + f_cga * self.energy["cdrf_cga"]
        e_l1 = f_vliw * self.energy["l1_vliw"] + f_cga * self.energy["l1_cga"]
        # Interconnect activity: CGA wire transfers plus the VLIW bypass
        # traffic, which scales with issued operations.
        out = {
            "CGA FUs": stats.cga_ops * self.energy["cga_op"],
            "VLIW FUs": stats.vliw_ops * self.energy["vliw_op"],
            "global RF": (stats.cdrf_reads + stats.cdrf_writes + stats.cprf_reads + stats.cprf_writes)
            * e_cdrf,
            "distributed RF": (stats.lrf_reads + stats.lrf_writes) * self.energy["lrf"],
            "L1": (stats.l1_reads + stats.l1_writes) * e_l1,
            "I$": (stats.icache_hits + stats.icache_misses) * self.energy["icache"],
            "config memory": stats.config_words * self.energy["config"],
            "interconnect": stats.interconnect_transfers * self.energy["interconnect"]
            + stats.vliw_ops * self.energy["vliw_icn"],
            "clock/idle": stats.vliw_cycles * self.vliw_cycle_overhead_j
            + stats.cga_cycles * self.cga_cycle_overhead_j,
        }
        return out

    def report(
        self, stats: ActivityStats, leakage_w: float = LEAKAGE_TYPICAL_W
    ) -> "PowerReport":
        """Average power over one region's activity."""
        energies = self.region_energy(stats)
        seconds = max(stats.total_cycles, 1) / self.clock_hz
        breakdown = {k: v / seconds for k, v in energies.items()}
        active = sum(breakdown.values())
        return PowerReport(
            active_w=active,
            leakage_w=leakage_w,
            breakdown_w=breakdown,
            cycles=stats.total_cycles,
            seconds=seconds,
        )


@dataclass
class PowerReport:
    """Average power of one region."""

    active_w: float
    leakage_w: float
    breakdown_w: Dict[str, float]
    cycles: int
    seconds: float

    @property
    def total_w(self) -> float:
        return self.active_w + self.leakage_w

    def shares(self) -> Dict[str, float]:
        active = max(self.active_w, 1e-12)
        return {k: v / active for k, v in self.breakdown_w.items()}

    def summary(self) -> str:
        lines = [
            "active %.1f mW + leakage %.1f mW = %.1f mW over %d cycles"
            % (1e3 * self.active_w, 1e3 * self.leakage_w, 1e3 * self.total_w, self.cycles)
        ]
        for name, watts in sorted(self.breakdown_w.items(), key=lambda kv: -kv[1]):
            lines.append(
                "  %-16s %6.1f mW (%4.1f%%)"
                % (name, 1e3 * watts, 100 * watts / max(self.active_w, 1e-12))
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Calibration.
# ----------------------------------------------------------------------


def calibrate_from_reference(
    vliw_stats: ActivityStats,
    cga_stats: ActivityStats,
    clock_hz: float = 400e6,
) -> PowerModel:
    """Fit the coefficients against the paper's anchors.

    *vliw_stats* must come from a VLIW-dominated reference region and
    *cga_stats* from a CGA-dominated one (e.g. the data-movement kernels
    and the fft/SDM kernels of the Table 2 program).
    """
    e_cycle_vliw = PAPER_VLIW_ACTIVE_W / clock_hz  # J per cycle in VLIW mode
    e_cycle_cga = PAPER_CGA_ACTIVE_W / clock_hz
    rv = _rates(vliw_stats)
    rc = _rates(cga_stats)

    def per_event(share_source: Dict[str, float], key: str, mode_e: float, rate: float) -> float:
        share = share_source[key]
        if rate <= 0:
            return 0.0
        return share * mode_e / rate

    energy: Dict[str, float] = {}
    # Components anchored in CGA mode (Fig 6b).
    energy["cga_op"] = per_event(FIG6B_SHARES, "CGA FUs", e_cycle_cga, rc["fu_op"])
    energy["config"] = per_event(FIG6B_SHARES, "config memory", e_cycle_cga, rc["config"])
    energy["interconnect"] = per_event(
        FIG6B_SHARES, "interconnect", e_cycle_cga, rc["interconnect"]
    )
    energy["lrf"] = per_event(FIG6B_SHARES, "distributed RF", e_cycle_cga, rc["lrf"])
    # Components anchored in VLIW mode (Fig 6a).
    energy["vliw_op"] = per_event(FIG6A_SHARES, "VLIW FUs", e_cycle_vliw, rv["fu_op"])
    energy["icache"] = per_event(FIG6A_SHARES, "I$", e_cycle_vliw, rv["icache"])
    # Shared storage structures get mode-dependent coefficients: the
    # published shares imply very different per-access energies in the
    # two modes (short slot-local wiring vs array-wide distribution).
    energy["l1_vliw"] = per_event(FIG6A_SHARES, "L1", e_cycle_vliw, rv["l1"])
    energy["l1_cga"] = per_event(FIG6B_SHARES, "L1", e_cycle_cga, rc["l1"])
    energy["cdrf_vliw"] = per_event(
        FIG6A_SHARES, "global RF", e_cycle_vliw, rv["cdrf"] + rv["cprf"]
    )
    energy["cdrf_cga"] = per_event(
        FIG6B_SHARES, "global RF", e_cycle_cga, rc["cdrf"] + rc["cprf"]
    )
    # VLIW-mode interconnect traffic (bypass/busses) rides on issued ops.
    energy["vliw_icn"] = per_event(
        FIG6A_SHARES, "interconnect", e_cycle_vliw, rv["fu_op"]
    )
    # Mode overheads: clock tree plus the idle half of the machine.
    vliw_overhead = (
        FIG6A_SHARES["idle CGA"] + FIG6A_SHARES["clock/other"]
    ) * e_cycle_vliw
    cga_overhead = FIG6B_SHARES["idle VLIW+I$"] * e_cycle_cga
    return PowerModel(
        energy=energy,
        vliw_cycle_overhead_j=vliw_overhead,
        cga_cycle_overhead_j=cga_overhead,
        clock_hz=clock_hz,
    )


_DEFAULT: Optional[PowerModel] = None


def default_model() -> PowerModel:
    """A model calibrated against synthetic reference activity.

    The rates below are representative of the Table 2 program as
    measured on this simulator (VLIW data-movement loops; CGA fft/SDM
    kernels); benches that have real stats at hand should prefer
    :func:`calibrate_from_reference` on those.
    """
    global _DEFAULT
    if _DEFAULT is None:
        vliw = ActivityStats(vliw_cycles=1000, vliw_ops=900)
        vliw.cdrf_reads, vliw.cdrf_writes = 1500, 600
        vliw.l1_reads, vliw.l1_writes = 450, 450
        vliw.icache_hits = 1000
        cga = ActivityStats(cga_cycles=1000, cga_ops=6500)
        cga.cdrf_reads, cga.cdrf_writes = 300, 100
        cga.lrf_reads, cga.lrf_writes = 150, 50
        cga.l1_reads, cga.l1_writes = 1100, 700
        cga.config_words = 15000
        cga.interconnect_transfers = 4000
        _DEFAULT = calibrate_from_reference(vliw, cga)
    return _DEFAULT
