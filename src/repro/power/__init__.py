"""Power and area models (Table 3, Fig 5, Fig 6).

The paper's numbers come from gate-level estimation (PrimePower over
switching activity) and layout; we substitute:

* :mod:`repro.power.area` — a structural area model: per-macro
  coefficients (mm^2 per SRAM KB, per functional unit, per register-file
  bit-port) calibrated once against the published 5.79 mm^2 / Fig 5
  breakdown, then applied to any :class:`~repro.arch.CgaArchitecture`;
* :mod:`repro.power.model` — an activity-based energy model: each event
  class counted by the simulator (FU op, RF port access, L1 bank access,
  I$ fetch, configuration word, interconnect transfer) carries an energy
  coefficient; coefficients are calibrated once against the published
  mode powers and breakdowns (75 mW VLIW / 310 mW CGA, Fig 6a/6b), then
  held fixed, so every application-level number (the 220 mW average,
  per-kernel energy, ablations) is a model *prediction* on simulated
  activity.
"""

from repro.power.area import AreaReport, estimate_area, PAPER_AREA_MM2
from repro.power.model import (
    PowerModel,
    PowerReport,
    calibrate_from_reference,
    default_model,
    LEAKAGE_TYPICAL_W,
    LEAKAGE_65C_W,
)

__all__ = [
    "AreaReport",
    "estimate_area",
    "PAPER_AREA_MM2",
    "PowerModel",
    "PowerReport",
    "calibrate_from_reference",
    "default_model",
    "LEAKAGE_TYPICAL_W",
    "LEAKAGE_65C_W",
]
