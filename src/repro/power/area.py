"""Structural area model reproducing Fig 5.

The paper reports 5.79 mm^2 in TSMC 90G with the breakdown: memories
~50% (L1 + I$ + configuration memories), CGA functional units 29%, VLIW
functional units 8%, global register file 5%, distributed register
files 3%; the remainder is interconnect, control and whitespace.

The model assigns each component class a coefficient over its structural
parameter (SRAM kilobytes, FU count, register-file bit-ports, wire
count).  Coefficients were fitted once so that the paper core reproduces
the published breakdown; applied to modified architectures (ablations:
more units, different RF sizes, denser interconnect) the model
extrapolates area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.arch.config import CgaArchitecture

#: Published total die area of the paper core.
PAPER_AREA_MM2 = 5.79

# ----------------------------------------------------------------------
# Calibrated coefficients (fit against Fig 5 on the paper core; the fit
# is exact by construction for that instance).
# ----------------------------------------------------------------------

#: Bits of one configuration-memory word per functional unit (opcode +
#: mux selects + write-back + immediate share) plus a control word.
CONFIG_BITS_PER_FU = 48
CONFIG_CTRL_BITS = 32

#: mm^2 per SRAM kilobyte (single-ported macros, periphery included).
MM2_PER_SRAM_KB = None  # derived below
#: mm^2 per CGA-only functional unit (64-bit 4x16 SIMD datapath).
MM2_PER_CGA_FU = None
#: mm^2 per VLIW functional unit (adds decode and central port drivers).
MM2_PER_VLIW_FU = None
#: mm^2 per register-file bit-port (entries x width x (R+W) ports).
MM2_PER_GRF_BITPORT = None
MM2_PER_LRF_BITPORT = None
#: mm^2 per interconnect wire (64-bit point-to-point link + mux share).
MM2_PER_WIRE = None


def _config_kbytes(arch: CgaArchitecture) -> float:
    bits = arch.config_memory_contexts * (
        arch.n_units * CONFIG_BITS_PER_FU + CONFIG_CTRL_BITS
    )
    return bits / 8 / 1024


def _calibrate() -> None:
    """Fit the coefficients to Fig 5 on the paper core (runs at import)."""
    global MM2_PER_SRAM_KB, MM2_PER_CGA_FU, MM2_PER_VLIW_FU
    global MM2_PER_GRF_BITPORT, MM2_PER_LRF_BITPORT, MM2_PER_WIRE
    from repro.arch.presets import paper_core

    core = paper_core()
    mem_kb = (
        core.l1.bytes / 1024 + core.icache.bytes / 1024 + _config_kbytes(core)
    )
    MM2_PER_SRAM_KB = 0.50 * PAPER_AREA_MM2 / mem_kb
    n_cga_only = len(core.cga_only_fus)
    MM2_PER_CGA_FU = 0.29 * PAPER_AREA_MM2 / n_cga_only
    MM2_PER_VLIW_FU = 0.08 * PAPER_AREA_MM2 / core.vliw_width
    grf_bitports = core.cdrf.bits * (core.cdrf.read_ports + core.cdrf.write_ports)
    grf_bitports += core.cprf.bits * (core.cprf.read_ports + core.cprf.write_ports)
    MM2_PER_GRF_BITPORT = 0.05 * PAPER_AREA_MM2 / grf_bitports
    lrf_bitports = sum(
        fu.local_rf.bits * (fu.local_rf.read_ports + fu.local_rf.write_ports)
        for fu in core.fus
        if fu.local_rf is not None
    )
    MM2_PER_LRF_BITPORT = 0.03 * PAPER_AREA_MM2 / lrf_bitports
    MM2_PER_WIRE = 0.05 * PAPER_AREA_MM2 / core.interconnect.wire_count


_calibrate()


@dataclass
class AreaReport:
    """Estimated die area and its breakdown."""

    components: Dict[str, float]  # mm^2 per component class

    @property
    def total_mm2(self) -> float:
        return sum(self.components.values())

    @property
    def fractions(self) -> Dict[str, float]:
        total = self.total_mm2
        return {k: v / total for k, v in self.components.items()}

    def summary(self) -> str:
        lines = ["total %.2f mm^2" % self.total_mm2]
        for name, mm2 in sorted(self.components.items(), key=lambda kv: -kv[1]):
            lines.append(
                "  %-18s %5.2f mm^2  (%4.1f%%)"
                % (name, mm2, 100 * mm2 / self.total_mm2)
            )
        return "\n".join(lines)


def estimate_area(arch: CgaArchitecture) -> AreaReport:
    """Estimate die area for *arch* with the calibrated coefficients."""
    mem_kb = arch.l1.bytes / 1024 + arch.icache.bytes / 1024 + _config_kbytes(arch)
    grf_bitports = arch.cdrf.bits * (arch.cdrf.read_ports + arch.cdrf.write_ports)
    grf_bitports += arch.cprf.bits * (arch.cprf.read_ports + arch.cprf.write_ports)
    lrf_bitports = sum(
        fu.local_rf.bits * (fu.local_rf.read_ports + fu.local_rf.write_ports)
        for fu in arch.fus
        if fu.local_rf is not None
    )
    components = {
        "memories": MM2_PER_SRAM_KB * mem_kb,
        "CGA FUs": MM2_PER_CGA_FU * len(arch.cga_only_fus),
        "VLIW FUs": MM2_PER_VLIW_FU * arch.vliw_width,
        "global RF": MM2_PER_GRF_BITPORT * grf_bitports,
        "distributed RF": MM2_PER_LRF_BITPORT * lrf_bitports,
        "interconnect": MM2_PER_WIRE * arch.interconnect.wire_count,
    }
    return AreaReport(components)
