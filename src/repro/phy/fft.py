"""Fixed-point radix-2 64-point (I)FFT with per-stage block scaling.

The ``fft`` kernel of Table 2 runs twice per symbol pair (one FFT per
receive antenna).  The fixed-point algorithm here is the classical
decimation-in-time radix-2 butterfly network with a ``>> 1`` scaling in
every stage (unconditional block scaling), which keeps all intermediates
inside Q15 for full-scale inputs; the output is the DFT divided by N
(the growth absorbed by the 6 scaling stages at N=64).

Twiddle factors are Q15; butterflies use the exact ISA complex-multiply
rounding so the mapped kernel matches this model bit for bit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.phy.fixed import cmul_q15, q15


def bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversed index permutation for a power-of-two *n*."""
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


def twiddles_q15(n: int, inverse: bool = False) -> Tuple[np.ndarray, np.ndarray]:
    """Q15 twiddle factor tables (re, im) for W_n^k, k = 0..n/2-1."""
    k = np.arange(n // 2)
    sign = 1.0 if inverse else -1.0
    w = np.exp(sign * 2j * np.pi * k / n)
    # cos(0)=1 saturates to 32767/32768: acceptable (half-LSB error).
    return q15(w.real), q15(w.imag)


def fft_fixed(
    re: np.ndarray, im: np.ndarray, inverse: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """In-order radix-2 DIT FFT on Q15 arrays; output scaled by 1/N.

    Parameters are int16 arrays of a power-of-two length; returns new
    int16 arrays.  The transform computes ``DFT(x)/N`` (or ``IDFT(x)/N``
    with ``inverse=True``), the scaling being applied as ``>> 1`` per
    stage.
    """
    re = np.asarray(re, dtype=np.int16).copy()
    im = np.asarray(im, dtype=np.int16).copy()
    n = len(re)
    if n & (n - 1) or n < 2:
        raise ValueError("FFT length must be a power of two >= 2")
    if len(im) != n:
        raise ValueError("re/im length mismatch")
    rev = bit_reverse_indices(n)
    re, im = re[rev], im[rev]
    tw_re, tw_im = twiddles_q15(n, inverse)
    stride = n // 2
    size = 2
    while size <= n:
        half = size // 2
        tstep = n // size
        for start in range(0, n, size):
            for j in range(half):
                w_r = tw_re[j * tstep]
                w_i = tw_im[j * tstep]
                a, b = start + j, start + j + half
                # t = w * x[b] with ISA rounding.
                t_r, t_i = cmul_q15(
                    np.int16(re[b]), np.int16(im[b]), w_r, w_i
                )
                # Butterfly with >>1 block scaling per stage.  Sums pass
                # through the saturating 16-bit SIMD adders before the
                # shift, exactly as on the hardware datapath.
                def _sat(v: int) -> int:
                    return max(-32768, min(32767, v))

                re_a = _sat(int(re[a]) + int(t_r)) >> 1
                im_a = _sat(int(im[a]) + int(t_i)) >> 1
                re_b = _sat(int(re[a]) - int(t_r)) >> 1
                im_b = _sat(int(im[a]) - int(t_i)) >> 1
                re[a], im[a] = re_a, im_a
                re[b], im[b] = re_b, im_b
        size *= 2
    return re, im


def ifft_fixed(re: np.ndarray, im: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse transform: ``IDFT(x)/N`` (so ``ifft(fft(x)) == x/N^2``...

    Note the deliberate asymmetry: like the hardware kernel, each call
    scales by 1/N; a TX IFFT followed by an RX FFT therefore returns the
    constellation scaled by 1/N^2 relative to unitary conventions, and
    the receive chain compensates digitally (the ``comp`` kernel).
    """
    return fft_fixed(re, im, inverse=True)


def fft_float(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Floating-point reference with the same 1/N scaling convention."""
    x = np.asarray(x, dtype=np.complex128)
    if inverse:
        return np.fft.ifft(x)  # numpy ifft already divides by N
    return np.fft.fft(x) / len(x)
