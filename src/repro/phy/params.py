"""OFDM numerology of the paper's application: 20 MHz 2x2 MIMO-OFDM.

The workload is "a 20MHz 2x2 MIMO-OFDM modem as in IEEE802.11n
applications": 64-point FFT at 20 Msps, 52 data + 4 pilot subcarriers,
16-sample cyclic prefix (4 us symbols), two spatial streams with 64-QAM
— the configuration that crosses 100 Mbps with rate-5/6 coding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class OfdmParams:
    """Numerology of one MIMO-OFDM configuration."""

    sample_rate_hz: float = 20e6
    n_fft: int = 64
    n_cp: int = 16
    n_streams: int = 2
    bits_per_qam_symbol: int = 6  # 64-QAM
    #: Data subcarrier indices (FFT bin numbers, DC = 0), 802.11a/n-style
    #: occupancy of +-1..26 minus the pilot positions.
    pilot_carriers: Tuple[int, ...] = (7, 21, 64 - 21, 64 - 7)
    code_rate: float = 5.0 / 6.0

    @property
    def used_carriers(self) -> Tuple[int, ...]:
        """All occupied bins: +-1..28 as in 802.11n (52 data + 4 pilots)."""
        positive = list(range(1, 29))
        negative = [self.n_fft - k for k in range(1, 29)]
        return tuple(positive + negative)

    @property
    def data_carriers(self) -> Tuple[int, ...]:
        """Occupied bins that carry data (pilots excluded)."""
        return tuple(k for k in self.used_carriers if k not in self.pilot_carriers)

    @property
    def n_data_carriers(self) -> int:
        return len(self.data_carriers)

    @property
    def symbol_samples(self) -> int:
        """Samples per OFDM symbol including the cyclic prefix."""
        return self.n_fft + self.n_cp

    @property
    def symbol_duration_s(self) -> float:
        """Symbol time: 80 samples at 20 Msps = 4 us."""
        return self.symbol_samples / self.sample_rate_hz

    @property
    def bits_per_symbol(self) -> int:
        """Uncoded bits per OFDM symbol over all streams."""
        return self.n_data_carriers * self.bits_per_qam_symbol * self.n_streams

    @property
    def phy_rate_bps(self) -> float:
        """Uncoded PHY rate."""
        return self.bits_per_symbol / self.symbol_duration_s

    @property
    def coded_rate_bps(self) -> float:
        """Net data rate after the outer code (the paper's 100 Mbps+)."""
        return self.phy_rate_bps * self.code_rate


#: The paper's configuration: 52 data carriers x 6 bits x 2 streams per
#: 4 us symbol = 156 Mbps raw, 130 Mbps at rate 5/6.
PARAMS_20MHZ_2X2 = OfdmParams()
