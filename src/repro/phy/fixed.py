"""Q15 fixed-point helpers and the SIMD packed complex-pair layout.

The processor's SIMD datapath holds four 16-bit lanes per 64-bit word.
Baseband kernels pack **two complex samples** per word as
``|re0|im0|re1|im1|`` (lane 0 = least significant 16 bits), which is the
layout the ``d4prod``/``c4prod`` pairing in Table 1 is designed for.

These helpers mirror the ISA's arithmetic exactly (Q15 products with
``>> 15`` and saturation) so NumPy golden models and executed kernels
can be compared bit for bit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.isa.bits import pack_lanes, split_lanes

Q15_ONE = 1 << 15


def q15(x) -> np.ndarray:
    """Quantise float(s) in [-1, 1) to Q15 with saturation."""
    arr = np.round(np.asarray(x, dtype=np.float64) * Q15_ONE)
    return np.clip(arr, -Q15_ONE, Q15_ONE - 1).astype(np.int16)


def from_q15(x) -> np.ndarray:
    """Convert Q15 integers back to float."""
    return np.asarray(x, dtype=np.float64) / Q15_ONE


def q15_mul_array(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorised Q15 multiply matching :func:`repro.isa.semantics.q15_mul`."""
    prod = (a.astype(np.int32) * b.astype(np.int32)) >> 15
    return np.clip(prod, -Q15_ONE, Q15_ONE - 1).astype(np.int16)


def quantize_complex(x, scale: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
    """Quantise a complex float array to Q15 (re, im) int16 arrays."""
    arr = np.asarray(x, dtype=np.complex128) * scale
    return q15(arr.real), q15(arr.imag)


def complex_from_q15(re: np.ndarray, im: np.ndarray) -> np.ndarray:
    """Assemble a complex float array from Q15 parts."""
    return from_q15(re) + 1j * from_q15(im)


def cmul_q15(
    ar: np.ndarray, ai: np.ndarray, br: np.ndarray, bi: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Complex Q15 multiply with the exact ISA rounding.

    ``re = ar*br - ai*bi``, ``im = ar*bi + ai*br`` where every 16x16
    product is individually ``>> 15``-rounded and saturated, then the
    sum wraps in int16 — matching the d4prod/c4prod/c4sub/c4add idiom.
    """
    rr = q15_mul_array(ar, br)
    ii = q15_mul_array(ai, bi)
    ri = q15_mul_array(ar, bi)
    ir = q15_mul_array(ai, br)
    re = np.clip(rr.astype(np.int32) - ii.astype(np.int32), -Q15_ONE, Q15_ONE - 1)
    im = np.clip(ri.astype(np.int32) + ir.astype(np.int32), -Q15_ONE, Q15_ONE - 1)
    return re.astype(np.int16), im.astype(np.int16)


# ----------------------------------------------------------------------
# Packed complex pairs (two samples per 64-bit word).
# ----------------------------------------------------------------------


def pack_complex_pair(re0: int, im0: int, re1: int, im1: int) -> int:
    """Pack two complex Q15 samples into one 64-bit SIMD word."""
    return pack_lanes([re0, im0, re1, im1])


def unpack_complex_pair(word: int) -> Tuple[int, int, int, int]:
    """Unpack a 64-bit SIMD word into (re0, im0, re1, im1)."""
    lanes = split_lanes(word)
    return lanes[0], lanes[1], lanes[2], lanes[3]


def pack_complex_array(re: Sequence[int], im: Sequence[int]) -> List[int]:
    """Pack int16 (re, im) arrays into 64-bit words, two samples each.

    The sample count must be even (baseband buffers are).
    """
    re = list(int(x) for x in re)
    im = list(int(x) for x in im)
    if len(re) != len(im):
        raise ValueError("re/im length mismatch")
    if len(re) % 2 != 0:
        raise ValueError("packed complex arrays need an even sample count")
    out = []
    for k in range(0, len(re), 2):
        out.append(pack_complex_pair(re[k], im[k], re[k + 1], im[k + 1]))
    return out


def unpack_complex_array(words: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_complex_array`."""
    re: List[int] = []
    im: List[int] = []
    for word in words:
        r0, i0, r1, i1 = unpack_complex_pair(word)
        re.extend([r0, r1])
        im.extend([i0, i1])
    return np.array(re, dtype=np.int16), np.array(im, dtype=np.int16)
