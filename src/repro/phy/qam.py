"""Gray-mapped 64-QAM modulation and hard demapping (the demod kernel).

802.11-style mapping: 6 bits per symbol, 3 bits per axis, Gray coded,
normalised by 1/sqrt(42) so average symbol energy is 1.
"""

from __future__ import annotations


import numpy as np

#: Gray code for 3 bits -> PAM-8 level index.
_GRAY3 = [0, 1, 3, 2, 6, 7, 5, 4]
#: PAM-8 amplitudes for level index 0..7.
_LEVELS = np.array([-7, -5, -3, -1, 1, 3, 5, 7], dtype=np.float64)
_NORM = 1.0 / np.sqrt(42.0)

# 3-bit Gray label -> PAM-8 amplitude (level index i carries _GRAY3[i]).
_BITS_TO_AMP = np.zeros(8)
for _i, _code in enumerate(_GRAY3):
    _BITS_TO_AMP[_code] = _LEVELS[_i]


def qam64_constellation() -> np.ndarray:
    """All 64 constellation points, indexed by the 6-bit label.

    Label layout: bits [b5 b4 b3] select the I axis, [b2 b1 b0] the Q
    axis (matching the modulator below).
    """
    points = np.zeros(64, dtype=np.complex128)
    for label in range(64):
        i_bits = (label >> 3) & 7
        q_bits = label & 7
        points[label] = (_BITS_TO_AMP[i_bits] + 1j * _BITS_TO_AMP[q_bits]) * _NORM
    return points


def qam64_modulate(bits: np.ndarray) -> np.ndarray:
    """Map a bit array (multiple of 6) to complex symbols."""
    bits = np.asarray(bits, dtype=np.int64).reshape(-1, 6)
    i_bits = bits[:, 0] * 4 + bits[:, 1] * 2 + bits[:, 2]
    q_bits = bits[:, 3] * 4 + bits[:, 4] * 2 + bits[:, 5]
    return (_BITS_TO_AMP[i_bits] + 1j * _BITS_TO_AMP[q_bits]) * _NORM


def _demap_axis(values: np.ndarray) -> np.ndarray:
    """Hard-decide PAM-8 levels back to 3-bit Gray labels."""
    scaled = np.asarray(values, dtype=np.float64) / _NORM
    idx = np.clip(np.round((scaled + 7.0) / 2.0), 0, 7).astype(np.int64)
    gray = np.array(_GRAY3, dtype=np.int64)
    return gray[idx]


def qam64_demodulate(symbols: np.ndarray) -> np.ndarray:
    """Hard-decision demapping back to bits (inverse of the modulator)."""
    symbols = np.asarray(symbols, dtype=np.complex128)
    i_label = _demap_axis(symbols.real)
    q_label = _demap_axis(symbols.imag)
    out = np.zeros((len(symbols), 6), dtype=np.int64)
    out[:, 0] = (i_label >> 2) & 1
    out[:, 1] = (i_label >> 1) & 1
    out[:, 2] = i_label & 1
    out[:, 3] = (q_label >> 2) & 1
    out[:, 4] = (q_label >> 1) & 1
    out[:, 5] = q_label & 1
    return out.reshape(-1)
