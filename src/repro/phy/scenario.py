"""Composable channel-impairment scenarios (the serving-realistic layer).

The golden link bench historically exercised one channel shape (AWGN or
the default 4-tap profile).  Real basebands are qualified against a
*matrix* of impairments — multipath profiles, carrier/Doppler offsets,
IQ imbalance, front-end quantisation — which is also what the related
baseband architectures in PAPERS.md benchmark against.  This module
defines that matrix once so the golden modem, the batch runtime's
packet generator and the fabric's mixed-traffic stream all draw from a
single scenario definition:

* :class:`Scenario` — a frozen bundle of impairment parameters;
* :data:`SCENARIOS` — the named presets (see the table in DESIGN.md);
* :func:`apply_scenario` — TX waveform -> impaired RX waveform;
* :func:`scenario_link` — end-to-end golden-modem run returning BER,
  the unit the BER-vs-SNR regression gates in ``benchmarks/`` check.

Impairment models
-----------------
multipath      :class:`~repro.phy.channel.MimoChannel` with the preset's
               tap count/decay; per-packet Rayleigh block fading.
CFO/Doppler    a fixed offset plus a seeded per-packet jitter term
               (``cfo_jitter_hz``), applied as ``exp(j*2*pi*f*n/fs)``
               inside the channel.  Downstream, the estimated offset is
               what the runtime stamps into packets through the
               ``build_cfo_rotate`` phasor tables via
               :func:`repro.sim.program.patch_constants`.
IQ imbalance   receive-side model ``y = alpha*x + beta*conj(x)`` with
               ``g = 10**(amp_db/20)``, ``phi = radians(phase_deg)``,
               ``alpha = (1 + g*e^{j*phi})/2``, ``beta = (1 - g*e^{j*phi})/2``
               (image-rejection ratio ``|beta/alpha|^2``).
quantisation   a Q15 analog-front-end round trip through
               :func:`repro.phy.fixed.quantize_complex`, scaled to 90%
               of full scale.
timing offset  extra leading noise-only samples before the packet, which
               shifts every downstream estimate by the same amount.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.phy.channel import MimoChannel
from repro.phy.fixed import complex_from_q15, quantize_complex
from repro.phy.params import PARAMS_20MHZ_2X2, OfdmParams


@dataclass(frozen=True)
class Scenario:
    """One named impairment bundle; every field composes independently."""

    name: str
    description: str
    #: Multipath profile: number of Rayleigh taps (1 = flat) and
    #: exponential decay per tap.  ``identity=True`` bypasses fading
    #: entirely (unit diagonal channel).
    identity: bool = False
    n_taps: int = 1
    tap_decay: float = 0.5
    #: Carrier frequency offset: fixed part plus a uniform +-jitter
    #: drawn per packet seed (models oscillator drift / Doppler).
    cfo_hz: float = 0.0
    cfo_jitter_hz: float = 0.0
    #: Receive IQ imbalance (0/0 = perfect front end).
    iq_amp_db: float = 0.0
    iq_phase_deg: float = 0.0
    #: Q15 front-end quantisation toggle.
    quantize: bool = False
    #: Extra leading noise-only samples (timing/detection stress).
    timing_offset: int = 0
    #: Default SNR when the caller does not sweep one.
    snr_db_default: Optional[float] = 35.0

    def channel(self, n_streams: int = 2, seed: int = 0) -> MimoChannel:
        """The block-fading channel realisation for *seed*."""
        if self.identity:
            return MimoChannel.identity(n_streams)
        return MimoChannel(
            n_tx=n_streams,
            n_rx=n_streams,
            n_taps=self.n_taps,
            tap_decay=self.tap_decay,
            seed=seed,
        )

    def packet_cfo_hz(self, seed: int = 0) -> float:
        """The per-packet offset: fixed part plus seeded jitter."""
        if self.cfo_jitter_hz == 0.0:
            return self.cfo_hz
        rng = np.random.default_rng(np.uint64(seed) * np.uint64(2654435761) + 17)
        return float(self.cfo_hz + rng.uniform(-self.cfo_jitter_hz, self.cfo_jitter_hz))

    def with_overrides(self, **kwargs) -> "Scenario":
        """A copy with individual impairments replaced (for sweeps)."""
        return replace(self, **kwargs)


def apply_iq_imbalance(x: np.ndarray, amp_db: float, phase_deg: float) -> np.ndarray:
    """Receive-side IQ imbalance: ``y = alpha*x + beta*conj(x)``."""
    if amp_db == 0.0 and phase_deg == 0.0:
        return np.asarray(x, dtype=np.complex128)
    g = 10.0 ** (amp_db / 20.0)
    rot = g * np.exp(1j * np.deg2rad(phase_deg))
    alpha = (1.0 + rot) / 2.0
    beta = (1.0 - rot) / 2.0
    x = np.asarray(x, dtype=np.complex128)
    return alpha * x + beta * np.conj(x)


def quantize_frontend(x: np.ndarray, headroom: float = 0.9) -> np.ndarray:
    """Q15 ADC round trip, scaled so the waveform peak sits at *headroom*."""
    x = np.asarray(x, dtype=np.complex128)
    peak = float(np.max(np.abs(np.concatenate([x.real.ravel(), x.imag.ravel()]))))
    if peak <= 0:
        return x.copy()
    scale = headroom / peak
    re, im = quantize_complex(x, scale=scale)
    return complex_from_q15(re, im) / scale


def apply_scenario(
    tx: np.ndarray,
    scenario: "Scenario | str",
    snr_db: Optional[float] = None,
    seed: int = 0,
    params: OfdmParams = PARAMS_20MHZ_2X2,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Propagate per-stream TX waveforms through the scenario's channel.

    Order of effects: multipath + CFO (channel), AWGN at *snr_db* (or
    the preset default), receive IQ imbalance, Q15 quantisation, then
    *timing_offset* leading noise samples.  Deterministic in
    ``(scenario, snr_db, seed)``.
    """
    scenario = get_scenario(scenario)
    tx = np.atleast_2d(np.asarray(tx, dtype=np.complex128))
    if snr_db is None:
        snr_db = scenario.snr_db_default
    chan = scenario.channel(n_streams=tx.shape[0], seed=seed)
    if rng is None:
        rng = np.random.default_rng(np.uint64(seed) * np.uint64(0x9E3779B9) + 1)
    rx = chan.apply(
        tx,
        snr_db=snr_db,
        cfo_hz=scenario.packet_cfo_hz(seed),
        sample_rate_hz=params.sample_rate_hz,
        rng=rng,
    )
    rx = apply_iq_imbalance(rx, scenario.iq_amp_db, scenario.iq_phase_deg)
    if scenario.quantize:
        rx = quantize_frontend(rx)
    if scenario.timing_offset > 0:
        sig = float(np.sqrt(np.mean(np.abs(rx) ** 2)))
        lead = (0.01 * sig) * (
            rng.normal(size=(rx.shape[0], scenario.timing_offset))
            + 1j * rng.normal(size=(rx.shape[0], scenario.timing_offset))
        )
        rx = np.concatenate([lead, rx], axis=1)
    return rx


def scenario_link(
    scenario: "Scenario | str",
    snr_db: Optional[float] = None,
    seed: int = 0,
    n_symbols: int = 2,
    params: OfdmParams = PARAMS_20MHZ_2X2,
):
    """End-to-end golden-modem run under a scenario; returns (tx, rx, ber).

    The unit of the BER-vs-SNR regression gates: transmit seeded random
    bits, impair with :func:`apply_scenario`, run the full golden
    receiver, compare bits.
    """
    # Imported here: modem_ref imports nothing from this module, but a
    # top-level import would still be a cycle risk as both grow.
    from repro.phy.modem_ref import receive, transmit

    scenario = get_scenario(scenario)
    rng = np.random.default_rng(seed)
    per_symbol = params.n_data_carriers * params.bits_per_qam_symbol * params.n_streams
    bits = rng.integers(0, 2, size=n_symbols * per_symbol)
    tx = transmit(bits, params)
    rx_wave = apply_scenario(tx.waveform, scenario, snr_db=snr_db, seed=seed, params=params)
    rx_wave = np.pad(rx_wave, ((0, 0), (0, 2 * params.symbol_samples)))
    result = receive(rx_wave, n_symbols, params)
    n = min(len(result.bits), len(bits))
    ber = float(np.mean(result.bits[:n] != bits[:n])) if n else 1.0
    return tx, result, ber


#: The named scenario matrix.  Presets are ordered roughly by severity;
#: ``indoor_multipath`` reproduces the historical link-quality channel
#: (MimoChannel defaults) so the tightened waterfall gates stay
#: comparable with the pre-fix trajectory.
SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="awgn",
            description="Ideal front end, identity channel, AWGN only",
            identity=True,
        ),
        Scenario(
            name="flat_fading",
            description="Single-tap Rayleigh block fading per packet",
            n_taps=1,
        ),
        Scenario(
            name="indoor_multipath",
            description="4-tap exponential PDP (the historical link channel)",
            n_taps=4,
            tap_decay=0.5,
        ),
        Scenario(
            name="dense_multipath",
            description="6-tap slow-decay PDP pushing the 16-sample CP",
            n_taps=6,
            tap_decay=0.7,
        ),
        Scenario(
            name="cfo_stress",
            description="Indoor multipath with 200 kHz offset +-2 kHz Doppler jitter",
            n_taps=4,
            tap_decay=0.5,
            cfo_hz=200e3,
            cfo_jitter_hz=2e3,
        ),
        Scenario(
            name="iq_imbalance",
            description="Indoor multipath behind a 0.5 dB / 3 deg IQ-imbalanced front end",
            n_taps=4,
            tap_decay=0.5,
            iq_amp_db=0.5,
            iq_phase_deg=3.0,
        ),
        Scenario(
            name="quantized_frontend",
            description="Indoor multipath through a Q15 ADC round trip",
            n_taps=4,
            tap_decay=0.5,
            quantize=True,
        ),
        Scenario(
            name="timing_stress",
            description="Indoor multipath with 48 leading noise-only samples",
            n_taps=4,
            tap_decay=0.5,
            timing_offset=48,
        ),
        Scenario(
            name="worst_case",
            description="Dense multipath + 150 kHz CFO + IQ imbalance + Q15 ADC",
            n_taps=6,
            tap_decay=0.7,
            cfo_hz=150e3,
            cfo_jitter_hz=2e3,
            iq_amp_db=0.5,
            iq_phase_deg=3.0,
            quantize=True,
        ),
    )
}


def get_scenario(scenario: "Scenario | str") -> Scenario:
    """Resolve a preset name (or pass a :class:`Scenario` through)."""
    if isinstance(scenario, Scenario):
        return scenario
    try:
        return SCENARIOS[scenario]
    except KeyError:
        raise KeyError(
            "unknown scenario %r; presets: %s" % (scenario, ", ".join(sorted(SCENARIOS)))
        ) from None


def list_scenarios() -> Tuple[str, ...]:
    """Preset names in severity order (the matrix rows)."""
    return tuple(SCENARIOS)
