"""MIMO channel estimation and SDM detection (the paper's heaviest kernels).

* ``estimate_channel`` — per-carrier 2x2 channel from the two
  orthogonally-mapped HT-LTF symbols (P-matrix ``[[1,1],[1,-1]]``);
  this feeds the ``equalize coeff. calc.`` kernel;
* ``equalizer_coefficients`` — per-carrier ZF (or MMSE) 2x2 matrix
  inversion; the scalar reciprocal is what the two hardwired 24-bit
  dividers accelerate on the real processor;
* ``sdm_detect`` — applying the equaliser to each received carrier
  vector (the ``SDM processing`` kernel, run 2x for two symbols).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


class IllConditionedChannelError(ValueError):
    """A per-carrier channel matrix is too ill-conditioned to invert.

    Raised by :func:`equalizer_coefficients` in ``strict`` mode; in the
    default flagging mode the offending carriers are zeroed in the
    returned coefficients and reported through ``return_info``.
    """

    def __init__(self, carriers: Sequence[int], max_condition: float) -> None:
        self.carriers = list(carriers)
        self.max_condition = max_condition
        super().__init__(
            "channel condition number exceeds %.3g on carriers %s"
            % (max_condition, self.carriers)
        )


def estimate_channel(
    ltf_rx: np.ndarray, ltf_ref: np.ndarray, carriers: Sequence[int]
) -> np.ndarray:
    """Per-carrier MIMO channel estimate from orthogonal training symbols.

    Parameters
    ----------
    ltf_rx:
        Received frequency-domain training: shape (2, n_rx, n_fft) — two
        HT-LTF symbols per receive antenna.
    ltf_ref:
        The known training sequence per carrier (n_fft,).
    carriers:
        Bins to estimate.

    Returns
    -------
    np.ndarray
        (n_fft, n_rx, n_tx) channel matrices (zeros on unused bins).

    With the P-matrix mapping (stream0: +L,+L; stream1: +L,-L):
    ``Y1 = H0*L + H1*L``, ``Y2 = H0*L - H1*L`` per receive antenna, so
    ``H0 = (Y1+Y2) / (2L)`` and ``H1 = (Y1-Y2) / (2L)``.
    """
    n_sym, n_rx, n_fft = ltf_rx.shape
    if n_sym != 2:
        raise ValueError("need exactly 2 training symbols for 2 streams")
    h = np.zeros((n_fft, n_rx, 2), dtype=np.complex128)
    for k in carriers:
        ref = ltf_ref[k]
        if ref == 0:
            continue
        for r in range(n_rx):
            y1, y2 = ltf_rx[0, r, k], ltf_rx[1, r, k]
            h[k, r, 0] = (y1 + y2) / (2.0 * ref)
            h[k, r, 1] = (y1 - y2) / (2.0 * ref)
    return h


#: Gram-matrix condition number beyond which a carrier is treated as
#: uninvertible.  ZF on such a carrier multiplies the noise by the
#: condition number — at 64-QAM that silently converts one deep fade
#: into a burst of hard symbol errors, which is why flagging (or
#: raising) beats inverting anyway.
DEFAULT_MAX_CONDITION = 1e8


def equalizer_coefficients(
    h: np.ndarray,
    carriers: Sequence[int],
    noise_var: float = 0.0,
    max_condition: float = DEFAULT_MAX_CONDITION,
    strict: bool = False,
    return_info: bool = False,
):
    """Per-carrier 2x2 ZF (``noise_var == 0``) or MMSE equaliser.

    ZF: ``W = (H^H H)^-1 H^H``; MMSE adds ``noise_var * I`` inside the
    inverse.  Implemented with the explicit 2x2 adjugate/determinant
    formula — the division by the determinant is the operation the
    hardware's 24-bit dividers serve.

    Carriers whose regularised Gram matrix has a condition number above
    *max_condition* (or a vanishing determinant) are not silently
    inverted: in ``strict`` mode an :class:`IllConditionedChannelError`
    is raised, otherwise their coefficients stay zero and the carrier is
    reported in the info dict.  With ``return_info=True`` the return
    value is ``(w, info)`` where ``info["ill_conditioned"]`` lists the
    flagged carriers and ``info["condition"]`` maps carrier -> condition
    number.
    """
    n_fft = h.shape[0]
    w = np.zeros((n_fft, 2, 2), dtype=np.complex128)
    condition = {}
    flagged = []
    for k in carriers:
        hk = h[k]
        a = hk.conj().T @ hk + noise_var * np.eye(2)
        det = a[0, 0] * a[1, 1] - a[0, 1] * a[1, 0]
        # 2x2 Hermitian PSD condition number from the eigenvalue pair
        # (trace/det give both roots); infinite when singular.
        tr = float(np.real(a[0, 0] + a[1, 1]))
        disc = max(tr * tr - 4.0 * float(np.real(det)), 0.0)
        lam_max = (tr + np.sqrt(disc)) / 2.0
        lam_min = (tr - np.sqrt(disc)) / 2.0
        cond = lam_max / lam_min if lam_min > 0 else np.inf
        condition[int(k)] = float(cond)
        if abs(det) < 1e-12 or cond > max_condition:
            flagged.append(int(k))
            continue
        inv = np.array([[a[1, 1], -a[0, 1]], [-a[1, 0], a[0, 0]]]) / det
        w[k] = inv @ hk.conj().T
    if flagged and strict:
        raise IllConditionedChannelError(flagged, max_condition)
    if return_info:
        return w, {"ill_conditioned": flagged, "condition": condition}
    return w


def sdm_detect(
    y: np.ndarray, w: np.ndarray, carriers: Sequence[int]
) -> np.ndarray:
    """Apply the per-carrier equaliser: ``x_hat[k] = W[k] @ y[k]``.

    *y* has shape (n_rx, n_fft); returns (n_tx, n_fft) with zeros on
    unused carriers.  Raises ``ValueError`` on mismatched shapes or
    non-finite coefficients instead of propagating garbage symbols into
    the demapper.
    """
    y = np.asarray(y)
    w = np.asarray(w)
    if y.ndim != 2:
        raise ValueError("y must be (n_rx, n_fft), got shape %s" % (y.shape,))
    if w.ndim != 3 or w.shape[0] != y.shape[1] or w.shape[2] != y.shape[0]:
        raise ValueError(
            "equaliser shape %s incompatible with y shape %s: expected "
            "(n_fft, n_tx, n_rx) = (%d, *, %d)"
            % (w.shape, y.shape, y.shape[1], y.shape[0])
        )
    n_rx, n_fft = y.shape
    out = np.zeros((w.shape[1], n_fft), dtype=np.complex128)
    for k in carriers:
        if not (0 <= k < n_fft):
            raise ValueError("carrier index %d outside 0..%d" % (k, n_fft - 1))
        wk = w[k]
        if not np.all(np.isfinite(wk.view(np.float64))):
            raise ValueError("non-finite equaliser coefficients on carrier %d" % k)
        out[:, k] = wk @ y[:, k]
    return out


def stream_snr(h: np.ndarray, carriers: Sequence[int], noise_var: float) -> np.ndarray:
    """Post-detection SNR per stream (ZF noise enhancement included)."""
    snrs = []
    for k in carriers:
        hk = h[k]
        gram = hk.conj().T @ hk
        try:
            inv = np.linalg.inv(gram)
        except np.linalg.LinAlgError:
            continue
        snrs.append([1.0 / (noise_var * np.real(inv[i, i])) for i in range(hk.shape[1])])
    if not snrs:
        return np.zeros(h.shape[2])
    return np.mean(np.array(snrs), axis=0)
