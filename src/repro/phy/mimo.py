"""MIMO channel estimation and SDM detection (the paper's heaviest kernels).

* ``estimate_channel`` — per-carrier 2x2 channel from the two
  orthogonally-mapped HT-LTF symbols (P-matrix ``[[1,1],[1,-1]]``);
  this feeds the ``equalize coeff. calc.`` kernel;
* ``equalizer_coefficients`` — per-carrier ZF (or MMSE) 2x2 matrix
  inversion; the scalar reciprocal is what the two hardwired 24-bit
  dividers accelerate on the real processor;
* ``sdm_detect`` — applying the equaliser to each received carrier
  vector (the ``SDM processing`` kernel, run 2x for two symbols).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def estimate_channel(
    ltf_rx: np.ndarray, ltf_ref: np.ndarray, carriers: Sequence[int]
) -> np.ndarray:
    """Per-carrier MIMO channel estimate from orthogonal training symbols.

    Parameters
    ----------
    ltf_rx:
        Received frequency-domain training: shape (2, n_rx, n_fft) — two
        HT-LTF symbols per receive antenna.
    ltf_ref:
        The known training sequence per carrier (n_fft,).
    carriers:
        Bins to estimate.

    Returns
    -------
    np.ndarray
        (n_fft, n_rx, n_tx) channel matrices (zeros on unused bins).

    With the P-matrix mapping (stream0: +L,+L; stream1: +L,-L):
    ``Y1 = H0*L + H1*L``, ``Y2 = H0*L - H1*L`` per receive antenna, so
    ``H0 = (Y1+Y2) / (2L)`` and ``H1 = (Y1-Y2) / (2L)``.
    """
    n_sym, n_rx, n_fft = ltf_rx.shape
    if n_sym != 2:
        raise ValueError("need exactly 2 training symbols for 2 streams")
    h = np.zeros((n_fft, n_rx, 2), dtype=np.complex128)
    for k in carriers:
        ref = ltf_ref[k]
        if ref == 0:
            continue
        for r in range(n_rx):
            y1, y2 = ltf_rx[0, r, k], ltf_rx[1, r, k]
            h[k, r, 0] = (y1 + y2) / (2.0 * ref)
            h[k, r, 1] = (y1 - y2) / (2.0 * ref)
    return h


def equalizer_coefficients(
    h: np.ndarray, carriers: Sequence[int], noise_var: float = 0.0
) -> np.ndarray:
    """Per-carrier 2x2 ZF (``noise_var == 0``) or MMSE equaliser.

    ZF: ``W = (H^H H)^-1 H^H``; MMSE adds ``noise_var * I`` inside the
    inverse.  Implemented with the explicit 2x2 adjugate/determinant
    formula — the division by the determinant is the operation the
    hardware's 24-bit dividers serve.
    """
    n_fft = h.shape[0]
    w = np.zeros((n_fft, 2, 2), dtype=np.complex128)
    for k in carriers:
        hk = h[k]
        a = hk.conj().T @ hk + noise_var * np.eye(2)
        det = a[0, 0] * a[1, 1] - a[0, 1] * a[1, 0]
        if abs(det) < 1e-12:
            continue
        inv = np.array([[a[1, 1], -a[0, 1]], [-a[1, 0], a[0, 0]]]) / det
        w[k] = inv @ hk.conj().T
    return w


def sdm_detect(
    y: np.ndarray, w: np.ndarray, carriers: Sequence[int]
) -> np.ndarray:
    """Apply the per-carrier equaliser: ``x_hat[k] = W[k] @ y[k]``.

    *y* has shape (n_rx, n_fft); returns (n_tx, n_fft) with zeros on
    unused carriers.
    """
    n_rx, n_fft = y.shape
    out = np.zeros((w.shape[1], n_fft), dtype=np.complex128)
    for k in carriers:
        out[:, k] = w[k] @ y[:, k]
    return out


def stream_snr(h: np.ndarray, carriers: Sequence[int], noise_var: float) -> np.ndarray:
    """Post-detection SNR per stream (ZF noise enhancement included)."""
    snrs = []
    for k in carriers:
        hk = h[k]
        gram = hk.conj().T @ hk
        try:
            inv = np.linalg.inv(gram)
        except np.linalg.LinAlgError:
            continue
        snrs.append([1.0 / (noise_var * np.real(inv[i, i])) for i in range(hk.shape[1])])
    if not snrs:
        return np.zeros(h.shape[2])
    return np.mean(np.array(snrs), axis=0)
