"""Preamble generation and synchronisation (acorr / xcorr / CFO kernels).

The preamble follows the 802.11a/n structure the paper's receiver
processes in its first phase:

* **STF** — ten repetitions of a 16-sample short symbol (from 12
  occupied carriers at multiples of 4), used by the ``acorr`` kernel:
  lag-16 autocorrelation whose plateau detects the packet and whose
  phase gives the coarse CFO;
* **LTF** — a 32-sample CP followed by two repetitions of a 64-sample
  long symbol, used by the ``xcorr`` kernel for symbol timing and by
  the fine CFO estimator (lag-64 autocorrelation);
* for 2 spatial streams, a second orthogonally-mapped LTF pair (the
  802.11n P-matrix ``[[1, 1], [1, -1]]``) enables per-carrier 2x2
  channel estimation.
"""

from __future__ import annotations


import numpy as np

#: 802.11a short-training sequence occupied carriers (bin, value) with
#: value scaled by sqrt(13/6).
_STF_CARRIERS = {
    4: 1 + 1j, 8: -1 - 1j, 12: 1 + 1j, 16: -1 - 1j, 20: -1 - 1j, 24: 1 + 1j,
    -4: -1 - 1j, -8: -1 - 1j, -12: -1 - 1j, -16: 1 + 1j, -20: 1 + 1j, -24: 1 + 1j,
}

#: 802.11a long-training sequence (carriers -26..26, DC = 0).
_LTF_SEQ = np.array(
    [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
     1, -1, 1, 1, 1, 1,  # -26..-1
     0,
     1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1,
     -1, 1, -1, 1, 1, 1, 1],  # +1..+26
    dtype=np.float64,
)


def short_training_field(n_fft: int = 64) -> np.ndarray:
    """The 160-sample STF: ten repetitions of the 16-sample short symbol."""
    spectrum = np.zeros(n_fft, dtype=np.complex128)
    scale = np.sqrt(13.0 / 6.0)
    for k, v in _STF_CARRIERS.items():
        spectrum[k % n_fft] = v * scale
    symbol = np.fft.ifft(spectrum)
    short = symbol[:16]
    return np.tile(short, 10)


def ltf_symbol(n_fft: int = 64) -> np.ndarray:
    """One 64-sample long training symbol (time domain)."""
    spectrum = np.zeros(n_fft, dtype=np.complex128)
    for i, k in enumerate(range(-26, 27)):
        spectrum[k % n_fft] = _LTF_SEQ[i]
    return np.fft.ifft(spectrum)


def long_training_field(n_fft: int = 64) -> np.ndarray:
    """The 160-sample LTF: 32-sample CP + two long symbols."""
    sym = ltf_symbol(n_fft)
    return np.concatenate([sym[-32:], sym, sym])


#: HT extension carriers (802.11n occupies +-27, +-28 beyond the legacy LTF).
_HT_EXT = {27: -1.0, 28: -1.0, -27: 1.0, -28: 1.0}


def ht_ltf_sequence(n_fft: int = 64) -> np.ndarray:
    """Frequency-domain HT-LTF reference covering carriers +-28."""
    spectrum = np.zeros(n_fft, dtype=np.float64)
    for i, k in enumerate(range(-26, 27)):
        spectrum[k % n_fft] = _LTF_SEQ[i]
    for k, v in _HT_EXT.items():
        spectrum[k % n_fft] = v
    return spectrum


def ht_ltf_symbol(n_fft: int = 64) -> np.ndarray:
    """One 64-sample HT long training symbol (time domain)."""
    return np.fft.ifft(ht_ltf_sequence(n_fft).astype(np.complex128))


def mimo_preamble(n_fft: int = 64, n_streams: int = 2) -> np.ndarray:
    """Per-stream preamble matrix (n_streams x samples).

    Stream 0 sends STF + LTF + LTF_a; stream 1 sends STF(shifted) +
    LTF_a with the P-matrix sign pattern so the two spatial channels can
    be separated per carrier: over the two HT-LTF symbols, stream 0
    sends (+L, +L) and stream 1 sends (+L, -L).
    """
    stf = short_training_field(n_fft)
    sym = ht_ltf_symbol(n_fft)
    ht_ltf1 = np.concatenate([sym[-16:], sym])  # 80 samples
    ht_ltf2 = np.concatenate([sym[-16:], sym])
    legacy = np.concatenate([stf, long_training_field(n_fft)])
    rows = []
    for stream in range(n_streams):
        sign2 = -1.0 if stream == 1 else 1.0
        # Cyclic shift on stream 1's legacy part avoids unintended
        # beamforming; 8-sample circular shift.
        leg = np.roll(legacy, -8) if stream == 1 else legacy
        rows.append(np.concatenate([leg, ht_ltf1, sign2 * ht_ltf2]))
    return np.vstack(rows)


# ----------------------------------------------------------------------
# Synchronisation estimators (golden models of the Table 2 kernels).
# ----------------------------------------------------------------------


def autocorrelate(x: np.ndarray, lag: int, window: int) -> np.ndarray:
    """Sliding lag-*lag* autocorrelation over *window* samples.

    ``c[n] = sum_{k<window} x[n+k+lag] * conj(x[n+k])`` — the ``acorr``
    kernel.  Returns an array of length ``len(x) - lag - window + 1``.
    """
    x = np.asarray(x, dtype=np.complex128)
    n_out = len(x) - lag - window + 1
    if n_out <= 0:
        return np.zeros(0, dtype=np.complex128)
    out = np.zeros(n_out, dtype=np.complex128)
    for n in range(n_out):
        seg_a = x[n + lag : n + lag + window]
        seg_b = x[n : n + window]
        out[n] = np.sum(seg_a * np.conj(seg_b))
    return out


def cross_correlate(x: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Sliding cross-correlation against a known reference (``xcorr``)."""
    x = np.asarray(x, dtype=np.complex128)
    ref = np.asarray(ref, dtype=np.complex128)
    n_out = len(x) - len(ref) + 1
    out = np.zeros(max(n_out, 0), dtype=np.complex128)
    for n in range(max(n_out, 0)):
        out[n] = np.sum(x[n : n + len(ref)] * np.conj(ref))
    return out


def detect_packet(
    x: np.ndarray, lag: int = 16, window: int = 32, threshold: float = 0.6
) -> int:
    """Packet detection: first index where the normalised lag-16
    autocorrelation exceeds *threshold*.  Returns -1 when not found."""
    x = np.asarray(x, dtype=np.complex128)
    corr = autocorrelate(x, lag, window)
    for n in range(len(corr)):
        # Normalise by the geometric mean of both windows' energies so
        # the metric cannot explode when only the lagged window holds
        # signal (early-trigger protection).
        e0 = np.sum(np.abs(x[n : n + window]) ** 2)
        e1 = np.sum(np.abs(x[n + lag : n + lag + window]) ** 2)
        energy = np.sqrt(e0 * e1)
        if energy <= 1e-12:
            continue
        if np.abs(corr[n]) / energy > threshold:
            return n
    return -1


def estimate_cfo(x: np.ndarray, lag: int, window: int, sample_rate_hz: float) -> float:
    """CFO from the phase of the lag-*lag* autocorrelation (in Hz)."""
    corr = autocorrelate(x, lag, window)
    if len(corr) == 0:
        return 0.0
    # Use the strongest correlation sample for robustness.
    peak = corr[np.argmax(np.abs(corr))]
    return float(np.angle(peak) / (2 * np.pi * lag) * sample_rate_hz)


def timing_from_xcorr(x: np.ndarray, ref: np.ndarray) -> int:
    """Symbol timing: earliest cross-correlation peak within 90% of max.

    The long training field repeats the reference symbol, so several
    near-equal peaks appear 64 samples apart; the earliest one marks the
    first long symbol.
    """
    corr = np.abs(cross_correlate(x, ref))
    if len(corr) == 0:
        return 0
    peak = float(np.max(corr))
    if peak <= 0:
        return 0
    candidates = np.nonzero(corr >= 0.9 * peak)[0]
    return int(candidates[0])
