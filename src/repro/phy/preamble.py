"""Preamble generation and synchronisation (acorr / xcorr / CFO kernels).

The preamble follows the 802.11a/n structure the paper's receiver
processes in its first phase:

* **STF** — ten repetitions of a 16-sample short symbol (from 12
  occupied carriers at multiples of 4), used by the ``acorr`` kernel:
  lag-16 autocorrelation whose plateau detects the packet and whose
  phase gives the coarse CFO;
* **LTF** — a 32-sample CP followed by two repetitions of a 64-sample
  long symbol, used by the ``xcorr`` kernel for symbol timing and by
  the fine CFO estimator (lag-64 autocorrelation);
* for 2 spatial streams, a second orthogonally-mapped LTF pair (the
  802.11n P-matrix ``[[1, 1], [1, -1]]``) enables per-carrier 2x2
  channel estimation.
"""

from __future__ import annotations


import numpy as np

#: 802.11a short-training sequence occupied carriers (bin, value) with
#: value scaled by sqrt(13/6).
_STF_CARRIERS = {
    4: 1 + 1j, 8: -1 - 1j, 12: 1 + 1j, 16: -1 - 1j, 20: -1 - 1j, 24: 1 + 1j,
    -4: -1 - 1j, -8: -1 - 1j, -12: -1 - 1j, -16: 1 + 1j, -20: 1 + 1j, -24: 1 + 1j,
}

#: 802.11a long-training sequence (carriers -26..26, DC = 0).
_LTF_SEQ = np.array(
    [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
     1, -1, 1, 1, 1, 1,  # -26..-1
     0,
     1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1,
     -1, 1, -1, 1, 1, 1, 1],  # +1..+26
    dtype=np.float64,
)


def short_training_field(n_fft: int = 64) -> np.ndarray:
    """The 160-sample STF: ten repetitions of the 16-sample short symbol."""
    spectrum = np.zeros(n_fft, dtype=np.complex128)
    scale = np.sqrt(13.0 / 6.0)
    for k, v in _STF_CARRIERS.items():
        spectrum[k % n_fft] = v * scale
    symbol = np.fft.ifft(spectrum)
    short = symbol[:16]
    return np.tile(short, 10)


def ltf_symbol(n_fft: int = 64) -> np.ndarray:
    """One 64-sample long training symbol (time domain)."""
    spectrum = np.zeros(n_fft, dtype=np.complex128)
    for i, k in enumerate(range(-26, 27)):
        spectrum[k % n_fft] = _LTF_SEQ[i]
    return np.fft.ifft(spectrum)


def long_training_field(n_fft: int = 64) -> np.ndarray:
    """The 160-sample LTF: 32-sample CP + two long symbols."""
    sym = ltf_symbol(n_fft)
    return np.concatenate([sym[-32:], sym, sym])


#: HT extension carriers (802.11n occupies +-27, +-28 beyond the legacy LTF).
_HT_EXT = {27: -1.0, 28: -1.0, -27: 1.0, -28: 1.0}


def ht_ltf_sequence(n_fft: int = 64) -> np.ndarray:
    """Frequency-domain HT-LTF reference covering carriers +-28."""
    spectrum = np.zeros(n_fft, dtype=np.float64)
    for i, k in enumerate(range(-26, 27)):
        spectrum[k % n_fft] = _LTF_SEQ[i]
    for k, v in _HT_EXT.items():
        spectrum[k % n_fft] = v
    return spectrum


def ht_ltf_symbol(n_fft: int = 64) -> np.ndarray:
    """One 64-sample HT long training symbol (time domain)."""
    return np.fft.ifft(ht_ltf_sequence(n_fft).astype(np.complex128))


def mimo_preamble(n_fft: int = 64, n_streams: int = 2) -> np.ndarray:
    """Per-stream preamble matrix (n_streams x samples).

    Stream 0 sends STF + LTF + LTF_a; stream 1 sends STF(shifted) +
    LTF_a with the P-matrix sign pattern so the two spatial channels can
    be separated per carrier: over the two HT-LTF symbols, stream 0
    sends (+L, +L) and stream 1 sends (+L, -L).

    Stream 1's legacy portion carries an 8-sample cyclic-shift diversity
    (CSD) so the superposed streams do not beamform.  The shift is
    applied *per OFDM symbol* (circular within each training symbol,
    with the cyclic prefix taken from the shifted symbol), as 802.11n
    specifies.  Rolling the whole legacy field instead — an earlier bug
    — wrapped STF samples into the tail of stream 1's LTF, which broke
    the lag-64 repetition the fine CFO estimator relies on and biased
    it by a couple of kHz even on a noiseless channel.
    """
    stf = short_training_field(n_fft)
    lsym = ltf_symbol(n_fft)
    sym = ht_ltf_symbol(n_fft)
    ht_ltf1 = np.concatenate([sym[-16:], sym])  # 80 samples
    ht_ltf2 = np.concatenate([sym[-16:], sym])
    rows = []
    for stream in range(n_streams):
        sign2 = -1.0 if stream == 1 else 1.0
        if stream == 1:
            # The STF is a tiling of one 16-sample symbol, so the whole-
            # field roll *is* the per-symbol circular shift there; the
            # LTF must be rebuilt from the shifted long symbol so its CP
            # stays consistent and the field stays 64-periodic.
            shifted = np.roll(lsym, -8)
            leg = np.concatenate(
                [np.roll(stf, -8), shifted[-32:], shifted, shifted]
            )
        else:
            leg = np.concatenate([stf, long_training_field(n_fft)])
        rows.append(np.concatenate([leg, ht_ltf1, sign2 * ht_ltf2]))
    return np.vstack(rows)


# ----------------------------------------------------------------------
# Synchronisation estimators (golden models of the Table 2 kernels).
# ----------------------------------------------------------------------


def autocorrelate(x: np.ndarray, lag: int, window: int) -> np.ndarray:
    """Sliding lag-*lag* autocorrelation over *window* samples.

    ``c[n] = sum_{k<window} x[n+k+lag] * conj(x[n+k])`` — the ``acorr``
    kernel.  Returns an array of length ``len(x) - lag - window + 1``.
    """
    x = np.asarray(x, dtype=np.complex128)
    n_out = len(x) - lag - window + 1
    if n_out <= 0:
        return np.zeros(0, dtype=np.complex128)
    out = np.zeros(n_out, dtype=np.complex128)
    for n in range(n_out):
        seg_a = x[n + lag : n + lag + window]
        seg_b = x[n : n + window]
        out[n] = np.sum(seg_a * np.conj(seg_b))
    return out


def cross_correlate(x: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Sliding cross-correlation against a known reference (``xcorr``)."""
    x = np.asarray(x, dtype=np.complex128)
    ref = np.asarray(ref, dtype=np.complex128)
    n_out = len(x) - len(ref) + 1
    out = np.zeros(max(n_out, 0), dtype=np.complex128)
    for n in range(max(n_out, 0)):
        out[n] = np.sum(x[n : n + len(ref)] * np.conj(ref))
    return out


def detect_packet(
    x: np.ndarray, lag: int = 16, window: int = 32, threshold: float = 0.6
) -> int:
    """Packet detection: first index where the normalised lag-16
    autocorrelation exceeds *threshold*.  Returns -1 when not found."""
    x = np.asarray(x, dtype=np.complex128)
    corr = autocorrelate(x, lag, window)
    for n in range(len(corr)):
        # Normalise by the geometric mean of both windows' energies so
        # the metric cannot explode when only the lagged window holds
        # signal (early-trigger protection).
        e0 = np.sum(np.abs(x[n : n + window]) ** 2)
        e1 = np.sum(np.abs(x[n + lag : n + lag + window]) ** 2)
        energy = np.sqrt(e0 * e1)
        if energy <= 1e-12:
            continue
        if np.abs(corr[n]) / energy > threshold:
            return n
    return -1


def estimate_cfo(x: np.ndarray, lag: int, window: int, sample_rate_hz: float) -> float:
    """CFO from the phase of the lag-*lag* autocorrelation (in Hz).

    All correlation samples within 75% of the peak magnitude — the
    plateau the repeated training structure produces — are summed before
    taking the phase.  Using a single peak sample (the old behaviour)
    left several hundred Hz of error even at 45 dB SNR because one
    sliding-window position carries the full estimation variance;
    coherent plateau averaging divides that variance by the plateau
    length.
    """
    acc = plateau_correlation(x, lag, window)
    if acc == 0:
        return 0.0
    return float(np.angle(acc) / (2 * np.pi * lag) * sample_rate_hz)


def plateau_correlation(
    x: np.ndarray, lag: int, window: int, threshold: float = 0.75
) -> complex:
    """Sum of autocorrelation samples within *threshold* of the peak.

    The building block of the plateau-averaged CFO estimators: callers
    accumulate this over antennas for maximum-ratio combining before
    taking the phase.
    """
    corr = autocorrelate(x, lag, window)
    if len(corr) == 0:
        return 0.0 + 0.0j
    mag = np.abs(corr)
    peak = float(mag.max())
    if peak <= 0:
        return 0.0 + 0.0j
    return complex(np.sum(corr[mag >= threshold * peak]))


def estimate_cfo_multi(
    rows: np.ndarray, lag: int, window: int, sample_rate_hz: float
) -> float:
    """Antenna-combined CFO estimate (Hz) over an (n_rx, n) sample block.

    Every receive antenna observes the same frequency offset, so their
    plateau correlations add coherently; combining them before the
    ``angle`` is maximum-ratio combining across the array.
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=np.complex128))
    acc = 0.0 + 0.0j
    for row in rows:
        acc += plateau_correlation(row, lag, window)
    if acc == 0:
        return 0.0
    return float(np.angle(acc) / (2 * np.pi * lag) * sample_rate_hz)


def timing_from_xcorr(x: np.ndarray, ref: np.ndarray) -> int:
    """Symbol timing: index of the strongest cross-correlation peak.

    Returns the first index on exact ties.  The earlier
    earliest-within-90%-of-max rule was a latent defect: over a
    multipath channel the correlation smears across the delay spread and
    the 8-sample CSD on stream 1 adds a ghost peak, so "earliest within
    90%" could land the FFT window up to several samples *late* — past
    the cyclic prefix of the next symbol — turning every data symbol
    into an ISI-corrupted linear (not circular) shift.  Receivers must
    instead take the strongest path and back the window off into the CP
    (see ``modem_ref.TIMING_BACKOFF``).
    """
    corr = np.abs(cross_correlate(x, ref))
    if len(corr) == 0:
        return 0
    return int(np.argmax(corr))


#: Leading-edge search parameters for :func:`timing_from_xcorr_multi`:
#: how far before the correlation peak the first arrival is searched
#: for, and the power fraction that counts as an arrival.
TIMING_EDGE_SPAN = 8
TIMING_EDGE_FRACTION = 0.3


def timing_from_xcorr_multi(rows: np.ndarray, ref: np.ndarray) -> int:
    """Antenna-combined symbol timing with leading-edge selection.

    The |xcorr|^2 metric is summed over receive antennas (non-coherent
    combining — per-antenna correlation phases differ with the channel,
    so powers add).  The returned index is the *first arrival*: the
    earliest sample within ``TIMING_EDGE_SPAN`` before the strongest
    peak whose power reaches ``TIMING_EDGE_FRACTION`` of it.  On a
    multipath channel the strongest peak rides the strongest tap, which
    can be several samples *after* the first tap (and after stream 1's
    CSD image); locking to the leading edge keeps the subsequent
    CP back-off (``modem_ref.TIMING_BACKOFF``) inside the ISI-free span
    even when the delay spread approaches the cyclic prefix.
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=np.complex128))
    power: np.ndarray = np.zeros(0)
    for row in rows:
        mag2 = np.abs(cross_correlate(row, ref)) ** 2
        if len(mag2) == 0:
            continue
        if len(power) == 0:
            power = mag2
        else:
            n = min(len(power), len(mag2))
            power = power[:n] + mag2[:n]
    if len(power) == 0:
        return 0
    peak = int(np.argmax(power))
    lo = max(peak - TIMING_EDGE_SPAN, 0)
    edge = np.nonzero(power[lo : peak + 1] >= TIMING_EDGE_FRACTION * power[peak])[0]
    return lo + int(edge[0]) if len(edge) else peak


def estimate_noise_variance(rows: np.ndarray, ltf1_start: int, n_fft: int = 64) -> float:
    """Per-sample noise power from the legacy LTF repetition.

    The two back-to-back long training symbols carry identical signal on
    every stream, so ``y[n + n_fft] - y[n]`` across the first symbol is
    pure noise with twice the per-sample variance.  Averaged over
    antennas; this is what calibrates the MMSE equaliser without an
    oracle SNR.
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=np.complex128))
    acc, count = 0.0, 0
    for row in rows:
        a = row[ltf1_start : ltf1_start + n_fft]
        b = row[ltf1_start + n_fft : ltf1_start + 2 * n_fft]
        n = min(len(a), len(b))
        if n == 0:
            continue
        acc += float(np.mean(np.abs(a[:n] - b[:n]) ** 2)) / 2.0
        count += 1
    return acc / count if count else 0.0
