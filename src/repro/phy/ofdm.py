"""OFDM symbol (de)framing: CP, carrier (de)mapping, pilot tracking.

These are the golden models of the lighter Table 2 kernels:

* ``remove zero carriers`` — compacting the 64 FFT outputs down to the
  52 data bins (VLIW-mode data movement);
* ``sample ordering`` / ``sample reordering`` / ``data shuffle`` —
  layout changes between the antenna-major sample stream and the
  carrier-major detection layout (VLIW-mode data movement);
* ``tracking`` — common-phase-error estimation from the 4 pilots;
* ``comp`` — applying the tracking phasor (and the FFT-scaling
  compensation) to the data carriers.
"""

from __future__ import annotations


import numpy as np

from repro.phy.params import OfdmParams

#: 802.11 pilot polarity sequence (first few entries; cycled).
PILOT_POLARITY = np.array([1, 1, 1, -1, 1, 1, 1, -1] * 16, dtype=np.float64)
#: Pilot values per pilot carrier (stream 0 convention).
PILOT_VALUES = {7: 1.0, 21: 1.0, 64 - 21: 1.0, 64 - 7: -1.0}


def map_carriers(symbols: np.ndarray, params: OfdmParams, symbol_index: int = 0) -> np.ndarray:
    """Place data symbols and pilots onto the FFT grid (one stream)."""
    if len(symbols) != params.n_data_carriers:
        raise ValueError(
            "expected %d data symbols, got %d"
            % (params.n_data_carriers, len(symbols))
        )
    grid = np.zeros(params.n_fft, dtype=np.complex128)
    for value, k in zip(symbols, params.data_carriers):
        grid[k] = value
    pol = PILOT_POLARITY[symbol_index % len(PILOT_POLARITY)]
    for k in params.pilot_carriers:
        grid[k] = PILOT_VALUES[k] * pol
    return grid


def demap_carriers(grid: np.ndarray, params: OfdmParams) -> np.ndarray:
    """Extract the data carriers ("remove zero carriers" + pilot strip)."""
    return np.asarray(grid)[list(params.data_carriers)]


def add_cp(symbol: np.ndarray, n_cp: int) -> np.ndarray:
    """Prefix the last *n_cp* samples (cyclic prefix)."""
    return np.concatenate([symbol[-n_cp:], symbol])


def remove_cp(samples: np.ndarray, params: OfdmParams) -> np.ndarray:
    """Drop the cyclic prefix of one symbol's worth of samples."""
    if len(samples) < params.symbol_samples:
        raise ValueError("not enough samples for one symbol")
    return samples[params.n_cp : params.n_cp + params.n_fft]


def track_pilots(
    grid: np.ndarray, params: OfdmParams, symbol_index: int = 0
) -> complex:
    """Common phase error from the pilots (the ``tracking`` kernel).

    Returns the unit phasor by which data carriers must be de-rotated.
    """
    pol = PILOT_POLARITY[symbol_index % len(PILOT_POLARITY)]
    acc = 0.0 + 0.0j
    for k in params.pilot_carriers:
        expected = PILOT_VALUES[k] * pol
        acc += grid[k] * np.conj(expected)
    if abs(acc) < 1e-15:
        return 1.0 + 0.0j
    return acc / abs(acc)


def apply_tracking(
    grid: np.ndarray, phasor: complex, gain: float = 1.0
) -> np.ndarray:
    """De-rotate and rescale data carriers (the ``comp`` kernel)."""
    return np.asarray(grid) * np.conj(phasor) * gain


def interleave_streams(streams: np.ndarray) -> np.ndarray:
    """Sample ordering: (n_streams, n) -> interleaved flat layout."""
    return np.asarray(streams).T.reshape(-1)


def deinterleave_streams(flat: np.ndarray, n_streams: int) -> np.ndarray:
    """Sample reordering: inverse of :func:`interleave_streams`."""
    flat = np.asarray(flat)
    return flat.reshape(-1, n_streams).T
