"""Channel and impairment models (substitute for the paper's RF testbed).

The paper evaluated on silicon driven by a real front end; we substitute
a synthetic 2x2 multipath channel with AWGN and carrier frequency
offset, which exercises the same receiver code paths (synchronisation,
CFO correction, channel estimation, SDM detection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def awgn(x: np.ndarray, snr_db: float, rng: np.random.Generator) -> np.ndarray:
    """Add complex white Gaussian noise at the given per-sample SNR."""
    x = np.asarray(x, dtype=np.complex128)
    power = np.mean(np.abs(x) ** 2)
    if power == 0:
        return x.copy()
    noise_power = power / (10 ** (snr_db / 10))
    noise = rng.normal(size=x.shape) + 1j * rng.normal(size=x.shape)
    noise *= np.sqrt(noise_power / 2)
    return x + noise


@dataclass
class MimoChannel:
    """A 2x2 (or NxM) frequency-selective block-fading channel.

    Taps follow an exponential power-delay profile with ``n_taps`` taps
    and decay ``tap_decay`` per tap; each entry of the MIMO matrix gets
    independent Rayleigh taps.  The channel is constant over a packet.
    """

    n_tx: int = 2
    n_rx: int = 2
    n_taps: int = 4
    tap_decay: float = 0.5
    seed: int = 1234
    taps: Optional[np.ndarray] = None  # (n_rx, n_tx, n_taps)

    def __post_init__(self) -> None:
        if self.taps is None:
            rng = np.random.default_rng(self.seed)
            profile = self.tap_decay ** np.arange(self.n_taps)
            profile = profile / np.sum(profile)
            taps = rng.normal(size=(self.n_rx, self.n_tx, self.n_taps)) + 1j * rng.normal(
                size=(self.n_rx, self.n_tx, self.n_taps)
            )
            taps *= np.sqrt(profile / 2)
            self.taps = taps

    @staticmethod
    def identity(n: int = 2) -> "MimoChannel":
        """An ideal channel (single unit tap, no cross-talk)."""
        taps = np.zeros((n, n, 1), dtype=np.complex128)
        for i in range(n):
            taps[i, i, 0] = 1.0
        return MimoChannel(n_tx=n, n_rx=n, n_taps=1, taps=taps)

    def apply(
        self,
        tx: np.ndarray,
        snr_db: Optional[float] = None,
        cfo_hz: float = 0.0,
        sample_rate_hz: float = 20e6,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Propagate per-stream waveforms (n_tx x samples) to n_rx outputs."""
        tx = np.atleast_2d(np.asarray(tx, dtype=np.complex128))
        if tx.shape[0] != self.n_tx:
            raise ValueError("expected %d transmit streams" % self.n_tx)
        n_samples = tx.shape[1]
        rx = np.zeros((self.n_rx, n_samples), dtype=np.complex128)
        for r in range(self.n_rx):
            for t in range(self.n_tx):
                acc = np.zeros(n_samples, dtype=np.complex128)
                for d in range(self.n_taps):
                    tap = self.taps[r, t, d]
                    if tap == 0:
                        continue
                    acc[d:] += tap * tx[t, : n_samples - d]
                rx[r] += acc
        if cfo_hz != 0.0:
            phase = np.exp(2j * np.pi * cfo_hz * np.arange(n_samples) / sample_rate_hz)
            rx = rx * phase[None, :]
        if snr_db is not None:
            if rng is None:
                rng = np.random.default_rng(self.seed + 1)
            rx = np.vstack([awgn(row, snr_db, rng) for row in rx])
        return rx

    def frequency_response(self, n_fft: int = 64) -> np.ndarray:
        """Per-carrier channel matrices: (n_fft, n_rx, n_tx)."""
        h = np.zeros((n_fft, self.n_rx, self.n_tx), dtype=np.complex128)
        for r in range(self.n_rx):
            for t in range(self.n_tx):
                h[:, r, t] = np.fft.fft(self.taps[r, t], n_fft)
        return h
