"""End-to-end reference 2x2 MIMO-OFDM modem (golden transmitter/receiver).

This is the floating-point functional reference of the full inner modem
the paper maps onto the processor.  It strings together the golden
kernel models in the exact order of Table 2:

Transmit: QAM64 map -> carrier map (+pilots) -> IFFT -> CP -> preamble.

Receive (preamble phase):  acorr packet detect -> coarse CFO (fshift
compensation) -> xcorr timing -> fine CFO -> FFT of the HT-LTFs ->
remove zero carriers -> channel estimation -> equalizer coefficient
calculation.

Receive (data phase): fshift -> CP removal -> FFT -> data shuffle ->
pilot tracking -> comp -> SDM detection -> QAM64 demod.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.phy import mimo, ofdm, preamble
from repro.phy.channel import MimoChannel
from repro.phy.freq import cfo_compensate
from repro.phy.params import PARAMS_20MHZ_2X2, OfdmParams
from repro.phy.qam import qam64_demodulate, qam64_modulate


@dataclass
class TxPacket:
    """A transmitted packet: waveforms plus everything needed to check RX."""

    waveform: np.ndarray  # (n_streams, n_samples)
    bits: np.ndarray
    n_symbols: int
    preamble_samples: int


def transmit(
    bits: np.ndarray, params: OfdmParams = PARAMS_20MHZ_2X2
) -> TxPacket:
    """Build the per-stream packet waveform for *bits*."""
    bits = np.asarray(bits, dtype=np.int64)
    bits_per_stream_symbol = params.n_data_carriers * params.bits_per_qam_symbol
    per_symbol = bits_per_stream_symbol * params.n_streams
    if len(bits) % per_symbol != 0:
        raise ValueError("bit count must be a multiple of %d" % per_symbol)
    n_symbols = len(bits) // per_symbol
    pre = preamble.mimo_preamble(params.n_fft, params.n_streams)
    streams: List[List[np.ndarray]] = [[] for _ in range(params.n_streams)]
    cursor = 0
    for s in range(n_symbols):
        for stream in range(params.n_streams):
            chunk = bits[cursor : cursor + bits_per_stream_symbol]
            cursor += bits_per_stream_symbol
            symbols = qam64_modulate(chunk)
            grid = ofdm.map_carriers(symbols, params, symbol_index=s)
            time = np.fft.ifft(grid)
            streams[stream].append(ofdm.add_cp(time, params.n_cp))
    waves = []
    for stream in range(params.n_streams):
        payload = np.concatenate(streams[stream]) if streams[stream] else np.zeros(0)
        waves.append(np.concatenate([pre[stream], payload]))
    return TxPacket(
        waveform=np.vstack(waves),
        bits=bits,
        n_symbols=n_symbols,
        preamble_samples=pre.shape[1],
    )


#: Samples the symbol timing is backed off into the cyclic prefix.  The
#: leading-edge xcorr estimate can land anywhere between the
#: 8-sample-early CSD image of stream 1 and the first significant
#: multipath tap.  A *late* FFT window clips samples of the next symbol
#: — a linear, ISI-corrupted shift that floors 64-QAM BER near 10%
#: regardless of SNR (the defect behind the old 7% high-SNR floor).
#: Backing off 3 samples keeps the window inside the ISI-free CP span
#: for the whole jitter range; the resulting per-carrier phase ramp is
#: common to training and data windows, so the channel estimate absorbs
#: it exactly.
TIMING_BACKOFF = 3


@dataclass
class RxResult:
    """Receiver outputs and intermediate estimates."""

    bits: np.ndarray
    cfo_hz: float
    detect_index: int
    channel: np.ndarray  # (n_fft, n_rx, n_tx)
    equalizer: np.ndarray  # (n_fft, n_tx, n_rx)
    evm: float
    noise_var: float = 0.0
    ltf1_start: int = 0
    flagged_carriers: Tuple[int, ...] = ()


def receive(
    rx: np.ndarray,
    n_symbols: int,
    params: OfdmParams = PARAMS_20MHZ_2X2,
    noise_var: Optional[float] = None,
) -> RxResult:
    """Run the full receive chain on (n_rx, n_samples) waveforms.

    *noise_var* is the carrier-level noise variance handed to the MMSE
    equaliser; ``None`` (the default) estimates it from the legacy LTF
    repetition, ``0.0`` forces pure ZF.
    """
    rx = np.atleast_2d(np.asarray(rx, dtype=np.complex128))
    fs = params.sample_rate_hz
    n_fft, n_cp = params.n_fft, params.n_cp

    # --- preamble phase -------------------------------------------------
    # Packet detect on antenna 0 (acorr kernel).
    detect = preamble.detect_packet(rx[0], lag=16, window=32)
    if detect < 0:
        detect = 0
    # Coarse CFO from the STF: plateau-averaged lag-16 autocorrelation,
    # combined over all receive antennas.
    coarse = preamble.estimate_cfo_multi(
        rx[:, detect : detect + 160], lag=16, window=32, sample_rate_hz=fs
    )
    comp = np.vstack([cfo_compensate(row, coarse, fs) for row in rx])
    # Timing from the LTF cross-correlation (xcorr kernel).  The
    # reference is the full double long symbol (128 samples), whose
    # correlation peak is unique at the first legacy long symbol (a
    # single-symbol reference would also peak on the HT-LTFs).  The
    # |xcorr|^2 metric is combined over antennas and the strongest peak
    # is then backed off into the CP (see TIMING_BACKOFF).
    sym = preamble.ltf_symbol(n_fft)
    ref = np.concatenate([sym, sym])
    t_peak = preamble.timing_from_xcorr_multi(comp[:, detect : detect + 400], ref)
    ltf1_start = max(detect + t_peak - TIMING_BACKOFF, 0)
    # Fine CFO from the repetition of the two long symbols (lag 64),
    # again antenna-combined.  The backed-off window stays inside the
    # 64-periodic span of the legacy LTF (CP included), so the lag-64
    # correlation remains unbiased.
    fine = preamble.estimate_cfo_multi(
        comp[:, ltf1_start : ltf1_start + 128], lag=64, window=64, sample_rate_hz=fs
    )
    comp = np.vstack([cfo_compensate(row, fine, fs) for row in comp])
    cfo_total = coarse + fine

    # Noise estimate from the two identical legacy long symbols; scaled
    # to carrier level for the MMSE equaliser (unit-energy QAM symbols
    # and the receiver's 1/N FFT convention give a factor of n_fft).
    noise_time = preamble.estimate_noise_variance(comp, ltf1_start, n_fft)
    if noise_var is None:
        noise_var = noise_time * n_fft

    # HT-LTFs follow the two legacy long symbols: each 80 samples (16 CP).
    ht_start = ltf1_start + 2 * n_fft
    ltf_fd = np.zeros((2, rx.shape[0], n_fft), dtype=np.complex128)
    for sym in range(2):
        start = ht_start + sym * (n_fft + 16) + 16
        for r in range(rx.shape[0]):
            ltf_fd[sym, r] = np.fft.fft(comp[r][start : start + n_fft]) / n_fft

    # Channel estimation and equaliser coefficients.
    ltf_ref = preamble.ht_ltf_sequence(n_fft).astype(np.complex128) / n_fft
    carriers = params.used_carriers
    h = mimo.estimate_channel(ltf_fd, ltf_ref, carriers)
    w, eq_info = mimo.equalizer_coefficients(
        h, carriers, noise_var=noise_var, return_info=True
    )

    # --- data phase -------------------------------------------------------
    data_start = ht_start + 2 * (n_fft + 16)
    bits_out: List[np.ndarray] = []
    evm_acc, evm_n = 0.0, 0
    for s in range(n_symbols):
        sym_start = data_start + s * params.symbol_samples
        y = np.zeros((rx.shape[0], n_fft), dtype=np.complex128)
        for r in range(rx.shape[0]):
            time = comp[r][sym_start + n_cp : sym_start + n_cp + n_fft]
            y[r] = np.fft.fft(time) / n_fft
        x_hat = mimo.sdm_detect(y, w, carriers)
        for stream in range(params.n_streams):
            grid = x_hat[stream] * n_fft  # undo the 1/N FFT scaling
            phasor = ofdm.track_pilots(grid, params, symbol_index=s)
            grid = ofdm.apply_tracking(grid, phasor)
            data = ofdm.demap_carriers(grid, params)
            bits_out.append(qam64_demodulate(data))
            # EVM against the nearest constellation point.
            decided = qam64_modulate(bits_out[-1])
            evm_acc += float(np.sum(np.abs(data - decided) ** 2))
            evm_n += len(data)
    bits_flat = np.concatenate(bits_out) if bits_out else np.zeros(0, dtype=np.int64)
    evm = np.sqrt(evm_acc / max(evm_n, 1))
    return RxResult(
        bits=bits_flat,
        cfo_hz=cfo_total,
        detect_index=detect,
        channel=h,
        equalizer=w,
        evm=evm,
        noise_var=float(noise_var),
        ltf1_start=ltf1_start,
        flagged_carriers=tuple(eq_info["ill_conditioned"]),
    )


def run_link(
    n_symbols: int = 2,
    snr_db: Optional[float] = 35.0,
    cfo_hz: float = 0.0,
    channel: Optional[MimoChannel] = None,
    params: OfdmParams = PARAMS_20MHZ_2X2,
    seed: int = 7,
) -> Tuple[TxPacket, RxResult, float]:
    """Transmit random bits through a channel and receive; returns BER."""
    rng = np.random.default_rng(seed)
    per_symbol = params.n_data_carriers * params.bits_per_qam_symbol * params.n_streams
    bits = rng.integers(0, 2, size=n_symbols * per_symbol)
    tx = transmit(bits, params)
    chan = channel if channel is not None else MimoChannel.identity(params.n_streams)
    rx_wave = chan.apply(
        tx.waveform, snr_db=snr_db, cfo_hz=cfo_hz, sample_rate_hz=params.sample_rate_hz
    )
    # The receiver keeps sampling past the packet; give it tail margin so
    # late timing estimates never run off the buffer.
    rx_wave = np.pad(rx_wave, ((0, 0), (0, 2 * params.symbol_samples)))
    result = receive(rx_wave, n_symbols, params, noise_var=None)
    n = min(len(result.bits), len(bits))
    ber = float(np.mean(result.bits[:n] != bits[:n])) if n else 1.0
    return tx, result, ber
