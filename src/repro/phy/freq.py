"""Frequency shifting (the ``fshift`` kernel) and CFO compensation.

``fshift`` multiplies the sample stream by a rotating phasor — the
digital frequency translation used both for low-IF down-conversion and
for carrier-frequency-offset correction.  The hardware kernel works on
packed complex pairs with a recursively updated Q15 phasor; the golden
model mirrors that (including the periodic re-normalisation that keeps
the recursive phasor from decaying).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.phy.fixed import cmul_q15, q15


def fshift(x: np.ndarray, freq_hz: float, sample_rate_hz: float) -> np.ndarray:
    """Shift *x* in frequency by *freq_hz* (floating-point model)."""
    x = np.asarray(x, dtype=np.complex128)
    n = np.arange(len(x))
    return x * np.exp(2j * np.pi * freq_hz * n / sample_rate_hz)


def cfo_compensate(x: np.ndarray, cfo_hz: float, sample_rate_hz: float) -> np.ndarray:
    """Undo a carrier frequency offset estimated at *cfo_hz*."""
    return fshift(x, -cfo_hz, sample_rate_hz)


def fshift_q15(
    re: np.ndarray, im: np.ndarray, freq_hz: float, sample_rate_hz: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Fixed-point frequency shift with the kernel's exact arithmetic.

    The phasor advances by a constant per-sample rotation implemented as
    a recursive Q15 complex multiply, exactly as the CGA kernel does it
    (one ``cmul`` per sample; the phasor is re-seeded every 64 samples
    from a table to bound the amplitude decay of repeated Q15
    truncation).
    """
    re = np.asarray(re, dtype=np.int16)
    im = np.asarray(im, dtype=np.int16)
    n = len(re)
    theta = 2 * np.pi * freq_hz / sample_rate_hz
    step_r = q15(np.cos(theta))
    step_i = q15(np.sin(theta))
    out_re = np.zeros(n, dtype=np.int16)
    out_im = np.zeros(n, dtype=np.int16)
    ph_r, ph_i = np.int16(q15(1.0)), np.int16(0)
    for k in range(n):
        if k % 64 == 0:
            # Re-seed from the exact phasor to bound truncation decay.
            ph_r = np.int16(q15(np.cos(theta * k)))
            ph_i = np.int16(q15(np.sin(theta * k)))
        o_r, o_i = cmul_q15(re[k], im[k], ph_r, ph_i)
        out_re[k], out_im[k] = o_r, o_i
        ph_r, ph_i = cmul_q15(ph_r, ph_i, step_r, step_i)
    return out_re, out_im
