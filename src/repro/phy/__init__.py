"""Fixed-point 20 MHz 2x2 MIMO-OFDM baseband reference (the paper's workload).

This package is the *golden model* for the kernels of Table 2: every
signal-processing step of the inner modem is implemented twice in the
repository — once here in NumPy (bit-accurate Q15 fixed point where the
mapped kernels must match, floating point for channel modelling), and
once as compiled CGA/VLIW kernels in :mod:`repro.kernels`.

Modules
-------
``params``     OFDM numerology (64-pt FFT, 52+4 carriers, 16-sample CP,
               4 us symbols at 20 Msps, 2 spatial streams).
``fixed``      Q15 quantisation and the packed complex-pair layout used
               by the 4x16 SIMD datapath.
``fft``        Fixed-point radix-2 64-point (I)FFT with block scaling.
``qam``        Gray-mapped QAM-64 modulation and hard demapping.
``preamble``   STF/LTF generation, autocorrelation packet detection,
               cross-correlation timing, CFO estimation.
``freq``       Frequency shifting (digital down-conversion) and CFO
               compensation — the ``fshift`` kernels.
``channel``    2x2 multipath + AWGN + CFO impairment models.
``mimo``       Per-carrier MIMO channel estimation, ZF/MMSE equaliser
               coefficient calculation and SDM detection.
``ofdm``       Symbol (de)framing: CP handling, carrier (de)mapping,
               pilot phase tracking.
``modem_ref``  End-to-end reference transmitter and receiver.
``scenario``   Named impairment presets (multipath/CFO/IQ/quantisation)
               shared by the golden modem, the runtime workload
               generator and the fabric stream mixer.
"""

from repro.phy.params import OfdmParams, PARAMS_20MHZ_2X2
from repro.phy.fixed import (
    q15,
    from_q15,
    quantize_complex,
    pack_complex_pair,
    unpack_complex_pair,
)
from repro.phy.fft import fft_fixed, ifft_fixed, fft_float
from repro.phy.qam import qam64_modulate, qam64_demodulate, qam64_constellation
from repro.phy.preamble import (
    short_training_field,
    long_training_field,
    autocorrelate,
    cross_correlate,
    detect_packet,
    estimate_cfo,
)
from repro.phy.freq import fshift, cfo_compensate
from repro.phy.channel import MimoChannel, awgn
from repro.phy.mimo import (
    IllConditionedChannelError,
    estimate_channel,
    equalizer_coefficients,
    sdm_detect,
)
from repro.phy.ofdm import map_carriers, demap_carriers, add_cp, remove_cp, track_pilots
from repro.phy.scenario import (
    SCENARIOS,
    Scenario,
    apply_scenario,
    get_scenario,
    list_scenarios,
    scenario_link,
)

__all__ = [
    "OfdmParams",
    "PARAMS_20MHZ_2X2",
    "q15",
    "from_q15",
    "quantize_complex",
    "pack_complex_pair",
    "unpack_complex_pair",
    "fft_fixed",
    "ifft_fixed",
    "fft_float",
    "qam64_modulate",
    "qam64_demodulate",
    "qam64_constellation",
    "short_training_field",
    "long_training_field",
    "autocorrelate",
    "cross_correlate",
    "detect_packet",
    "estimate_cfo",
    "fshift",
    "cfo_compensate",
    "MimoChannel",
    "awgn",
    "IllConditionedChannelError",
    "estimate_channel",
    "equalizer_coefficients",
    "sdm_detect",
    "SCENARIOS",
    "Scenario",
    "apply_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_link",
    "map_carriers",
    "demap_carriers",
    "add_cp",
    "remove_cp",
    "track_pilots",
]
