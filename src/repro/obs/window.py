"""Rolling-window aggregation: bounded ring-buffer time series.

Lifetime averages hide everything an operator cares about — a fabric
that served 10k packets an hour ago and nothing since still reports a
healthy-looking packets/s.  These windows keep the last ``horizon_s``
seconds of behaviour in bounded deques (ring buffers), so a live
``/metrics`` scrape reports *recent* throughput, queue depth and
latency percentiles.

Every class takes an injectable ``clock`` (defaulting to
:func:`time.monotonic`) so window eviction is unit-testable with a fake
clock, and takes an internal lock so a scrape from the
:class:`~repro.obs.server.ObsServer` thread never races the fabric's
pump thread mid-append.

:func:`percentile` — nearest-rank, every reported number an
actually-observed sample — is canonical here (stdlib-only leaf module);
``repro.fabric.report`` re-exports it for compatibility.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in 0..100) of *samples*.

    Nearest-rank keeps every reported number an actually-observed
    latency (no interpolation between samples), which is what you want
    when the tail is the story.  Raises on an empty sample list.
    """
    if not samples:
        raise ValueError("percentile of an empty sample list")
    if not 0 <= q <= 100:
        raise ValueError("percentile q=%r outside 0..100" % (q,))
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def window_summary(samples: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 plus count/mean/max; all-zeros for an empty window.

    The zero-filled empty shape (rather than an exception) is the
    contract scrape endpoints need: an idle fabric must still render.
    """
    if not samples:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "count": len(samples),
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
        "mean": float(sum(samples) / len(samples)),
        "max": float(max(samples)),
    }


class WindowedCounter:
    """Event counts over a sliding time horizon (bounded ring buffer).

    ``add(n)`` appends ``(now, n)``; entries older than ``horizon_s``
    are evicted on every access, so ``total()`` and ``rate()`` describe
    only the last window.  ``max_entries`` bounds memory under event
    storms (oldest entries fold away first — the window is a *view*,
    not an archive).
    """

    def __init__(
        self,
        horizon_s: float = 60.0,
        clock=time.monotonic,
        max_entries: int = 4096,
    ) -> None:
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive, got %r" % (horizon_s,))
        self.horizon_s = float(horizon_s)
        self._clock = clock
        self._entries: Deque[Tuple[float, float]] = deque(maxlen=max_entries)
        self._born = float(clock())
        self._lock = threading.Lock()

    def _evict(self, now: float) -> None:
        floor = now - self.horizon_s
        entries = self._entries
        while entries and entries[0][0] < floor:
            entries.popleft()

    def add(self, n: float = 1.0) -> None:
        now = float(self._clock())
        with self._lock:
            self._evict(now)
            self._entries.append((now, float(n)))

    def total(self) -> float:
        """Sum of events recorded within the current window."""
        now = float(self._clock())
        with self._lock:
            self._evict(now)
            return float(sum(n for _, n in self._entries))

    def rate(self) -> float:
        """Events per second over the window.

        Before a full horizon has elapsed the divisor is the counter's
        age, so a stream that just started is not under-reported.
        """
        now = float(self._clock())
        with self._lock:
            self._evict(now)
            span = min(self.horizon_s, now - self._born)
            if span <= 0:
                return 0.0
            return float(sum(n for _, n in self._entries)) / span


class WindowedSeries:
    """Gauge/latency samples over a sliding time horizon.

    ``observe(v)`` appends ``(now, v)``; ``summary()`` reports
    nearest-rank percentiles (via :func:`percentile`) over what is left
    after eviction.  ``max_samples`` bounds memory; when it trips, the
    oldest samples fall off first, which only ever *narrows* the window.
    """

    def __init__(
        self,
        horizon_s: float = 60.0,
        clock=time.monotonic,
        max_samples: int = 4096,
    ) -> None:
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive, got %r" % (horizon_s,))
        self.horizon_s = float(horizon_s)
        self._clock = clock
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=max_samples)
        self._lock = threading.Lock()

    def _evict(self, now: float) -> None:
        floor = now - self.horizon_s
        samples = self._samples
        while samples and samples[0][0] < floor:
            samples.popleft()

    def observe(self, value: float) -> None:
        now = float(self._clock())
        with self._lock:
            self._evict(now)
            self._samples.append((now, float(value)))

    def values(self) -> List[float]:
        """The in-window sample values, oldest first."""
        now = float(self._clock())
        with self._lock:
            self._evict(now)
            return [v for _, v in self._samples]

    def summary(self) -> Dict[str, float]:
        """:func:`window_summary` over the in-window samples."""
        return window_summary(self.values())


#: Fabric events the rolling window counts.  The first block mirrors
#: fabric lifetime counters; the ``ingest_*`` kinds are recorded by an
#: attached :class:`~repro.ingest.server.IngestServer` (datagrams seen,
#: packets reassembled, packets shed at submission).
WINDOW_COUNTS = (
    "submitted",
    "completed",
    "dropped",
    "rejected",
    "requeued",
    "task_errors",
    "worker_crashes",
    "watchdog_flags",
    "ingest_datagrams",
    "ingest_packets",
    "ingest_shed",
)


class MetricsWindow:
    """The fabric-facing aggregate: one rolling view of serving health.

    Owns one :class:`WindowedCounter` per event kind in
    :data:`WINDOW_COUNTS`, a latency :class:`WindowedSeries`, and gauge
    series for queue depth / in-flight (sampled each pump round).
    ``snapshot()`` is what ``Fabric.report()`` embeds under ``window``
    and what the ``repro_fabric_window_*`` gauges render.
    """

    def __init__(self, horizon_s: float = 60.0, clock=time.monotonic) -> None:
        self.horizon_s = float(horizon_s)
        self._counts = {
            name: WindowedCounter(horizon_s, clock) for name in WINDOW_COUNTS
        }
        self._latency = WindowedSeries(horizon_s, clock)
        self._depth = WindowedSeries(horizon_s, clock)
        self._inflight = WindowedSeries(horizon_s, clock)

    def count(self, name: str, n: float = 1.0) -> None:
        counter = self._counts.get(name)
        if counter is not None:
            counter.add(n)

    def observe_latency(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def observe_depth(self, outstanding: int, inflight: int) -> None:
        self._depth.observe(float(outstanding))
        self._inflight.observe(float(inflight))

    def snapshot(self) -> dict:
        counts = {name: counter.total() for name, counter in self._counts.items()}
        return {
            "window_s": self.horizon_s,
            "counts": {name: int(value) for name, value in counts.items()},
            "throughput_pps": round(self._counts["completed"].rate(), 3),
            "offered_pps": round(self._counts["submitted"].rate(), 3),
            "shed": int(counts["dropped"] + counts["rejected"]),
            "latency_s": {
                k: (round(v, 6) if isinstance(v, float) else v)
                for k, v in self._latency.summary().items()
            },
            "queue_depth": _gauge_view(self._depth),
            "inflight": _gauge_view(self._inflight),
        }


def _gauge_view(series: WindowedSeries) -> Dict[str, float]:
    summary = series.summary()
    return {
        "mean": round(summary["mean"], 4),
        "max": summary["max"],
        "samples": summary["count"],
    }


class EventLog:
    """Bounded ring of recent lifecycle events (behind ``/events.json``).

    The fabric appends crash / respawn / shed / watchdog events here
    unconditionally (unlike tracer instants, which are opt-in), so a
    live operator can always ask "what just happened" without having
    armed a tracer before the incident.
    """

    def __init__(self, capacity: int = 256, clock=time.time) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % capacity)
        self._events: Deque[dict] = deque(maxlen=capacity)
        self._clock = clock
        self._seq = 0
        self._lock = threading.Lock()

    def append(self, event: str, args: Optional[dict] = None) -> None:
        with self._lock:
            self._seq += 1
            self._events.append(
                {
                    "seq": self._seq,
                    "ts": round(float(self._clock()), 6),
                    "event": event,
                    "args": dict(args or {}),
                }
            )

    def snapshot(self) -> List[dict]:
        """The buffered events, oldest first (shallow copies)."""
        with self._lock:
            return [dict(e) for e in self._events]

    @property
    def total(self) -> int:
        """Events ever appended (including ones the ring evicted)."""
        return self._seq
