"""Attach mode: serve somebody else's report file as a live endpoint.

``python -m repro.obs --report PATH`` watches a report JSON file — a
``Fabric.report()`` dump, or any dict with a ``counters`` mapping —
and serves it through the same four endpoints an in-process
:class:`~repro.obs.server.ObsServer` exposes.  The file is re-read on
every scrape, so a bench (or a fabric on another host sharing a
filesystem) that rewrites its report periodically becomes scrapeable
without embedding an HTTP server.

``/healthz`` in attach mode reports on the *file*: ``pass`` while its
mtime is fresher than ``--stale-after`` seconds, ``fail`` once the
writer has gone quiet or the file is unreadable.

Run:  PYTHONPATH=src python -m repro.obs --report out/fabric_report.json \\
          [--host 127.0.0.1] [--port 9100] [--stale-after 30]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.fabric.report import COMPATIBLE_REPORT_SCHEMAS, fabric_prometheus_text
from repro.obs.server import ObsServer


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _metrics_for(report: dict) -> str:
    """Render whatever report dict the file holds as exposition text."""
    if report.get("schema") in COMPATIBLE_REPORT_SCHEMAS:
        return fabric_prometheus_text(report)
    # Generic fallback: flat numeric counters under a neutral prefix.
    from repro.obs.prom import prom_header, prom_sample

    lines = []
    for name, value in sorted(report.get("counters", {}).items()):
        if isinstance(value, (int, float)):
            lines.extend(prom_header("repro_obs_" + name, "untyped", "Attached counter."))
            lines.append(prom_sample("repro_obs_" + name, value))
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--report", required=True, metavar="PATH",
                        help="report JSON file to serve (re-read per scrape)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9100,
                        help="listen port (default 9100; 0 = ephemeral)")
    parser.add_argument("--stale-after", type=float, default=30.0, metavar="S",
                        help="/healthz fails once the file is older than S seconds")
    args = parser.parse_args(argv)

    def report() -> dict:
        return _load(args.report)

    def metrics() -> str:
        return _metrics_for(report())

    def health() -> dict:
        try:
            age = time.time() - os.path.getmtime(args.report)
            status = "pass" if age <= args.stale_after else "fail"
            detail = {"status": status, "observedValue": round(age, 3),
                      "observedUnit": "s_since_write"}
        except OSError as exc:
            status = "fail"
            detail = {"status": status, "output": str(exc)}
        return {
            "status": status,
            "description": "attached report file %s" % args.report,
            "checks": {"report:file": [detail]},
        }

    def events() -> list:
        return report().get("events", [])

    server = ObsServer(
        metrics=metrics, health=health, report=report, events=events,
        host=args.host, port=args.port,
    ).start()
    print("serving %s at %s  (/metrics /healthz /report.json /events.json)"
          % (args.report, server.url))
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
