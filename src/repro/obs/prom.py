"""Prometheus exposition building blocks (shared, escaping-correct).

Both Prometheus renderers in this repo (``repro.trace.export`` for
simulator activity counters, ``repro.fabric.report`` for the serving
layer) historically interpolated label values straight into
``name{label="value"}`` — a value containing ``"`` or ``\\`` produced
an unparseable page.  This module is the one place label values and
``# HELP`` text are escaped per the exposition-format spec
(``\\`` → ``\\\\``, ``"`` → ``\\"``, newline → ``\\n``), and the one
place ``# HELP``/``# TYPE`` family headers are built.

:func:`lint_exposition` is the self-check CI's ``obs-smoke`` job runs
over every scraped page: family headers present, metric names legal,
label blocks parse, sample values numeric, ``quantile`` labels
fractional.  It is deliberately strict about exactly the properties
``promtool check metrics`` cares about, without needing promtool.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

#: Legal metric / label name per the Prometheus data model.
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

#: One sample line: name, optional {labels}, value (exponents allowed).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)

#: One label pair inside a label block, with escape-aware value capture.
_LABEL_RE = re.compile(r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def escape_label_value(value: object) -> str:
    """Escape one label value for ``name{label="..."}`` interpolation."""
    text = str(value)
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help_text(text: str) -> str:
    """Escape free text for a ``# HELP`` line (backslash and newline)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def prom_sample(name: str, value, labels: Optional[Dict[str, object]] = None) -> str:
    """Render one sample line, labels sorted and escaping-correct."""
    if labels:
        inner = ",".join(
            '%s="%s"' % (k, escape_label_value(v)) for k, v in sorted(labels.items())
        )
        return "%s{%s} %s" % (name, inner, value)
    return "%s %s" % (name, value)


def prom_header(name: str, mtype: str, help_text: str) -> List[str]:
    """The ``# HELP`` + ``# TYPE`` pair that opens one metric family."""
    return [
        "# HELP %s %s" % (name, escape_help_text(help_text)),
        "# TYPE %s %s" % (name, mtype),
    ]


def _parse_labels(block: str) -> Optional[List[Tuple[str, str]]]:
    """Parse a label block; None when it does not fully parse."""
    out: List[Tuple[str, str]] = []
    pos = 0
    text = block.strip()
    if not text:
        return out
    while pos < len(text):
        match = _LABEL_RE.match(text, pos)
        if match is None:
            return None
        out.append((match.group("name"), match.group("value")))
        pos = match.end()
        if pos < len(text):
            if text[pos] != ",":
                return None
            pos += 1
    return out


def lint_exposition(text: str) -> List[str]:
    """Lint one exposition page; returns a list of problems (empty = ok).

    Checks the properties scrapers actually depend on:

    - every sample's family has both a ``# TYPE`` and a ``# HELP`` line
      *before* its first sample (summary ``_sum``/``_count`` suffixes
      resolve to their base family);
    - metric and label names are legal, label blocks parse (so the
      escaping is correct), sample values are finite-or-(+/-Inf/NaN)
      floats;
    - ``quantile`` label values are fractional (``0.95``, never ``95``);
    - ``# TYPE`` values are legal metric types;
    - the page ends with a newline.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    helped: Dict[str, str] = {}
    if text and not text.endswith("\n"):
        problems.append("page does not end with a newline")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "untyped",
            ):
                problems.append("line %d: malformed TYPE line: %r" % (lineno, line))
                continue
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                problems.append("line %d: malformed HELP line: %r" % (lineno, line))
                continue
            helped[parts[2]] = parts[3] if len(parts) == 4 else ""
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append("line %d: unparseable sample: %r" % (lineno, line))
            continue
        name = match.group("name")
        family = name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
        if not _NAME_RE.match(name):
            problems.append("line %d: illegal metric name %r" % (lineno, name))
        if family not in typed:
            problems.append("line %d: no # TYPE before sample of %r" % (lineno, name))
        if family not in helped:
            problems.append("line %d: no # HELP before sample of %r" % (lineno, name))
        try:
            float(match.group("value"))
        except ValueError:
            problems.append(
                "line %d: non-numeric sample value %r" % (lineno, match.group("value"))
            )
        block = match.group("labels")
        if block is None:
            continue
        labels = _parse_labels(block)
        if labels is None:
            problems.append("line %d: unparseable label block {%s}" % (lineno, block))
            continue
        for label_name, label_value in labels:
            if not _LABEL_NAME_RE.match(label_name):
                problems.append("line %d: illegal label name %r" % (lineno, label_name))
            if label_name == "quantile":
                try:
                    q = float(label_value)
                except ValueError:
                    q = math.nan
                if not 0.0 <= q <= 1.0:
                    problems.append(
                        "line %d: quantile label %r is not fractional (0..1)"
                        % (lineno, label_value)
                    )
    return problems
