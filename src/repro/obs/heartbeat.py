"""Worker heartbeats and the watchdog that watches them.

A fabric worker that is *busy* is healthy; a worker that is *stuck*
(deadlocked, SIGSTOPped, swapping itself to death) looks exactly the
same from the parent's pump loop — no results, no EOF, live sentinel.
Heartbeats break the tie: each worker runs a small daemon thread that
periodically sends :func:`heartbeat_payload` — ``(task_seq,
host_cycles, rss_bytes, monotonic_ts)`` plus its cumulative stall-cause
breakdown — up the existing result pipe, so liveness rides the same
multiplexed channel as results and needs no new file descriptors.

The parent-side :class:`Watchdog` tracks the last-seen beat per slot:

- ``verdict()`` is the ``/healthz`` policy — a slot is ``fail`` once it
  has been silent for ``unhealthy_intervals`` (default 2) heartbeat
  intervals;
- ``check()`` is the escalation policy — after ``miss_intervals``
  (default 5) silent intervals the slot is *flagged* (once per
  incident), and with ``escalate=True`` the watchdog SIGKILLs the pid,
  deliberately converting "stuck" into "dead" so the fabric's existing
  crash-recovery path (salvage → requeue → respawn) takes over.  The
  watchdog never touches queues or results itself.
"""

from __future__ import annotations

import os
import resource
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Default seconds between worker heartbeats.
HEARTBEAT_INTERVAL_S = 1.0


def rss_bytes() -> int:
    """This process's resident set size in bytes (0 if unreadable).

    Reads ``/proc/self/statm`` on Linux and falls back to
    ``resource.getrusage`` elsewhere — never raises, because heartbeat
    emission must not be able to kill a worker.
    """
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, ValueError, IndexError):
        pass
    try:
        # ru_maxrss is kilobytes on Linux (peak, not current — close enough
        # for a fallback path).
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except (OSError, ValueError):
        return 0


def heartbeat_payload(
    task_seq: int,
    host_cycles: int = 0,
    stall_causes: Optional[Dict[str, int]] = None,
) -> dict:
    """Build one heartbeat payload (sent as ``(MSG_HEARTBEAT, slot, payload)``)."""
    return {
        "task_seq": int(task_seq),
        "host_cycles": int(host_cycles),
        "rss_bytes": rss_bytes(),
        "monotonic_ts": float(time.monotonic()),
        "stall_causes": dict(stall_causes or {}),
    }


@dataclass
class WatchdogEvent:
    """One watchdog decision: a slot flagged stuck (and maybe killed)."""

    slot: int
    pid: Optional[int]
    age_s: float
    killed: bool


class Watchdog:
    """Flags worker slots whose heartbeats stopped; optionally kills them.

    Parameters
    ----------
    interval_s:
        The heartbeat period workers were configured with.
    miss_intervals:
        Silent intervals before a slot is flagged stuck (the escalation
        threshold).  Must be >= ``unhealthy_intervals``.
    unhealthy_intervals:
        Silent intervals before ``verdict()`` reports ``fail`` — the
        ``/healthz`` threshold (default 2, per the acceptance bar:
        a SIGSTOPped worker is unhealthy within two intervals).
    escalate:
        When True, a newly flagged slot's pid is killed (``SIGKILL``),
        handing the slot to the fabric's crash-recovery path.
    kill / clock:
        Injectable for tests (defaults: :func:`os.kill`,
        :func:`time.monotonic`).
    """

    def __init__(
        self,
        interval_s: float = HEARTBEAT_INTERVAL_S,
        miss_intervals: int = 5,
        unhealthy_intervals: int = 2,
        escalate: bool = False,
        kill=os.kill,
        clock=time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive, got %r" % (interval_s,))
        if miss_intervals < 1 or unhealthy_intervals < 1:
            raise ValueError("watchdog thresholds must be >= 1 interval")
        if miss_intervals < unhealthy_intervals:
            raise ValueError(
                "miss_intervals (%d) must be >= unhealthy_intervals (%d): a "
                "slot cannot be escalated while /healthz still calls it ok"
                % (miss_intervals, unhealthy_intervals)
            )
        self.interval_s = float(interval_s)
        self.miss_intervals = int(miss_intervals)
        self.unhealthy_intervals = int(unhealthy_intervals)
        self.escalate = bool(escalate)
        self._kill = kill
        self._clock = clock
        self._last_seen: Dict[int, float] = {}
        self._flagged: set = set()
        self.flags = 0
        self.kills = 0
        self.recoveries = 0

    # -- heartbeat bookkeeping -----------------------------------------

    def reset(self, slot: int, now: Optional[float] = None) -> None:
        """(Re)arm a slot at spawn time: spawn counts as the first beat."""
        self._last_seen[slot] = float(self._clock() if now is None else now)
        self._flagged.discard(slot)

    def beat(self, slot: int, now: Optional[float] = None) -> bool:
        """Record a heartbeat; True when the slot was flagged (recovered)."""
        self._last_seen[slot] = float(self._clock() if now is None else now)
        if slot in self._flagged:
            self._flagged.discard(slot)
            self.recoveries += 1
            return True
        return False

    def age(self, slot: int, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the slot's last beat (None if never armed)."""
        seen = self._last_seen.get(slot)
        if seen is None:
            return None
        return float(self._clock() if now is None else now) - seen

    # -- policies ------------------------------------------------------

    def verdict(self, slot: int, now: Optional[float] = None) -> str:
        """``/healthz`` verdict for one slot: ``pass``/``warn``/``fail``."""
        age = self.age(slot, now)
        if age is None:
            return "warn"  # never armed: a slot we know nothing about
        if age >= self.unhealthy_intervals * self.interval_s:
            return "fail"
        return "pass"

    def is_flagged(self, slot: int) -> bool:
        return slot in self._flagged

    def check(self, states, now: Optional[float] = None) -> List[WatchdogEvent]:
        """One watchdog round over dispatcher worker states.

        *states* is any sequence of objects with ``index``, ``alive``,
        ``stopping`` and ``pid`` attributes
        (:class:`repro.fabric.dispatcher.WorkerState` qualifies).  A
        slot is flagged at most once per silent incident; a later beat
        (or a respawn's :meth:`reset`) re-arms it.
        """
        now_t = float(self._clock() if now is None else now)
        events: List[WatchdogEvent] = []
        for state in states:
            slot = state.index
            if not state.alive or state.stopping or slot in self._flagged:
                continue
            age = self.age(slot, now_t)
            if age is None or age < self.miss_intervals * self.interval_s:
                continue
            self._flagged.add(slot)
            self.flags += 1
            killed = False
            if self.escalate and state.pid is not None:
                try:
                    self._kill(state.pid, signal.SIGKILL)
                    killed = True
                    self.kills += 1
                except (ProcessLookupError, PermissionError, OSError):
                    pass  # already gone: the sentinel path will notice
            events.append(WatchdogEvent(slot, state.pid, age, killed))
        return events
