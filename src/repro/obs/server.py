"""`ObsServer`: the stdlib threaded HTTP server behind the live plane.

One small :class:`~http.server.ThreadingHTTPServer` on a daemon thread,
four endpoints, zero dependencies:

=============== ===================================== ======================
endpoint        content                               media type
=============== ===================================== ======================
``/metrics``    Prometheus exposition text            ``text/plain; version=0.0.4``
``/healthz``    RFC-draft health JSON (per-worker     ``application/health+json``
                verdicts; HTTP 503 when ``fail``)
``/report.json``the live report dict                  ``application/json``
``/events.json``recent lifecycle events (ring)        ``application/json``
``/``           plain-text index of the above         ``text/plain``
=============== ===================================== ======================

The server knows nothing about fabrics: it is constructed from four
*provider* callables returning, respectively, exposition text, a health
dict, a report dict and an event list.  Providers run on scrape threads
while the owning process mutates its state, so each call is retried a
few times on ``RuntimeError`` (the "mutated during iteration" family) —
the single-writer structures behind the fabric providers make a retry
always succeed.  :func:`serve_fabric` wires a live
:class:`~repro.fabric.Fabric`'s methods up as providers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Optional

#: Prometheus exposition content type (text format 0.0.4).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: draft-inadarei-api-health-check media type.
HEALTH_CONTENT_TYPE = "application/health+json"

#: Health statuses that still answer HTTP 200.
_HEALTHY_STATUSES = ("pass", "warn", "ok")

_RETRIES = 5


class ObsServer:
    """Serve live telemetry for any set of provider callables."""

    def __init__(
        self,
        metrics: Optional[Callable[[], str]] = None,
        health: Optional[Callable[[], dict]] = None,
        report: Optional[Callable[[], dict]] = None,
        events: Optional[Callable[[], List[dict]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._providers = {
            "/metrics": metrics,
            "/healthz": health,
            "/report.json": report,
            "/events.json": events,
        }
        self._host = host
        self._requested_port = int(port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        #: Requests served per endpoint (operator curiosity + tests).
        self.scrapes = {path: 0 for path in self._providers}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ObsServer":
        if self._httpd is not None:
            raise RuntimeError("ObsServer already started")
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # quiet: scrapes are periodic
                pass

            def do_GET(self):
                server._handle(self)

        self._httpd = ThreadingHTTPServer((self._host, self._requested_port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("ObsServer not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self._host, self.port)

    # -- request handling ----------------------------------------------

    @staticmethod
    def _call(provider):
        """Invoke a provider, retrying the mutation-race RuntimeErrors."""
        for attempt in range(_RETRIES):
            try:
                return provider()
            except RuntimeError:
                if attempt == _RETRIES - 1:
                    raise
        raise AssertionError("unreachable")

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path == "/":
            available = sorted(
                p for p, provider in self._providers.items() if provider is not None
            )
            self._respond(
                request, 200, "text/plain; charset=utf-8",
                "repro.obs live telemetry\n" + "".join(p + "\n" for p in available),
            )
            return
        provider = self._providers.get(path)
        if provider is None:
            self._respond(request, 404, "text/plain; charset=utf-8", "not found\n")
            return
        try:
            payload = self._call(provider)
        except Exception as exc:  # a broken provider must not kill the server
            self._respond(
                request, 500, "text/plain; charset=utf-8",
                "provider error: %s: %s\n" % (type(exc).__name__, exc),
            )
            return
        self.scrapes[path] += 1
        if path == "/metrics":
            self._respond(request, 200, METRICS_CONTENT_TYPE, str(payload))
        elif path == "/healthz":
            status = 200 if payload.get("status") in _HEALTHY_STATUSES else 503
            self._respond(
                request, status, HEALTH_CONTENT_TYPE, json.dumps(payload, indent=1)
            )
        else:
            self._respond(
                request, 200, "application/json", json.dumps(payload, indent=1)
            )

    @staticmethod
    def _respond(request, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        try:
            request.send_response(status)
            request.send_header("Content-Type", content_type)
            request.send_header("Content-Length", str(len(data)))
            request.end_headers()
            request.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # scraper went away mid-response


def serve_fabric(fabric, host: str = "127.0.0.1", port: int = 0) -> ObsServer:
    """Start an :class:`ObsServer` over a live fabric's telemetry methods.

    Duck-typed on purpose (``metrics_text`` / ``health`` / ``report`` /
    ``events``) so this module stays stdlib-only and importable from
    ``repro.fabric`` without a cycle.
    """
    return ObsServer(
        metrics=fabric.metrics_text,
        health=fabric.health,
        report=fabric.report,
        events=fabric.events,
        host=host,
        port=port,
    ).start()
