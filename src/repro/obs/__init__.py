"""Live telemetry plane for running fabrics and runtimes.

Everything the repo could report before this package existed was
end-of-run: trace run-reports, ``Fabric.report()``, bench JSON.
``repro.obs`` turns those into *live* surfaces:

- :mod:`repro.obs.prom` — the one escaping-correct Prometheus
  exposition builder (``# HELP``/``# TYPE`` headers, label rendering)
  shared by ``repro.trace.export`` and ``repro.fabric.report``, plus a
  lint pass CI runs over every scraped page;
- :mod:`repro.obs.window` — bounded ring-buffer rolling windows
  (counters, gauge series, nearest-rank percentiles) so ``/metrics``
  reports last-60s behaviour instead of lifetime averages, and the
  :class:`EventLog` ring behind ``/events.json``;
- :mod:`repro.obs.heartbeat` — the worker heartbeat payload and the
  :class:`Watchdog` that flags (and can kill) workers that stop
  beating, escalating into the fabric's existing crash-recovery path;
- :mod:`repro.obs.server` — :class:`ObsServer`, a stdlib threaded HTTP
  server exposing ``/metrics``, ``/healthz``, ``/report.json`` and
  ``/events.json`` for any provider callables (:func:`serve_fabric`
  wires a live :class:`~repro.fabric.Fabric`);
- ``python -m repro.obs`` — attach mode: serve a report JSON file
  written by some other process as a scrapeable endpoint.

Dependency note: every module here except ``__main__`` is stdlib-only,
so ``repro.trace`` and ``repro.fabric`` can import the shared helpers
without cycles (``repro.obs`` is a leaf package like ``repro.trace``).
"""

from repro.obs.prom import (
    escape_help_text,
    escape_label_value,
    lint_exposition,
    prom_header,
    prom_sample,
)
from repro.obs.window import (
    EventLog,
    MetricsWindow,
    WindowedCounter,
    WindowedSeries,
    percentile,
    window_summary,
)
from repro.obs.heartbeat import (
    HEARTBEAT_INTERVAL_S,
    Watchdog,
    WatchdogEvent,
    heartbeat_payload,
    rss_bytes,
)
from repro.obs.server import ObsServer, serve_fabric

__all__ = [
    "EventLog",
    "HEARTBEAT_INTERVAL_S",
    "MetricsWindow",
    "ObsServer",
    "Watchdog",
    "WatchdogEvent",
    "WindowedCounter",
    "WindowedSeries",
    "escape_help_text",
    "escape_label_value",
    "heartbeat_payload",
    "lint_exposition",
    "percentile",
    "prom_header",
    "prom_sample",
    "rss_bytes",
    "serve_fabric",
    "window_summary",
]
