"""Opcode and instruction-group definitions mirroring Table 1 of the paper.

Every opcode belongs to exactly one *operation group*.  The group carries
the architectural metadata reported in Table 1:

* which functional units implement the group (``fu_range``),
* the operand word width in bits (``width``),
* the execution latency in cycles (``latency``).

The basic groups (arith, logic, shift, comp, pred, mul, branch, ld/st)
operate on the 32 least-significant bits of the 64-bit datapath.  Only
the SIMD groups operate on the full 64 bits, as four 16-bit lanes.  The
two hardwired dividers operate on the 24 LSBs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class OpGroup(enum.Enum):
    """Operation groups of Table 1."""

    ARITH = "arith"
    LOGIC = "logic"
    SHIFT = "shift"
    COMP = "comp"
    PRED = "pred"
    MUL = "mul"
    BRANCH = "branch"
    LDMEM = "ldmem"
    STMEM = "stmem"
    CONTROL = "control"
    SIMD1 = "simd1"
    SIMD2 = "simd2"
    DIV = "div"


@dataclass(frozen=True)
class GroupInfo:
    """Architectural metadata of an operation group (one row class of Table 1).

    Attributes
    ----------
    fu_range:
        Inclusive (low, high) range of CGA functional-unit indices that
        implement the group.  ``(0, 15)`` means every FU; ``(0, 0)``
        means only FU 0 (the branch unit); ``(0, 3)`` means the four
        load/store units, etc.
    width:
        Operand word width in bits.
    latency:
        Execution latency in cycles.  A value of 0 is used for pure
        control operations (``cga``, ``halt``) whose timing is defined
        by the core state machine rather than a datapath pipeline.
    """

    fu_range: Tuple[int, int]
    width: int
    latency: int


#: Table 1 metadata.  Load latency is the paper's 5 (the "/7" variant is
#: the L1 bank-conflict case, modelled dynamically by the scratchpad).
GROUP_INFO: Dict[OpGroup, GroupInfo] = {
    OpGroup.ARITH: GroupInfo((0, 15), 32, 1),
    OpGroup.LOGIC: GroupInfo((0, 15), 32, 1),
    OpGroup.SHIFT: GroupInfo((0, 15), 32, 1),
    OpGroup.COMP: GroupInfo((0, 15), 32, 1),
    OpGroup.PRED: GroupInfo((0, 15), 32, 1),
    OpGroup.MUL: GroupInfo((0, 15), 32, 2),
    OpGroup.BRANCH: GroupInfo((0, 0), 32, 2),
    OpGroup.LDMEM: GroupInfo((0, 3), 32, 5),
    OpGroup.STMEM: GroupInfo((0, 3), 32, 1),
    OpGroup.CONTROL: GroupInfo((0, 0), 0, 0),
    OpGroup.SIMD1: GroupInfo((0, 15), 64, 1),
    OpGroup.SIMD2: GroupInfo((0, 15), 64, 3),
    OpGroup.DIV: GroupInfo((0, 1), 24, 8),
}

#: Latency of the PC-relative branch forms (``br``/``brl``), which is one
#: cycle longer than the absolute forms per Table 1.
RELATIVE_BRANCH_LATENCY = 3

#: Longest execution latency any opcode can have (the divider's 8
#: cycles).  An in-flight result is therefore visible at most this many
#: cycles after issue; the engines use it to bound drain loops and size
#: commit rings.
MAX_OP_LATENCY = max(
    max(info.latency for info in GROUP_INFO.values()),
    RELATIVE_BRANCH_LATENCY,
)


class Opcode(enum.Enum):
    """Every instruction of Table 1.

    The enum value is the assembly mnemonic.
    """

    # Arith
    ADD = "add"
    ADD_U = "add_u"
    SUB = "sub"
    SUB_U = "sub_u"
    # Logic
    OR = "or"
    NOR = "nor"
    AND = "and"
    NAND = "nand"
    XOR = "xor"
    XNOR = "xnor"
    # Shift
    LSL = "lsl"
    LSR = "lsr"
    ASR = "asr"
    # Comp (results are 0/1 written to a data register)
    EQ = "eq"
    NE = "ne"
    GT = "gt"
    GT_U = "gt_u"
    LT = "lt"
    LT_U = "lt_u"
    GE = "ge"
    GE_U = "ge_u"
    LE = "le"
    LE_U = "le_u"
    # Pred (results written to the 1-bit predicate register file)
    PRED_CLEAR = "pred_clear"
    PRED_SET = "pred_set"
    PRED_EQ = "pred_eq"
    PRED_NE = "pred_ne"
    PRED_LT = "pred_lt"
    PRED_LT_U = "pred_lt_u"
    PRED_LE = "pred_le"
    PRED_LE_U = "pred_le_u"
    PRED_GT = "pred_gt"
    PRED_GT_U = "pred_gt_u"
    PRED_GE = "pred_ge"
    PRED_GE_U = "pred_ge_u"
    # Mul
    MUL = "mul"
    MUL_U = "mul_u"
    # Branch
    JMP = "jmp"
    JMPL = "jmpl"
    BR = "br"
    BRL = "brl"
    # Loads
    LD_UC = "ld_uc"
    LD_C = "ld_c"
    LD_UC2 = "ld_uc2"
    LD_C2 = "ld_c2"
    LD_I = "ld_i"
    #: 64-bit load: Table 1 notes that 64-bit register contents are
    #: loaded with *two* 32-bit instructions; ``ld_q`` models that pair
    #: as one scheduler operation touching two (adjacent, hence
    #: conflict-free under word interleaving) L1 banks.  It counts as
    #: two operations in IPC accounting.
    LD_Q = "ld_q"
    # Stores
    ST_C = "st_c"
    ST_C2 = "st_c2"
    ST_I = "st_i"
    #: 64-bit store; dual of ``ld_q``.
    ST_Q = "st_q"
    # Control
    CGA = "cga"
    HALT = "halt"
    NOP = "nop"
    # SIMD1: single-cycle 4x16 lane ops.  Table 1 explicitly details only
    # "some of the instructions comprised"; the swap/min/max/negate forms
    # below complete the group as the baseband kernels require.
    C4ADD = "c4add"
    C4SUB = "c4sub"
    C4AND = "c4and"
    C4SHIFTL = "c4shiftl"
    C4SHIFTR = "c4shiftr"
    C4SWAP32 = "c4swap32"
    C4SWAP16 = "c4swap16"
    C4MAX = "c4max"
    C4MIN = "c4min"
    C4NEGB = "c4negb"
    C4OR = "c4or"
    C4XOR = "c4xor"
    # SIMD2: 3-cycle 4x16 lane multiplies (direct and cross forms)
    D4PROD = "d4prod"
    C4PROD = "c4prod"
    # Div
    DIV = "div"
    DIV_U = "div_u"


_GROUP_OF: Dict[Opcode, OpGroup] = {}


def _assign(group: OpGroup, *ops: Opcode) -> None:
    for op in ops:
        _GROUP_OF[op] = group


_assign(OpGroup.ARITH, Opcode.ADD, Opcode.ADD_U, Opcode.SUB, Opcode.SUB_U)
_assign(
    OpGroup.LOGIC,
    Opcode.OR,
    Opcode.NOR,
    Opcode.AND,
    Opcode.NAND,
    Opcode.XOR,
    Opcode.XNOR,
)
_assign(OpGroup.SHIFT, Opcode.LSL, Opcode.LSR, Opcode.ASR)
_assign(
    OpGroup.COMP,
    Opcode.EQ,
    Opcode.NE,
    Opcode.GT,
    Opcode.GT_U,
    Opcode.LT,
    Opcode.LT_U,
    Opcode.GE,
    Opcode.GE_U,
    Opcode.LE,
    Opcode.LE_U,
)
_assign(
    OpGroup.PRED,
    Opcode.PRED_CLEAR,
    Opcode.PRED_SET,
    Opcode.PRED_EQ,
    Opcode.PRED_NE,
    Opcode.PRED_LT,
    Opcode.PRED_LT_U,
    Opcode.PRED_LE,
    Opcode.PRED_LE_U,
    Opcode.PRED_GT,
    Opcode.PRED_GT_U,
    Opcode.PRED_GE,
    Opcode.PRED_GE_U,
)
_assign(OpGroup.MUL, Opcode.MUL, Opcode.MUL_U)
_assign(OpGroup.BRANCH, Opcode.JMP, Opcode.JMPL, Opcode.BR, Opcode.BRL)
_assign(
    OpGroup.LDMEM,
    Opcode.LD_UC,
    Opcode.LD_C,
    Opcode.LD_UC2,
    Opcode.LD_C2,
    Opcode.LD_I,
    Opcode.LD_Q,
)
_assign(OpGroup.STMEM, Opcode.ST_C, Opcode.ST_C2, Opcode.ST_I, Opcode.ST_Q)
_assign(OpGroup.CONTROL, Opcode.CGA, Opcode.HALT, Opcode.NOP)
_assign(
    OpGroup.SIMD1,
    Opcode.C4ADD,
    Opcode.C4SUB,
    Opcode.C4AND,
    Opcode.C4SHIFTL,
    Opcode.C4SHIFTR,
    Opcode.C4SWAP32,
    Opcode.C4SWAP16,
    Opcode.C4MAX,
    Opcode.C4MIN,
    Opcode.C4NEGB,
    Opcode.C4OR,
    Opcode.C4XOR,
)
_assign(OpGroup.SIMD2, Opcode.D4PROD, Opcode.C4PROD)
_assign(OpGroup.DIV, Opcode.DIV, Opcode.DIV_U)

# Every opcode must be classified.
_missing = [op for op in Opcode if op not in _GROUP_OF]
if _missing:  # pragma: no cover - guards against edits to the enum
    raise RuntimeError("opcodes without a group: %r" % _missing)


def group_of(op: Opcode) -> OpGroup:
    """Return the Table 1 operation group of *op*."""
    return _GROUP_OF[op]


def latency_of(op: Opcode) -> int:
    """Return the execution latency of *op* in cycles.

    The PC-relative branches (``br``/``brl``) take one cycle more than
    the absolute forms, as in Table 1 (2 vs 3 cycles).
    """
    if op in (Opcode.BR, Opcode.BRL):
        return RELATIVE_BRANCH_LATENCY
    return GROUP_INFO[_GROUP_OF[op]].latency


def ops_in_group(group: OpGroup) -> Tuple[Opcode, ...]:
    """Return all opcodes belonging to *group*, in enum order."""
    return tuple(op for op in Opcode if _GROUP_OF[op] is group)


#: Operations that model the paper's "two 32-bit instructions per 64-bit
#: access" as one scheduler operation; they count double in IPC terms.
DUAL_ISSUE_OPS = frozenset({Opcode.LD_Q, Opcode.ST_Q})


def op_weight(op: Opcode) -> int:
    """Number of architectural instructions one executed *op* represents."""
    return 2 if op in DUAL_ISSUE_OPS else 1


def is_commutative(op: Opcode) -> bool:
    """True when src1/src2 may be swapped without changing the result."""
    return op in (
        Opcode.ADD,
        Opcode.ADD_U,
        Opcode.OR,
        Opcode.NOR,
        Opcode.AND,
        Opcode.NAND,
        Opcode.XOR,
        Opcode.XNOR,
        Opcode.EQ,
        Opcode.NE,
        Opcode.PRED_EQ,
        Opcode.PRED_NE,
        Opcode.MUL,
        Opcode.MUL_U,
        Opcode.C4ADD,
        Opcode.C4AND,
        Opcode.D4PROD,
    )


def writes_predicate(op: Opcode) -> bool:
    """True when the destination is a predicate register (1-bit)."""
    return group_of(op) is OpGroup.PRED


def is_memory(op: Opcode) -> bool:
    """True for loads and stores."""
    return group_of(op) in (OpGroup.LDMEM, OpGroup.STMEM)


def is_load(op: Opcode) -> bool:
    """True for load instructions."""
    return group_of(op) is OpGroup.LDMEM


def is_store(op: Opcode) -> bool:
    """True for store instructions."""
    return group_of(op) is OpGroup.STMEM


def is_branch(op: Opcode) -> bool:
    """True for control-transfer instructions."""
    return group_of(op) is OpGroup.BRANCH
