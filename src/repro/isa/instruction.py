"""Instruction and operand containers shared by the assembler, compiler
and simulator.

Operands are small typed wrappers rather than bare integers so that an
instruction is self-describing: ``Reg(3)`` is central-register r3,
``PredReg(1)`` is predicate register p1 and ``Imm(-4)`` is an immediate.
The CGA configuration path additionally uses :class:`LocalReg` (an entry
of an FU's private 2R/1W register file) and :class:`Wire` (the output
latch of a neighbouring FU reached over the interconnect); these are
resolved by the CGA context decoder, not by the VLIW decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.isa.opcodes import Opcode, group_of, latency_of


@dataclass(frozen=True)
class Reg:
    """A central data register file entry (r0..r63, 64-bit)."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < 64:
            raise ValueError("central register index out of range: %d" % self.index)

    def __str__(self) -> str:
        return "r%d" % self.index


@dataclass(frozen=True)
class PredReg:
    """A central predicate register file entry (p0..p63, 1-bit)."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < 64:
            raise ValueError("predicate register index out of range: %d" % self.index)

    def __str__(self) -> str:
        return "p%d" % self.index


@dataclass(frozen=True)
class Imm:
    """An immediate operand (signed)."""

    value: int

    def __str__(self) -> str:
        return "#%d" % self.value


@dataclass(frozen=True)
class LocalReg:
    """An entry of a CGA functional unit's local 2R/1W register file."""

    fu: int
    index: int

    def __str__(self) -> str:
        return "fu%d.l%d" % (self.fu, self.index)


@dataclass(frozen=True)
class Wire:
    """The pipelined output of another CGA FU, reached over the interconnect."""

    fu: int

    def __str__(self) -> str:
        return "fu%d.out" % self.fu


Operand = Union[Reg, PredReg, Imm, LocalReg, Wire]


@dataclass(frozen=True)
class Instruction:
    """One machine operation.

    Attributes
    ----------
    opcode:
        The :class:`~repro.isa.opcodes.Opcode`.
    dst:
        Destination operand (``None`` for stores, branches without link
        and control ops).
    srcs:
        Source operands, in Table 1 order (src1, src2[, src3]).
    pred:
        Optional guard predicate; when it evaluates to 0 at run time the
        instruction is squashed (no architectural effect).
    pred_negate:
        When true the guard sense is inverted (execute when pred == 0).
    """

    opcode: Opcode
    dst: Optional[Operand] = None
    srcs: Tuple[Operand, ...] = ()
    pred: Optional[Operand] = None
    pred_negate: bool = False

    @property
    def group(self):
        """The Table 1 operation group of this instruction."""
        return group_of(self.opcode)

    @property
    def latency(self) -> int:
        """Execution latency in cycles (bank conflicts add on top)."""
        return latency_of(self.opcode)

    def __str__(self) -> str:
        parts = []
        if self.pred is not None:
            sense = "!" if self.pred_negate else ""
            parts.append("(%s%s)" % (sense, self.pred))
        parts.append(self.opcode.value)
        operands = []
        if self.dst is not None:
            operands.append(str(self.dst))
        operands.extend(str(s) for s in self.srcs)
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)


NOP = Instruction(Opcode.NOP)
"""A canonical no-operation instruction (empty issue slot)."""
