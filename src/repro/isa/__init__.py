"""Instruction set architecture of the hybrid CGA-SIMD processor (Table 1).

The ISA is defined in three layers:

* :mod:`repro.isa.opcodes` — the opcode enumeration with per-group
  metadata (operand width, latency, which functional units implement it);
* :mod:`repro.isa.instruction` — the :class:`Instruction` container used
  by the compiler, assembler and simulator;
* :mod:`repro.isa.semantics` — bit-accurate execution semantics for every
  opcode, shared by the functional simulator and by unit tests.

An assembler / disassembler pair (:mod:`repro.isa.assembler`) round-trips
a human-readable assembly syntax.
"""

from repro.isa.opcodes import (
    Opcode,
    OpGroup,
    GROUP_INFO,
    latency_of,
    group_of,
    ops_in_group,
)
from repro.isa.instruction import Instruction, Operand, Reg, PredReg, Imm
from repro.isa.semantics import execute, ExecutionError
from repro.isa.assembler import assemble, assemble_line, disassemble

__all__ = [
    "Opcode",
    "OpGroup",
    "GROUP_INFO",
    "latency_of",
    "group_of",
    "ops_in_group",
    "Instruction",
    "Operand",
    "Reg",
    "PredReg",
    "Imm",
    "execute",
    "ExecutionError",
    "assemble",
    "assemble_line",
    "disassemble",
]
