"""Bit-accurate execution semantics of the Table 1 instruction set.

The function :func:`execute` evaluates one *dataflow* opcode (everything
except loads, stores, branches and control ops, whose effects involve
machine state and are implemented by the simulator core) on raw 64-bit
operand patterns and returns the raw result pattern.

Width conventions, from the paper (Section 2.B):

* basic groups (arith/logic/shift/comp/pred/mul) operate on the 32 LSBs
  of the 64-bit datapath; the result is written to the low 32 bits with
  the upper 32 bits cleared;
* the SIMD groups operate on the full 64 bits as four 16-bit lanes,
  lane "a" being the least significant;
* the hardwired dividers operate on the 24 LSBs.

SIMD multiply semantics: the paper's Table 1 gives the lane pairing of
``d4prod`` (straight: a*a, b*b, c*c, d*d) and ``c4prod`` (cross:
a*b2, b*a2, c*d2, d*c2) but not the 32->16-bit reduction.  We model the
customary DSP fractional form: ``(x * y) >> 15`` with saturation to
int16 (Q15 multiply), which is what the MIMO-OFDM kernels require.
Together with ``c4add``/``c4sub`` this realises two 16-bit complex
multiplications per instruction pair, the workhorse of the baseband
kernels.
"""

from __future__ import annotations

from typing import Sequence

from repro.isa import bits
from repro.isa.opcodes import Opcode, OpGroup, group_of


class ExecutionError(Exception):
    """Raised for malformed operands or unsupported opcodes."""


def _scalar32(op: Opcode, a: int, b: int) -> int:
    """Evaluate a 32-bit scalar operation; returns the raw 32-bit pattern."""
    sa, sb = bits.to_signed(a, 32), bits.to_signed(b, 32)
    ua, ub = a & bits.MASK32, b & bits.MASK32
    if op in (Opcode.ADD, Opcode.ADD_U):
        return (ua + ub) & bits.MASK32
    if op in (Opcode.SUB, Opcode.SUB_U):
        return (ua - ub) & bits.MASK32
    if op is Opcode.OR:
        return ua | ub
    if op is Opcode.NOR:
        return (~(ua | ub)) & bits.MASK32
    if op is Opcode.AND:
        return ua & ub
    if op is Opcode.NAND:
        return (~(ua & ub)) & bits.MASK32
    if op is Opcode.XOR:
        return ua ^ ub
    if op is Opcode.XNOR:
        return (~(ua ^ ub)) & bits.MASK32
    if op is Opcode.LSL:
        return (ua << (ub & 31)) & bits.MASK32
    if op is Opcode.LSR:
        return ua >> (ub & 31)
    if op is Opcode.ASR:
        return bits.to_unsigned(sa >> (ub & 31), 32)
    if op in (Opcode.MUL, Opcode.MUL_U):
        if op is Opcode.MUL:
            return bits.to_unsigned(sa * sb, 32)
        return (ua * ub) & bits.MASK32
    raise ExecutionError("not a scalar32 op: %s" % op)


_COMPARES = {
    Opcode.EQ: lambda sa, sb, ua, ub: sa == sb,
    Opcode.NE: lambda sa, sb, ua, ub: sa != sb,
    Opcode.GT: lambda sa, sb, ua, ub: sa > sb,
    Opcode.GT_U: lambda sa, sb, ua, ub: ua > ub,
    Opcode.LT: lambda sa, sb, ua, ub: sa < sb,
    Opcode.LT_U: lambda sa, sb, ua, ub: ua < ub,
    Opcode.GE: lambda sa, sb, ua, ub: sa >= sb,
    Opcode.GE_U: lambda sa, sb, ua, ub: ua >= ub,
    Opcode.LE: lambda sa, sb, ua, ub: sa <= sb,
    Opcode.LE_U: lambda sa, sb, ua, ub: ua <= ub,
    Opcode.PRED_EQ: lambda sa, sb, ua, ub: sa == sb,
    Opcode.PRED_NE: lambda sa, sb, ua, ub: sa != sb,
    Opcode.PRED_LT: lambda sa, sb, ua, ub: sa < sb,
    Opcode.PRED_LT_U: lambda sa, sb, ua, ub: ua < ub,
    Opcode.PRED_LE: lambda sa, sb, ua, ub: sa <= sb,
    Opcode.PRED_LE_U: lambda sa, sb, ua, ub: ua <= ub,
    Opcode.PRED_GT: lambda sa, sb, ua, ub: sa > sb,
    Opcode.PRED_GT_U: lambda sa, sb, ua, ub: ua > ub,
    Opcode.PRED_GE: lambda sa, sb, ua, ub: sa >= sb,
    Opcode.PRED_GE_U: lambda sa, sb, ua, ub: ua >= ub,
}


def q15_mul(x: int, y: int) -> int:
    """Fractional Q15 multiply of two signed 16-bit values, saturated."""
    return bits.sat16((x * y) >> 15)


#: SIMD operations that take a single source operand.
UNARY_SIMD = frozenset({Opcode.C4SWAP32, Opcode.C4SWAP16, Opcode.C4NEGB})


def _simd(op: Opcode, a: int, b: int) -> int:
    la, lb = bits.split_lanes(a), bits.split_lanes(b)
    if op is Opcode.C4ADD:
        # Lane adds saturate, as customary for DSP SIMD datapaths (a
        # wrapping add would flip signs on near-full-scale phasors).
        out = [bits.sat16(la[i] + lb[i]) for i in range(4)]
    elif op is Opcode.C4SUB:
        out = [bits.sat16(la[i] - lb[i]) for i in range(4)]
    elif op is Opcode.C4AND:
        out = [la[i] & lb[i] for i in range(4)]
    elif op is Opcode.C4OR:
        out = [la[i] | lb[i] for i in range(4)]
    elif op is Opcode.C4XOR:
        out = [la[i] ^ lb[i] for i in range(4)]
    elif op is Opcode.C4SHIFTL:
        shift = b & 15
        out = [lane << shift for lane in la]
    elif op is Opcode.C4SHIFTR:
        shift = b & 15
        out = [lane >> shift for lane in la]
    elif op is Opcode.C4SWAP32:
        # Swap the 32-bit halves: |a|b|c|d| -> |c|d|a|b|.
        out = [la[2], la[3], la[0], la[1]]
    elif op is Opcode.C4SWAP16:
        # Swap within each 32-bit pair: |a|b|c|d| -> |b|a|d|c|.
        out = [la[1], la[0], la[3], la[2]]
    elif op is Opcode.C4MAX:
        out = [max(la[i], lb[i]) for i in range(4)]
    elif op is Opcode.C4MIN:
        out = [min(la[i], lb[i]) for i in range(4)]
    elif op is Opcode.C4NEGB:
        # Negate the odd lanes (complex conjugate of packed re/im pairs).
        out = [la[0], bits.sat16(-la[1]), la[2], bits.sat16(-la[3])]
    elif op is Opcode.D4PROD:
        out = [q15_mul(la[i], lb[i]) for i in range(4)]
    elif op is Opcode.C4PROD:
        # Cross pairing per Table 1: |a1*b2|b1*a2|c1*d2|d1*c2|
        out = [
            q15_mul(la[0], lb[1]),
            q15_mul(la[1], lb[0]),
            q15_mul(la[2], lb[3]),
            q15_mul(la[3], lb[2]),
        ]
    else:
        raise ExecutionError("not a SIMD op: %s" % op)
    return bits.pack_lanes(out)


def _div(op: Opcode, a: int, b: int) -> int:
    """24-bit division.  Division by zero yields the all-ones 24-bit pattern,
    matching common hardwired-divider behaviour."""
    if op is Opcode.DIV:
        sa, sb = bits.to_signed(a, 24), bits.to_signed(b, 24)
        if sb == 0:
            return bits.MASK24
        # Truncating division toward zero, as in C.
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return bits.to_unsigned(quotient, 24)
    ua, ub = a & bits.MASK24, b & bits.MASK24
    if ub == 0:
        return bits.MASK24
    return ua // ub


def execute(op: Opcode, srcs: Sequence[int]) -> int:
    """Execute a dataflow opcode on raw operand patterns.

    Parameters
    ----------
    op:
        Any opcode of the arith/logic/shift/comp/pred/mul/simd1/simd2/div
        groups.  Memory, branch and control opcodes raise
        :class:`ExecutionError`; their semantics live in the simulator.
    srcs:
        Raw 64-bit source patterns, in Table 1 order.

    Returns
    -------
    int
        The raw result pattern: 64-bit for SIMD groups, 32-bit
        (zero-extended into the 64-bit register) for the basic groups,
        0/1 for comparisons and predicate-setters.
    """
    group = group_of(op)
    if op is Opcode.PRED_CLEAR:
        return 0
    if op is Opcode.PRED_SET:
        return 1
    if group in (OpGroup.COMP, OpGroup.PRED):
        if len(srcs) != 2:
            raise ExecutionError("%s expects 2 sources" % op.value)
        a, b = srcs
        sa, sb = bits.to_signed(a, 32), bits.to_signed(b, 32)
        ua, ub = a & bits.MASK32, b & bits.MASK32
        return 1 if _COMPARES[op](sa, sb, ua, ub) else 0
    if group in (OpGroup.ARITH, OpGroup.LOGIC, OpGroup.SHIFT, OpGroup.MUL):
        if len(srcs) != 2:
            raise ExecutionError("%s expects 2 sources" % op.value)
        return _scalar32(op, srcs[0], srcs[1])
    if group in (OpGroup.SIMD1, OpGroup.SIMD2):
        if op in UNARY_SIMD:
            if len(srcs) not in (1, 2):
                raise ExecutionError("%s expects 1 source" % op.value)
            return _simd(op, srcs[0], 0)
        if len(srcs) != 2:
            raise ExecutionError("%s expects 2 sources" % op.value)
        return _simd(op, srcs[0], srcs[1])
    if group is OpGroup.DIV:
        if len(srcs) != 2:
            raise ExecutionError("%s expects 2 sources" % op.value)
        return _div(op, srcs[0], srcs[1])
    raise ExecutionError(
        "opcode %s (%s group) has machine-state semantics; "
        "it is executed by the simulator core" % (op.value, group.value)
    )
