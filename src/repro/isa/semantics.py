"""Bit-accurate execution semantics of the Table 1 instruction set.

The function :func:`execute` evaluates one *dataflow* opcode (everything
except loads, stores, branches and control ops, whose effects involve
machine state and are implemented by the simulator core) on raw 64-bit
operand patterns and returns the raw result pattern.

Width conventions, from the paper (Section 2.B):

* basic groups (arith/logic/shift/comp/pred/mul) operate on the 32 LSBs
  of the 64-bit datapath; the result is written to the low 32 bits with
  the upper 32 bits cleared;
* the SIMD groups operate on the full 64 bits as four 16-bit lanes,
  lane "a" being the least significant;
* the hardwired dividers operate on the 24 LSBs.

SIMD multiply semantics: the paper's Table 1 gives the lane pairing of
``d4prod`` (straight: a*a, b*b, c*c, d*d) and ``c4prod`` (cross:
a*b2, b*a2, c*d2, d*c2) but not the 32->16-bit reduction.  We model the
customary DSP fractional form: ``(x * y) >> 15`` with saturation to
int16 (Q15 multiply), which is what the MIMO-OFDM kernels require.
Together with ``c4add``/``c4sub`` this realises two 16-bit complex
multiplications per instruction pair, the workhorse of the baseband
kernels.

Dispatch structure
------------------
Every opcode's semantics is one entry in a dict dispatch table
(``_SCALAR32_TABLE``, ``_SIMD_TABLE``, ``_COMPARES``), so evaluating an
op is one dict lookup plus one call instead of a walk down an if-chain.
:func:`execute` remains the reference entry point (full operand
validation on every call); the pre-decoded execution engines bind the
per-opcode handler once via :func:`handler_for` and skip the per-call
validation, which decode performs once per kernel.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.isa import bits
from repro.isa.bits import MASK32, pack_lanes, sat16, split_lanes, to_signed, to_unsigned
from repro.isa.opcodes import Opcode, OpGroup, group_of


class ExecutionError(Exception):
    """Raised for malformed operands or unsupported opcodes."""


#: Scalar 32-bit ops: raw 64-bit patterns in, raw 32-bit pattern out.
#: Each entry masks/sign-interprets its own operands, so callers pass
#: register contents through unchanged.
_SCALAR32_TABLE: Dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADD: lambda a, b: (a + b) & MASK32,
    Opcode.ADD_U: lambda a, b: (a + b) & MASK32,
    Opcode.SUB: lambda a, b: (a - b) & MASK32,
    Opcode.SUB_U: lambda a, b: (a - b) & MASK32,
    Opcode.OR: lambda a, b: (a | b) & MASK32,
    Opcode.NOR: lambda a, b: ~(a | b) & MASK32,
    Opcode.AND: lambda a, b: (a & b) & MASK32,
    Opcode.NAND: lambda a, b: ~(a & b) & MASK32,
    Opcode.XOR: lambda a, b: (a ^ b) & MASK32,
    Opcode.XNOR: lambda a, b: ~(a ^ b) & MASK32,
    Opcode.LSL: lambda a, b: ((a & MASK32) << (b & 31)) & MASK32,
    Opcode.LSR: lambda a, b: (a & MASK32) >> (b & 31),
    Opcode.ASR: lambda a, b: (to_signed(a, 32) >> (b & 31)) & MASK32,
    Opcode.MUL: lambda a, b: (to_signed(a, 32) * to_signed(b, 32)) & MASK32,
    Opcode.MUL_U: lambda a, b: (a * b) & MASK32,
}


def _scalar32(op: Opcode, a: int, b: int) -> int:
    """Evaluate a 32-bit scalar operation; returns the raw 32-bit pattern."""
    fn = _SCALAR32_TABLE.get(op)
    if fn is None:
        raise ExecutionError("not a scalar32 op: %s" % op)
    return fn(a, b)


_COMPARES = {
    Opcode.EQ: lambda sa, sb, ua, ub: sa == sb,
    Opcode.NE: lambda sa, sb, ua, ub: sa != sb,
    Opcode.GT: lambda sa, sb, ua, ub: sa > sb,
    Opcode.GT_U: lambda sa, sb, ua, ub: ua > ub,
    Opcode.LT: lambda sa, sb, ua, ub: sa < sb,
    Opcode.LT_U: lambda sa, sb, ua, ub: ua < ub,
    Opcode.GE: lambda sa, sb, ua, ub: sa >= sb,
    Opcode.GE_U: lambda sa, sb, ua, ub: ua >= ub,
    Opcode.LE: lambda sa, sb, ua, ub: sa <= sb,
    Opcode.LE_U: lambda sa, sb, ua, ub: ua <= ub,
    Opcode.PRED_EQ: lambda sa, sb, ua, ub: sa == sb,
    Opcode.PRED_NE: lambda sa, sb, ua, ub: sa != sb,
    Opcode.PRED_LT: lambda sa, sb, ua, ub: sa < sb,
    Opcode.PRED_LT_U: lambda sa, sb, ua, ub: ua < ub,
    Opcode.PRED_LE: lambda sa, sb, ua, ub: sa <= sb,
    Opcode.PRED_LE_U: lambda sa, sb, ua, ub: ua <= ub,
    Opcode.PRED_GT: lambda sa, sb, ua, ub: sa > sb,
    Opcode.PRED_GT_U: lambda sa, sb, ua, ub: ua > ub,
    Opcode.PRED_GE: lambda sa, sb, ua, ub: sa >= sb,
    Opcode.PRED_GE_U: lambda sa, sb, ua, ub: ua >= ub,
}


def q15_mul(x: int, y: int) -> int:
    """Fractional Q15 multiply of two signed 16-bit values, saturated."""
    return bits.sat16((x * y) >> 15)


#: SIMD operations that take a single source operand.
UNARY_SIMD = frozenset({Opcode.C4SWAP32, Opcode.C4SWAP16, Opcode.C4NEGB})


def _lanes(fn: Callable[[int, int], int]) -> Callable[[int, int], int]:
    """Lift a per-lane (signed 16-bit) binary function to 4x16 SIMD."""

    def simd(a: int, b: int) -> int:
        la, lb = split_lanes(a), split_lanes(b)
        return pack_lanes([fn(la[i], lb[i]) for i in range(4)])

    return simd


def _c4shiftl(a: int, b: int) -> int:
    shift = b & 15
    return pack_lanes([lane << shift for lane in split_lanes(a)])


def _c4shiftr(a: int, b: int) -> int:
    shift = b & 15
    return pack_lanes([lane >> shift for lane in split_lanes(a)])


def _c4swap32(a: int, b: int) -> int:
    # Swap the 32-bit halves: |a|b|c|d| -> |c|d|a|b|.
    la = split_lanes(a)
    return pack_lanes([la[2], la[3], la[0], la[1]])


def _c4swap16(a: int, b: int) -> int:
    # Swap within each 32-bit pair: |a|b|c|d| -> |b|a|d|c|.
    la = split_lanes(a)
    return pack_lanes([la[1], la[0], la[3], la[2]])


def _c4negb(a: int, b: int) -> int:
    # Negate the odd lanes (complex conjugate of packed re/im pairs).
    la = split_lanes(a)
    return pack_lanes([la[0], sat16(-la[1]), la[2], sat16(-la[3])])


def _c4prod(a: int, b: int) -> int:
    # Cross pairing per Table 1: |a1*b2|b1*a2|c1*d2|d1*c2|
    la, lb = split_lanes(a), split_lanes(b)
    return pack_lanes(
        [
            q15_mul(la[0], lb[1]),
            q15_mul(la[1], lb[0]),
            q15_mul(la[2], lb[3]),
            q15_mul(la[3], lb[2]),
        ]
    )


#: SIMD ops: raw 64-bit patterns in (second operand 0 for the unary
#: forms), packed 4x16 result out.  Lane adds/subs saturate, as
#: customary for DSP SIMD datapaths (a wrapping add would flip signs on
#: near-full-scale phasors).
_SIMD_TABLE: Dict[Opcode, Callable[[int, int], int]] = {
    Opcode.C4ADD: _lanes(lambda x, y: sat16(x + y)),
    Opcode.C4SUB: _lanes(lambda x, y: sat16(x - y)),
    Opcode.C4AND: _lanes(lambda x, y: x & y),
    Opcode.C4OR: _lanes(lambda x, y: x | y),
    Opcode.C4XOR: _lanes(lambda x, y: x ^ y),
    Opcode.C4SHIFTL: _c4shiftl,
    Opcode.C4SHIFTR: _c4shiftr,
    Opcode.C4SWAP32: _c4swap32,
    Opcode.C4SWAP16: _c4swap16,
    Opcode.C4MAX: _lanes(max),
    Opcode.C4MIN: _lanes(min),
    Opcode.C4NEGB: _c4negb,
    Opcode.D4PROD: _lanes(q15_mul),
    Opcode.C4PROD: _c4prod,
}


def _simd(op: Opcode, a: int, b: int) -> int:
    fn = _SIMD_TABLE.get(op)
    if fn is None:
        raise ExecutionError("not a SIMD op: %s" % op)
    return fn(a, b)


def _div(op: Opcode, a: int, b: int) -> int:
    """24-bit division.  Division by zero yields the all-ones 24-bit pattern,
    matching common hardwired-divider behaviour."""
    if op is Opcode.DIV:
        sa, sb = bits.to_signed(a, 24), bits.to_signed(b, 24)
        if sb == 0:
            return bits.MASK24
        # Truncating division toward zero, as in C.
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return bits.to_unsigned(quotient, 24)
    ua, ub = a & bits.MASK24, b & bits.MASK24
    if ub == 0:
        return bits.MASK24
    return ua // ub


def execute(op: Opcode, srcs: Sequence[int]) -> int:
    """Execute a dataflow opcode on raw operand patterns.

    Parameters
    ----------
    op:
        Any opcode of the arith/logic/shift/comp/pred/mul/simd1/simd2/div
        groups.  Memory, branch and control opcodes raise
        :class:`ExecutionError`; their semantics live in the simulator.
    srcs:
        Raw 64-bit source patterns, in Table 1 order.

    Returns
    -------
    int
        The raw result pattern: 64-bit for SIMD groups, 32-bit
        (zero-extended into the 64-bit register) for the basic groups,
        0/1 for comparisons and predicate-setters.
    """
    group = group_of(op)
    if op is Opcode.PRED_CLEAR:
        return 0
    if op is Opcode.PRED_SET:
        return 1
    if group in (OpGroup.COMP, OpGroup.PRED):
        if len(srcs) != 2:
            raise ExecutionError("%s expects 2 sources" % op.value)
        a, b = srcs
        sa, sb = bits.to_signed(a, 32), bits.to_signed(b, 32)
        ua, ub = a & bits.MASK32, b & bits.MASK32
        return 1 if _COMPARES[op](sa, sb, ua, ub) else 0
    if group in (OpGroup.ARITH, OpGroup.LOGIC, OpGroup.SHIFT, OpGroup.MUL):
        if len(srcs) != 2:
            raise ExecutionError("%s expects 2 sources" % op.value)
        return _scalar32(op, srcs[0], srcs[1])
    if group in (OpGroup.SIMD1, OpGroup.SIMD2):
        if op in UNARY_SIMD:
            if len(srcs) not in (1, 2):
                raise ExecutionError("%s expects 1 source" % op.value)
            return _simd(op, srcs[0], 0)
        if len(srcs) != 2:
            raise ExecutionError("%s expects 2 sources" % op.value)
        return _simd(op, srcs[0], srcs[1])
    if group is OpGroup.DIV:
        if len(srcs) != 2:
            raise ExecutionError("%s expects 2 sources" % op.value)
        return _div(op, srcs[0], srcs[1])
    raise ExecutionError(
        "opcode %s (%s group) has machine-state semantics; "
        "it is executed by the simulator core" % (op.value, group.value)
    )


# ----------------------------------------------------------------------
# Pre-bound handlers for the decoded execution engines.
# ----------------------------------------------------------------------

#: Groups whose opcodes :func:`execute` can evaluate (pure dataflow).
DATAFLOW_GROUPS = frozenset(
    {
        OpGroup.ARITH,
        OpGroup.LOGIC,
        OpGroup.SHIFT,
        OpGroup.COMP,
        OpGroup.PRED,
        OpGroup.MUL,
        OpGroup.SIMD1,
        OpGroup.SIMD2,
        OpGroup.DIV,
    }
)


def _make_compare(cmp: Callable[[int, int, int, int], bool]) -> Callable[[int, int], int]:
    def compare(a: int, b: int) -> int:
        return 1 if cmp(to_signed(a, 32), to_signed(b, 32), a & MASK32, b & MASK32) else 0

    return compare


def _make_div(op: Opcode) -> Callable[[int, int], int]:
    def div(a: int, b: int) -> int:
        return _div(op, a, b)

    return div


def _make_unary(fn: Callable[[int, int], int]) -> Callable[[int], int]:
    def unary(a: int) -> int:
        return fn(a, 0)

    return unary


def _build_handlers() -> Dict[Opcode, Callable[..., int]]:
    handlers: Dict[Opcode, Callable[..., int]] = {
        Opcode.PRED_CLEAR: lambda: 0,
        Opcode.PRED_SET: lambda: 1,
    }
    handlers.update(_SCALAR32_TABLE)
    for op, cmp in _COMPARES.items():
        handlers[op] = _make_compare(cmp)
    for op, fn in _SIMD_TABLE.items():
        handlers[op] = _make_unary(fn) if op in UNARY_SIMD else fn
    handlers[Opcode.DIV] = _make_div(Opcode.DIV)
    handlers[Opcode.DIV_U] = _make_div(Opcode.DIV_U)
    return handlers


_HANDLERS: Dict[Opcode, Callable[..., int]] = _build_handlers()


def operand_count(op: Opcode) -> int:
    """Number of operands :func:`handler_for`'s handler takes for *op*."""
    if op in (Opcode.PRED_CLEAR, Opcode.PRED_SET):
        return 0
    if op in UNARY_SIMD:
        return 1
    return 2


def handler_for(op: Opcode) -> Callable[..., int]:
    """Return the bound semantic handler of dataflow opcode *op*.

    The handler takes :func:`operand_count` raw operand patterns as
    positional arguments and returns the raw result pattern — exactly
    what :func:`execute` would return for well-formed sources, minus the
    per-call validation (which pre-decode performs once per kernel).
    Raises :class:`ExecutionError` for opcodes with machine-state
    semantics (memory, branch, control).
    """
    handler = _HANDLERS.get(op)
    if handler is None:
        raise ExecutionError(
            "opcode %s (%s group) has machine-state semantics; "
            "it is executed by the simulator core" % (op.value, group_of(op).value)
        )
    return handler
