"""Textual assembly for the Table 1 ISA.

Syntax (one instruction per line)::

    add r3, r1, r2          ; r3 = r1 + r2
    ld_c2 r4, r10, #8       ; r4 = sext16(mem16[r10 + 8<<1])
    (p1) st_i r10, #0, r4   ; predicated store
    (!p2) br #-12           ; negated guard, PC-relative branch
    c4prod r5, r6, r7       ; 4x16 cross product
    cga #0                  ; enter CGA mode running kernel 0
    halt

Comments start with ``;`` or ``#`` at line start.  Operand forms:
``rN`` (central data register), ``pN`` (predicate register), ``#imm``
(immediate, decimal or 0x hex).  The disassembler is the exact inverse
of the assembler (``assemble(disassemble(i)) == i``).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.isa.instruction import Imm, Instruction, Operand, PredReg, Reg
from repro.isa.opcodes import Opcode, OpGroup, group_of

_MNEMONICS = {op.value: op for op in Opcode}

_PRED_RE = re.compile(r"^\((!?)(p\d+)\)\s*(.*)$")


class AssemblyError(ValueError):
    """Raised on malformed assembly text."""


def _parse_operand(token: str) -> Operand:
    token = token.strip()
    if re.fullmatch(r"r\d+", token):
        return Reg(int(token[1:]))
    if re.fullmatch(r"p\d+", token):
        return PredReg(int(token[1:]))
    if token.startswith("#"):
        body = token[1:]
        try:
            return Imm(int(body, 0))
        except ValueError as exc:
            raise AssemblyError("bad immediate: %r" % token) from exc
    raise AssemblyError("unrecognised operand: %r" % token)


def _operand_shape(op: Opcode) -> Tuple[bool, int]:
    """Return (has_dst, n_srcs) for the canonical textual form of *op*."""
    group = group_of(op)
    if op is Opcode.NOP:
        return (False, 0)
    if op in (Opcode.HALT,):
        return (False, 0)
    if op is Opcode.CGA:
        return (False, 1)
    if op in (Opcode.PRED_CLEAR, Opcode.PRED_SET):
        return (True, 0)
    if group is OpGroup.STMEM:
        # st_* base, offset, value
        return (False, 3)
    if group is OpGroup.BRANCH:
        if op in (Opcode.JMP, Opcode.BR):
            return (False, 1)
        return (True, 1)  # link register is the textual dst
    if op in (Opcode.C4SWAP32, Opcode.C4SWAP16, Opcode.C4NEGB):
        return (True, 1)
    return (True, 2)


def assemble_line(line: str) -> Optional[Instruction]:
    """Assemble one line of text; returns ``None`` for blank/comment lines."""
    text = line.split(";")[0].strip()
    if not text or text.startswith("#"):
        return None
    pred: Optional[Operand] = None
    pred_negate = False
    match = _PRED_RE.match(text)
    if match:
        pred_negate = match.group(1) == "!"
        pred = _parse_operand(match.group(2))
        text = match.group(3)
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    if mnemonic not in _MNEMONICS:
        raise AssemblyError("unknown mnemonic: %r" % mnemonic)
    op = _MNEMONICS[mnemonic]
    operands: List[Operand] = []
    if len(parts) > 1:
        operands = [_parse_operand(tok) for tok in parts[1].split(",") if tok.strip()]
    has_dst, n_srcs = _operand_shape(op)
    expected = (1 if has_dst else 0) + n_srcs
    if len(operands) != expected:
        raise AssemblyError(
            "%s expects %d operand(s), got %d" % (mnemonic, expected, len(operands))
        )
    dst = operands[0] if has_dst else None
    srcs = tuple(operands[1:] if has_dst else operands)
    return Instruction(op, dst=dst, srcs=srcs, pred=pred, pred_negate=pred_negate)


def assemble(source: str) -> List[Instruction]:
    """Assemble a multi-line program into a list of instructions."""
    out: List[Instruction] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        try:
            inst = assemble_line(line)
        except AssemblyError as exc:
            raise AssemblyError("line %d: %s" % (lineno, exc)) from exc
        if inst is not None:
            out.append(inst)
    return out


def disassemble(inst: Instruction) -> str:
    """Render *inst* in the assembler's input syntax."""
    return str(inst)
