"""Bit-manipulation helpers shared by ISA semantics and the simulator.

All register values travel through the model as non-negative Python
integers holding the raw 64-bit pattern; these helpers convert between
raw patterns and signed interpretations at the widths the ISA uses
(64, 32, 24 and 16 bits).
"""

from __future__ import annotations

from typing import List, Sequence

MASK16 = 0xFFFF
MASK24 = 0xFF_FFFF
MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF

INT16_MIN, INT16_MAX = -(1 << 15), (1 << 15) - 1
INT32_MIN, INT32_MAX = -(1 << 31), (1 << 31) - 1


def mask(value: int, width: int) -> int:
    """Truncate *value* to *width* bits (returns the raw pattern)."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Interpret the low *width* bits of *value* as two's complement."""
    value &= (1 << width) - 1
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


def to_unsigned(value: int, width: int) -> int:
    """Return the raw *width*-bit pattern of *value* (two's complement)."""
    return value & ((1 << width) - 1)


def sext(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend the low *from_width* bits of *value* to *to_width* bits."""
    return to_unsigned(to_signed(value, from_width), to_width)


def zext(value: int, from_width: int) -> int:
    """Zero-extend: simply truncate to *from_width* bits."""
    return value & ((1 << from_width) - 1)


def saturate(value: int, lo: int, hi: int) -> int:
    """Clamp a signed *value* into [lo, hi]."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def sat16(value: int) -> int:
    """Saturate a signed value to the int16 range."""
    return saturate(value, INT16_MIN, INT16_MAX)


def split_lanes(value: int) -> List[int]:
    """Split a 64-bit pattern into four signed 16-bit lanes.

    Lane 0 ("a" in Table 1) is the least-significant 16 bits.
    """
    return [to_signed(value >> (16 * i), 16) for i in range(4)]


def pack_lanes(lanes: Sequence[int]) -> int:
    """Pack four signed lane values (each truncated to 16 bits) into 64 bits."""
    if len(lanes) != 4:
        raise ValueError("expected 4 lanes, got %d" % len(lanes))
    out = 0
    for i, lane in enumerate(lanes):
        out |= to_unsigned(lane, 16) << (16 * i)
    return out
