"""Programmatic regeneration of every table and figure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.arch import paper_core
from repro.isa.opcodes import GROUP_INFO, OpGroup, latency_of, ops_in_group
from repro.modem.analysis import realtime_analysis
from repro.modem.profile import format_table2, table2_rows
from repro.modem.receiver import ReceiverOutput, SimReceiver
from repro.phy.channel import MimoChannel
from repro.phy.modem_ref import transmit
from repro.phy.params import PARAMS_20MHZ_2X2
from repro.power import (
    LEAKAGE_65C_W,
    LEAKAGE_TYPICAL_W,
    calibrate_from_reference,
    estimate_area,
)
from repro.power.model import PAPER_AVERAGE_W, PAPER_CGA_ACTIVE_W, PAPER_VLIW_ACTIVE_W, PowerModel
from repro.sim.stats import ActivityStats
from repro.trace.tracer import Tracer, set_tracer


@dataclass
class ReferenceRun:
    """One profiled packet: the evaluation's shared workload."""

    output: ReceiverOutput
    bits_tx: np.ndarray
    ber: float
    cfo_true_hz: float


def run_reference_modem(
    seed: int = 42,
    cfo_hz: float = 50e3,
    snr_db: Optional[float] = None,
    channel: Optional[MimoChannel] = None,
    tracer: Optional[Tracer] = None,
    interpreter: str = "decoded",
) -> ReferenceRun:
    """Transmit one packet and run the full simulated receiver on it.

    With *tracer* the receiver emits its packet timeline into it, and the
    tracer is installed process-wide for the duration so the compiler's
    II-search events land in the same buffer.  *interpreter* selects the
    simulator tier (``"decoded"`` fast path or ``"reference"``).
    """
    params = PARAMS_20MHZ_2X2
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=2 * params.bits_per_symbol)
    tx = transmit(bits, params)
    chan = channel if channel is not None else MimoChannel.identity(2)
    rx = chan.apply(tx.waveform, snr_db=snr_db, cfo_hz=cfo_hz)
    noise = 0.001 * (rng.normal(size=(2, 32)) + 1j * rng.normal(size=(2, 32)))
    rx = np.concatenate([noise, rx, np.zeros((2, 64))], axis=1)
    previous = set_tracer(tracer) if tracer is not None else None
    try:
        output = SimReceiver(seed=0, tracer=tracer, interpreter=interpreter).run_packet(rx)
    finally:
        if tracer is not None:
            set_tracer(previous)
    ber = float(np.mean(output.bits != bits))
    return ReferenceRun(output=output, bits_tx=bits, ber=ber, cfo_true_hz=cfo_hz)


# ----------------------------------------------------------------------
# Table 1 — the instruction set, printed from the live definition.
# ----------------------------------------------------------------------


def table1_text() -> str:
    """Render Table 1 (groups, member ops, FU range, width, latency)."""
    lines = [
        "%-9s %-44s %-6s %6s %9s"
        % ("group", "instructions", "FUs", "width", "delay")
    ]
    lines.append("-" * 80)
    for group in OpGroup:
        info = GROUP_INFO[group]
        ops = ", ".join(op.value for op in ops_in_group(group))
        lat = {latency_of(op) for op in ops_in_group(group)}
        lat_text = "/".join(str(x) for x in sorted(lat))
        fu_text = "%d-%d" % info.fu_range
        lines.append(
            "%-9s %-44s %-6s %6d %9s"
            % (group.value, ops[:44], fu_text, info.width, lat_text)
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 2 — kernel profiling.
# ----------------------------------------------------------------------


def table2_report(run: ReferenceRun) -> str:
    """Measured vs paper Table 2 plus the balance checks of Section 4."""
    rows = table2_rows(run.output)
    text = [format_table2(rows)]
    stats = run.output.stats
    cga_ipc = stats.cga_ops / max(stats.cga_cycles, 1)
    vliw_ipc = stats.vliw_ops / max(stats.vliw_cycles, 1)
    text.append("")
    text.append(
        "CGA-mode IPC %.2f (paper 10.31, utilization %.0f%%); "
        "VLIW-mode IPC %.2f (paper 1.94, utilization %.0f%%)"
        % (cga_ipc, 100 * cga_ipc / 16, vliw_ipc, 100 * vliw_ipc / 3)
    )
    text.append(
        "CGA-mode residency: %.0f%% overall (paper: 72%% preamble / 60%% data)"
        % (100 * stats.cga_fraction)
    )
    if stats.stall_cycles:
        parts = [
            "%s %d" % (cause, cycles)
            for cause, cycles in sorted(
                stats.stall_breakdown().items(), key=lambda kv: -kv[1]
            )
            if cycles
        ]
        text.append(
            "stall cycles: %d of %d (%.1f%%) — %s"
            % (
                stats.stall_cycles,
                stats.total_cycles,
                100 * stats.stall_cycles / max(stats.total_cycles, 1),
                ", ".join(parts),
            )
        )
    text.append("BER of the decoded packet: %.4f" % run.ber)
    return "\n".join(text)


# ----------------------------------------------------------------------
# Table 3 / Fig 6 — power.
# ----------------------------------------------------------------------


def _mode_reference_stats(run: ReferenceRun) -> Tuple[ActivityStats, ActivityStats]:
    """Pick pure-mode reference regions from the profiled run."""
    vliw = ActivityStats()
    cga = ActivityStats()
    for region in run.output.preamble_regions + run.output.data_regions:
        prof = region.profile
        if prof.mode == "VLIW":
            vliw.merge(prof.stats)
        elif prof.mode == "CGA":
            cga.merge(prof.stats)
    return vliw, cga


def calibrated_power_model(run: ReferenceRun) -> PowerModel:
    """The frozen power model, calibrated on this run's mode regions."""
    vliw, cga = _mode_reference_stats(run)
    return calibrate_from_reference(vliw, cga)


def table3_report(run: ReferenceRun) -> str:
    """Mode and application power vs Table 3."""
    model = calibrated_power_model(run)
    vliw, cga = _mode_reference_stats(run)
    vliw_w = model.report(vliw).active_w
    cga_w = model.report(cga).active_w
    total = ActivityStats()
    for region in run.output.preamble_regions + run.output.data_regions:
        total.merge(region.profile.stats)
    avg_w = model.report(total).active_w
    lines = [
        "%-9s %14s %18s %16s" % ("", "active (typ)", "leakage (typ)", "leakage (65C)"),
        "%-9s %11.1f mW %15.1f mW %13.1f mW   [paper %g mW]"
        % ("VLIW", 1e3 * vliw_w, 1e3 * LEAKAGE_TYPICAL_W, 1e3 * LEAKAGE_65C_W,
           1e3 * PAPER_VLIW_ACTIVE_W),
        "%-9s %11.1f mW %15.1f mW %13.1f mW   [paper %g mW]"
        % ("CGA", 1e3 * cga_w, 1e3 * LEAKAGE_TYPICAL_W, 1e3 * LEAKAGE_65C_W,
           1e3 * PAPER_CGA_ACTIVE_W),
        "%-9s %11.1f mW %15.1f mW %13.1f mW   [paper %g mW]"
        % ("Average", 1e3 * avg_w, 1e3 * LEAKAGE_TYPICAL_W, 1e3 * LEAKAGE_65C_W,
           1e3 * PAPER_AVERAGE_W),
    ]
    return "\n".join(lines)


def fig6_report(run: ReferenceRun) -> str:
    """Per-mode power breakdowns vs Fig 6a/6b."""
    model = calibrated_power_model(run)
    vliw, cga = _mode_reference_stats(run)
    out = ["Fig 6a — VLIW (non-kernel) mode power breakdown:"]
    out.append(model.report(vliw).summary())
    out.append("")
    out.append("Fig 6b — CGA (kernel) mode power breakdown:")
    out.append(model.report(cga).summary())
    return "\n".join(out)


# ----------------------------------------------------------------------
# Fig 5 — area.
# ----------------------------------------------------------------------


def fig5_report() -> str:
    """Area breakdown of the paper core."""
    report = estimate_area(paper_core())
    return report.summary() + "\n(paper: 5.79 mm^2; memories ~50%, CGA FUs 29%, VLIW 8%, global RF 5%, distributed RF 3%)"


# ----------------------------------------------------------------------
# Headline — GOPS, real time, 100 Mbps+.
# ----------------------------------------------------------------------


def headline_report(run: ReferenceRun) -> str:
    """Section 4's headline claims."""
    arch = paper_core()
    report = realtime_analysis(run.output)
    lines = [
        "peak compute: %.1f GOPS (16-bit) at %.0f MHz (paper 25.6 GOPS)"
        % (arch.peak_gops_16bit, arch.clock_hz / 1e6),
        report.summary(),
        "decoded-packet BER at the evaluated operating point: %.4f" % run.ber,
    ]
    return "\n".join(lines)
