"""Evaluation harness: regenerates every table and figure of the paper.

One entry point per experiment:

* :func:`~repro.eval.tables.table1_text` — the instruction set table,
  printed from the live ISA definition;
* :func:`~repro.eval.tables.table2_report` — kernel-by-kernel profiling
  of the MIMO-OFDM program, measured against the paper's rows;
* :func:`~repro.eval.tables.table3_report` — mode power, calibrated once
  and applied to the measured activity;
* :func:`~repro.eval.tables.fig5_report` — the area breakdown;
* :func:`~repro.eval.tables.fig6_report` — per-mode power breakdowns;
* :func:`~repro.eval.tables.headline_report` — 25.6 GOPS peak, real-time
  feasibility and the 100 Mbps+ throughput claim.

:func:`~repro.eval.tables.run_reference_modem` produces the packet run
all of the above share (the equivalent of the paper's profiled
reference program execution).
"""

from repro.eval.tables import (
    run_reference_modem,
    table1_text,
    table2_report,
    table3_report,
    fig5_report,
    fig6_report,
    headline_report,
)

__all__ = [
    "run_reference_modem",
    "table1_text",
    "table2_report",
    "table3_report",
    "fig5_report",
    "fig6_report",
    "headline_report",
]
