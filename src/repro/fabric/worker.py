"""The worker process side of the fabric.

Each worker is a forked process running :func:`worker_main`: it builds
(or inherits) a resident runtime, announces readiness, then serves
``(task_id, rx, n_symbols, detect_hint)`` requests from its task pipe
until it receives the ``None`` stop sentinel or the pipe closes.

Fork inheritance is the warm-up mechanism: the fabric constructs and
warms one **template** :class:`~repro.runtime.ModemRuntime` in the
parent (hitting the persistent schedule cache), and every worker —
including respawns after a crash — forks a copy of the fully *linked*
template, so spin-up performs zero ``ModuloScheduler.schedule`` calls
and zero region links for the warmed shapes.  The readiness message
carries the child-side schedule-cache miss delta so the fabric report
can prove it.

Heartbeats: with ``heartbeat_s > 0`` the worker runs a small daemon
thread that periodically sends ``(MSG_HEARTBEAT, index, payload)`` up
the result pipe — the payload is
:func:`repro.obs.heartbeat.heartbeat_payload`: ``task_seq`` (tasks
completed), ``host_cycles`` (cumulative simulated cycles), ``rss_bytes``
and the sender's ``monotonic_ts``, plus the runtime's cumulative
per-cause stall attribution.  Liveness therefore rides the *existing*
result-pipe multiplexing (no extra descriptors), and because the beat
comes from a separate thread, a worker that is busy simulating a long
packet still beats — only a genuinely stuck process (deadlock,
SIGSTOP) goes silent.  A ``threading.Lock`` serialises heartbeat and
result sends so interleaved writes cannot corrupt the pipe.

Crash isolation: every worker gets its own result pipe, and the first
thing a child does is close its inherited copies of every *other*
worker's pipe ends.  A SIGKILLed worker therefore drops the last write
end of its result pipe, the parent reads a clean EOF (even mid-message)
instead of deadlocking on a shared queue lock, and the surviving
workers are untouched.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Sequence

from repro.obs.heartbeat import heartbeat_payload

# Result-pipe message tags (tag, payload...) — see worker_main.
MSG_READY = "ready"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_BYE = "bye"
MSG_HEARTBEAT = "heartbeat"


def default_runner_factory(
    template: Optional[object],
    runtime_kwargs: Optional[dict],
    cache_dir: Optional[str],
) -> Callable[[], object]:
    """The runner factory used when the fabric serves real modem packets.

    Returns a zero-argument callable run *in the child*: it reuses the
    forked *template* runtime when one exists (zero spin-up work) and
    otherwise builds a fresh :class:`~repro.runtime.ModemRuntime`
    against the persistent schedule cache.
    """

    def build():
        if template is not None:
            return template
        from repro.runtime import ModemRuntime

        return ModemRuntime(cache_dir=cache_dir, **(runtime_kwargs or {}))

    return build


def _schedule_misses() -> int:
    from repro.compiler.linker import schedule_cache_stats

    return int(schedule_cache_stats().get("misses", 0))


def _codegen_compilations() -> int:
    from repro.sim.codegen import codegen_stats

    return int(codegen_stats().get("compilations", 0))


def _heartbeat_loop(
    stop: threading.Event,
    send_lock: threading.Lock,
    result_conn,
    index: int,
    interval_s: float,
    runner: object,
    progress: dict,
) -> None:
    """Beat every *interval_s* until stopped or the pipe goes away.

    Runs as a daemon thread next to the serve loop; *progress* is the
    loop's mutable ``{"task_seq": n}`` view (GIL-atomic int reads).  The
    runner's telemetry is duck-typed (``host_cycles``/``stall_causes``)
    so stub runners in tests beat too, just with zeroed cycle fields.
    Any pipe error ends the thread quietly — heartbeat loss must never
    crash a worker that could still serve.
    """
    while not stop.wait(interval_s):
        try:
            payload = heartbeat_payload(
                task_seq=progress["task_seq"],
                host_cycles=int(getattr(runner, "host_cycles", 0) or 0),
                stall_causes=dict(getattr(runner, "stall_causes", None) or {}),
            )
            with send_lock:
                result_conn.send((MSG_HEARTBEAT, index, payload))
        except (OSError, BrokenPipeError, ValueError):
            return  # parent gone or pipe closed: nothing left to tell


def _serve_batch(
    runner, send_lock, result_conn, task_ids, rxs, n_symbols, detect_hint
) -> None:
    """Run one coalesced dispatch through the batched runtime.

    Every task still gets its own result message (the parent's
    exactly-once accounting is per task id); the wall time of the whole
    batch is split evenly across its tasks so per-slot ``busy_s`` keeps
    summing to real busy time.  A batch-level failure — the runner
    itself raising, not a per-packet error — is reported against every
    task in the dispatch.
    """
    t0 = time.perf_counter()
    try:
        batch_results = runner.run_batch_results(
            rxs, n_symbols=n_symbols, detect_hint=detect_hint
        )
    except Exception as exc:
        dt = (time.perf_counter() - t0) / len(task_ids)
        for task_id in task_ids:
            with send_lock:
                result_conn.send(
                    (MSG_ERROR, task_id, dt, "%s: %s" % (type(exc).__name__, exc))
                )
        return
    dt = (time.perf_counter() - t0) / len(task_ids)
    for task_id, result in zip(task_ids, batch_results):
        if result.error is not None:
            err = result.error
            with send_lock:
                result_conn.send(
                    (MSG_ERROR, task_id, dt, "%s: %s" % (type(err).__name__, err))
                )
        else:
            with send_lock:
                result_conn.send((MSG_RESULT, task_id, dt, result.output))


def worker_main(
    index: int,
    task_conn,
    result_conn,
    close_conns: Sequence[object],
    runner_factory: Callable[[], object],
    heartbeat_s: float = 0.0,
) -> None:
    """Body of one worker process (the ``Process`` target)."""
    for conn in close_conns:
        try:
            conn.close()
        except OSError:
            pass
    misses_before = _schedule_misses()
    codegen_before = _codegen_compilations()
    t0 = time.perf_counter()
    runner = runner_factory()
    result_conn.send(
        (
            MSG_READY,
            index,
            {
                "spinup_s": time.perf_counter() - t0,
                "schedule_misses": _schedule_misses() - misses_before,
                "codegen_compilations": _codegen_compilations() - codegen_before,
                "batched": hasattr(runner, "run_batch_results"),
            },
        )
    )
    send_lock = threading.Lock()
    progress = {"task_seq": 0}
    stop_beating = threading.Event()
    if heartbeat_s and heartbeat_s > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(stop_beating, send_lock, result_conn, index, float(heartbeat_s),
                  runner, progress),
            name="heartbeat-%d" % index,
            daemon=True,
        ).start()
    while True:
        try:
            msg = task_conn.recv()
        except (EOFError, OSError):
            break  # parent went away: exit quietly
        if msg is None:
            try:
                with send_lock:
                    result_conn.send((MSG_BYE, index, None))
            except (OSError, BrokenPipeError):
                pass
            break
        # Batch-drain dispatches arrive as (task_id_tuple, rx_list, ...);
        # single-task messages keep the original (task_id, rx, ...) form.
        if isinstance(msg[0], tuple):
            task_ids, rxs, n_symbols, detect_hint = msg
        else:
            task_ids, rxs, n_symbols, detect_hint = (msg[0],), [msg[1]], msg[2], msg[3]
        if len(task_ids) > 1 and hasattr(runner, "run_batch_results"):
            _serve_batch(
                runner, send_lock, result_conn, task_ids, rxs, n_symbols, detect_hint
            )
            progress["task_seq"] += len(task_ids)
            continue
        for task_id, rx in zip(task_ids, rxs):
            t0 = time.perf_counter()
            try:
                out = runner.run_packet(
                    rx, n_symbols=n_symbols, detect_hint=detect_hint
                )
            except Exception as exc:  # task-level fault: report, keep serving
                dt = time.perf_counter() - t0
                with send_lock:
                    result_conn.send(
                        (MSG_ERROR, task_id, dt, "%s: %s" % (type(exc).__name__, exc))
                    )
            else:
                dt = time.perf_counter() - t0
                with send_lock:
                    result_conn.send((MSG_RESULT, task_id, dt, out))
            progress["task_seq"] += 1
    stop_beating.set()
    try:
        result_conn.close()
        task_conn.close()
    except OSError:
        pass
