"""Packet-to-worker routing: pure bookkeeping, no processes.

The dispatcher sees every worker as a :class:`WorkerState` — parent-side
pending queue, in-flight set, the packet shapes the worker already holds
linked programs for — and picks a slot for each incoming packet.  It is
deliberately process-free so scheduling policies are unit-testable
without spawning anything; :class:`repro.fabric.fabric.Fabric` owns the
actual pipes and processes.

Policies
--------
``round_robin``
    Cycle through the worker slots, skipping full or dead ones.
``least_loaded``
    Pick the alive worker with the smallest load (pending + in-flight),
    lowest index on ties.
``shape_affinity``
    Prefer workers that already hold the packet's linked shape (each
    new shape costs a worker one re-link pass, so routing same-shape
    packets to the same slots keeps the compile-once property hot);
    falls back to ``least_loaded`` for shapes nobody holds yet.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Sequence, Tuple

#: The routing policies :class:`Dispatcher` accepts.
POLICIES = ("round_robin", "least_loaded", "shape_affinity")


@dataclass
class FabricTask:
    """One submitted packet travelling through the fabric."""

    task_id: int
    rx: object  # (2, n_samples) complex ndarray (opaque to the dispatcher)
    n_symbols: int
    detect_hint: Optional[int]
    shape: Tuple[int, int]
    submit_t: float
    deadline_t: Optional[float] = None
    #: Times this task was re-queued after a worker crash.
    requeues: int = 0


@dataclass
class WorkerState:
    """Dispatcher-visible view of one worker slot."""

    index: int
    queue_depth: int
    pending: Deque[FabricTask] = field(default_factory=deque)
    inflight: Dict[int, FabricTask] = field(default_factory=dict)
    #: Packet shapes this slot has been assigned (== shapes it holds or
    #: is about to hold linked programs for).
    shapes: set = field(default_factory=set)
    alive: bool = True
    stopping: bool = False
    # -- per-slot counters (survive respawns of the same slot) ---------
    completed: int = 0
    crashes: int = 0
    busy_s: float = 0.0
    spinup_s: Optional[float] = None
    spinup_schedule_misses: Optional[int] = None
    spinup_codegen_compilations: Optional[int] = None
    #: Whether this slot's runner supports batched execution (from the
    #: readiness message; None until the slot reported in).
    spinup_batched: Optional[bool] = None
    #: Batch-drain dispatches sent to this slot, and the tasks they
    #: carried (occupancy = batched_tasks / (batches * fabric batch)).
    batches: int = 0
    batched_tasks: int = 0
    pid: Optional[int] = None
    # -- liveness: the slot's last heartbeat, parent-side --------------
    #: Parent monotonic clock at the last heartbeat (None: none yet
    #: this incarnation).
    last_heartbeat_ts: Optional[float] = None
    #: Heartbeats received across all incarnations of this slot.
    heartbeats: int = 0
    #: Tasks the worker reported completed in its last heartbeat.
    hb_task_seq: Optional[int] = None
    #: Cumulative simulated cycles per the last heartbeat.
    hb_host_cycles: int = 0
    #: Worker resident set size per the last heartbeat.
    hb_rss_bytes: int = 0
    #: Cumulative per-cause stall cycles per the last heartbeat.
    hb_stall_causes: Dict[str, int] = field(default_factory=dict)

    def clear_heartbeat(self) -> None:
        """Forget the dead incarnation's liveness state (on respawn)."""
        self.last_heartbeat_ts = None
        self.hb_task_seq = None
        self.hb_host_cycles = 0
        self.hb_rss_bytes = 0
        self.hb_stall_causes = {}

    @property
    def load(self) -> int:
        """Packets this slot is responsible for right now."""
        return len(self.pending) + len(self.inflight)

    @property
    def has_capacity(self) -> bool:
        return self.alive and not self.stopping and self.load < self.queue_depth

    def assign(self, task: FabricTask) -> None:
        self.pending.append(task)
        self.shapes.add(task.shape)


class Dispatcher:
    """Select a worker slot for each packet under one routing policy."""

    def __init__(self, policy: str = "round_robin") -> None:
        if policy not in POLICIES:
            raise ValueError(
                "unknown dispatch policy %r; expected one of %s" % (policy, list(POLICIES))
            )
        self.policy = policy
        self._rr_next = 0

    def select(
        self, workers: Sequence[WorkerState], shape: Optional[Tuple[int, int]] = None
    ) -> Optional[WorkerState]:
        """The slot for a *shape* packet, or ``None`` when all are full.

        ``None`` is the backpressure signal: the fabric then blocks,
        drops or deadline-rejects according to its submission mode.
        """
        eligible = [w for w in workers if w.has_capacity]
        if not eligible:
            return None
        if self.policy == "round_robin":
            n = len(workers)
            for step in range(n):
                candidate = workers[(self._rr_next + step) % n]
                if candidate.has_capacity:
                    self._rr_next = (candidate.index + 1) % n
                    return candidate
            return None  # unreachable: eligible is non-empty
        if self.policy == "shape_affinity" and shape is not None:
            holders = [w for w in eligible if shape in w.shapes]
            if holders:
                return min(holders, key=lambda w: (w.load, w.index))
        return min(eligible, key=lambda w: (w.load, w.index))

    @staticmethod
    def requeue_select(
        workers: Sequence[WorkerState], shape: Optional[Tuple[int, int]] = None
    ) -> Optional[WorkerState]:
        """Where a crash-orphaned packet goes: capacity limits waived.

        Requeued packets must not be shed — they were already accepted —
        so the bounded-queue check is intentionally skipped; the alive
        slot with the smallest load wins (same-shape holders first).
        """
        alive = [w for w in workers if w.alive and not w.stopping]
        if not alive:
            return None
        if shape is not None:
            holders = [w for w in alive if shape in w.shapes]
            if holders:
                return min(holders, key=lambda w: (w.load, w.index))
        return min(alive, key=lambda w: (w.load, w.index))
