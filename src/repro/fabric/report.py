"""Fabric observability: latency percentiles, JSON and Prometheus views.

The fabric report is the serving-layer sibling of the per-run trace
report (``repro.trace.report``): fabric-level counters (submissions,
drops, rejections, requeues, respawns), per-worker occupancy and
spin-up provenance, and end-to-end latency percentiles.  The JSON form
is embedded in ``BENCH_fabric_scaling.json`` and validated in CI;
:func:`fabric_prometheus_text` renders the same numbers in the
Prometheus exposition format used by ``repro.trace.export``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence

#: Format identifier embedded in every fabric report.
FABRIC_REPORT_SCHEMA = "repro.fabric_report/v1"

_PREFIX = "repro_fabric_"


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in 0..100) of *samples*.

    Nearest-rank keeps every reported number an actually-observed
    latency (no interpolation between samples), which is what you want
    when the tail is the story.  Raises on an empty sample list.
    """
    if not samples:
        raise ValueError("percentile of an empty sample list")
    if not 0 <= q <= 100:
        raise ValueError("percentile q=%r outside 0..100" % (q,))
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def latency_percentiles(samples: Sequence[float]) -> Dict[str, float]:
    """The standard p50/p95/p99 triple from a latency sample list."""
    return {
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
    }


def latency_summary(samples: Sequence[float]) -> Dict[str, float]:
    """Percentiles plus count/mean/max; zeros when nothing completed."""
    if not samples:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    summary = {"count": len(samples)}
    summary.update(latency_percentiles(samples))
    summary["mean"] = float(sum(samples) / len(samples))
    summary["max"] = float(max(samples))
    return summary


def _sample(name: str, value, labels: Optional[Dict[str, object]] = None) -> str:
    if labels:
        inner = ",".join('%s="%s"' % (k, v) for k, v in sorted(labels.items()))
        return "%s%s{%s} %s" % (_PREFIX, name, inner, value)
    return "%s%s %s" % (_PREFIX, name, value)


def fabric_prometheus_text(report: dict) -> str:
    """Render a fabric report dict as Prometheus exposition text."""
    lines: List[str] = []
    for name, value in sorted(report.get("counters", {}).items()):
        lines.append("# TYPE %s%s counter" % (_PREFIX, name))
        lines.append(_sample(name, value))
    gauges = [
        ("workers", report.get("workers")),
        ("outstanding", report.get("outstanding")),
        ("packets_per_sec", report.get("packets_per_sec")),
        ("wall_seconds", report.get("wall_s")),
    ]
    for name, value in gauges:
        if value is None:
            continue
        lines.append("# TYPE %s%s gauge" % (_PREFIX, name))
        lines.append(_sample(name, value))
    latency = report.get("latency_s", {})
    # Prometheus summary convention: fractional quantile labels.
    for key, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
        if key in latency:
            lines.append(
                _sample("latency_seconds", latency[key], {"quantile": quantile})
            )
    for worker in report.get("per_worker", []):
        labels = {"worker": worker["index"]}
        lines.append(_sample("worker_completed", worker["completed"], labels))
        lines.append(_sample("worker_occupancy", worker["occupancy"], labels))
        lines.append(_sample("worker_queue_depth", worker["load"], labels))
        lines.append(_sample("worker_crashes", worker["crashes"], labels))
    return "\n".join(lines) + "\n"


def fabric_report_json(report: dict) -> str:
    """The fabric report as pretty-printed JSON text."""
    return json.dumps(report, indent=1, sort_keys=True)
