"""Fabric observability: latency percentiles, JSON and Prometheus views.

The fabric report is the serving-layer sibling of the per-run trace
report (``repro.trace.report``): fabric-level counters (submissions,
drops, rejections, requeues, respawns), per-worker occupancy and
spin-up provenance, heartbeat/watchdog liveness, rolling-window
aggregates and end-to-end latency percentiles.  The JSON form is
embedded in ``BENCH_fabric_scaling.json`` and validated in CI;
:func:`fabric_prometheus_text` renders the same numbers in the
Prometheus exposition format, sharing the escaping-correct sample and
``# HELP``/``# TYPE`` builders in :mod:`repro.obs.prom` with
``repro.trace.export``.

The nearest-rank :func:`percentile` now lives in
:mod:`repro.obs.window` (the rolling windows need it and ``repro.obs``
is a stdlib-only leaf); it is re-exported here so existing importers —
``benchmarks/reporting.py``, tests — keep working unchanged.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.obs.prom import prom_header, prom_sample
from repro.obs.window import percentile

__all__ = [
    "COMPATIBLE_REPORT_SCHEMAS",
    "FABRIC_REPORT_SCHEMA",
    "fabric_prometheus_text",
    "fabric_report_json",
    "latency_percentiles",
    "latency_summary",
    "percentile",
    "scenario_accounting",
]

#: Format identifier embedded in every fabric report.  v2 added the
#: ``ingest`` section (None unless an ``IngestServer`` is attached);
#: v3 added batch-drain accounting: a top-level ``batch`` width and
#: per-worker ``batches`` / ``batched_tasks`` / ``batch_occupancy`` /
#: ``spinup_batched`` (all None/absent when batching is off).
FABRIC_REPORT_SCHEMA = "repro.fabric_report/v3"

#: Prior revisions attach-mode tooling still accepts.
COMPATIBLE_REPORT_SCHEMAS = (
    "repro.fabric_report/v1",
    "repro.fabric_report/v2",
    FABRIC_REPORT_SCHEMA,
)

_PREFIX = "repro_fabric_"
_INGEST_PREFIX = "repro_ingest_"


def latency_percentiles(samples: Sequence[float]) -> Dict[str, float]:
    """The standard p50/p95/p99 triple from a latency sample list."""
    return {
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
    }


def latency_summary(samples: Sequence[float]) -> Dict[str, float]:
    """Percentiles plus count/mean/max; zeros when nothing completed."""
    if not samples:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    summary = {"count": len(samples)}
    summary.update(latency_percentiles(samples))
    summary["mean"] = float(sum(samples) / len(samples))
    summary["max"] = float(max(samples))
    return summary


def scenario_accounting(results, truth) -> Dict[str, Dict[str, float]]:
    """Per-scenario link-quality counters for a completed stream run.

    *results* maps task ids to fabric result objects (``.bits``),
    *truth* maps the same ids to their ground-truth
    :class:`~repro.runtime.workload.PacketCase` (``stream_truth``'s
    output).  Packets with no scenario tag are grouped under
    ``"baseline"``.  Each bucket carries ``packets``, ``bits``,
    ``bit_errors``, ``ber`` and ``errors`` (packets whose worker raised
    or whose decode never completed — excluded from the BER bits).
    """
    buckets: Dict[str, Dict[str, float]] = {}
    for task_id, case in truth.items():
        name = case.scenario or "baseline"
        bucket = buckets.setdefault(
            name,
            {"packets": 0, "bits": 0, "bit_errors": 0, "ber": 0.0, "errors": 0},
        )
        bucket["packets"] += 1
        result = results.get(task_id)
        decoded = getattr(result, "bits", None)
        if decoded is None:
            bucket["errors"] += 1
            continue
        n = min(len(decoded), len(case.bits))
        errs = int(sum(1 for a, b in zip(decoded[:n], case.bits[:n]) if a != b))
        errs += max(len(case.bits) - n, 0)
        bucket["bits"] += len(case.bits)
        bucket["bit_errors"] += errs
    for bucket in buckets.values():
        if bucket["bits"]:
            bucket["ber"] = bucket["bit_errors"] / bucket["bits"]
    return buckets


# ----------------------------------------------------------------------
# Prometheus rendering.
# ----------------------------------------------------------------------

_COUNTER_HELP = {
    "submitted": "Packets accepted by Fabric.submit().",
    "completed": "Packet results recorded (including task errors).",
    "dropped": "Packets shed immediately in drop backpressure mode.",
    "rejected": "Packets shed by a deadline, at submit or while queued.",
    "requeued": "Crash-orphaned packets moved onto surviving workers.",
    "duplicates": "Results discarded by the exactly-once guard.",
    "task_errors": "Packets whose worker raised; the worker kept serving.",
    "worker_crashes": "Worker process deaths noticed by the fabric.",
    "respawns": "Worker slots respawned from the warm template.",
    "heartbeats": "Worker heartbeat messages received by the fabric.",
    "watchdog_flags": "Worker slots flagged stuck by the watchdog.",
    "watchdog_kills": "Stuck workers killed by watchdog escalation.",
}

_GAUGE_HELP = {
    "workers": "Configured worker slots in this fabric.",
    "batch": "Batch-drain width (1 = per-packet dispatch).",
    "outstanding": "Accepted packets not yet completed (pending + in-flight).",
    "packets_per_sec": "Lifetime completed-packet throughput.",
    "wall_seconds": "Seconds since the fabric started.",
    "heartbeat_interval_seconds": "Configured worker heartbeat period (0 = disabled).",
}

_WORKER_GAUGES = (
    ("worker_completed", "completed", "Packets completed by this worker slot."),
    ("worker_occupancy", "occupancy", "Busy-time fraction of this worker slot."),
    ("worker_queue_depth", "load", "Pending plus in-flight packets on this slot."),
    ("worker_crashes", "crashes", "Crashes observed on this worker slot."),
    ("worker_heartbeats", "heartbeats", "Heartbeats received from this slot."),
    ("worker_task_seq", "task_seq", "Tasks completed per the slot's last heartbeat."),
    ("worker_host_cycles", "host_cycles",
     "Cumulative simulated cycles per the slot's last heartbeat."),
    ("worker_rss_bytes", "rss_bytes",
     "Worker resident set size per its last heartbeat."),
    ("worker_batches", "batches",
     "Batch-drain dispatches sent to this worker slot."),
    ("worker_batched_tasks", "batched_tasks",
     "Tasks carried by this slot's batch-drain dispatches."),
    ("worker_batch_occupancy", "batch_occupancy",
     "Mean fill fraction of this slot's batch dispatches "
     "(batched_tasks / (batches * batch width))."),
)


def _family(lines: List[str], name: str, mtype: str, help_text: str) -> str:
    full = _PREFIX + name
    lines.extend(prom_header(full, mtype, help_text))
    return full


def fabric_prometheus_text(report: dict) -> str:
    """Render a fabric report dict as Prometheus exposition text."""
    lines: List[str] = []
    for name, value in sorted(report.get("counters", {}).items()):
        full = _family(
            lines, name, "counter", _COUNTER_HELP.get(name, "Fabric counter.")
        )
        lines.append(prom_sample(full, value))
    gauges = [
        ("workers", report.get("workers")),
        ("batch", report.get("batch")),
        ("outstanding", report.get("outstanding")),
        ("packets_per_sec", report.get("packets_per_sec")),
        ("wall_seconds", report.get("wall_s")),
        ("heartbeat_interval_seconds", report.get("heartbeat_s")),
    ]
    for name, value in gauges:
        if value is None:
            continue
        full = _family(lines, name, "gauge", _GAUGE_HELP.get(name, "Fabric gauge."))
        lines.append(prom_sample(full, value))

    latency = report.get("latency_s", {})
    if latency:
        full = _family(
            lines, "latency_seconds", "summary",
            "End-to-end packet latency (lifetime, nearest-rank quantiles).",
        )
        # Prometheus summary convention: fractional quantile labels.
        for key, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            if key in latency:
                lines.append(
                    prom_sample(full, latency[key], {"quantile": quantile})
                )
        count = latency.get("count", 0)
        lines.append(prom_sample(full + "_count", count))
        lines.append(
            prom_sample(full + "_sum", round(latency.get("mean", 0.0) * count, 6))
        )

    _render_window(lines, report.get("window"))
    _render_workers(lines, report.get("per_worker", []))
    _render_cache(lines, report.get("cache"))
    _render_scenarios(lines, report.get("scenarios"))
    _render_ingest(lines, report.get("ingest"))
    return "\n".join(lines) + "\n"


def _render_window(lines: List[str], window) -> None:
    """The rolling-window families: last-N-seconds behaviour, not lifetime."""
    if not window:
        return
    full = _family(
        lines, "window_seconds", "gauge", "Rolling aggregation window length."
    )
    lines.append(prom_sample(full, window.get("window_s")))
    full = _family(
        lines, "window_events", "gauge",
        "Fabric events that occurred within the rolling window, by kind.",
    )
    for kind, value in sorted(window.get("counts", {}).items()):
        lines.append(prom_sample(full, value, {"kind": kind}))
    simple = [
        ("window_packets_per_sec", window.get("throughput_pps"),
         "Completed-packet throughput over the rolling window."),
        ("window_offered_per_sec", window.get("offered_pps"),
         "Accepted-submission rate over the rolling window."),
        ("window_shed", window.get("shed"),
         "Packets shed (dropped + rejected) within the rolling window."),
        ("window_queue_depth_mean", window.get("queue_depth", {}).get("mean"),
         "Mean outstanding packets sampled over the rolling window."),
        ("window_inflight_mean", window.get("inflight", {}).get("mean"),
         "Mean in-pipe packets sampled over the rolling window."),
    ]
    for name, value, help_text in simple:
        if value is None:
            continue
        full = _family(lines, name, "gauge", help_text)
        lines.append(prom_sample(full, value))
    latency = window.get("latency_s", {})
    if latency:
        full = _family(
            lines, "window_latency_seconds", "gauge",
            "Windowed nearest-rank latency quantiles (fractional quantile label).",
        )
        for key, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            if key in latency:
                lines.append(prom_sample(full, latency[key], {"quantile": quantile}))


def _render_workers(lines: List[str], per_worker: List[dict]) -> None:
    if not per_worker:
        return
    for name, key, help_text in _WORKER_GAUGES:
        if not any(worker.get(key) is not None for worker in per_worker):
            continue
        full = _family(lines, name, "gauge", help_text)
        for worker in per_worker:
            value = worker.get(key)
            if value is None:
                continue
            lines.append(prom_sample(full, value, {"worker": worker["index"]}))
    if any(worker.get("last_heartbeat_age_s") is not None for worker in per_worker):
        full = _family(
            lines, "worker_heartbeat_age_seconds", "gauge",
            "Seconds since this slot's last heartbeat (at report time).",
        )
        for worker in per_worker:
            age = worker.get("last_heartbeat_age_s")
            if age is not None:
                lines.append(prom_sample(full, age, {"worker": worker["index"]}))
    if any(worker.get("health") for worker in per_worker):
        full = _family(
            lines, "worker_healthy", "gauge",
            "1 when the slot's health verdict is pass, else 0.",
        )
        for worker in per_worker:
            verdict = worker.get("health")
            if verdict:
                lines.append(
                    prom_sample(
                        full, 1 if verdict == "pass" else 0,
                        {"worker": worker["index"], "verdict": verdict},
                    )
                )
    if any(worker.get("stall_causes") for worker in per_worker):
        full = _family(
            lines, "worker_stall_cycles", "gauge",
            "Cumulative simulated stall cycles by cause, per the slot's "
            "last heartbeat.",
        )
        for worker in per_worker:
            for cause, cycles in sorted((worker.get("stall_causes") or {}).items()):
                lines.append(
                    prom_sample(
                        full, cycles, {"worker": worker["index"], "cause": cause}
                    )
                )


_SCENARIO_FAMILIES = (
    ("scenario_packets", "packets", "counter",
     "Packets served per impairment scenario."),
    ("scenario_bits", "bits", "counter",
     "Payload bits checked against ground truth per scenario."),
    ("scenario_bit_errors", "bit_errors", "counter",
     "Decoded bit errors per scenario."),
    ("scenario_ber", "ber", "gauge",
     "Bit error rate per scenario over the whole run."),
    ("scenario_task_errors", "errors", "counter",
     "Packets per scenario whose decode raised or never completed."),
)


def _render_scenarios(lines: List[str], scenarios) -> None:
    """Per-scenario link-quality counters (``scenario_accounting`` output)."""
    if not scenarios:
        return
    for name, key, mtype, help_text in _SCENARIO_FAMILIES:
        full = _family(lines, name, mtype, help_text)
        for scenario, bucket in sorted(scenarios.items()):
            lines.append(
                prom_sample(full, bucket.get(key, 0), {"scenario": scenario})
            )


#: Per-stream ingest counter families: (suffix, report key, HELP).
_INGEST_STREAM_COUNTERS = (
    ("received", "received", "Data datagrams received for this stream."),
    ("bytes", "bytes", "Payload bytes received for this stream."),
    ("reassembled", "reassembled",
     "Packets fully reassembled and decoded for this stream."),
    ("released", "released",
     "Packets released in sequence order toward the fabric."),
    ("submitted", "submitted",
     "Released packets the fabric accepted for this stream."),
    ("out_of_order", "out_of_order",
     "Datagrams that arrived behind a later (seq, fragment) key."),
    ("duplicates", "duplicates",
     "Duplicate datagrams discarded during reassembly."),
    ("stale", "stale",
     "Datagrams for sequences already released or written off."),
    ("gaps", "gaps",
     "Sequence numbers declared lost with no datagram ever seen."),
    ("resets", "resets",
     "Stream state resets caused by a session nonce change."),
)

#: ``repro_ingest_dropped{stream,reason}``: every way a *seen* packet
#: can fail to reach a worker, by typed reason.
_INGEST_DROP_REASONS = (
    ("incomplete", "incomplete"),  # lost a fragment inside the window
    ("corrupt", "corrupt"),
    ("shed_overflow", "overflow"),
    ("shed_dropped", "backpressure_dropped"),
    ("shed_rejected", "backpressure_rejected"),
)


def _render_ingest(lines: List[str], ingest) -> None:
    """The ``repro_ingest_*`` families (attached ``IngestServer`` only)."""
    if not ingest:
        return
    full = _INGEST_PREFIX + "listener_alive"
    lines.extend(prom_header(
        full, "gauge", "1 while the ingest listener thread serves its sockets."
    ))
    lines.append(prom_sample(full, 1 if ingest.get("listening") else 0))
    full = _INGEST_PREFIX + "datagrams"
    lines.extend(prom_header(
        full, "counter", "Datagrams the listener pulled off its sockets."
    ))
    lines.append(prom_sample(full, ingest.get("datagrams", 0)))
    full = _INGEST_PREFIX + "staged"
    lines.extend(prom_header(
        full, "gauge",
        "Reassembled packets staged, awaiting submission into the fabric.",
    ))
    lines.append(prom_sample(full, ingest.get("staged", 0)))
    malformed = ingest.get("malformed") or {}
    if malformed:
        full = _INGEST_PREFIX + "malformed"
        lines.extend(prom_header(
            full, "counter",
            "Datagrams rejected before stream attribution, by parse failure.",
        ))
        for kind, value in sorted(malformed.items()):
            lines.append(prom_sample(full, value, {"kind": kind}))
    evicted = ingest.get("evicted") or {}
    if evicted.get("streams"):
        full = _INGEST_PREFIX + "evicted_streams"
        lines.extend(prom_header(
            full, "counter",
            "Streams evicted under stream-id churn; their lifetime "
            "counters are folded into the report's aggregate bucket.",
        ))
        lines.append(prom_sample(full, evicted["streams"]))
    streams = ingest.get("streams") or {}
    if not streams:
        return
    for suffix, key, help_text in _INGEST_STREAM_COUNTERS:
        full = _INGEST_PREFIX + suffix
        lines.extend(prom_header(full, "counter", help_text))
        for stream_id, view in sorted(streams.items(), key=lambda kv: int(kv[0])):
            lines.append(prom_sample(full, view.get(key, 0), {"stream": stream_id}))
    full = _INGEST_PREFIX + "dropped"
    lines.extend(prom_header(
        full, "counter",
        "Packets that never reached a worker, by stream and typed reason "
        "(fragment loss, corruption, staging overflow, fabric backpressure).",
    ))
    for stream_id, view in sorted(streams.items(), key=lambda kv: int(kv[0])):
        for key, reason in _INGEST_DROP_REASONS:
            lines.append(
                prom_sample(
                    full, view.get(key, 0), {"stream": stream_id, "reason": reason}
                )
            )


def _render_cache(lines: List[str], cache) -> None:
    """Schedule-cache and codegen counters as one labelled family."""
    if not cache:
        return
    full = _family(
        lines, "cache_events", "counter",
        "Parent-side schedule-cache and codegen cache events "
        "(hit/miss/heal/compile counters).",
    )
    for cache_name, counters in sorted(cache.items()):
        for event, value in sorted((counters or {}).items()):
            lines.append(
                prom_sample(full, value, {"cache": cache_name, "event": event})
            )


def fabric_report_json(report: dict) -> str:
    """The fabric report as pretty-printed JSON text."""
    return json.dumps(report, indent=1, sort_keys=True)
