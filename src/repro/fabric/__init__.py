"""Multi-core streaming fabric over the compile-once modem runtime.

The paper's processor is one slave core in a multi-core baseband
platform (Section 2.A); production systems scale *out* by tiling many
such cores behind a dispatcher (cf. the 1024-core shared-L1 SDR cluster
and the hierarchical dataflow baseband architectures in PAPERS.md).
``repro.fabric`` models that serving layer in software:

- :class:`Fabric` owns N worker processes, each a resident
  :class:`~repro.runtime.ModemRuntime` forked from a pre-warmed parent
  template so spin-up performs zero ``ModuloScheduler.schedule`` calls;
- :class:`Dispatcher` routes packets with pluggable policies
  (``round_robin``, ``least_loaded``, ``shape_affinity``);
- submission queues are bounded with explicit backpressure modes
  (``block``, ``drop``, ``deadline``), every shed packet accounted;
- a crashed (or SIGKILLed) worker is detected via its process sentinel,
  its in-flight packets are requeued to surviving workers — results
  stay bit-identical to a serial :class:`~repro.modem.receiver.SimReceiver`
  run — and the slot is respawned;
- :mod:`repro.fabric.stream` drives Poisson packet arrivals with mixed
  CFO/SNR/shape, and :mod:`repro.fabric.report` renders per-worker and
  fabric-level counters plus latency percentiles as JSON or Prometheus
  text.
"""

from repro.fabric.dispatcher import POLICIES, Dispatcher, FabricTask, WorkerState
from repro.fabric.fabric import (
    BACKPRESSURE_MODES,
    DeadlineExceeded,
    Fabric,
    FabricClosed,
    FabricError,
    FabricTaskError,
    SubmitOutcome,
    SubmitTimeout,
)
from repro.fabric.report import (
    COMPATIBLE_REPORT_SCHEMAS,
    FABRIC_REPORT_SCHEMA,
    fabric_prometheus_text,
    fabric_report_json,
    latency_percentiles,
    latency_summary,
    percentile,
    scenario_accounting,
)
from repro.fabric.stream import (
    DEFAULT_SCENARIO_MIX,
    StreamEvent,
    mixed_scenario_stream,
    poisson_stream,
    run_stream,
    stream_truth,
)

__all__ = [
    "BACKPRESSURE_MODES",
    "COMPATIBLE_REPORT_SCHEMAS",
    "DEFAULT_SCENARIO_MIX",
    "DeadlineExceeded",
    "Dispatcher",
    "FABRIC_REPORT_SCHEMA",
    "Fabric",
    "FabricClosed",
    "FabricError",
    "FabricTask",
    "FabricTaskError",
    "POLICIES",
    "StreamEvent",
    "SubmitOutcome",
    "SubmitTimeout",
    "WorkerState",
    "fabric_prometheus_text",
    "fabric_report_json",
    "latency_percentiles",
    "latency_summary",
    "mixed_scenario_stream",
    "percentile",
    "poisson_stream",
    "run_stream",
    "scenario_accounting",
    "stream_truth",
]
