"""The fabric: N resident modem workers behind a dispatcher.

Process model
-------------
Workers are ``fork``-started processes, each wired to the parent by two
one-way pipes (tasks down, results up) plus its process *sentinel*.
The parent multiplexes all of them with
:func:`multiprocessing.connection.wait`, so a single-threaded pump loop
observes completions and deaths in one place.  Queues are parent-side:
each slot holds at most ``queue_depth`` accepted packets (pending +
in-flight) and at most ``max_inflight`` are ever inside the pipe, so a
crash can orphan only a bounded, exactly-known set of packets.

Backpressure (all shedding is accounted in the fabric counters):

``block``
    ``submit`` pumps completions until a slot frees (or
    ``submit_timeout_s`` expires, raising :class:`SubmitTimeout`).
``drop``
    ``submit`` returns ``None`` immediately and increments ``dropped``.
``deadline``
    ``submit`` blocks only until the packet's deadline; packets that
    cannot be accepted in time are rejected (``submit`` returns
    ``None``), and an accepted packet whose deadline expires while it
    is still queued resolves to a :class:`DeadlineExceeded` result.

Crash recovery: a dead worker is noticed via its sentinel (or a result
pipe EOF), its buffered results are drained first, every still-orphaned
packet is requeued to surviving slots (capacity waived — they were
already accepted), and the slot is respawned from the parent's warm
template.  Packet results are recorded exactly once by task id, so a
kill-respawn cycle loses and duplicates nothing.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from multiprocessing import connection
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.compiler.linker import schedule_cache_dir, schedule_cache_stats
from repro.fabric.dispatcher import Dispatcher, FabricTask, WorkerState
from repro.fabric.report import FABRIC_REPORT_SCHEMA, latency_summary
from repro.fabric.worker import (
    MSG_BYE,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_READY,
    MSG_RESULT,
    default_runner_factory,
    worker_main,
)
from repro.obs.heartbeat import Watchdog
from repro.obs.window import EventLog, MetricsWindow
from repro.trace.tracer import NULL_TRACER, Tracer

#: Supported submission backpressure modes.
BACKPRESSURE_MODES = ("block", "drop", "deadline")


class FabricError(RuntimeError):
    """Base class for fabric-level failures."""


class FabricClosed(FabricError):
    """The fabric was used after shutdown (or before start)."""


class SubmitTimeout(FabricError):
    """``block`` submission could not find queue space in time.

    Carries the facts as attributes (``timeout_s``, ``outstanding``,
    ``workers``) so callers — the ingest layer above all — never parse
    the message string.
    """

    def __init__(self, timeout_s: float, outstanding: int, workers: int) -> None:
        super().__init__(
            "no queue space within %.1fs (%d outstanding across %d workers)"
            % (timeout_s, outstanding, workers)
        )
        self.timeout_s = timeout_s
        self.outstanding = outstanding
        self.workers = workers


@dataclass(frozen=True)
class SubmitOutcome:
    """The typed result of one :meth:`Fabric.offer` call.

    Exactly one of the two shapes: accepted (``task_id`` set, ``reason``
    None) or shed (``task_id`` None, ``reason`` naming which counter
    took the packet — ``"dropped"`` for drop-mode shedding,
    ``"rejected"`` for a deadline miss at submission).  ``block`` mode
    never sheds; it raises :class:`SubmitTimeout` instead.
    """

    task_id: Optional[int]
    reason: Optional[str] = None

    @property
    def accepted(self) -> bool:
        return self.task_id is not None


class DeadlineExceeded(FabricError):
    """An accepted packet's deadline expired while it was still queued.

    Stored as that task's result (and counted in ``rejected``), so every
    task id :meth:`Fabric.submit` returns resolves in
    :meth:`Fabric.results` — late-shed packets carry this sentinel
    instead of silently never appearing.
    """

    def __init__(self, task_id: int) -> None:
        super().__init__("task %d deadline expired while queued" % task_id)
        self.task_id = task_id


class FabricTaskError(FabricError):
    """A worker raised while processing one packet.

    Stored as that task's result; the worker itself keeps serving.
    """

    def __init__(self, task_id: int, message: str) -> None:
        super().__init__("task %d failed in worker: %s" % (task_id, message))
        self.task_id = task_id


class _Worker:
    """One slot: dispatcher state plus the live process and pipes."""

    def __init__(self, state: WorkerState) -> None:
        self.state = state
        self.proc: Optional[multiprocessing.process.BaseProcess] = None
        self.task_conn = None  # parent send end
        self.result_conn = None  # parent recv end
        #: Batch-drain mode: the task-id sets of dispatches still in the
        #: pipe (``max_inflight`` bounds dispatches, not tasks, there).
        self.open_dispatches: List[set] = []


class Fabric:
    """A multi-core packet-serving fabric over resident modem runtimes."""

    def __init__(
        self,
        workers: int = 2,
        policy: str = "round_robin",
        backpressure: str = "block",
        queue_depth: int = 4,
        max_inflight: int = 1,
        batch: int = 1,
        submit_timeout_s: float = 120.0,
        deadline_s: Optional[float] = None,
        runtime_kwargs: Optional[dict] = None,
        cache_dir: Optional[str] = None,
        template_runtime: Optional[object] = None,
        runner_factory: Optional[Callable[[], object]] = None,
        tracer: Optional[Tracer] = None,
        name: str = "fabric",
        heartbeat_s: float = 1.0,
        watchdog_intervals: int = 5,
        watchdog_escalate: bool = False,
        window_s: float = 60.0,
        obs_host: str = "127.0.0.1",
        obs_port: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a fabric needs at least one worker, got %d" % workers)
        if backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                "unknown backpressure mode %r; expected one of %s"
                % (backpressure, list(BACKPRESSURE_MODES))
            )
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1, got %d" % queue_depth)
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1, got %d" % max_inflight)
        if batch < 1:
            raise ValueError("batch must be >= 1, got %d" % batch)
        if backpressure == "deadline" and deadline_s is None:
            raise ValueError("deadline backpressure needs a default deadline_s")
        if heartbeat_s < 0:
            raise ValueError("heartbeat_s must be >= 0, got %r" % (heartbeat_s,))
        if window_s <= 0:
            raise ValueError("window_s must be positive, got %r" % (window_s,))
        self.n_workers = int(workers)
        self.policy = policy
        self.backpressure = backpressure
        self.queue_depth = int(queue_depth)
        self.max_inflight = int(max_inflight)
        #: Batch-drain width: with ``batch > 1`` workers run a batched
        #: runtime and ``_feed`` coalesces up to this many same-shape
        #: queued tasks into one dispatch message.
        self.batch = int(batch)
        self.submit_timeout_s = submit_timeout_s
        self.deadline_s = deadline_s
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._dispatcher = Dispatcher(policy)
        self._runtime_kwargs = dict(runtime_kwargs or {})
        self._cache_dir = cache_dir if cache_dir is not None else schedule_cache_dir()
        self._template = template_runtime
        self._runner_factory = runner_factory
        self._ctx = multiprocessing.get_context("fork")
        self._workers: List[_Worker] = []
        self._next_task_id = 0
        self._results: Dict[int, object] = {}
        self._latencies: List[float] = []
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "dropped": 0,
            "rejected": 0,
            "requeued": 0,
            "duplicates": 0,
            "task_errors": 0,
            "worker_crashes": 0,
            "respawns": 0,
            "heartbeats": 0,
            "watchdog_flags": 0,
            "watchdog_kills": 0,
        }
        self._started = False
        self._closed = False
        self._t_start: Optional[float] = None
        # -- live telemetry plane (repro.obs) --------------------------
        self.heartbeat_s = float(heartbeat_s)
        self._window = MetricsWindow(horizon_s=window_s)
        self._event_log = EventLog(capacity=256)
        self._watchdog: Optional[Watchdog] = None
        if self.heartbeat_s > 0 and watchdog_intervals > 0:
            self._watchdog = Watchdog(
                interval_s=self.heartbeat_s,
                miss_intervals=watchdog_intervals,
                escalate=watchdog_escalate,
            )
        self._obs_host = obs_host
        self._obs_port = obs_port
        self._obs_server = None
        self._last_pump_ts: Optional[float] = None
        self._ingest = None  # attached IngestServer (repro.ingest)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    @property
    def template_runtime(self) -> Optional[object]:
        """The parent-side warm runtime workers fork from (default mode)."""
        return self._template

    def start(self, warm_packets: Sequence[np.ndarray] = ()) -> "Fabric":
        """Warm the parent template on *warm_packets*, then spawn workers."""
        if self._started:
            raise FabricError("fabric already started")
        if self._closed:
            raise FabricClosed("fabric already shut down")
        if self._runner_factory is None and (warm_packets or self._template is None):
            if self._template is None:
                if self.batch > 1:
                    # Batch-drain mode: workers fork a warm batched
                    # runtime so coalesced dispatches run in lockstep
                    # (falling back per packet bit-identically on
                    # divergence).
                    from repro.runtime import BatchedModemRuntime

                    self._template = BatchedModemRuntime(
                        cache_dir=self._cache_dir,
                        batch=self.batch,
                        **self._runtime_kwargs,
                    )
                else:
                    from repro.runtime import ModemRuntime

                    self._template = ModemRuntime(
                        cache_dir=self._cache_dir, **self._runtime_kwargs
                    )
            for rx in warm_packets:
                self._template.warm_up(rx)
        for slot in range(self.n_workers):
            self._workers.append(_Worker(WorkerState(slot, self.queue_depth)))
            self._spawn(slot)
        self._started = True
        self._t_start = time.perf_counter()
        if self._obs_port is not None:
            # Lazy import: repro.obs.server is stdlib-only, but only
            # fabrics that actually serve telemetry should pay for it.
            from repro.obs.server import serve_fabric

            self._obs_server = serve_fabric(
                self, host=self._obs_host, port=self._obs_port
            )
            self._event("obs_server_started", {"url": self._obs_server.url})
        return self

    def __enter__(self) -> "Fabric":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def _spawn(self, slot: int, respawn: bool = False) -> None:
        worker = self._workers[slot]
        task_recv, task_send = self._ctx.Pipe(duplex=False)
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        # The child closes its inherited copies of every parent-held
        # pipe end — other workers' and its own — so a SIGKILLed worker
        # drops the *last* write end of its result pipe and the parent
        # reads EOF instead of blocking forever (see worker.py).
        close_in_child = [task_send, result_recv]
        for other in self._workers:
            if other is not worker and other.task_conn is not None:
                close_in_child.extend([other.task_conn, other.result_conn])
        factory = self._runner_factory
        if factory is None:
            factory = default_runner_factory(
                self._template, self._runtime_kwargs, self._cache_dir
            )
        proc = self._ctx.Process(
            target=worker_main,
            args=(slot, task_recv, result_send, close_in_child, factory,
                  self.heartbeat_s),
            name="%s-worker-%d" % (self.name, slot),
            daemon=True,
        )
        proc.start()
        # Parent side: drop the child ends so the child holds them alone.
        task_recv.close()
        result_send.close()
        worker.proc = proc
        worker.task_conn = task_send
        worker.result_conn = result_recv
        worker.state.alive = True
        worker.state.stopping = False
        worker.state.pid = proc.pid
        worker.state.clear_heartbeat()
        if self._watchdog is not None:
            # Spawn counts as the first beat: a fresh worker gets a full
            # grace period before the watchdog may flag it.
            self._watchdog.reset(slot)
        if respawn:
            # The replacement forked from the parent's warm template, so
            # it holds only the template's warmed shapes — every shape
            # the dead incarnation linked post-fork is gone.  Reset the
            # affinity state to what the new process actually holds.
            worker.state.shapes = set(
                getattr(self._template, "warmed_shapes", ()) or ()
            )
            self._counters["respawns"] += 1
            self._event("worker_respawn", {"slot": slot, "pid": proc.pid})

    # ------------------------------------------------------------------
    # Submission and backpressure.
    # ------------------------------------------------------------------

    def submit(
        self,
        rx: np.ndarray,
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> Optional[int]:
        """Offer one packet; returns its task id, or ``None`` if shed.

        Shedding (``None``) happens only in ``drop`` and ``deadline``
        modes and is counted in ``dropped`` / ``rejected``.  In
        ``deadline`` mode an *accepted* packet can still expire while
        queued; its id then resolves to a :class:`DeadlineExceeded`
        sentinel in :meth:`results` (also counted in ``rejected``).
        Callers that need the shed *reason* use :meth:`offer`.
        """
        return self.offer(rx, n_symbols, detect_hint, deadline_s).task_id

    def offer(
        self,
        rx: np.ndarray,
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> SubmitOutcome:
        """Offer one packet; returns a typed :class:`SubmitOutcome`.

        Same semantics as :meth:`submit`, but a shed packet comes back
        as ``SubmitOutcome(None, reason)`` with *reason* naming the
        counter that took it (``"dropped"`` / ``"rejected"``) — no
        string matching, no conflating the two shed paths.
        """
        self._require_open()
        self._pump(0)
        return self._offer_one(rx, n_symbols, detect_hint, deadline_s)

    def offer_many(
        self,
        rxs: Sequence[np.ndarray],
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> List[SubmitOutcome]:
        """Offer a list of packets with one pump round-trip.

        Each packet gets exactly the per-packet :meth:`offer` semantics
        and accounting (accept / ``dropped`` / ``rejected``, in input
        order), but the completion pump runs once up front instead of
        once per packet — the batch-aware submission path the ingest
        drain uses so a reassembled burst costs one multiplex round, not
        one per packet.  Consecutive same-shape accepts landing on the
        same slot are then coalesced by batch-drain ``_feed``.
        """
        self._require_open()
        self._pump(0)
        return [
            self._offer_one(rx, n_symbols, detect_hint, deadline_s) for rx in rxs
        ]

    def _offer_one(
        self,
        rx: np.ndarray,
        n_symbols: int,
        detect_hint: Optional[int],
        deadline_s: Optional[float],
    ) -> SubmitOutcome:
        rx = np.atleast_2d(rx)
        shape = (int(rx.shape[1]), int(n_symbols))
        now = time.perf_counter()
        deadline_t = None
        if self.backpressure == "deadline":
            deadline_t = now + (deadline_s if deadline_s is not None else self.deadline_s)
        task = FabricTask(
            self._next_task_id, rx, n_symbols, detect_hint, shape, now, deadline_t
        )
        target = self._dispatcher.select(self._states(), shape)
        if target is None:
            target, reason = self._wait_for_capacity(task)
            if target is None:
                return SubmitOutcome(None, reason)  # shed; already accounted
        self._next_task_id += 1
        self._counters["submitted"] += 1
        self._window.count("submitted")
        target.assign(task)
        self._feed(self._workers[target.index])
        return SubmitOutcome(task.task_id)

    def _wait_for_capacity(self, task):
        """Find a slot per the backpressure mode.

        Returns ``(WorkerState, None)`` on success or ``(None, reason)``
        when the packet was shed — reason is the counter that took it.
        """
        if self.backpressure == "drop":
            self._counters["dropped"] += 1
            self._window.count("dropped")
            self._event("packet_dropped", {"shape": list(task.shape)})
            return None, "dropped"
        if self.backpressure == "deadline":
            limit = task.deadline_t
        else:  # block
            limit = task.submit_t + self.submit_timeout_s
        while True:
            remaining = limit - time.perf_counter()
            if remaining <= 0:
                break
            self._pump(min(0.05, remaining))
            target = self._dispatcher.select(self._states(), task.shape)
            if target is not None:
                return target, None
        if self.backpressure == "deadline":
            self._counters["rejected"] += 1
            self._window.count("rejected")
            self._event("packet_rejected", {"shape": list(task.shape)})
            return None, "rejected"
        raise SubmitTimeout(self.submit_timeout_s, self.outstanding, self.n_workers)

    def _feed(self, worker: _Worker) -> None:
        """Move pending packets into the pipe, up to ``max_inflight``
        dispatches (each carrying up to ``batch`` same-shape packets in
        batch-drain mode)."""
        state = worker.state
        while (
            state.alive
            and not state.stopping
            and state.pending
            and len(worker.open_dispatches) < self.max_inflight
        ):
            group = self._collect_group(state)
            if not group:
                continue  # everything popped this round was late-shed
            if len(group) == 1:
                task = group[0]
                payload = (task.task_id, task.rx, task.n_symbols, task.detect_hint)
            else:
                payload = (
                    tuple(task.task_id for task in group),
                    [task.rx for task in group],
                    group[0].n_symbols,
                    group[0].detect_hint,
                )
            try:
                worker.task_conn.send(payload)
            except (BrokenPipeError, OSError):
                for task in reversed(group):
                    state.pending.appendleft(task)
                self._on_worker_death(worker)
                return
            worker.open_dispatches.append({task.task_id for task in group})
            for task in group:
                state.inflight[task.task_id] = task
            if self.batch > 1:
                state.batches += 1
                state.batched_tasks += len(group)

    def _collect_group(self, state: WorkerState) -> List[FabricTask]:
        """Pop up to ``batch`` coalescable pending tasks.

        Tasks coalesce only while they share (shape, n_symbols,
        detect_hint) — the batched runtime buckets by shape, and the
        other two ride per dispatch message.  Late deadline shedding is
        identical to the single-task path: expired packets resolve to
        :class:`DeadlineExceeded` and never reach the pipe.
        """
        group: List[FabricTask] = []
        key = None
        while state.pending and len(group) < self.batch:
            task = state.pending[0]
            task_key = (task.shape, task.n_symbols, task.detect_hint)
            if key is not None and task_key != key:
                break
            state.pending.popleft()
            if (
                task.deadline_t is not None
                and time.perf_counter() > task.deadline_t
            ):
                self._counters["rejected"] += 1
                self._window.count("rejected")
                self._results[task.task_id] = DeadlineExceeded(task.task_id)
                self._event("packet_rejected", {"task": task.task_id, "late": True})
                continue
            key = task_key
            group.append(task)
        return group

    # ------------------------------------------------------------------
    # The pump: completions, crashes, respawns.
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Accepted packets not yet completed (pending + in-flight)."""
        return sum(w.state.load for w in self._workers)

    def _states(self) -> List[WorkerState]:
        return [w.state for w in self._workers]

    def _require_open(self) -> None:
        if not self._started:
            raise FabricClosed("fabric not started; call start() first")
        if self._closed:
            raise FabricClosed("fabric already shut down")

    def _pump(self, timeout: float) -> bool:
        """One multiplex round over result pipes and process sentinels."""
        self._last_pump_ts = time.monotonic()
        conns = {}
        sentinels = {}
        for worker in self._workers:
            if worker.result_conn is not None and not worker.result_conn.closed:
                conns[worker.result_conn] = worker
            if worker.proc is not None and worker.proc.is_alive():
                sentinels[worker.proc.sentinel] = worker
        if not conns and not sentinels:
            return False
        ready = connection.wait(list(conns) + list(sentinels), timeout)
        progressed = bool(ready)
        dead: List[_Worker] = []
        for obj in ready or ():
            worker = conns.get(obj)
            if worker is not None:
                if not self._drain_conn(worker) and worker not in dead:
                    dead.append(worker)
            else:
                worker = sentinels[obj]
                if worker not in dead:
                    dead.append(worker)
        for worker in dead:
            self._on_worker_death(worker)
        # Watchdog and window sampling run every round, progress or not:
        # a silent fabric is exactly when liveness checks matter.
        self._check_watchdog()
        self._window.observe_depth(
            self.outstanding, sum(len(w.state.inflight) for w in self._workers)
        )
        return progressed

    def _check_watchdog(self) -> None:
        """Flag (and optionally kill) workers whose heartbeats stopped."""
        if self._watchdog is None:
            return
        for action in self._watchdog.check(self._states()):
            self._counters["watchdog_flags"] += 1
            self._window.count("watchdog_flags")
            self._event(
                "watchdog_flag",
                {
                    "slot": action.slot,
                    "pid": action.pid,
                    "heartbeat_age_s": round(action.age_s, 3),
                    "killed": action.killed,
                },
            )
            if action.killed:
                # The SIGKILL surfaces through the existing sentinel /
                # pipe-EOF path: salvage, requeue, respawn — stuck has
                # been converted into dead, which the fabric knows how
                # to recover from.
                self._counters["watchdog_kills"] += 1

    def _drain_conn(self, worker: _Worker) -> bool:
        """Read every buffered message; False when the pipe hit EOF."""
        conn = worker.result_conn
        while True:
            try:
                if not conn.poll(0):
                    return True
                msg = conn.recv()
            except (EOFError, OSError):
                return False
            self._handle_message(worker, msg)

    def _handle_message(self, worker: _Worker, msg: tuple) -> None:
        tag = msg[0]
        state = worker.state
        if tag == MSG_READY:
            info = msg[2]
            state.spinup_s = info.get("spinup_s")
            state.spinup_schedule_misses = info.get("schedule_misses")
            state.spinup_codegen_compilations = info.get("codegen_compilations")
            state.spinup_batched = info.get("batched")
            return
        if tag == MSG_BYE:
            return
        if tag == MSG_HEARTBEAT:
            payload = msg[2]
            state.last_heartbeat_ts = time.monotonic()
            state.heartbeats += 1
            state.hb_task_seq = payload.get("task_seq")
            state.hb_host_cycles = int(payload.get("host_cycles", 0) or 0)
            state.hb_rss_bytes = int(payload.get("rss_bytes", 0) or 0)
            state.hb_stall_causes = dict(payload.get("stall_causes") or {})
            self._counters["heartbeats"] += 1
            if self._watchdog is not None and self._watchdog.beat(state.index):
                self._event(
                    "worker_recovered", {"slot": state.index, "pid": state.pid}
                )
            return
        if tag in (MSG_RESULT, MSG_ERROR):
            task_id, dt = msg[1], msg[2]
            task = state.inflight.pop(task_id, None)
            for members in worker.open_dispatches:
                members.discard(task_id)
            worker.open_dispatches = [m for m in worker.open_dispatches if m]
            if task_id in self._results:
                # Exactly-once guard; unreachable in the current
                # requeue protocol but cheap insurance against it.
                self._counters["duplicates"] += 1
                return
            if tag == MSG_ERROR:
                self._results[task_id] = FabricTaskError(task_id, msg[3])
                self._counters["task_errors"] += 1
                self._window.count("task_errors")
            else:
                self._results[task_id] = msg[3]
            self._counters["completed"] += 1
            self._window.count("completed")
            state.completed += 1
            state.busy_s += dt
            if task is not None:
                latency = time.perf_counter() - task.submit_t
                self._latencies.append(latency)
                self._window.observe_latency(latency)
            self._feed(worker)

    def _on_worker_death(self, worker: _Worker) -> None:
        """Requeue a dead slot's packets and respawn it."""
        state = worker.state
        if not state.alive:
            return
        # A kill surfaces through several signals (result-pipe EOF, the
        # process sentinel, a feed-side BrokenPipeError), and handling
        # the first one respawns the slot — so a later signal from the
        # same round must not take down the replacement process.
        if worker.proc is not None and worker.proc.is_alive():
            return
        # Mark the slot dead *before* anything else: the salvage drain
        # below delivers buffered results through _handle_message, whose
        # _feed would otherwise try task_conn.send on the dead child,
        # hit BrokenPipeError, and re-enter this handler mid-teardown
        # (double-counting the crash and tearing down the replacement).
        # With alive already False, _feed is a no-op and the re-entrant
        # call returns at the guard above.
        state.alive = False
        # A worker that was told to stop exiting is a clean shutdown.
        if state.stopping:
            return
        self._drain_conn(worker)  # salvage fully-written results first
        state.crashes += 1
        self._counters["worker_crashes"] += 1
        self._window.count("worker_crashes")
        self._event("worker_crash", {"slot": state.index, "pid": state.pid})
        orphans = list(state.inflight.values()) + list(state.pending)
        state.inflight.clear()
        state.pending.clear()
        worker.open_dispatches = []
        for conn in (worker.task_conn, worker.result_conn):
            try:
                conn.close()
            except OSError:
                pass
        if worker.proc is not None:
            worker.proc.join(timeout=5)
        self._spawn(state.index, respawn=True)
        for task in orphans:
            task.requeues += 1
            self._counters["requeued"] += 1
            self._window.count("requeued")
            target = self._dispatcher.requeue_select(self._states(), task.shape)
            if target is None:  # every slot dying at once: shouldn't happen
                raise FabricError(
                    "no alive worker to requeue task %d onto" % task.task_id
                )
            target.assign(task)
            self._feed(self._workers[target.index])

    # ------------------------------------------------------------------
    # Draining, results, shutdown.
    # ------------------------------------------------------------------

    def poll(self, timeout: float = 0.0) -> bool:
        """Advance the fabric; True when any progress event was handled."""
        self._require_open()
        return self._pump(timeout)

    def results(self) -> Dict[int, object]:
        """Results recorded so far, keyed by task id (shallow copy)."""
        return dict(self._results)

    def drain(self, timeout: Optional[float] = None) -> Dict[int, object]:
        """Pump until every accepted packet completed; returns results."""
        self._require_open()
        deadline = None if timeout is None else time.perf_counter() + timeout
        while self.outstanding:
            remaining = 0.2
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise FabricError(
                        "drain timed out with %d packets outstanding" % self.outstanding
                    )
                remaining = min(0.2, remaining)
            self._pump(remaining)
        return self.results()

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the fabric; with *drain* (default) queues finish first."""
        if self._closed or not self._started:
            self._closed = True
            return
        if drain:
            self.drain(timeout)
        if self._obs_server is not None:
            self._obs_server.stop()
            self._obs_server = None
        for worker in self._workers:
            worker.state.stopping = True
            try:
                worker.task_conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            if worker.proc is not None:
                worker.proc.join(timeout=5)
                if worker.proc.is_alive():
                    worker.proc.terminate()
                    worker.proc.join(timeout=5)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join()
            worker.state.alive = False
            for conn in (worker.task_conn, worker.result_conn):
                try:
                    conn.close()
                except OSError:
                    pass
        self._closed = True

    def worker_pids(self) -> List[int]:
        """Live worker process ids, by slot (for tests and operators)."""
        return [w.proc.pid for w in self._workers if w.proc is not None]

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------

    def _event(self, event: str, args: dict) -> None:
        """Record a lifecycle event: always in the ring, opt-in in the tracer."""
        self._event_log.append(event, args)
        if self.tracer.enabled and self._t_start is not None:
            ts = int((time.perf_counter() - self._t_start) * 1e6)
            self.tracer.instant(event, ts, cat="fabric", args=args)

    @property
    def obs_url(self) -> Optional[str]:
        """Base URL of the live telemetry server (None when not serving)."""
        return self._obs_server.url if self._obs_server is not None else None

    def attach_ingest(self, ingest) -> None:
        """Attach an :class:`~repro.ingest.server.IngestServer`.

        The fabric report gains an ``ingest`` section, ``/healthz`` an
        ``ingest:listener`` check, and ``/metrics`` the
        ``repro_ingest_*`` families.  The latest attachment wins.
        """
        self._ingest = ingest
        self._event("ingest_attached", {"name": getattr(ingest, "name", "?")})

    def ingest_event(self, kind: str, n: int = 1) -> None:
        """Record an ingest event in the rolling window.

        Safe from the ingest listener thread: the windowed counters are
        internally locked, unlike the fabric's task queues.
        """
        self._window.count(kind, n)

    def events(self) -> List[dict]:
        """Recent lifecycle events, oldest first (``/events.json``)."""
        return self._event_log.snapshot()

    def _heartbeat_age(self, state: WorkerState, now: float) -> Optional[float]:
        if self._watchdog is not None:
            return self._watchdog.age(state.index, now)
        if state.last_heartbeat_ts is None:
            return None
        return now - state.last_heartbeat_ts

    def _pump_age(self, now: float) -> Optional[float]:
        if self._last_pump_ts is None:
            return None
        return now - self._last_pump_ts

    def health(self) -> dict:
        """RFC-health JSON (draft-inadarei) with per-worker verdicts.

        A worker ``fail``s once it has been heartbeat-silent for the
        watchdog's ``unhealthy_intervals`` (default: two intervals).
        Heartbeats only arrive while somebody pumps the fabric, so when
        the *pump itself* is stale — the serving thread stopped calling
        submit/poll/drain — worker silence is unattributable and their
        ``fail`` verdicts are capped to ``warn``, with a ``fabric:pump``
        check carrying the real story.
        """
        now = time.monotonic()
        hb = self.heartbeat_s
        pump_age = self._pump_age(now)
        pump_stale = hb > 0 and pump_age is not None and pump_age >= 2 * hb
        order = {"pass": 0, "warn": 1, "fail": 2}
        worst = "pass"
        checks: Dict[str, list] = {}
        for worker in self._workers:
            state = worker.state
            age = self._heartbeat_age(state, now)
            if state.stopping:
                verdict = "warn"
            elif not state.alive:
                verdict = "fail"  # crashed, respawn pending
            elif hb <= 0:
                verdict = "pass"  # heartbeats disabled: alive is all we know
            elif self._watchdog is not None:
                verdict = self._watchdog.verdict(state.index, now)
            elif age is not None and age >= 2 * hb:
                verdict = "fail"
            else:
                verdict = "pass"
            if pump_stale and verdict == "fail" and state.alive:
                verdict = "warn"
            detail = {
                "componentType": "process",
                "status": verdict,
                "pid": state.pid,
                "alive": bool(state.alive),
                "observedValue": round(age, 3) if age is not None else None,
                "observedUnit": "s_since_heartbeat",
                "taskSeq": state.hb_task_seq,
                "rssBytes": state.hb_rss_bytes,
                "stuck": (
                    self._watchdog.is_flagged(state.index)
                    if self._watchdog is not None
                    else False
                ),
            }
            checks["worker:%d" % state.index] = [detail]
            worst = max(worst, verdict, key=lambda v: order[v])
        pump_check = {
            "componentType": "system",
            "status": "warn" if pump_stale else "pass",
            "observedValue": round(pump_age, 3) if pump_age is not None else None,
            "observedUnit": "s_since_pump",
        }
        checks["fabric:pump"] = [pump_check]
        if pump_stale:
            worst = max(worst, "warn", key=lambda v: order[v])
        if self._ingest is not None:
            for name, details in self._ingest.health_checks().items():
                checks[name] = details
                for detail in details:
                    worst = max(
                        worst, detail.get("status", "pass"), key=lambda v: order[v]
                    )
        return {
            "status": worst,
            "version": "1",
            "releaseId": FABRIC_REPORT_SCHEMA,
            "serviceId": self.name,
            "description": "%d-worker fabric, %s dispatch, %s backpressure"
            % (self.n_workers, self.policy, self.backpressure),
            "checks": checks,
        }

    def metrics_text(self) -> str:
        """The live report as Prometheus exposition text (``/metrics``)."""
        from repro.fabric.report import fabric_prometheus_text

        return fabric_prometheus_text(self.report())

    @staticmethod
    def _cache_telemetry() -> dict:
        """Parent-side schedule-cache and codegen counters."""
        cache = {"schedule": schedule_cache_stats()}
        try:
            from repro.sim.codegen import codegen_stats

            cache["codegen"] = codegen_stats()
        except ImportError:  # pragma: no cover - codegen tier missing
            pass
        return cache

    def report(self) -> dict:
        """The fabric report: counters, per-worker stats, latencies."""
        wall = (
            time.perf_counter() - self._t_start if self._t_start is not None else 0.0
        )
        now = time.monotonic()
        completed = self._counters["completed"]
        per_worker = []
        for worker in self._workers:
            state = worker.state
            age = self._heartbeat_age(state, now)
            per_worker.append(
                {
                    "index": state.index,
                    "pid": state.pid,
                    "alive": bool(state.alive),
                    "completed": state.completed,
                    "load": state.load,
                    "busy_s": round(state.busy_s, 6),
                    "occupancy": round(min(1.0, state.busy_s / wall), 4) if wall else 0.0,
                    "crashes": state.crashes,
                    "shapes": len(state.shapes),
                    "spinup_s": state.spinup_s,
                    "spinup_schedule_misses": state.spinup_schedule_misses,
                    "spinup_codegen_compilations": state.spinup_codegen_compilations,
                    "spinup_batched": state.spinup_batched,
                    "batches": state.batches if self.batch > 1 else None,
                    "batched_tasks": (
                        state.batched_tasks if self.batch > 1 else None
                    ),
                    "batch_occupancy": (
                        round(
                            state.batched_tasks / (state.batches * self.batch), 4
                        )
                        if self.batch > 1 and state.batches
                        else (0.0 if self.batch > 1 else None)
                    ),
                    "heartbeats": state.heartbeats,
                    "last_heartbeat_age_s": (
                        round(age, 3) if age is not None else None
                    ),
                    "task_seq": state.hb_task_seq,
                    "host_cycles": state.hb_host_cycles,
                    "rss_bytes": state.hb_rss_bytes,
                    "stall_causes": dict(state.hb_stall_causes),
                    "health": (
                        self._watchdog.verdict(state.index, now)
                        if self._watchdog is not None and state.alive
                        else None
                    ),
                }
            )
        watchdog = None
        if self._watchdog is not None:
            watchdog = {
                "interval_s": self._watchdog.interval_s,
                "miss_intervals": self._watchdog.miss_intervals,
                "escalate": self._watchdog.escalate,
                "flags": self._watchdog.flags,
                "kills": self._watchdog.kills,
                "recoveries": self._watchdog.recoveries,
            }
        return {
            "schema": FABRIC_REPORT_SCHEMA,
            "name": self.name,
            "policy": self.policy,
            "backpressure": self.backpressure,
            "workers": self.n_workers,
            "queue_depth": self.queue_depth,
            "batch": self.batch,
            "heartbeat_s": self.heartbeat_s,
            "wall_s": round(wall, 6),
            "packets_per_sec": round(completed / wall, 3) if wall else 0.0,
            "outstanding": self.outstanding,
            "counters": dict(self._counters),
            "latency_s": latency_summary(list(self._latencies)),
            "window": self._window.snapshot(),
            "watchdog": watchdog,
            "cache": self._cache_telemetry(),
            "ingest": (
                self._ingest.ingest_report() if self._ingest is not None else None
            ),
            "per_worker": per_worker,
        }
