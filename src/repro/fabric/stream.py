"""Streaming workload driver: Poisson packet arrivals, mixed traffic.

A live baseband system never sees a neat pre-built batch: packets
arrive as a point process with varying carrier offsets, SNRs and frame
lengths.  :func:`poisson_stream` generates exactly that, reproducibly —
exponential inter-arrival times from a seeded generator, each packet
drawn through :func:`repro.runtime.workload.make_packet` with its CFO,
SNR and trailing pad (the *shape* mixer for the ``shape_affinity``
dispatch policy) picked from caller-supplied choice sets.

:func:`run_stream` pushes a stream into a :class:`~repro.fabric.Fabric`
either as fast as backpressure allows (throughput benches) or paced on
the wall clock (the serving example).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.phy.params import PARAMS_20MHZ_2X2, OfdmParams
from repro.runtime.workload import PacketCase, make_packet


@dataclass
class StreamEvent:
    """One scheduled packet arrival."""

    #: Arrival time in seconds since stream start.
    time_s: float
    #: Sequence number within the stream.
    seq: int
    case: PacketCase


def poisson_stream(
    rate_hz: float,
    duration_s: Optional[float] = None,
    n_packets: Optional[int] = None,
    base_seed: int = 0,
    cfo_choices: Sequence[float] = (50e3,),
    snr_choices: Sequence[Optional[float]] = (None,),
    pad_choices: Sequence[int] = (0,),
    scenario_choices: Sequence[Optional[str]] = (None,),
    params: OfdmParams = PARAMS_20MHZ_2X2,
) -> Iterator[StreamEvent]:
    """Yield a reproducible Poisson arrival process of mixed packets.

    Bounded by *duration_s* and/or *n_packets* (at least one must be
    given).  The same ``base_seed`` always produces the same arrival
    times and the same packets.

    *scenario_choices* mixes named impairment presets
    (:mod:`repro.phy.scenario`) into the traffic; ``None`` entries keep
    the classic identity-channel packet.  A scenario entry overrides the
    per-packet CFO draw (the preset defines its own offset + jitter).
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive, got %r" % (rate_hz,))
    if duration_s is None and n_packets is None:
        raise ValueError("bound the stream with duration_s and/or n_packets")
    rng = np.random.default_rng(base_seed)
    t = 0.0
    seq = 0
    while n_packets is None or seq < n_packets:
        t += float(rng.exponential(1.0 / rate_hz))
        if duration_s is not None and t >= duration_s:
            return
        cfo = float(cfo_choices[int(rng.integers(len(cfo_choices)))])
        snr = snr_choices[int(rng.integers(len(snr_choices)))]
        pad = int(pad_choices[int(rng.integers(len(pad_choices)))])
        # Singleton choice sets skip the extra RNG draw so classic
        # streams replay byte-identically to the pre-scenario generator.
        if len(scenario_choices) == 1:
            scenario = scenario_choices[0]
        else:
            scenario = scenario_choices[int(rng.integers(len(scenario_choices)))]
        case = make_packet(
            seed=base_seed + 1000 + seq,
            cfo_hz=cfo,
            snr_db=snr,
            params=params,
            extra_pad=pad,
            scenario=scenario,
        )
        yield StreamEvent(time_s=t, seq=seq, case=case)
        seq += 1


#: Default traffic mix for :func:`mixed_scenario_stream` — the presets
#: a serving fabric is expected to see concurrently (timing/quantisation
#: stress excluded: those target the golden-modem estimator tests).
DEFAULT_SCENARIO_MIX: Tuple[Optional[str], ...] = (
    None,
    "awgn",
    "flat_fading",
    "indoor_multipath",
    "cfo_stress",
)


def mixed_scenario_stream(
    rate_hz: float,
    duration_s: Optional[float] = None,
    n_packets: Optional[int] = None,
    base_seed: int = 0,
    scenarios: Sequence[Optional[str]] = DEFAULT_SCENARIO_MIX,
    snr_choices: Sequence[Optional[float]] = (35.0, 25.0),
    pad_choices: Sequence[int] = (0,),
    params: OfdmParams = PARAMS_20MHZ_2X2,
) -> Iterator[StreamEvent]:
    """A Poisson stream cycling through the scenario matrix.

    The one-call entry point for serving realistic heterogeneous
    traffic: every packet draws a preset from *scenarios* (``None`` =
    the classic reference packet) and an SNR from *snr_choices*, all
    reproducibly seeded.
    """
    return poisson_stream(
        rate_hz,
        duration_s=duration_s,
        n_packets=n_packets,
        base_seed=base_seed,
        snr_choices=snr_choices,
        pad_choices=pad_choices,
        scenario_choices=tuple(scenarios),
        params=params,
    )


def run_stream(
    fabric,
    events: Iterable[StreamEvent],
    realtime: bool = False,
    n_symbols: int = 2,
    detect_hint: Optional[int] = None,
) -> List[Tuple[Optional[int], StreamEvent]]:
    """Submit every stream event to *fabric*; returns (task_id, event).

    With ``realtime`` the submission is paced to each event's arrival
    time (a live front-end); otherwise packets are offered back-to-back
    and only the fabric's backpressure throttles the stream.  A ``None``
    task id records a shed packet (``drop``/``deadline`` modes).
    """
    t0 = time.perf_counter()
    offered: List[Tuple[Optional[int], StreamEvent]] = []
    for event in events:
        if realtime:
            delay = event.time_s - (time.perf_counter() - t0)
            if delay > 0:
                time.sleep(delay)
        task_id = fabric.submit(
            event.case.rx, n_symbols=n_symbols, detect_hint=detect_hint
        )
        offered.append((task_id, event))
    return offered


def stream_truth(offered: Sequence[Tuple[Optional[int], StreamEvent]]) -> Dict[int, PacketCase]:
    """Map accepted task ids back to their ground-truth packet cases."""
    return {task_id: ev.case for task_id, ev in offered if task_id is not None}
