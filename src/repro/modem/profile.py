"""Table 2 assembly: measured kernel profiles vs the paper's numbers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.modem.receiver import ReceiverOutput

#: Table 2 of the paper: (phase, kernel, mode, IPC, cycles).
PAPER_TABLE2 = [
    ("preamble", "acorr", "mixed", 3.47, 122),
    ("preamble", "fshift", "CGA", 12.16, 211),
    ("preamble", "xcorr", "CGA", 9.15, 280),
    ("preamble", "acorr", "mixed", 3.47, 194),
    ("preamble", "fshift", "CGA", 12.16, 678),
    ("preamble", "fft", "CGA (2x)", 10.36, 712),
    ("preamble", "remove zero carriers", "VLIW", 1.10, 76),
    ("preamble", "freq offset estimation", "CGA", 6.32, 314),
    ("preamble", "freq offset compensation", "mixed", 4.48, 424),
    ("preamble", "sample ordering", "VLIW", 1.61, 210),
    ("preamble", "SDM processing", "CGA (2x)", 9.90, 1540),
    ("preamble", "sample reordering", "VLIW", 2.69, 256),
    ("preamble", "equalize coeff calc", "CGA", 8.38, 636),
    ("preamble", "non-kernel code", "VLIW", 1.69, 452),
    ("preamble", "total", "", 8.05, 6105),
    ("data", "fshift", "CGA", 13.33, 378),
    ("data", "fft", "CGA (2x)", 11.46, 493),
    ("data", "data shuffle", "VLIW", 2.60, 100),
    ("data", "tracking", "VLIW", 1.83, 117),
    ("data", "comp", "CGA", 9.00, 219),
    ("data", "demod QAM64", "CGA", 12.04, 224),
    ("data", "total", "", 10.34, 1531),
]

#: The paper's totals, for quick reference.
PAPER_PREAMBLE_CYCLES = 6105
PAPER_DATA_CYCLES = 1531
PAPER_PREAMBLE_IPC = 8.05
PAPER_DATA_IPC = 10.34


@dataclass
class Table2Row:
    """One measured row next to its paper counterpart."""

    phase: str
    kernel: str
    mode: str
    ipc: float
    cycles: int
    stall_cycles: int = 0
    paper_mode: Optional[str] = None
    paper_ipc: Optional[float] = None
    paper_cycles: Optional[int] = None


def _paper_lookup(phase: str) -> Dict[str, List[tuple]]:
    """Paper rows by kernel name (list-valued: acorr/fshift repeat)."""
    out: Dict[str, List[tuple]] = {}
    for p, kernel, mode, ipc, cycles in PAPER_TABLE2:
        if p == phase and kernel != "total":
            out.setdefault(kernel, []).append((mode, ipc, cycles))
    return out


def table2_rows(output: ReceiverOutput) -> List[Table2Row]:
    """Measured Table 2 rows (paper numbers attached where named alike)."""
    rows: List[Table2Row] = []
    for phase, regions in (
        ("preamble", output.preamble_regions),
        ("data", output.data_regions),
    ):
        paper = _paper_lookup(phase)
        seen: Dict[str, int] = {}
        for region in regions:
            idx = seen.get(region.name, 0)
            seen[region.name] = idx + 1
            entry = None
            if region.name in paper and idx < len(paper[region.name]):
                entry = paper[region.name][idx]
            rows.append(
                Table2Row(
                    phase=phase,
                    kernel=region.name,
                    mode=region.profile.mode,
                    ipc=round(region.profile.ipc, 2),
                    cycles=region.profile.cycles,
                    stall_cycles=region.profile.stats.stall_cycles,
                    paper_mode=entry[0] if entry else None,
                    paper_ipc=entry[1] if entry else None,
                    paper_cycles=entry[2] if entry else None,
                )
            )
        # Phase totals.
        total_cycles = sum(r.profile.cycles for r in regions)
        total_ops = sum(r.profile.stats.total_ops for r in regions)
        rows.append(
            Table2Row(
                phase=phase,
                kernel="total",
                mode="",
                ipc=round(total_ops / max(total_cycles, 1), 2),
                cycles=total_cycles,
                stall_cycles=sum(r.profile.stats.stall_cycles for r in regions),
                paper_ipc=PAPER_PREAMBLE_IPC if phase == "preamble" else PAPER_DATA_IPC,
                paper_cycles=(
                    PAPER_PREAMBLE_CYCLES if phase == "preamble" else PAPER_DATA_CYCLES
                ),
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render measured-vs-paper Table 2 as fixed-width text."""
    lines = [
        "%-9s %-26s %-7s %6s %7s %6s | %-9s %6s %7s"
        % ("phase", "kernel", "mode", "IPC", "cycles", "stall", "paper", "IPC", "cycles")
    ]
    lines.append("-" * 95)
    for row in rows:
        lines.append(
            "%-9s %-26s %-7s %6.2f %7d %6d | %-9s %6s %7s"
            % (
                row.phase,
                row.kernel,
                row.mode,
                row.ipc,
                row.cycles,
                row.stall_cycles,
                row.paper_mode or "",
                ("%.2f" % row.paper_ipc) if row.paper_ipc else "",
                row.paper_cycles if row.paper_cycles else "",
            )
        )
    return "\n".join(lines)
