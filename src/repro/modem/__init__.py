"""The full inner modem on the simulated processor (the paper's Section 4).

:class:`~repro.modem.receiver.SimReceiver` runs the complete 2x2
MIMO-OFDM receive pipeline — every Table 2 kernel, compiled and executed
on the cycle-accurate simulator — over a packet produced by the golden
transmitter, and returns per-kernel profiles (mode, IPC, cycles) plus
the decoded bits.

:mod:`repro.modem.profile` assembles those profiles into the Table 2
layout and :mod:`repro.modem.analysis` does the real-time / throughput /
latency arithmetic of the paper's Section 4.
"""

from repro.modem.memory_map import MemoryMap
from repro.modem.receiver import SimReceiver, ReceiverOutput
from repro.modem.profile import table2_rows, PAPER_TABLE2
from repro.modem.analysis import realtime_analysis, RealtimeReport

__all__ = [
    "MemoryMap",
    "SimReceiver",
    "ReceiverOutput",
    "table2_rows",
    "PAPER_TABLE2",
    "realtime_analysis",
    "RealtimeReport",
]
