"""Real-time / throughput / latency analysis (the paper's Section 4 claims).

The paper's arithmetic:

* preamble processing takes 15.3 us against an 8 us preamble, adding a
  7.3 us pipeline latency without hurting throughput;
* a loop-merged pair of data symbols processes in 3.8 us against the
  8 us the pair occupies on air, guaranteeing real time;
* at 52 data carriers x 6 bits x 2 streams per 4 us symbol the PHY runs
  156 Mbps raw, i.e. 130 Mbps at the rate-5/6 outer code — the title's
  "100 Mbps+".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.modem.receiver import ReceiverOutput
from repro.phy.params import PARAMS_20MHZ_2X2, OfdmParams


@dataclass
class RealtimeReport:
    """The headline timing/throughput figures, measured and paper."""

    clock_hz: float
    preamble_cycles: int
    preamble_us: float
    preamble_elapsed_us: float
    latency_us: float
    data_pair_cycles: int
    data_pair_us: float
    symbol_pair_elapsed_us: float
    realtime: bool
    phy_rate_mbps: float
    coded_rate_mbps: float
    meets_100mbps: bool

    paper_preamble_us: float = 15.3
    paper_latency_us: float = 7.3
    paper_data_pair_us: float = 3.8

    def summary(self) -> str:
        lines = [
            "preamble processing: %d cycles = %.1f us (paper %.1f us)"
            % (self.preamble_cycles, self.preamble_us, self.paper_preamble_us),
            "  -> latency over the %.0f us preamble: %.1f us (paper %.1f us)"
            % (self.preamble_elapsed_us, self.latency_us, self.paper_latency_us),
            "data symbol pair: %d cycles = %.2f us against %.0f us on air "
            "(paper %.1f us) -> real time: %s"
            % (
                self.data_pair_cycles,
                self.data_pair_us,
                self.symbol_pair_elapsed_us,
                self.paper_data_pair_us,
                self.realtime,
            ),
            "PHY rate %.0f Mbps raw, %.0f Mbps at rate 5/6 -> 100 Mbps+: %s"
            % (self.phy_rate_mbps, self.coded_rate_mbps, self.meets_100mbps),
        ]
        return "\n".join(lines)


def realtime_analysis(
    output: ReceiverOutput,
    params: OfdmParams = PARAMS_20MHZ_2X2,
    clock_hz: float = 400e6,
) -> RealtimeReport:
    """Derive the Section 4 headline figures from a receiver run."""
    preamble_us = output.preamble_cycles / clock_hz * 1e6
    data_us = output.data_cycles / clock_hz * 1e6
    # Preamble on air: STF + LTF + 2 HT-LTFs = 480 samples = 24 us at
    # 20 Msps... the paper quotes 8 us for the part its preamble
    # processing must hide (the legacy STF+LTF).  We report both against
    # the legacy 16 us and the paper's 8 us convention.
    preamble_elapsed_us = 8.0
    symbol_pair_elapsed_us = 2 * params.symbol_duration_s * 1e6
    return RealtimeReport(
        clock_hz=clock_hz,
        preamble_cycles=output.preamble_cycles,
        preamble_us=preamble_us,
        preamble_elapsed_us=preamble_elapsed_us,
        latency_us=max(0.0, preamble_us - preamble_elapsed_us),
        data_pair_cycles=output.data_cycles,
        data_pair_us=data_us,
        symbol_pair_elapsed_us=symbol_pair_elapsed_us,
        realtime=data_us <= symbol_pair_elapsed_us,
        phy_rate_mbps=params.phy_rate_bps / 1e6,
        coded_rate_mbps=params.coded_rate_bps / 1e6,
        meets_100mbps=params.coded_rate_bps > 100e6,
    )
