"""The complete receive pipeline on the simulated processor.

:class:`SimReceiver` runs every Table 2 kernel, compiled by the
DRESC-like compiler and executed on the cycle-accurate core, over one
packet.  The receiver is organised as a sequence of *regions*, one per
Table 2 row; each region is a small program (VLIW glue + CGA kernels)
executed on a core whose scratchpad carries the modem state forward.

Host orchestration
------------------
The processor is a slave in a multi-core platform (Section 2.A); the
control processor loads samples and tables over the bus, reads status
registers between phases and supplies scheduling decisions.  In this
reproduction the Python host plays that role: it moves data between
regions (the scratchpad image), converts the kernels' correlation
outputs into the compensation constants (using the same fixed-point
CORDIC arithmetic as the on-array kernel) and selects among the
candidate positions evaluated by the detection/timing kernels.  Every
signal-processing operation itself runs on the simulated processor.

Measurement methodology: each region is measured with a warm
instruction cache (steady-state behaviour; the paper's numbers likewise
exclude cold-start effects) and configuration memories preloaded by DMA
(counted separately for the power model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch import CgaArchitecture, paper_core
from repro.compiler.builder import PhysReg
from repro.compiler.linker import ProgramLinker
from repro.isa.bits import split_lanes, to_signed
from repro.isa.opcodes import Opcode
from repro.kernels import vliw_kernels
from repro.kernels.acorr import build_acorr_dfg
from repro.kernels.comp import build_comp_dfg
from repro.kernels.demod import build_demod_dfg
from repro.kernels.fft import (
    all_stage_halves,
    bit_reverse_indices,
    build_reorder_pair_dfg,
    build_stage1_pair_dfg,
    build_stage_pair_dfg,
    stage_params,
    stage_twiddle_words,
)
from repro.kernels.fshift import (
    build_cfo_rotate,
    build_fshift_dfg,
    build_gather_rotate_dfg,
    cfo_rotate_patch,
    phasor_table_words,
    phasor_table_words32,
    rotate_constants,
)
from repro.kernels.sdm import (
    build_chanest_dfg,
    build_eqcoef_dfg,
    build_sdm_dfg,
    build_shuffle_dfg,
)
from repro.kernels.sync import (
    angle_q16_to_hz,
    atan_table_q16,
    build_cordic_dfg,
    cordic_atan2_q16,
)
from repro.kernels.xcorr import build_xcorr_dfg
from repro.modem.memory_map import DEFAULT_MAP, MemoryMap
from repro.phy import preamble as phy_preamble
from repro.phy.fixed import q15
from repro.phy.params import PARAMS_20MHZ_2X2, OfdmParams
from repro.phy.ofdm import PILOT_POLARITY, PILOT_VALUES
from repro.sim import Core
from repro.sim.program import Program, patch_constants
from repro.sim.stats import ActivityStats, KernelProfile
from repro.trace.tracer import NULL_TRACER, Tracer

#: Hard floor on packet length: the receiver deinterleaves a 352-pair
#: sync region and the tail pass needs at least one more sample pair
#: (shorter inputs would drive the tail loop with a negative count).
MIN_PACKET_SAMPLES = 354

#: Per-antenna sample-buffer capacity (ANT1 - ANT0 bytes / 4).
_ANT_CAPACITY = 1024

#: Furthest sample the detection autocorrelation reads past a candidate
#: position: a 32-sample window at 64-bit granularity plus the 16-sample
#: lag.
_ACORR_SPAN = 48

# Parameter-block slot indices (32-bit words at MemoryMap.PARAM).  The
# host writes these before each region; region programs load them as
# kernel live-ins / loop bounds, which is what makes the programs pure
# functions of the packet *shape* and reusable across packets.
_P_CAND = (0, 1, 2)  # acorr candidate base addresses
_P_FSHIFT_SRC = 3  # coarse-rotate source (ANT0 + 4*ltf_guess)
_P_ACORR2_BASE = 4  # fine-acorr base (WORK0 + 4*ltf1_rel)
_P_CORDIC_X = 5  # fine correlation re (two's complement)
_P_CORDIC_Y = 6  # fine correlation im
_P_TAIL_PAIRS = 7  # tail deinterleave pair count (even)
_P_FSHIFT2_SRC = (8, 9)  # HT-LTF rotate sources per antenna
_P_DATA_SRC = 10  # data gather source (ANT0 + 4*data_start)


@dataclass
class RegionRun:
    """One executed, profiled pipeline region (one Table 2 row)."""

    name: str
    profile: KernelProfile
    outputs: Dict[str, int] = field(default_factory=dict)


@dataclass
class RegionRequest:
    """One region the pipeline generator asks its driver to execute.

    :meth:`SimReceiver._pipeline` yields these and receives
    ``(RegionRun, image)`` back; :meth:`SimReceiver.run_packet` answers
    with :meth:`SimReceiver._run_region` (the per-packet path), while
    the batched runtime answers with lockstep lane execution.  The
    fields mirror ``_run_region``'s parameters exactly.
    """

    name: str
    image: bytearray
    build: Callable[[ProgramLinker], Dict[str, object]]
    key: tuple = ()
    patch: Optional[Dict[int, int]] = None


@dataclass
class ReceiverOutput:
    """Result of running one packet through the simulated receiver."""

    preamble_regions: List[RegionRun]
    data_regions: List[RegionRun]
    bits: np.ndarray
    detect_pos: int
    ltf1_start: int
    coarse_cfo_hz: float
    fine_cfo_hz: float
    stats: ActivityStats
    #: Final scratchpad contents (all intermediate buffers), for
    #: inspection and tests.
    image: bytes = b""

    @property
    def preamble_cycles(self) -> int:
        return sum(r.profile.cycles for r in self.preamble_regions)

    @property
    def data_cycles(self) -> int:
        return sum(r.profile.cycles for r in self.data_regions)

    @property
    def cfo_hz(self) -> float:
        return self.coarse_cfo_hz + self.fine_cfo_hz


def _interleave_words(rx_re: np.ndarray, rx_im: np.ndarray) -> List[int]:
    """ADC stream: alternating antenna words (a0[k], a1[k])."""
    words = rx_re.astype(np.int16).view(np.uint16).astype(np.uint32) | (
        rx_im.astype(np.int16).view(np.uint16).astype(np.uint32) << np.uint32(16)
    )
    return words.T.reshape(-1).tolist()


class SimReceiver:
    """Runs 2x2 MIMO-OFDM packets through the simulated processor."""

    def __init__(
        self,
        arch: Optional[CgaArchitecture] = None,
        params: OfdmParams = PARAMS_20MHZ_2X2,
        mem: MemoryMap = DEFAULT_MAP,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        interpreter: str = "decoded",
    ) -> None:
        self.arch = arch if arch is not None else paper_core()
        self.interpreter = interpreter
        self.params = params
        self.mem = mem
        self.seed = seed
        #: Receives one ``region`` span per Table 2 row plus everything
        #: the cores emit; region cores restart their cycle counters at
        #: zero, so the receiver advances the tracer's base after each
        #: region to keep one coherent packet timeline.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Compact-carrier order: bins 1..28 then 36..63 (runs the
        #: remove-zero-carriers kernel produces).
        self.compact_bins = list(range(1, 29)) + list(range(36, 64))
        #: Linked region programs (plus their host-visible register
        #: handles), keyed by (region id, packet shape).  Programs are
        #: pure functions of (architecture, seed, memory map, OFDM
        #: params, shape): all packet data reaches them through the
        #: scratchpad image — notably the parameter block — or through
        #: configuration-immediate patching, so one link serves every
        #: packet of the same shape (the paper's compile-once flow).
        self._region_programs: Dict[tuple, Tuple[Program, Dict[str, object]]] = {}

    @property
    def compiled_programs(self) -> int:
        """Number of region programs linked so far (compile-once cache)."""
        return len(self._region_programs)

    # ------------------------------------------------------------------
    # Region execution machinery.
    # ------------------------------------------------------------------

    def _region_program(
        self,
        rid: tuple,
        name: str,
        build: Callable[[ProgramLinker], Dict[str, object]],
    ) -> Tuple[Program, Dict[str, object]]:
        cached = self._region_programs.get(rid)
        if cached is None:
            linker = ProgramLinker(self.arch, name=name, seed=self.seed)
            handles = build(linker) or {}
            cached = (linker.link(), handles)
            self._region_programs[rid] = cached
        return cached

    def _run_region(
        self,
        name: str,
        image: bytearray,
        build: Callable[[ProgramLinker], Dict[str, object]],
        key: tuple = (),
        patch: Optional[Dict[int, int]] = None,
    ) -> Tuple[RegionRun, bytearray]:
        tracer = self.tracer
        program, handles = self._region_program((name,) + key, name, build)
        if patch:
            program = patch_constants(program, patch)
        core = Core(self.arch, program, tracer=tracer, interpreter=self.interpreter)
        core.scratchpad._mem[:] = image
        # Setup (config DMA, I$ warm-up) is excluded from the trace the
        # same way it is excluded from the steady-state measurement; the
        # try/finally guarantees a fault during setup cannot leave the
        # caller's tracer permanently disabled.
        was_enabled = tracer.enabled
        tracer.enabled = False
        try:
            core.load_configuration()
            # Warm the I$ (steady-state measurement), then reset counters.
            for pc in range(len(program.bundles)):
                core.icache.fetch(pc)
        finally:
            tracer.enabled = was_enabled
        before = core.stats.snapshot()
        core.run()
        delta = core.stats.delta_since(before).validate()
        if tracer.enabled:
            tracer.complete(name, 0, delta.total_cycles, cat="region")
            tracer.advance_base(delta.total_cycles)
        outputs = {}
        for out_name, handle in handles.items():
            if isinstance(handle, PhysReg):
                outputs[out_name] = core.cdrf.peek(handle.index)
        run = RegionRun(name, KernelProfile(name, delta), outputs)
        return run, bytearray(core.scratchpad._mem)

    # ------------------------------------------------------------------
    # Host-side table builders.
    # ------------------------------------------------------------------

    def _write_words(self, image: bytearray, addr: int, words: Sequence[int], size: int = 4):
        if size in (4, 8):
            data = np.asarray(
                words, dtype="<u4" if size == 4 else "<u8"
            ).tobytes()
            image[addr : addr + len(data)] = data
            return
        for k, w in enumerate(words):
            image[addr + size * k : addr + size * (k + 1)] = int(w).to_bytes(
                size, "little"
            )

    def _write_param(self, image: bytearray, slot: int, value: int) -> None:
        """Host-write one packet parameter word (the runtime live-ins)."""
        self._write_words(image, self.mem.PARAM + 4 * slot, [int(value) & 0xFFFFFFFF])

    def _load_param(self, vb, slot: int):
        """Glue: load one parameter word into a register of *vb*'s section."""
        base = vb.mov_imm(self.mem.PARAM)
        return vb.load(Opcode.LD_I, base, slot)

    def _ltf_ref_words(self) -> List[int]:
        """Packed Q15 LTF reference (64 samples -> 32 words)."""
        sym = phy_preamble.ltf_symbol(self.params.n_fft)
        re, im = q15(sym.real * 2.0), q15(sym.imag * 2.0)  # 2x gain for SNR
        words = []
        for k in range(0, len(sym), 2):
            lo = (int(np.uint16(re[k]))) | (int(np.uint16(im[k])) << 16)
            hi = (int(np.uint16(re[k + 1]))) | (int(np.uint16(im[k + 1])) << 16)
            words.append(lo | (hi << 32))
        return words

    def _sign_table_words(self) -> List[int]:
        """Channel-combining sign table: one word per compact Y word."""
        seq = phy_preamble.ht_ltf_sequence(self.params.n_fft)
        words = []
        for k in range(0, len(self.compact_bins), 2):
            s0 = 32767 if seq[self.compact_bins[k]] > 0 else -32767
            s1 = 32767 if seq[self.compact_bins[k + 1]] > 0 else -32767
            lanes = [s0, s0, s1, s1]
            word = 0
            for li, lane in enumerate(lanes):
                word |= (lane & 0xFFFF) << (16 * li)
            words.append(word)
        return words

    def _bin_table_words(self) -> List[int]:
        """Byte offsets of the used carriers within a 64-bin grid."""
        return [4 * b for b in self.compact_bins]

    def _gather_table_words(self, payload_start: int) -> List[int]:
        """CP-strip + bit-reversal byte offsets for one symbol."""
        rev = bit_reverse_indices(self.params.n_fft)
        return [4 * (payload_start + int(r)) for r in rev]

    def _twiddle_layout(self) -> List[Tuple[int, dict, int]]:
        """[(tw_addr, stage live-ins, half)] for the 5 generic stages."""
        out = []
        offset = 0
        for half in all_stage_halves(self.params.n_fft):
            addr = self.mem.TWID + offset
            out.append((addr, stage_params(self.params.n_fft, half), half))
            offset += 8 * (self.params.n_fft // 4)
        return out

    def _write_twiddles(self, image: bytearray) -> None:
        for addr, _params, half in self._twiddle_layout():
            self._write_words(
                image, addr, stage_twiddle_words(self.params.n_fft, half), size=8
            )

    # ------------------------------------------------------------------
    # FFT region helper: stage1 + 5 generic stages on one buffer pair.
    # ------------------------------------------------------------------

    def _emit_fft_stages(self, linker: ProgramLinker, buf: int) -> None:
        n = self.params.n_fft
        delta = self.mem.fft_pair_delta
        linker.call_kernel(
            build_stage1_pair_dfg(delta=delta), live_ins={"buf": buf}, trip_count=n // 2
        )
        for tw_addr, params, half in self._twiddle_layout():
            linker.call_kernel(
                build_stage_pair_dfg("fft_stagex2_h%d" % half, delta=delta),
                live_ins={"buf": buf, "tw": tw_addr, **params},
                trip_count=n // 4,
            )

    # ------------------------------------------------------------------
    # The packet pipeline.
    # ------------------------------------------------------------------

    def run_packet(
        self,
        rx: np.ndarray,
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
    ) -> ReceiverOutput:
        """Process one packet; *rx* is (2, n_samples) complex float.

        *detect_hint* seeds the detection search (the host's coarse
        knowledge of when the slave was started relative to the RF
        front-end stream); defaults to 32 samples into the buffer.
        """
        gen = self._pipeline(rx, n_symbols=n_symbols, detect_hint=detect_hint)
        resp = None
        while True:
            try:
                req = gen.send(resp)
            except StopIteration as stop:
                return stop.value
            resp = self._run_region(
                req.name, req.image, req.build, key=req.key, patch=req.patch
            )

    def _pipeline(
        self,
        rx: np.ndarray,
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
    ):
        """The packet pipeline as a region generator.

        Yields one :class:`RegionRequest` per Table 2 region, in packet
        order, and expects ``(RegionRun, image)`` sent back for each;
        returns the :class:`ReceiverOutput` via ``StopIteration``.  All
        host orchestration (candidate picks, CORDIC constants, parameter
        blocks) lives between the yields, so any driver that executes
        the requested regions faithfully — per-packet or batched across
        packets — produces bit-identical packets.
        """
        if n_symbols != 2:
            raise ValueError("the pipeline processes one merged symbol pair")
        mem = self.mem
        fs = self.params.sample_rate_hz
        rx = np.atleast_2d(np.asarray(rx, dtype=np.complex128))
        n_samples = rx.shape[1]
        detect_hint = 32 if detect_hint is None else int(detect_hint)
        if n_samples < MIN_PACKET_SAMPLES:
            raise ValueError(
                "packet too short: %d samples; the receive pipeline needs at "
                "least %d (the 352-pair STF/LTF sync region plus one tail "
                "sample pair)" % (n_samples, MIN_PACKET_SAMPLES)
            )
        if n_samples > _ANT_CAPACITY:
            raise ValueError(
                "packet too long: %d samples exceed the %d-sample antenna "
                "buffers" % (n_samples, _ANT_CAPACITY)
            )
        n_sync = min(352, n_samples)
        max_hint = n_sync - 16 - _ACORR_SPAN
        if not 0 <= detect_hint <= max_hint:
            raise ValueError(
                "detect_hint %d out of range 0..%d: the candidate "
                "autocorrelation windows read up to detect_hint + %d samples "
                "of the %d-sample deinterleaved sync region"
                % (detect_hint, max_hint, 16 + _ACORR_SPAN, n_sync)
            )
        shape = (n_samples, n_symbols)
        rx_re, rx_im = q15(rx.real), q15(rx.imag)

        image = bytearray(self.arch.l1.bytes)
        self._write_words(image, mem.RXIN, _interleave_words(rx_re, rx_im))
        self._write_words(image, mem.ATAN, atan_table_q16(14))
        self._write_words(image, mem.XCREF, self._ltf_ref_words(), size=8)
        self._write_words(image, mem.RTAB, [4 * int(r) for r in bit_reverse_indices(64)])
        self._write_words(image, mem.BINTAB, self._bin_table_words())
        self._write_words(image, mem.SGN, self._sign_table_words(), size=8)
        self._write_twiddles(image)

        pre: List[RegionRun] = []

        # -- non-kernel: program setup glue --------------------------------
        def build_init(linker):
            vb = linker.vliw()
            vb.op(Opcode.ADD, 0, n_samples, dst=PhysReg(40))
            vb.op(Opcode.ADD, 0, n_symbols, dst=PhysReg(41))
            return {}

        run, image = yield RegionRequest("non-kernel code", image, build_init, key=shape)
        pre.append(run)

        # -- sample ordering: deinterleave the sync region ------------------
        def build_order(linker):
            vliw_kernels.emit_deinterleave_adc(
                linker.vliw(), mem.RXIN, mem.ANT0, mem.ANT1, n_sync, unroll=2
            )
            return {}

        run, image = yield RegionRequest("sample ordering", image, build_order, key=shape)
        pre.append(run)

        # -- acorr: packet detection (3 candidates) -------------------------
        window = 32
        candidates = [max(0, detect_hint - 16), detect_hint, detect_hint + 16]
        for ci, pos in enumerate(candidates):
            self._write_param(image, _P_CAND[ci], mem.ANT0 + 4 * pos)

        def build_acorr(linker):
            handles = {}
            for ci in range(len(_P_CAND)):
                base_r = self._load_param(linker.vliw(), _P_CAND[ci])
                outs = linker.call_kernel(
                    build_acorr_dfg(lag_samples=16, name="acorr_p%d" % ci),
                    live_ins={"base": base_r},
                    trip_count=window // 2,
                )
                vb = linker.vliw()
                re_r, im_r, mag_r = PhysReg(40), PhysReg(41), PhysReg(42 + ci)
                vliw_kernels.emit_lane_reduce_mag(vb, outs["corr"], re_r, im_r, mag_r)
                e_r = PhysReg(45 + ci)
                vliw_kernels.emit_lane_reduce_mag(
                    vb, outs["energy"], PhysReg(40), PhysReg(41), e_r
                )
                handles["corr%d" % ci] = outs["corr"]
                handles["mag%d" % ci] = mag_r
                handles["energy%d" % ci] = outs["energy"]
            return handles

        run, image = yield RegionRequest("acorr", image, build_acorr, key=("detect",) + shape)
        pre.append(run)
        # Host: pick the first candidate whose correlation magnitude
        # clears the threshold, then derive the coarse CFO from its
        # correlation angle (fixed-point CORDIC, as on the array).
        detect_pos = candidates[-1]
        corr_word = None
        for ci, pos in enumerate(candidates):
            word = run.outputs["corr%d" % ci]
            lanes = split_lanes(word)
            c_re, c_im = lanes[0] + lanes[2], lanes[1] + lanes[3]
            e_lanes = split_lanes(run.outputs["energy%d" % ci])
            energy = sum(e_lanes)
            if energy > 0 and (c_re * c_re + c_im * c_im) > (0.7 * energy) ** 2:
                detect_pos = pos
                corr_word = (c_re, c_im)
                break
        if corr_word is None:
            lanes = split_lanes(run.outputs["corr%d" % (len(candidates) - 1)])
            corr_word = (lanes[0] + lanes[2], lanes[1] + lanes[3])
        coarse_angle = cordic_atan2_q16(corr_word[1], max(corr_word[0], 1))
        coarse_cfo = angle_q16_to_hz(coarse_angle, 16, fs)

        # -- fshift: coarse-CFO rotate of the antenna-0 LTF region ----------
        ltf_guess = detect_pos + 160  # LTF starts one STF after detection
        n_rot = 192

        def build_fshift1(linker):
            src_r = self._load_param(linker.vliw(), _P_FSHIFT_SRC)
            linker.call_kernel(
                build_fshift_dfg("fshift"),
                live_ins={
                    "src": src_r,
                    "dst": mem.WORK0,
                    "tab": mem.PHTAB,
                },
                trip_count=n_rot // 2,
            )
            return {}

        table = phasor_table_words(-coarse_cfo, fs, n_rot, start_sample=ltf_guess)
        self._write_words(image, mem.PHTAB, table, size=8)
        self._write_param(image, _P_FSHIFT_SRC, mem.ANT0 + 4 * ltf_guess)
        run, image = yield RegionRequest("fshift", image, build_fshift1, key=("ltf",) + shape)
        pre.append(run)

        # -- xcorr: timing (4 even candidates around the expected LTF) ------
        # WORK0 starts at ltf_guess; the first long symbol sits ~32 in,
        # but STF detection has a +-16-sample plateau ambiguity, so the
        # timing search spans 22..52.
        xc_candidates = list(range(22, 54, 2))

        mag_spill = mem.SCRATCH + 64

        def build_xcorr(linker):
            for ci, pos in enumerate(xc_candidates):
                outs = linker.call_kernel(
                    build_xcorr_dfg("xcorr_p%d" % ci),
                    live_ins={"base": mem.WORK0 + 4 * pos, "ref": mem.XCREF},
                    trip_count=32,
                )
                vb = linker.vliw()
                mag_r = PhysReg(42)
                vliw_kernels.emit_lane_reduce_mag(
                    vb, outs["corr"], PhysReg(40), PhysReg(41), mag_r
                )
                # Spill the candidate magnitude to scratch memory for the
                # host's peak pick, and recycle the kernel's registers.
                sa = vb.shared_reg("xc_sa")
                vb.op(Opcode.ADD, 0, mag_spill + 4 * ci, dst=sa)
                vb.store(Opcode.ST_I, sa, 0, mag_r)
                linker.release(outs)
            return {}

        run, image = yield RegionRequest("xcorr", image, build_xcorr, key=shape)
        pre.append(run)
        mags = []
        for ci in range(len(xc_candidates)):
            raw = int.from_bytes(
                image[mag_spill + 4 * ci : mag_spill + 4 * ci + 4], "little"
            )
            mags.append(to_signed(raw, 32))
        ltf1_rel = xc_candidates[int(np.argmax(mags))]
        ltf1_start = ltf_guess + ltf1_rel

        # -- acorr (fine CFO correlation over the repeated long symbol) -----
        def build_acorr2(linker):
            base_r = self._load_param(linker.vliw(), _P_ACORR2_BASE)
            outs = linker.call_kernel(
                build_acorr_dfg(lag_samples=64, name="acorr_fine", acc_shift=2),
                live_ins={"base": base_r},
                trip_count=32,
            )
            vb = linker.vliw()
            re_r, im_r = PhysReg(42), PhysReg(43)
            vliw_kernels.emit_lane_reduce_mag(vb, outs["corr"], re_r, im_r, PhysReg(44))
            return {"corr": outs["corr"], "re": re_r, "im": im_r}

        self._write_param(image, _P_ACORR2_BASE, mem.WORK0 + 4 * ltf1_rel)
        run, image = yield RegionRequest("acorr", image, build_acorr2, key=("fine",) + shape)
        pre.append(run)

        # -- freq offset estimation: CORDIC on the array --------------------
        fine_in = (run.outputs["re"], run.outputs["im"])

        def build_freqest(linker):
            vb = linker.vliw()
            x_r, y_r = PhysReg(40), PhysReg(41)
            vb.op(Opcode.LD_I, vb.mov_imm(mem.PARAM), _P_CORDIC_X, dst=x_r)
            vb.op(Opcode.LD_I, vb.mov_imm(mem.PARAM), _P_CORDIC_Y, dst=y_r)
            outs = linker.call_kernel(
                build_cordic_dfg(iterations=14),
                live_ins={"tab": mem.ATAN, "x0": x_r, "y0": y_r},
                trip_count=14,
            )
            return {"angle": outs["angle"]}

        self._write_param(image, _P_CORDIC_X, to_signed(fine_in[0], 32))
        self._write_param(image, _P_CORDIC_Y, to_signed(fine_in[1], 32))
        run, image = yield RegionRequest(
            "freq offset estimation", image, build_freqest, key=shape
        )
        pre.append(run)
        fine_angle = to_signed(run.outputs["angle"], 32)
        fine_cfo = angle_q16_to_hz(fine_angle, 64, fs)

        # -- sample reordering: deinterleave HT-LTFs + data symbols ---------
        ht_start = ltf1_start + 128
        n_tail_pairs = min(n_samples, ht_start + 160 + 80 * n_symbols) - 352

        def build_reorder2(linker):
            vb = linker.vliw()
            n_pairs_r = self._load_param(vb, _P_TAIL_PAIRS)
            vliw_kernels.emit_deinterleave_adc(
                vb,
                mem.RXIN + 8 * 352,
                mem.ANT0 + 4 * 352,
                mem.ANT1 + 4 * 352,
                n_pairs_r,
                unroll=2,
            )
            return {}

        self._write_param(image, _P_TAIL_PAIRS, (n_tail_pairs // 2) * 2)
        run, image = yield RegionRequest("sample reordering", image, build_reorder2, key=shape)
        pre.append(run)

        # -- fshift: coarse rotate of both antennas' HT-LTF region ----------
        def build_fshift2(linker):
            for ant, dst in enumerate([mem.WORK0, mem.WORK1]):
                src_r = self._load_param(linker.vliw(), _P_FSHIFT2_SRC[ant])
                linker.call_kernel(
                    build_fshift_dfg("fshift_ht_a%d" % ant),
                    live_ins={
                        "src": src_r,
                        "dst": dst,
                        "tab": mem.PHTAB,
                    },
                    trip_count=80,
                )
            return {}

        table = phasor_table_words(-coarse_cfo, fs, 160, start_sample=ht_start)
        self._write_words(image, mem.PHTAB, table, size=8)
        for ant, src in enumerate([mem.ANT0, mem.ANT1]):
            self._write_param(image, _P_FSHIFT2_SRC[ant], src + 4 * ht_start)
        run, image = yield RegionRequest("fshift", image, build_fshift2, key=("ht",) + shape)
        pre.append(run)

        # -- freq offset compensation: fine recursive rotate ----------------
        step_w, ph0_w = rotate_constants(-fine_cfo, fs, start_sample=ht_start)

        def build_freqcomp(linker):
            # Sentinel-compiled template: the packet's step/initial
            # phasors are stamped in with patch_constants at run time.
            for ant, (src, dst) in enumerate(
                [(mem.WORK0, mem.CORR0), (mem.WORK1, mem.CORR1)]
            ):
                linker.call_kernel(
                    build_cfo_rotate("cfo_rot_a%d" % ant),
                    live_ins={"src": src, "dst": dst},
                    trip_count=80,
                )
            return {}

        run, image = yield RegionRequest(
            "freq offset compensation",
            image,
            build_freqcomp,
            key=shape,
            patch=cfo_rotate_patch(step_w, ph0_w),
        )
        pre.append(run)

        # -- fft: the four HT-LTF spectra (two loop-merged pair calls) ------
        def build_fft_pre(linker):
            for sym in range(2):
                src_off = 4 * (80 * sym + 16)  # skip the 16-sample CP
                dst = mem.FFT0 if sym == 0 else mem.FFT2
                linker.call_kernel(
                    build_reorder_pair_dfg(
                        "fft_reorder2_s%d" % sym,
                        delta_src=mem.CORR1 - mem.CORR0,
                        delta_dst=mem.fft_pair_delta,
                    ),
                    live_ins={
                        "src": mem.CORR0 + src_off,
                        "dst": dst,
                        "tab": mem.RTAB,
                    },
                    trip_count=64,
                )
                self._emit_fft_stages(linker, dst)
            return {}

        run, image = yield RegionRequest("fft", image, build_fft_pre, key=("pre",) + shape)
        pre.append(run)

        # -- remove zero carriers: compact the four spectra ------------------
        def build_rzc(linker):
            vb = linker.vliw()
            # Grids: FFT0 = HT-LTF1 ant0, FFT1 = HT-LTF1 ant1,
            #        FFT2 = HT-LTF2 ant0, FFT3 = HT-LTF2 ant1.
            pairs = [
                (mem.FFT0, mem.COMP0),  # y1 ant0
                (mem.FFT2, mem.COMP1),  # y2 ant0
                (mem.FFT1, mem.COMP2),  # y1 ant1
                (mem.FFT3, mem.COMP3),  # y2 ant1
            ]
            for grid, comp in pairs:
                vliw_kernels.emit_remove_zero_carriers(vb, grid, comp)
            return {}

        run, image = yield RegionRequest("remove zero carriers", image, build_rzc, key=shape)
        pre.append(run)

        # -- SDM processing (preamble): P-matrix channel combining -----------
        def build_chanest(linker):
            for ant, (y1, y2) in enumerate(
                [(mem.COMP0, mem.COMP1), (mem.COMP2, mem.COMP3)]
            ):
                linker.call_kernel(
                    build_chanest_dfg("chanest_a%d" % ant),
                    live_ins={
                        "y1": y1,
                        "y2": y2,
                        "sgn": mem.SGN,
                        "hout": mem.HBUF + 8 * ant,
                    },
                    trip_count=28,
                )
            return {}

        run, image = yield RegionRequest(
            "SDM processing", image, build_chanest, key=("pre",) + shape
        )
        pre.append(run)

        # -- equalize coeff calc ---------------------------------------------
        def build_eqcoef(linker):
            linker.call_kernel(
                build_eqcoef_dfg(),
                live_ins={"hbase": mem.HBUF, "wbase": mem.WBUF},
                trip_count=56,
            )
            return {}

        run, image = yield RegionRequest(
            "equalize coeff calc", image, build_eqcoef, key=shape
        )
        pre.append(run)

        # ==================== data phase (one symbol pair) ==================
        data: List[RegionRun] = []
        data_start = ht_start + 160
        total_cfo = coarse_cfo + fine_cfo

        # -- fshift: fused gather (CP strip + bit reversal) and rotation -----
        rev_offsets = {
            sym: self._gather_table_words(80 * sym + 16) for sym in range(n_symbols)
        }
        for sym in range(n_symbols):
            self._write_words(
                image,
                mem.GTAB0 if sym == 0 else mem.GTAB1,
                rev_offsets[sym],
            )
            indices = [data_start + off // 4 for off in rev_offsets[sym]]
            self._write_words(
                image,
                mem.PHTAB32 + 0x100 * sym,
                phasor_table_words32(-total_cfo, fs, indices),
            )

        def build_data_fshift(linker):
            for sym in range(n_symbols):
                src_r = self._load_param(linker.vliw(), _P_DATA_SRC)
                linker.call_kernel(
                    build_gather_rotate_dfg(
                        "gather_rotate_s%d" % sym,
                        delta_src=mem.ant_delta,
                        delta_dst=mem.fft_pair_delta,
                    ),
                    live_ins={
                        "src": src_r,
                        "dst": mem.FFT0 if sym == 0 else mem.FFT2,
                        "tab": mem.GTAB0 if sym == 0 else mem.GTAB1,
                        "ph": mem.PHTAB32 + 0x100 * sym,
                    },
                    trip_count=64,
                )
            return {}

        self._write_param(image, _P_DATA_SRC, mem.ANT0 + 4 * data_start)
        run, image = yield RegionRequest(
            "fshift", image, build_data_fshift, key=("data",) + shape
        )
        data.append(run)

        # -- fft ---------------------------------------------------------------
        def build_data_fft(linker):
            for sym in range(n_symbols):
                self._emit_fft_stages(linker, mem.FFT0 if sym == 0 else mem.FFT2)
            return {}

        run, image = yield RegionRequest(
            "fft", image, build_data_fft, key=("data",) + shape
        )
        data.append(run)

        # -- data shuffle: per-carrier Y vectors --------------------------------
        def build_shuffle(linker):
            for sym in range(n_symbols):
                g0 = mem.FFT0 if sym == 0 else mem.FFT2
                linker.call_kernel(
                    build_shuffle_dfg("data_shuffle_s%d" % sym),
                    live_ins={
                        "g0": g0,
                        "g1": g0 + mem.fft_pair_delta,
                        "tab": mem.BINTAB,
                        "ybase": mem.YBUF0 if sym == 0 else mem.YBUF1,
                    },
                    trip_count=56,
                )
            return {}

        run, image = yield RegionRequest("data shuffle", image, build_shuffle, key=shape)
        data.append(run)

        # -- SDM processing ------------------------------------------------------
        def build_data_sdm(linker):
            for sym in range(n_symbols):
                linker.call_kernel(
                    build_sdm_dfg("sdm_s%d" % sym, yshift=5),
                    live_ins={
                        "ybase": mem.YBUF0 if sym == 0 else mem.YBUF1,
                        "wbase": mem.WBUF,
                        "xbase": mem.XBUF0 if sym == 0 else mem.XBUF1,
                    },
                    trip_count=56,
                )
            return {}

        run, image = yield RegionRequest(
            "SDM processing", image, build_data_sdm, key=("data",) + shape
        )
        data.append(run)

        # -- tracking: pilot CPE phasors (one per symbol) -------------------------
        pilot_bins = list(self.params.pilot_carriers)
        pilot_idx = [self.compact_bins.index(b) for b in pilot_bins]
        phasor_regs = [PhysReg(46), PhysReg(47)]

        def build_tracking(linker):
            vb = linker.vliw()
            for sym in range(n_symbols):
                pol = PILOT_POLARITY[sym % len(PILOT_POLARITY)]
                signs = [int(PILOT_VALUES[b] * pol) for b in pilot_bins]
                vliw_kernels.emit_tracking(
                    vb,
                    (self.mem.XBUF0 if sym == 0 else self.mem.XBUF1),
                    [8 * i for i in pilot_idx],
                    signs,
                    phasor_regs[sym],
                    scratch_addr=mem.SCRATCH + 16 * sym,
                )
            return {}

        run, image = yield RegionRequest("tracking", image, build_tracking, key=shape)
        data.append(run)

        # -- comp: CPE rotation + rescale to Q15/2 --------------------------------
        def build_comp(linker):
            for sym in range(n_symbols):
                # Re-materialise the tracking phasor in this region's
                # program: it survives in the scratch slot.
                vb = linker.vliw()
                saddr = vb.mov_imm(mem.SCRATCH + 16 * sym)
                vb.op(Opcode.LD_Q, saddr, 0, dst=phasor_regs[sym])
                linker.call_kernel(
                    build_comp_dfg("comp_s%d" % sym, shift=6),
                    live_ins={
                        "src": mem.XBUF0 if sym == 0 else mem.XBUF1,
                        "dst": mem.CBUF0 if sym == 0 else mem.CBUF1,
                        "phasor": phasor_regs[sym],
                    },
                    trip_count=56,
                )
            return {}

        run, image = yield RegionRequest("comp", image, build_comp, key=shape)
        data.append(run)

        # -- demod QAM64 --------------------------------------------------------------
        def build_demod(linker):
            for sym in range(n_symbols):
                linker.call_kernel(
                    build_demod_dfg("demod_s%d" % sym),
                    live_ins={
                        "src": mem.CBUF0 if sym == 0 else mem.CBUF1,
                        "dst": mem.LBUF0 if sym == 0 else mem.LBUF1,
                    },
                    trip_count=56,
                )
            return {}

        run, image = yield RegionRequest("demod QAM64", image, build_demod, key=shape)
        data.append(run)

        bits = self._unpack_bits(image, n_symbols)

        total = ActivityStats()
        for region in pre + data:
            total.merge(region.profile.stats)

        return ReceiverOutput(
            preamble_regions=pre,
            data_regions=data,
            bits=bits,
            detect_pos=detect_pos,
            ltf1_start=ltf1_start,
            coarse_cfo_hz=coarse_cfo,
            fine_cfo_hz=fine_cfo,
            stats=total,
            image=bytes(image),
        )

    # ------------------------------------------------------------------

    def _unpack_bits(self, image: bytearray, n_symbols: int) -> np.ndarray:
        """Gray-label words -> the transmitter's bit ordering."""
        bits: List[int] = []
        for sym in range(n_symbols):
            base = self.mem.LBUF0 if sym == 0 else self.mem.LBUF1
            labels = {}
            for ci, bin_ in enumerate(self.compact_bins):
                word = int.from_bytes(image[base + 8 * ci : base + 8 * ci + 8], "little")
                lanes = split_lanes(word)
                labels[bin_] = lanes  # (gi0, gq0, gi1, gq1)
            for stream in range(self.params.n_streams):
                for bin_ in self.params.data_carriers:
                    gi = labels[bin_][2 * stream]
                    gq = labels[bin_][2 * stream + 1]
                    for shift in (2, 1, 0):
                        bits.append((gi >> shift) & 1)
                    for shift in (2, 1, 0):
                        bits.append((gq >> shift) & 1)
        return np.array(bits, dtype=np.int64)
