"""Scratchpad layout of the modem programs.

All addresses are byte offsets into the 64 KB L1.  Complex samples are
one 32-bit word each (re low, im high); 64-bit SIMD accesses cover two
samples.  Buffers are 16-byte aligned so that 64-bit accesses start on
even bank pairs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryMap:
    """Byte addresses of every modem buffer."""

    #: ADC-interleaved input stream: (a0[k], a1[k]) word pairs.
    RXIN: int = 0x0000  # up to 1024 sample pairs = 8 KB
    #: Deinterleaved per-antenna sample buffers.
    ANT0: int = 0x2000  # up to 1024 samples = 4 KB
    ANT1: int = 0x3000
    #: Rotated working buffers (coarse-CFO corrected regions).
    WORK0: int = 0x4000  # 512 samples
    WORK1: int = 0x4800
    #: Fine-corrected HT-LTF region, antenna buffers 640 B apart.
    CORR0: int = 0x5000  # 160 samples
    CORR1: int = 0x5280
    #: Packed (2-sample) phasor table for the table-based fshift.
    PHTAB: int = 0x5800  # up to 256 words = 2 KB
    #: 32-bit phasor table for the fused gather-rotate.
    PHTAB32: int = 0x6000  # up to 256 entries = 1 KB
    #: Cross-correlation reference (64 packed samples).
    XCREF: int = 0x6400
    #: CORDIC arctangent table.
    ATAN: int = 0x6500
    #: Gather tables: CP-strip + bit-reversal for the data symbols.
    GTAB0: int = 0x6600  # symbol 0 (64 entries)
    GTAB1: int = 0x6700  # symbol 1
    #: Plain bit-reversal byte-offset table (64 entries).
    RTAB: int = 0x6800
    #: Used-carrier byte offsets within a 64-bin grid (56 entries).
    BINTAB: int = 0x6900
    #: FFT working buffers (4 x 64 words).  The pair delta is 264 B —
    #: 256 plus one bank-pair skew — so that the two merged buffers'
    #: butterfly accesses land on different L1 banks instead of
    #: queueing behind each other every cycle.
    FFT0: int = 0x6A00
    FFT1: int = 0x6B08
    FFT2: int = 0x6C20
    FFT3: int = 0x6D28
    #: Per-stage twiddle tables (5 stages x 16 x 8 B).
    TWID: int = 0x6E40
    #: Compact spectra (4 x 56 words, padded to 256 B).
    COMP0: int = 0x7200
    COMP1: int = 0x7300
    COMP2: int = 0x7400
    COMP3: int = 0x7500
    #: Channel-combining sign table (28 words).
    SGN: int = 0x7600
    #: Channel estimate H (56 carriers x 16 B).
    HBUF: int = 0x7800
    #: Equaliser W (56 carriers x 16 B).
    WBUF: int = 0x7C00
    #: Per-symbol carrier vectors y (56 words each).
    YBUF0: int = 0x8000
    YBUF1: int = 0x8200
    #: Detected symbols x_hat (Q8).
    XBUF0: int = 0x8400
    XBUF1: int = 0x8600
    #: Compensated symbols (half-normalised Q15).
    CBUF0: int = 0x8800
    CBUF1: int = 0x8A00
    #: Demapped Gray-label words.
    LBUF0: int = 0x8C00
    LBUF1: int = 0x8E00
    #: Scratch slot for 64-bit materialisation tricks.
    SCRATCH: int = 0x9000
    #: Host-written per-packet parameter block (32-bit words).  Region
    #: programs load their packet-dependent values (detection base
    #: addresses, correlation words, tail loop counts) from here instead
    #: of baking them in as immediates, so one linked program serves
    #: every packet of the same shape.
    PARAM: int = 0x9100

    @property
    def ant_delta(self) -> int:
        """Byte distance between the two antenna sample buffers."""
        return self.ANT1 - self.ANT0

    @property
    def fft_pair_delta(self) -> int:
        """Byte distance between paired FFT buffers."""
        return self.FFT1 - self.FFT0


DEFAULT_MAP = MemoryMap()
