"""Activity statistics traced by the simulator.

:class:`ActivityStats` is the contract between the simulator and the
power model: every counter corresponds to a class of switching events
whose energy cost the power model prices.  :class:`KernelProfile`
aggregates the per-kernel numbers reported in Table 2 of the paper
(mode, IPC, cycles).

Stall attribution
-----------------
``stall_cycles`` is no longer an opaque lump: every increment goes
through :meth:`ActivityStats.add_stall` and is attributed to one
:class:`~repro.trace.events.StallCause` (bank conflict, I$ miss,
branch penalty, scoreboard interlock, DMA configuration load).
:meth:`ActivityStats.validate` enforces the two bookkeeping invariants
— per-cause counters sum exactly to ``stall_cycles``, and the mode
cycle counters sum to ``total_cycles`` — and is called at the end of
every simulated region.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.opcodes import Opcode, group_of, op_weight
from repro.trace.events import StallCause


class StatsError(Exception):
    """Raised by :meth:`ActivityStats.validate` on inconsistent counters."""


#: Every scalar counter, in declaration order (merge/delta/export walk this).
_SCALAR_FIELDS = (
    "vliw_cycles",
    "cga_cycles",
    "stall_cycles",
    "sleep_cycles",
    "vliw_ops",
    "cga_ops",
    "squashed_ops",
    "cdrf_reads",
    "cdrf_writes",
    "cprf_reads",
    "cprf_writes",
    "lrf_reads",
    "lrf_writes",
    "l1_reads",
    "l1_writes",
    "l1_bank_conflicts",
    "l1_conflict_stall_cycles",
    "icache_hits",
    "icache_misses",
    "config_words",
    "interconnect_transfers",
    "bus_reads",
    "bus_writes",
    "dma_words",
)

#: Keyed (Counter-valued) fields, merged/diffed alongside the scalars.
_COUNTER_FIELDS = ("fu_ops", "op_groups", "stall_causes")


@dataclass
class ActivityStats:
    """Event counters for one simulated region.

    Cycle counters
    --------------
    ``vliw_cycles`` / ``cga_cycles`` split total time by mode;
    ``stall_cycles`` are cycles lost to interlocks, branch penalties,
    I$ misses and L1 bank conflicts (included in the mode counters)
    and are attributed per cause in ``stall_causes``.
    """

    vliw_cycles: int = 0
    cga_cycles: int = 0
    stall_cycles: int = 0
    sleep_cycles: int = 0

    # Operation counters.
    vliw_ops: int = 0
    cga_ops: int = 0
    fu_ops: Counter = field(default_factory=Counter)  # fu index -> executed ops
    op_groups: Counter = field(default_factory=Counter)  # OpGroup -> count
    squashed_ops: int = 0

    # Stall attribution: StallCause -> cycles (sums to stall_cycles).
    stall_causes: Counter = field(default_factory=Counter)

    # Register file traffic.
    cdrf_reads: int = 0
    cdrf_writes: int = 0
    cprf_reads: int = 0
    cprf_writes: int = 0
    lrf_reads: int = 0
    lrf_writes: int = 0

    # Memory system.
    l1_reads: int = 0
    l1_writes: int = 0
    l1_bank_conflicts: int = 0
    l1_conflict_stall_cycles: int = 0
    icache_hits: int = 0
    icache_misses: int = 0

    # CGA configuration and interconnect.
    config_words: int = 0
    interconnect_transfers: int = 0

    # Bus / DMA.
    bus_reads: int = 0
    bus_writes: int = 0
    dma_words: int = 0

    @property
    def active_cycles(self) -> int:
        """Cycles the core was executing (VLIW + CGA, sleep excluded)."""
        return self.vliw_cycles + self.cga_cycles

    @property
    def total_cycles(self) -> int:
        """Total accounted cycles: VLIW + CGA + sleep."""
        return self.vliw_cycles + self.cga_cycles + self.sleep_cycles

    @property
    def total_ops(self) -> int:
        """Total executed (non-squashed) operations, IPC-weighted."""
        return self.vliw_ops + self.cga_ops

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the whole region."""
        if self.total_cycles == 0:
            return 0.0
        return self.total_ops / self.total_cycles

    @property
    def cga_fraction(self) -> float:
        """Fraction of accounted time spent in CGA mode."""
        if self.total_cycles == 0:
            return 0.0
        return self.cga_cycles / self.total_cycles

    def count_op(self, fu: int, op: Opcode, in_cga: bool) -> None:
        """Record one executed operation on unit *fu*."""
        weight = op_weight(op)
        self.fu_ops[fu] += weight
        self.op_groups[group_of(op)] += weight
        if in_cga:
            self.cga_ops += weight
        else:
            self.vliw_ops += weight

    def add_stall(self, cause: StallCause, cycles: int) -> None:
        """Book *cycles* lost to *cause* (the only way stalls accrue)."""
        if cycles <= 0:
            return
        self.stall_cycles += cycles
        self.stall_causes[cause] += cycles

    def stall_breakdown(self) -> Dict[str, int]:
        """Per-cause stall cycles keyed by cause name (all causes listed)."""
        return {cause.value: int(self.stall_causes.get(cause, 0)) for cause in StallCause}

    def validate(self) -> "ActivityStats":
        """Assert the cycle bookkeeping is self-consistent.

        * mode counters account for all time:
          ``vliw_cycles + cga_cycles + sleep_cycles == total_cycles``;
        * every stall cycle carries exactly one cause:
          ``sum(stall_causes) == stall_cycles``;
        * stalls happened inside accounted execution time.

        Returns ``self`` so call sites can chain; raises
        :class:`StatsError` on violation.
        """
        if self.vliw_cycles + self.cga_cycles + self.sleep_cycles != self.total_cycles:
            raise StatsError(
                "mode cycles %d+%d+%d do not account for total_cycles %d"
                % (self.vliw_cycles, self.cga_cycles, self.sleep_cycles, self.total_cycles)
            )
        cause_sum = sum(self.stall_causes.values())
        if cause_sum != self.stall_cycles:
            raise StatsError(
                "stall causes sum to %d but stall_cycles is %d (%r)"
                % (cause_sum, self.stall_cycles, self.stall_breakdown())
            )
        if self.stall_cycles > self.active_cycles:
            raise StatsError(
                "stall_cycles %d exceed active cycles %d"
                % (self.stall_cycles, self.active_cycles)
            )
        return self

    def merge(self, other: "ActivityStats") -> None:
        """Accumulate *other* into this object (used by region profiling)."""
        for name in _SCALAR_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in _COUNTER_FIELDS:
            getattr(self, name).update(getattr(other, name))

    def snapshot(self) -> "ActivityStats":
        """Return a deep copy of the current counters."""
        copy = ActivityStats()
        copy.merge(self)
        return copy

    def delta_since(self, earlier: "ActivityStats") -> "ActivityStats":
        """Return the difference between this snapshot and an *earlier* one."""
        out = ActivityStats()
        for name in _SCALAR_FIELDS:
            setattr(out, name, getattr(self, name) - getattr(earlier, name))
        for name in _COUNTER_FIELDS:
            setattr(out, name, getattr(self, name) - getattr(earlier, name))
        return out

    def as_dict(self) -> Dict[str, object]:
        """Flat, JSON-serialisable view consumed by the trace exporters."""
        return {
            "counters": {name: getattr(self, name) for name in _SCALAR_FIELDS},
            "fu_ops": {int(fu): int(n) for fu, n in self.fu_ops.items()},
            "op_groups": {
                (g.value if hasattr(g, "value") else str(g)): int(n)
                for g, n in self.op_groups.items()
            },
            "stall_causes": self.stall_breakdown(),
        }


@dataclass
class KernelProfile:
    """One row of Table 2: a profiled kernel region.

    ``mode`` is "CGA", "VLIW" or "mixed" following the paper's
    classification: CGA when nearly all cycles run on the array, VLIW
    when no loop was mapped, mixed when a mapped loop is accompanied by
    significant VLIW pre/post-processing.
    """

    name: str
    stats: ActivityStats
    ii: Optional[int] = None

    @property
    def cycles(self) -> int:
        """Total cycles of the region."""
        return self.stats.total_cycles

    @property
    def ipc(self) -> float:
        """Region IPC (weighted ops / cycles)."""
        return self.stats.ipc

    @property
    def mode(self) -> str:
        """Paper-style mode classification of the region."""
        frac = self.stats.cga_fraction
        if frac >= 0.75:
            return "CGA"
        if frac <= 0.10:
            return "VLIW"
        return "mixed"

    def row(self) -> Dict[str, object]:
        """Render as a Table 2 row."""
        return {
            "kernel": self.name,
            "mode": self.mode,
            "IPC": round(self.ipc, 2),
            "cycles": self.cycles,
        }
