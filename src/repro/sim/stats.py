"""Activity statistics traced by the simulator.

:class:`ActivityStats` is the contract between the simulator and the
power model: every counter corresponds to a class of switching events
whose energy cost the power model prices.  :class:`KernelProfile`
aggregates the per-kernel numbers reported in Table 2 of the paper
(mode, IPC, cycles).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.opcodes import Opcode, OpGroup, group_of, op_weight


@dataclass
class ActivityStats:
    """Event counters for one simulated region.

    Cycle counters
    --------------
    ``vliw_cycles`` / ``cga_cycles`` split total time by mode;
    ``stall_cycles`` are cycles lost to interlocks, branch penalties,
    I$ misses and L1 bank conflicts (included in the mode counters).
    """

    vliw_cycles: int = 0
    cga_cycles: int = 0
    stall_cycles: int = 0
    sleep_cycles: int = 0

    # Operation counters.
    vliw_ops: int = 0
    cga_ops: int = 0
    fu_ops: Counter = field(default_factory=Counter)  # fu index -> executed ops
    op_groups: Counter = field(default_factory=Counter)  # OpGroup -> count
    squashed_ops: int = 0

    # Register file traffic.
    cdrf_reads: int = 0
    cdrf_writes: int = 0
    cprf_reads: int = 0
    cprf_writes: int = 0
    lrf_reads: int = 0
    lrf_writes: int = 0

    # Memory system.
    l1_reads: int = 0
    l1_writes: int = 0
    l1_bank_conflicts: int = 0
    l1_conflict_stall_cycles: int = 0
    icache_hits: int = 0
    icache_misses: int = 0

    # CGA configuration and interconnect.
    config_words: int = 0
    interconnect_transfers: int = 0

    # Bus / DMA.
    bus_reads: int = 0
    bus_writes: int = 0
    dma_words: int = 0

    @property
    def total_cycles(self) -> int:
        """Total active cycles (VLIW + CGA, sleep excluded)."""
        return self.vliw_cycles + self.cga_cycles

    @property
    def total_ops(self) -> int:
        """Total executed (non-squashed) operations, IPC-weighted."""
        return self.vliw_ops + self.cga_ops

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the whole region."""
        if self.total_cycles == 0:
            return 0.0
        return self.total_ops / self.total_cycles

    @property
    def cga_fraction(self) -> float:
        """Fraction of active time spent in CGA mode."""
        if self.total_cycles == 0:
            return 0.0
        return self.cga_cycles / self.total_cycles

    def count_op(self, fu: int, op: Opcode, in_cga: bool) -> None:
        """Record one executed operation on unit *fu*."""
        weight = op_weight(op)
        self.fu_ops[fu] += weight
        self.op_groups[group_of(op)] += weight
        if in_cga:
            self.cga_ops += weight
        else:
            self.vliw_ops += weight

    def merge(self, other: "ActivityStats") -> None:
        """Accumulate *other* into this object (used by region profiling)."""
        for name in (
            "vliw_cycles",
            "cga_cycles",
            "stall_cycles",
            "sleep_cycles",
            "vliw_ops",
            "cga_ops",
            "squashed_ops",
            "cdrf_reads",
            "cdrf_writes",
            "cprf_reads",
            "cprf_writes",
            "lrf_reads",
            "lrf_writes",
            "l1_reads",
            "l1_writes",
            "l1_bank_conflicts",
            "l1_conflict_stall_cycles",
            "icache_hits",
            "icache_misses",
            "config_words",
            "interconnect_transfers",
            "bus_reads",
            "bus_writes",
            "dma_words",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.fu_ops.update(other.fu_ops)
        self.op_groups.update(other.op_groups)

    def snapshot(self) -> "ActivityStats":
        """Return a deep copy of the current counters."""
        copy = ActivityStats()
        copy.merge(self)
        return copy

    def delta_since(self, earlier: "ActivityStats") -> "ActivityStats":
        """Return the difference between this snapshot and an *earlier* one."""
        out = ActivityStats()
        out.merge(self)
        for name in (
            "vliw_cycles",
            "cga_cycles",
            "stall_cycles",
            "sleep_cycles",
            "vliw_ops",
            "cga_ops",
            "squashed_ops",
            "cdrf_reads",
            "cdrf_writes",
            "cprf_reads",
            "cprf_writes",
            "lrf_reads",
            "lrf_writes",
            "l1_reads",
            "l1_writes",
            "l1_bank_conflicts",
            "l1_conflict_stall_cycles",
            "icache_hits",
            "icache_misses",
            "config_words",
            "interconnect_transfers",
            "bus_reads",
            "bus_writes",
            "dma_words",
        ):
            setattr(out, name, getattr(self, name) - getattr(earlier, name))
        out.fu_ops = self.fu_ops - earlier.fu_ops
        out.op_groups = self.op_groups - earlier.op_groups
        return out


@dataclass
class KernelProfile:
    """One row of Table 2: a profiled kernel region.

    ``mode`` is "CGA", "VLIW" or "mixed" following the paper's
    classification: CGA when nearly all cycles run on the array, VLIW
    when no loop was mapped, mixed when a mapped loop is accompanied by
    significant VLIW pre/post-processing.
    """

    name: str
    stats: ActivityStats
    ii: Optional[int] = None

    @property
    def cycles(self) -> int:
        """Total cycles of the region."""
        return self.stats.total_cycles

    @property
    def ipc(self) -> float:
        """Region IPC (weighted ops / cycles)."""
        return self.stats.ipc

    @property
    def mode(self) -> str:
        """Paper-style mode classification of the region."""
        frac = self.stats.cga_fraction
        if frac >= 0.75:
            return "CGA"
        if frac <= 0.10:
            return "VLIW"
        return "mixed"

    def row(self) -> Dict[str, object]:
        """Render as a Table 2 row."""
        return {
            "kernel": self.name,
            "mode": self.mode,
            "IPC": round(self.ipc, 2),
            "cycles": self.cycles,
        }
