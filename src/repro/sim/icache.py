"""Direct-mapped instruction cache with 128-bit lines.

The paper's I$ is 32 KB with a dedicated 128-bit-wide instruction memory
interface; after reset the first fetches all miss, filling the cache
(cold-start behaviour the simulator reproduces).

The cache is modelled at the timing level only: it maps a *bundle
address* to a line and answers hit (no extra cycles) or miss
(``miss_penalty`` stall cycles while the 128-bit line refills).  Bundle
contents live in the program object; one line holds ``bundles_per_line``
consecutive bundles (a 3-slot bundle is assumed to occupy one 128-bit
word, as the paper's instruction memory interface suggests).
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.resources import MemorySpec
from repro.sim.stats import ActivityStats
from repro.trace.tracer import NULL_TRACER, Tracer


class InstructionCache:
    """Timing model of the direct-mapped I$.

    Parameters
    ----------
    spec:
        The SRAM macro (words x 128-bit).
    miss_penalty:
        Refill cycles per missed line.
    bundles_per_line:
        How many VLIW bundles share one 128-bit line (default 1: one
        3-issue bundle per line).
    """

    def __init__(
        self,
        spec: MemorySpec,
        miss_penalty: int = 8,
        bundles_per_line: int = 1,
        stats: Optional[ActivityStats] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.spec = spec
        self.n_lines = spec.words
        self.miss_penalty = miss_penalty
        self.bundles_per_line = bundles_per_line
        self._tags: List[Optional[int]] = [None] * self.n_lines
        self.stats = stats if stats is not None else ActivityStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def fetch(self, bundle_pc: int, cycle: int = 0) -> int:
        """Fetch the bundle at *bundle_pc*; returns stall cycles (0 on hit).

        *cycle* timestamps the miss event in the trace; it does not
        affect the timing model.
        """
        line_addr = bundle_pc // self.bundles_per_line
        index = line_addr % self.n_lines
        tag = line_addr // self.n_lines
        if self._tags[index] == tag:
            self.stats.icache_hits += 1
            return 0
        self._tags[index] = tag
        self.stats.icache_misses += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "stall.icache_miss",
                cycle,
                cat="stall",
                args={"pc": bundle_pc, "cycles": self.miss_penalty},
            )
        return self.miss_penalty

    def flush(self) -> None:
        """Invalidate all lines (reset behaviour)."""
        self._tags = [None] * self.n_lines

    @property
    def hit_rate(self) -> float:
        """Fraction of fetches that hit."""
        total = self.stats.icache_hits + self.stats.icache_misses
        if total == 0:
            return 0.0
        return self.stats.icache_hits / total
