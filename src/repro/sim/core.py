"""The processor core: mode orchestration, reset, sleep, profiling.

:class:`Core` wires together the register files, scratchpad, I$, bus and
the two execution engines.  Its :meth:`run` drives a program to
completion: VLIW execution until a ``cga`` instruction hands a kernel to
the array, back to VLIW at loop exit, until ``halt`` (sleep state; the
host may resume) or the end of the instruction stream.

Profiling regions (the rows of Table 2) are delimited with
:meth:`region` /  via :class:`RegionProfiler`: statistics snapshots
around a region yield per-kernel cycle counts and IPC.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.arch.config import CgaArchitecture
from repro.sim.bus import AmbaBus, DmaEngine
from repro.sim.cga import CgaEngine
from repro.sim.icache import InstructionCache
from repro.sim.memory import Scratchpad
from repro.sim.program import Program
from repro.sim.regfile import LocalRegisterFile, PredicateFile, RegisterFile
from repro.sim.stats import ActivityStats, KernelProfile
from repro.sim.vliw import VliwEngine
from repro.trace.events import StallCause
from repro.trace.tracer import NULL_TRACER, Tracer


class SimulationError(Exception):
    """Raised on unrunnable programs (unknown kernel ids, missing data)."""


#: Cycles to switch the shared register file and control between modes.
MODE_SWITCH_CYCLES = 1


class Core:
    """One hybrid CGA/VLIW processor instance."""

    def __init__(
        self,
        arch: CgaArchitecture,
        program: Program,
        tracer: Optional[Tracer] = None,
        interpreter: str = "decoded",
    ) -> None:
        if interpreter not in ("decoded", "reference", "compiled"):
            raise ValueError(
                "interpreter must be 'decoded', 'reference' or 'compiled'"
            )
        self.arch = arch
        self.program = program
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = ActivityStats()
        self.cdrf = RegisterFile(
            entries=arch.cdrf.entries,
            width=arch.cdrf.width,
            read_ports=arch.cdrf.read_ports,
            write_ports=arch.cdrf.write_ports,
            stats=self.stats,
            stat_prefix="cdrf",
        )
        self.cprf = PredicateFile(stats=self.stats)
        self.local_rfs: Dict[int, LocalRegisterFile] = {
            fu.index: LocalRegisterFile(
                entries=fu.local_rf.entries, width=fu.local_rf.width, stats=self.stats
            )
            for fu in arch.fus
            if fu.local_rf is not None
        }
        self.scratchpad = Scratchpad(arch.l1, stats=self.stats, tracer=self.tracer)
        self.icache = InstructionCache(
            arch.icache,
            miss_penalty=arch.icache_miss_penalty,
            stats=self.stats,
            tracer=self.tracer,
        )
        self.bus = AmbaBus(self.scratchpad, stats=self.stats, tracer=self.tracer)
        self.dma = DmaEngine(self.bus)
        self.vliw = VliwEngine(
            bundles=program.bundles,
            cdrf=self.cdrf,
            cprf=self.cprf,
            scratchpad=self.scratchpad,
            icache=self.icache,
            stats=self.stats,
            slot_fus=[fu.index for fu in arch.vliw_fus],
            tracer=self.tracer,
        )
        self.cga = CgaEngine(
            arch=arch,
            cdrf=self.cdrf,
            cprf=self.cprf,
            local_rfs=self.local_rfs,
            scratchpad=self.scratchpad,
            stats=self.stats,
            tracer=self.tracer,
        )
        use_decoded = interpreter in ("decoded", "compiled")
        self.vliw.use_decoded = use_decoded
        self.cga.use_decoded = use_decoded
        use_compiled = interpreter == "compiled"
        self.vliw.use_compiled = use_compiled
        self.cga.use_compiled = use_compiled
        self.cycle = 0
        self.pc = 0
        self.halted = False
        #: Kernel executions observed, in order (name, cycles).
        self.kernel_log: List[Dict[str, object]] = []

    # ------------------------------------------------------------------

    def rebind_program(self, program: Program) -> None:
        """Point the core at *program* without rebuilding the machine.

        Used by the batched runtime to re-drive resident cores with
        ``patch_constants`` variants of a linked program.  The VLIW
        engine's per-pc decode/compile caches hold immediate pools read
        from the bundle objects, so they are dropped whenever the
        program object actually changes; rebinding the same object is
        free and keeps every cache warm.
        """
        if program is self.program:
            return
        self.program = program
        self.vliw.bundles = program.bundles
        self.vliw._decoded = []
        self.vliw._compiled = []

    def load_configuration(self, stall_core: bool = False) -> int:
        """DMA-preload all kernels' configuration contexts (accounting only).

        With *stall_core* the core is modelled as waiting for the
        configuration stream (cold start): the bus cycles are booked as
        :attr:`~repro.trace.events.StallCause.DMA_CONFIG` stall on top
        of the VLIW mode counter.  The default leaves core timing
        untouched (steady-state measurement, contexts preloaded while
        the core works on the previous task).  Returns the bus cycles
        spent.
        """
        bus_cycles = 0
        for kernel in self.program.kernels.values():
            bus_cycles += self.dma.load_configuration(
                len(kernel.contexts), kernel.context_words
            )
        if stall_core and bus_cycles:
            self.stats.add_stall(StallCause.DMA_CONFIG, bus_cycles)
            self.stats.vliw_cycles += bus_cycles
            self.cycle += bus_cycles
        return bus_cycles

    def run(self, max_cycles: int = 10_000_000) -> ActivityStats:
        """Run the program to halt/end; returns the accumulated statistics."""
        from repro.sim.vliw import VliwFault

        tracer = self.tracer
        while not self.halted:
            if self.cycle > max_cycles:
                raise SimulationError(
                    "exceeded %d cycles; runaway program?" % max_cycles
                )
            segment_start = self.cycle
            try:
                stop, cycle = self.vliw.run(self.pc, self.cycle, max_cycle=max_cycles)
            except VliwFault as exc:
                raise SimulationError(str(exc)) from exc
            self.cycle = cycle
            self.pc = stop.next_pc
            if tracer.enabled and cycle > segment_start:
                tracer.complete("vliw", segment_start, cycle - segment_start, cat="mode")
            if stop.reason == "cga":
                self._run_kernel(stop.kernel_id)
            elif stop.reason in ("halt", "end"):
                self.halted = True
            else:  # pragma: no cover - defensive
                raise SimulationError("unknown stop reason %r" % stop.reason)
        return self.stats.validate()

    def _run_kernel(self, kernel_id: Optional[int]) -> None:
        if kernel_id is None or kernel_id not in self.program.kernels:
            raise SimulationError("cga references unknown kernel %r" % kernel_id)
        kernel = self.program.kernels[kernel_id]
        span_start = self.cycle
        # Mode switch in: the shared register file ports flip to the array.
        self.stats.cga_cycles += MODE_SWITCH_CYCLES
        self.cycle += MODE_SWITCH_CYCLES
        start = self.cycle
        self.cycle = self.cga.run(kernel, self.cycle)
        self.kernel_log.append({"kernel": kernel.name, "cycles": self.cycle - start})
        # Mode switch out.
        self.stats.cga_cycles += MODE_SWITCH_CYCLES
        self.cycle += MODE_SWITCH_CYCLES
        if self.tracer.enabled:
            self.tracer.complete(
                "cga:%s" % kernel.name,
                span_start,
                self.cycle - span_start,
                cat="mode",
                args={"ii": kernel.ii, "stages": kernel.stage_count},
            )

    # ------------------------------------------------------------------

    @contextmanager
    def region(self, name: str, profiles: List[KernelProfile], ii: Optional[int] = None) -> Iterator[None]:
        """Profile a region: appends a :class:`KernelProfile` to *profiles*."""
        before = self.stats.snapshot()
        yield
        delta = self.stats.delta_since(before).validate()
        profiles.append(KernelProfile(name=name, stats=delta, ii=ii))

    def resume(self) -> None:
        """Host-side resume signal: wake from the ``halt`` sleep state."""
        if self.halted and self.pc < len(self.program.bundles):
            self.halted = False
