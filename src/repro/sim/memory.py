"""The L1 data scratchpad: 4 single-ported banks, crossbar, contention queue.

The paper's L1 is a 16K x 32-bit scratchpad split over 4 banks with one
port per bank, a 5-channel crossbar (four load/store FUs plus the AHB
slave port) and *transparent* bank-access contention logic: when two
requestors hit the same bank in the same cycle, one is queued and the
consumer simply sees a longer latency (the "5/7" load latency of
Table 1).

The model is cycle-based: each bank owns a ``next_free`` cycle; a
request arriving at cycle *t* is served at ``max(t, next_free)`` and
bumps ``next_free`` by one.  The difference between service time and
arrival time is the contention delay surfaced to the core.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.arch.resources import MemorySpec
from repro.isa.bits import to_signed, to_unsigned
from repro.sim.stats import ActivityStats
from repro.trace.tracer import NULL_TRACER, Tracer


class MemoryError_(Exception):
    """Raised on out-of-range scratchpad accesses."""


class Scratchpad:
    """Byte-addressable, bank-interleaved data scratchpad.

    Words are interleaved across banks (``bank = word_addr % banks``) so
    that sequential 32-bit streams and 64-bit accesses spread over
    banks.  Storage is little-endian.
    """

    def __init__(
        self,
        spec: MemorySpec,
        stats: Optional[ActivityStats] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.spec = spec
        self.n_banks = spec.banks
        self.size_bytes = spec.bytes
        self._mem = bytearray(self.size_bytes)
        self._bank_next_free: List[int] = [0] * self.n_banks
        self.stats = stats if stats is not None else ActivityStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    # Functional (un-timed) accessors — used for test setup, DMA and
    # golden-output extraction.
    # ------------------------------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.size_bytes:
            raise MemoryError_(
                "scratchpad access [%d, %d) outside %d bytes"
                % (addr, addr + size, self.size_bytes)
            )

    def load_bytes(self, addr: int, size: int) -> bytes:
        """Functional read of *size* bytes (no timing, no statistics)."""
        self._check(addr, size)
        return bytes(self._mem[addr : addr + size])

    def store_bytes(self, addr: int, data: bytes) -> None:
        """Functional write (no timing, no statistics)."""
        self._check(addr, len(data))
        self._mem[addr : addr + len(data)] = data

    def read_word(self, addr: int, size: int = 4, signed: bool = False) -> int:
        """Functional read of a 1/2/4/8-byte little-endian word."""
        raw = int.from_bytes(self.load_bytes(addr, size), "little")
        if signed:
            return to_signed(raw, size * 8)
        return raw

    def write_word(self, addr: int, value: int, size: int = 4) -> None:
        """Functional write of a 1/2/4/8-byte little-endian word."""
        self.store_bytes(addr, to_unsigned(value, size * 8).to_bytes(size, "little"))

    # ------------------------------------------------------------------
    # Timed port interface used by the core and the AHB bridge.
    # ------------------------------------------------------------------

    def bank_of(self, addr: int) -> int:
        """Bank index serving byte address *addr* (word interleaving)."""
        return (addr >> 2) % self.n_banks

    def _arbitrate(self, cycle: int, addr: int) -> int:
        """Claim the bank port; returns contention delay in cycles."""
        bank = self.bank_of(addr)
        serve = max(cycle, self._bank_next_free[bank])
        self._bank_next_free[bank] = serve + 1
        delay = serve - cycle
        if delay > 0:
            self.stats.l1_bank_conflicts += 1
            self.stats.l1_conflict_stall_cycles += delay
            if self.tracer.enabled:
                self.tracer.instant(
                    "l1.bank_conflict",
                    cycle,
                    cat="mem",
                    args={"bank": bank, "delay": delay},
                )
        return delay

    def timed_read(self, cycle: int, addr: int, size: int) -> Tuple[int, int]:
        """Read through a crossbar channel at *cycle*.

        Returns ``(raw_value, extra_delay)``; *extra_delay* is the bank
        contention penalty on top of the architectural load latency.
        64-bit reads claim both banks covering the two words.
        """
        self._check(addr, size)
        delay = self._arbitrate(cycle, addr)
        if size == 8:
            delay = max(delay, self._arbitrate(cycle, addr + 4))
        self.stats.l1_reads += 1 if size <= 4 else 2
        raw = int.from_bytes(self._mem[addr : addr + size], "little")
        return raw, delay

    def timed_write(self, cycle: int, addr: int, value: int, size: int) -> int:
        """Write through a crossbar channel at *cycle*; returns extra delay."""
        self._check(addr, size)
        delay = self._arbitrate(cycle, addr)
        if size == 8:
            delay = max(delay, self._arbitrate(cycle, addr + 4))
        self.stats.l1_writes += 1 if size <= 4 else 2
        self._mem[addr : addr + size] = to_unsigned(value, size * 8).to_bytes(
            size, "little"
        )
        return delay

    def reset_timing(self) -> None:
        """Clear bank-arbiter state (fresh timing, memory contents kept)."""
        self._bank_next_free = [0] * self.n_banks
